file(REMOVE_RECURSE
  "CMakeFiles/repro_aging.dir/geriatrix.cc.o"
  "CMakeFiles/repro_aging.dir/geriatrix.cc.o.d"
  "CMakeFiles/repro_aging.dir/profiles.cc.o"
  "CMakeFiles/repro_aging.dir/profiles.cc.o.d"
  "librepro_aging.a"
  "librepro_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
