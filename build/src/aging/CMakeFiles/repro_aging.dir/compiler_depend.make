# Empty compiler generated dependencies file for repro_aging.
# This may be replaced when dependencies are built.
