file(REMOVE_RECURSE
  "librepro_aging.a"
)
