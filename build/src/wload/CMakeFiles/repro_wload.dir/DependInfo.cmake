
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wload/filebench.cc" "src/wload/CMakeFiles/repro_wload.dir/filebench.cc.o" "gcc" "src/wload/CMakeFiles/repro_wload.dir/filebench.cc.o.d"
  "/root/repo/src/wload/mmap_btree.cc" "src/wload/CMakeFiles/repro_wload.dir/mmap_btree.cc.o" "gcc" "src/wload/CMakeFiles/repro_wload.dir/mmap_btree.cc.o.d"
  "/root/repo/src/wload/mmap_lsm.cc" "src/wload/CMakeFiles/repro_wload.dir/mmap_lsm.cc.o" "gcc" "src/wload/CMakeFiles/repro_wload.dir/mmap_lsm.cc.o.d"
  "/root/repo/src/wload/oltp.cc" "src/wload/CMakeFiles/repro_wload.dir/oltp.cc.o" "gcc" "src/wload/CMakeFiles/repro_wload.dir/oltp.cc.o.d"
  "/root/repo/src/wload/part.cc" "src/wload/CMakeFiles/repro_wload.dir/part.cc.o" "gcc" "src/wload/CMakeFiles/repro_wload.dir/part.cc.o.d"
  "/root/repo/src/wload/pool_kv.cc" "src/wload/CMakeFiles/repro_wload.dir/pool_kv.cc.o" "gcc" "src/wload/CMakeFiles/repro_wload.dir/pool_kv.cc.o.d"
  "/root/repo/src/wload/wtiger.cc" "src/wload/CMakeFiles/repro_wload.dir/wtiger.cc.o" "gcc" "src/wload/CMakeFiles/repro_wload.dir/wtiger.cc.o.d"
  "/root/repo/src/wload/ycsb.cc" "src/wload/CMakeFiles/repro_wload.dir/ycsb.cc.o" "gcc" "src/wload/CMakeFiles/repro_wload.dir/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vmem/CMakeFiles/repro_vmem.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/repro_pmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
