file(REMOVE_RECURSE
  "CMakeFiles/repro_wload.dir/filebench.cc.o"
  "CMakeFiles/repro_wload.dir/filebench.cc.o.d"
  "CMakeFiles/repro_wload.dir/mmap_btree.cc.o"
  "CMakeFiles/repro_wload.dir/mmap_btree.cc.o.d"
  "CMakeFiles/repro_wload.dir/mmap_lsm.cc.o"
  "CMakeFiles/repro_wload.dir/mmap_lsm.cc.o.d"
  "CMakeFiles/repro_wload.dir/oltp.cc.o"
  "CMakeFiles/repro_wload.dir/oltp.cc.o.d"
  "CMakeFiles/repro_wload.dir/part.cc.o"
  "CMakeFiles/repro_wload.dir/part.cc.o.d"
  "CMakeFiles/repro_wload.dir/pool_kv.cc.o"
  "CMakeFiles/repro_wload.dir/pool_kv.cc.o.d"
  "CMakeFiles/repro_wload.dir/wtiger.cc.o"
  "CMakeFiles/repro_wload.dir/wtiger.cc.o.d"
  "CMakeFiles/repro_wload.dir/ycsb.cc.o"
  "CMakeFiles/repro_wload.dir/ycsb.cc.o.d"
  "librepro_wload.a"
  "librepro_wload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_wload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
