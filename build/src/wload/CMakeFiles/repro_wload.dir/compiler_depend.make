# Empty compiler generated dependencies file for repro_wload.
# This may be replaced when dependencies are built.
