file(REMOVE_RECURSE
  "librepro_wload.a"
)
