# Empty dependencies file for repro_pmem.
# This may be replaced when dependencies are built.
