file(REMOVE_RECURSE
  "librepro_pmem.a"
)
