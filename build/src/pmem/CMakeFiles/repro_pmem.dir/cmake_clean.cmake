file(REMOVE_RECURSE
  "CMakeFiles/repro_pmem.dir/device.cc.o"
  "CMakeFiles/repro_pmem.dir/device.cc.o.d"
  "librepro_pmem.a"
  "librepro_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
