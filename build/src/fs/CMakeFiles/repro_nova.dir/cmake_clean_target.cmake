file(REMOVE_RECURSE
  "librepro_nova.a"
)
