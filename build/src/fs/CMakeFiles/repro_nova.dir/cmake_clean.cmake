file(REMOVE_RECURSE
  "CMakeFiles/repro_nova.dir/nova/nova.cc.o"
  "CMakeFiles/repro_nova.dir/nova/nova.cc.o.d"
  "librepro_nova.a"
  "librepro_nova.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_nova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
