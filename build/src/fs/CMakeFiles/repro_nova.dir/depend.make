# Empty dependencies file for repro_nova.
# This may be replaced when dependencies are built.
