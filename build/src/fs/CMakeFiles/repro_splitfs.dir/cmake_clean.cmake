file(REMOVE_RECURSE
  "CMakeFiles/repro_splitfs.dir/splitfs/splitfs.cc.o"
  "CMakeFiles/repro_splitfs.dir/splitfs/splitfs.cc.o.d"
  "librepro_splitfs.a"
  "librepro_splitfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_splitfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
