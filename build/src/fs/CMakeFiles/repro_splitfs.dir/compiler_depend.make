# Empty compiler generated dependencies file for repro_splitfs.
# This may be replaced when dependencies are built.
