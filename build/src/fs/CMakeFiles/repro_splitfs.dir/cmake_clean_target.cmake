file(REMOVE_RECURSE
  "librepro_splitfs.a"
)
