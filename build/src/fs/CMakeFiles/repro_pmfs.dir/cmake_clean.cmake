file(REMOVE_RECURSE
  "CMakeFiles/repro_pmfs.dir/pmfs/pmfs.cc.o"
  "CMakeFiles/repro_pmfs.dir/pmfs/pmfs.cc.o.d"
  "librepro_pmfs.a"
  "librepro_pmfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_pmfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
