file(REMOVE_RECURSE
  "librepro_pmfs.a"
)
