# Empty compiler generated dependencies file for repro_pmfs.
# This may be replaced when dependencies are built.
