# Empty compiler generated dependencies file for repro_fscore.
# This may be replaced when dependencies are built.
