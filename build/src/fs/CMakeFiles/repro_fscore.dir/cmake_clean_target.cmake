file(REMOVE_RECURSE
  "librepro_fscore.a"
)
