file(REMOVE_RECURSE
  "CMakeFiles/repro_fscore.dir/fscore/extent.cc.o"
  "CMakeFiles/repro_fscore.dir/fscore/extent.cc.o.d"
  "CMakeFiles/repro_fscore.dir/fscore/free_space_map.cc.o"
  "CMakeFiles/repro_fscore.dir/fscore/free_space_map.cc.o.d"
  "CMakeFiles/repro_fscore.dir/fscore/fsck.cc.o"
  "CMakeFiles/repro_fscore.dir/fscore/fsck.cc.o.d"
  "CMakeFiles/repro_fscore.dir/fscore/generic_fs.cc.o"
  "CMakeFiles/repro_fscore.dir/fscore/generic_fs.cc.o.d"
  "librepro_fscore.a"
  "librepro_fscore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fscore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
