
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/fscore/extent.cc" "src/fs/CMakeFiles/repro_fscore.dir/fscore/extent.cc.o" "gcc" "src/fs/CMakeFiles/repro_fscore.dir/fscore/extent.cc.o.d"
  "/root/repo/src/fs/fscore/free_space_map.cc" "src/fs/CMakeFiles/repro_fscore.dir/fscore/free_space_map.cc.o" "gcc" "src/fs/CMakeFiles/repro_fscore.dir/fscore/free_space_map.cc.o.d"
  "/root/repo/src/fs/fscore/fsck.cc" "src/fs/CMakeFiles/repro_fscore.dir/fscore/fsck.cc.o" "gcc" "src/fs/CMakeFiles/repro_fscore.dir/fscore/fsck.cc.o.d"
  "/root/repo/src/fs/fscore/generic_fs.cc" "src/fs/CMakeFiles/repro_fscore.dir/fscore/generic_fs.cc.o" "gcc" "src/fs/CMakeFiles/repro_fscore.dir/fscore/generic_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/repro_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/vmem/CMakeFiles/repro_vmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
