# Empty dependencies file for repro_winefs.
# This may be replaced when dependencies are built.
