file(REMOVE_RECURSE
  "librepro_winefs.a"
)
