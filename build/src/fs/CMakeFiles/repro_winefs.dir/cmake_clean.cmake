file(REMOVE_RECURSE
  "CMakeFiles/repro_winefs.dir/winefs/winefs.cc.o"
  "CMakeFiles/repro_winefs.dir/winefs/winefs.cc.o.d"
  "librepro_winefs.a"
  "librepro_winefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_winefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
