file(REMOVE_RECURSE
  "CMakeFiles/repro_ext4dax.dir/ext4dax/ext4dax.cc.o"
  "CMakeFiles/repro_ext4dax.dir/ext4dax/ext4dax.cc.o.d"
  "librepro_ext4dax.a"
  "librepro_ext4dax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ext4dax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
