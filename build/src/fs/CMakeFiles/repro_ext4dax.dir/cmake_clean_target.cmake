file(REMOVE_RECURSE
  "librepro_ext4dax.a"
)
