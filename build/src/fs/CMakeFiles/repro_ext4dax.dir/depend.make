# Empty dependencies file for repro_ext4dax.
# This may be replaced when dependencies are built.
