file(REMOVE_RECURSE
  "CMakeFiles/repro_common.dir/histogram.cc.o"
  "CMakeFiles/repro_common.dir/histogram.cc.o.d"
  "CMakeFiles/repro_common.dir/rng.cc.o"
  "CMakeFiles/repro_common.dir/rng.cc.o.d"
  "CMakeFiles/repro_common.dir/status.cc.o"
  "CMakeFiles/repro_common.dir/status.cc.o.d"
  "librepro_common.a"
  "librepro_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
