# Empty compiler generated dependencies file for repro_crashmk.
# This may be replaced when dependencies are built.
