file(REMOVE_RECURSE
  "CMakeFiles/repro_crashmk.dir/explorer.cc.o"
  "CMakeFiles/repro_crashmk.dir/explorer.cc.o.d"
  "CMakeFiles/repro_crashmk.dir/oracle.cc.o"
  "CMakeFiles/repro_crashmk.dir/oracle.cc.o.d"
  "librepro_crashmk.a"
  "librepro_crashmk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_crashmk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
