
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crashmk/explorer.cc" "src/crashmk/CMakeFiles/repro_crashmk.dir/explorer.cc.o" "gcc" "src/crashmk/CMakeFiles/repro_crashmk.dir/explorer.cc.o.d"
  "/root/repo/src/crashmk/oracle.cc" "src/crashmk/CMakeFiles/repro_crashmk.dir/oracle.cc.o" "gcc" "src/crashmk/CMakeFiles/repro_crashmk.dir/oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/repro_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/vmem/CMakeFiles/repro_vmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
