file(REMOVE_RECURSE
  "librepro_crashmk.a"
)
