
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmem/llc_cache.cc" "src/vmem/CMakeFiles/repro_vmem.dir/llc_cache.cc.o" "gcc" "src/vmem/CMakeFiles/repro_vmem.dir/llc_cache.cc.o.d"
  "/root/repo/src/vmem/mmap_engine.cc" "src/vmem/CMakeFiles/repro_vmem.dir/mmap_engine.cc.o" "gcc" "src/vmem/CMakeFiles/repro_vmem.dir/mmap_engine.cc.o.d"
  "/root/repo/src/vmem/page_table.cc" "src/vmem/CMakeFiles/repro_vmem.dir/page_table.cc.o" "gcc" "src/vmem/CMakeFiles/repro_vmem.dir/page_table.cc.o.d"
  "/root/repo/src/vmem/tlb.cc" "src/vmem/CMakeFiles/repro_vmem.dir/tlb.cc.o" "gcc" "src/vmem/CMakeFiles/repro_vmem.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/repro_pmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
