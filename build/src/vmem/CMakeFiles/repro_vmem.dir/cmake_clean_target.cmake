file(REMOVE_RECURSE
  "librepro_vmem.a"
)
