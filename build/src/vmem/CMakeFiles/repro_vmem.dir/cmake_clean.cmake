file(REMOVE_RECURSE
  "CMakeFiles/repro_vmem.dir/llc_cache.cc.o"
  "CMakeFiles/repro_vmem.dir/llc_cache.cc.o.d"
  "CMakeFiles/repro_vmem.dir/mmap_engine.cc.o"
  "CMakeFiles/repro_vmem.dir/mmap_engine.cc.o.d"
  "CMakeFiles/repro_vmem.dir/page_table.cc.o"
  "CMakeFiles/repro_vmem.dir/page_table.cc.o.d"
  "CMakeFiles/repro_vmem.dir/tlb.cc.o"
  "CMakeFiles/repro_vmem.dir/tlb.cc.o.d"
  "librepro_vmem.a"
  "librepro_vmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_vmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
