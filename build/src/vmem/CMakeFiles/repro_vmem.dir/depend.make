# Empty dependencies file for repro_vmem.
# This may be replaced when dependencies are built.
