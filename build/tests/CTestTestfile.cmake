# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/pmem_test[1]_include.cmake")
include("/root/repo/build/tests/vmem_test[1]_include.cmake")
include("/root/repo/build/tests/fscore_test[1]_include.cmake")
include("/root/repo/build/tests/fs_posix_test[1]_include.cmake")
include("/root/repo/build/tests/winefs_test[1]_include.cmake")
include("/root/repo/build/tests/crash_consistency_test[1]_include.cmake")
include("/root/repo/build/tests/wload_test[1]_include.cmake")
include("/root/repo/build/tests/aging_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fsck_test[1]_include.cmake")
include("/root/repo/build/tests/mmap_fs_integration_test[1]_include.cmake")
include("/root/repo/build/tests/crashmk_unit_test[1]_include.cmake")
include("/root/repo/build/tests/splitfs_test[1]_include.cmake")
include("/root/repo/build/tests/winefs_journal_test[1]_include.cmake")
