# Empty dependencies file for fs_posix_test.
# This may be replaced when dependencies are built.
