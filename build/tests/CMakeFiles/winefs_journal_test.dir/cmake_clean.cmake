file(REMOVE_RECURSE
  "CMakeFiles/winefs_journal_test.dir/winefs_journal_test.cc.o"
  "CMakeFiles/winefs_journal_test.dir/winefs_journal_test.cc.o.d"
  "winefs_journal_test"
  "winefs_journal_test.pdb"
  "winefs_journal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winefs_journal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
