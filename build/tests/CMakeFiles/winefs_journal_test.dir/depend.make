# Empty dependencies file for winefs_journal_test.
# This may be replaced when dependencies are built.
