file(REMOVE_RECURSE
  "CMakeFiles/winefs_test.dir/winefs_test.cc.o"
  "CMakeFiles/winefs_test.dir/winefs_test.cc.o.d"
  "winefs_test"
  "winefs_test.pdb"
  "winefs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winefs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
