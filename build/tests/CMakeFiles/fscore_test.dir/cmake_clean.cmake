file(REMOVE_RECURSE
  "CMakeFiles/fscore_test.dir/fscore_test.cc.o"
  "CMakeFiles/fscore_test.dir/fscore_test.cc.o.d"
  "fscore_test"
  "fscore_test.pdb"
  "fscore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fscore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
