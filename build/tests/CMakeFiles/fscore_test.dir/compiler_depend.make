# Empty compiler generated dependencies file for fscore_test.
# This may be replaced when dependencies are built.
