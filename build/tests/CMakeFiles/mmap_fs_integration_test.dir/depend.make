# Empty dependencies file for mmap_fs_integration_test.
# This may be replaced when dependencies are built.
