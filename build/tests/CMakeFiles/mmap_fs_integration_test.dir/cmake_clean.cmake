file(REMOVE_RECURSE
  "CMakeFiles/mmap_fs_integration_test.dir/mmap_fs_integration_test.cc.o"
  "CMakeFiles/mmap_fs_integration_test.dir/mmap_fs_integration_test.cc.o.d"
  "mmap_fs_integration_test"
  "mmap_fs_integration_test.pdb"
  "mmap_fs_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmap_fs_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
