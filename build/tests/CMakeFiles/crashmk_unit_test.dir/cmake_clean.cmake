file(REMOVE_RECURSE
  "CMakeFiles/crashmk_unit_test.dir/crashmk_unit_test.cc.o"
  "CMakeFiles/crashmk_unit_test.dir/crashmk_unit_test.cc.o.d"
  "crashmk_unit_test"
  "crashmk_unit_test.pdb"
  "crashmk_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crashmk_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
