# Empty compiler generated dependencies file for crashmk_unit_test.
# This may be replaced when dependencies are built.
