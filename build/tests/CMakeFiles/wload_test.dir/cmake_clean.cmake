file(REMOVE_RECURSE
  "CMakeFiles/wload_test.dir/wload_test.cc.o"
  "CMakeFiles/wload_test.dir/wload_test.cc.o.d"
  "wload_test"
  "wload_test.pdb"
  "wload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
