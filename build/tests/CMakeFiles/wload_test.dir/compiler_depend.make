# Empty compiler generated dependencies file for wload_test.
# This may be replaced when dependencies are built.
