# Empty compiler generated dependencies file for fig01_aging_bandwidth.
# This may be replaced when dependencies are built.
