file(REMOVE_RECURSE
  "CMakeFiles/fig01_aging_bandwidth.dir/fig01_aging_bandwidth.cc.o"
  "CMakeFiles/fig01_aging_bandwidth.dir/fig01_aging_bandwidth.cc.o.d"
  "fig01_aging_bandwidth"
  "fig01_aging_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_aging_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
