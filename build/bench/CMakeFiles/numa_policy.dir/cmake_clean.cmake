file(REMOVE_RECURSE
  "CMakeFiles/numa_policy.dir/numa_policy.cc.o"
  "CMakeFiles/numa_policy.dir/numa_policy.cc.o.d"
  "numa_policy"
  "numa_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
