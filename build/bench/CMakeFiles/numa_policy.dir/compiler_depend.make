# Empty compiler generated dependencies file for numa_policy.
# This may be replaced when dependencies are built.
