file(REMOVE_RECURSE
  "CMakeFiles/fig02_mmap_overhead.dir/fig02_mmap_overhead.cc.o"
  "CMakeFiles/fig02_mmap_overhead.dir/fig02_mmap_overhead.cc.o.d"
  "fig02_mmap_overhead"
  "fig02_mmap_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_mmap_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
