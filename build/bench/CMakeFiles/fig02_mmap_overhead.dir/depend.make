# Empty dependencies file for fig02_mmap_overhead.
# This may be replaced when dependencies are built.
