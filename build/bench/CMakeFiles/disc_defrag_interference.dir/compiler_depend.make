# Empty compiler generated dependencies file for disc_defrag_interference.
# This may be replaced when dependencies are built.
