file(REMOVE_RECURSE
  "CMakeFiles/disc_defrag_interference.dir/disc_defrag_interference.cc.o"
  "CMakeFiles/disc_defrag_interference.dir/disc_defrag_interference.cc.o.d"
  "disc_defrag_interference"
  "disc_defrag_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_defrag_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
