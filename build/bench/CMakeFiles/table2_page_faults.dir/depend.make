# Empty dependencies file for table2_page_faults.
# This may be replaced when dependencies are built.
