file(REMOVE_RECURSE
  "CMakeFiles/table2_page_faults.dir/table2_page_faults.cc.o"
  "CMakeFiles/table2_page_faults.dir/table2_page_faults.cc.o.d"
  "table2_page_faults"
  "table2_page_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_page_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
