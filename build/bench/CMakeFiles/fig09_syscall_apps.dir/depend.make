# Empty dependencies file for fig09_syscall_apps.
# This may be replaced when dependencies are built.
