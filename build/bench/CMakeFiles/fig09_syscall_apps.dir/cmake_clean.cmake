file(REMOVE_RECURSE
  "CMakeFiles/fig09_syscall_apps.dir/fig09_syscall_apps.cc.o"
  "CMakeFiles/fig09_syscall_apps.dir/fig09_syscall_apps.cc.o.d"
  "fig09_syscall_apps"
  "fig09_syscall_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_syscall_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
