file(REMOVE_RECURSE
  "CMakeFiles/fig08_part_cdf.dir/fig08_part_cdf.cc.o"
  "CMakeFiles/fig08_part_cdf.dir/fig08_part_cdf.cc.o.d"
  "fig08_part_cdf"
  "fig08_part_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_part_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
