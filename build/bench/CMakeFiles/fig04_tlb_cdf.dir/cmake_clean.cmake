file(REMOVE_RECURSE
  "CMakeFiles/fig04_tlb_cdf.dir/fig04_tlb_cdf.cc.o"
  "CMakeFiles/fig04_tlb_cdf.dir/fig04_tlb_cdf.cc.o.d"
  "fig04_tlb_cdf"
  "fig04_tlb_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_tlb_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
