# Empty compiler generated dependencies file for fig04_tlb_cdf.
# This may be replaced when dependencies are built.
