# Empty compiler generated dependencies file for sec52_recovery.
# This may be replaced when dependencies are built.
