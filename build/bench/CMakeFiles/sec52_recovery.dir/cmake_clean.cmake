file(REMOVE_RECURSE
  "CMakeFiles/sec52_recovery.dir/sec52_recovery.cc.o"
  "CMakeFiles/sec52_recovery.dir/sec52_recovery.cc.o.d"
  "sec52_recovery"
  "sec52_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
