file(REMOVE_RECURSE
  "CMakeFiles/fig03_fragmentation.dir/fig03_fragmentation.cc.o"
  "CMakeFiles/fig03_fragmentation.dir/fig03_fragmentation.cc.o.d"
  "fig03_fragmentation"
  "fig03_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
