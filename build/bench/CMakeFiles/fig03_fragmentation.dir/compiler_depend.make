# Empty compiler generated dependencies file for fig03_fragmentation.
# This may be replaced when dependencies are built.
