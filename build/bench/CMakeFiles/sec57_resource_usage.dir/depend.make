# Empty dependencies file for sec57_resource_usage.
# This may be replaced when dependencies are built.
