file(REMOVE_RECURSE
  "CMakeFiles/sec57_resource_usage.dir/sec57_resource_usage.cc.o"
  "CMakeFiles/sec57_resource_usage.dir/sec57_resource_usage.cc.o.d"
  "sec57_resource_usage"
  "sec57_resource_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec57_resource_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
