# Empty compiler generated dependencies file for disc_hugepage_ext4.
# This may be replaced when dependencies are built.
