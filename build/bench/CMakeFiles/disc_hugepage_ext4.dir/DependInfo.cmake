
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/disc_hugepage_ext4.cc" "bench/CMakeFiles/disc_hugepage_ext4.dir/disc_hugepage_ext4.cc.o" "gcc" "bench/CMakeFiles/disc_hugepage_ext4.dir/disc_hugepage_ext4.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/repro_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/vmem/CMakeFiles/repro_vmem.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/repro_fscore.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/repro_winefs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/repro_ext4dax.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/repro_pmfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/repro_nova.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/repro_splitfs.dir/DependInfo.cmake"
  "/root/repo/build/src/aging/CMakeFiles/repro_aging.dir/DependInfo.cmake"
  "/root/repo/build/src/wload/CMakeFiles/repro_wload.dir/DependInfo.cmake"
  "/root/repo/build/src/crashmk/CMakeFiles/repro_crashmk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
