file(REMOVE_RECURSE
  "CMakeFiles/disc_hugepage_ext4.dir/disc_hugepage_ext4.cc.o"
  "CMakeFiles/disc_hugepage_ext4.dir/disc_hugepage_ext4.cc.o.d"
  "disc_hugepage_ext4"
  "disc_hugepage_ext4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_hugepage_ext4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
