# Empty compiler generated dependencies file for fig07_apps_aged.
# This may be replaced when dependencies are built.
