file(REMOVE_RECURSE
  "CMakeFiles/fig07_apps_aged.dir/fig07_apps_aged.cc.o"
  "CMakeFiles/fig07_apps_aged.dir/fig07_apps_aged.cc.o.d"
  "fig07_apps_aged"
  "fig07_apps_aged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_apps_aged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
