# Empty compiler generated dependencies file for winefs_shell.
# This may be replaced when dependencies are built.
