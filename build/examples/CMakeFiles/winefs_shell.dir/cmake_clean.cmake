file(REMOVE_RECURSE
  "CMakeFiles/winefs_shell.dir/winefs_shell.cpp.o"
  "CMakeFiles/winefs_shell.dir/winefs_shell.cpp.o.d"
  "winefs_shell"
  "winefs_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winefs_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
