file(REMOVE_RECURSE
  "CMakeFiles/kvstore_on_winefs.dir/kvstore_on_winefs.cpp.o"
  "CMakeFiles/kvstore_on_winefs.dir/kvstore_on_winefs.cpp.o.d"
  "kvstore_on_winefs"
  "kvstore_on_winefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_on_winefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
