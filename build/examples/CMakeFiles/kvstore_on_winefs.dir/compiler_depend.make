# Empty compiler generated dependencies file for kvstore_on_winefs.
# This may be replaced when dependencies are built.
