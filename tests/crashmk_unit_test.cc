// Unit tests for the crash-consistency tooling itself: the oracle's equality
// and diff semantics, workload descriptions, and explorer behaviour on a
// filesystem that is intentionally NOT crash-consistent.
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/crashmk/explorer.h"
#include "src/crashmk/oracle.h"
#include "src/fs/registry.h"
#include "src/fs/winefs/winefs.h"

namespace {

using common::ExecContext;
using common::kMiB;

TEST(OracleTest, CapturesTreeAndContents) {
  pmem::PmemDevice dev(64 * kMiB);
  auto fs = fsreg::Create("winefs", &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  ASSERT_TRUE(fs->Mkdir(ctx, "/d").ok());
  auto fd = fs->Open(ctx, "/d/f", vfs::OpenFlags::Create());
  std::vector<uint8_t> data(1000, 0x8a);
  ASSERT_TRUE(fs->Pwrite(ctx, *fd, data.data(), data.size(), 0).ok());

  auto oracle = crashmk::Oracle::Capture(ctx, *fs);
  ASSERT_EQ(oracle.entries().size(), 2u);
  EXPECT_TRUE(oracle.entries().at("/d").is_dir);
  EXPECT_EQ(oracle.entries().at("/d/f").size, 1000u);
  EXPECT_NE(oracle.entries().at("/d/f").content_hash, 0u);
}

TEST(OracleTest, EqualityIsContentSensitive) {
  pmem::PmemDevice dev(64 * kMiB);
  auto fs = fsreg::Create("winefs", &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  auto fd = fs->Open(ctx, "/f", vfs::OpenFlags::Create());
  std::vector<uint8_t> data(100, 1);
  ASSERT_TRUE(fs->Pwrite(ctx, *fd, data.data(), data.size(), 0).ok());
  auto before = crashmk::Oracle::Capture(ctx, *fs);

  // Same size, different bytes: oracles must differ.
  data[50] = 2;
  ASSERT_TRUE(fs->Pwrite(ctx, *fd, data.data(), data.size(), 0).ok());
  auto after = crashmk::Oracle::Capture(ctx, *fs);
  EXPECT_FALSE(before == after);
  EXPECT_NE(before.DiffAgainst(after), "");
  EXPECT_TRUE(after == crashmk::Oracle::Capture(ctx, *fs));
  EXPECT_EQ(after.DiffAgainst(after), "");
}

TEST(CrashOpTest, DescriptionsAreReadable) {
  using K = crashmk::CrashOp::Kind;
  EXPECT_EQ((crashmk::CrashOp{K::kRename, "/a", "/b", 0, 0}).Describe(), "rename /a -> /b");
  EXPECT_EQ((crashmk::CrashOp{K::kAppend, "/x", "", 0, 42}).Describe(), "append /x len=42");
  EXPECT_TRUE((crashmk::CrashOp{K::kPwrite, "/x", "", 1, 2}).IsDataOp());
  EXPECT_FALSE((crashmk::CrashOp{K::kMkdir, "/x", "", 0, 0}).IsDataOp());
}

TEST(ExplorerTest, GeneratedWorkloadsCoverEveryMetadataOpKind) {
  const auto workloads = crashmk::Explorer::GenerateAceWorkloads(true);
  std::set<crashmk::CrashOp::Kind> kinds;
  for (const auto& workload : workloads) {
    for (const auto& op : workload) {
      kinds.insert(op.kind);
    }
  }
  EXPECT_EQ(kinds.size(), 9u);  // every CrashOp::Kind appears somewhere
}

// A WineFS with its undo journaling ripped out: metadata lands in place with
// no rollback information. The explorer must catch the torn states.
class NoJournalWineFs : public winefs::WineFs {
 public:
  using winefs::WineFs::WineFs;

 protected:
  void TxBegin(common::ExecContext& ctx) override { (void)ctx; }
  void TxCommit(common::ExecContext& ctx) override { (void)ctx; }
  void TxMetaWrite(common::ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                   const void* data, uint64_t len) override {
    (void)owner;
    device_->Store(ctx, pm_offset, data, len);
    device_->Clwb(ctx, pm_offset, len);
    device_->Fence(ctx);
  }
};

TEST(ExplorerTest, DetectsNonAtomicFilesystem) {
  // This is a test of the DETECTOR: a filesystem without crash-exact
  // journaling must fail the oracle check somewhere.
  crashmk::Explorer explorer(
      [](pmem::PmemDevice* device) -> std::unique_ptr<vfs::FileSystem> {
        winefs::WineFsOptions options;
        options.base.max_inodes = 1024;
        options.base.journal_blocks = 256;
        options.base.num_cpus = 2;
        return std::make_unique<NoJournalWineFs>(device, options);
      },
      crashmk::Explorer::Config{});
  using K = crashmk::CrashOp::Kind;
  uint64_t failures = 0;
  for (const crashmk::Workload& workload :
       {crashmk::Workload{{K::kRename, "/A", "/B", 0, 0}},
        crashmk::Workload{{K::kRename, "/A", "/A2", 0, 0}},
        crashmk::Workload{{K::kUnlink, "/A", "", 0, 0}}}) {
    const auto result = explorer.RunWorkload(workload);
    failures += result.oracle_failures + result.mount_failures;
  }
  EXPECT_GT(failures, 0u) << "explorer failed to flag a non-crash-consistent filesystem";
}

}  // namespace
