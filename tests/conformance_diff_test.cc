// Differential conformance: one recorded operation trace replayed against
// every modeled filesystem AND a trivial in-memory reference model; afterwards
// every file's contents must match the reference byte-for-byte and every
// directory listing must agree. Divergence pinpoints the op via the recorded
// trace (the generator is seeded, so the trace is stable across runs).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/fs/registry.h"

namespace {

using common::ExecContext;
using common::kMiB;

struct TraceOp {
  enum class Kind { kCreate, kMkdir, kPwrite, kAppend, kTruncate, kRename, kUnlink, kFallocate };
  Kind kind;
  std::string path;
  std::string path2;
  uint64_t offset = 0;
  uint64_t len = 0;
  uint8_t fill = 0;  // payload byte pattern base
};

// The reference model: files are strings, directories a name set. POSIX
// semantics for the subset of ops the trace uses (writes beyond EOF zero-fill
// the gap, fallocate/truncate extend with zeros).
struct RefModel {
  std::map<std::string, std::string> files;
  std::set<std::string> dirs{"/"};

  static std::string Payload(uint64_t len, uint8_t fill) {
    std::string data(len, '\0');
    for (uint64_t i = 0; i < len; i++) {
      data[i] = static_cast<char>(fill + (i % 41));
    }
    return data;
  }

  void Apply(const TraceOp& op) {
    switch (op.kind) {
      case TraceOp::Kind::kCreate:
        files.emplace(op.path, "");
        break;
      case TraceOp::Kind::kMkdir:
        dirs.insert(op.path);
        break;
      case TraceOp::Kind::kPwrite: {
        std::string& f = files.at(op.path);
        if (f.size() < op.offset + op.len) {
          f.resize(op.offset + op.len, '\0');
        }
        const std::string data = Payload(op.len, op.fill);
        f.replace(op.offset, op.len, data);
        break;
      }
      case TraceOp::Kind::kAppend:
        files.at(op.path) += Payload(op.len, op.fill);
        break;
      case TraceOp::Kind::kTruncate:
        files.at(op.path).resize(op.len, '\0');
        break;
      case TraceOp::Kind::kRename: {
        // POSIX: an existing target is atomically replaced.
        files.erase(op.path2);
        auto node = files.extract(op.path);
        node.key() = op.path2;
        files.insert(std::move(node));
        break;
      }
      case TraceOp::Kind::kUnlink:
        files.erase(op.path);
        break;
      case TraceOp::Kind::kFallocate: {
        std::string& f = files.at(op.path);
        if (f.size() < op.offset + op.len) {
          f.resize(op.offset + op.len, '\0');
        }
        break;
      }
    }
  }
};

// Seeded trace generator: every op is valid against the model state at the
// moment it is recorded, so replays must succeed on every filesystem.
std::vector<TraceOp> RecordTrace(uint64_t seed, size_t nops) {
  common::Rng rng(seed);
  RefModel model;
  std::vector<TraceOp> trace;
  uint32_t next_id = 0;

  auto pick_file = [&]() -> std::string {
    auto it = model.files.begin();
    std::advance(it, rng.NextInRange(0, model.files.size() - 1));
    return it->first;
  };
  auto pick_dir = [&]() -> std::string {
    auto it = model.dirs.begin();
    std::advance(it, rng.NextInRange(0, model.dirs.size() - 1));
    return *it == "/" ? "" : *it;
  };

  while (trace.size() < nops) {
    TraceOp op;
    const uint64_t roll = rng.NextInRange(0, 99);
    if (model.files.empty() || roll < 15) {
      op.kind = TraceOp::Kind::kCreate;
      op.path = pick_dir() + "/f" + std::to_string(next_id++);
    } else if (roll < 20 && model.dirs.size() < 6) {
      op.kind = TraceOp::Kind::kMkdir;
      op.path = "/d" + std::to_string(next_id++);
    } else if (roll < 45) {
      op.kind = TraceOp::Kind::kPwrite;
      op.path = pick_file();
      op.offset = rng.NextInRange(0, 150000);
      op.len = rng.NextInRange(1, 20000);
      op.fill = static_cast<uint8_t>(0x20 + (trace.size() % 80));
    } else if (roll < 65) {
      op.kind = TraceOp::Kind::kAppend;
      op.path = pick_file();
      op.len = rng.NextInRange(1, 9000);
      op.fill = static_cast<uint8_t>(0x20 + (trace.size() % 80));
    } else if (roll < 75) {
      op.kind = TraceOp::Kind::kTruncate;
      op.path = pick_file();
      op.len = rng.NextInRange(0, 120000);
    } else if (roll < 85) {
      op.kind = TraceOp::Kind::kRename;
      op.path = pick_file();
      if (roll >= 82 && model.files.size() >= 2) {
        // Rename over an existing target (possibly cross-directory): the
        // destination file is atomically replaced.
        op.path2 = pick_file();
        if (op.path2 == op.path) {
          op.path2 = pick_dir() + "/r" + std::to_string(next_id++);
        }
      } else {
        // pick_dir makes a share of these cross-directory moves.
        op.path2 = pick_dir() + "/r" + std::to_string(next_id++);
      }
    } else if (roll < 92) {
      op.kind = TraceOp::Kind::kUnlink;
      op.path = pick_file();
    } else {
      op.kind = TraceOp::Kind::kFallocate;
      op.path = pick_file();
      op.offset = rng.NextInRange(0, 100000);
      op.len = rng.NextInRange(1, 64 * 1024);
    }
    model.Apply(op);
    trace.push_back(op);
  }
  return trace;
}

common::Status Replay(ExecContext& ctx, vfs::FileSystem& fs, const TraceOp& op) {
  const std::string payload = RefModel::Payload(op.len, op.fill);
  switch (op.kind) {
    case TraceOp::Kind::kCreate: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags::Create()));
      return fs.Close(ctx, fd);
    }
    case TraceOp::Kind::kMkdir:
      return fs.Mkdir(ctx, op.path);
    case TraceOp::Kind::kPwrite: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      auto n = fs.Pwrite(ctx, fd, payload.data(), payload.size(), op.offset);
      (void)fs.Close(ctx, fd);
      return n.ok() ? common::OkStatus() : n.status();
    }
    case TraceOp::Kind::kAppend: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      auto n = fs.Append(ctx, fd, payload.data(), payload.size());
      (void)fs.Close(ctx, fd);
      return n.ok() ? common::OkStatus() : n.status();
    }
    case TraceOp::Kind::kTruncate: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      const common::Status status = fs.Ftruncate(ctx, fd, op.len);
      (void)fs.Close(ctx, fd);
      return status;
    }
    case TraceOp::Kind::kRename:
      return fs.Rename(ctx, op.path, op.path2);
    case TraceOp::Kind::kUnlink:
      return fs.Unlink(ctx, op.path);
    case TraceOp::Kind::kFallocate: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      const common::Status status = fs.Fallocate(ctx, fd, op.offset, op.len);
      (void)fs.Close(ctx, fd);
      return status;
    }
  }
  return common::OkStatus();
}

void DiffAgainstModel(ExecContext& ctx, vfs::FileSystem& fs, const RefModel& model,
                      const std::string& fs_name) {
  // Every file: size and contents byte-for-byte.
  for (const auto& [path, want] : model.files) {
    auto st = fs.Stat(ctx, path);
    ASSERT_TRUE(st.ok()) << fs_name << ": missing " << path;
    EXPECT_EQ(st->size, want.size()) << fs_name << ": size of " << path;
    auto fd = fs.Open(ctx, path, vfs::OpenFlags::ReadOnly());
    ASSERT_TRUE(fd.ok()) << fs_name << ": open " << path;
    std::vector<uint8_t> got(want.size() + 64, 0xab);
    auto n = fs.Pread(ctx, *fd, got.data(), got.size(), 0);
    ASSERT_TRUE(n.ok()) << fs_name << ": pread " << path;
    ASSERT_EQ(*n, want.size()) << fs_name << ": short read of " << path;
    for (uint64_t i = 0; i < want.size(); i++) {
      ASSERT_EQ(static_cast<char>(got[i]), want[i])
          << fs_name << ": " << path << " differs at byte " << i;
    }
    (void)fs.Close(ctx, *fd);
  }
  // Every directory: the listing matches the model exactly.
  for (const std::string& dir : model.dirs) {
    auto listing = fs.ReadDir(ctx, dir);
    ASSERT_TRUE(listing.ok()) << fs_name << ": readdir " << dir;
    std::set<std::string> got;
    for (const vfs::DirEntry& entry : *listing) {
      got.insert((dir == "/" ? "/" : dir + "/") + entry.name);
    }
    std::set<std::string> want;
    const std::string prefix = dir == "/" ? "/" : dir + "/";
    auto direct_child = [&](const std::string& path) {
      return path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
             path.find('/', prefix.size()) == std::string::npos;
    };
    for (const auto& [path, contents] : model.files) {
      (void)contents;
      if (direct_child(path)) {
        want.insert(path);
      }
    }
    for (const std::string& sub : model.dirs) {
      if (direct_child(sub)) {
        want.insert(sub);
      }
    }
    EXPECT_EQ(got, want) << fs_name << ": listing of " << dir;
  }
}

class ConformanceDiffTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConformanceDiffTest, RecordedTraceMatchesReferenceModel) {
  const auto trace = RecordTrace(/*seed=*/2024, /*nops=*/150);

  pmem::PmemDevice dev(256 * kMiB);
  auto fs = fsreg::Create(GetParam(), &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());

  RefModel model;
  for (size_t i = 0; i < trace.size(); i++) {
    const common::Status status = Replay(ctx, *fs, trace[i]);
    ASSERT_TRUE(status.ok()) << GetParam() << ": op " << i << " failed";
    model.Apply(trace[i]);
  }
  DiffAgainstModel(ctx, *fs, model, GetParam());

  // The state must also survive a clean unmount + remount (DRAM indexes
  // serialized and rebuilt) with byte-identical contents.
  ASSERT_TRUE(fs->Unmount(ctx).ok());
  auto fs2 = fsreg::Create(GetParam(), &dev);
  ExecContext rctx;
  ASSERT_TRUE(fs2->Mount(rctx).ok());
  DiffAgainstModel(rctx, *fs2, model, GetParam() + " (remounted)");
}

// Directed rename semantics: overwrite of an existing target and
// cross-directory moves, both of which the crash campaign leans on.
TEST_P(ConformanceDiffTest, RenameOverwriteAndCrossDirectory) {
  const std::vector<TraceOp> trace = {
      {TraceOp::Kind::kMkdir, "/d1", "", 0, 0, 0},
      {TraceOp::Kind::kCreate, "/a", "", 0, 0, 0},
      {TraceOp::Kind::kCreate, "/d1/b", "", 0, 0, 0},
      {TraceOp::Kind::kAppend, "/a", "", 0, 9000, 0x30},
      {TraceOp::Kind::kAppend, "/d1/b", "", 0, 3000, 0x40},
      // Same-directory overwrite: /a replaces... a fresh /c first, then the
      // interesting cases.
      {TraceOp::Kind::kCreate, "/c", "", 0, 0, 0},
      {TraceOp::Kind::kAppend, "/c", "", 0, 500, 0x50},
      // Overwrite an existing target in the same directory.
      {TraceOp::Kind::kRename, "/a", "/c", 0, 0, 0},
      // Cross-directory move onto an existing target.
      {TraceOp::Kind::kRename, "/c", "/d1/b", 0, 0, 0},
      // Cross-directory move to a fresh name.
      {TraceOp::Kind::kRename, "/d1/b", "/moved", 0, 0, 0},
  };

  pmem::PmemDevice dev(256 * kMiB);
  auto fs = fsreg::Create(GetParam(), &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());

  RefModel model;
  for (size_t i = 0; i < trace.size(); i++) {
    const common::Status status = Replay(ctx, *fs, trace[i]);
    ASSERT_TRUE(status.ok()) << GetParam() << ": op " << i << " failed";
    model.Apply(trace[i]);
  }
  // The survivor is /a's bytes under /moved; /c and /d1/b are gone.
  ASSERT_EQ(model.files.size(), 1u);
  ASSERT_EQ(model.files.begin()->first, "/moved");
  ASSERT_EQ(model.files.begin()->second.size(), 9000u);
  DiffAgainstModel(ctx, *fs, model, GetParam());

  ASSERT_TRUE(fs->Unmount(ctx).ok());
  auto fs2 = fsreg::Create(GetParam(), &dev);
  ExecContext rctx;
  ASSERT_TRUE(fs2->Mount(rctx).ok());
  DiffAgainstModel(rctx, *fs2, model, GetParam() + " (remounted)");
}

INSTANTIATE_TEST_SUITE_P(Filesystems, ConformanceDiffTest,
                         ::testing::Values("winefs", "ext4-dax", "xfs-dax", "pmfs",
                                           "nova", "splitfs"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
