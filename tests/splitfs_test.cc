// SplitFS-specific behaviour: user-level staged appends bypass the kernel
// trap, relink happens at fsync, and namespace operations still ride ext4's
// JBD2.
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/fs/splitfs/splitfs.h"

namespace {

using common::ExecContext;
using common::kMiB;

class SplitFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<pmem::PmemDevice>(128 * kMiB);
    fs_ = std::make_unique<splitfs::SplitFs>(dev_.get());
    ASSERT_TRUE(fs_->Mkfs(ctx_).ok());
  }

  ExecContext ctx_;
  std::unique_ptr<pmem::PmemDevice> dev_;
  std::unique_ptr<splitfs::SplitFs> fs_;
};

TEST_F(SplitFsTest, AppendsCheaperThanStockSyscallPath) {
  // The user-level append must not pay the syscall trap: compare the modeled
  // cost of a SplitFS append against an equivalent ext4-DAX append.
  pmem::PmemDevice dev2(128 * kMiB);
  ext4dax::Ext4Dax stock(&dev2, ext4dax::Ext4Options{});
  ExecContext stock_ctx;
  ASSERT_TRUE(stock.Mkfs(stock_ctx).ok());

  std::vector<uint8_t> buf(4096, 1);
  auto fd = fs_->Open(ctx_, "/log", vfs::OpenFlags::Create());
  auto fd2 = stock.Open(stock_ctx, "/log", vfs::OpenFlags::Create());

  const uint64_t t0 = ctx_.clock.NowNs();
  const uint64_t s0 = stock_ctx.clock.NowNs();
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(fs_->Append(ctx_, *fd, buf.data(), buf.size()).ok());
    ASSERT_TRUE(stock.Append(stock_ctx, *fd2, buf.data(), buf.size()).ok());
  }
  EXPECT_LT(ctx_.clock.NowNs() - t0, stock_ctx.clock.NowNs() - s0);
}

TEST_F(SplitFsTest, StagedAppendsReadableBeforeAndAfterFsync) {
  auto fd = fs_->Open(ctx_, "/staged", vfs::OpenFlags::Create());
  std::vector<uint8_t> chunk(1000);
  for (size_t i = 0; i < chunk.size(); i++) {
    chunk[i] = static_cast<uint8_t>(i);
  }
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(fs_->Append(ctx_, *fd, chunk.data(), chunk.size()).ok());
  }
  // Visible pre-relink.
  std::vector<uint8_t> out(chunk.size());
  ASSERT_TRUE(fs_->Pread(ctx_, *fd, out.data(), out.size(), 9 * chunk.size()).ok());
  EXPECT_EQ(out, chunk);
  // Relink at fsync; still visible, including across a remount.
  ASSERT_TRUE(fs_->Fsync(ctx_, *fd).ok());
  ASSERT_TRUE(fs_->Unmount(ctx_).ok());
  ASSERT_TRUE(fs_->Mount(ctx_).ok());
  auto fd2 = fs_->Open(ctx_, "/staged", vfs::OpenFlags::ReadOnly());
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(fs_->Pread(ctx_, *fd2, out.data(), out.size(), 4 * chunk.size()).ok());
  EXPECT_EQ(out, chunk);
  auto st = fs_->Stat(ctx_, "/staged");
  EXPECT_EQ(st->size, 10 * chunk.size());
}

TEST_F(SplitFsTest, NamespaceOpsStillUseJbd2) {
  // Creates + fsync inherit the JBD2 commit: the journal-byte counter moves
  // in 4 KiB block units (whole-block journaling), unlike the staged path.
  auto before = ctx_.counters.journal_bytes;
  auto fd = fs_->Open(ctx_, "/newfile", vfs::OpenFlags::Create());
  ASSERT_TRUE(fs_->Fsync(ctx_, *fd).ok());
  EXPECT_GE(ctx_.counters.journal_bytes - before, 4096u);
}

}  // namespace
