// Differential tests for the fast simulator structures against the reference
// implementations (WINEFS_REFERENCE_SIM): the flat-array TLB vs the
// list+map one, the SoA LLC vs the array-of-structs one, and the batched /
// chunk-spanning MappedFile paths vs the one-call-per-unit reference loops.
// Every test asserts bit-identical modeled output — result sequences, final
// state, simulated clock, and all registered counters.
#include <gtest/gtest.h>

#include "src/common/perf_counters.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/pmem/device.h"
#include "src/vmem/llc_cache.h"
#include "src/vmem/mmap_engine.h"
#include "src/vmem/tlb.h"

namespace {

using common::ExecContext;
using common::kBlockSize;
using common::kHugepageSize;
using common::kMiB;
using vmem::LlcCache;
using vmem::MmuParams;
using vmem::Tlb;
using vmem::TlbResult;

MmuParams ReferenceParams(MmuParams params = MmuParams{}) {
  params.reference_sim = true;
  return params;
}

MmuParams FastParams(MmuParams params = MmuParams{}) {
  params.reference_sim = false;
  return params;
}

void ExpectCountersEqual(const common::PerfCounters& a, const common::PerfCounters& b) {
  for (const common::CounterField& field : common::kCounterFields) {
    EXPECT_EQ(a.*field.member, b.*field.member) << "counter " << field.name;
  }
}

// Replays one pseudo-random TLB trace through a reference/fast pair and
// asserts the full result sequence matches. The trace mimics the engine's
// usage: Lookup, Insert on miss, occasional shootdowns and full flushes.
void ReplayTlbTrace(MmuParams params, uint64_t ops, uint64_t base_pages, uint64_t huge_chunks,
                    uint32_t invalidate_percent, uint64_t seed) {
  Tlb reference(ReferenceParams(params));
  Tlb fast(FastParams(params));
  ASSERT_TRUE(reference.reference_sim());
  ASSERT_FALSE(fast.reference_sim());

  common::Rng rng(seed);
  uint64_t mismatches = 0;
  for (uint64_t i = 0; i < ops; i++) {
    const bool huge = rng.NextBelow(4) == 0;
    const uint64_t vaddr = huge ? rng.NextBelow(huge_chunks) * kHugepageSize + rng.NextBelow(kHugepageSize)
                                : rng.NextBelow(base_pages) * kBlockSize + rng.NextBelow(kBlockSize);
    const uint64_t op = rng.NextBelow(100);
    if (op < invalidate_percent) {
      reference.InvalidatePage(vaddr, huge);
      fast.InvalidatePage(vaddr, huge);
    } else if (op == 99 && i % 4096 == 0) {
      reference.Flush();
      fast.Flush();
    } else {
      const TlbResult want = reference.Lookup(vaddr, huge);
      const TlbResult got = fast.Lookup(vaddr, huge);
      if (want != got) {
        mismatches++;
        ASSERT_LE(mismatches, 5u) << "too many TLB divergences; first ops around " << i;
        ADD_FAILURE() << "TLB divergence at op " << i << ": reference="
                      << static_cast<int>(want) << " fast=" << static_cast<int>(got);
      }
      if (want == TlbResult::kMiss) {
        reference.Insert(vaddr, huge);
        fast.Insert(vaddr, huge);
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(SimDiffTlb, MillionOpTraceDefaultCapacities) {
  // Page space chosen to straddle the default capacities (64/32 L1, 1536 L2):
  // plenty of L1 hits, L2 promotions, walks, and evictions from both levels.
  ReplayTlbTrace(MmuParams{}, 1000000, /*base_pages=*/4096, /*huge_chunks=*/64,
                 /*invalidate_percent=*/8, /*seed=*/1);
}

TEST(SimDiffTlb, TinyCapacitiesHammerEvictionAndErase) {
  MmuParams params;
  params.l1_tlb_4k_entries = 4;
  params.l1_tlb_2m_entries = 2;
  params.l2_tlb_entries = 16;
  // Heavy invalidation exercises FlatLruSet's backward-shift hash deletion
  // and free-slot reuse on every few ops.
  ReplayTlbTrace(params, 200000, /*base_pages=*/64, /*huge_chunks=*/8,
                 /*invalidate_percent=*/25, /*seed=*/2);
}

TEST(SimDiffLlc, TraceWithFlushTickReset) {
  MmuParams params;
  params.llc_bytes = 64 * 16 * 64;  // 64 sets x 16 ways
  params.llc_ways = 16;
  LlcCache reference(ReferenceParams(params));
  LlcCache fast(FastParams(params));
  ASSERT_TRUE(reference.reference_sim());
  ASSERT_FALSE(fast.reference_sim());
  EXPECT_EQ(reference.StateHash(), fast.StateHash());

  // Footprint 4x the cache, so every set sees fills, hits, and evictions.
  const uint64_t footprint = 4 * params.llc_bytes;
  common::Rng rng(3);
  constexpr uint64_t kOps = 1000000;
  for (uint64_t i = 0; i < kOps; i++) {
    if (i == 250000 || i == 650000) {
      // Flush resets the valid state AND the LRU tick; replacement decisions
      // right after depend on the tick restart being identical.
      reference.Flush();
      fast.Flush();
      ASSERT_EQ(reference.StateHash(), fast.StateHash()) << "state after flush at op " << i;
    }
    const uint64_t paddr = rng.NextBelow(footprint);
    const bool want = reference.Access(paddr);
    const bool got = fast.Access(paddr);
    ASSERT_EQ(want, got) << "LLC hit/miss divergence at op " << i;
    if (i % 50000 == 0) {
      ASSERT_EQ(reference.StateHash(), fast.StateHash()) << "state divergence at op " << i;
    }
  }
  EXPECT_EQ(reference.StateHash(), fast.StateHash());
}

// Scripted fault handler (same shape as vmem_test's): maps file offsets 1:1
// onto a device region, optionally with hugepages.
class FakeHandler : public vmem::FaultHandler {
 public:
  FakeHandler(uint64_t phys_base, bool huge) : phys_base_(phys_base), huge_(huge) {}

  common::Result<FaultMapping> HandleFault(ExecContext& ctx, uint64_t ino,
                                           uint64_t page_offset, bool write) override {
    (void)ctx;
    (void)ino;
    (void)write;
    faults_++;
    if (huge_) {
      return FaultMapping{phys_base_ + common::RoundDown(page_offset, kHugepageSize), true};
    }
    return FaultMapping{phys_base_ + page_offset, false};
  }

  int faults_ = 0;

 private:
  uint64_t phys_base_;
  bool huge_;
};

// One independent device + engine + mapping per side, so the two replays
// share nothing.
struct Bed {
  Bed(MmuParams params, uint64_t map_bytes, bool huge)
      : dev(64 * kMiB),
        engine(&dev, params, 1),
        handler(4 * kMiB, huge),
        map(engine.Mmap(&handler, 1, map_bytes, /*writable=*/true)) {}

  pmem::PmemDevice dev;
  vmem::MmapEngine engine;
  FakeHandler handler;
  std::unique_ptr<vmem::MappedFile> map;
};

std::vector<uint64_t> RandomLineOffsets(uint64_t count, uint64_t map_bytes, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<uint64_t> offsets(count);
  for (auto& offset : offsets) {
    offset = common::RoundDown(rng.NextBelow(map_bytes - 64), 64);
  }
  return offsets;
}

TEST(SimDiffEngine, AccessLinesMatchesLoadLineLoop) {
  // 8 MiB of base pages = 2048 PTEs: overflows the 1536-entry L2 so the trace
  // exercises hits, promotions, walks, and LLC fills.
  constexpr uint64_t kMapBytes = 8 * kMiB;
  Bed batched(FastParams(), kMapBytes, /*huge=*/false);
  Bed looped(FastParams(), kMapBytes, /*huge=*/false);
  const auto offsets = RandomLineOffsets(100000, kMapBytes, 7);

  ExecContext batched_ctx;
  std::vector<vmem::LineOp> ops(offsets.size());
  for (size_t i = 0; i < offsets.size(); i++) {
    ops[i].offset = offsets[i];
  }
  ASSERT_TRUE(batched.map->AccessLines(batched_ctx, ops.data(), ops.size(), /*write=*/false).ok());

  ExecContext looped_ctx;
  std::vector<uint64_t> loop_latencies(offsets.size());
  for (size_t i = 0; i < offsets.size(); i++) {
    auto latency = looped.map->LoadLine(looped_ctx, offsets[i], nullptr);
    ASSERT_TRUE(latency.ok());
    loop_latencies[i] = *latency;
  }

  EXPECT_EQ(batched_ctx.clock.NowNs(), looped_ctx.clock.NowNs());
  ExpectCountersEqual(batched_ctx.counters, looped_ctx.counters);
  for (size_t i = 0; i < offsets.size(); i++) {
    ASSERT_EQ(ops[i].latency_ns, loop_latencies[i]) << "latency divergence at op " << i;
  }
}

TEST(SimDiffEngine, LineAccessesIdenticalAcrossSimulators) {
  constexpr uint64_t kMapBytes = 8 * kMiB;
  Bed reference(ReferenceParams(), kMapBytes, /*huge=*/false);
  Bed fast(FastParams(), kMapBytes, /*huge=*/false);
  const auto offsets = RandomLineOffsets(100000, kMapBytes, 11);

  std::vector<vmem::LineOp> reference_ops(offsets.size());
  std::vector<vmem::LineOp> fast_ops(offsets.size());
  for (size_t i = 0; i < offsets.size(); i++) {
    reference_ops[i].offset = offsets[i];
    fast_ops[i].offset = offsets[i];
  }
  ExecContext reference_ctx;
  ExecContext fast_ctx;
  ASSERT_TRUE(reference.map
                  ->AccessLines(reference_ctx, reference_ops.data(), reference_ops.size(),
                                /*write=*/false)
                  .ok());
  ASSERT_TRUE(fast.map->AccessLines(fast_ctx, fast_ops.data(), fast_ops.size(), /*write=*/false)
                  .ok());

  EXPECT_EQ(reference_ctx.clock.NowNs(), fast_ctx.clock.NowNs());
  ExpectCountersEqual(reference_ctx.counters, fast_ctx.counters);
  for (size_t i = 0; i < offsets.size(); i++) {
    ASSERT_EQ(reference_ops[i].latency_ns, fast_ops[i].latency_ns)
        << "latency divergence at op " << i;
  }
  EXPECT_EQ(reference.handler.faults_, fast.handler.faults_);
}

// The chunk-spanning bulk fast path must charge exactly what the reference
// per-4KB-span loop charges: same clock, same counters, for an unaligned
// write crossing hugepage chunk boundaries.
TEST(SimDiffEngine, BulkWriteMatchesPerPageSpanLoop) {
  constexpr uint64_t kMapBytes = 6 * kMiB;
  constexpr uint64_t kOffset = 100;                 // unaligned head
  constexpr uint64_t kLen = 2 * kMiB + 1234;        // unaligned tail, crosses a chunk
  Bed bulk(FastParams(), kMapBytes, /*huge=*/true);
  Bed spans(FastParams(), kMapBytes, /*huge=*/true);
  std::vector<uint8_t> buf(kLen, 0x5a);

  ExecContext bulk_ctx;
  ASSERT_TRUE(bulk.map->Write(bulk_ctx, kOffset, buf.data(), kLen).ok());

  // Reference loop: one Write call per page-bounded span, the unit the
  // pre-optimization loop iterated in.
  ExecContext span_ctx;
  uint64_t offset = kOffset;
  uint64_t done = 0;
  while (done < kLen) {
    const uint64_t page_end = common::RoundDown(offset, kBlockSize) + kBlockSize;
    const uint64_t span = std::min(kLen - done, page_end - offset);
    ASSERT_TRUE(spans.map->Write(span_ctx, offset, buf.data() + done, span).ok());
    offset += span;
    done += span;
  }

  EXPECT_EQ(bulk_ctx.clock.NowNs(), span_ctx.clock.NowNs());
  ExpectCountersEqual(bulk_ctx.counters, span_ctx.counters);
  EXPECT_EQ(bulk.handler.faults_, spans.handler.faults_);

  // Both replays must also have moved the same bytes to the same place.
  std::vector<uint8_t> bulk_back(kLen), span_back(kLen);
  ExecContext check_ctx;
  ASSERT_TRUE(bulk.map->Read(check_ctx, kOffset, bulk_back.data(), kLen).ok());
  ASSERT_TRUE(spans.map->Read(check_ctx, kOffset, span_back.data(), kLen).ok());
  EXPECT_EQ(bulk_back, span_back);
  EXPECT_EQ(bulk_back, buf);
}

TEST(SimDiffEngine, BulkReadMatchesPerPageSpanLoop) {
  constexpr uint64_t kMapBytes = 6 * kMiB;
  constexpr uint64_t kOffset = 4096 - 7;
  constexpr uint64_t kLen = 4 * kMiB + 33;
  Bed bulk(FastParams(), kMapBytes, /*huge=*/true);
  Bed spans(FastParams(), kMapBytes, /*huge=*/true);
  std::vector<uint8_t> buf(kLen);

  ExecContext bulk_ctx;
  ASSERT_TRUE(bulk.map->Read(bulk_ctx, kOffset, buf.data(), kLen).ok());

  ExecContext span_ctx;
  uint64_t offset = kOffset;
  uint64_t done = 0;
  while (done < kLen) {
    const uint64_t page_end = common::RoundDown(offset, kBlockSize) + kBlockSize;
    const uint64_t span = std::min(kLen - done, page_end - offset);
    ASSERT_TRUE(spans.map->Read(span_ctx, offset, buf.data() + done, span).ok());
    offset += span;
    done += span;
  }

  EXPECT_EQ(bulk_ctx.clock.NowNs(), span_ctx.clock.NowNs());
  ExpectCountersEqual(bulk_ctx.counters, span_ctx.counters);
}

// Prefault over hugepage chunks steps 2 MiB at a time but must report the
// same modeled fault and TLB-hit counts the per-4KB walk reported.
TEST(SimDiffEngine, PrefaultFactoredChargingPinsCounts) {
  constexpr uint64_t kMapBytes = 4 * kMiB;
  Bed fast(FastParams(), kMapBytes, /*huge=*/true);
  ExecContext fast_ctx;
  ASSERT_TRUE(fast.map->Prefault(fast_ctx, /*write=*/true).ok());
  EXPECT_EQ(fast_ctx.counters.page_faults_2m, 2u);
  EXPECT_EQ(fast_ctx.counters.page_faults_4k, 0u);
  EXPECT_EQ(fast.handler.faults_, 2);
  // 1024 pages total; the first page of each chunk faults, the remaining 511
  // per chunk are the L1 hits the old loop recorded one by one.
  EXPECT_EQ(fast_ctx.counters.tlb_hits, 1022u);

  Bed reference(ReferenceParams(), kMapBytes, /*huge=*/true);
  ExecContext reference_ctx;
  ASSERT_TRUE(reference.map->Prefault(reference_ctx, /*write=*/true).ok());
  EXPECT_EQ(reference_ctx.clock.NowNs(), fast_ctx.clock.NowNs());
  ExpectCountersEqual(reference_ctx.counters, fast_ctx.counters);
}

TEST(SimDiffEngine, PrefaultBaseMappingUnchanged) {
  constexpr uint64_t kMapBytes = 2 * kMiB;
  Bed reference(ReferenceParams(), kMapBytes, /*huge=*/false);
  Bed fast(FastParams(), kMapBytes, /*huge=*/false);
  ExecContext reference_ctx;
  ExecContext fast_ctx;
  ASSERT_TRUE(reference.map->Prefault(reference_ctx, /*write=*/false).ok());
  ASSERT_TRUE(fast.map->Prefault(fast_ctx, /*write=*/false).ok());
  EXPECT_EQ(fast_ctx.counters.page_faults_4k, 512u);
  EXPECT_EQ(reference_ctx.clock.NowNs(), fast_ctx.clock.NowNs());
  ExpectCountersEqual(reference_ctx.counters, fast_ctx.counters);
}

}  // namespace
