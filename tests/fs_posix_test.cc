// POSIX-surface conformance suite, parameterized over every modeled
// filesystem (§5.2: "WineFS passes all the tests" of the POSIX test suite —
// here the same behavioural battery runs against every implementation).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "src/common/units.h"
#include "src/fs/registry.h"

namespace {

using common::ErrorCode;
using common::ExecContext;
using common::kBlockSize;
using common::kMiB;

class FsPosixTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<pmem::PmemDevice>(256 * kMiB);
    fs_ = fsreg::Create(GetParam(), dev_.get());
    ASSERT_NE(fs_, nullptr);
    ASSERT_TRUE(fs_->Mkfs(ctx_).ok());
  }

  std::vector<uint8_t> Pattern(size_t n, uint8_t seed = 1) {
    std::vector<uint8_t> buf(n);
    for (size_t i = 0; i < n; i++) {
      buf[i] = static_cast<uint8_t>(seed + i * 131);
    }
    return buf;
  }

  // Writes a whole file through the syscall interface.
  int MustCreate(const std::string& path, const std::vector<uint8_t>& data) {
    auto fd = fs_->Open(ctx_, path, vfs::OpenFlags::Create());
    EXPECT_TRUE(fd.ok());
    if (!data.empty()) {
      auto n = fs_->Pwrite(ctx_, *fd, data.data(), data.size(), 0);
      EXPECT_TRUE(n.ok());
      EXPECT_EQ(*n, data.size());
    }
    return *fd;
  }

  ExecContext ctx_;
  std::unique_ptr<pmem::PmemDevice> dev_;
  std::unique_ptr<vfs::FileSystem> fs_;
};

TEST_P(FsPosixTest, CreateWriteReadRoundTrip) {
  const auto data = Pattern(10000);
  const int fd = MustCreate("/a.txt", data);
  std::vector<uint8_t> out(data.size());
  auto n = fs_->Pread(ctx_, fd, out.data(), out.size(), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(out, data);
  EXPECT_TRUE(fs_->Close(ctx_, fd).ok());
}

TEST_P(FsPosixTest, OpenMissingFails) {
  auto fd = fs_->Open(ctx_, "/missing", vfs::OpenFlags::ReadOnly());
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), ErrorCode::kNotFound);
}

TEST_P(FsPosixTest, ExclusiveCreateFailsOnExisting) {
  MustCreate("/dup", {});
  auto fd = fs_->Open(ctx_, "/dup", vfs::OpenFlags::CreateExcl());
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), ErrorCode::kExists);
}

TEST_P(FsPosixTest, TruncateOnOpenEmptiesFile) {
  MustCreate("/t", Pattern(5000));
  vfs::OpenFlags flags(vfs::OpenFlags::kTrunc);
  auto fd = fs_->Open(ctx_, "/t", flags);
  ASSERT_TRUE(fd.ok());
  auto st = fs_->Stat(ctx_, "/t");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 0u);
}

TEST_P(FsPosixTest, AppendExtendsFile) {
  const int fd = MustCreate("/log", {});
  const auto chunk = Pattern(kBlockSize);
  for (int i = 0; i < 5; i++) {
    auto off = fs_->Append(ctx_, fd, chunk.data(), chunk.size());
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(*off, i * kBlockSize);
  }
  auto st = fs_->Stat(ctx_, "/log");
  EXPECT_EQ(st->size, 5 * kBlockSize);
}

TEST_P(FsPosixTest, OverwriteMiddlePreservesRest) {
  const auto data = Pattern(3 * kBlockSize, 1);
  const int fd = MustCreate("/ow", data);
  const auto patch = Pattern(100, 77);
  ASSERT_TRUE(fs_->Pwrite(ctx_, fd, patch.data(), patch.size(), 5000).ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_->Pread(ctx_, fd, out.data(), out.size(), 0).ok());
  std::vector<uint8_t> expect = data;
  std::memcpy(expect.data() + 5000, patch.data(), patch.size());
  EXPECT_EQ(out, expect);
}

TEST_P(FsPosixTest, UnalignedAppendsAccumulate) {
  // WiredTiger-style: appends that straddle block boundaries (§5.5).
  const int fd = MustCreate("/wt", {});
  std::vector<uint8_t> all;
  for (int i = 0; i < 40; i++) {
    const auto chunk = Pattern(1000 + i * 13, static_cast<uint8_t>(i));
    ASSERT_TRUE(fs_->Append(ctx_, fd, chunk.data(), chunk.size()).ok());
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  std::vector<uint8_t> out(all.size());
  ASSERT_TRUE(fs_->Pread(ctx_, fd, out.data(), out.size(), 0).ok());
  EXPECT_EQ(out, all);
}

TEST_P(FsPosixTest, ReadPastEofTruncated) {
  const int fd = MustCreate("/short", Pattern(100));
  std::vector<uint8_t> out(1000);
  auto n = fs_->Pread(ctx_, fd, out.data(), out.size(), 50);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 50u);
  auto n2 = fs_->Pread(ctx_, fd, out.data(), out.size(), 200);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
}

TEST_P(FsPosixTest, SparseFileReadsZeros) {
  const int fd = MustCreate("/sparse", {});
  ASSERT_TRUE(fs_->Ftruncate(ctx_, fd, 10 * kMiB).ok());
  auto st = fs_->Stat(ctx_, "/sparse");
  EXPECT_EQ(st->size, 10 * kMiB);
  EXPECT_EQ(st->blocks, 0u);  // no allocation (LMDB-style on-demand)
  std::vector<uint8_t> out(4096, 0xff);
  ASSERT_TRUE(fs_->Pread(ctx_, fd, out.data(), out.size(), 5 * kMiB).ok());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0u);
  }
}

TEST_P(FsPosixTest, FtruncateShrinkFreesBlocks) {
  const int fd = MustCreate("/shrink", Pattern(8 * kBlockSize));
  const auto before = fs_->StatFs(ctx_).value().free_blocks;
  ASSERT_TRUE(fs_->Ftruncate(ctx_, fd, kBlockSize).ok());
  EXPECT_GT(fs_->StatFs(ctx_).value().free_blocks, before);
  auto st = fs_->Stat(ctx_, "/shrink");
  EXPECT_EQ(st->size, kBlockSize);
}

TEST_P(FsPosixTest, FallocateAllocatesBlocks) {
  const int fd = MustCreate("/fa", {});
  ASSERT_TRUE(fs_->Fallocate(ctx_, fd, 0, 4 * kMiB).ok());
  auto st = fs_->Stat(ctx_, "/fa");
  EXPECT_EQ(st->size, 4 * kMiB);
  EXPECT_EQ(st->blocks, 4 * kMiB / kBlockSize);
}

TEST_P(FsPosixTest, MkdirAndNesting) {
  ASSERT_TRUE(fs_->Mkdir(ctx_, "/d1").ok());
  ASSERT_TRUE(fs_->Mkdir(ctx_, "/d1/d2").ok());
  MustCreate("/d1/d2/f", Pattern(10));
  auto st = fs_->Stat(ctx_, "/d1/d2/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 10u);
  EXPECT_EQ(fs_->Mkdir(ctx_, "/d1").code(), ErrorCode::kExists);
  EXPECT_EQ(fs_->Mkdir(ctx_, "/nope/d").code(), ErrorCode::kNotFound);
}

TEST_P(FsPosixTest, ReadDirListsEntries) {
  ASSERT_TRUE(fs_->Mkdir(ctx_, "/dir").ok());
  MustCreate("/dir/a", {});
  MustCreate("/dir/b", {});
  ASSERT_TRUE(fs_->Mkdir(ctx_, "/dir/sub").ok());
  auto entries = fs_->ReadDir(ctx_, "/dir");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
  int dirs = 0;
  for (const auto& e : *entries) {
    dirs += e.is_dir ? 1 : 0;
  }
  EXPECT_EQ(dirs, 1);
}

TEST_P(FsPosixTest, RmdirOnlyWhenEmpty) {
  ASSERT_TRUE(fs_->Mkdir(ctx_, "/rd").ok());
  MustCreate("/rd/f", {});
  EXPECT_EQ(fs_->Rmdir(ctx_, "/rd").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(fs_->Unlink(ctx_, "/rd/f").ok());
  EXPECT_TRUE(fs_->Rmdir(ctx_, "/rd").ok());
  EXPECT_EQ(fs_->Stat(ctx_, "/rd").status().code(), ErrorCode::kNotFound);
}

TEST_P(FsPosixTest, UnlinkFreesSpace) {
  // Warm up the root directory (its dirent block stays allocated) so the
  // before/after comparison only sees the file's own blocks.
  MustCreate("/warmup", {});
  ASSERT_TRUE(fs_->Unlink(ctx_, "/warmup").ok());
  const auto before = fs_->StatFs(ctx_).value().free_blocks;
  MustCreate("/big", Pattern(4 * kMiB));
  EXPECT_LT(fs_->StatFs(ctx_).value().free_blocks, before);
  ASSERT_TRUE(fs_->Unlink(ctx_, "/big").ok());
  // The parent directory's own metadata (e.g. a NOVA log page) may have grown
  // by a block or two during the churn; the file's 1024 blocks must be back.
  EXPECT_GE(fs_->StatFs(ctx_).value().free_blocks + 2, before);
  EXPECT_LE(fs_->StatFs(ctx_).value().free_blocks, before);
  EXPECT_EQ(fs_->Stat(ctx_, "/big").status().code(), ErrorCode::kNotFound);
}

TEST_P(FsPosixTest, UnlinkDirectoryFails) {
  ASSERT_TRUE(fs_->Mkdir(ctx_, "/isdir").ok());
  EXPECT_EQ(fs_->Unlink(ctx_, "/isdir").code(), ErrorCode::kIsDir);
  EXPECT_EQ(fs_->Rmdir(ctx_, "/isdir").code(), ErrorCode::kOk);
}

TEST_P(FsPosixTest, RenameMovesFile) {
  MustCreate("/old", Pattern(123));
  ASSERT_TRUE(fs_->Mkdir(ctx_, "/dst").ok());
  ASSERT_TRUE(fs_->Rename(ctx_, "/old", "/dst/new").ok());
  EXPECT_EQ(fs_->Stat(ctx_, "/old").status().code(), ErrorCode::kNotFound);
  auto st = fs_->Stat(ctx_, "/dst/new");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 123u);
}

TEST_P(FsPosixTest, RenameOverwritesFile) {
  MustCreate("/src", Pattern(10));
  MustCreate("/tgt", Pattern(9999));
  const auto before = fs_->StatFs(ctx_).value().free_blocks;
  ASSERT_TRUE(fs_->Rename(ctx_, "/src", "/tgt").ok());
  auto st = fs_->Stat(ctx_, "/tgt");
  EXPECT_EQ(st->size, 10u);
  EXPECT_GE(fs_->StatFs(ctx_).value().free_blocks, before);  // old target freed
}

TEST_P(FsPosixTest, XattrRoundTrip) {
  MustCreate("/x", {});
  ASSERT_TRUE(fs_->SetXattr(ctx_, "/x", "user.winefs.aligned", "1").ok());
  auto v = fs_->GetXattr(ctx_, "/x", "user.winefs.aligned");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
  EXPECT_EQ(fs_->GetXattr(ctx_, "/x", "user.other").status().code(), ErrorCode::kNoData);
}

TEST_P(FsPosixTest, FsyncSucceedsAndCounts) {
  const int fd = MustCreate("/fsynced", Pattern(kBlockSize));
  const auto before = ctx_.counters.fsync_count;
  ASSERT_TRUE(fs_->Fsync(ctx_, fd).ok());
  EXPECT_EQ(ctx_.counters.fsync_count, before + 1);
}

TEST_P(FsPosixTest, BadFdRejected) {
  uint8_t b;
  EXPECT_EQ(fs_->Pread(ctx_, 9999, &b, 1, 0).status().code(), ErrorCode::kBadFd);
  EXPECT_EQ(fs_->Fsync(ctx_, -1).code(), ErrorCode::kBadFd);
  EXPECT_EQ(fs_->Close(ctx_, 12345).code(), ErrorCode::kBadFd);
}

TEST_P(FsPosixTest, ManySmallFiles) {
  ASSERT_TRUE(fs_->Mkdir(ctx_, "/many").ok());
  for (int i = 0; i < 300; i++) {
    const std::string path = "/many/f" + std::to_string(i);
    const int fd = MustCreate(path, Pattern(256, static_cast<uint8_t>(i)));
    ASSERT_TRUE(fs_->Close(ctx_, fd).ok());
  }
  auto entries = fs_->ReadDir(ctx_, "/many");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 300u);
  // Spot-check contents.
  auto fd = fs_->Open(ctx_, "/many/f123", vfs::OpenFlags::ReadOnly());
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> out(256);
  ASSERT_TRUE(fs_->Pread(ctx_, *fd, out.data(), 256, 0).ok());
  EXPECT_EQ(out, Pattern(256, 123));
}

TEST_P(FsPosixTest, LargeFragmentedFileSurvives) {
  // Force many extents by interleaving two growing files.
  const int fa = MustCreate("/frag_a", {});
  const int fb = MustCreate("/frag_b", {});
  const auto chunk = Pattern(3 * kBlockSize);
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(fs_->Append(ctx_, fa, chunk.data(), chunk.size()).ok());
    ASSERT_TRUE(fs_->Append(ctx_, fb, chunk.data(), chunk.size()).ok());
  }
  auto st = fs_->Stat(ctx_, "/frag_a");
  EXPECT_EQ(st->size, 150 * kBlockSize);
  std::vector<uint8_t> out(chunk.size());
  ASSERT_TRUE(fs_->Pread(ctx_, fa, out.data(), out.size(), 49 * chunk.size()).ok());
  EXPECT_EQ(out, chunk);
}

TEST_P(FsPosixTest, RemountPreservesEverything) {
  ASSERT_TRUE(fs_->Mkdir(ctx_, "/keep").ok());
  const auto data = Pattern(100000);
  const int fd = MustCreate("/keep/file", data);
  ASSERT_TRUE(fs_->SetXattr(ctx_, "/keep/file", "user.winefs.aligned", "1").ok());
  ASSERT_TRUE(fs_->Close(ctx_, fd).ok());
  ASSERT_TRUE(fs_->Unmount(ctx_).ok());
  ASSERT_TRUE(fs_->Mount(ctx_).ok());

  auto st = fs_->Stat(ctx_, "/keep/file");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, data.size());
  auto fd2 = fs_->Open(ctx_, "/keep/file", vfs::OpenFlags::ReadOnly());
  ASSERT_TRUE(fd2.ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_->Pread(ctx_, *fd2, out.data(), out.size(), 0).ok());
  EXPECT_EQ(out, data);
  auto v = fs_->GetXattr(ctx_, "/keep/file", "user.winefs.aligned");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
}

TEST_P(FsPosixTest, RemountPreservesFreeSpaceAccounting) {
  MustCreate("/f1", Pattern(1 * kMiB));
  const auto before = fs_->StatFs(ctx_).value();
  ASSERT_TRUE(fs_->Unmount(ctx_).ok());
  ASSERT_TRUE(fs_->Mount(ctx_).ok());
  const auto after = fs_->StatFs(ctx_).value();
  // Log-structured filesystems reclaim their forgotten per-inode log pages on
  // remount (see Nova::RebuildAllocator), so free space may grow slightly.
  EXPECT_GE(after.free_blocks, before.free_blocks);
  EXPECT_LE(after.free_blocks - before.free_blocks, 16u);
}

TEST_P(FsPosixTest, DeepPathsResolve) {
  std::string path;
  for (int d = 0; d < 8; d++) {
    path += "/d" + std::to_string(d);
    ASSERT_TRUE(fs_->Mkdir(ctx_, path).ok());
  }
  MustCreate(path + "/leaf", Pattern(64));
  auto st = fs_->Stat(ctx_, path + "/leaf");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 64u);
}

TEST_P(FsPosixTest, StatRoot) {
  auto st = fs_->Stat(ctx_, "/");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->is_dir);
  EXPECT_EQ(st->ino, vfs::kRootIno);
}

TEST_P(FsPosixTest, EnospcSurfacedAndRecoverable) {
  // Fill the FS, expect kNoSpace, then delete and retry successfully.
  int i = 0;
  common::Status last = common::OkStatus();
  while (last.ok() && i < 100000) {
    auto fd = fs_->Open(ctx_, "/fill" + std::to_string(i), vfs::OpenFlags::Create());
    ASSERT_TRUE(fd.ok());
    last = fs_->Fallocate(ctx_, *fd, 0, 8 * kMiB);
    ASSERT_TRUE(fs_->Close(ctx_, *fd).ok());
    i++;
  }
  EXPECT_EQ(last.code(), ErrorCode::kNoSpace);
  ASSERT_TRUE(fs_->Unlink(ctx_, "/fill0").ok());
  auto fd = fs_->Open(ctx_, "/retry", vfs::OpenFlags::Create());
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(fs_->Fallocate(ctx_, *fd, 0, 4 * kMiB).ok());
}

INSTANTIATE_TEST_SUITE_P(AllFilesystems, FsPosixTest,
                         ::testing::Values("winefs", "winefs-relaxed", "ext4-dax", "xfs-dax",
                                           "pmfs", "nova", "nova-relaxed", "splitfs",
                                           "strata"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
