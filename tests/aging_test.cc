// Aging-framework tests plus the headline fragmentation property (§2.3,
// Fig 3): after Geriatrix-style aging, WineFS retains hugepage-capable free
// space while ext4-DAX and NOVA lose it.
#include <gtest/gtest.h>

#include <memory>

#include "src/aging/geriatrix.h"
#include "src/aging/profiles.h"
#include "src/common/units.h"
#include "src/fs/registry.h"

namespace {

using common::ExecContext;
using common::kMiB;

TEST(ProfileTest, AgrawalCapacityShareMatchesPaper) {
  auto profile = aging::Profile::Agrawal(1);
  // §5.1: 56% of capacity in large (>= 2 MiB) files.
  EXPECT_NEAR(profile.LargeFileCapacityShare(), 0.56, 0.08);
}

TEST(ProfileTest, WangHpcIsLargeFileHeavy) {
  auto profile = aging::Profile::WangHpc(1);
  EXPECT_GT(profile.LargeFileCapacityShare(), 0.5);
}

TEST(ProfileTest, SamplesSpanBuckets) {
  auto profile = aging::Profile::Agrawal(2);
  uint64_t small = 0;
  uint64_t large = 0;
  for (int i = 0; i < 5000; i++) {
    const uint64_t size = profile.SampleFileSize();
    EXPECT_GE(size, 256u);
    (size >= 2 * kMiB ? large : small)++;
  }
  EXPECT_GT(small, large);  // small files dominate by count
  EXPECT_GT(large, 0u);
}

class AgingFsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AgingFsTest, AgesToTargetUtilization) {
  pmem::PmemDevice dev(512 * kMiB);
  auto fs = fsreg::Create(GetParam(), &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  aging::AgingConfig config;
  config.target_utilization = 0.6;
  config.write_multiplier = 2.0;
  aging::Geriatrix geriatrix(fs.get(), aging::Profile::Agrawal(11), config);
  auto stats = geriatrix.Run(ctx);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_NEAR(stats->final_utilization, 0.6, 0.1);
  EXPECT_GT(stats->files_created, stats->files_deleted);
  EXPECT_GT(stats->files_deleted, 0u);
  EXPECT_GT(stats->bytes_allocated, 2 * 512ull * kMiB);
}

INSTANTIATE_TEST_SUITE_P(Filesystems, AgingFsTest,
                         ::testing::Values("winefs", "ext4-dax", "nova"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(AgingPropertyTest, WineFsKeepsAlignedFreeSpaceOthersLoseIt) {
  // The Fig 3 property at reduced scale: at 70% utilization after churn,
  // WineFS's free space stays overwhelmingly hugepage-capable; NOVA's is
  // mostly gone; ext4-DAX sits in between but well below WineFS.
  auto aligned_fraction = [](const std::string& name) {
    pmem::PmemDevice dev(512 * kMiB);
    auto fs = fsreg::Create(name, &dev);
    ExecContext ctx;
    EXPECT_TRUE(fs->Mkfs(ctx).ok());
    aging::AgingConfig config;
    config.target_utilization = 0.7;
    config.write_multiplier = 3.0;
    config.seed = 5;
    aging::Geriatrix geriatrix(fs.get(), aging::Profile::Agrawal(5), config);
    EXPECT_TRUE(geriatrix.Run(ctx).ok());
    return fs->StatFs(ctx).value().AlignedFreeFraction();
  };

  const double winefs = aligned_fraction("winefs");
  const double ext4 = aligned_fraction("ext4-dax");
  const double nova = aligned_fraction("nova");
  EXPECT_GT(winefs, 0.80);
  EXPECT_LT(nova, winefs);
  EXPECT_LT(ext4, winefs);
  EXPECT_LT(nova, 0.5);
}

TEST(AgingPropertyTest, IncrementalSweepIsMonotoneInUtilization) {
  pmem::PmemDevice dev(256 * kMiB);
  auto fs = fsreg::Create("ext4-dax", &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  aging::AgingConfig config;
  aging::Geriatrix geriatrix(fs.get(), aging::Profile::Agrawal(3), config);
  double last_util = 0;
  for (double target : {0.3, 0.5, 0.7}) {
    auto stats = geriatrix.AgeToUtilization(ctx, target, 0.5);
    ASSERT_TRUE(stats.ok());
    EXPECT_GT(stats->final_utilization, last_util);
    last_util = stats->final_utilization;
  }
}

}  // namespace
