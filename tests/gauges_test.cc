// Tests for the aging-observatory gauge layer: per-filesystem SampleGauges
// probes, MmapEngine hugepage-coverage gauges, and the headline acceptance
// property — under Geriatrix aging, ext4-DAX's aligned-free fraction decays
// while WineFS's stays near its initial value (the paper's core claim, §2/§3,
// observed through the sampler rather than endpoint numbers).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/aging/geriatrix.h"
#include "src/aging/profiles.h"
#include "src/common/exec_context.h"
#include "src/common/units.h"
#include "src/fs/registry.h"
#include "src/obs/gauges.h"
#include "src/pmem/device.h"
#include "src/vmem/mmap_engine.h"

namespace {

using common::ExecContext;
using common::kMiB;

// Returns the gauge's value, failing the test if it was not reported.
double Gauge(const obs::GaugeSample& sample, const std::string& name) {
  for (const auto& [gauge, value] : sample.values()) {
    if (gauge == name) {
      return value;
    }
  }
  ADD_FAILURE() << "gauge not reported: " << name;
  return std::nan("");
}

bool HasGauge(const obs::GaugeSample& sample, const std::string& name) {
  for (const auto& [gauge, value] : sample.values()) {
    (void)value;
    if (gauge == name) {
      return true;
    }
  }
  return false;
}

// Mounts `fs_name`, runs a small create/write/delete workload, and samples.
obs::GaugeSample ProbeFs(const std::string& fs_name) {
  pmem::PmemDevice dev(64 * kMiB);
  auto fs = fsreg::Create(fs_name, &dev, /*num_cpus=*/2);
  EXPECT_NE(fs, nullptr) << fs_name;
  ExecContext ctx;
  EXPECT_TRUE(fs->Mkfs(ctx).ok()) << fs_name;
  std::vector<uint8_t> buf(4096, 0x5d);
  for (int i = 0; i < 4; i++) {
    auto fd = fs->Open(ctx, "/g" + std::to_string(i), vfs::OpenFlags::Create());
    EXPECT_TRUE(fd.ok()) << fs_name;
    for (int b = 0; b < 4; b++) {
      EXPECT_TRUE(fs->Pwrite(ctx, *fd, buf.data(), buf.size(), b * 4096).ok()) << fs_name;
    }
    EXPECT_TRUE(fs->Fsync(ctx, *fd).ok()) << fs_name;
    EXPECT_TRUE(fs->Close(ctx, *fd).ok()) << fs_name;
  }
  EXPECT_TRUE(fs->Unlink(ctx, "/g0").ok()) << fs_name;
  obs::GaugeSample sample;
  fs->SampleGauges(sample);
  return sample;
}

TEST(FsGaugesTest, EveryFilesystemReportsFragmentationGauges) {
  std::vector<std::string> lineup = fsreg::RelaxedLineup();
  for (const std::string& fs_name : fsreg::StrictLineup()) {
    lineup.push_back(fs_name);
  }
  for (const std::string& fs_name : lineup) {
    SCOPED_TRACE(fs_name);
    const obs::GaugeSample sample = ProbeFs(fs_name);
    EXPECT_GT(Gauge(sample, "free_blocks"), 0.0);
    const double aligned = Gauge(sample, "aligned_free_fraction");
    EXPECT_GE(aligned, 0.0);
    EXPECT_LE(aligned, 1.0);
    EXPECT_GT(Gauge(sample, "largest_free_run_blocks"), 0.0);
    const double util = Gauge(sample, "utilization");
    EXPECT_GT(util, 0.0);
    EXPECT_LT(util, 1.0);
    EXPECT_GE(Gauge(sample, "dram_index_bytes"), 0.0);
    // Free-run-length histogram: every filesystem exposes it. On a barely-used
    // 64 MiB device the hugepage-capable free space is either in >= 2 MiB runs
    // (histogram) or in reserved aligned extents (WineFS pools the aligned
    // space separately from its holes map, so its run histogram only covers
    // the unaligned leftovers).
    EXPECT_GT(Gauge(sample, "free_runs_ge_2m") + Gauge(sample, "free_aligned_extents"), 0.0);
    EXPECT_GE(Gauge(sample, "free_runs_lt_64k"), 0.0);
    EXPECT_GE(Gauge(sample, "free_runs_64k_512k"), 0.0);
    EXPECT_GE(Gauge(sample, "free_runs_512k_2m"), 0.0);
  }
}

TEST(FsGaugesTest, JournalingFilesystemsReportJournalOccupancy) {
  // JBD2 family (ext4-dax lineage: xfs-dax and splitfs inherit the probe).
  for (const char* fs_name : {"ext4-dax", "xfs-dax", "splitfs"}) {
    SCOPED_TRACE(fs_name);
    const obs::GaugeSample sample = ProbeFs(fs_name);
    EXPECT_TRUE(HasGauge(sample, "journal_dirty_blocks"));
    EXPECT_GT(Gauge(sample, "journal_cursor_blocks"), 0.0);
  }
  // PMFS: single undo-journal ring.
  const obs::GaugeSample pmfs = ProbeFs("pmfs");
  EXPECT_GT(Gauge(pmfs, "journal_entries_written"), 0.0);
  const double fill = Gauge(pmfs, "journal_ring_fill");
  EXPECT_GE(fill, 0.0);
  EXPECT_LT(fill, 1.0);
}

TEST(FsGaugesTest, NovaReportsPerCpuFreeListsAndLogs) {
  for (const char* fs_name : {"nova", "strata"}) {
    SCOPED_TRACE(fs_name);
    const obs::GaugeSample sample = ProbeFs(fs_name);
    // Per-CPU free-list balance: min <= max, and something is free.
    const double lo = Gauge(sample, "cpu_free_min_blocks");
    const double hi = Gauge(sample, "cpu_free_max_blocks");
    EXPECT_LE(lo, hi);
    EXPECT_GT(hi, 0.0);
    // Live inodes hold log pages; no GC has run on this tiny workload.
    EXPECT_GT(Gauge(sample, "log_pages_live"), 0.0);
    EXPECT_GE(Gauge(sample, "gc_runs"), 0.0);
  }
}

TEST(FsGaugesTest, WineFsReportsPoolBalanceAndJournals) {
  for (const char* fs_name : {"winefs", "winefs-relaxed"}) {
    SCOPED_TRACE(fs_name);
    const obs::GaugeSample sample = ProbeFs(fs_name);
    const double aligned_lo = Gauge(sample, "pool_aligned_min");
    const double aligned_hi = Gauge(sample, "pool_aligned_max");
    EXPECT_LE(aligned_lo, aligned_hi);
    EXPECT_GT(aligned_hi, 0.0);
    const double free_lo = Gauge(sample, "pool_free_min_blocks");
    const double free_hi = Gauge(sample, "pool_free_max_blocks");
    EXPECT_LE(free_lo, free_hi);
    EXPECT_GT(free_lo, 0.0);
    EXPECT_GE(Gauge(sample, "journal_wraps"), 0.0);
  }
  // Strict WineFS journals its metadata ops, so entries have been written.
  EXPECT_GT(Gauge(ProbeFs("winefs"), "journal_entries_written"), 0.0);
}

// ---- mmap engine gauges -----------------------------------------------------

TEST(MmapGaugesTest, TracksLiveMappingsAndHugeCoverage) {
  pmem::PmemDevice dev(256 * kMiB);
  auto fs = fsreg::Create("winefs", &dev, /*num_cpus=*/2);
  vmem::MmapEngine engine(&dev, vmem::MmuParams{}, /*num_cpus=*/2);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());

  obs::GaugeSample before;
  engine.SampleGauges(before);
  EXPECT_EQ(Gauge(before, "mmap_files"), 0.0);
  EXPECT_EQ(Gauge(before, "mmap_bytes"), 0.0);

  constexpr uint64_t kFileBytes = 8 * kMiB;
  auto fd = fs->Open(ctx, "/mapped", vfs::OpenFlags::Create());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs->Fallocate(ctx, *fd, 0, kFileBytes).ok());
  auto ino = fs->InodeOf(ctx, *fd);
  ASSERT_TRUE(ino.ok());
  {
    auto map = engine.Mmap(fs.get(), *ino, kFileBytes, /*writable=*/true);
    ASSERT_NE(map, nullptr);
    // Touch every page so mappings (and possibly hugepage promotions) exist.
    std::vector<uint8_t> buf(1 * kMiB, 0x5e);
    for (uint64_t off = 0; off < kFileBytes; off += buf.size()) {
      ASSERT_TRUE(map->Write(ctx, off, buf.data(), buf.size()).ok());
    }
    obs::GaugeSample live;
    engine.SampleGauges(live);
    EXPECT_EQ(Gauge(live, "mmap_files"), 1.0);
    EXPECT_EQ(Gauge(live, "mmap_bytes"), static_cast<double>(kFileBytes));
    const double huge = Gauge(live, "mmap_huge_fraction");
    EXPECT_GE(huge, 0.0);
    EXPECT_LE(huge, 1.0);
    // WineFS fallocates 2 MiB-aligned extents, so a fresh 8 MiB map is
    // hugepage-backed.
    EXPECT_GT(huge, 0.9);
    EXPECT_GT(Gauge(live, "page_table_bytes"), 0.0);
  }
  // The mapping's destructor unregisters it from the engine's gauge view.
  obs::GaugeSample after;
  engine.SampleGauges(after);
  EXPECT_EQ(Gauge(after, "mmap_files"), 0.0);
  EXPECT_EQ(Gauge(after, "mmap_bytes"), 0.0);
}

// ---- the acceptance property: aging trajectories ----------------------------

// The aligned_free_fraction trajectory of one aging run: fill to ~50%
// utilization, then churn 3x the partition capacity. "Aging" is the churn
// phase — the paper's claim is about what churn does to a filled filesystem,
// so the baseline for the within-5% check is the post-fill sample, not the
// empty-fs state.
struct Trajectory {
  std::vector<obs::TimeSeriesPoint> points;
  double post_fill = 0;       // aligned_free_fraction when the fill completed
  uint64_t fill_end_ns = 0;   // simulated time of the fill/churn boundary
};

Trajectory AgeAndSample(const std::string& fs_name) {
  pmem::PmemDevice dev(256 * kMiB);
  auto fs = fsreg::Create(fs_name, &dev, /*num_cpus=*/4);
  EXPECT_NE(fs, nullptr) << fs_name;
  ExecContext ctx;
  EXPECT_TRUE(fs->Mkfs(ctx).ok()) << fs_name;

  obs::TimeSeriesSampler sampler;
  sampler.AddProvider(fs.get());
  ctx.AttachSampler(&sampler);

  aging::AgingConfig config;
  config.target_utilization = 0.5;
  config.seed = 42;
  config.rotate_cpus = 4;
  config.update_fraction = 0.0;
  aging::Geriatrix geriatrix(fs.get(), aging::Profile::Agrawal(42), config);

  Trajectory traj;
  EXPECT_TRUE(geriatrix.AgeToUtilization(ctx, 0.5, /*churn_multiplier=*/0.0).ok()) << fs_name;
  sampler.SampleNow(ctx);
  traj.fill_end_ns = ctx.clock.NowNs();
  EXPECT_TRUE(geriatrix.AgeToUtilization(ctx, 0.5, /*churn_multiplier=*/3.0).ok()) << fs_name;
  sampler.SampleNow(ctx);  // close the series with the final aged state
  ctx.AttachSampler(nullptr);

  const auto* points = sampler.series().Points("aligned_free_fraction");
  if (points == nullptr) {
    ADD_FAILURE() << fs_name << ": no aligned_free_fraction series";
    return traj;
  }
  traj.points = *points;
  for (const obs::TimeSeriesPoint& point : traj.points) {
    if (point.t_ns <= traj.fill_end_ns) {
      traj.post_fill = point.value;
    }
  }
  return traj;
}

double MeanValue(const std::vector<obs::TimeSeriesPoint>& points, size_t begin, size_t end) {
  double sum = 0;
  for (size_t i = begin; i < end; i++) {
    sum += points[i].value;
  }
  return sum / static_cast<double>(end - begin);
}

TEST(AgingTrajectoryTest, Ext4FragmentsWhileWineFsStaysAligned) {
  const Trajectory ext4 = AgeAndSample("ext4-dax");
  const Trajectory winefs = AgeAndSample("winefs");
  ASSERT_GE(ext4.points.size(), 10u);
  ASSERT_GE(winefs.points.size(), 10u);

  // ext4-DAX: the aligned-free fraction trends monotonically downward as
  // churn shreds the free space — each quarter of the timeline sits at or
  // below the previous one, and the total decay is substantial.
  const auto& pts = ext4.points;
  const size_t n = pts.size();
  const double q1 = MeanValue(pts, 0, n / 4);
  const double q2 = MeanValue(pts, n / 4, n / 2);
  const double q3 = MeanValue(pts, n / 2, 3 * n / 4);
  const double q4 = MeanValue(pts, 3 * n / 4, n);
  EXPECT_LE(q2, q1 + 0.01);
  EXPECT_LE(q3, q2 + 0.01);
  EXPECT_LE(q4, q3 + 0.01);
  EXPECT_LT(pts.back().value, ext4.post_fill - 0.05)
      << "aged ext4-dax should have lost aligned free space";

  // WineFS: the per-CPU aligned pools keep free space hugepage-shaped — the
  // aged reading stays within 5% of the post-fill value (same device, same
  // churn that cost ext4-DAX most of its aligned free space).
  const double initial = winefs.post_fill;
  ASSERT_GT(initial, 0.0);
  EXPECT_GE(winefs.points.back().value, initial * 0.95);
  EXPECT_LE(winefs.points.back().value, initial * 1.05 + 0.05);
  // Mid-churn samples dip transiently (holes fragment until whole hugepage
  // runs free up and return to the pools), but the trajectory never collapses
  // the way ext4-DAX's does.
  std::vector<obs::TimeSeriesPoint> churn;
  for (const obs::TimeSeriesPoint& point : winefs.points) {
    if (point.t_ns > winefs.fill_end_ns) {
      churn.push_back(point);
    }
  }
  ASSERT_GE(churn.size(), 10u);
  const double aged_mean = MeanValue(churn, churn.size() / 2, churn.size());
  EXPECT_GE(aged_mean, initial * 0.90);
  EXPECT_GT(aged_mean, q4 + 0.25)
      << "winefs should hold far more aligned free space than aged ext4-dax";
}

}  // namespace
