// fsck tests: a healthy filesystem is clean on every implementation; injected
// on-PM corruption is detected; crash states explored by the harness fsck
// clean after recovery.
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/fs/fscore/fsck.h"
#include "src/fs/fscore/pm_format.h"
#include "src/fs/registry.h"
#include "src/pmem/fault_injector.h"

namespace {

using common::ExecContext;
using common::kMiB;

class FsckTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FsckTest, HealthyFilesystemIsClean) {
  pmem::PmemDevice dev(128 * kMiB);
  auto fs = fsreg::Create(GetParam(), &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  ASSERT_TRUE(fs->Mkdir(ctx, "/d").ok());
  std::vector<uint8_t> buf(100000, 0x12);
  for (int i = 0; i < 20; i++) {
    auto fd = fs->Open(ctx, "/d/f" + std::to_string(i), vfs::OpenFlags::Create());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs->Pwrite(ctx, *fd, buf.data(), buf.size(), 0).ok());
    ASSERT_TRUE(fs->Close(ctx, *fd).ok());
  }
  for (int i = 0; i < 10; i += 2) {
    ASSERT_TRUE(fs->Unlink(ctx, "/d/f" + std::to_string(i)).ok());
  }
  const auto report = fscore::CheckImage(dev);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.inodes_checked, 17u);  // root + /d + 15 files
  EXPECT_GT(report.extents_checked, 0u);
  EXPECT_GT(report.dirents_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Filesystems, FsckTest,
                         ::testing::Values("winefs", "ext4-dax", "nova", "pmfs"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

class FsckCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<pmem::PmemDevice>(64 * kMiB);
    fs_ = fsreg::Create("winefs", dev_.get());
    ASSERT_TRUE(fs_->Mkfs(ctx_).ok());
    auto fd = fs_->Open(ctx_, "/victim", vfs::OpenFlags::Create());
    std::vector<uint8_t> buf(500000, 0x77);
    ASSERT_TRUE(fs_->Pwrite(ctx_, *fd, buf.data(), buf.size(), 0).ok());
    sb_ = dev_->LoadStruct<fscore::PmSuperblock>(ctx_, 0);
    victim_off_ = sb_.inode_table_block * common::kBlockSize + 2 * sizeof(fscore::PmInode);
  }

  ExecContext ctx_;
  std::unique_ptr<pmem::PmemDevice> dev_;
  std::unique_ptr<vfs::FileSystem> fs_;
  fscore::PmSuperblock sb_;
  uint64_t victim_off_ = 0;
};

TEST_F(FsckCorruptionTest, DetectsBadSuperblock) {
  uint32_t garbage = 0xdead;
  dev_->StoreUncharged(0, &garbage, sizeof(garbage));
  const auto report = fscore::CheckImage(*dev_);
  EXPECT_FALSE(report.ok());
}

TEST_F(FsckCorruptionTest, DetectsExtentOutOfRange) {
  auto pm = dev_->LoadStruct<fscore::PmInode>(ctx_, victim_off_);
  ASSERT_EQ(pm.magic, fscore::kInodeMagic);
  ASSERT_GT(pm.extent_count, 0u);
  pm.inline_extents[0].packed = fscore::PmExtent::Pack(sb_.total_blocks + 100, 4);
  dev_->StoreUncharged(victim_off_, &pm, sizeof(pm));
  const auto report = fscore::CheckImage(*dev_);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("out of data area"), std::string::npos);
}

TEST_F(FsckCorruptionTest, DetectsDoubleClaimedBlocks) {
  // Point the victim's first extent at the root directory's dirent block.
  auto root = dev_->LoadStruct<fscore::PmInode>(
      ctx_, sb_.inode_table_block * common::kBlockSize + 1 * sizeof(fscore::PmInode));
  ASSERT_GT(root.extent_count, 0u);
  auto pm = dev_->LoadStruct<fscore::PmInode>(ctx_, victim_off_);
  pm.inline_extents[0] = root.inline_extents[0];
  dev_->StoreUncharged(victim_off_, &pm, sizeof(pm));
  const auto report = fscore::CheckImage(*dev_);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("claimed twice"), std::string::npos);
}

TEST_F(FsckCorruptionTest, DetectsDanglingDirent) {
  // Zero the victim inode while its dirent remains.
  fscore::PmInode dead;
  dev_->StoreUncharged(victim_off_, &dead, sizeof(dead));
  const auto report = fscore::CheckImage(*dev_);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("references free inode"), std::string::npos);
}

TEST_F(FsckCorruptionTest, CleanAfterRecoveryFromDirtyMount) {
  // Unclean shutdown (no Unmount), fresh instance recovers, fsck must pass.
  auto fs2 = fsreg::Create("winefs", dev_.get());
  ExecContext rctx;
  ASSERT_TRUE(fs2->Mount(rctx).ok());
  const auto report = fscore::CheckImage(*dev_);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// --- Poisoned metadata: repair from redundancy or refuse with EIO ----------

class PoisonedMetadataTest : public ::testing::Test {
 protected:
  // Builds a filesystem with a bit of state; leaves it DIRTY (no unmount).
  void Build(const std::string& name) {
    dev_ = std::make_unique<pmem::PmemDevice>(64 * kMiB);
    injector_ = std::make_unique<pmem::FaultInjector>(pmem::FaultPlan{.seed = 5});
    dev_->AttachFaultInjector(injector_.get());
    fs_ = fsreg::Create(name, dev_.get());
    ASSERT_TRUE(fs_->Mkfs(ctx_).ok());
    auto fd = fs_->Open(ctx_, "/f", vfs::OpenFlags::Create());
    ASSERT_TRUE(fd.ok());
    std::vector<uint8_t> buf(200000, 0x42);
    ASSERT_TRUE(fs_->Pwrite(ctx_, *fd, buf.data(), buf.size(), 0).ok());
    ASSERT_TRUE(fs_->Close(ctx_, *fd).ok());
    sb_ = dev_->LoadStruct<fscore::PmSuperblock>(ctx_, 0);
    ASSERT_EQ(sb_.magic, fscore::kSuperMagic);
  }

  ExecContext ctx_;
  std::unique_ptr<pmem::PmemDevice> dev_;
  std::unique_ptr<pmem::FaultInjector> injector_;
  std::unique_ptr<vfs::FileSystem> fs_;
  fscore::PmSuperblock sb_;
};

TEST_F(PoisonedMetadataTest, PoisonedPrimarySuperblockRepairedFromBackup) {
  Build("winefs");
  injector_->PoisonRange(0, 256);

  // fsck sees the media error but completes the scan through the backup copy.
  const auto report = fscore::CheckImage(*dev_);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("superblock: media error"), std::string::npos);
  EXPECT_GT(report.inodes_checked, 0u) << "backup superblock should drive the scan";

  // Mount falls back to the backup and rewrites the primary, clearing the
  // poison (full-block store re-ECCs the media).
  auto fs2 = fsreg::Create("winefs", dev_.get());
  ExecContext rctx;
  ASSERT_TRUE(fs2->Mount(rctx).ok());
  EXPECT_TRUE(dev_->ReadStatus(0, sizeof(fscore::PmSuperblock)).ok());
  auto st = fs2->Stat(rctx, "/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 200000u);
}

TEST_F(PoisonedMetadataTest, BothSuperblockCopiesPoisonedRefusesMount) {
  Build("winefs");
  injector_->PoisonRange(0, 256);
  injector_->PoisonRange(fscore::kSuperBackupOffset, 256);

  auto fs2 = fsreg::Create("winefs", dev_.get());
  ExecContext rctx;
  const auto status = fs2->Mount(rctx);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.errno_value(), EIO);
}

TEST_F(PoisonedMetadataTest, WineFsRefusesPoisonedJournalWhenDirty) {
  Build("winefs");
  // Dirty image (no unmount): an interrupted transaction's undo state could
  // hide behind the media error, so the mount must refuse, not guess.
  injector_->PoisonRange(sb_.journal_start_block * common::kBlockSize, 256);
  const auto report = fscore::CheckImage(*dev_);
  EXPECT_NE(report.Summary().find("journal region: media error"), std::string::npos);

  auto fs2 = fsreg::Create("winefs", dev_.get());
  ExecContext rctx;
  const auto status = fs2->Mount(rctx);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.errno_value(), EIO);
}

TEST_F(PoisonedMetadataTest, WineFsRepairsPoisonedJournalWhenClean) {
  Build("winefs");
  ASSERT_TRUE(fs_->Unmount(ctx_).ok());
  injector_->PoisonRange(sb_.journal_start_block * common::kBlockSize, 256);

  auto fs2 = fsreg::Create("winefs", dev_.get());
  ExecContext rctx;
  ASSERT_TRUE(fs2->Mount(rctx).ok());
  // The journal was zeroed block-by-block, which re-ECCed the poisoned media.
  EXPECT_TRUE(dev_->ReadStatus(sb_.journal_start_block * common::kBlockSize,
                               sb_.journal_blocks * common::kBlockSize)
                  .ok());
  auto st = fs2->Stat(rctx, "/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 200000u);
}

TEST_F(PoisonedMetadataTest, PmfsRefusesPoisonedJournalWhenDirty) {
  Build("pmfs");
  injector_->PoisonRange(sb_.journal_start_block * common::kBlockSize, 256);

  auto fs2 = fsreg::Create("pmfs", dev_.get());
  ExecContext rctx;
  const auto status = fs2->Mount(rctx);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.errno_value(), EIO);
}

TEST_F(PoisonedMetadataTest, PmfsRepairsPoisonedJournalWhenClean) {
  Build("pmfs");
  ASSERT_TRUE(fs_->Unmount(ctx_).ok());
  injector_->PoisonRange(sb_.journal_start_block * common::kBlockSize, 256);

  auto fs2 = fsreg::Create("pmfs", dev_.get());
  ExecContext rctx;
  ASSERT_TRUE(fs2->Mount(rctx).ok());
  EXPECT_TRUE(dev_->ReadStatus(sb_.journal_start_block * common::kBlockSize,
                               sb_.journal_blocks * common::kBlockSize)
                  .ok());
}

TEST_F(PoisonedMetadataTest, NovaRepairsPoisonedJournalEvenWhenDirty) {
  // NOVA's reserved journal region is never authoritative (state rebuilds
  // from the inode table and per-inode logs), so repair is always safe.
  Build("nova");
  injector_->PoisonRange(sb_.journal_start_block * common::kBlockSize, 256);

  auto fs2 = fsreg::Create("nova", dev_.get());
  ExecContext rctx;
  ASSERT_TRUE(fs2->Mount(rctx).ok());
  EXPECT_TRUE(dev_->ReadStatus(sb_.journal_start_block * common::kBlockSize,
                               sb_.journal_blocks * common::kBlockSize)
                  .ok());
  auto st = fs2->Stat(rctx, "/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 200000u);
}

}  // namespace
