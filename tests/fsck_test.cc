// fsck tests: a healthy filesystem is clean on every implementation; injected
// on-PM corruption is detected; crash states explored by the harness fsck
// clean after recovery.
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/fs/fscore/fsck.h"
#include "src/fs/fscore/pm_format.h"
#include "src/fs/registry.h"

namespace {

using common::ExecContext;
using common::kMiB;

class FsckTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FsckTest, HealthyFilesystemIsClean) {
  pmem::PmemDevice dev(128 * kMiB);
  auto fs = fsreg::Create(GetParam(), &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  ASSERT_TRUE(fs->Mkdir(ctx, "/d").ok());
  std::vector<uint8_t> buf(100000, 0x12);
  for (int i = 0; i < 20; i++) {
    auto fd = fs->Open(ctx, "/d/f" + std::to_string(i), vfs::OpenFlags::Create());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs->Pwrite(ctx, *fd, buf.data(), buf.size(), 0).ok());
    ASSERT_TRUE(fs->Close(ctx, *fd).ok());
  }
  for (int i = 0; i < 10; i += 2) {
    ASSERT_TRUE(fs->Unlink(ctx, "/d/f" + std::to_string(i)).ok());
  }
  const auto report = fscore::CheckImage(dev);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.inodes_checked, 17u);  // root + /d + 15 files
  EXPECT_GT(report.extents_checked, 0u);
  EXPECT_GT(report.dirents_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Filesystems, FsckTest,
                         ::testing::Values("winefs", "ext4-dax", "nova", "pmfs"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

class FsckCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<pmem::PmemDevice>(64 * kMiB);
    fs_ = fsreg::Create("winefs", dev_.get());
    ASSERT_TRUE(fs_->Mkfs(ctx_).ok());
    auto fd = fs_->Open(ctx_, "/victim", vfs::OpenFlags::Create());
    std::vector<uint8_t> buf(500000, 0x77);
    ASSERT_TRUE(fs_->Pwrite(ctx_, *fd, buf.data(), buf.size(), 0).ok());
    sb_ = dev_->LoadStruct<fscore::PmSuperblock>(ctx_, 0);
    victim_off_ = sb_.inode_table_block * common::kBlockSize + 2 * sizeof(fscore::PmInode);
  }

  ExecContext ctx_;
  std::unique_ptr<pmem::PmemDevice> dev_;
  std::unique_ptr<vfs::FileSystem> fs_;
  fscore::PmSuperblock sb_;
  uint64_t victim_off_ = 0;
};

TEST_F(FsckCorruptionTest, DetectsBadSuperblock) {
  uint32_t garbage = 0xdead;
  dev_->StoreUncharged(0, &garbage, sizeof(garbage));
  const auto report = fscore::CheckImage(*dev_);
  EXPECT_FALSE(report.ok());
}

TEST_F(FsckCorruptionTest, DetectsExtentOutOfRange) {
  auto pm = dev_->LoadStruct<fscore::PmInode>(ctx_, victim_off_);
  ASSERT_EQ(pm.magic, fscore::kInodeMagic);
  ASSERT_GT(pm.extent_count, 0u);
  pm.inline_extents[0].packed = fscore::PmExtent::Pack(sb_.total_blocks + 100, 4);
  dev_->StoreUncharged(victim_off_, &pm, sizeof(pm));
  const auto report = fscore::CheckImage(*dev_);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("out of data area"), std::string::npos);
}

TEST_F(FsckCorruptionTest, DetectsDoubleClaimedBlocks) {
  // Point the victim's first extent at the root directory's dirent block.
  auto root = dev_->LoadStruct<fscore::PmInode>(
      ctx_, sb_.inode_table_block * common::kBlockSize + 1 * sizeof(fscore::PmInode));
  ASSERT_GT(root.extent_count, 0u);
  auto pm = dev_->LoadStruct<fscore::PmInode>(ctx_, victim_off_);
  pm.inline_extents[0] = root.inline_extents[0];
  dev_->StoreUncharged(victim_off_, &pm, sizeof(pm));
  const auto report = fscore::CheckImage(*dev_);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("claimed twice"), std::string::npos);
}

TEST_F(FsckCorruptionTest, DetectsDanglingDirent) {
  // Zero the victim inode while its dirent remains.
  fscore::PmInode dead;
  dev_->StoreUncharged(victim_off_, &dead, sizeof(dead));
  const auto report = fscore::CheckImage(*dev_);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("references free inode"), std::string::npos);
}

TEST_F(FsckCorruptionTest, CleanAfterRecoveryFromDirtyMount) {
  // Unclean shutdown (no Unmount), fresh instance recovers, fsck must pass.
  auto fs2 = fsreg::Create("winefs", dev_.get());
  ExecContext rctx;
  ASSERT_TRUE(fs2->Mount(rctx).ok());
  const auto report = fscore::CheckImage(*dev_);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
