// Unit tests for src/common: Status/Result, RNG/Zipf, histogram, sim clocks.
#include <gtest/gtest.h>

#include <cerrno>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/common/sim_mutex.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace {

using common::ErrorCode;
using common::LatencyHistogram;
using common::Result;
using common::Rng;
using common::Status;
using common::ZipfGenerator;

TEST(StatusTest, OkIsOk) {
  EXPECT_TRUE(common::OkStatus().ok());
  EXPECT_EQ(common::OkStatus().code(), ErrorCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndErrno) {
  const Status s(ErrorCode::kNoSpace);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNoSpace);
  EXPECT_EQ(s.errno_value(), ENOSPC);
  EXPECT_FALSE(s.message().empty());
}

TEST(StatusTest, ErrnoMappingMatchesPosix) {
  EXPECT_EQ(common::ErrnoOf(ErrorCode::kOk), 0);
  EXPECT_EQ(common::ErrnoOf(ErrorCode::kNotFound), ENOENT);
  EXPECT_EQ(common::ErrnoOf(ErrorCode::kExists), EEXIST);
  EXPECT_EQ(common::ErrnoOf(ErrorCode::kInvalidArgument), EINVAL);
  EXPECT_EQ(common::ErrnoOf(ErrorCode::kBadFd), EBADF);
  EXPECT_EQ(common::ErrnoOf(ErrorCode::kNotDir), ENOTDIR);
  EXPECT_EQ(common::ErrnoOf(ErrorCode::kIsDir), EISDIR);
  EXPECT_EQ(common::ErrnoOf(ErrorCode::kNotEmpty), ENOTEMPTY);
  // Simulator-internal failures surface to applications as I/O errors.
  EXPECT_EQ(common::ErrnoOf(ErrorCode::kCorrupt), EIO);
  EXPECT_EQ(common::ErrnoOf(ErrorCode::kInternal), EIO);
}

TEST(StatusTest, EveryCodeHasAMessage) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); c++) {
    const Status s(static_cast<ErrorCode>(c));
    EXPECT_FALSE(s.message().empty());
    EXPECT_NE(s.message(), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(ErrorCode::kNotFound);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

Result<int> Doubler(Result<int> in) {
  ASSIGN_OR_RETURN(const int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(ErrorCode::kIoError).status().code(), ErrorCode::kIoError);
}

TEST(UnitsTest, Rounding) {
  EXPECT_EQ(common::RoundUp(1, 512), 512u);
  EXPECT_EQ(common::RoundUp(512, 512), 512u);
  EXPECT_EQ(common::RoundDown(1023, 512), 512u);
  EXPECT_TRUE(common::IsAligned(2 * common::kMiB, common::kHugepageSize));
  EXPECT_EQ(common::BytesToBlocks(1), 1u);
  EXPECT_EQ(common::BytesToBlocks(4096), 1u);
  EXPECT_EQ(common::BytesToBlocks(4097), 2u);
  EXPECT_EQ(common::kBlocksPerHugepage, 512u);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundsRespected) {
  Rng rng(1);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewsTowardHotKeys) {
  ZipfGenerator zipf(10000, 0.99, 3);
  std::vector<uint64_t> counts(10000, 0);
  for (int i = 0; i < 100000; i++) {
    const uint64_t key = zipf.Next();
    ASSERT_LT(key, 10000u);
    counts[key]++;
  }
  // Key 0 must be much hotter than the median key.
  EXPECT_GT(counts[0], 5000u);
  EXPECT_LT(counts[5000], counts[0] / 10);
}

TEST(ZipfTest, ScrambledStaysInRange) {
  ZipfGenerator zipf(1000, 0.9, 4);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(zipf.ScrambledNext(), 1000u);
  }
}

TEST(HistogramTest, PercentilesBracketSamples) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; v++) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(static_cast<double>(h.MedianNanos()), 500.0, 50.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 990.0, 100.0);
  EXPECT_NEAR(h.MeanNanos(), 500.5, 1.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_GT(a.Percentile(100), 900u);
}

TEST(HistogramTest, CdfRowsMonotonic) {
  LatencyHistogram h;
  for (int i = 0; i < 100; i++) {
    h.Record(i * 7 + 1);
  }
  const std::string rows = h.CdfRows();
  EXPECT_FALSE(rows.empty());
  EXPECT_NE(rows.find("1\n"), std::string::npos);  // ends at fraction 1
}

TEST(SimClockTest, AdvanceAndAdvanceTo) {
  common::SimClock clock;
  clock.Advance(100);
  EXPECT_EQ(clock.NowNs(), 100u);
  clock.AdvanceTo(50);  // no going back
  EXPECT_EQ(clock.NowNs(), 100u);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.NowNs(), 200u);
}

TEST(ResourceClockTest, SerializesAcquirers) {
  common::ResourceClock resource("journal");
  common::SimClock a;
  common::SimClock b;
  resource.Acquire(a, 100);  // a: 0 -> 100, resource free at 100
  EXPECT_EQ(a.NowNs(), 100u);
  const uint64_t waited = resource.Acquire(b, 50);  // b queues behind a
  EXPECT_EQ(waited, 100u);
  EXPECT_EQ(b.NowNs(), 150u);
}

TEST(SimMutexTest, RequestInsideBusyIntervalWaits) {
  common::SimMutex mutex;
  common::ExecContext a(0);
  common::ExecContext b(1);
  mutex.Lock(a);
  a.clock.Advance(500);  // critical section [0, 500)
  mutex.Unlock(a);
  // b arrives at sim time 100, inside a's hold: must wait until 500.
  b.clock.Advance(100);
  mutex.Lock(b);
  EXPECT_EQ(b.clock.NowNs(), 500u);
  mutex.Unlock(b);
  EXPECT_EQ(mutex.total_wait_ns(), 400u);
}

TEST(SimMutexTest, RequestOutsideBusyIntervalProceeds) {
  common::SimMutex mutex;
  common::ExecContext a(0);
  common::ExecContext b(1);
  a.clock.Advance(1000);
  mutex.Lock(a);
  a.clock.Advance(100);  // busy [1000, 1100)
  mutex.Unlock(a);
  // b at time 200 — the lock was free back then; no delay.
  b.clock.Advance(200);
  mutex.Lock(b);
  EXPECT_EQ(b.clock.NowNs(), 200u);
  mutex.Unlock(b);
}

TEST(SimMutexTest, ChainsThroughBackToBackHolds) {
  common::SimMutex mutex;
  common::ExecContext a(0);
  mutex.Lock(a);
  a.clock.Advance(100);  // [0, 100)
  mutex.Unlock(a);
  common::ExecContext b(1);
  b.clock.AdvanceTo(100);
  mutex.Lock(b);
  b.clock.Advance(100);  // [100, 200)
  mutex.Unlock(b);
  // c arrives at 50: waits through a's hold, lands in b's, exits at 200.
  common::ExecContext c(2);
  c.clock.Advance(50);
  mutex.Lock(c);
  EXPECT_EQ(c.clock.NowNs(), 200u);
  mutex.Unlock(c);
}

TEST(SimMutexTest, ThreadSafetyUnderRealConcurrency) {
  common::SimMutex mutex;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&mutex, t] {
      common::ExecContext ctx(t);
      for (int i = 0; i < 1000; i++) {
        mutex.Lock(ctx);
        ctx.clock.Advance(1);
        mutex.Unlock(ctx);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // No crashes/data races, and each thread observed serialized time when its
  // window overlapped another's.
  common::ExecContext probe(9);
  mutex.Lock(probe);
  mutex.Unlock(probe);
  SUCCEED();
}

TEST(PerfCountersTest, AddAggregates) {
  common::PerfCounters a;
  common::PerfCounters b;
  a.page_faults_4k = 3;
  b.page_faults_4k = 4;
  b.page_faults_2m = 1;
  a.Add(b);
  EXPECT_EQ(a.page_faults_4k, 7u);
  EXPECT_EQ(a.total_page_faults(), 8u);
}

}  // namespace
