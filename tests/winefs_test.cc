// WineFS-specific behaviour: alignment-aware allocation, hugepage-allocating
// faults, hybrid data atomicity, xattr alignment hints, reactive rewriting,
// journal recovery, and the NUMA write policy.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/units.h"
#include "src/fs/winefs/winefs.h"
#include "src/vmem/mmap_engine.h"

namespace {

using common::ExecContext;
using common::kBlockSize;
using common::kHugepageSize;
using common::kMiB;

class WineFsTest : public ::testing::Test {
 protected:
  void SetUp() override { Recreate(winefs::WineFsOptions{}); }

  void Recreate(winefs::WineFsOptions options) {
    dev_ = std::make_unique<pmem::PmemDevice>(512 * kMiB);
    fs_ = std::make_unique<winefs::WineFs>(dev_.get(), options);
    ASSERT_TRUE(fs_->Mkfs(ctx_).ok());
  }

  int CreateFile(const std::string& path) {
    auto fd = fs_->Open(ctx_, path, vfs::OpenFlags::Create());
    EXPECT_TRUE(fd.ok());
    return *fd;
  }

  ExecContext ctx_;
  std::unique_ptr<pmem::PmemDevice> dev_;
  std::unique_ptr<winefs::WineFs> fs_;
};

TEST_F(WineFsTest, LargeAllocationsGetAlignedExtents) {
  const int fd = CreateFile("/big");
  ASSERT_TRUE(fs_->Fallocate(ctx_, fd, 0, 8 * kMiB).ok());
  auto ino = fs_->InodeOf(ctx_, fd);
  const fscore::Inode* inode = fs_->FindInode(*ino);
  ASSERT_NE(inode, nullptr);
  // Every 2 MiB file chunk must sit on an aligned physical extent.
  for (uint64_t chunk = 0; chunk < 4; chunk++) {
    auto m = inode->extents.Lookup(chunk * common::kBlocksPerHugepage);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(common::IsAligned(m->phys_block, common::kBlocksPerHugepage));
    EXPECT_GE(m->contiguous_blocks, common::kBlocksPerHugepage);
  }
  EXPECT_GE(ctx_.counters.aligned_allocs, 4u);
}

TEST_F(WineFsTest, SmallAllocationsComeFromHoles) {
  const uint64_t aligned_before = fs_->FreeAlignedExtents();
  for (int i = 0; i < 50; i++) {
    const int fd = CreateFile("/small" + std::to_string(i));
    ASSERT_TRUE(fs_->Fallocate(ctx_, fd, 0, 16 * kBlockSize).ok());
  }
  // 50 small files must not consume aligned extents.
  EXPECT_EQ(fs_->FreeAlignedExtents(), aligned_before);
}

TEST_F(WineFsTest, SmallAllocationsBreakAlignedExtentOnlyWhenHolesDry) {
  // Exhaust holes with small allocations; the allocator must then break an
  // aligned extent rather than fail.
  const uint64_t aligned_before = fs_->FreeAlignedExtents();
  uint64_t total_small = 0;
  int i = 0;
  while (fs_->FreeAlignedExtents() == aligned_before && i < 100000) {
    const int fd = CreateFile("/s" + std::to_string(i++));
    ASSERT_TRUE(fs_->Fallocate(ctx_, fd, 0, 64 * kBlockSize).ok());
    total_small += 64;
  }
  EXPECT_LT(fs_->FreeAlignedExtents(), aligned_before);
  EXPECT_GT(total_small, 0u);
}

TEST_F(WineFsTest, FreeingMergesBackIntoAlignedPool) {
  const uint64_t aligned_before = fs_->FreeAlignedExtents();
  std::vector<std::string> paths;
  // Consume holes until aligned extents start breaking.
  int i = 0;
  while (fs_->FreeAlignedExtents() + 2 > aligned_before && i < 100000) {
    const std::string path = "/m" + std::to_string(i++);
    const int fd = CreateFile(path);
    ASSERT_TRUE(fs_->Fallocate(ctx_, fd, 0, 128 * kBlockSize).ok());
    paths.push_back(path);
  }
  ASSERT_LT(fs_->FreeAlignedExtents(), aligned_before);
  // Delete everything: the broken extents merge and convert back (§3.4).
  for (const std::string& path : paths) {
    ASSERT_TRUE(fs_->Unlink(ctx_, path).ok());
  }
  EXPECT_EQ(fs_->FreeAlignedExtents(), aligned_before);
}

TEST_F(WineFsTest, HugeFaultAllocatesAlignedChunk) {
  // LMDB-style: sparse file (ftruncate), write faults through mmap.
  const int fd = CreateFile("/sparse");
  ASSERT_TRUE(fs_->Ftruncate(ctx_, fd, 16 * kMiB).ok());
  vmem::MmapEngine engine(dev_.get(), vmem::MmuParams{});
  auto ino = fs_->InodeOf(ctx_, fd);
  auto map = engine.Mmap(fs_.get(), *ino, 16 * kMiB, true);
  std::vector<uint8_t> buf(4 * kMiB, 0x3c);
  ASSERT_TRUE(map->Write(ctx_, 0, buf.data(), buf.size()).ok());
  EXPECT_EQ(ctx_.counters.page_faults_2m, 2u);
  EXPECT_EQ(ctx_.counters.page_faults_4k, 0u);
  EXPECT_DOUBLE_EQ(map->HugeMappedFraction(), 4.0 / 16.0);
}

TEST_F(WineFsTest, HybridAtomicityJournalsAlignedAndCowsHoles) {
  // Aligned region: overwrite journals in place (layout preserved).
  const int fa = CreateFile("/aligned");
  ASSERT_TRUE(fs_->Fallocate(ctx_, fa, 0, 2 * kMiB).ok());
  auto ino_a = fs_->InodeOf(ctx_, fa);
  const auto before_a = fs_->FindInode(*ino_a)->extents.Lookup(0)->phys_block;
  std::vector<uint8_t> buf(64 * 1024, 0x7e);
  ctx_.counters.Reset();
  ASSERT_TRUE(fs_->Pwrite(ctx_, fa, buf.data(), buf.size(), 4096).ok());
  EXPECT_EQ(fs_->FindInode(*ino_a)->extents.Lookup(0)->phys_block, before_a);
  EXPECT_GT(ctx_.counters.journal_bytes, buf.size());  // data journaled
  EXPECT_EQ(ctx_.counters.cow_bytes, 0u);

  // Hole region: overwrite relocates (CoW).
  const int fh = CreateFile("/holey");
  ASSERT_TRUE(fs_->Fallocate(ctx_, fh, 0, 16 * kBlockSize).ok());
  auto ino_h = fs_->InodeOf(ctx_, fh);
  const auto before_h = fs_->FindInode(*ino_h)->extents.Lookup(0)->phys_block;
  ctx_.counters.Reset();
  ASSERT_TRUE(fs_->Pwrite(ctx_, fh, buf.data(), 8 * kBlockSize, 0).ok());
  EXPECT_NE(fs_->FindInode(*ino_h)->extents.Lookup(0)->phys_block, before_h);
}

TEST_F(WineFsTest, HybridOffMeansCowEverywhere) {
  winefs::WineFsOptions options;
  options.hybrid_atomicity = false;
  Recreate(options);
  const int fd = CreateFile("/aligned");
  ASSERT_TRUE(fs_->Fallocate(ctx_, fd, 0, 2 * kMiB).ok());
  auto ino = fs_->InodeOf(ctx_, fd);
  const auto before = fs_->FindInode(*ino)->extents.Lookup(0)->phys_block;
  std::vector<uint8_t> buf(16 * kBlockSize, 1);
  ASSERT_TRUE(fs_->Pwrite(ctx_, fd, buf.data(), buf.size(), 0).ok());
  EXPECT_NE(fs_->FindInode(*ino)->extents.Lookup(0)->phys_block, before);
}

TEST_F(WineFsTest, XattrHintUpgradesSmallWrites) {
  // §3.6: rsync-style copies (small appends) keep alignment when the xattr
  // alignment hint is set.
  const int fd = CreateFile("/rsynced");
  ASSERT_TRUE(fs_->SetXattr(ctx_, "/rsynced", "user.winefs.aligned", "1").ok());
  std::vector<uint8_t> buf(64 * 1024, 2);
  for (int i = 0; i < 64; i++) {  // 4 MiB in 64 KiB appends
    ASSERT_TRUE(fs_->Append(ctx_, fd, buf.data(), buf.size()).ok());
  }
  auto ino = fs_->InodeOf(ctx_, fd);
  const fscore::Inode* inode = fs_->FindInode(*ino);
  for (uint64_t chunk = 0; chunk < 2; chunk++) {
    auto m = inode->extents.Lookup(chunk * common::kBlocksPerHugepage);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(common::IsAligned(m->phys_block, common::kBlocksPerHugepage));
    EXPECT_GE(m->contiguous_blocks, common::kBlocksPerHugepage);
  }
}

TEST_F(WineFsTest, DirectoryXattrInheritedByNewFiles) {
  ASSERT_TRUE(fs_->Mkdir(ctx_, "/aligned_dir").ok());
  ASSERT_TRUE(fs_->SetXattr(ctx_, "/aligned_dir", "user.winefs.aligned", "1").ok());
  const int fd = CreateFile("/aligned_dir/child");
  std::vector<uint8_t> buf(4096, 3);
  ASSERT_TRUE(fs_->Append(ctx_, fd, buf.data(), buf.size()).ok());
  auto ino = fs_->InodeOf(ctx_, fd);
  const fscore::Inode* inode = fs_->FindInode(*ino);
  EXPECT_TRUE(inode->aligned_hint);
  auto m = inode->extents.Lookup(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(common::IsAligned(m->phys_block, common::kBlocksPerHugepage));
}

TEST_F(WineFsTest, ReactiveRewriteRestoresHugepages) {
  // Build a fragmented 4 MiB file via tiny appends (no hint).
  const int fd = CreateFile("/frag");
  std::vector<uint8_t> buf(32 * 1024);
  for (size_t i = 0; i < buf.size(); i++) {
    buf[i] = static_cast<uint8_t>(i);
  }
  for (int i = 0; i < 128; i++) {
    ASSERT_TRUE(fs_->Append(ctx_, fd, buf.data(), buf.size()).ok());
  }
  EXPECT_TRUE(fs_->NeedsRewrite("/frag"));
  ASSERT_TRUE(fs_->ReactiveRewrite(ctx_, "/frag").ok());
  EXPECT_FALSE(fs_->NeedsRewrite("/frag"));
  // Contents intact.
  std::vector<uint8_t> out(buf.size());
  ASSERT_TRUE(fs_->Pread(ctx_, fd, out.data(), out.size(), 127 * buf.size()).ok());
  EXPECT_EQ(out, buf);
  // And the layout is hugepage-capable now.
  auto ino = fs_->InodeOf(ctx_, fd);
  auto m = fs_->FindInode(*ino)->extents.Lookup(0);
  EXPECT_TRUE(common::IsAligned(m->phys_block, common::kBlocksPerHugepage));
}

TEST_F(WineFsTest, RewriteSkipsHealthyFiles) {
  const int fd = CreateFile("/healthy");
  ASSERT_TRUE(fs_->Fallocate(ctx_, fd, 0, 4 * kMiB).ok());
  EXPECT_FALSE(fs_->NeedsRewrite("/healthy"));
  EXPECT_TRUE(fs_->ReactiveRewrite(ctx_, "/healthy").ok());
}

TEST_F(WineFsTest, AblationNonAlignedAllocatorLosesHugepages) {
  winefs::WineFsOptions options;
  options.alignment_aware = false;
  Recreate(options);
  const int fd = CreateFile("/big");
  ASSERT_TRUE(fs_->Fallocate(ctx_, fd, 0, 8 * kMiB).ok());
  EXPECT_EQ(fs_->FreeAlignedExtents(), 0u);  // no aligned pool at all
}

TEST_F(WineFsTest, RecoveryAfterCleanUnmountPreservesState) {
  const int fd = CreateFile("/data");
  std::vector<uint8_t> buf(300000, 0x42);
  ASSERT_TRUE(fs_->Pwrite(ctx_, fd, buf.data(), buf.size(), 0).ok());
  ASSERT_TRUE(fs_->Unmount(ctx_).ok());
  ASSERT_TRUE(fs_->Mount(ctx_).ok());
  EXPECT_GT(fs_->last_mount_ns(), 0u);
  auto fd2 = fs_->Open(ctx_, "/data", vfs::OpenFlags::ReadOnly());
  std::vector<uint8_t> out(buf.size());
  ASSERT_TRUE(fs_->Pread(ctx_, *fd2, out.data(), out.size(), 0).ok());
  EXPECT_EQ(out, buf);
}

TEST_F(WineFsTest, RecoveryTimeScalesWithFileCountNotData) {
  // §5.2: "recovery time depends on the number of files, not the total
  // amount of data".
  const int fd = CreateFile("/huge");
  ASSERT_TRUE(fs_->Fallocate(ctx_, fd, 0, 200 * kMiB).ok());
  ASSERT_TRUE(fs_->Unmount(ctx_).ok());
  ASSERT_TRUE(fs_->Mount(ctx_).ok());
  const uint64_t one_big_file_ns = fs_->last_mount_ns();

  Recreate(winefs::WineFsOptions{});
  for (int i = 0; i < 2000; i++) {
    const int f = CreateFile("/f" + std::to_string(i));
    ASSERT_TRUE(fs_->Fallocate(ctx_, f, 0, 4096).ok());
    ASSERT_TRUE(fs_->Close(ctx_, f).ok());
  }
  ASSERT_TRUE(fs_->Unmount(ctx_).ok());
  ASSERT_TRUE(fs_->Mount(ctx_).ok());
  EXPECT_GT(fs_->last_mount_ns(), one_big_file_ns);
}

TEST_F(WineFsTest, NumaHomeNodePolicyKeepsWritesLocal) {
  winefs::WineFsOptions options;
  options.numa_aware = true;
  options.base.num_cpus = 4;
  dev_ = std::make_unique<pmem::PmemDevice>(512 * kMiB, pmem::CostModel{}, /*numa_nodes=*/2);
  fs_ = std::make_unique<winefs::WineFs>(dev_.get(), options);
  ASSERT_TRUE(fs_->Mkfs(ctx_).ok());

  ExecContext proc(0);
  proc.pid = 7;
  std::vector<uint8_t> buf(1 * kMiB, 1);
  for (int i = 0; i < 8; i++) {
    auto fd = fs_->Open(proc, "/n" + std::to_string(i), vfs::OpenFlags::Create());
    ASSERT_TRUE(fd.ok());
    // Rotate the CPU the thread runs on: writes must still route to the
    // process's home node.
    proc.cpu = i % 4;
    ASSERT_TRUE(fs_->Pwrite(proc, *fd, buf.data(), buf.size(), 0).ok());
  }
  EXPECT_GT(fs_->numa_local_allocs(), 0u);
  EXPECT_EQ(fs_->numa_remote_allocs(), 0u);
}

TEST_F(WineFsTest, PerCpuJournalsOffStillCorrect) {
  winefs::WineFsOptions options;
  options.per_cpu_journals = false;
  Recreate(options);
  const int fd = CreateFile("/x");
  std::vector<uint8_t> buf(100000, 5);
  ASSERT_TRUE(fs_->Pwrite(ctx_, fd, buf.data(), buf.size(), 0).ok());
  ASSERT_TRUE(fs_->Unmount(ctx_).ok());
  ASSERT_TRUE(fs_->Mount(ctx_).ok());
  auto st = fs_->Stat(ctx_, "/x");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, buf.size());
}

}  // namespace
