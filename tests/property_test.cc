// Property-based tests: randomized operation sequences checked against
// reference models and structural invariants.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/common/units.h"
#include "src/fs/fscore/extent.h"
#include "src/fs/fscore/free_space_map.h"
#include "src/fs/registry.h"
#include "src/fs/winefs/winefs.h"
#include "src/wload/part.h"

namespace {

using common::ExecContext;
using common::kMiB;
using common::Rng;

// --- FreeSpaceMap vs a reference block set -----------------------------------

class FreeSpaceMapProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FreeSpaceMapProperty, MatchesReferenceModel) {
  constexpr uint64_t kBlocks = 8192;
  fscore::FreeSpaceMap map;
  map.Release(0, kBlocks);
  std::set<uint64_t> free_ref;
  for (uint64_t b = 0; b < kBlocks; b++) {
    free_ref.insert(b);
  }
  Rng rng(GetParam());
  std::vector<fscore::Extent> allocated;

  for (int step = 0; step < 3000; step++) {
    const bool do_alloc = allocated.empty() || rng.NextBool(0.6);
    if (do_alloc) {
      const uint64_t want = 1 + rng.NextBelow(600);
      std::optional<fscore::Extent> got;
      switch (rng.NextBelow(4)) {
        case 0:
          got = map.AllocFirstFit(want, rng.NextBelow(kBlocks));
          break;
        case 1:
          got = map.AllocBestFit(want);
          break;
        case 2:
          got = map.AllocFirstFitPreferAligned(want, rng.NextBelow(kBlocks));
          break;
        default:
          got = want <= 512 ? map.AllocAligned(want) : std::nullopt;
          break;
      }
      if (got.has_value()) {
        ASSERT_EQ(got->num_blocks, want);
        for (uint64_t b = got->phys_block; b < got->end(); b++) {
          ASSERT_EQ(free_ref.erase(b), 1u) << "allocated a non-free block " << b;
        }
        allocated.push_back(*got);
      }
    } else {
      const size_t idx = rng.NextBelow(allocated.size());
      std::swap(allocated[idx], allocated.back());
      const fscore::Extent ext = allocated.back();
      allocated.pop_back();
      map.Release(ext.phys_block, ext.num_blocks);
      for (uint64_t b = ext.phys_block; b < ext.end(); b++) {
        ASSERT_TRUE(free_ref.insert(b).second) << "double free of block " << b;
      }
    }
    ASSERT_EQ(map.free_blocks(), free_ref.size());
  }
  // Runs must be maximal (merged): no two adjacent runs.
  uint64_t prev_end = ~0ull;
  for (const auto& [start, len] : map.runs()) {
    ASSERT_NE(start, prev_end) << "unmerged adjacent free runs";
    prev_end = start + len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FreeSpaceMapProperty, ::testing::Values(1, 2, 3, 4, 5));

// --- ExtentMap vs a reference block map ---------------------------------------

class ExtentMapProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtentMapProperty, MatchesReferenceModel) {
  fscore::ExtentMap map;
  std::map<uint64_t, uint64_t> ref;  // logical block -> phys block
  Rng rng(GetParam() * 77);
  uint64_t next_phys = 1000;

  for (int step = 0; step < 2000; step++) {
    const uint64_t logical = rng.NextBelow(2000);
    const uint64_t len = 1 + rng.NextBelow(32);
    if (rng.NextBool(0.65)) {
      // Punch then insert (the pattern CoW uses).
      map.Remove(logical, len);
      map.Insert(logical, next_phys, len);
      for (uint64_t i = 0; i < len; i++) {
        ref[logical + i] = next_phys + i;
      }
      next_phys += len + rng.NextBelow(3);
    } else {
      map.Remove(logical, len);
      for (uint64_t i = 0; i < len; i++) {
        ref.erase(logical + i);
      }
    }
  }
  for (uint64_t block = 0; block < 2100; block++) {
    auto got = map.Lookup(block);
    auto it = ref.find(block);
    if (it == ref.end()) {
      EXPECT_FALSE(got.has_value()) << "block " << block;
    } else {
      ASSERT_TRUE(got.has_value()) << "block " << block;
      EXPECT_EQ(got->phys_block, it->second) << "block " << block;
    }
  }
  EXPECT_EQ(map.MappedBlocks(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentMapProperty, ::testing::Values(1, 2, 3, 4, 5));

// --- Filesystem-level invariants under random workloads ------------------------

class FsChurnProperty
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(FsChurnProperty, NoExtentOverlapAndSpaceConserved) {
  const auto& [fs_name, seed] = GetParam();
  pmem::PmemDevice dev(256 * kMiB);
  auto fs = fsreg::Create(fs_name, &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  auto* generic = dynamic_cast<fscore::GenericFs*>(fs.get());

  Rng rng(seed);
  std::vector<std::string> files;
  std::vector<uint8_t> buf(64 * 1024, 0x9d);
  uint64_t created = 0;
  for (int step = 0; step < 400; step++) {
    ctx.cpu = static_cast<uint32_t>(rng.NextBelow(4));
    const double p = rng.NextDouble();
    if (p < 0.45 || files.empty()) {
      const std::string path = "/p" + std::to_string(created++);
      auto fd = fs->Open(ctx, path, vfs::OpenFlags::Create());
      ASSERT_TRUE(fd.ok());
      const uint64_t size = 1 + rng.NextBelow(buf.size());
      auto n = fs->Pwrite(ctx, *fd, buf.data(), size, 0);
      if (n.ok()) {
        files.push_back(path);
      }
      ASSERT_TRUE(fs->Close(ctx, *fd).ok());
    } else if (p < 0.75) {
      const std::string& path = files[rng.NextBelow(files.size())];
      auto fd = fs->Open(ctx, path, vfs::OpenFlags{});
      ASSERT_TRUE(fd.ok());
      auto st = fs->SizeOf(ctx, *fd);
      const uint64_t size = 1 + rng.NextBelow(16 * 1024);
      const uint64_t off = st.ok() && *st > 0 ? rng.NextBelow(*st) : 0;
      (void)fs->Pwrite(ctx, *fd, buf.data(), size, off);
      ASSERT_TRUE(fs->Close(ctx, *fd).ok());
    } else {
      const size_t idx = rng.NextBelow(files.size());
      std::swap(files[idx], files.back());
      ASSERT_TRUE(fs->Unlink(ctx, files.back()).ok());
      files.pop_back();
    }
  }

  // Invariant 1: no two files' extents overlap, and none land outside the
  // data area. Verified through a remount-scan (reads the on-PM truth).
  ASSERT_TRUE(fs->Unmount(ctx).ok());
  ASSERT_TRUE(fs->Mount(ctx).ok());
  std::vector<std::pair<uint64_t, uint64_t>> used;
  auto entries = fs->ReadDir(ctx, "/");
  ASSERT_TRUE(entries.ok());
  for (const auto& entry : *entries) {
    auto st = fs->Stat(ctx, "/" + entry.name);
    ASSERT_TRUE(st.ok());
    const fscore::Inode* inode = generic->FindInode(st->ino);
    ASSERT_NE(inode, nullptr);
    for (const auto& [logical, ext] : inode->extents.Entries()) {
      used.emplace_back(ext.phys_block, ext.num_blocks);
      EXPECT_GE(ext.phys_block, generic->data_start_block());
      EXPECT_LE(ext.end(), generic->data_start_block() + generic->data_blocks());
    }
  }
  std::sort(used.begin(), used.end());
  for (size_t i = 1; i < used.size(); i++) {
    EXPECT_GE(used[i].first, used[i - 1].first + used[i - 1].second)
        << "overlapping extents after churn";
  }

  // Invariant 2: deleting everything returns the filesystem to (almost)
  // empty free space — nothing leaks.
  for (const std::string& path : files) {
    ASSERT_TRUE(fs->Unlink(ctx, path).ok());
  }
  const auto info = fs->StatFs(ctx).value();
  // Bounded residue is fine: the root directory's dirent blocks stay at their
  // high-water size, and NOVA's root inode keeps up to gc_log_pages live log
  // pages. Anything beyond that bound is a leak.
  EXPECT_GE(info.free_blocks + 128, info.total_blocks);
}

INSTANTIATE_TEST_SUITE_P(
    Churn, FsChurnProperty,
    ::testing::Combine(::testing::Values("winefs", "ext4-dax", "nova", "pmfs"),
                       ::testing::Values(11ull, 22ull)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + "_seed" + std::to_string(std::get<1>(param_info.param));
    });

// --- P-ART vs std::map ----------------------------------------------------------

TEST(PArtProperty, MatchesReferenceMap) {
  pmem::PmemDevice dev(512 * kMiB);
  auto fs = fsreg::Create("winefs", &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  vmem::MmapEngine engine(&dev, vmem::MmuParams{}, 4);
  wload::PArt part(fs.get(), &engine,
                   wload::PArtConfig{.pool_bytes = 128 * kMiB, .prefault = false});
  ASSERT_TRUE(part.Open(ctx).ok());

  std::map<uint64_t, uint64_t> ref;
  Rng rng(99);
  for (int step = 0; step < 20000; step++) {
    const uint64_t key = rng.NextBelow(1u << 22);
    const uint64_t value = rng.Next() | 1;
    ASSERT_TRUE(part.Insert(ctx, key, value).ok());
    ref[key] = value;
  }
  for (const auto& [key, value] : ref) {
    auto got = part.Lookup(ctx, key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
  }
  // Absent keys miss.
  for (int i = 0; i < 1000; i++) {
    const uint64_t key = (1ull << 23) + rng.NextBelow(1u << 20);
    if (ref.find(key) == ref.end()) {
      EXPECT_FALSE(part.Lookup(ctx, key).ok());
    }
  }
}

// --- SharedResource capacity invariant -------------------------------------------

TEST(SharedResourceProperty, WorkNeverExceedsElapsedCapacity) {
  common::SharedResource resource("cap");
  Rng rng(5);
  std::vector<common::SimClock> clocks(8);
  uint64_t total_work = 0;
  for (int step = 0; step < 5000; step++) {
    auto& clock = clocks[rng.NextBelow(clocks.size())];
    const uint64_t hold = 1 + rng.NextBelow(3000);
    resource.Acquire(clock, hold);
    total_work += hold;
    clock.Advance(rng.NextBelow(2000));  // thread-local work between acquires
  }
  uint64_t max_end = 0;
  for (const auto& clock : clocks) {
    max_end = std::max(max_end, clock.NowNs());
  }
  // Capacity 1: the aggregate admitted work cannot exceed the elapsed wall
  // time (plus one accounting window of slack).
  EXPECT_LE(total_work, max_end + 20000);
}

}  // namespace
