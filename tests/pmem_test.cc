// Unit tests for the PM device: persistence semantics, cost accounting, and
// crash-state capture.
#include <gtest/gtest.h>

#include <cstring>

#include "src/common/exec_context.h"
#include "src/common/units.h"
#include "src/pmem/device.h"

namespace {

using common::ExecContext;
using pmem::PmemDevice;

TEST(PmemDeviceTest, StoreLoadRoundTrip) {
  PmemDevice dev(1 * common::kMiB);
  ExecContext ctx;
  const char msg[] = "hello persistent world";
  dev.Store(ctx, 4096, msg, sizeof(msg));
  char out[sizeof(msg)] = {};
  dev.Load(ctx, 4096, out, sizeof(msg));
  EXPECT_STREQ(out, msg);
}

TEST(PmemDeviceTest, CostsAccrue) {
  PmemDevice dev(1 * common::kMiB);
  ExecContext ctx;
  const uint64_t t0 = ctx.clock.NowNs();
  uint8_t buf[256] = {};
  dev.Store(ctx, 0, buf, sizeof(buf));
  EXPECT_GT(ctx.clock.NowNs(), t0);
  EXPECT_EQ(ctx.counters.pm_write_bytes, 256u);
  dev.Load(ctx, 0, buf, sizeof(buf));
  EXPECT_EQ(ctx.counters.pm_read_bytes, 256u);
  dev.Clwb(ctx, 0, 256);
  EXPECT_EQ(ctx.counters.clwb_count, 4u);
  dev.Fence(ctx);
  EXPECT_EQ(ctx.counters.fence_count, 1u);
}

TEST(PmemDeviceTest, SequentialCheaperThanRandom) {
  PmemDevice dev(1 * common::kMiB);
  ExecContext seq;
  ExecContext rnd;
  uint8_t buf[64];
  dev.Load(seq, 0, buf, 64, /*sequential=*/true);
  dev.Load(rnd, 0, buf, 64, /*sequential=*/false);
  EXPECT_LT(seq.clock.NowNs(), rnd.clock.NowNs());
}

TEST(PmemDeviceTest, NumaNodeOfSplitsRange) {
  PmemDevice dev(4 * common::kMiB, pmem::CostModel{}, 2);
  EXPECT_EQ(dev.NumaNodeOf(0), 0u);
  EXPECT_EQ(dev.NumaNodeOf(3 * common::kMiB), 1u);
}

TEST(PmemCrashTest, UnflushedStoreNotInPersistentImage) {
  PmemDevice dev(256 * common::kKiB);
  ExecContext ctx;
  dev.EnableCrashTracking();
  const uint64_t value = 0xdeadbeef;
  dev.Store(ctx, 128, &value, sizeof(value));
  // Not flushed, not fenced: persistent image still has zeros.
  auto image = dev.PersistentImage();
  uint64_t persisted;
  std::memcpy(&persisted, image.data() + 128, sizeof(persisted));
  EXPECT_EQ(persisted, 0u);
  EXPECT_EQ(dev.PendingLines().size(), 1u);
}

TEST(PmemCrashTest, FlushedAndFencedBecomesPersistent) {
  PmemDevice dev(256 * common::kKiB);
  ExecContext ctx;
  dev.EnableCrashTracking();
  const uint64_t value = 0x12345678;
  dev.Store(ctx, 128, &value, sizeof(value));
  dev.Clwb(ctx, 128, sizeof(value));
  dev.Fence(ctx);
  auto image = dev.PersistentImage();
  uint64_t persisted;
  std::memcpy(&persisted, image.data() + 128, sizeof(persisted));
  EXPECT_EQ(persisted, value);
  EXPECT_TRUE(dev.PendingLines().empty());
}

TEST(PmemCrashTest, FlushWithoutFenceStaysPending) {
  PmemDevice dev(256 * common::kKiB);
  ExecContext ctx;
  dev.EnableCrashTracking();
  const uint64_t value = 0x77;
  dev.Store(ctx, 0, &value, sizeof(value));
  dev.Clwb(ctx, 0, sizeof(value));
  EXPECT_EQ(dev.PendingLines().size(), 1u);
  EXPECT_TRUE(dev.PendingLines()[0].flushed);
}

TEST(PmemCrashTest, CrashImageAppliesChosenSubset) {
  PmemDevice dev(256 * common::kKiB);
  ExecContext ctx;
  dev.EnableCrashTracking();
  const uint64_t a = 0xaaaa;
  const uint64_t b = 0xbbbb;
  dev.Store(ctx, 0, &a, sizeof(a));
  dev.Store(ctx, 4096, &b, sizeof(b));
  ASSERT_EQ(dev.PendingLines().size(), 2u);

  // Apply only the second store: models cacheline eviction reordering.
  auto image = dev.CrashImage({1});
  uint64_t va;
  uint64_t vb;
  std::memcpy(&va, image.data() + 0, 8);
  std::memcpy(&vb, image.data() + 4096, 8);
  EXPECT_EQ(va, 0u);
  EXPECT_EQ(vb, b);
}

TEST(PmemCrashTest, NtStorePersistsAtFence) {
  PmemDevice dev(256 * common::kKiB);
  ExecContext ctx;
  dev.EnableCrashTracking();
  const uint64_t value = 0xfeed;
  dev.NtStore(ctx, 64, &value, sizeof(value));
  EXPECT_EQ(dev.PendingLines().size(), 1u);
  EXPECT_TRUE(dev.PendingLines()[0].flushed);
  dev.Fence(ctx);
  EXPECT_TRUE(dev.PendingLines().empty());
}

TEST(PmemCrashTest, RestoreImageReplacesContents) {
  PmemDevice dev(256 * common::kKiB);
  ExecContext ctx;
  dev.EnableCrashTracking();
  const uint64_t value = 0xabc;
  dev.PersistStore(ctx, 0, &value, sizeof(value));
  auto snapshot = dev.PersistentImage();

  const uint64_t other = 0xdef;
  dev.PersistStore(ctx, 0, &other, sizeof(other));
  dev.RestoreImage(snapshot);
  uint64_t out;
  dev.Load(ctx, 0, &out, sizeof(out));
  EXPECT_EQ(out, value);
}

TEST(PmemCrashTest, OverwriteSameLineKeepsLatestPayload) {
  PmemDevice dev(256 * common::kKiB);
  ExecContext ctx;
  dev.EnableCrashTracking();
  const uint64_t first = 1;
  const uint64_t second = 2;
  dev.Store(ctx, 0, &first, sizeof(first));
  dev.Store(ctx, 0, &second, sizeof(second));
  ASSERT_EQ(dev.PendingLines().size(), 1u);
  auto image = dev.CrashImage({0});
  uint64_t out;
  std::memcpy(&out, image.data(), 8);
  EXPECT_EQ(out, second);
}

TEST(PmemDeviceTest, ZeroFills) {
  PmemDevice dev(256 * common::kKiB);
  ExecContext ctx;
  const uint64_t junk = ~0ull;
  dev.Store(ctx, 0, &junk, sizeof(junk));
  dev.Zero(ctx, 0, 4096);
  uint64_t out = 1;
  dev.Load(ctx, 0, &out, sizeof(out));
  EXPECT_EQ(out, 0u);
}

TEST(PmemDeviceTest, StoreUnchargedWritesWithoutCost) {
  PmemDevice dev(256 * common::kKiB);
  ExecContext ctx;
  const uint64_t value = 42;
  dev.StoreUncharged(0, &value, sizeof(value));
  EXPECT_EQ(ctx.clock.NowNs(), 0u);
  EXPECT_EQ(ctx.counters.pm_write_bytes, 0u);
  uint64_t out;
  dev.Load(ctx, 0, &out, sizeof(out));
  EXPECT_EQ(out, value);
}

}  // namespace
