// Tests for the observability layer (src/obs): trace buffer + spans, metrics
// registry, JSON writer/parser, the bench-report schema validator, and the
// counter-accounting invariants the registered-counter registry makes
// checkable across every filesystem.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/common/exec_context.h"
#include "src/fs/registry.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/gauges.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/pmem/device.h"

namespace {

using common::ExecContext;
using common::kMiB;

// ---- trace buffer -----------------------------------------------------------

TEST(TraceBufferTest, RecordsEventsAndAggregates) {
  obs::TraceBuffer trace(/*capacity=*/8);
  trace.Record(obs::TraceEvent{obs::SpanCat::kAllocation, 0, 100, 150, 4});
  trace.Record(obs::TraceEvent{obs::SpanCat::kAllocation, 1, 200, 230, 2});
  trace.Record(obs::TraceEvent{obs::SpanCat::kDataCopy, 0, 300, 400, 4096});

  EXPECT_EQ(trace.recorded(), 3u);
  EXPECT_EQ(trace.Count(obs::SpanCat::kAllocation), 2u);
  EXPECT_EQ(trace.TotalNs(obs::SpanCat::kAllocation), 80u);
  EXPECT_EQ(trace.TotalNs(obs::SpanCat::kDataCopy), 100u);
  EXPECT_EQ(trace.TotalNs(obs::SpanCat::kJournalCommit), 0u);

  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].start_ns, 100u);
  EXPECT_EQ(events[2].cat, obs::SpanCat::kDataCopy);
  EXPECT_EQ(events[2].duration_ns(), 100u);
}

TEST(TraceBufferTest, RingWrapKeepsAggregatesOverAllEvents) {
  obs::TraceBuffer trace(/*capacity=*/4);
  for (uint64_t i = 0; i < 10; i++) {
    trace.Record(obs::TraceEvent{obs::SpanCat::kFaultHandling, 0, i * 10, i * 10 + 5, 0});
  }
  // The ring only retains the 4 newest events...
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().start_ns, 60u);  // oldest retained
  EXPECT_EQ(events.back().start_ns, 90u);   // newest
  // ...but the aggregates cover everything ever recorded.
  EXPECT_EQ(trace.recorded(), 10u);
  EXPECT_EQ(trace.Count(obs::SpanCat::kFaultHandling), 10u);
  EXPECT_EQ(trace.TotalNs(obs::SpanCat::kFaultHandling), 50u);
}

TEST(TraceBufferTest, ClearAfterWrapResetsRingAndAggregates) {
  obs::TraceBuffer trace(/*capacity=*/4);
  for (uint64_t i = 0; i < 9; i++) {
    trace.Record(obs::TraceEvent{obs::SpanCat::kDataCopy, 0, i * 10, i * 10 + 3, 0});
  }
  ASSERT_EQ(trace.recorded(), 9u);
  trace.Clear();
  // Both the ring and the running aggregates start over.
  EXPECT_TRUE(trace.Events().empty());
  EXPECT_EQ(trace.recorded(), 0u);
  EXPECT_EQ(trace.Count(obs::SpanCat::kDataCopy), 0u);
  EXPECT_EQ(trace.TotalNs(obs::SpanCat::kDataCopy), 0u);
  // And the wrap cursor is rewound: new events land at the front, in order.
  trace.Record(obs::TraceEvent{obs::SpanCat::kAllocation, 1, 500, 510, 0});
  trace.Record(obs::TraceEvent{obs::SpanCat::kAllocation, 1, 600, 620, 0});
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].start_ns, 500u);
  EXPECT_EQ(events[1].start_ns, 600u);
  EXPECT_EQ(trace.TotalNs(obs::SpanCat::kAllocation), 30u);
}

TEST(ScopedSpanTest, NoOpWithoutSinkRecordsWithSink) {
  ExecContext ctx;
  {
    obs::ScopedSpan span(ctx, obs::SpanCat::kAllocation, 1);
    ctx.clock.Advance(500);
  }  // no trace attached: nothing to record, nothing to crash on

  obs::TraceBuffer trace;
  ctx.AttachTrace(&trace);
  {
    obs::ScopedSpan span(ctx, obs::SpanCat::kAllocation, 7);
    ctx.clock.Advance(250);
  }
  ctx.AttachTrace(nullptr);
  ASSERT_EQ(trace.recorded(), 1u);
  const auto events = trace.Events();
  EXPECT_EQ(events[0].cat, obs::SpanCat::kAllocation);
  EXPECT_EQ(events[0].duration_ns(), 250u);
  EXPECT_EQ(events[0].arg, 7u);
}

TEST(SpanCatTest, EveryCategoryHasAName) {
  for (size_t c = 0; c < obs::kNumSpanCats; c++) {
    EXPECT_FALSE(std::string_view(obs::SpanCatName(static_cast<obs::SpanCat>(c))).empty());
  }
}

// ---- metrics registry -------------------------------------------------------

TEST(MetricsRegistryTest, RecordsOpsAndCounters) {
  obs::MetricsRegistry registry;
  registry.RecordOp("winefs", "pwrite", 1000);
  registry.RecordOp("winefs", "pwrite", 3000);
  registry.RecordOp("winefs", "fsync", 500);
  registry.AddCounter("winefs", "custom", 2);
  registry.AddCounter("winefs", "custom", 3);

  EXPECT_EQ(registry.FsNames(), std::vector<std::string>{"winefs"});
  EXPECT_EQ(registry.OpsFor("winefs"), (std::vector<std::string>{"fsync", "pwrite"}));
  EXPECT_EQ(registry.OpHistogram("winefs", "pwrite").count(), 2u);
  EXPECT_EQ(registry.Counter("winefs", "custom"), 5u);
  EXPECT_EQ(registry.Counter("winefs", "absent"), 0u);

  registry.Clear();
  EXPECT_TRUE(registry.FsNames().empty());
}

TEST(MetricsRegistryTest, MergeCountersUsesRegisteredNames) {
  common::PerfCounters counters;
  counters.alloc_requests = 10;
  counters.aligned_allocs = 7;
  obs::MetricsRegistry registry;
  registry.MergeCounters("fsA", counters);
  registry.MergeCounters("fsA", counters);

  EXPECT_EQ(registry.Counter("fsA", "alloc_requests"), 20u);
  EXPECT_EQ(registry.Counter("fsA", "aligned_allocs"), 14u);
  // Every registered field shows up, even when zero.
  EXPECT_EQ(registry.CountersFor("fsA").size(), common::kNumCounterFields);
}

TEST(OpScopeTest, FeedsRegistryThroughContext) {
  ExecContext ctx;
  obs::MetricsRegistry registry;
  ctx.AttachMetrics(&registry);
  {
    obs::OpScope op(ctx, "testfs", "open");
    ctx.clock.Advance(1234);
  }
  ctx.AttachMetrics(nullptr);
  const auto hist = registry.OpHistogram("testfs", "open");
  EXPECT_EQ(hist.count(), 1u);
  // The histogram is log-bucketed (~4% wide buckets), so the median comes
  // back as the sample's bucket upper bound.
  EXPECT_GE(hist.MedianNanos(), 1234u);
  EXPECT_LE(hist.MedianNanos(), 1234u * 106 / 100);
}

// ---- JSON writer/parser -----------------------------------------------------

TEST(JsonTest, WriterParserRoundTrip) {
  obs::JsonWriter w;
  w.BeginObject()
      .Key("name")
      .String("fig\"02\"\n")
      .Key("count")
      .Number(uint64_t{18446744073709551615ull})
      .Key("ratio")
      .Number(2.5)
      .Key("bad")
      .Number(std::nan(""))
      .Key("flag")
      .Bool(true)
      .Key("list")
      .BeginArray()
      .Number(1)
      .Number(2)
      .EndArray()
      .EndObject();

  auto parsed = obs::JsonValue::Parse(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->Find("name")->string_value, "fig\"02\"\n");
  // 2^64-1 exceeds double precision; the writer prints it exactly, and the
  // parser reads it to the nearest representable double.
  EXPECT_NEAR(parsed->Find("count")->number_value, 1.8446744073709552e19, 1e5);
  EXPECT_EQ(parsed->Find("ratio")->number_value, 2.5);
  EXPECT_EQ(parsed->Find("bad")->type, obs::JsonValue::Type::kNull);
  EXPECT_TRUE(parsed->Find("flag")->bool_value);
  ASSERT_EQ(parsed->Find("list")->array.size(), 2u);
  EXPECT_EQ(parsed->Find("list")->array[1].number_value, 2.0);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::JsonValue::Parse("{\"a\": 1,}").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("").ok());
}

// ---- bench report + schema validator ----------------------------------------

obs::BenchReport MakeValidReport() {
  obs::BenchReport report("unit_test");
  report.AddConfig("device_mib", 64.0);
  report.AddMetric("winefs", "throughput_mbps", 123.4);
  common::PerfCounters counters;
  counters.alloc_requests = 3;
  report.SetCounters("winefs", counters);
  return report;
}

TEST(BenchReportTest, EmittedJsonValidates) {
  const obs::BenchReport report = MakeValidReport();
  const std::string json = report.ToJson();
  EXPECT_TRUE(obs::ValidateBenchReportJson(json).ok())
      << obs::ValidateBenchReportJson(json).message();

  auto parsed = obs::JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("bench")->string_value, "unit_test");
  const obs::JsonValue& row = parsed->Find("results")->array[0];
  EXPECT_EQ(row.Find("fs")->string_value, "winefs");
  EXPECT_EQ(row.Find("counters")->Find("alloc_requests")->number_value, 3.0);
}

TEST(BenchReportTest, ValidatorRejectsBrokenReports) {
  EXPECT_FALSE(obs::ValidateBenchReportJson("not json").ok());
  EXPECT_FALSE(obs::ValidateBenchReportJson("[]").ok());
  // Stale pre-v2 schema version.
  EXPECT_FALSE(obs::ValidateBenchReportJson(
                   R"({"schema_version":1,"bench":"x","config":{},"results":[)"
                   R"({"fs":"a","metrics":{},"counters":{}}]})")
                   .ok());
  // Empty results array.
  EXPECT_FALSE(obs::ValidateBenchReportJson(
                   R"({"schema_version":2,"bench":"x","config":{},"results":[]})")
                   .ok());
  // Counters object missing registered fields.
  EXPECT_FALSE(obs::ValidateBenchReportJson(
                   R"({"schema_version":2,"bench":"x","config":{},"results":[)"
                   R"({"fs":"a","metrics":{},"counters":{}}]})")
                   .ok());
}

TEST(BenchReportTest, LatencySummaryCarriesTailAndExtremes) {
  common::LatencyHistogram hist;
  hist.Record(100);
  hist.Record(200);
  hist.Record(5000);
  const obs::LatencySummary s = obs::SummarizeHistogram("pwrite", hist);
  EXPECT_EQ(s.count, 3u);
  // The extremes are tracked sample-exactly, outside the log buckets.
  EXPECT_EQ(s.min_ns, 100u);
  EXPECT_EQ(s.max_ns, 5000u);
  EXPECT_GE(s.p999_ns, s.p99_ns);
  EXPECT_GE(s.p99_ns, s.p50_ns);
  EXPECT_LE(s.min_ns, s.p50_ns);
  // p999 of 3 samples is the top sample's bucket; buckets are ~6% wide.
  EXPECT_GE(s.p999_ns, 5000u);
  EXPECT_LE(s.p999_ns, 5000u * 110 / 100);

  const obs::LatencySummary empty = obs::SummarizeHistogram("noop", common::LatencyHistogram{});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.min_ns, 0u);
  EXPECT_EQ(empty.max_ns, 0u);
}

TEST(BenchReportTest, TimeSeriesSectionRoundTripsAndValidates) {
  obs::BenchReport report = MakeValidReport();
  obs::TimeSeries series;
  series.Add(1000, "free_blocks", 42.0);
  series.Add(2000, "free_blocks", 40.0);
  series.Add(1000, "aligned_free_fraction", 0.97);
  report.AddTimeSeries("winefs", series);
  // A second merge for the same fs extends existing gauges instead of
  // duplicating JSON keys.
  obs::TimeSeries more;
  more.Add(3000, "free_blocks", 38.0);
  report.AddTimeSeries("winefs", more);

  const std::string json = report.ToJson();
  ASSERT_TRUE(obs::ValidateBenchReportJson(json).ok())
      << obs::ValidateBenchReportJson(json).message();
  auto parsed = obs::JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok());
  const obs::JsonValue& row = parsed->Find("results")->array[0];
  const obs::JsonValue* ts = row.Find("timeseries");
  ASSERT_NE(ts, nullptr);
  const obs::JsonValue* free_blocks = ts->Find("free_blocks");
  ASSERT_NE(free_blocks, nullptr);
  ASSERT_EQ(free_blocks->array.size(), 3u);
  EXPECT_EQ(free_blocks->array[0].array[0].number_value, 1000.0);
  EXPECT_EQ(free_blocks->array[0].array[1].number_value, 42.0);
  EXPECT_EQ(free_blocks->array[2].array[1].number_value, 38.0);
  ASSERT_NE(ts->Find("aligned_free_fraction"), nullptr);
}

TEST(BenchReportTest, ValidatorRejectsMalformedTimeSeriesPoints) {
  const std::string json = MakeValidReport().ToJson();
  ASSERT_TRUE(obs::ValidateBenchReportJson(json).ok());
  const size_t pos = json.find("\"counters\"");
  ASSERT_NE(pos, std::string::npos);
  // A point must be a [t_ns, value] pair of numbers.
  for (const char* bad :
       {R"("timeseries":{"g":[[1000]]},)", R"("timeseries":{"g":[[1000,1,2]]},)",
        R"("timeseries":{"g":[["t",1]]},)", R"("timeseries":{"g":[0]},)",
        R"("timeseries":{"g":0},)", R"("timeseries":[],)"}) {
    std::string broken = json;
    broken.insert(pos, bad);
    EXPECT_FALSE(obs::ValidateBenchReportJson(broken).ok()) << bad;
  }
  // The well-formed equivalent passes.
  std::string good = json;
  good.insert(pos, R"("timeseries":{"g":[[1000,1],[2000,2]]},)");
  EXPECT_TRUE(obs::ValidateBenchReportJson(good).ok());
}

TEST(BenchReportTest, SpanAndLatencySectionsValidate) {
  obs::BenchReport report = MakeValidReport();
  obs::TraceBuffer trace;
  trace.Record(obs::TraceEvent{obs::SpanCat::kJournalCommit, 0, 0, 42, 0});
  report.AddSpans("winefs", trace);
  common::LatencyHistogram hist;
  hist.Record(100);
  hist.Record(300);
  report.ForFs("winefs").latencies.push_back(obs::SummarizeHistogram("pwrite", hist));

  const std::string json = report.ToJson();
  ASSERT_TRUE(obs::ValidateBenchReportJson(json).ok())
      << obs::ValidateBenchReportJson(json).message();
  auto parsed = obs::JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok());
  const obs::JsonValue& row = parsed->Find("results")->array[0];
  EXPECT_EQ(row.Find("spans_ns")->Find("journal_commit")->number_value, 42.0);
  EXPECT_EQ(row.Find("latency_ns")->Find("pwrite")->Find("count")->number_value, 2.0);
}

// ---- gauge time-series sampler ----------------------------------------------

// Deterministic provider: reports how many times it has been polled.
class CountingProvider : public obs::GaugeProvider {
 public:
  void SampleGauges(obs::GaugeSample& out) override {
    polls_++;
    out.Set("polls", static_cast<double>(polls_));
  }
  int polls() const { return polls_; }

 private:
  int polls_ = 0;
};

TEST(TimeSeriesSamplerTest, SamplesOnPeriodCrossingsOnly) {
  ExecContext ctx;
  obs::TimeSeriesSampler sampler(/*period_ns=*/1000);
  CountingProvider provider;
  sampler.AddProvider(&provider);
  ctx.AttachSampler(&sampler);

  sampler.MaybeSample(ctx);  // t=0: baseline sample
  EXPECT_EQ(sampler.samples_taken(), 1u);
  ctx.clock.Advance(400);
  sampler.MaybeSample(ctx);  // t=400: same period, no sample
  EXPECT_EQ(sampler.samples_taken(), 1u);
  ctx.clock.Advance(700);
  sampler.MaybeSample(ctx);  // t=1100: crossed 1000
  sampler.MaybeSample(ctx);  // still t=1100: no double sample
  EXPECT_EQ(sampler.samples_taken(), 2u);
  ctx.clock.Advance(5000);
  sampler.MaybeSample(ctx);  // t=6100: one sample per crossing, not per period
  EXPECT_EQ(sampler.samples_taken(), 3u);
  ctx.AttachSampler(nullptr);

  const auto* points = sampler.series().Points("polls");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->size(), 3u);
  EXPECT_EQ((*points)[0].t_ns, 0u);
  EXPECT_EQ((*points)[1].t_ns, 1100u);
  EXPECT_EQ((*points)[2].t_ns, 6100u);
  EXPECT_EQ((*points)[2].value, 3.0);
  EXPECT_EQ(provider.polls(), 3);
}

TEST(TimeSeriesSamplerTest, AddProviderIsIdempotent) {
  ExecContext ctx;
  obs::TimeSeriesSampler sampler;
  CountingProvider provider;
  // Foreground and background contexts of one bench attach the same bundle;
  // the provider must still be polled exactly once per sample.
  sampler.AddProvider(&provider);
  sampler.AddProvider(&provider);
  sampler.SampleNow(ctx);
  const auto* points = sampler.series().Points("polls");
  ASSERT_NE(points, nullptr);
  EXPECT_EQ(points->size(), 1u);
  EXPECT_EQ(provider.polls(), 1);
}

TEST(TimeSeriesSamplerTest, DecimatesAndDoublesPeriodAtCapacity) {
  ExecContext ctx;
  obs::TimeSeriesSampler sampler(/*period_ns=*/10);
  CountingProvider provider;
  sampler.AddProvider(&provider);
  EXPECT_EQ(sampler.period_ns(), 10u);
  for (size_t i = 0; i < obs::TimeSeriesSampler::kMaxPointsPerGauge + 100; i++) {
    sampler.MaybeSample(ctx);
    ctx.clock.Advance(10);
  }
  // Memory stays bounded; cadence coarsens instead of dropping the tail.
  EXPECT_LE(sampler.series().MaxPoints(), obs::TimeSeriesSampler::kMaxPointsPerGauge);
  EXPECT_GE(sampler.period_ns(), 20u);
  const auto* points = sampler.series().Points("polls");
  ASSERT_NE(points, nullptr);
  // Decimation keeps full-run coverage: both ends of the run survive.
  EXPECT_EQ(points->front().t_ns, 0u);
  EXPECT_GT(points->back().t_ns, obs::TimeSeriesSampler::kMaxPointsPerGauge * 10 / 2);
}

TEST(TimeSeriesSamplerTest, ContextResetClearsSamplesKeepsProviders) {
  ExecContext ctx;
  obs::TimeSeriesSampler sampler(/*period_ns=*/1000);
  obs::TraceBuffer trace;
  CountingProvider provider;
  sampler.AddProvider(&provider);
  ctx.AttachSampler(&sampler);
  ctx.AttachTrace(&trace);
  sampler.SampleNow(ctx);
  trace.Record(obs::TraceEvent{obs::SpanCat::kAllocation, 0, 0, 10, 0});
  ASSERT_FALSE(sampler.series().empty());

  // Reset between per-fs bench rows: every attached sink restarts so samples
  // never bleed from one filesystem into the next row.
  ctx.Reset();
  EXPECT_TRUE(sampler.series().empty());
  EXPECT_EQ(sampler.samples_taken(), 0u);
  EXPECT_EQ(trace.recorded(), 0u);

  // Providers stay registered: the next sample polls them again.
  sampler.SampleNow(ctx);
  EXPECT_EQ(provider.polls(), 2);
  ctx.AttachSampler(nullptr);
  ctx.AttachTrace(nullptr);
}

// ---- chrome trace export ----------------------------------------------------

TEST(ChromeTraceTest, EmitsPerCpuTracksAndCategories) {
  obs::TraceBuffer trace;
  // Two categories across two simulated CPUs; ts/dur are microseconds in the
  // export (1500ns -> 1.5us).
  trace.Record(obs::TraceEvent{obs::SpanCat::kAllocation, 0, 1000, 2500, 7});
  trace.Record(obs::TraceEvent{obs::SpanCat::kJournalCommit, 1, 3000, 6000, 64});
  const std::string json = obs::ChromeTraceJson({obs::NamedTrace{"winefs", &trace}});

  auto parsed = obs::JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->Find("displayTimeUnit")->string_value, "ms");
  const obs::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::vector<const obs::JsonValue*> complete;
  size_t metadata = 0;
  for (const obs::JsonValue& ev : events->array) {
    const std::string& ph = ev.Find("ph")->string_value;
    if (ph == "M") {
      metadata++;
    } else if (ph == "X") {
      complete.push_back(&ev);
    }
  }
  // process_name for the fs + thread_name per CPU track.
  EXPECT_GE(metadata, 3u);
  ASSERT_EQ(complete.size(), 2u);
  EXPECT_EQ(complete[0]->Find("cat")->string_value, "allocation");
  EXPECT_EQ(complete[0]->Find("ts")->number_value, 1.0);
  EXPECT_EQ(complete[0]->Find("dur")->number_value, 1.5);
  EXPECT_EQ(complete[0]->Find("tid")->number_value, 0.0);
  EXPECT_EQ(complete[1]->Find("cat")->string_value, "journal_commit");
  EXPECT_EQ(complete[1]->Find("tid")->number_value, 1.0);
  // Both spans belong to the same filesystem "process".
  EXPECT_EQ(complete[0]->Find("pid")->number_value, complete[1]->Find("pid")->number_value);
}

TEST(ChromeTraceTest, SeparatesFilesystemsIntoProcesses) {
  obs::TraceBuffer a;
  obs::TraceBuffer b;
  a.Record(obs::TraceEvent{obs::SpanCat::kDataCopy, 0, 0, 100, 0});
  b.Record(obs::TraceEvent{obs::SpanCat::kDataCopy, 0, 0, 100, 0});
  const std::string json =
      obs::ChromeTraceJson({obs::NamedTrace{"ext4-dax", &a}, obs::NamedTrace{"winefs", &b}});
  auto parsed = obs::JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok());
  std::vector<double> pids;
  for (const obs::JsonValue& ev : parsed->Find("traceEvents")->array) {
    if (ev.Find("ph")->string_value == "X") {
      pids.push_back(ev.Find("pid")->number_value);
    }
  }
  ASSERT_EQ(pids.size(), 2u);
  EXPECT_NE(pids[0], pids[1]);
}

// ---- counter-accounting invariants across all filesystems -------------------

// Runs a small metadata + data workload and folds the counters into a
// registry, as the benches do.
void RunAccountingWorkload(const std::string& fs_name, obs::MetricsRegistry& registry) {
  pmem::PmemDevice dev(64 * kMiB);
  auto fs = fsreg::Create(fs_name, &dev, /*num_cpus=*/2);
  ASSERT_NE(fs, nullptr) << fs_name;
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok()) << fs_name;

  std::vector<uint8_t> buf(4096, 0x5c);
  for (int i = 0; i < 8; i++) {
    auto fd = fs->Open(ctx, "/f" + std::to_string(i), vfs::OpenFlags::Create());
    ASSERT_TRUE(fd.ok()) << fs_name;
    for (int b = 0; b < 8; b++) {
      ASSERT_TRUE(fs->Pwrite(ctx, *fd, buf.data(), buf.size(), b * 4096).ok()) << fs_name;
    }
    // Partially overwrite an existing block: strict-mode filesystems must
    // make this atomic (journal or CoW with old-byte copy-in), which is what
    // the invariants below check.
    ASSERT_TRUE(fs->Pwrite(ctx, *fd, buf.data(), 1000, 100).ok()) << fs_name;
    ASSERT_TRUE(fs->Fsync(ctx, *fd).ok()) << fs_name;
    ASSERT_TRUE(fs->Close(ctx, *fd).ok()) << fs_name;
  }
  registry.MergeCounters(fs_name, ctx.counters);
}

TEST(CounterAccountingTest, InvariantsHoldAcrossAllFilesystems) {
  obs::MetricsRegistry registry;
  std::vector<std::string> lineup = fsreg::RelaxedLineup();
  for (const std::string& fs_name : fsreg::StrictLineup()) {
    lineup.push_back(fs_name);
  }
  for (const std::string& fs_name : lineup) {
    SCOPED_TRACE(fs_name);
    RunAccountingWorkload(fs_name, registry);
    // Aligned allocations are a subset of all allocation requests.
    EXPECT_LE(registry.Counter(fs_name, "aligned_allocs"),
              registry.Counter(fs_name, "alloc_requests"));
    EXPECT_GT(registry.Counter(fs_name, "alloc_requests"), 0u);
  }

  // Strict WineFS journals metadata (and small data overwrites): the undo
  // journal must have seen bytes.
  EXPECT_GT(registry.Counter("winefs", "journal_bytes"), 0u);
  // Strict NOVA is log-structured/CoW for data: overwrites relocate bytes.
  EXPECT_GT(registry.Counter("nova", "cow_bytes"), 0u);
}

}  // namespace
