// Unit tests for the virtual-memory simulator: TLB, LLC, page table, and the
// mmap engine's fault/translation paths with a scripted fault handler.
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/pmem/device.h"
#include "src/vmem/llc_cache.h"
#include "src/obs/trace.h"
#include "src/vmem/mmap_engine.h"
#include "src/vmem/page_table.h"
#include "src/vmem/tlb.h"

namespace {

using common::ExecContext;
using common::kBlockSize;
using common::kHugepageSize;
using vmem::MmuParams;
using vmem::Tlb;
using vmem::TlbResult;

TEST(TlbTest, MissThenHit) {
  Tlb tlb(MmuParams{});
  EXPECT_EQ(tlb.Lookup(0x1000, false), TlbResult::kMiss);
  tlb.Insert(0x1000, false);
  EXPECT_EQ(tlb.Lookup(0x1000, false), TlbResult::kL1Hit);
}

TEST(TlbTest, CapacityEvictsToL2) {
  MmuParams params;
  params.l1_tlb_4k_entries = 4;
  params.l2_tlb_entries = 64;
  Tlb tlb(params);
  for (uint64_t p = 0; p < 8; p++) {
    tlb.Insert(p * kBlockSize, false);
  }
  // The oldest entries fell out of L1 but remain in L2.
  EXPECT_EQ(tlb.Lookup(0, false), TlbResult::kL2Hit);
  // And an L2 hit promotes back into L1.
  EXPECT_EQ(tlb.Lookup(0, false), TlbResult::kL1Hit);
}

TEST(TlbTest, HugeAndBaseDoNotAlias) {
  Tlb tlb(MmuParams{});
  tlb.Insert(0, true);
  EXPECT_EQ(tlb.Lookup(0, false), TlbResult::kMiss);
  EXPECT_EQ(tlb.Lookup(0, true), TlbResult::kL1Hit);
}

TEST(TlbTest, OneHugeEntryCovers512Pages) {
  Tlb tlb(MmuParams{});
  tlb.Insert(0, true);
  for (uint64_t off = 0; off < kHugepageSize; off += kBlockSize) {
    EXPECT_EQ(tlb.Lookup(off, true), TlbResult::kL1Hit);
  }
}

TEST(TlbTest, InvalidateAndFlush) {
  Tlb tlb(MmuParams{});
  tlb.Insert(0x2000, false);
  tlb.InvalidatePage(0x2000, false);
  EXPECT_EQ(tlb.Lookup(0x2000, false), TlbResult::kMiss);
  tlb.Insert(0x3000, false);
  tlb.Flush();
  EXPECT_EQ(tlb.Lookup(0x3000, false), TlbResult::kMiss);
}

TEST(LlcTest, HitAfterFill) {
  MmuParams params;
  vmem::LlcCache llc(params);
  EXPECT_FALSE(llc.Access(0x1000));
  EXPECT_TRUE(llc.Access(0x1000));
}

TEST(LlcTest, CapacityEviction) {
  MmuParams params;
  params.llc_bytes = 64 * 16;  // one set, 16 ways
  params.llc_ways = 16;
  vmem::LlcCache llc(params);
  for (uint64_t i = 0; i < 17; i++) {
    llc.Access(i * 64);
  }
  EXPECT_FALSE(llc.Access(0));  // LRU victim was line 0
}

TEST(PageTableTest, MapWalk4k) {
  vmem::PageTable pt(1ull << 40);
  pt.Map(0x7f0000001000, 0x5000, /*huge=*/false, /*writable=*/true);
  auto walk = pt.Walk(0x7f0000001234);
  ASSERT_TRUE(walk.pte.present);
  EXPECT_FALSE(walk.pte.huge);
  EXPECT_EQ(walk.pte.phys, 0x5000u);
  EXPECT_EQ(walk.pte_line_count, 4u);  // 4-level walk
}

TEST(PageTableTest, MapWalkHugeStopsAtPmd) {
  vmem::PageTable pt(1ull << 40);
  pt.Map(0x7f0000000000, 2 * common::kMiB, /*huge=*/true, /*writable=*/true);
  auto walk = pt.Walk(0x7f0000000000 + 12345);
  ASSERT_TRUE(walk.pte.present);
  EXPECT_TRUE(walk.pte.huge);
  EXPECT_EQ(walk.pte_line_count, 3u);  // PGD, PUD, PMD
}

TEST(PageTableTest, UnmapRemoves) {
  vmem::PageTable pt(1ull << 40);
  pt.Map(0x1000, 0x2000, false, true);
  pt.Unmap(0x1000, false);
  EXPECT_FALSE(pt.Walk(0x1000).pte.present);
}

TEST(PageTableTest, NodeCountGrowsWithSparseMappings) {
  vmem::PageTable pt(1ull << 40);
  const uint64_t before = pt.node_count();
  pt.Map(0x7f0000000000, 0x1000, false, true);
  pt.Map(0x7e0000000000, 0x2000, false, true);  // different PGD entry subtree
  EXPECT_GT(pt.node_count(), before + 3);
}

// Scripted fault handler: maps file offsets 1:1 onto a device region,
// optionally with hugepages.
class FakeHandler : public vmem::FaultHandler {
 public:
  FakeHandler(uint64_t phys_base, bool huge) : phys_base_(phys_base), huge_(huge) {}

  common::Result<FaultMapping> HandleFault(ExecContext& ctx, uint64_t ino,
                                           uint64_t page_offset, bool write) override {
    (void)ctx;
    (void)ino;
    (void)write;
    faults_++;
    if (huge_) {
      const uint64_t chunk = common::RoundDown(page_offset, kHugepageSize);
      return FaultMapping{phys_base_ + chunk, true};
    }
    return FaultMapping{phys_base_ + page_offset, false};
  }

  int faults_ = 0;

 private:
  uint64_t phys_base_;
  bool huge_;
};

class MmapEngineTest : public ::testing::Test {
 protected:
  MmapEngineTest() : dev_(64 * common::kMiB), engine_(&dev_, MmuParams{}, 2) {}

  pmem::PmemDevice dev_;
  vmem::MmapEngine engine_;
};

TEST_F(MmapEngineTest, HugeMappingFaultsOncePer2MiB) {
  FakeHandler handler(4 * common::kMiB, /*huge=*/true);
  auto map = engine_.Mmap(&handler, 1, 4 * common::kMiB, true);
  ExecContext ctx;
  std::vector<uint8_t> buf(4 * common::kMiB, 0x5a);
  ASSERT_TRUE(map->Write(ctx, 0, buf.data(), buf.size()).ok());
  EXPECT_EQ(ctx.counters.page_faults_2m, 2u);
  EXPECT_EQ(ctx.counters.page_faults_4k, 0u);
  EXPECT_EQ(handler.faults_, 2);
  EXPECT_DOUBLE_EQ(map->HugeMappedFraction(), 1.0);
}

TEST_F(MmapEngineTest, BaseMappingFaults512xMore) {
  FakeHandler handler(4 * common::kMiB, /*huge=*/false);
  auto map = engine_.Mmap(&handler, 1, 2 * common::kMiB, true);
  ExecContext ctx;
  std::vector<uint8_t> buf(2 * common::kMiB, 0x5a);
  ASSERT_TRUE(map->Write(ctx, 0, buf.data(), buf.size()).ok());
  EXPECT_EQ(ctx.counters.page_faults_4k, 512u);
  EXPECT_EQ(ctx.counters.page_faults_2m, 0u);
  EXPECT_DOUBLE_EQ(map->HugeMappedFraction(), 0.0);
}

TEST_F(MmapEngineTest, HugeFaultsAreCheaperInTotal) {
  FakeHandler huge_handler(4 * common::kMiB, true);
  FakeHandler base_handler(8 * common::kMiB, false);
  auto huge_map = engine_.Mmap(&huge_handler, 1, 2 * common::kMiB, true);
  auto base_map = engine_.Mmap(&base_handler, 2, 2 * common::kMiB, true);
  std::vector<uint8_t> buf(2 * common::kMiB, 1);
  obs::TraceBuffer huge_trace;
  obs::TraceBuffer base_trace;
  ExecContext huge_ctx(0);
  huge_ctx.AttachTrace(&huge_trace);
  ExecContext base_ctx(1);
  base_ctx.AttachTrace(&base_trace);
  ASSERT_TRUE(huge_map->Write(huge_ctx, 0, buf.data(), buf.size()).ok());
  ASSERT_TRUE(base_map->Write(base_ctx, 0, buf.data(), buf.size()).ok());
  // Fig 2: with hugepages the 2 MiB write is ~2x faster end to end.
  EXPECT_LT(huge_ctx.clock.NowNs() * 3 / 2, base_ctx.clock.NowNs());
  EXPECT_GT(base_trace.TotalNs(obs::SpanCat::kFaultHandling),
            huge_trace.TotalNs(obs::SpanCat::kFaultHandling) * 10);
}

TEST_F(MmapEngineTest, ReadBackMatchesWrite) {
  FakeHandler handler(4 * common::kMiB, true);
  auto map = engine_.Mmap(&handler, 1, 2 * common::kMiB, true);
  ExecContext ctx;
  std::vector<uint8_t> out(1024, 0);
  std::vector<uint8_t> in(1024);
  for (size_t i = 0; i < in.size(); i++) {
    in[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(map->Write(ctx, 12345, in.data(), in.size()).ok());
  ASSERT_TRUE(map->Read(ctx, 12345, out.data(), out.size()).ok());
  EXPECT_EQ(in, out);
}

TEST_F(MmapEngineTest, LoadLineChargesTlbAndCache) {
  FakeHandler handler(4 * common::kMiB, false);
  auto map = engine_.Mmap(&handler, 1, 16 * common::kMiB, true);
  ExecContext ctx;
  ASSERT_TRUE(map->Prefault(ctx, true).ok());
  const auto faults = ctx.counters.total_page_faults();
  ctx.counters.Reset();

  uint64_t out;
  // Touch many distinct pages: TLB misses accumulate, no new faults.
  for (uint64_t off = 0; off < 16 * common::kMiB; off += kBlockSize) {
    ASSERT_TRUE(map->LoadLine(ctx, off, &out).ok());
  }
  EXPECT_EQ(ctx.counters.total_page_faults(), 0u);
  EXPECT_GT(faults, 0u);
  EXPECT_GT(ctx.counters.tlb_l2_misses, 0u);
}

TEST_F(MmapEngineTest, OutOfBoundsAccessFails) {
  FakeHandler handler(4 * common::kMiB, true);
  auto map = engine_.Mmap(&handler, 1, 1 * common::kMiB, true);
  ExecContext ctx;
  uint8_t b = 0;
  EXPECT_FALSE(map->Write(ctx, 2 * common::kMiB, &b, 1).ok());
  EXPECT_FALSE(map->LoadLine(ctx, 1 * common::kMiB + 1, &b).ok());
}

TEST_F(MmapEngineTest, ReadOnlyMappingRejectsWrites) {
  FakeHandler handler(4 * common::kMiB, true);
  auto map = engine_.Mmap(&handler, 1, 1 * common::kMiB, false);
  ExecContext ctx;
  uint8_t b = 1;
  EXPECT_FALSE(map->Write(ctx, 0, &b, 1).ok());
}

TEST_F(MmapEngineTest, UnmapAllDropsTranslations) {
  FakeHandler handler(4 * common::kMiB, true);
  auto map = engine_.Mmap(&handler, 1, 2 * common::kMiB, true);
  ExecContext ctx;
  uint8_t b = 1;
  ASSERT_TRUE(map->Write(ctx, 0, &b, 1).ok());
  EXPECT_EQ(handler.faults_, 1);
  map->UnmapAll(ctx);
  ASSERT_TRUE(map->Write(ctx, 0, &b, 1).ok());
  EXPECT_EQ(handler.faults_, 2);  // refaulted
}

TEST_F(MmapEngineTest, PageTableBytesGrow) {
  FakeHandler handler(4 * common::kMiB, false);
  auto map = engine_.Mmap(&handler, 1, 8 * common::kMiB, true);
  const uint64_t before = engine_.PageTableBytes();
  ExecContext ctx;
  ASSERT_TRUE(map->Prefault(ctx, true).ok());
  EXPECT_GT(engine_.PageTableBytes(), before);
}

}  // namespace
