// Unit tests for fscore building blocks: ExtentMap and FreeSpaceMap.
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/fs/fscore/extent.h"
#include "src/fs/fscore/free_space_map.h"
#include "src/fs/fscore/pm_format.h"

namespace {

using fscore::Extent;
using fscore::ExtentMap;
using fscore::FreeSpaceMap;

TEST(ExtentMapTest, InsertLookup) {
  ExtentMap map;
  map.Insert(0, 100, 10);
  auto m = map.Lookup(5);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->phys_block, 105u);
  EXPECT_EQ(m->contiguous_blocks, 5u);
  EXPECT_FALSE(map.Lookup(10).has_value());
}

TEST(ExtentMapTest, MergesAdjacentRuns) {
  ExtentMap map;
  map.Insert(0, 100, 4);
  map.Insert(4, 104, 4);  // logically and physically contiguous
  EXPECT_EQ(map.FragmentCount(), 1u);
  auto m = map.Lookup(0);
  EXPECT_EQ(m->contiguous_blocks, 8u);
}

TEST(ExtentMapTest, NoMergeWhenPhysicallyDiscontiguous) {
  ExtentMap map;
  map.Insert(0, 100, 4);
  map.Insert(4, 300, 4);
  EXPECT_EQ(map.FragmentCount(), 2u);
}

TEST(ExtentMapTest, MergeWithSuccessor) {
  ExtentMap map;
  map.Insert(4, 104, 4);
  map.Insert(0, 100, 4);
  EXPECT_EQ(map.FragmentCount(), 1u);
}

TEST(ExtentMapTest, RemoveMiddleSplitsRun) {
  ExtentMap map;
  map.Insert(0, 100, 10);
  auto freed = map.Remove(3, 4);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0].phys_block, 103u);
  EXPECT_EQ(freed[0].num_blocks, 4u);
  EXPECT_EQ(map.Lookup(0)->contiguous_blocks, 3u);
  EXPECT_FALSE(map.Lookup(3).has_value());
  EXPECT_EQ(map.Lookup(7)->phys_block, 107u);
  EXPECT_EQ(map.MappedBlocks(), 6u);
}

TEST(ExtentMapTest, RemoveAcrossMultipleRuns) {
  ExtentMap map;
  map.Insert(0, 100, 4);
  map.Insert(4, 300, 4);
  auto freed = map.Remove(2, 4);
  EXPECT_EQ(freed.size(), 2u);
  EXPECT_EQ(map.MappedBlocks(), 4u);
}

TEST(ExtentMapTest, EntriesSorted) {
  ExtentMap map;
  map.Insert(8, 500, 2);
  map.Insert(0, 100, 2);
  auto entries = map.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 0u);
  EXPECT_EQ(entries[1].first, 8u);
}

TEST(FreeSpaceMapTest, ReleaseMerges) {
  FreeSpaceMap map;
  map.Release(0, 10);
  map.Release(20, 10);
  map.Release(10, 10);  // bridges the two runs
  EXPECT_EQ(map.free_blocks(), 30u);
  EXPECT_EQ(map.runs().size(), 1u);
  EXPECT_EQ(map.LargestRun(), 30u);
}

TEST(FreeSpaceMapTest, FirstFitFromGoalWraps) {
  FreeSpaceMap map;
  map.Release(0, 10);
  map.Release(100, 10);
  auto ext = map.AllocFirstFit(5, 50);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(ext->phys_block, 100u);  // first run at/after the goal
  ext = map.AllocFirstFit(8, 200);   // wraps to the start
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(ext->phys_block, 0u);
}

TEST(FreeSpaceMapTest, BestFitPrefersSnugRun) {
  FreeSpaceMap map;
  map.Release(0, 100);
  map.Release(200, 6);
  auto ext = map.AllocBestFit(5);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(ext->phys_block, 200u);
}

TEST(FreeSpaceMapTest, AllocAlignedReturnsAlignedStart) {
  FreeSpaceMap map;
  map.Release(100, 2000);
  auto ext = map.AllocAligned(512);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(ext->phys_block % 512, 0u);
  EXPECT_EQ(ext->phys_block, 512u);
}

TEST(FreeSpaceMapTest, AllocAlignedFailsWhenNoAlignedRun) {
  FreeSpaceMap map;
  map.Release(100, 300);  // contains no aligned 512-run
  EXPECT_FALSE(map.AllocAligned(512).has_value());
}

TEST(FreeSpaceMapTest, ReserveRangeCutsMiddle) {
  FreeSpaceMap map;
  map.Release(0, 100);
  map.ReserveRange(40, 20);
  EXPECT_EQ(map.free_blocks(), 80u);
  EXPECT_EQ(map.runs().size(), 2u);
  EXPECT_FALSE(map.ContainsRange(45, 1));
  EXPECT_TRUE(map.ContainsRange(0, 40));
  EXPECT_TRUE(map.ContainsRange(60, 40));
}

TEST(FreeSpaceMapTest, CountAlignedFreeRegions) {
  FreeSpaceMap map;
  map.Release(0, 512 * 3);  // three aligned chunks
  EXPECT_EQ(map.CountAlignedFreeRegions(), 3u);
  map.ReserveRange(512, 1);  // puncture the middle chunk
  EXPECT_EQ(map.CountAlignedFreeRegions(), 2u);
}

TEST(PmFormatTest, StructSizes) {
  EXPECT_EQ(sizeof(fscore::PmInode), 256u);
  EXPECT_EQ(sizeof(fscore::PmDirent), 64u);
  EXPECT_LE(sizeof(fscore::PmIndirectBlock), common::kBlockSize);
  EXPECT_LE(sizeof(fscore::PmSuperblock), common::kBlockSize);
}

TEST(PmFormatTest, ExtentPacking) {
  const uint64_t packed = fscore::PmExtent::Pack(0x123456789abull, 0x1234);
  fscore::PmExtent ext{7, packed};
  EXPECT_EQ(ext.phys_block(), 0x123456789abull);
  EXPECT_EQ(ext.len(), 0x1234u);
}

}  // namespace
