// Workload-library tests: each application stand-in runs against a real
// filesystem + mmap engine and must behave correctly (values round-trip,
// counters move in the expected directions).
#include <gtest/gtest.h>

#include <memory>

#include "src/common/units.h"
#include "src/fs/registry.h"
#include "src/wload/filebench.h"
#include "src/wload/mmap_btree.h"
#include "src/wload/mmap_lsm.h"
#include "src/wload/oltp.h"
#include "src/wload/part.h"
#include "src/wload/pool_kv.h"
#include "src/wload/sim_runner.h"
#include "src/wload/wtiger.h"
#include "src/wload/ycsb.h"

namespace {

using common::ExecContext;
using common::kMiB;

class WloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<pmem::PmemDevice>(1024 * kMiB);
    fs_ = fsreg::Create("winefs", dev_.get());
    ASSERT_TRUE(fs_->Mkfs(ctx_).ok());
    engine_ = std::make_unique<vmem::MmapEngine>(dev_.get(), vmem::MmuParams{}, 8);
  }

  ExecContext ctx_;
  std::unique_ptr<pmem::PmemDevice> dev_;
  std::unique_ptr<vfs::FileSystem> fs_;
  std::unique_ptr<vmem::MmapEngine> engine_;
};

TEST_F(WloadTest, SimRunnerAggregates) {
  wload::SimRunner runner(4, 4);
  auto result = runner.Run(100, [](uint32_t, uint64_t, ExecContext& ctx) {
    ctx.clock.Advance(10);
    return true;
  });
  EXPECT_EQ(result.total_ops, 400u);
  EXPECT_EQ(result.wall_ns, 1000u);  // threads in parallel: 100 ops x 10 ns
  EXPECT_GT(result.OpsPerSecond(), 0.0);
}

TEST_F(WloadTest, SimRunnerStopsEarly) {
  wload::SimRunner runner(2, 2);
  auto result = runner.Run(100, [](uint32_t, uint64_t i, ExecContext&) { return i < 10; });
  EXPECT_EQ(result.total_ops, 20u);
}

TEST_F(WloadTest, MmapLsmRoundTrip) {
  wload::MmapLsm lsm(fs_.get(), engine_.get(), wload::MmapLsmConfig{.segment_bytes = 8 * kMiB});
  ASSERT_TRUE(lsm.Open(ctx_).ok());
  std::vector<uint8_t> value(1024);
  for (size_t i = 0; i < value.size(); i++) {
    value[i] = static_cast<uint8_t>(i * 3);
  }
  for (uint64_t k = 0; k < 100; k++) {
    value[0] = static_cast<uint8_t>(k);
    ASSERT_TRUE(lsm.Put(ctx_, k, value.data(), value.size()).ok());
  }
  std::vector<uint8_t> out(1024);
  for (uint64_t k = 0; k < 100; k++) {
    auto n = lsm.Get(ctx_, k, out.data());
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 1024u);
    EXPECT_EQ(out[0], static_cast<uint8_t>(k));
    EXPECT_EQ(out[500], value[500]);
  }
  EXPECT_EQ(lsm.Get(ctx_, 99999, out.data()).status().code(), common::ErrorCode::kNotFound);
}

TEST_F(WloadTest, MmapLsmRollsSegments) {
  wload::MmapLsm lsm(fs_.get(), engine_.get(), wload::MmapLsmConfig{.segment_bytes = 1 * kMiB});
  ASSERT_TRUE(lsm.Open(ctx_).ok());
  std::vector<uint8_t> value(4096, 9);
  for (uint64_t k = 0; k < 600; k++) {  // ~2.4 MiB total -> multiple segments
    ASSERT_TRUE(lsm.Put(ctx_, k, value.data(), value.size()).ok());
  }
  std::vector<uint8_t> out(4096);
  auto n = lsm.Get(ctx_, 599, out.data());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out[0], 9);
}

TEST_F(WloadTest, MmapLsmScan) {
  wload::MmapLsm lsm(fs_.get(), engine_.get(), wload::MmapLsmConfig{.segment_bytes = 8 * kMiB});
  ASSERT_TRUE(lsm.Open(ctx_).ok());
  std::vector<uint8_t> value(128, 4);
  for (uint64_t k = 0; k < 200; k += 2) {
    ASSERT_TRUE(lsm.Put(ctx_, k, value.data(), value.size()).ok());
  }
  std::vector<uint8_t> out(8192);
  auto n = lsm.Scan(ctx_, 100, 10, out.data());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10u);
}

TEST_F(WloadTest, MmapBtreeBatchedPutsVisible) {
  wload::MmapBtree btree(fs_.get(), engine_.get(),
                         wload::MmapBtreeConfig{.map_bytes = 64 * kMiB, .batch_size = 10});
  ASSERT_TRUE(btree.Open(ctx_).ok());
  std::vector<uint8_t> value(512);
  std::vector<uint8_t> out(4096);
  for (uint64_t k = 0; k < 105; k++) {
    value[0] = static_cast<uint8_t>(k * 7);
    ASSERT_TRUE(btree.Put(ctx_, k, value.data(), value.size()).ok());
  }
  // 100 committed + 5 pending; both must be readable.
  for (uint64_t k : {0ull, 55ull, 99ull, 103ull}) {
    auto n = btree.Get(ctx_, k, out.data());
    ASSERT_TRUE(n.ok()) << k;
    EXPECT_EQ(out[0], static_cast<uint8_t>(k * 7));
  }
  EXPECT_GT(btree.pages_used(), 10u);
}

TEST_F(WloadTest, MmapBtreeFaultsAreAllocating) {
  // The sparse map means writes fault-allocate; verify blocks appear.
  wload::MmapBtree btree(fs_.get(), engine_.get(),
                         wload::MmapBtreeConfig{.map_bytes = 64 * kMiB, .batch_size = 4});
  ASSERT_TRUE(btree.Open(ctx_).ok());
  auto st0 = fs_->Stat(ctx_, "/lmdb.mdb");
  // WineFS's hugepage-allocating write fault materializes a whole 2 MiB chunk
  // on first touch; write past it to prove faults keep allocating.
  std::vector<uint8_t> value(1024, 1);
  for (uint64_t k = 0; k < 4000; k++) {
    ASSERT_TRUE(btree.Put(ctx_, k, value.data(), value.size()).ok());
  }
  auto st1 = fs_->Stat(ctx_, "/lmdb.mdb");
  EXPECT_GT(st1->blocks, st0->blocks);
  EXPECT_GT(st1->blocks, common::kBlocksPerHugepage);
  EXPECT_GT(ctx_.counters.total_page_faults(), 0u);
}

TEST_F(WloadTest, PoolKvExtendsPools) {
  wload::PoolKv kv(fs_.get(), engine_.get(), wload::PoolKvConfig{.pool_bytes = 32 * kMiB});
  ASSERT_TRUE(kv.Open(ctx_).ok());
  std::vector<uint8_t> value(4096);
  std::vector<uint8_t> out(4096);
  for (uint64_t k = 0; k < 6000; k++) {  // ~24 MiB of values -> pool 0 (16 MiB
                                         // reserved) overflows into pool 1
    value[5] = static_cast<uint8_t>(k);
    ASSERT_TRUE(kv.Put(ctx_, k, value.data(), value.size()).ok());
  }
  EXPECT_GE(kv.pool_count(), 2u);
  for (uint64_t k : {0ull, 3000ull, 5999ull}) {
    auto n = kv.Get(ctx_, k, out.data());
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(out[5], static_cast<uint8_t>(k));
  }
}

TEST_F(WloadTest, PArtInsertLookup) {
  wload::PArt part(fs_.get(), engine_.get(),
                   wload::PArtConfig{.pool_bytes = 64 * kMiB, .prefault = false});
  ASSERT_TRUE(part.Open(ctx_).ok());
  for (uint64_t k = 0; k < 5000; k++) {
    ASSERT_TRUE(part.Insert(ctx_, k * 977, k + 1).ok()) << k;
  }
  for (uint64_t k = 0; k < 5000; k += 7) {
    auto v = part.Lookup(ctx_, k * 977);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, k + 1);
  }
  EXPECT_FALSE(part.Lookup(ctx_, 123456789).ok());
}

TEST_F(WloadTest, PArtUpdatesInPlace) {
  wload::PArt part(fs_.get(), engine_.get(),
                   wload::PArtConfig{.pool_bytes = 16 * kMiB, .prefault = false});
  ASSERT_TRUE(part.Open(ctx_).ok());
  ASSERT_TRUE(part.Insert(ctx_, 42, 1).ok());
  ASSERT_TRUE(part.Insert(ctx_, 42, 2).ok());
  EXPECT_EQ(*part.Lookup(ctx_, 42), 2u);
}

TEST_F(WloadTest, PArtNodeGrowthAdaptive) {
  wload::PArt part(fs_.get(), engine_.get(),
                   wload::PArtConfig{.pool_bytes = 64 * kMiB, .prefault = false});
  ASSERT_TRUE(part.Open(ctx_).ok());
  // 300 keys differing only in the last byte force 4 -> 16 -> 48 -> 256 growth
  // of one node (255 distinct bytes + spill to the next byte position).
  for (uint64_t k = 0; k < 300; k++) {
    ASSERT_TRUE(part.Insert(ctx_, k, k).ok()) << k;
  }
  for (uint64_t k = 0; k < 300; k++) {
    auto v = part.Lookup(ctx_, k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, k);
  }
}

TEST_F(WloadTest, YcsbOnMmapLsm) {
  wload::MmapLsm lsm(fs_.get(), engine_.get(), wload::MmapLsmConfig{.segment_bytes = 16 * kMiB});
  ASSERT_TRUE(lsm.Open(ctx_).ok());
  wload::YcsbConfig config;
  config.record_count = 2000;
  config.operation_count = 2000;
  config.value_bytes = 256;
  config.num_threads = 2;
  wload::YcsbDriver driver(&lsm, config);
  auto load = driver.Load();
  EXPECT_EQ(load.run.total_ops, 2000u);
  for (auto workload : {wload::YcsbWorkload::kA, wload::YcsbWorkload::kB,
                        wload::YcsbWorkload::kC, wload::YcsbWorkload::kD,
                        wload::YcsbWorkload::kE, wload::YcsbWorkload::kF}) {
    auto result = driver.Run(workload);
    EXPECT_EQ(result.run.total_ops, 2000u) << wload::YcsbName(workload);
    EXPECT_EQ(result.not_found, 0u) << wload::YcsbName(workload);
    EXPECT_GT(result.run.OpsPerSecond(), 0.0);
  }
}

TEST_F(WloadTest, FilebenchPersonalitiesRun) {
  for (auto personality :
       {wload::FilebenchPersonality::kVarmail, wload::FilebenchPersonality::kFileserver,
        wload::FilebenchPersonality::kWebserver, wload::FilebenchPersonality::kWebproxy}) {
    SetUp();  // fresh filesystem per personality
    wload::FilebenchConfig config;
    config.num_threads = 4;
    config.num_files = 100;
    config.ops_per_thread = 30;
    config.mean_file_bytes = 8192;
    wload::Filebench bench(fs_.get(), personality, config);
    auto result = bench.Run();
    ASSERT_TRUE(result.ok()) << wload::FilebenchName(personality)
                             << ": " << result.status().message();
    EXPECT_EQ(result->run.total_ops, 120u);
    EXPECT_GT(result->KopsPerSecond(), 0.0);
  }
}

TEST_F(WloadTest, OltpTransactionsComplete) {
  wload::OltpConfig config;
  config.accounts = 10000;
  config.num_threads = 4;
  config.transactions_per_thread = 50;
  wload::OltpEngine oltp(fs_.get(), config);
  ASSERT_TRUE(oltp.Setup(ctx_).ok());
  auto result = oltp.RunReadWrite();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_ops, 200u);
  EXPECT_GT(result->counters.fsync_count, 0u);
}

TEST_F(WloadTest, WtigerFillAndRead) {
  wload::WtigerConfig config;
  config.num_keys = 800;
  config.num_threads = 4;
  wload::Wtiger wt(fs_.get(), config);
  ASSERT_TRUE(wt.Setup(ctx_).ok());
  auto fill = wt.FillRandom();
  ASSERT_TRUE(fill.ok());
  EXPECT_EQ(fill->total_ops, 800u);
  auto read = wt.ReadRandom();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->total_ops, 800u);
  // Unaligned appends: the log must not be block-aligned in size.
  auto st = fs_->Stat(ctx_, "/wt_log");
  EXPECT_NE(st->size % common::kBlockSize, 0u);
}

}  // namespace
