// Fault-injection unit tests, one block per fault class (fixed seeds, fully
// deterministic): torn-store lane masks and reconstruction from pending
// cachelines, poisoned-media EIO propagation up through every filesystem, and
// latency-spike cost accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "src/common/units.h"
#include "src/fs/registry.h"
#include "src/pmem/device.h"
#include "src/pmem/fault_injector.h"

namespace {

using common::ErrorCode;
using common::ExecContext;
using common::kMiB;

// --- Torn stores -----------------------------------------------------------

TEST(TornStoreTest, LaneMasksAreDeterministicPerSeedAndSeq) {
  pmem::FaultInjector a(pmem::FaultPlan{.seed = 42});
  pmem::FaultInjector b(pmem::FaultPlan{.seed = 42});
  pmem::FaultInjector c(pmem::FaultPlan{.seed = 43});
  for (uint64_t seq : {0ull, 1ull, 7ull, 1000ull}) {
    EXPECT_EQ(a.TornLaneMasks(seq, 4), b.TornLaneMasks(seq, 4))
        << "same seed+seq must give the same masks (seq=" << seq << ")";
  }
  // A different seed must not reproduce the whole mask schedule.
  bool any_difference = false;
  for (uint64_t seq = 0; seq < 16; seq++) {
    if (a.TornLaneMasks(seq, 4) != c.TornLaneMasks(seq, 4)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(TornStoreTest, LaneMasksAreNonTrivialAndBounded) {
  pmem::FaultInjector injector(pmem::FaultPlan{.seed = 7});
  for (uint64_t seq = 0; seq < 64; seq++) {
    const auto masks = injector.TornLaneMasks(seq, 3);
    EXPECT_LE(masks.size(), 3u);
    EXPECT_FALSE(masks.empty());
    for (uint8_t mask : masks) {
      // Empty and full masks are already covered by whole-line enumeration.
      EXPECT_NE(mask, 0x00);
      EXPECT_NE(mask, 0xff);
    }
    // No duplicate variants.
    auto sorted = masks;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(TornStoreTest, TornLineReconstructsLanewiseFromPendingStore) {
  // Store a full cacheline of 0xBB over 0xAA, don't fence, then tear it:
  // lanes in the mask show new bytes, the rest keep the old image.
  pmem::PmemDevice dev(1 * kMiB);
  ExecContext ctx;
  std::vector<uint8_t> old_line(common::kCacheline, 0xAA);
  dev.PersistStore(ctx, 0, old_line.data(), old_line.size());
  dev.EnableCrashTracking();

  std::vector<uint8_t> new_line(common::kCacheline, 0xBB);
  dev.Store(ctx, 0, new_line.data(), new_line.size());
  const auto pending = dev.PendingLines();
  ASSERT_EQ(pending.size(), 1u);

  pmem::FaultInjector injector(pmem::FaultPlan{.seed = 11});
  const auto masks = injector.TornLaneMasks(pending[0].seq, 3);
  ASSERT_FALSE(masks.empty());
  for (uint8_t mask : masks) {
    std::vector<uint8_t> img = dev.PersistentImage();
    for (uint32_t lane = 0; lane < pmem::kLanesPerLine; lane++) {
      if (mask & (1u << lane)) {
        std::memcpy(img.data() + pending[0].line_offset + lane * pmem::kLaneBytes,
                    pending[0].data + lane * pmem::kLaneBytes, pmem::kLaneBytes);
      }
    }
    for (uint32_t lane = 0; lane < pmem::kLanesPerLine; lane++) {
      const uint8_t expect = (mask & (1u << lane)) ? 0xBB : 0xAA;
      for (uint64_t b = 0; b < pmem::kLaneBytes; b++) {
        ASSERT_EQ(img[lane * pmem::kLaneBytes + b], expect)
            << "mask=" << int(mask) << " lane=" << lane;
      }
    }
  }
}

// --- Poisoned media blocks -------------------------------------------------

TEST(PoisonTest, PoisonedLoadReturnsEioAndZeroFills) {
  pmem::PmemDevice dev(1 * kMiB);
  pmem::FaultInjector injector(pmem::FaultPlan{.seed = 1});
  dev.AttachFaultInjector(&injector);
  ExecContext ctx;
  std::vector<uint8_t> data(4096, 0x5c);
  dev.PersistStore(ctx, 8192, data.data(), data.size());

  injector.PoisonRange(8192, 256);
  EXPECT_EQ(dev.ReadStatus(8192, 4096).code(), ErrorCode::kIoError);
  EXPECT_TRUE(dev.ReadStatus(8192 + 256, 4096 - 256).ok());

  std::vector<uint8_t> out(4096, 0xee);
  EXPECT_EQ(dev.Load(ctx, 8192, out.data(), out.size()).code(), ErrorCode::kIoError);
  // Never stale or garbage bytes: the whole destination is zeroed.
  for (uint8_t byte : out) {
    ASSERT_EQ(byte, 0);
  }
  // A load that avoids the poisoned media block still sees the data.
  EXPECT_TRUE(dev.Load(ctx, 8192 + 256, out.data(), 256).ok());
  EXPECT_EQ(out[0], 0x5c);
}

TEST(PoisonTest, FullBlockStoreClearsPoisonPartialDoesNot) {
  pmem::PmemDevice dev(1 * kMiB);
  pmem::FaultInjector injector(pmem::FaultPlan{.seed = 1});
  dev.AttachFaultInjector(&injector);
  ExecContext ctx;

  injector.PoisonRange(0, 512);  // two media blocks
  EXPECT_EQ(injector.poisoned_block_count(), 2u);

  // Partial overwrite: the device would have to read-modify-write the
  // poisoned block, so the poison stays.
  std::vector<uint8_t> small(64, 0x01);
  dev.PersistStore(ctx, 0, small.data(), small.size());
  EXPECT_EQ(injector.poisoned_block_count(), 2u);
  EXPECT_EQ(dev.ReadStatus(0, 64).code(), ErrorCode::kIoError);

  // Full-block overwrite re-ECCs the first media block only.
  std::vector<uint8_t> block(256, 0x02);
  dev.PersistStore(ctx, 0, block.data(), block.size());
  EXPECT_EQ(injector.poisoned_block_count(), 1u);
  EXPECT_TRUE(dev.ReadStatus(0, 256).ok());
  EXPECT_EQ(dev.ReadStatus(256, 256).code(), ErrorCode::kIoError);

  // Zero() is a streaming store: it also repairs fully covered blocks.
  dev.Zero(ctx, 256, 256);
  EXPECT_EQ(injector.poisoned_block_count(), 0u);
  EXPECT_TRUE(dev.ReadStatus(0, 512).ok());
}

class PoisonedReadFsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PoisonedReadFsTest, PoisonedDataBlockSurfacesEioNeverStaleBytes) {
  pmem::PmemDevice dev(128 * kMiB);
  pmem::FaultInjector injector(pmem::FaultPlan{.seed = 3});
  dev.AttachFaultInjector(&injector);
  auto fs = fsreg::Create(GetParam(), &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());

  // A full block of a distinctive pattern, locatable in the raw image.
  std::vector<uint8_t> pattern(common::kBlockSize);
  for (size_t i = 0; i < pattern.size(); i++) {
    pattern[i] = static_cast<uint8_t>(0xd0 + (i % 7));
  }
  auto fd = fs->Open(ctx, "/poisoned", vfs::OpenFlags::Create());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs->Pwrite(ctx, *fd, pattern.data(), pattern.size(), 0).ok());
  ASSERT_TRUE(fs->Fsync(ctx, *fd).ok());

  // Find where the data landed and poison one media block inside it.
  const uint8_t* raw = dev.raw();
  const uint8_t* hit = nullptr;
  for (uint64_t block = 0; block + common::kBlockSize <= dev.size();
       block += common::kBlockSize) {
    if (std::memcmp(raw + block, pattern.data(), common::kBlockSize) == 0) {
      hit = raw + block;
      break;
    }
  }
  ASSERT_NE(hit, nullptr) << "pattern block not found in the device image";
  const uint64_t data_off = static_cast<uint64_t>(hit - raw);
  injector.PoisonRange(data_off + 512, 256);

  std::vector<uint8_t> out(common::kBlockSize, 0x99);
  auto n = fs->Pread(ctx, *fd, out.data(), out.size(), 0);
  ASSERT_FALSE(n.ok()) << GetParam() << " returned data from a poisoned block";
  EXPECT_EQ(n.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(n.status().errno_value(), EIO);

  // After clearing the poison the data is intact again.
  injector.ClearPoisonRange(data_off + 512, 256);
  auto n2 = fs->Pread(ctx, *fd, out.data(), out.size(), 0);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(std::memcmp(out.data(), pattern.data(), out.size()), 0);
}

TEST_P(PoisonedReadFsTest, PartialReadReportsBytesDeliveredBeforeEio) {
  pmem::PmemDevice dev(128 * kMiB);
  pmem::FaultInjector injector(pmem::FaultPlan{.seed = 5});
  dev.AttachFaultInjector(&injector);
  auto fs = fsreg::Create(GetParam(), &dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());

  // Sparse layout: block 0 holds pattern A, block 1 is a hole, block 2 holds
  // pattern B. The hole splits the extent runs, so a poisoned block 2 must
  // surface as a short read of exactly the two preceding blocks — Pread
  // transfers whole extent runs, and the hole pins the run boundary at the
  // same place on every filesystem regardless of its allocation policy.
  std::vector<uint8_t> pattern_a(common::kBlockSize);
  std::vector<uint8_t> pattern_b(common::kBlockSize);
  for (size_t i = 0; i < common::kBlockSize; i++) {
    pattern_a[i] = static_cast<uint8_t>(0xa0 + (i % 11));
    pattern_b[i] = static_cast<uint8_t>(0xb0 + (i % 13));
  }
  auto fd = fs->Open(ctx, "/sparse", vfs::OpenFlags::Create());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs->Pwrite(ctx, *fd, pattern_a.data(), pattern_a.size(), 0).ok());
  ASSERT_TRUE(fs->Pwrite(ctx, *fd, pattern_b.data(), pattern_b.size(),
                         2 * common::kBlockSize)
                  .ok());
  ASSERT_TRUE(fs->Fsync(ctx, *fd).ok());

  // Locate pattern B in the raw image and poison part of its media block.
  const uint8_t* raw = dev.raw();
  const uint8_t* hit = nullptr;
  for (uint64_t block = 0; block + common::kBlockSize <= dev.size();
       block += common::kBlockSize) {
    if (std::memcmp(raw + block, pattern_b.data(), common::kBlockSize) == 0) {
      hit = raw + block;
      break;
    }
  }
  ASSERT_NE(hit, nullptr) << "pattern block not found in the device image";
  const uint64_t poison_off = static_cast<uint64_t>(hit - raw);
  injector.PoisonRange(poison_off + 128, 256);

  std::vector<uint8_t> out(3 * common::kBlockSize, 0x99);
  auto n = fs->Pread(ctx, *fd, out.data(), out.size(), 0);
  ASSERT_FALSE(n.ok()) << GetParam() << " returned data from a poisoned block";
  EXPECT_EQ(n.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(n.status().errno_value(), EIO);
  EXPECT_TRUE(n.partial());
  ASSERT_EQ(n.bytes(), 2 * common::kBlockSize)
      << GetParam() << " must deliver the intact prefix before the error";
  // The delivered prefix is valid: pattern A, then the hole as zeros.
  EXPECT_EQ(std::memcmp(out.data(), pattern_a.data(), common::kBlockSize), 0);
  for (uint64_t i = 0; i < common::kBlockSize; i++) {
    ASSERT_EQ(out[common::kBlockSize + i], 0u) << "hole byte " << i;
  }

  // Clearing the poison restores the full read, including pattern B.
  injector.ClearPoisonRange(poison_off + 128, 256);
  auto n2 = fs->Pread(ctx, *fd, out.data(), out.size(), 0);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n2.bytes(), 3 * common::kBlockSize);
  EXPECT_FALSE(n2.partial());
  EXPECT_EQ(std::memcmp(out.data() + 2 * common::kBlockSize, pattern_b.data(),
                        common::kBlockSize),
            0);
}

INSTANTIATE_TEST_SUITE_P(Filesystems, PoisonedReadFsTest,
                         ::testing::Values("winefs", "ext4-dax", "xfs-dax", "pmfs",
                                           "nova", "splitfs"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Latency spikes --------------------------------------------------------

TEST(LatencySpikeTest, SpikesAdvanceClockAndCount) {
  pmem::PmemDevice dev(1 * kMiB);
  pmem::FaultInjector injector(
      pmem::FaultPlan{.seed = 9, .latency_spike_prob = 1.0, .latency_spike_ns = 700});
  dev.AttachFaultInjector(&injector);
  ExecContext ctx;

  std::vector<uint8_t> buf(64, 0x31);
  const uint64_t before_ns = ctx.clock.NowNs();
  dev.PersistStore(ctx, 0, buf.data(), buf.size());
  (void)dev.Load(ctx, 0, buf.data(), buf.size());
  const uint64_t elapsed = ctx.clock.NowNs() - before_ns;

  EXPECT_GE(injector.spike_count(), 2u);  // at least the store and the load
  EXPECT_GE(elapsed, injector.spike_count() * 700);
  EXPECT_EQ(ctx.counters.pm_latency_spikes, injector.spike_count());
}

TEST(LatencySpikeTest, NoSpikesWithZeroProbability) {
  pmem::PmemDevice plain(1 * kMiB);
  pmem::PmemDevice faulted(1 * kMiB);
  pmem::FaultInjector injector(pmem::FaultPlan{.seed = 9});  // prob 0
  faulted.AttachFaultInjector(&injector);
  ExecContext a;
  ExecContext b;
  std::vector<uint8_t> buf(4096, 0x44);
  plain.PersistStore(a, 0, buf.data(), buf.size());
  faulted.PersistStore(b, 0, buf.data(), buf.size());
  // An attached-but-quiet injector must not change any timing.
  EXPECT_EQ(a.clock.NowNs(), b.clock.NowNs());
  EXPECT_EQ(injector.spike_count(), 0u);
  EXPECT_EQ(b.counters.pm_latency_spikes, 0u);
}

TEST(LatencySpikeTest, SpikeStreamIsDeterministicPerSeed) {
  pmem::FaultInjector a(
      pmem::FaultPlan{.seed = 77, .latency_spike_prob = 0.5, .latency_spike_ns = 300});
  pmem::FaultInjector b(
      pmem::FaultPlan{.seed = 77, .latency_spike_prob = 0.5, .latency_spike_ns = 300});
  for (int i = 0; i < 1000; i++) {
    ASSERT_EQ(a.AccessDelayNs(), b.AccessDelayNs()) << "call " << i;
  }
  EXPECT_EQ(a.spike_count(), b.spike_count());
  EXPECT_GT(a.spike_count(), 0u);
  EXPECT_LT(a.spike_count(), 1000u);
}

}  // namespace
