// Coverage-guided crash-and-corruption campaign (ROADMAP item 5).
//
// The long-running tier: these tests carry the `campaign` CTest label and run
// nightly in CI (tier-1 verification is `ctest -L quick`). They prove the
// pruning invariant (pruned == exhaustive on distinct recovered states), run
// the aged-image campaign over all six stock filesystems, show the injected
// delayed-metadata vulnerability is caught deterministically, and sanity-check
// the online scrub daemon's mean-time-to-detect reporting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>

#include "src/common/exec_context.h"
#include "src/crashmk/campaign.h"
#include "src/crashmk/explorer.h"
#include "src/fs/fscore/scrub.h"
#include "src/fs/registry.h"
#include "src/obs/gauges.h"
#include "src/pmem/fault_injector.h"
#include "src/wload/sim_runner.h"

namespace {

using crashmk::CampaignConfig;
using crashmk::CampaignResult;
using crashmk::RunCampaign;

CampaignConfig BaseConfig(const std::string& fs) {
  CampaignConfig config;
  config.fs = fs;
  config.collect_state_hashes = true;
  return config;
}

// --- Tentpole invariant: pruning never changes what is explored -------------

TEST(CrashCampaignTest, PrunedMatchesExhaustiveDistinctStates) {
  CampaignConfig exhaustive = BaseConfig("winefs");
  exhaustive.prune = false;
  auto full = RunCampaign(exhaustive);
  ASSERT_TRUE(full.ok());

  CampaignConfig pruned_cfg = BaseConfig("winefs");
  pruned_cfg.prune = true;
  auto pruned = RunCampaign(pruned_cfg);
  ASSERT_TRUE(pruned.ok());

  // Same enumeration, same image-equivalence classes.
  EXPECT_EQ(full->totals.crash_states, pruned->totals.crash_states);
  EXPECT_EQ(full->totals.distinct_images, pruned->totals.distinct_images);
  // Exhaustive replays everything; pruned replays one member per class.
  EXPECT_EQ(full->totals.oracle_replays, full->totals.crash_states);
  EXPECT_EQ(pruned->totals.oracle_replays, pruned->totals.distinct_images);
  EXPECT_LT(pruned->totals.oracle_replays, full->totals.oracle_replays);
  // The heart of the invariant: identical distinct recovered-state sets.
  EXPECT_EQ(full->totals.recovered_state_hashes, pruned->totals.recovered_state_hashes);
  // And of course neither run finds a failure on stock WineFS.
  EXPECT_EQ(full->totals.oracle_failures, 0u);
  EXPECT_EQ(pruned->totals.oracle_failures, 0u);
}

// Acceptance bar: the pruned campaign explores >= 10x crash states per unit
// of oracle-replay work (sec52_recovery's exhaustive pass is 1x by
// construction). Torn-store composition is where duplicate images explode —
// most lane subsets of a partially-persisted line coincide with states the
// subset sweep already judged.
TEST(CrashCampaignTest, PruningRatioAtLeastTenX) {
  CampaignConfig config = BaseConfig("winefs");
  config.prune = true;
  config.torn_writes = true;
  auto result = RunCampaign(config);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->ok()) << result->totals.first_failure;
  EXPECT_GT(result->totals.crash_states, 0u);
  EXPECT_GE(result->PruningRatio(), 10.0)
      << "crash_states=" << result->totals.crash_states
      << " oracle_replays=" << result->totals.oracle_replays;
}

// --- Aged-image campaigns over the whole lineup -----------------------------

class AgedCampaignTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AgedCampaignTest, AgedCampaignFindsNoFailures) {
  CampaignConfig config = BaseConfig(GetParam());
  config.prune = true;
  config.aged = true;
  config.utilization = 0.15;
  config.churn = 0.25;
  auto result = RunCampaign(config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << result->totals.first_failure;
  EXPECT_EQ(result->totals.oracle_failures, 0u);
  EXPECT_EQ(result->totals.mount_failures, 0u);
  EXPECT_GT(result->totals.ops_executed, 0u);
}

INSTANTIATE_TEST_SUITE_P(SixStockFilesystems, AgedCampaignTest,
                         ::testing::Values("winefs", "ext4-dax", "xfs-dax", "pmfs",
                                           "nova", "splitfs"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Corruption campaign: poisoned journal is always detected ---------------

TEST(CrashCampaignTest, PoisonedJournalRefusedNeverSilent) {
  CampaignConfig config = BaseConfig("winefs");
  config.prune = true;
  config.poison_journal = true;
  config.poison_blocks = 2;
  auto result = RunCampaign(config);
  ASSERT_TRUE(result.ok());
  // Every crash image is dirty (the crash happened while mounted), so the
  // refuse-when-dirty policy must turn every poisoned mount into an explicit
  // EIO refusal — detection, not silent absorption, and never a failure.
  EXPECT_TRUE(result->ok()) << result->totals.first_failure;
  EXPECT_GT(result->totals.refused_mounts, 0u);
  EXPECT_EQ(result->totals.oracle_failures, 0u);
}

// --- The injected vulnerability is caught deterministically ------------------

TEST(CrashCampaignTest, DelayedMetadataWindowCaught) {
  // Stock PMFS passes the identical campaign...
  CampaignConfig stock = BaseConfig("pmfs");
  stock.prune = true;
  auto clean = RunCampaign(stock);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->ok()) << clean->totals.first_failure;

  // ...and the delayed-metadata victim fails it, from the seed alone (no
  // randomness anywhere in the pipeline: same workloads, same epochs, same
  // pseudo-epoch subsets).
  CampaignConfig delayed = BaseConfig("pmfs-delayed");
  delayed.prune = true;
  // Nightly CI sets this to collect the failing crash-state images as
  // build artifacts (verified and replayed with snapctl).
  if (const char* dir = std::getenv("WINEFS_CAMPAIGN_ARCHIVE_DIR")) {
    std::filesystem::create_directories(dir);
    delayed.archive_dir = dir;
  }
  auto caught = RunCampaign(delayed);
  ASSERT_TRUE(caught.ok());
  EXPECT_FALSE(caught->ok());
  EXPECT_GT(caught->totals.oracle_failures, 0u);
  EXPECT_FALSE(caught->totals.first_failure.empty());

  // Determinism: a second run reproduces the exact same verdict counts.
  auto again = RunCampaign(delayed);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(caught->totals.crash_states, again->totals.crash_states);
  EXPECT_EQ(caught->totals.oracle_failures, again->totals.oracle_failures);
  EXPECT_EQ(caught->totals.recovered_state_hashes, again->totals.recovered_state_hashes);
}

// --- Online scrub daemon: MTTD sanity ----------------------------------------

TEST(CrashCampaignTest, ScrubDaemonReportsMeanTimeToDetect) {
  pmem::PmemDevice device(16ull * 1024 * 1024);
  // Campaign geometry: ~0.8 MiB of metadata, so the scrubber's 8 KiB windows
  // complete full passes within a short run.
  auto fs = crashmk::MakeCampaignFactory(BaseConfig("winefs"))(&device);
  common::ExecContext setup;
  ASSERT_TRUE(fs->Mkfs(setup).ok());
  auto* generic = dynamic_cast<fscore::GenericFs*>(fs.get());
  ASSERT_NE(generic, nullptr);

  // Poison one media block at the tail of the inode table — metadata the
  // foreground never touches, so only the scrubber can find it.
  pmem::FaultInjector injector(pmem::FaultPlan{.seed = 99});
  device.AttachFaultInjector(&injector);
  const uint64_t poison_off =
      generic->data_start_block() * common::kBlockSize - pmem::kMediaBlockBytes;
  injector.PoisonRange(poison_off, pmem::kMediaBlockBytes);

  fscore::ScrubDaemon::Config scfg;
  scfg.window_bytes = 8 * 1024;
  scfg.step_gap_ns = 20'000;
  fscore::ScrubDaemon scrub(generic, scfg);
  scrub.NoteInjected(poison_off, pmem::kMediaBlockBytes, /*inject_ns=*/0);

  obs::TimeSeriesSampler sampler(100'000);
  sampler.AddProvider(&scrub);

  // Thread 0: foreground metadata traffic. Thread 1: the scrub daemon.
  wload::SimRunner runner(/*num_threads=*/2, /*num_cpus=*/2);
  runner.SetObservers(nullptr, nullptr, &sampler);
  auto result = runner.Run(400, [&](uint32_t tid, uint64_t i, common::ExecContext& ctx) {
    if (tid == 1) {
      return scrub.Step(ctx);
    }
    const std::string path = "/f" + std::to_string(i % 32);
    auto fd = fs->Open(ctx, path, vfs::OpenFlags::Create());
    if (!fd.ok()) {
      return false;
    }
    uint8_t payload[256] = {0x5a};
    (void)fs->Pwrite(ctx, *fd, payload, sizeof(payload), 0);
    (void)fs->Close(ctx, *fd);
    return true;
  });
  EXPECT_GT(result.total_ops, 0u);

  // The scrubber swept the whole metadata region at least once and found the
  // injected corruption with a positive, finite detection latency.
  EXPECT_GE(scrub.passes(), 1u);
  EXPECT_EQ(scrub.media_detections(), 1u);
  EXPECT_GT(scrub.MeanTimeToDetectNs(), 0.0);
  EXPECT_EQ(scrub.structural_errors(), 0u);

  // MTTD flows through the gauges pipeline.
  common::ExecContext probe;
  probe.clock.SetNs(result.wall_ns + 1);
  probe.AttachSampler(&sampler);
  sampler.SampleNow(probe);
  const auto* points = sampler.series().Points("scrub_mttd_ns");
  ASSERT_NE(points, nullptr);
  EXPECT_GT(points->back().value, 0.0);
}

}  // namespace
