// Batched-vs-scalar differential: a seeded ~100k-op mixed trace is replayed
// through FileSystem::ExecuteBatch (native fast paths where the filesystem
// has them) and through the reference scalar loop on a twin instance, on all
// six filesystems. After every batch the two instances must agree on every
// per-op status and value, on the simulated clock, and on every registered
// PerfCounter; at the end the whole namespace (recursive listing + stat of
// every node) and all pread payloads must be bit-identical. This is the
// enforcement mechanism for the batched API's core invariant: native batching
// may only remove HOST work, never change modeled behavior.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/fs/registry.h"
#include "src/vfs/op_batch.h"
#include "src/wload/sim_runner.h"

namespace {

using common::ExecContext;
using common::kMiB;

constexpr size_t kTotalOps = 100000;
constexpr uint64_t kSeed = 7321;

// One pread destination: both instances read into `live`; the batched run's
// bytes are snapshotted into `from_batched` before the scalar run overwrites
// them.
struct PreadSlot {
  std::unique_ptr<uint8_t[]> live;
  std::unique_ptr<uint8_t[]> from_batched;
  uint64_t len = 0;
};

// Trace-generator state shared across batches. Paths/fds are updated from the
// batched instance's results AFTER asserting they equal the scalar results,
// so both instances always see the same op stream.
struct Model {
  std::vector<std::string> files;  // existing file paths
  std::vector<std::string> dirs;   // existing dir paths (excludes "/")
  std::vector<int> fds;            // raw fds open across batches (batched == scalar)
  uint32_t next_id = 0;

  std::string PickFile(common::Rng& rng) const {
    return files[rng.NextInRange(0, files.size() - 1)];
  }
  std::string PickDirPrefix(common::Rng& rng) const {
    if (dirs.empty() || rng.NextInRange(0, 2) == 0) {
      return "";
    }
    return dirs[rng.NextInRange(0, dirs.size() - 1)];
  }
};

class OpBatchEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OpBatchEquivalenceTest, MixedTraceBitIdentical) {
  const std::string fs_name = GetParam();

  pmem::PmemDevice dev_batched(256 * kMiB);
  pmem::PmemDevice dev_scalar(256 * kMiB);
  auto fs_batched = fsreg::Create(fs_name, &dev_batched);
  auto fs_scalar = fsreg::Create(fs_name, &dev_scalar);

  ExecContext ctx_batched;
  ExecContext ctx_scalar;
  ASSERT_TRUE(fs_batched->Mkfs(ctx_batched).ok());
  ASSERT_TRUE(fs_scalar->Mkfs(ctx_scalar).ok());

  common::Rng rng(kSeed);
  Model model;
  std::vector<uint8_t> payload(8 * 1024);
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<uint8_t>(0x30 + i % 67);
  }

  size_t ops_issued = 0;
  size_t batches = 0;
  while (ops_issued < kTotalOps) {
    vfs::OpBatch batch;
    std::vector<PreadSlot> preads;
    // Indices (within this batch) of opens whose fd should stay open across
    // batches, and of closes of model fds (to prune model.fds afterwards).
    std::vector<size_t> keep_open_ops;
    std::vector<int> closed_fds;

    const size_t batch_ops = rng.NextInRange(1, 64);
    for (size_t k = 0; k < batch_ops && ops_issued < kTotalOps; k++, ops_issued++) {
      const uint64_t roll = rng.NextInRange(0, 99);
      if (model.files.empty() || roll < 8) {
        // Create (+ occasionally leave open across batches).
        const std::string path =
            model.PickDirPrefix(rng) + "/file_" + std::to_string(model.next_id++);
        const size_t open_idx = batch.Open(path, vfs::OpenFlags::Create());
        if (rng.NextInRange(0, 4) == 0 && model.fds.size() < 24) {
          keep_open_ops.push_back(open_idx);
        } else {
          batch.Close(vfs::FdRef::From(open_idx));
          k++;
          ops_issued++;
        }
        model.files.push_back(path);
      } else if (roll < 12 && model.dirs.size() < 10) {
        const std::string path = "/dir_" + std::to_string(model.next_id++);
        batch.Mkdir(path);
        model.dirs.push_back(path);
      } else if (roll < 14) {
        // Error paths: stat of a missing file, malformed path, bad fd.
        const uint64_t which = rng.NextInRange(0, 2);
        if (which == 0) {
          batch.Stat("/no_such_" + std::to_string(rng.NextInRange(0, 999)));
        } else if (which == 1) {
          batch.Stat("relative/path");
        } else {
          batch.Fsync(vfs::FdRef(4000 + static_cast<int>(rng.NextInRange(0, 90))));
        }
      } else if (roll < 44) {
        batch.Stat(model.PickFile(rng));
      } else if (roll < 50) {
        batch.ReadDir(rng.NextInRange(0, 3) == 0 || model.dirs.empty()
                          ? "/"
                          : model.dirs[rng.NextInRange(0, model.dirs.size() - 1)]);
      } else if (roll < 64) {
        // Open + pread + close chain within the batch.
        const size_t open_idx = batch.Open(model.PickFile(rng), vfs::OpenFlags::ReadOnly());
        PreadSlot slot;
        slot.len = rng.NextInRange(1, 4096);
        slot.live = std::make_unique<uint8_t[]>(slot.len);
        slot.from_batched = std::make_unique<uint8_t[]>(slot.len);
        batch.Pread(vfs::FdRef::From(open_idx), slot.live.get(),
                    slot.len, rng.NextInRange(0, 32 * 1024));
        batch.Close(vfs::FdRef::From(open_idx));
        preads.push_back(std::move(slot));
        k += 2;
        ops_issued += 2;
      } else if (roll < 78) {
        // Write path: through a kept-open fd when available, else a chain.
        const uint64_t len = rng.NextInRange(1, payload.size());
        const uint64_t offset = rng.NextInRange(0, 64 * 1024);
        const bool append = rng.NextInRange(0, 2) == 0;
        const bool do_fsync = rng.NextInRange(0, 2) == 0;
        if (!model.fds.empty() && rng.NextInRange(0, 1) == 0) {
          const vfs::FdRef fd(model.fds[rng.NextInRange(0, model.fds.size() - 1)]);
          if (append) {
            batch.Append(fd, payload.data(), len);
          } else {
            batch.Pwrite(fd, payload.data(), len, offset);
          }
          if (do_fsync) {
            batch.Fsync(fd);
            k++;
            ops_issued++;
          }
        } else {
          const size_t open_idx = batch.Open(model.PickFile(rng), vfs::OpenFlags{});
          if (append) {
            batch.Append(vfs::FdRef::From(open_idx), payload.data(), len);
          } else {
            batch.Pwrite(vfs::FdRef::From(open_idx), payload.data(), len, offset);
          }
          if (do_fsync) {
            batch.Fsync(vfs::FdRef::From(open_idx));
            k++;
            ops_issued++;
          }
          batch.Close(vfs::FdRef::From(open_idx));
          k += 2;
          ops_issued += 2;
        }
      } else if (roll < 82) {
        const size_t open_idx = batch.Open(model.PickFile(rng), vfs::OpenFlags{});
        if (rng.NextInRange(0, 1) == 0) {
          batch.Ftruncate(vfs::FdRef::From(open_idx), rng.NextInRange(0, 96 * 1024));
        } else {
          batch.Fallocate(vfs::FdRef::From(open_idx), rng.NextInRange(0, 64 * 1024),
                          rng.NextInRange(1, 32 * 1024));
        }
        batch.Close(vfs::FdRef::From(open_idx));
        k += 2;
        ops_issued += 2;
      } else if (roll < 88) {
        // Rename to a fresh name (possibly into a directory).
        const size_t victim = rng.NextInRange(0, model.files.size() - 1);
        const std::string to =
            model.PickDirPrefix(rng) + "/ren_" + std::to_string(model.next_id++);
        batch.Rename(model.files[victim], to);
        model.files[victim] = to;
      } else if (roll < 94 && model.files.size() > 4) {
        const size_t victim = rng.NextInRange(0, model.files.size() - 1);
        batch.Unlink(model.files[victim]);
        model.files.erase(model.files.begin() + static_cast<long>(victim));
      } else if (roll < 97 && !model.fds.empty()) {
        const size_t victim = rng.NextInRange(0, model.fds.size() - 1);
        batch.Close(vfs::FdRef(model.fds[victim]));
        closed_fds.push_back(model.fds[victim]);
        model.fds.erase(model.fds.begin() + static_cast<long>(victim));
      } else {
        // Open-truncate: exercises the scalar-fallback open arm.
        const size_t open_idx =
            batch.Open(model.PickFile(rng), vfs::OpenFlags(vfs::OpenFlags::kTrunc));
        batch.Close(vfs::FdRef::From(open_idx));
        k++;
        ops_issued++;
      }
    }

    // Batched (native where the FS has it) vs the reference scalar loop.
    std::vector<vfs::OpResult> res_batched;
    std::vector<vfs::OpResult> res_scalar;
    fs_batched->ExecuteBatch(ctx_batched, batch, res_batched);
    for (PreadSlot& slot : preads) {
      std::memcpy(slot.from_batched.get(), slot.live.get(), slot.len);
    }
    fs_scalar->ExecuteBatchScalar(ctx_scalar, batch, res_scalar);
    batches++;

    ASSERT_EQ(res_batched.size(), res_scalar.size());
    for (size_t i = 0; i < res_batched.size(); i++) {
      ASSERT_EQ(res_batched[i].status.code(), res_scalar[i].status.code())
          << fs_name << ": batch " << batches << " op " << i << " ("
          << vfs::OpKindName(batch.ops()[i].kind) << ") status diverged";
      ASSERT_EQ(res_batched[i].value, res_scalar[i].value)
          << fs_name << ": batch " << batches << " op " << i << " ("
          << vfs::OpKindName(batch.ops()[i].kind) << ") value diverged";
      ASSERT_EQ(res_batched[i].stat.ino, res_scalar[i].stat.ino);
      ASSERT_EQ(res_batched[i].stat.size, res_scalar[i].stat.size);
      ASSERT_EQ(res_batched[i].stat.blocks, res_scalar[i].stat.blocks);
      ASSERT_EQ(res_batched[i].entries.size(), res_scalar[i].entries.size());
    }
    for (const PreadSlot& slot : preads) {
      ASSERT_EQ(0, std::memcmp(slot.from_batched.get(), slot.live.get(), slot.len))
          << fs_name << ": batch " << batches << " pread payload diverged";
    }

    // The invariant itself: identical modeled clock and counters every batch.
    ASSERT_EQ(ctx_batched.clock.NowNs(), ctx_scalar.clock.NowNs())
        << fs_name << ": sim clock diverged after batch " << batches;
    for (const common::CounterField& field : common::kCounterFields) {
      ASSERT_EQ(ctx_batched.counters.*field.member, ctx_scalar.counters.*field.member)
          << fs_name << ": counter " << field.name << " diverged after batch " << batches;
    }

    // Fold this batch's fd bookkeeping into the model.
    for (size_t open_idx : keep_open_ops) {
      if (res_batched[open_idx].ok()) {
        model.fds.push_back(static_cast<int>(res_batched[open_idx].value));
      }
    }
  }

  // Final namespace sweep on fresh contexts (the clocks above are already
  // compared; the sweep's own charges are not part of the trace).
  ExecContext sweep_batched;
  ExecContext sweep_scalar;
  std::vector<std::string> stack{"/"};
  size_t nodes_compared = 0;
  while (!stack.empty()) {
    const std::string dir = stack.back();
    stack.pop_back();
    auto list_b = fs_batched->ReadDir(sweep_batched, dir);
    auto list_s = fs_scalar->ReadDir(sweep_scalar, dir);
    ASSERT_TRUE(list_b.ok() && list_s.ok()) << fs_name << ": readdir " << dir;
    std::set<std::string> names_b;
    std::set<std::string> names_s;
    for (const auto& entry : *list_b) {
      names_b.insert(entry.name + (entry.is_dir ? "/" : ""));
    }
    for (const auto& entry : *list_s) {
      names_s.insert(entry.name + (entry.is_dir ? "/" : ""));
    }
    ASSERT_EQ(names_b, names_s) << fs_name << ": listing of " << dir;
    for (const auto& entry : *list_b) {
      const std::string path = (dir == "/" ? "/" : dir + "/") + entry.name;
      auto stat_b = fs_batched->Stat(sweep_batched, path);
      auto stat_s = fs_scalar->Stat(sweep_scalar, path);
      ASSERT_TRUE(stat_b.ok() && stat_s.ok()) << fs_name << ": stat " << path;
      ASSERT_EQ(stat_b->size, stat_s->size) << fs_name << ": size of " << path;
      ASSERT_EQ(stat_b->blocks, stat_s->blocks) << fs_name << ": blocks of " << path;
      ASSERT_EQ(stat_b->nlink, stat_s->nlink) << fs_name << ": nlink of " << path;
      nodes_compared++;
      if (entry.is_dir) {
        stack.push_back(path);
      }
    }
  }
  EXPECT_GT(nodes_compared, 0u);
}

// Multi-threaded contention differential. The single-context trace above
// cannot see SimMutex/ResourceClock WATERMARK divergence: within one thread
// the clock is monotone past every lock it ever released, so AdvanceTo(own
// watermark) is always a no-op and a native path that shrinks a modeled
// critical section (e.g. by deferring a journal store's charge out of the
// journal-lock guard) still produces identical clocks. Under contention that
// same shift changes how long OTHER threads queue. This test runs the fig10
// metadata op (open/append x4/fsync/close/unlink, per thread in its own
// directory) under the deterministic SimRunner schedule on twin instances —
// batched dispatch on one, scalar virtuals on the other — and requires the
// aggregate simulated wall time and every counter to match bit-exactly.
TEST_P(OpBatchEquivalenceTest, MultiThreadedContentionBitIdentical) {
  const std::string fs_name = GetParam();
  // fig10's one-socket shape: more CPUs than threads, so per-CPU structures
  // (WineFS journal pools) are spread exactly as the bench spreads them, and
  // the cross-thread coupling runs through the genuinely shared pieces (VFS
  // shared-resource windows, colliding lock-table slots).
  constexpr uint32_t kThreads = 8;
  constexpr uint32_t kCpus = 4;
  constexpr uint64_t kOpsPerThread = 300;

  pmem::PmemDevice dev_batched(1024 * kMiB);
  pmem::PmemDevice dev_scalar(1024 * kMiB);
  auto fs_batched = fsreg::Create(fs_name, &dev_batched, kCpus);
  auto fs_scalar = fsreg::Create(fs_name, &dev_scalar, kCpus);

  std::vector<uint8_t> payload(4096, 0x3d);
  auto run = [&](vfs::FileSystem* fs, bool batched) -> wload::RunResult {
    ExecContext setup;
    EXPECT_TRUE(fs->Mkfs(setup).ok());
    for (uint32_t t = 0; t < kThreads; t++) {
      EXPECT_TRUE(fs->Mkdir(setup, "/t" + std::to_string(t)).ok());
    }
    auto op = [&](uint32_t tid, uint64_t i, ExecContext& ctx) -> bool {
      const std::string path = "/t" + std::to_string(tid) + "/f" + std::to_string(i);
      if (batched) {
        vfs::OpBatch batch;
        const size_t open_index = batch.Open(path, vfs::OpenFlags::Create());
        for (int a = 0; a < 4; a++) {
          batch.Append(vfs::FdRef::From(open_index), payload.data(), payload.size());
        }
        batch.Fsync(vfs::FdRef::From(open_index));
        batch.Close(vfs::FdRef::From(open_index));
        batch.Unlink(path);
        std::vector<vfs::OpResult> results;
        fs->ExecuteBatch(ctx, batch, results);
        for (const vfs::OpResult& r : results) {
          if (!r.ok()) {
            return false;
          }
        }
        return true;
      }
      auto fd = fs->Open(ctx, path, vfs::OpenFlags::Create());
      if (!fd.ok()) {
        return false;
      }
      for (int a = 0; a < 4; a++) {
        if (!fs->Append(ctx, *fd, payload.data(), payload.size()).ok()) {
          return false;
        }
      }
      if (!fs->Fsync(ctx, *fd).ok()) {
        return false;
      }
      if (!fs->Close(ctx, *fd).ok()) {
        return false;
      }
      return fs->Unlink(ctx, path).ok();
    };
    wload::SimRunner runner(kThreads, kCpus, setup.clock.NowNs());
    return runner.Run(kOpsPerThread, op);
  };

  const wload::RunResult batched = run(fs_batched.get(), /*batched=*/true);
  const wload::RunResult scalar = run(fs_scalar.get(), /*batched=*/false);
  ASSERT_EQ(batched.total_ops, kThreads * kOpsPerThread) << fs_name;
  ASSERT_EQ(batched.total_ops, scalar.total_ops) << fs_name;
  ASSERT_EQ(batched.wall_ns, scalar.wall_ns)
      << fs_name << ": simulated wall time diverged under contention";
  for (const common::CounterField& field : common::kCounterFields) {
    ASSERT_EQ(batched.counters.*field.member, scalar.counters.*field.member)
        << fs_name << ": counter " << field.name << " diverged under contention";
  }
}

INSTANTIATE_TEST_SUITE_P(Filesystems, OpBatchEquivalenceTest,
                         ::testing::Values("winefs", "ext4-dax", "xfs-dax", "pmfs",
                                           "nova", "splitfs"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace

