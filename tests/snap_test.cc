// src/snap tests: on-disk image round-trip (bytes, geometry, cost model,
// sparseness), COW fork isolation and laziness, typed rejection of damaged
// images, corpus hit/miss/fallback behavior, aging determinism (corpus reuse
// is unsound without it), remount-from-image across the whole filesystem
// lineup, and crashmk snapshot archiving.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/aging/geriatrix.h"
#include "src/common/units.h"
#include "src/crashmk/campaign.h"
#include "src/crashmk/explorer.h"
#include "src/fs/fscore/fsck.h"
#include "src/fs/registry.h"
#include "src/fs/winefs/winefs.h"
#include "src/pmem/device.h"
#include "src/snap/corpus.h"
#include "src/snap/image.h"

namespace {

using common::ErrorCode;
using common::ExecContext;
using common::kMiB;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Writes recognizable non-zero data at scattered offsets, including ones that
// straddle chunk boundaries and the device tail.
void ScribbleDevice(pmem::PmemDevice& dev) {
  ExecContext ctx;
  std::vector<uint8_t> blob(3 * 4096);
  for (size_t i = 0; i < blob.size(); i++) {
    blob[i] = static_cast<uint8_t>(i * 7 + 13);
  }
  const uint64_t offsets[] = {0,
                              pmem::kSnapChunkBytes - 4096,
                              5 * pmem::kSnapChunkBytes + 512,
                              dev.size() - blob.size()};
  for (uint64_t off : offsets) {
    dev.Store(ctx, off, blob.data(), blob.size());
  }
}

TEST(SnapImage, RoundTripIsByteIdentical) {
  pmem::CostModel model;
  model.pm_store_ns = 77;  // non-default, must survive the trip
  pmem::PmemDevice dev(16 * kMiB, model, /*numa_nodes=*/2);
  ScribbleDevice(dev);
  const pmem::DeviceSnapshot snap = dev.Snapshot();

  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(snap::SaveImage(path, snap, snap::ImageKind::kFilesystem, "test;rt").ok());
  auto loaded = snap::LoadImage(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded->snapshot.bytes, *snap.bytes);
  EXPECT_EQ(loaded->snapshot.numa_nodes, 2u);
  EXPECT_EQ(loaded->snapshot.model.pm_store_ns, 77u);
  EXPECT_EQ(loaded->info.kind, snap::ImageKind::kFilesystem);
  EXPECT_EQ(loaded->info.provenance, "test;rt");
  EXPECT_EQ(snap::ContentHash(loaded->snapshot), snap::ContentHash(snap));

  // NUMA interleave layout must be recreatable from the stored geometry.
  pmem::PmemDevice fork(loaded->snapshot);
  EXPECT_EQ(fork.numa_nodes(), dev.numa_nodes());
  EXPECT_EQ(fork.NumaNodeOf(dev.size() - 1), dev.NumaNodeOf(dev.size() - 1));
}

TEST(SnapImage, SparseImageSkipsZeroChunks) {
  pmem::PmemDevice dev(64 * kMiB);
  ScribbleDevice(dev);  // touches 4 chunks of 256
  const std::string path = TempPath("sparse.snap");
  ASSERT_TRUE(
      snap::SaveImage(path, dev.Snapshot(), snap::ImageKind::kFilesystem, "test;sparse").ok());
  const uint64_t file_size = std::filesystem::file_size(path);
  EXPECT_LT(file_size, 8 * pmem::kSnapChunkBytes);  // far below the 64 MiB device
  auto info = snap::ReadImageInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_LE(info->stored_chunks, 8u);
  EXPECT_GE(info->stored_chunks, 4u);
  auto loaded = snap::LoadImage(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded->snapshot.bytes, *dev.Snapshot().bytes);
}

TEST(SnapCow, ForksAreIsolatedFromBaseAndEachOther) {
  pmem::PmemDevice dev(8 * kMiB);
  ScribbleDevice(dev);
  const pmem::DeviceSnapshot base = dev.Snapshot();

  pmem::PmemDevice fork_a(base);
  pmem::PmemDevice fork_b(base);
  ExecContext ctx;
  const uint8_t a = 0xaa;
  const uint8_t b = 0xbb;
  fork_a.Store(ctx, 100, &a, 1);
  fork_b.Store(ctx, 100, &b, 1);

  EXPECT_EQ((*base.bytes)[100], (*dev.Snapshot().bytes)[100]);  // base untouched
  uint8_t got_a = 0;
  uint8_t got_b = 0;
  ASSERT_TRUE(fork_a.Load(ctx, 100, &got_a, 1).ok());
  ASSERT_TRUE(fork_b.Load(ctx, 100, &got_b, 1).ok());
  EXPECT_EQ(got_a, 0xaa);
  EXPECT_EQ(got_b, 0xbb);
  // Away from the written byte both forks still read the base image.
  uint8_t far_a = 0;
  ASSERT_TRUE(fork_a.Load(ctx, 5 * pmem::kSnapChunkBytes + 512, &far_a, 1).ok());
  EXPECT_EQ(far_a, (*base.bytes)[5 * pmem::kSnapChunkBytes + 512]);
}

TEST(SnapCow, ForkMaterializesLazily) {
  pmem::PmemDevice dev(32 * kMiB);
  ScribbleDevice(dev);
  pmem::PmemDevice fork(dev.Snapshot());
  EXPECT_TRUE(fork.is_cow_fork());
  EXPECT_EQ(fork.cow_chunks_copied(), 0u);
  ExecContext ctx;
  uint8_t byte = 0;
  ASSERT_TRUE(fork.Load(ctx, 0, &byte, 1).ok());
  EXPECT_EQ(fork.cow_chunks_copied(), 1u);  // one chunk of 128
  // Whole-device access (raw) materializes everything.
  (void)fork.raw();
  EXPECT_FALSE(fork.is_cow_fork());
  EXPECT_EQ(fork.cow_chunks_copied(), 32 * kMiB / pmem::kSnapChunkBytes);
  EXPECT_EQ(std::vector<uint8_t>(fork.raw(), fork.raw() + fork.size()), *dev.Snapshot().bytes);
}

class SnapDamageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pmem::PmemDevice dev(4 * kMiB);
    ScribbleDevice(dev);
    path_ = TempPath("damage.snap");
    ASSERT_TRUE(
        snap::SaveImage(path_, dev.Snapshot(), snap::ImageKind::kFilesystem, "test;dmg").ok());
  }

  void PatchByte(uint64_t offset, uint8_t value) {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(reinterpret_cast<const char*>(&value), 1);
  }

  std::string path_;
};

TEST_F(SnapDamageTest, BadMagicIsCorrupt) {
  PatchByte(0, 0x00);
  auto loaded = snap::LoadImage(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorrupt);
}

TEST_F(SnapDamageTest, StaleFormatVersionIsNotSupported) {
  PatchByte(8, 99);  // format_version lives right after the 8-byte magic
  auto loaded = snap::LoadImage(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kNotSupported);
}

TEST_F(SnapDamageTest, FlippedChunkByteIsCorrupt) {
  const uint64_t size = std::filesystem::file_size(path_);
  PatchByte(size - 1, 0xfe);  // last payload byte of the last stored chunk
  auto loaded = snap::LoadImage(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorrupt);
}

TEST_F(SnapDamageTest, TruncatedFileIsIoError) {
  const uint64_t size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 4000);
  auto loaded = snap::LoadImage(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kIoError);
}

TEST_F(SnapDamageTest, FlippedHeaderByteIsCorrupt) {
  PatchByte(20, 0x7f);  // inside device_bytes: header checksum must catch it
  auto loaded = snap::LoadImage(path_);
  ASSERT_FALSE(loaded.ok());
  // Either the checksum flags it or the parsed geometry is nonsensical;
  // both are kCorrupt, never success.
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorrupt);
}

snap::ImageKey TestKey(const std::string& fs_name, uint64_t device_bytes) {
  snap::ImageKey key;
  key.fs = fs_name;
  key.device_bytes = device_bytes;
  key.num_cpus = 4;
  key.numa_nodes = 1;
  key.profile = "unit";
  key.seed = 3;
  key.utilization = 0.25;
  key.churn = 1.0;
  key.detail = "snap_test";
  return key;
}

// A real (small) filesystem image the corpus can fsck-validate.
pmem::DeviceSnapshot MakeFsSnapshot(const std::string& fs_name, uint64_t device_bytes) {
  pmem::PmemDevice dev(device_bytes);
  auto fs = fsreg::Create(fs_name, &dev, 4);
  ExecContext ctx;
  EXPECT_TRUE(fs->Mkfs(ctx).ok());
  auto fd = fs->Open(ctx, "/seed", vfs::OpenFlags::Create());
  std::vector<uint8_t> data(20000, 0x42);
  EXPECT_TRUE(fs->Pwrite(ctx, *fd, data.data(), data.size(), 0).ok());
  EXPECT_TRUE(fs->Close(ctx, *fd).ok());
  EXPECT_TRUE(fs->Unmount(ctx).ok());
  return dev.Snapshot();
}

TEST(SnapCorpus, MissBuildsThenHitLoads) {
  const std::string dir = TempPath("corpus_hit");
  std::filesystem::remove_all(dir);
  snap::Corpus corpus(dir);
  ASSERT_TRUE(corpus.enabled());
  const snap::ImageKey key = TestKey("winefs", 64 * kMiB);

  int builds = 0;
  auto build = [&]() -> common::Result<pmem::DeviceSnapshot> {
    builds++;
    return MakeFsSnapshot("winefs", 64 * kMiB);
  };
  auto first = corpus.LoadOrBuild(key, build);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(corpus.stats().misses, 1u);
  EXPECT_EQ(corpus.stats().hits, 0u);

  auto second = corpus.LoadOrBuild(key, build);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(builds, 1);  // served from disk
  EXPECT_EQ(corpus.stats().hits, 1u);
  EXPECT_EQ(*second->bytes, *first->bytes);
}

TEST(SnapCorpus, CorruptStoredImageFallsBackToRebuild) {
  const std::string dir = TempPath("corpus_corrupt");
  std::filesystem::remove_all(dir);
  snap::Corpus corpus(dir);
  const snap::ImageKey key = TestKey("winefs", 64 * kMiB);
  auto build = [&] { return MakeFsSnapshot("winefs", 64 * kMiB); };
  ASSERT_TRUE(corpus.LoadOrBuild(key, build).ok());

  // Flip a payload byte in the stored image: the next load must reject it
  // (typed, no crash) and transparently rebuild.
  const std::string path = corpus.PathFor(key);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(std::filesystem::file_size(path) - 1));
    const char garbage = 0x5c;
    f.write(&garbage, 1);
  }
  auto direct = corpus.TryLoad(key);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(corpus.stats().rejects, 1u);

  auto rebuilt = corpus.LoadOrBuild(key, build);
  ASSERT_TRUE(rebuilt.ok());
  // The rebuild overwrote the damaged file; a further load hits cleanly.
  auto again = corpus.TryLoad(key);
  ASSERT_TRUE(again.ok());
}

TEST(SnapCorpus, NonFilesystemGarbageFailsFsckOnLoad) {
  const std::string dir = TempPath("corpus_garbage");
  std::filesystem::remove_all(dir);
  snap::Corpus corpus(dir);
  const snap::ImageKey key = TestKey("winefs", 8 * kMiB);
  // A checksum-valid image whose payload is not a filesystem: header checks
  // pass, fsck must reject it before any bench mounts it.
  pmem::PmemDevice garbage(8 * kMiB);
  ScribbleDevice(garbage);
  ASSERT_TRUE(snap::SaveImage(corpus.PathFor(key), garbage.Snapshot(),
                              snap::ImageKind::kFilesystem, key.Provenance())
                  .ok());
  auto loaded = corpus.TryLoad(key);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorrupt);
  EXPECT_EQ(corpus.stats().rejects, 1u);
}

TEST(SnapCorpus, SweepChainBuildsOnceThenHits) {
  const std::string dir = TempPath("corpus_sweep");
  std::filesystem::remove_all(dir);
  snap::Corpus corpus(dir);
  std::vector<snap::ImageKey> keys;
  for (double util : {0.10, 0.20}) {
    snap::ImageKey key = TestKey("winefs", 64 * kMiB);
    key.utilization = util;
    keys.push_back(key);
  }
  int builds = 0;
  auto build = [&](const snap::Corpus::SaveStepFn& save_step) {
    builds++;
    for (size_t i = 0; i < keys.size(); i++) {
      save_step(i, MakeFsSnapshot("winefs", 64 * kMiB));
    }
    return common::OkStatus();
  };
  auto cold = corpus.LoadOrBuildSweep(keys, build);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(builds, 1);
  ASSERT_EQ(cold->size(), 2u);
  EXPECT_TRUE((*cold)[0].valid());

  auto warm = corpus.LoadOrBuildSweep(keys, build);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(builds, 1);  // every step served from disk
  EXPECT_EQ(corpus.stats().hits, 2u);
  EXPECT_EQ(*(*warm)[1].bytes, *(*cold)[1].bytes);
}

TEST(SnapCorpus, DisabledCorpusAlwaysBuilds) {
  snap::Corpus corpus{std::string()};
  EXPECT_FALSE(corpus.enabled());
  int builds = 0;
  auto build = [&]() -> common::Result<pmem::DeviceSnapshot> {
    builds++;
    return MakeFsSnapshot("winefs", 64 * kMiB);
  };
  ASSERT_TRUE(corpus.LoadOrBuild(TestKey("winefs", 64 * kMiB), build).ok());
  ASSERT_TRUE(corpus.LoadOrBuild(TestKey("winefs", 64 * kMiB), build).ok());
  EXPECT_EQ(builds, 2);
}

// Corpus reuse is unsound unless aging is a pure function of
// (profile, seed, config): same inputs must yield byte-identical images.
TEST(SnapDeterminism, AgingIsByteIdentical) {
  auto age_once = [](const std::string& fs_name) {
    pmem::PmemDevice dev(64 * kMiB);
    auto fs = fsreg::Create(fs_name, &dev, 4);
    ExecContext ctx;
    EXPECT_TRUE(fs->Mkfs(ctx).ok());
    aging::AgingConfig config;
    config.target_utilization = 0.40;
    config.write_multiplier = 1.0;
    config.seed = 11;
    aging::Geriatrix geriatrix(fs.get(), aging::Profile::Agrawal(11), config);
    EXPECT_TRUE(geriatrix.Run(ctx).ok());
    EXPECT_TRUE(fs->Unmount(ctx).ok());
    return snap::ContentHash(dev.Snapshot());
  };
  for (const char* fs_name : {"winefs", "ext4-dax", "nova"}) {
    SCOPED_TRACE(fs_name);
    const uint64_t h1 = age_once(fs_name);
    const uint64_t h2 = age_once(fs_name);
    EXPECT_EQ(h1, h2);
    EXPECT_NE(h1, 0u);
  }
}

// All six filesystems must remount cleanly from a loaded image and serve the
// data written before the snapshot.
class SnapRemountTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SnapRemountTest, RemountsFromLoadedImage) {
  const std::string fs_name = GetParam();
  const uint64_t device_bytes = 64 * kMiB;
  pmem::PmemDevice dev(device_bytes);
  auto fs = fsreg::Create(fs_name, &dev, 4);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  ASSERT_TRUE(fs->Mkdir(ctx, "/d").ok());
  std::vector<uint8_t> data(48 * 1024);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<uint8_t>(i % 251);
  }
  auto fd = fs->Open(ctx, "/d/file", vfs::OpenFlags::Create());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs->Pwrite(ctx, *fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(fs->Close(ctx, *fd).ok());
  ASSERT_TRUE(fs->Unmount(ctx).ok());

  const std::string path = TempPath("remount_" + fs_name + ".snap");
  ASSERT_TRUE(
      snap::SaveImage(path, dev.Snapshot(), snap::ImageKind::kFilesystem, "test;remount").ok());
  auto loaded = snap::LoadImage(path);
  ASSERT_TRUE(loaded.ok());

  pmem::PmemDevice fork(loaded->snapshot);
  auto fresh = fsreg::Create(fs_name, &fork, 4);
  ExecContext rctx;
  ASSERT_TRUE(fresh->Mount(rctx).ok());
  auto rfd = fresh->Open(rctx, "/d/file", vfs::OpenFlags::ReadOnly());
  ASSERT_TRUE(rfd.ok());
  std::vector<uint8_t> back(data.size());
  auto n = fresh->Pread(rctx, *rfd, back.data(), back.size(), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, back.size());
  EXPECT_EQ(back, data);
}

INSTANTIATE_TEST_SUITE_P(Filesystems, SnapRemountTest,
                         ::testing::Values("winefs", "ext4-dax", "xfs-dax", "pmfs", "nova",
                                           "splitfs"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// crashmk can archive explored crash states as replayable snapshots: the
// image on disk is the pre-recovery torn state, kind=kCrashState (fsck not
// required), and replaying it (fork + mount) reproduces a recoverable state.
TEST(SnapCrashArchive, ArchivedStatesReplay) {
  const std::string dir = TempPath("crash_archive");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  crashmk::Explorer::Config config;
  config.archive_dir = dir;
  config.archive_all = true;
  config.max_archives = 4;
  // Small-geometry WineFS that fits the explorer's 16 MiB device.
  auto factory = [](pmem::PmemDevice* device) -> std::unique_ptr<vfs::FileSystem> {
    winefs::WineFsOptions options;
    options.base.max_inodes = 1024;
    options.base.journal_blocks = 256;
    options.base.num_cpus = 2;
    return std::make_unique<winefs::WineFs>(device, options);
  };
  crashmk::Explorer explorer(factory, config);
  crashmk::Workload workload{{crashmk::CrashOp::Kind::kCreate, "/newfile", "", 0, 0}};
  const auto result = explorer.RunWorkload(workload);
  EXPECT_TRUE(result.ok()) << result.first_failure;
  ASSERT_GT(result.archived, 0u);
  ASSERT_EQ(result.archive_paths.size(), result.archived);

  for (const std::string& path : result.archive_paths) {
    SCOPED_TRACE(path);
    auto loaded = snap::LoadImage(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->info.kind, snap::ImageKind::kCrashState);
    EXPECT_NE(loaded->info.provenance.find("crashmk;op=create /newfile"), std::string::npos);
    // Replay: mount-time recovery must succeed on a fork of the torn image.
    pmem::PmemDevice fork(loaded->snapshot);
    auto fs = factory(&fork);
    ExecContext ctx;
    EXPECT_TRUE(fs->Mount(ctx).ok());
  }
}

// Full replay round-trip from the image file ALONE: a failing campaign
// archives its crash states with a provenance string that encodes the
// filesystem, the campaign geometry, and the recovered-state hash the
// original verdict saw. A later process (here: this test, via the same
// parsing snapctl's replay command uses) rebuilds the factory from those
// fields, COW-forks the torn image, mounts it, and must recover the exact
// same logical state.
TEST(SnapCrashArchive, ReplayFromProvenanceAloneReproducesVerdict) {
  const std::string dir = TempPath("crash_archive_replay");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  crashmk::CampaignConfig config;
  config.fs = "pmfs-delayed";  // the injected vulnerability: guaranteed failures
  config.prune = true;
  config.archive_dir = dir;
  config.max_archives = 4;
  auto campaign = crashmk::RunCampaign(config);
  ASSERT_TRUE(campaign.ok());
  ASSERT_FALSE(campaign->ok());
  ASSERT_GT(campaign->totals.archived, 0u);

  auto field = [](const std::string& provenance,
                  const std::string& key) -> std::string {
    const size_t at = provenance.find(key + "=");
    if (at == std::string::npos) {
      return "";
    }
    const size_t start = at + key.size() + 1;
    return provenance.substr(start, provenance.find(';', start) - start);
  };

  size_t replayed = 0;
  for (const std::string& path : campaign->totals.archive_paths) {
    SCOPED_TRACE(path);
    auto loaded = snap::LoadImage(path);
    ASSERT_TRUE(loaded.ok());
    ASSERT_EQ(loaded->info.kind, snap::ImageKind::kCrashState);
    const std::string& provenance = loaded->info.provenance;
    const std::string rhash_hex = field(provenance, "rhash");
    if (rhash_hex.empty()) {
      continue;  // mount-failure archives carry no recovered-state hash
    }
    const uint64_t want_hash = std::strtoull(rhash_hex.c_str(), nullptr, 16);

    // Rebuild the campaign factory from provenance fields only.
    crashmk::CampaignConfig replay;
    replay.fs = field(provenance, "fs");
    replay.device_bytes = std::strtoull(field(provenance, "dev").c_str(), nullptr, 10);
    replay.max_inodes = std::strtoull(field(provenance, "mi").c_str(), nullptr, 10);
    replay.journal_blocks = std::strtoull(field(provenance, "jb").c_str(), nullptr, 10);
    replay.num_cpus = static_cast<uint32_t>(
        std::strtoul(field(provenance, "cpu").c_str(), nullptr, 10));
    ASSERT_EQ(replay.fs, "pmfs-delayed");
    ASSERT_EQ(replay.device_bytes, loaded->snapshot.bytes->size());

    pmem::PmemDevice fork(loaded->snapshot);
    auto fs = crashmk::MakeCampaignFactory(replay)(&fork);
    ASSERT_NE(fs, nullptr);
    ExecContext ctx;
    ASSERT_TRUE(fs->Mount(ctx).ok());
    const crashmk::Oracle recovered = crashmk::Oracle::Capture(ctx, *fs);
    EXPECT_EQ(recovered.StateHash(), want_hash);
    replayed++;
  }
  EXPECT_GT(replayed, 0u);
}

}  // namespace
