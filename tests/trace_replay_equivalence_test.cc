// Trace-replay batched-vs-scalar differential: the same generated scenario
// trace is replayed on twin fresh beds of every filesystem — once through
// FileSystem::ExecuteBatch, once through the reference scalar loop — and the
// modeled outcomes must be bit-identical: simulated wall clock, every
// registered PerfCounter, and every tenant's op/error/window tallies and
// latency distribution. Combined with the window/think/fd-resolution logic
// being shared between both replay arms, this pins the TraceReplayer to the
// PR-6 batching invariant on the realistic multi-tenant op mixes the scenario
// generators emit (not just the synthetic mix op_batch_equivalence_test uses).
#include <gtest/gtest.h>

#include <string>

#include "src/common/units.h"
#include "src/trace/replayer.h"
#include "src/trace/scenarios.h"
#include "src/wload/harness.h"

namespace {

using common::kMiB;

trace::ReplayResult ReplayOn(const std::string& fs_name, const trace::Trace& tr,
                             bool use_batch, uint32_t num_threads) {
  wload::BedSpec spec;
  spec.fs_name = fs_name;
  spec.device_bytes = 256 * kMiB;
  auto bed = wload::MakeBed(spec);
  EXPECT_TRUE(bed.ok()) << fs_name;
  trace::ReplayOptions options;
  options.use_batch = use_batch;
  options.num_threads = num_threads;
  options.base_ns = bed->setup.clock.NowNs();
  trace::TraceReplayer replayer(bed->fs.get(), options);
  auto result = replayer.Replay(tr);
  EXPECT_TRUE(result.ok()) << fs_name;
  return std::move(result.value());
}

void ExpectBitIdentical(const trace::ReplayResult& batch,
                        const trace::ReplayResult& scalar) {
  EXPECT_EQ(batch.records, scalar.records);
  EXPECT_EQ(batch.windows, scalar.windows);
  EXPECT_EQ(batch.errors, scalar.errors);
  EXPECT_EQ(batch.wall_ns, scalar.wall_ns);
  for (const common::CounterField& field : common::kCounterFields) {
    EXPECT_EQ(batch.counters.*field.member, scalar.counters.*field.member) << field.name;
  }
  ASSERT_EQ(batch.tenants.size(), scalar.tenants.size());
  for (size_t t = 0; t < batch.tenants.size(); t++) {
    const trace::TenantStats& a = batch.tenants[t];
    const trace::TenantStats& b = scalar.tenants[t];
    EXPECT_EQ(a.ops, b.ops) << "tenant " << t;
    EXPECT_EQ(a.errors, b.errors) << "tenant " << t;
    EXPECT_EQ(a.windows, b.windows) << "tenant " << t;
    EXPECT_EQ(a.latency.count(), b.latency.count()) << "tenant " << t;
    for (double p : {50.0, 90.0, 99.0, 99.9, 100.0}) {
      EXPECT_EQ(a.latency.Percentile(p), b.latency.Percentile(p))
          << "tenant " << t << " p" << p;
    }
  }
}

class TraceReplayEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TraceReplayEquivalenceTest, MailChurnBitIdentical) {
  auto spec = trace::scenarios::FleetSpec("mail_churn", /*quick=*/true);
  ASSERT_TRUE(spec.ok());
  const trace::Trace tr = trace::scenarios::GenerateScenario(*spec);
  ExpectBitIdentical(ReplayOn(GetParam(), tr, /*use_batch=*/true, 4),
                     ReplayOn(GetParam(), tr, /*use_batch=*/false, 4));
}

TEST_P(TraceReplayEquivalenceTest, ContainerExtractSingleThreadBitIdentical) {
  auto spec = trace::scenarios::FleetSpec("container_extract", /*quick=*/true);
  ASSERT_TRUE(spec.ok());
  const trace::Trace tr = trace::scenarios::GenerateScenario(*spec);
  ExpectBitIdentical(ReplayOn(GetParam(), tr, /*use_batch=*/true, 1),
                     ReplayOn(GetParam(), tr, /*use_batch=*/false, 1));
}

INSTANTIATE_TEST_SUITE_P(Filesystems, TraceReplayEquivalenceTest,
                         ::testing::Values("winefs", "ext4-dax", "xfs-dax", "pmfs",
                                           "nova", "splitfs"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
