// WineFS journal mechanics under stress: ring wraparound with ongoing
// transactions, crash-recovery after many wraps, blob records spanning the
// ring, ENOSPC on the mmap fault path, recovery idempotence, and real-thread
// safety of the whole filesystem stack.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/units.h"
#include "src/fs/winefs/winefs.h"
#include "src/vmem/mmap_engine.h"

namespace {

using common::ErrorCode;
using common::ExecContext;
using common::kBlockSize;
using common::kMiB;

std::unique_ptr<winefs::WineFs> TinyJournalFs(pmem::PmemDevice* device) {
  // 16 blocks of journal across 2 CPUs = 512 entries per ring: a few hundred
  // metadata ops wrap it many times.
  winefs::WineFsOptions options;
  options.base.max_inodes = 4096;
  options.base.journal_blocks = 16;
  options.base.num_cpus = 2;
  return std::make_unique<winefs::WineFs>(device, options);
}

TEST(WineFsJournalTest, RingWrapsManyTimesWithoutCorruption) {
  pmem::PmemDevice dev(128 * kMiB);
  auto fs = TinyJournalFs(&dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  std::vector<uint8_t> buf(kBlockSize, 0x2e);
  // Thousands of journaled ops across both per-CPU rings.
  for (int i = 0; i < 1500; i++) {
    ctx.cpu = i % 2;
    const std::string path = "/wrap" + std::to_string(i % 50);
    auto fd = fs->Open(ctx, path, vfs::OpenFlags::Create());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs->Append(ctx, *fd, buf.data(), buf.size()).ok());
    ASSERT_TRUE(fs->Close(ctx, *fd).ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(fs->Unlink(ctx, path).ok());
    }
  }
  // Crash (no unmount) and recover: the wrapped rings must parse cleanly.
  auto fs2 = TinyJournalFs(&dev);
  ExecContext rctx;
  ASSERT_TRUE(fs2->Mount(rctx).ok());
  auto entries = fs2->ReadDir(rctx, "/");
  ASSERT_TRUE(entries.ok());
  EXPECT_GT(entries->size(), 0u);
  // Every surviving file is fully readable.
  for (const auto& entry : *entries) {
    auto fd = fs2->Open(rctx, "/" + entry.name, vfs::OpenFlags::ReadOnly());
    ASSERT_TRUE(fd.ok());
    auto size = fs2->SizeOf(rctx, *fd);
    ASSERT_TRUE(size.ok());
    std::vector<uint8_t> out(*size);
    ASSERT_TRUE(fs2->Pread(rctx, *fd, out.data(), out.size(), 0).ok());
  }
}

TEST(WineFsJournalTest, BlobSegmentsRespectRingCapacity) {
  pmem::PmemDevice dev(128 * kMiB);
  auto fs = TinyJournalFs(&dev);  // ring = 512 entries = 32 KiB of raw slots
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  auto fd = fs->Open(ctx, "/aligned", vfs::OpenFlags::Create());
  ASSERT_TRUE(fs->Fallocate(ctx, *fd, 0, 2 * kMiB).ok());
  // A 256 KiB overwrite of the aligned extent: data-journaled in segments,
  // each of which must fit the tiny ring. Content must round-trip.
  std::vector<uint8_t> data(256 * 1024);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<uint8_t>(i * 31);
  }
  ASSERT_TRUE(fs->Pwrite(ctx, *fd, data.data(), data.size(), 4096).ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs->Pread(ctx, *fd, out.data(), out.size(), 4096).ok());
  EXPECT_EQ(out, data);
  // Layout stayed aligned (data journaling, not CoW).
  vmem::MmapEngine engine(&dev, vmem::MmuParams{}, 2);
  auto ino = fs->InodeOf(ctx, *fd);
  auto map = engine.Mmap(fs.get(), *ino, 2 * kMiB, false);
  ASSERT_TRUE(map->Prefault(ctx, false).ok());
  EXPECT_DOUBLE_EQ(map->HugeMappedFraction(), 1.0);
}

TEST(WineFsJournalTest, RecoveryIsIdempotent) {
  pmem::PmemDevice dev(64 * kMiB);
  auto fs = TinyJournalFs(&dev);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  auto fd = fs->Open(ctx, "/f", vfs::OpenFlags::Create());
  std::vector<uint8_t> buf(50000, 0x4c);
  ASSERT_TRUE(fs->Pwrite(ctx, *fd, buf.data(), buf.size(), 0).ok());

  // Mount the same image repeatedly with fresh instances: state stable.
  for (int round = 0; round < 3; round++) {
    auto fs2 = TinyJournalFs(&dev);
    ExecContext rctx;
    ASSERT_TRUE(fs2->Mount(rctx).ok());
    auto st = fs2->Stat(rctx, "/f");
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st->size, buf.size());
    const auto info = fs2->StatFs(rctx).value();
    EXPECT_GT(info.free_blocks, 0u);
  }
}

TEST(WineFsJournalTest, EnospcOnMmapFaultSurfacesCleanly) {
  pmem::PmemDevice dev(48 * kMiB);
  winefs::WineFsOptions options;
  options.base.max_inodes = 1024;
  options.base.journal_blocks = 64;
  options.base.num_cpus = 2;
  auto fs = std::make_unique<winefs::WineFs>(&dev, options);
  ExecContext ctx;
  ASSERT_TRUE(fs->Mkfs(ctx).ok());
  // Consume almost everything.
  auto filler = fs->Open(ctx, "/filler", vfs::OpenFlags::Create());
  common::Status status = common::OkStatus();
  uint64_t off = 0;
  while (status.ok()) {
    status = fs->Fallocate(ctx, *filler, off, 2 * kMiB);
    off += 2 * kMiB;
  }
  EXPECT_EQ(status.code(), ErrorCode::kNoSpace);

  // A sparse mapping whose write faults cannot allocate must fail the access,
  // not crash, and the filesystem must stay usable.
  auto fd = fs->Open(ctx, "/sparse", vfs::OpenFlags::Create());
  ASSERT_TRUE(fs->Ftruncate(ctx, *fd, 8 * kMiB).ok());
  vmem::MmapEngine engine(&dev, vmem::MmuParams{}, 2);
  auto ino = fs->InodeOf(ctx, *fd);
  auto map = engine.Mmap(fs.get(), *ino, 8 * kMiB, true);
  std::vector<uint8_t> buf(kBlockSize, 1);
  common::Status wrote = common::OkStatus();
  for (uint64_t o = 0; o < 8 * kMiB && wrote.ok(); o += kBlockSize) {
    wrote = map->Write(ctx, o, buf.data(), buf.size());
  }
  EXPECT_FALSE(wrote.ok());
  // Free space, retry: the filesystem recovered from the pressure.
  ASSERT_TRUE(fs->Unlink(ctx, "/filler").ok());
  ASSERT_TRUE(map->Write(ctx, 4 * kMiB, buf.data(), buf.size()).ok());
}

TEST(WineFsJournalTest, RealThreadsHammeringDistinctDirectories) {
  // Host-thread safety smoke test: 4 OS threads, distinct directories,
  // create/append/read/unlink churn. (Simulated-time results are not
  // meaningful here; the point is no data races, deadlocks, or corruption.)
  pmem::PmemDevice dev(256 * kMiB);
  winefs::WineFsOptions options;
  options.base.num_cpus = 4;
  auto fs = std::make_unique<winefs::WineFs>(&dev, options);
  ExecContext setup;
  ASSERT_TRUE(fs->Mkfs(setup).ok());
  for (int t = 0; t < 4; t++) {
    ASSERT_TRUE(fs->Mkdir(setup, "/t" + std::to_string(t)).ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&fs, &failures, t] {
      ExecContext ctx(t);
      std::vector<uint8_t> buf(4096, static_cast<uint8_t>(t));
      for (int i = 0; i < 200; i++) {
        const std::string path = "/t" + std::to_string(t) + "/f" + std::to_string(i);
        auto fd = fs->Open(ctx, path, vfs::OpenFlags::Create());
        if (!fd.ok() || !fs->Append(ctx, *fd, buf.data(), buf.size()).ok() ||
            !fs->Fsync(ctx, *fd).ok() || !fs->Close(ctx, *fd).ok() ||
            !fs->Unlink(ctx, path).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Everything cleaned up; remount still healthy.
  ASSERT_TRUE(fs->Unmount(setup).ok());
  ASSERT_TRUE(fs->Mount(setup).ok());
  for (int t = 0; t < 4; t++) {
    auto entries = fs->ReadDir(setup, "/t" + std::to_string(t));
    ASSERT_TRUE(entries.ok());
    EXPECT_TRUE(entries->empty());
  }
}

}  // namespace
