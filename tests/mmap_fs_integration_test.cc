// Integration tests for the hugepage-eligibility rule across real
// filesystems: when exactly a 2 MiB chunk of a mapping gets a PMD entry.
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/fs/registry.h"
#include "src/fs/winefs/winefs.h"
#include "src/vmem/mmap_engine.h"

namespace {

using common::ExecContext;
using common::kBlockSize;
using common::kHugepageSize;
using common::kMiB;

class MmapFsTest : public ::testing::Test {
 protected:
  void Make(const std::string& fs_name) {
    dev_ = std::make_unique<pmem::PmemDevice>(512 * kMiB);
    fs_ = fsreg::Create(fs_name, dev_.get());
    ASSERT_TRUE(fs_->Mkfs(ctx_).ok());
    engine_ = std::make_unique<vmem::MmapEngine>(dev_.get(), vmem::MmuParams{}, 4);
  }

  std::unique_ptr<vmem::MappedFile> MapFile(const std::string& path, uint64_t size,
                                            bool fallocate) {
    auto fd = fs_->Open(ctx_, path, vfs::OpenFlags::Create());
    EXPECT_TRUE(fd.ok());
    if (fallocate) {
      EXPECT_TRUE(fs_->Fallocate(ctx_, *fd, 0, size).ok());
    } else {
      EXPECT_TRUE(fs_->Ftruncate(ctx_, *fd, size).ok());
    }
    auto ino = fs_->InodeOf(ctx_, *fd);
    EXPECT_TRUE(fs_->Close(ctx_, *fd).ok());
    return engine_->Mmap(fs_.get(), *ino, size, /*writable=*/true);
  }

  ExecContext ctx_;
  std::unique_ptr<pmem::PmemDevice> dev_;
  std::unique_ptr<vfs::FileSystem> fs_;
  std::unique_ptr<vmem::MmapEngine> engine_;
};

TEST_F(MmapFsTest, TailChunkOfUnevenFileUsesBasePages) {
  Make("winefs");
  // 3 MiB file: chunk 0 can be huge, the 1 MiB tail cannot (not a full chunk).
  auto map = MapFile("/uneven", 3 * kMiB, /*fallocate=*/true);
  ASSERT_TRUE(map->Prefault(ctx_, true).ok());
  EXPECT_EQ(ctx_.counters.page_faults_2m, 1u);
  EXPECT_EQ(ctx_.counters.page_faults_4k, 256u);  // 1 MiB of base pages
  EXPECT_NEAR(map->HugeMappedFraction(), 2.0 / 3.0, 0.01);
}

TEST_F(MmapFsTest, MisalignedPhysicalExtentNeverHuge) {
  Make("xfs-dax");  // data area phase-shifted: extents contiguous but unaligned
  auto map = MapFile("/big", 4 * kMiB, /*fallocate=*/true);
  ASSERT_TRUE(map->Prefault(ctx_, true).ok());
  EXPECT_EQ(ctx_.counters.page_faults_2m, 0u);
  EXPECT_EQ(ctx_.counters.page_faults_4k, 1024u);
}

TEST_F(MmapFsTest, SparseFileReadThenWriteFaults) {
  Make("winefs");
  auto map = MapFile("/sparse", 4 * kMiB, /*fallocate=*/false);
  // Read fault of a hole allocates and maps (base page for a read).
  uint64_t out = 1;
  ASSERT_TRUE(map->LoadLine(ctx_, 100, &out).ok());
  EXPECT_EQ(out, 0u);  // holes read as zeros after allocation+zeroing
  // A write fault in a different chunk gets the hugepage-allocating path.
  std::vector<uint8_t> buf(kBlockSize, 0x9a);
  ASSERT_TRUE(map->Write(ctx_, 2 * kMiB, buf.data(), buf.size()).ok());
  EXPECT_GE(ctx_.counters.page_faults_2m, 1u);
}

TEST_F(MmapFsTest, RewriteThenRemapRegainsHugepages) {
  Make("winefs");
  auto* wfs = dynamic_cast<winefs::WineFs*>(fs_.get());
  // Fragment a file with interleaved small appends across two files.
  auto fa = fs_->Open(ctx_, "/frag", vfs::OpenFlags::Create());
  auto fb = fs_->Open(ctx_, "/other", vfs::OpenFlags::Create());
  std::vector<uint8_t> chunk(32 * 1024, 0x5b);
  for (int i = 0; i < 128; i++) {
    ASSERT_TRUE(fs_->Append(ctx_, *fa, chunk.data(), chunk.size()).ok());
    ASSERT_TRUE(fs_->Append(ctx_, *fb, chunk.data(), chunk.size()).ok());
  }
  auto ino = fs_->InodeOf(ctx_, *fa);
  {
    auto map = engine_->Mmap(fs_.get(), *ino, 4 * kMiB, true);
    ASSERT_TRUE(map->Prefault(ctx_, false).ok());
    EXPECT_LT(map->HugeMappedFraction(), 0.5);
    map->UnmapAll(ctx_);
  }
  // Background rewrite, then a fresh mapping: all huge.
  ASSERT_TRUE(wfs->ReactiveRewrite(ctx_, "/frag").ok());
  auto map = engine_->Mmap(fs_.get(), *ino, 4 * kMiB, true);
  ASSERT_TRUE(map->Prefault(ctx_, false).ok());
  EXPECT_DOUBLE_EQ(map->HugeMappedFraction(), 1.0);
  // Contents intact through the rewrite.
  std::vector<uint8_t> out(chunk.size());
  ASSERT_TRUE(map->Read(ctx_, 100 * chunk.size(), out.data(), out.size()).ok());
  EXPECT_EQ(out, chunk);
}

TEST_F(MmapFsTest, MmapWritesVisibleThroughSyscalls) {
  Make("winefs");
  auto map = MapFile("/shared", 2 * kMiB, /*fallocate=*/true);
  std::vector<uint8_t> data(5000);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<uint8_t>(i * 13);
  }
  ASSERT_TRUE(map->Write(ctx_, 12345, data.data(), data.size()).ok());
  auto fd = fs_->Open(ctx_, "/shared", vfs::OpenFlags::ReadOnly());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_->Pread(ctx_, *fd, out.data(), out.size(), 12345).ok());
  EXPECT_EQ(out, data);
}

TEST_F(MmapFsTest, SyscallWritesVisibleThroughMmap) {
  Make("nova");
  auto fd = fs_->Open(ctx_, "/nova_file", vfs::OpenFlags::Create());
  std::vector<uint8_t> data(4 * kBlockSize, 0x3f);
  ASSERT_TRUE(fs_->Pwrite(ctx_, *fd, data.data(), data.size(), 0).ok());
  auto ino = fs_->InodeOf(ctx_, *fd);
  auto map = engine_->Mmap(fs_.get(), *ino, data.size(), false);
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(map->Read(ctx_, 0, out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
}

TEST_F(MmapFsTest, FaultBeyondEofFails) {
  Make("winefs");
  auto map = MapFile("/short", 1 * kMiB, /*fallocate=*/false);
  // The mapping is 1 MiB; accessing past it is invalid.
  uint64_t out;
  EXPECT_FALSE(map->LoadLine(ctx_, 1 * kMiB + 64, &out).ok());
}

TEST_F(MmapFsTest, HugeFractionSurvivesRemount) {
  Make("winefs");
  {
    auto map = MapFile("/persist", 4 * kMiB, /*fallocate=*/true);
    ASSERT_TRUE(map->Prefault(ctx_, true).ok());
    EXPECT_DOUBLE_EQ(map->HugeMappedFraction(), 1.0);
  }
  ASSERT_TRUE(fs_->Unmount(ctx_).ok());
  ASSERT_TRUE(fs_->Mount(ctx_).ok());
  auto fd = fs_->Open(ctx_, "/persist", vfs::OpenFlags::ReadOnly());
  auto ino = fs_->InodeOf(ctx_, *fd);
  auto map = engine_->Mmap(fs_.get(), *ino, 4 * kMiB, false);
  ASSERT_TRUE(map->Prefault(ctx_, false).ok());
  EXPECT_DOUBLE_EQ(map->HugeMappedFraction(), 1.0);  // layout persisted
}

}  // namespace
