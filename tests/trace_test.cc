// Trace format v1 (src/trace): binary round-trip, DSL round-trip, typed
// rejection of damaged files, seeded generator determinism, and the
// provenance-keyed trace cache.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/trace/dsl.h"
#include "src/trace/format.h"
#include "src/trace/scenarios.h"

namespace {

using common::ErrorCode;

trace::Trace SmallTrace() {
  trace::Trace tr;
  tr.tick_ns = 500;
  tr.provenance = "unit-test hand-built";
  trace::PathInterner interner(&tr);

  trace::TraceRecord mkdir;
  mkdir.op = trace::TraceOp::kMkdir;
  mkdir.tenant = 0;
  mkdir.path_id = interner.Intern("/t0");
  mkdir.think_ticks = 3;
  tr.records.push_back(mkdir);

  trace::TraceRecord open;
  open.op = trace::TraceOp::kOpen;
  open.open_flags = 0x1;  // kCreate
  open.fd_slot = 0;
  open.tenant = 0;
  open.path_id = interner.Intern("/t0/a \"quoted\\\" name");
  tr.records.push_back(open);

  trace::TraceRecord write;
  write.op = trace::TraceOp::kPwrite;
  write.fd_slot = 0;
  write.tenant = 0;
  write.offset = 4096;
  write.size = 1024;
  tr.records.push_back(write);

  trace::TraceRecord rename;
  rename.op = trace::TraceOp::kRename;
  rename.tenant = 1;
  rename.path_id = interner.Intern("/t1/from");
  rename.path2_id = interner.Intern("/t1/to");
  rename.think_ticks = 7;
  tr.records.push_back(rename);

  trace::TraceRecord close;
  close.op = trace::TraceOp::kClose;
  close.fd_slot = 0;
  close.tenant = 0;
  tr.records.push_back(close);
  return tr;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TraceFormat, BinaryRoundTripIsIdentity) {
  const trace::Trace tr = SmallTrace();
  auto bytes = trace::EncodeTrace(tr);
  ASSERT_TRUE(bytes.ok());
  auto back = trace::DecodeTrace(bytes->data(), bytes->size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(tr, *back);
}

TEST(TraceFormat, FileRoundTripIsIdentity) {
  const trace::Trace tr = SmallTrace();
  const std::string path = TempPath("trace_test_roundtrip.wtr");
  ASSERT_TRUE(trace::SaveTrace(path, tr).ok());
  auto back = trace::LoadTrace(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(tr, *back);

  auto info = trace::ReadTraceInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->format_version, trace::kTraceFormatVersion);
  EXPECT_EQ(info->tick_ns, tr.tick_ns);
  EXPECT_EQ(info->record_count, tr.records.size());
  EXPECT_EQ(info->path_count, tr.paths.size());
  EXPECT_EQ(info->tenant_count, 2u);
  EXPECT_EQ(info->provenance, tr.provenance);
  std::filesystem::remove(path);
}

TEST(TraceFormat, EncodeRejectsMalformedRecords) {
  trace::Trace tr = SmallTrace();
  tr.records[0].path_id = 999;  // out-of-range path reference
  auto bytes = trace::EncodeTrace(tr);
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), ErrorCode::kInvalidArgument);

  tr = SmallTrace();
  tr.records[0].fd_slot = trace::kMaxSlot + 1;
  EXPECT_EQ(trace::EncodeTrace(tr).status().code(), ErrorCode::kInvalidArgument);
}

TEST(TraceFormat, EveryTruncationIsIoError) {
  auto bytes = trace::EncodeTrace(SmallTrace());
  ASSERT_TRUE(bytes.ok());
  // Every proper prefix must be rejected as truncation, never accepted and
  // never misclassified as corruption.
  for (size_t len = 0; len < bytes->size(); len++) {
    auto r = trace::DecodeTrace(bytes->data(), len);
    ASSERT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(r.status().code(), ErrorCode::kIoError) << "prefix " << len;
  }
}

TEST(TraceFormat, CorruptionIsTypedCorrupt) {
  auto bytes = trace::EncodeTrace(SmallTrace());
  ASSERT_TRUE(bytes.ok());

  {
    auto bad = *bytes;
    bad[0] ^= 0xff;  // magic
    EXPECT_EQ(trace::DecodeTrace(bad.data(), bad.size()).status().code(),
              ErrorCode::kCorrupt);
  }
  {
    auto bad = *bytes;
    bad[8] ^= 0x02;  // version byte, checksum not recomputed => corruption
    EXPECT_EQ(trace::DecodeTrace(bad.data(), bad.size()).status().code(),
              ErrorCode::kCorrupt);
  }
  {
    auto bad = *bytes;
    bad[bad.size() - 9] ^= 0x40;  // last record byte
    EXPECT_EQ(trace::DecodeTrace(bad.data(), bad.size()).status().code(),
              ErrorCode::kCorrupt);
  }
}

TEST(TraceFormat, ForeignVersionIsNotSupported) {
  auto bytes = trace::EncodeTrace(SmallTrace());
  ASSERT_TRUE(bytes.ok());
  auto bad = *bytes;
  // Patch the version field (offset 8) and recompute the header checksum so
  // the file reads as a valid trace of a FUTURE format, not as corruption.
  bad[8] = static_cast<uint8_t>(trace::kTraceFormatVersion + 1);
  uint32_t prov_len = 0;
  for (int i = 0; i < 4; i++) {
    prov_len |= static_cast<uint32_t>(bad[40 + i]) << (8 * i);
  }
  const size_t checksummed = 44 + prov_len;
  const uint64_t csum = trace::Fnv1a(bad.data(), checksummed);
  for (int i = 0; i < 8; i++) {
    bad[checksummed + i] = static_cast<uint8_t>(csum >> (8 * i));
  }
  EXPECT_EQ(trace::DecodeTrace(bad.data(), bad.size()).status().code(),
            ErrorCode::kNotSupported);
}

TEST(TraceDsl, TextRoundTripsThroughBinary) {
  const trace::Trace tr = SmallTrace();
  const std::string text = trace::ToDsl(tr);
  auto parsed = trace::ParseDsl(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(tr, *parsed);
  // text -> binary -> text is byte-identical.
  EXPECT_EQ(text, trace::ToDsl(*parsed));
}

TEST(TraceDsl, GeneratedTracesRoundTripBothWays) {
  for (const auto& spec : trace::scenarios::ScenarioFleet(/*quick=*/true)) {
    if (spec.name == "metadata_storm") {
      continue;  // 1000+ tenants: DSL round-trip covered by smaller shapes
    }
    const trace::Trace tr = trace::scenarios::GenerateScenario(spec);
    auto parsed = trace::ParseDsl(trace::ToDsl(tr));
    ASSERT_TRUE(parsed.ok()) << spec.name;
    // binary -> text -> binary byte-identity (string table is in first-use
    // order for every generated trace).
    auto a = trace::EncodeTrace(tr);
    auto b = trace::EncodeTrace(*parsed);
    ASSERT_TRUE(a.ok() && b.ok()) << spec.name;
    EXPECT_EQ(*a, *b) << spec.name;
  }
}

TEST(TraceDsl, ParseErrorsCarryLineNumbers) {
  size_t line = 0;
  auto r = trace::ParseDsl("not a header\n", &line);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(line, 1u);

  const std::string text =
      "trace v1 tick_ns=1000 provenance=\"x\"\n"
      "# comment\n"
      "t=0 w=0 open s=0 f=c \"/a\"\n"
      "t=0 w=0 frobnicate s=0\n";
  r = trace::ParseDsl(text, &line);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(line, 4u);
}

TEST(TraceScenarios, SameSeedSameBytesDifferentSeedDiffers) {
  for (const auto& spec : trace::scenarios::ScenarioFleet(/*quick=*/true)) {
    auto a = trace::EncodeTrace(trace::scenarios::GenerateScenario(spec));
    auto b = trace::EncodeTrace(trace::scenarios::GenerateScenario(spec));
    ASSERT_TRUE(a.ok() && b.ok()) << spec.name;
    EXPECT_EQ(*a, *b) << spec.name << " is not deterministic";

    auto reseeded = spec;
    reseeded.seed = spec.seed + 1;
    auto c = trace::EncodeTrace(trace::scenarios::GenerateScenario(reseeded));
    ASSERT_TRUE(c.ok()) << spec.name;
    EXPECT_NE(*a, *c) << spec.name << " ignores its seed";
  }
}

TEST(TraceScenarios, FleetShapesAreSane) {
  const auto fleet = trace::scenarios::ScenarioFleet(/*quick=*/true);
  ASSERT_EQ(fleet.size(), 5u);
  for (const auto& spec : fleet) {
    const trace::Trace tr = trace::scenarios::GenerateScenario(spec);
    EXPECT_FALSE(tr.records.empty()) << spec.name;
    EXPECT_EQ(tr.provenance, spec.Provenance()) << spec.name;
    EXPECT_GE(tr.TenantCount(), 1u) << spec.name;
    // Generated traces must satisfy the encoder's referential checks.
    EXPECT_TRUE(trace::EncodeTrace(tr).ok()) << spec.name;
    if (spec.name == "metadata_storm") {
      EXPECT_GE(tr.TenantCount(), 1000u) << "storm must span >= 1000 tenants";
    }
  }
}

TEST(TraceScenarios, CacheHitsAndRegeneratesStaleFiles) {
  const std::string dir = TempPath("trace_test_cache");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto spec = trace::scenarios::FleetSpec("mail_churn", /*quick=*/true);
  ASSERT_TRUE(spec.ok());

  trace::scenarios::TraceCacheStats stats;
  auto first = trace::scenarios::LoadOrGenerate(dir, *spec, &stats);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);

  auto second = trace::scenarios::LoadOrGenerate(dir, *spec, &stats);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(*first, *second);

  // A trace whose stored provenance no longer matches the spec is stale:
  // rejected and regenerated in place.
  trace::Trace stale = *first;
  stale.provenance = "stale";
  ASSERT_TRUE(trace::SaveTrace(dir + "/" + spec->FileName(), stale).ok());
  auto third = trace::scenarios::LoadOrGenerate(dir, *spec, &stats);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(stats.rejects, 1u);
  EXPECT_EQ(*first, *third);
  auto fourth = trace::scenarios::LoadOrGenerate(dir, *spec, &stats);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(stats.hits, 2u);
  std::filesystem::remove_all(dir);
}

}  // namespace
