// §5.2 reproduction: CrashMonkey/ACE-style crash-consistency exploration of
// WineFS. Every generated workload is executed op by op; at every fence
// boundary inside each syscall, all subsets of in-flight cachelines are
// materialized as crash images; each image is mounted (running journal
// recovery + rebuild) and its logical state must equal the pre-op or post-op
// oracle. "Currently, WineFS passes all the CrashMonkey tests."
#include <gtest/gtest.h>

#include "src/crashmk/explorer.h"
#include "src/fs/winefs/winefs.h"

namespace {

crashmk::Explorer::FsFactory WineFsFactory(bool per_cpu_journals = true) {
  return [per_cpu_journals](pmem::PmemDevice* device) -> std::unique_ptr<vfs::FileSystem> {
    winefs::WineFsOptions options;
    options.base.max_inodes = 1024;   // small table keeps crash images cheap
    options.base.journal_blocks = 256;
    options.base.num_cpus = 2;
    options.per_cpu_journals = per_cpu_journals;
    return std::make_unique<winefs::WineFs>(device, options);
  };
}

class CrashConsistencyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CrashConsistencyTest, WineFsRecoversToPreOrPostState) {
  const auto workloads = crashmk::Explorer::GenerateAceWorkloads(/*include_data_ops=*/true);
  ASSERT_LT(GetParam(), workloads.size());
  crashmk::Explorer explorer(WineFsFactory(), crashmk::Explorer::Config{});
  const auto result = explorer.RunWorkload(workloads[GetParam()]);
  EXPECT_GT(result.crash_states, 0u);
  EXPECT_TRUE(result.ok()) << result.first_failure << "\n(mount_failures="
                           << result.mount_failures
                           << " oracle_failures=" << result.oracle_failures
                           << " states=" << result.crash_states << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AceWorkloads, CrashConsistencyTest,
    ::testing::Range<size_t>(0, crashmk::Explorer::GenerateAceWorkloads(true).size()),
    [](const ::testing::TestParamInfo<size_t>& param_info) {
      auto workloads = crashmk::Explorer::GenerateAceWorkloads(true);
      std::string name = workloads[param_info.param][0].Describe();
      if (workloads[param_info.param].size() > 1) {
        name += " then " + workloads[param_info.param][1].Describe();
      }
      std::string safe;
      for (char c : name) {
        safe += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
      }
      return safe;
    });

TEST(CrashConsistencyGlobalTest, SingleJournalModeAlsoRecovers) {
  const auto workloads = crashmk::Explorer::GenerateAceWorkloads(false);
  crashmk::Explorer explorer(WineFsFactory(/*per_cpu_journals=*/false),
                             crashmk::Explorer::Config{});
  for (size_t i = 0; i < 5; i++) {
    const auto result = explorer.RunWorkload(workloads[i]);
    EXPECT_TRUE(result.ok()) << "workload " << i << ": " << result.first_failure;
  }
}

TEST(CrashConsistencyGlobalTest, DataJournalBlobPathRecovers) {
  // Overwriting an aligned (hugepage) region uses the compact blob undo
  // records; a crash mid-overwrite must roll the old data back intact.
  using K = crashmk::CrashOp::Kind;
  crashmk::Workload workload{
      {K::kFallocate, "/A", "", 0, 2 * 1024 * 1024},  // one aligned extent
      {K::kPwrite, "/A", "", 0, 2000},                // blob-journaled overwrite
      {K::kPwrite, "/A", "", 4096, 1500},
  };
  crashmk::Explorer explorer(WineFsFactory(), crashmk::Explorer::Config{});
  const auto result = explorer.RunWorkload(workload);
  EXPECT_TRUE(result.ok()) << result.first_failure;
  EXPECT_EQ(result.ops_executed, 3u);
  EXPECT_GT(result.crash_states, 0u);
}

TEST(CrashConsistencyGlobalTest, TornWritesFindNoOracleViolations) {
  // Acceptance gate for the torn-store composition: x86 persists only 8 bytes
  // atomically, so each crash state admits partially-persisted cachelines.
  // WineFS must recover from every torn state too (the journal-entry checksum
  // makes torn undo records detectable). At least 500 states across the swept
  // workloads keeps this a meaningful exploration, not a smoke test.
  crashmk::Explorer::Config config;
  config.torn_writes = true;
  config.torn_seed = 0x5eed;
  crashmk::Explorer explorer(WineFsFactory(), config);
  const auto workloads = crashmk::Explorer::GenerateAceWorkloads(/*include_data_ops=*/true);
  uint64_t total_states = 0;
  for (size_t i = 0; i < 8; i++) {
    const auto result = explorer.RunWorkload(workloads[i]);
    EXPECT_TRUE(result.ok()) << "workload " << i << ": " << result.first_failure;
    total_states += result.crash_states;
  }
  EXPECT_GE(total_states, 500u);
}

TEST(CrashConsistencyGlobalTest, TornBlobUndoRecordsRollBackIntact) {
  // The data-journal blob path writes multi-line undo images; torn blob
  // cachelines must be caught by the payload checksum, never rolled back.
  using K = crashmk::CrashOp::Kind;
  crashmk::Workload workload{
      {K::kFallocate, "/A", "", 0, 2 * 1024 * 1024},
      {K::kPwrite, "/A", "", 0, 2000},
  };
  crashmk::Explorer::Config config;
  config.torn_writes = true;
  crashmk::Explorer explorer(WineFsFactory(), config);
  const auto result = explorer.RunWorkload(workload);
  EXPECT_TRUE(result.ok()) << result.first_failure;
  EXPECT_GT(result.crash_states, 0u);
}

TEST(CrashConsistencyGlobalTest, MultiFileWorkloadSerializedByVfsLocks) {
  // §5.2: per-CPU journals + VFS locks mean at most one pending transaction
  // per file; a chain touching several files must still recover.
  using K = crashmk::CrashOp::Kind;
  crashmk::Workload workload{
      {K::kCreate, "/w1", "", 0, 0},
      {K::kCreate, "/w2", "", 0, 0},
      {K::kRename, "/w1", "/w3", 0, 0},
      {K::kAppend, "/w2", "", 0, 600},
      {K::kUnlink, "/w3", "", 0, 0},
  };
  crashmk::Explorer explorer(WineFsFactory(), crashmk::Explorer::Config{});
  const auto result = explorer.RunWorkload(workload);
  EXPECT_TRUE(result.ok()) << result.first_failure;
  EXPECT_EQ(result.ops_executed, 5u);
}

}  // namespace
