// Contention & latency-attribution profiler unit tests: histogram bucket
// invariants, lock-site accounting against hand-computed busy-interval
// overlaps, zone exclusive-time decomposition, per-op sampling semantics, and
// the profiler's core bit-identical invariant — attaching it to a contended
// multi-threaded run on every filesystem must not move the simulated clock or
// any counter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/histogram.h"
#include "src/common/prof.h"
#include "src/common/prof_zone.h"
#include "src/common/sim_clock.h"
#include "src/common/sim_mutex.h"
#include "src/common/units.h"
#include "src/fs/registry.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/vfs/op_batch.h"
#include "src/wload/sim_runner.h"

namespace {

using common::ExecContext;
using common::kMiB;

// Every recorded value must land in a bucket whose upper bound is >= the
// value and within the ~1.04x geometric spacing of it — this pins the
// table-driven BucketFor against the log-formula spacing it replaces.
TEST(ProfilerHistogram, BucketSpacingTightAcrossRange) {
  // Stay below the last bucket's lower bound (~1.04^511 ≈ 5e8 ns), where the
  // geometric spacing necessarily saturates.
  for (uint64_t v = 1; v < (uint64_t{1} << 28); v = v * 29 / 16 + 1) {
    common::LatencyHistogram h;
    h.Record(v);
    const uint64_t p100 = h.Percentile(100.0);
    EXPECT_GE(p100 + 1, v) << "value " << v;
    EXPECT_LE(static_cast<double>(p100), static_cast<double>(v) * 1.09 + 2.0)
        << "value " << v;
    EXPECT_EQ(h.MinNanos(), v);
    EXPECT_EQ(h.MaxNanos(), v);
    EXPECT_EQ(h.count(), 1u);
  }
}

TEST(ProfilerHistogram, MergeAndPercentileOrdering) {
  common::LatencyHistogram a;
  common::LatencyHistogram b;
  for (uint64_t v = 100; v <= 1000; v += 100) {
    a.Record(v);
  }
  for (uint64_t v = 10000; v <= 20000; v += 1000) {
    b.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 21u);
  EXPECT_EQ(a.MinNanos(), 100u);
  EXPECT_EQ(a.MaxNanos(), 20000u);
  uint64_t prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const uint64_t q = a.Percentile(p);
    EXPECT_GE(q, prev) << "percentile " << p;
    prev = q;
  }
  EXPECT_GE(a.Percentile(90.0), 10000u);  // upper decile is all from b
  EXPECT_LE(a.Percentile(25.0), 1100u);   // lower quartile is all from a
}

// SimMutex contention against a hand-computed overlap: A holds [0, 1000);
// B arrives at 500, so B queues exactly 500ns. Totals are exact (inline
// cell), the wait histogram holds only the contended release, and the
// uncontended release stays out of the sampled histograms (1-in-1024).
TEST(ProfilerLockSites, SimMutexWaitMatchesHandComputedOverlap) {
  obs::Profiler profiler(/*sample_shift=*/0);
  common::SimMutex mutex("test.mutex");

  ExecContext a;
  ExecContext b;
  a.AttachProfiler(&profiler);
  b.AttachProfiler(&profiler);

  mutex.Lock(a);
  a.clock.Advance(1000);
  mutex.Unlock(a);  // busy interval [0, 1000), uncontended

  b.clock.SetNs(500);
  mutex.Lock(b);  // lands inside [0, 1000) -> waits 500
  EXPECT_EQ(b.clock.NowNs(), 1000u);
  b.clock.Advance(200);
  mutex.Unlock(b);  // contended: wait 500, hold 200

  EXPECT_EQ(mutex.total_wait_ns(), 500u);

  const std::vector<obs::LockSiteStats> sites = profiler.LockSites();
  ASSERT_EQ(sites.size(), 1u);
  const obs::LockSiteStats& s = sites[0];
  EXPECT_EQ(s.site, "test.mutex");
  EXPECT_EQ(s.acquisitions, 2u);
  EXPECT_EQ(s.total_wait_ns, 500u);
  EXPECT_EQ(s.total_hold_ns, 1200u);
  EXPECT_EQ(s.contended, 1u);
  EXPECT_EQ(s.max_wait_ns, 500u);
  EXPECT_EQ(s.wait.count(), 1u);  // contended acquisitions only
  EXPECT_GE(s.wait.MaxNanos(), 500u);
  EXPECT_EQ(s.hold.count(), 1u);  // the contended hold; uncontended unsampled

  EXPECT_EQ(profiler.TopContendedSite(), "test.mutex");
  EXPECT_EQ(profiler.TopContendedWaitNs(), 500u);
  ASSERT_EQ(profiler.LockEvents().size(), 1u);  // ring keeps contended events
  EXPECT_EQ(profiler.LockEvents()[0].wait_ns, 500u);
  EXPECT_EQ(profiler.LockEvents()[0].hold_ns, 200u);

  // The metrics-registry surface for the previously write-only wait stats.
  obs::MetricsRegistry registry;
  profiler.PublishTo(registry, "testfs");
  EXPECT_EQ(registry.Counter("testfs", "lock_acquisitions"), 2u);
  EXPECT_EQ(registry.Counter("testfs", "lock_wait_total_ns"), 500u);
  EXPECT_EQ(registry.Counter("testfs", "lock_hold_total_ns"), 1200u);
  EXPECT_EQ(registry.Counter("testfs", "lock_wait_max_ns"), 500u);

  // ResetWaitStats clears the mutex's own total; the profiler's aggregates
  // drop through ResetSamples but registered site names survive.
  mutex.ResetWaitStats();
  EXPECT_EQ(mutex.total_wait_ns(), 0u);
  profiler.ResetSamples();
  EXPECT_TRUE(profiler.LockSites().empty());
  EXPECT_EQ(profiler.SiteName(0), "test.mutex");
}

// ProfiledAcquire on a ResourceClock: B queues behind A's full hold, and the
// inline cell totals are exact across both acquisitions.
TEST(ProfilerLockSites, ProfiledAcquireResourceClockTotals) {
  obs::Profiler profiler(/*sample_shift=*/0);
  common::ResourceClock resource("test.resource");
  common::LockSiteRef ref;

  ExecContext a;
  ExecContext b;
  a.AttachProfiler(&profiler);
  b.AttachProfiler(&profiler);

  EXPECT_EQ(common::ProfiledAcquire(a, resource, "test.resource", ref, 100), 0u);
  EXPECT_EQ(common::ProfiledAcquire(b, resource, "test.resource", ref, 50), 100u);
  EXPECT_EQ(b.clock.NowNs(), 150u);

  const std::vector<obs::LockSiteStats> sites = profiler.LockSites();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].site, "test.resource");
  EXPECT_EQ(sites[0].acquisitions, 2u);
  EXPECT_EQ(sites[0].total_wait_ns, 100u);
  EXPECT_EQ(sites[0].total_hold_ns, 150u);
  EXPECT_EQ(sites[0].contended, 1u);
}

// Nested zones decompose an op into exclusive per-layer buckets: the inner
// device zone's span never double-counts into the outer vfs zone.
TEST(ProfilerZones, ExclusiveTimeAndFoldedStacks) {
  obs::Profiler profiler(/*sample_shift=*/0);
  ExecContext ctx;
  ctx.AttachProfiler(&profiler);

  {
    common::ProfileZone vfs(ctx, common::ProfLayer::kVfs);
    ctx.clock.Advance(100);
    {
      common::ProfileZone device(ctx, common::ProfLayer::kDevice);
      ctx.clock.Advance(40);
    }
    ctx.clock.Advance(60);
  }
  EXPECT_EQ(ctx.zones.layer_ns[static_cast<size_t>(common::ProfLayer::kVfs)], 160u);
  EXPECT_EQ(ctx.zones.layer_ns[static_cast<size_t>(common::ProfLayer::kDevice)], 40u);

  profiler.EndOp(ctx, "testfs", "testop");
  // The flush zeroes the context's buckets and lands in the attribution.
  EXPECT_EQ(ctx.zones.layer_ns[static_cast<size_t>(common::ProfLayer::kVfs)], 0u);
  const std::vector<obs::Profiler::OpAttribution> attr = profiler.Attribution();
  ASSERT_EQ(attr.size(), 1u);
  EXPECT_EQ(attr[0].op, "testop");
  EXPECT_EQ(attr[0].ops_sampled, 1u);
  EXPECT_EQ(attr[0].total.count(), 1u);
  EXPECT_EQ(attr[0].total.MaxNanos(), 200u);
  EXPECT_EQ(attr[0].layers[static_cast<size_t>(common::ProfLayer::kVfs)].MaxNanos(), 160u);
  EXPECT_EQ(attr[0].layers[static_cast<size_t>(common::ProfLayer::kDevice)].MaxNanos(), 40u);

  // Folded stacks carry the same split keyed by the packed path.
  uint64_t vfs_ns = 0;
  uint64_t vfs_device_ns = 0;
  for (const obs::Profiler::FoldedFrame& frame : profiler.FoldedStacks()) {
    if (frame.stack == "vfs") {
      vfs_ns = frame.ns;
    } else if (frame.stack == "vfs;device") {
      vfs_device_ns = frame.ns;
    }
  }
  EXPECT_EQ(vfs_ns, 160u);
  EXPECT_EQ(vfs_device_ns, 40u);
}

TEST(ProfilerZones, DecodeZonePath) {
  const uint32_t vfs = static_cast<uint32_t>(common::ProfLayer::kVfs) + 1;
  const uint32_t device = static_cast<uint32_t>(common::ProfLayer::kDevice) + 1;
  const uint32_t journal = static_cast<uint32_t>(common::ProfLayer::kJournal) + 1;
  EXPECT_EQ(obs::DecodeZonePath(vfs), "vfs");
  EXPECT_EQ(obs::DecodeZonePath((vfs << 3) | device), "vfs;device");
  EXPECT_EQ(obs::DecodeZonePath((((vfs << 3) | journal) << 3) | device),
            "vfs;journal;device");
  EXPECT_EQ(obs::DecodeZonePath(0), "");
}

// Per-op sampling: AttachProfiler mirrors the profiler's mask into the
// context, the first op after attach is sampled, and Tick arms exactly
// 1-in-2^shift of the following ops.
TEST(ProfilerZones, TickSamplingCadence) {
  obs::Profiler profiler(/*sample_shift=*/2);  // 1-in-4
  ExecContext ctx;
  ctx.AttachProfiler(&profiler);
  EXPECT_EQ(ctx.zones.sample_mask, 3u);
  EXPECT_TRUE(ctx.zones.active);

  int sampled = 0;
  for (int i = 0; i < 16; i++) {
    if (ctx.zones.Tick()) {
      sampled++;
    }
  }
  EXPECT_EQ(sampled, 4);  // the armed first op, then every 4th (ops 4, 8, 12)
  // Zones stay dead while inactive: no frames open, no time accumulates.
  ctx.zones.active = false;
  {
    common::ProfileZone z(ctx, common::ProfLayer::kVfs);
    ctx.clock.Advance(100);
    EXPECT_EQ(ctx.zones.depth, 0);
  }
  EXPECT_EQ(ctx.zones.layer_ns[static_cast<size_t>(common::ProfLayer::kVfs)], 0u);
}

// The tentpole invariant, enforced per filesystem: a contended eight-thread
// metadata workload runs on twin instances, one with the profiler attached
// (sampling every op), one without. Simulated wall time and every registered
// counter must match bit-exactly, and the profiled run must actually have
// seen lock traffic — observation, never perturbation.
class ProfilerFsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfilerFsTest, ModeledOutputBitIdenticalWithProfilerAttached) {
  const std::string fs_name = GetParam();
  constexpr uint32_t kThreads = 8;
  constexpr uint32_t kCpus = 4;
  constexpr uint64_t kOpsPerThread = 150;

  std::vector<uint8_t> payload(4096, 0x5a);
  auto run = [&](obs::Profiler* profiler) -> wload::RunResult {
    pmem::PmemDevice dev(512 * kMiB);
    auto fs = fsreg::Create(fs_name, &dev, kCpus);
    ExecContext setup;
    EXPECT_TRUE(fs->Mkfs(setup).ok());
    for (uint32_t t = 0; t < kThreads; t++) {
      EXPECT_TRUE(fs->Mkdir(setup, "/t" + std::to_string(t)).ok());
    }
    auto op = [&](uint32_t tid, uint64_t i, ExecContext& ctx) -> bool {
      const std::string path = "/t" + std::to_string(tid) + "/f" + std::to_string(i);
      auto fd = fs->Open(ctx, path, vfs::OpenFlags::Create());
      if (!fd.ok()) {
        return false;
      }
      for (int a = 0; a < 2; a++) {
        if (!fs->Append(ctx, *fd, payload.data(), payload.size()).ok()) {
          return false;
        }
      }
      if (!fs->Fsync(ctx, *fd).ok() || !fs->Close(ctx, *fd).ok()) {
        return false;
      }
      return fs->Unlink(ctx, path).ok();
    };
    wload::SimRunner runner(kThreads, kCpus, setup.clock.NowNs());
    if (profiler != nullptr) {
      runner.SetObservers(nullptr, nullptr, nullptr, profiler);
    }
    return runner.Run(kOpsPerThread, op);
  };

  obs::Profiler profiler(/*sample_shift=*/0);
  const wload::RunResult plain = run(nullptr);
  const wload::RunResult profiled = run(&profiler);

  ASSERT_EQ(plain.total_ops, kThreads * kOpsPerThread) << fs_name;
  ASSERT_EQ(profiled.total_ops, plain.total_ops) << fs_name;
  ASSERT_EQ(profiled.wall_ns, plain.wall_ns)
      << fs_name << ": simulated wall time moved when the profiler attached";
  for (const common::CounterField& field : common::kCounterFields) {
    ASSERT_EQ(profiled.counters.*field.member, plain.counters.*field.member)
        << fs_name << ": counter " << field.name << " moved when the profiler attached";
  }

  // The run must have produced real profile content, not vacuous equality.
  uint64_t acquisitions = 0;
  for (const obs::LockSiteStats& site : profiler.LockSites()) {
    acquisitions += site.acquisitions;
  }
  EXPECT_GT(acquisitions, 0u) << fs_name;
  EXPECT_FALSE(profiler.Attribution().empty()) << fs_name;
  EXPECT_GT(profiler.ops_sampled(), 0u) << fs_name;
}

INSTANTIATE_TEST_SUITE_P(Filesystems, ProfilerFsTest,
                         ::testing::Values("winefs", "ext4-dax", "xfs-dax", "pmfs",
                                           "nova", "splitfs"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
