// Deterministic-merge contract of wload::ParallelRunner: for every stock
// filesystem, a run fanned across {1, 2, 8} host worker threads must produce
// modeled outputs (total_ops, wall_ns, every PerfCounters field) bit-identical
// to the scalar SimRunner schedule, and the logical post-run filesystem state
// (namespace + sizes + bytes, remounted through the normal recovery path)
// must hash identically. Host-side values (host_wall_ns, hazard counts) are
// deliberately NOT compared — they describe the machine, not the model.
//
// The torn-schedule case re-runs the sharded filesystems with pseudo-random
// host yields injected between scheduler picks, so a TSan build explores
// adversarial interleavings; modeled outputs must still not move. The
// campaign case fans the crash-exploration campaign across host workers and
// requires order-independent totals plus identical recovered-state hash sets.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/exec_context.h"
#include "src/common/perf_counters.h"
#include "src/crashmk/campaign.h"
#include "src/vfs/file_system.h"
#include "src/wload/harness.h"
#include "src/wload/parallel_runner.h"
#include "src/wload/sim_runner.h"

namespace {

constexpr uint64_t kMiB = 1024ull * 1024;
constexpr uint32_t kThreads = 8;    // cpus == threads: the sharded geometry
constexpr uint64_t kOps = 30;

const char* kStockFs[] = {"ext4-dax", "xfs-dax", "pmfs", "splitfs", "winefs", "nova"};

wload::Bed MakeParallelBed(const std::string& fs_name) {
  wload::BedSpec spec;
  spec.fs_name = fs_name;
  spec.device_bytes = 64 * kMiB;
  spec.num_cpus = kThreads;
  spec.lock_domains = kThreads;
  auto bed = wload::MakeBed(spec);
  EXPECT_TRUE(bed.ok()) << fs_name;
  // Shard purity: each simulated thread owns its own namespace subtree.
  for (uint32_t t = 0; t < kThreads; t++) {
    EXPECT_TRUE(bed->fs->Mkdir(bed->setup, "/t" + std::to_string(t)).ok());
  }
  return std::move(bed.value());
}

// The measured op mix: create/append/fsync/close with periodic mkdir and
// unlink, entirely inside the thread's own subtree. Deterministic in
// (tid, op_index) so every schedule performs the same logical work.
wload::SimRunner::OpFn MakeOp(vfs::FileSystem* fs) {
  return [fs](uint32_t tid, uint64_t i, common::ExecContext& ctx) {
    const std::string dir = "/t" + std::to_string(tid);
    if (i % 5 == 4) {
      (void)fs->Mkdir(ctx, dir + "/d" + std::to_string(i));
      return true;
    }
    if (i % 7 == 3) {
      (void)fs->Unlink(ctx, dir + "/f" + std::to_string((i + 1) % 3));
      return true;
    }
    const std::string path = dir + "/f" + std::to_string(i % 3);
    auto fd = fs->Open(ctx, path, vfs::OpenFlags::Create());
    if (!fd.ok()) {
      return false;
    }
    std::vector<uint8_t> buf(512 + 256 * (i % 3),
                             static_cast<uint8_t>(0x20 + tid * 8 + i % 8));
    if (!fs->Append(ctx, *fd, buf.data(), buf.size()).ok()) {
      return false;
    }
    if (!fs->Fsync(ctx, *fd).ok()) {
      return false;
    }
    return fs->Close(ctx, *fd).ok();
  };
}

uint64_t Fnv1a(uint64_t h, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; i++) {
    h = (h ^ p[i]) * 0x100000001b3ull;
  }
  return h;
}

uint64_t HashStr(uint64_t h, const std::string& s) { return Fnv1a(h, s.data(), s.size()); }

void HashTree(vfs::FileSystem* fs, common::ExecContext& ctx, const std::string& path,
              uint64_t& h) {
  auto entries = fs->ReadDir(ctx, path);
  ASSERT_TRUE(entries.ok()) << path;
  std::vector<vfs::DirEntry> sorted = *entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const vfs::DirEntry& a, const vfs::DirEntry& b) { return a.name < b.name; });
  for (const vfs::DirEntry& e : sorted) {
    if (e.name == "." || e.name == "..") {
      continue;
    }
    const std::string child = (path == "/" ? "" : path) + "/" + e.name;
    h = HashStr(h, child);
    h = Fnv1a(h, &e.is_dir, sizeof(e.is_dir));
    if (e.is_dir) {
      HashTree(fs, ctx, child, h);
      continue;
    }
    auto st = fs->Stat(ctx, child);
    ASSERT_TRUE(st.ok()) << child;
    h = Fnv1a(h, &st->size, sizeof(st->size));
    auto fd = fs->Open(ctx, child, vfs::OpenFlags::ReadOnly());
    ASSERT_TRUE(fd.ok()) << child;
    std::vector<uint8_t> buf(st->size);
    if (st->size > 0) {
      auto io = fs->Pread(ctx, *fd, buf.data(), buf.size(), 0);
      ASSERT_TRUE(io.ok()) << child;
      ASSERT_EQ(io.bytes(), buf.size()) << child;
      h = Fnv1a(h, buf.data(), buf.size());
    }
    ASSERT_TRUE(fs->Close(ctx, *fd).ok());
  }
}

// Remounts through the normal recovery path, then hashes the logical
// namespace: paths, dir-ness, sizes, file bytes. Deliberately excludes inode
// numbers, fds, and raw device bytes — those are representation, not model.
uint64_t RecoveredStateHash(wload::Bed& bed) {
  common::ExecContext ctx;
  EXPECT_TRUE(bed.fs->Unmount(ctx).ok());
  EXPECT_TRUE(bed.fs->Mount(ctx).ok());
  uint64_t h = 0xcbf29ce484222325ull;
  HashTree(bed.fs.get(), ctx, "/", h);
  return h;
}

struct Outcome {
  wload::RunResult run;
  uint64_t state_hash = 0;
};

Outcome RunScalar(const std::string& fs_name) {
  wload::Bed bed = MakeParallelBed(fs_name);
  wload::SimRunner runner(kThreads, kThreads, bed.setup.clock.NowNs());
  Outcome out;
  out.run = runner.Run(kOps, MakeOp(bed.fs.get()));
  out.state_hash = RecoveredStateHash(bed);
  return out;
}

Outcome RunParallel(const std::string& fs_name, uint32_t workers, bool stress) {
  wload::Bed bed = MakeParallelBed(fs_name);
  wload::ParallelRunner runner(kThreads, kThreads, bed.setup.clock.NowNs());
  runner.SetWorkers(workers).SetMode(wload::ParallelRunner::ModeFor(*bed.fs));
  if (stress) {
    runner.SetStressYields(0x7ea5ull * workers);
  }
  Outcome out;
  out.run = runner.Run(kOps, MakeOp(bed.fs.get())).run;
  out.state_hash = RecoveredStateHash(bed);
  return out;
}

void ExpectIdentical(const std::string& label, const Outcome& got, const Outcome& want) {
  EXPECT_EQ(got.run.total_ops, want.run.total_ops) << label;
  EXPECT_EQ(got.run.wall_ns, want.run.wall_ns) << label;
  for (const common::CounterField& field : common::kCounterFields) {
    EXPECT_EQ(got.run.counters.*field.member, want.run.counters.*field.member)
        << label << " counter " << field.name;
  }
  EXPECT_EQ(got.state_hash, want.state_hash) << label << " recovered-state hash";
}

TEST(ParallelPolicy, PerCpuFilesystemsDeclareSharded) {
  for (const char* fs_name : kStockFs) {
    wload::Bed bed = MakeParallelBed(fs_name);
    const bool sharded = bed.fs->parallel_policy() == vfs::ParallelPolicy::kSharded;
    const bool per_cpu = std::string(fs_name) == "winefs" || std::string(fs_name) == "nova";
    EXPECT_EQ(sharded, per_cpu) << fs_name;
  }
}

TEST(ParallelDeterminism, BitIdenticalAcrossWorkerCounts) {
  for (const char* fs_name : kStockFs) {
    const Outcome scalar = RunScalar(fs_name);
    EXPECT_EQ(scalar.run.total_ops, uint64_t{kThreads * kOps}) << fs_name;
    for (uint32_t workers : {1u, 2u, 8u}) {
      const Outcome par = RunParallel(fs_name, workers, /*stress=*/false);
      ExpectIdentical(std::string(fs_name) + " w=" + std::to_string(workers), par, scalar);
    }
  }
}

TEST(ParallelDeterminism, TornScheduleStressDoesNotMoveModeledOutputs) {
  // Sharded filesystems genuinely free-run here; the lockstep ext4-dax row
  // exercises the turnstile under the same yield storm. Under TSan this is
  // the race hunt; under a plain build it still proves schedule independence.
  for (const char* fs_name : {"winefs", "nova", "ext4-dax"}) {
    const Outcome scalar = RunScalar(fs_name);
    for (uint32_t workers : {2u, 8u}) {
      const Outcome par = RunParallel(fs_name, workers, /*stress=*/true);
      ExpectIdentical(std::string(fs_name) + " stressed w=" + std::to_string(workers), par,
                      scalar);
    }
  }
}

TEST(ParallelDeterminism, CampaignFanOutMatchesSequentialTotals) {
  crashmk::CampaignConfig config;
  config.fs = "winefs";
  config.include_data_ops = false;
  config.collect_state_hashes = true;
  auto run = [&](uint32_t workers) {
    config.host_workers = workers;
    auto result = crashmk::RunCampaign(config);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };
  const crashmk::CampaignResult seq = run(1);
  const crashmk::CampaignResult par = run(2);
  EXPECT_TRUE(seq.ok());
  EXPECT_TRUE(par.ok());
  EXPECT_EQ(par.workloads, seq.workloads);
  EXPECT_EQ(par.totals.ops_executed, seq.totals.ops_executed);
  EXPECT_EQ(par.totals.crash_states, seq.totals.crash_states);
  EXPECT_EQ(par.totals.oracle_replays, seq.totals.oracle_replays);
  EXPECT_EQ(par.totals.pruned_replays, seq.totals.pruned_replays);
  EXPECT_EQ(par.totals.distinct_images, seq.totals.distinct_images);
  EXPECT_EQ(par.totals.recovered_state_hashes, seq.totals.recovered_state_hashes);
}

}  // namespace
