// Build a PM-native application the way the paper's workloads do: a small
// key-value store that keeps its values in memory-mapped pool files and runs
// YCSB against it, comparing WineFS with NOVA on an aged filesystem.
//
//   ./build/examples/kvstore_on_winefs
#include <cstdio>
#include <string>

#include "src/aging/geriatrix.h"
#include "src/common/units.h"
#include "src/fs/registry.h"
#include "src/vmem/mmap_engine.h"
#include "src/wload/mmap_lsm.h"
#include "src/wload/ycsb.h"

using common::kMiB;

namespace {

void RunOn(const std::string& fs_name) {
  pmem::PmemDevice device(1024 * kMiB);
  auto fs = fsreg::Create(fs_name, &device);
  vmem::MmapEngine engine(&device, vmem::MmuParams{}, 4);
  common::ExecContext ctx;
  (void)fs->Mkfs(ctx);

  // Age it first — this is where filesystems differ (Figure 7).
  aging::AgingConfig aging_config;
  aging_config.target_utilization = 0.65;
  aging_config.write_multiplier = 2.0;
  aging::Geriatrix geriatrix(fs.get(), aging::Profile::Agrawal(21), aging_config);
  if (!geriatrix.Run(ctx).ok()) {
    std::printf("%s: aging failed\n", fs_name.c_str());
    return;
  }

  // The app: values live in mmap'd 32 MiB segment files.
  wload::MmapLsm store(fs.get(), &engine,
                       wload::MmapLsmConfig{.segment_bytes = 32 * kMiB});
  if (!store.Open(ctx).ok()) {
    std::printf("%s: store open failed\n", fs_name.c_str());
    return;
  }

  wload::YcsbConfig config;
  config.record_count = 30000;
  config.operation_count = 30000;
  config.value_bytes = 1024;
  config.num_threads = 4;
  config.start_time_ns = ctx.clock.NowNs();
  wload::YcsbDriver driver(&store, config);

  std::printf("%-12s", fs_name.c_str());
  for (auto workload : {wload::YcsbWorkload::kLoad, wload::YcsbWorkload::kA,
                        wload::YcsbWorkload::kC}) {
    auto result = driver.Run(workload);
    std::printf("  %s=%6.0f Kops/s (faults %llu)", wload::YcsbName(workload).c_str(),
                result.run.OpsPerSecond() / 1000.0,
                static_cast<unsigned long long>(result.run.counters.total_page_faults()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("YCSB on a mmap-backed KV store, aged filesystems (cf. Figure 7a)\n\n");
  RunOn("winefs");
  RunOn("nova");
  RunOn("ext4-dax");
  std::printf("\nFewer page faults on WineFS: its allocator kept 2 MiB-aligned extents\n"
              "available, so every segment maps with hugepages even after aging.\n");
  return 0;
}
