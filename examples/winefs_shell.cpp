// winefs_shell: an interactive REPL over the simulated filesystems. Useful
// for poking at allocator behaviour, aging, fragmentation, and recovery by
// hand. Reads commands from stdin (or a here-doc for scripting).
//
//   ./build/examples/winefs_shell [fs-name]        # default: winefs
//
// Commands:
//   help                         this text
//   mkdir <path>                 create a directory
//   write <path> <bytes>         create/overwrite a file with <bytes> of data
//   append <path> <bytes>        append <bytes>
//   falloc <path> <bytes>        fallocate a file
//   cat <path>                   show size + first bytes
//   ls <path>                    list a directory
//   rm <path> | rmdir | mv a b   namespace ops
//   stat <path>                  inode details incl. extent layout
//   df                           free space + hugepage-capable fraction
//   age <util%> <churn_x>        run Geriatrix aging
//   mmapbw <path>                mmap the file and measure write bandwidth
//   rewrite <path>               WineFS reactive rewrite (if fragmented)
//   fsck                         offline consistency check
//   remount                      unmount + mount (recovery path)
//   crash                        simulate power loss + recovery mount
//   time                         simulated clock + counters
//   quit
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/aging/geriatrix.h"
#include "src/common/units.h"
#include "src/fs/fscore/fsck.h"
#include "src/fs/registry.h"
#include "src/fs/winefs/winefs.h"
#include "src/vmem/mmap_engine.h"

using common::kMiB;

namespace {

class Shell {
 public:
  explicit Shell(const std::string& fs_name)
      : dev_(1024 * kMiB), fs_(fsreg::Create(fs_name, &dev_)), engine_(&dev_, {}, 8) {
    if (!fs_) {
      std::fprintf(stderr, "unknown filesystem '%s'\n", fs_name.c_str());
      std::exit(1);
    }
    if (!fs_->Mkfs(ctx_).ok()) {
      std::fprintf(stderr, "mkfs failed\n");
      std::exit(1);
    }
    std::printf("%s mounted on a 1 GiB simulated PM device. 'help' for commands.\n",
                std::string(fs_->Name()).c_str());
  }

  int Loop() {
    std::string line;
    while (std::printf("pm> "), std::fflush(stdout), std::getline(std::cin, line)) {
      std::istringstream in(line);
      std::string cmd;
      in >> cmd;
      if (cmd.empty()) {
        continue;
      }
      if (cmd == "quit" || cmd == "exit") {
        break;
      }
      Dispatch(cmd, in);
    }
    return 0;
  }

 private:
  void Dispatch(const std::string& cmd, std::istringstream& in) {
    std::string a;
    std::string b;
    uint64_t n = 0;
    auto need_path = [&]() { return static_cast<bool>(in >> a); };
    if (cmd == "help") {
      std::printf("mkdir write append falloc cat ls rm rmdir mv stat df age mmapbw "
                  "rewrite fsck remount crash time quit\n");
    } else if (cmd == "mkdir" && need_path()) {
      Report(fs_->Mkdir(ctx_, a));
    } else if ((cmd == "write" || cmd == "append" || cmd == "falloc") && (in >> a >> n)) {
      auto fd = fs_->Open(ctx_, a, vfs::OpenFlags::Create());
      if (!fd.ok()) {
        Report(fd.status());
        return;
      }
      std::vector<uint8_t> buf(std::min<uint64_t>(n, 4 * kMiB), 0x61);
      common::Status status;
      if (cmd == "falloc") {
        status = fs_->Fallocate(ctx_, *fd, 0, n);
      } else {
        uint64_t done = 0;
        while (done < n && status.ok()) {
          const uint64_t chunk = std::min<uint64_t>(buf.size(), n - done);
          auto w = cmd == "append" ? fs_->Append(ctx_, *fd, buf.data(), chunk)
                                   : fs_->Pwrite(ctx_, *fd, buf.data(), chunk, done);
          status = w.ok() ? common::OkStatus() : w.status();
          done += chunk;
        }
      }
      (void)fs_->Close(ctx_, *fd);
      Report(status);
    } else if (cmd == "cat" && need_path()) {
      auto fd = fs_->Open(ctx_, a, vfs::OpenFlags::ReadOnly());
      if (!fd.ok()) {
        Report(fd.status());
        return;
      }
      char buf[33] = {};
      auto got = fs_->Pread(ctx_, *fd, buf, 32, 0);
      auto size = fs_->SizeOf(ctx_, *fd);
      std::printf("%llu bytes; head: %.32s\n",
                  static_cast<unsigned long long>(size.ok() ? *size : 0),
                  got.ok() ? buf : "?");
      (void)fs_->Close(ctx_, *fd);
    } else if (cmd == "ls" && need_path()) {
      auto entries = fs_->ReadDir(ctx_, a);
      if (!entries.ok()) {
        Report(entries.status());
        return;
      }
      for (const auto& entry : *entries) {
        std::printf("%c %s\n", entry.is_dir ? 'd' : '-', entry.name.c_str());
      }
      std::printf("(%zu entries)\n", entries->size());
    } else if (cmd == "rm" && need_path()) {
      Report(fs_->Unlink(ctx_, a));
    } else if (cmd == "rmdir" && need_path()) {
      Report(fs_->Rmdir(ctx_, a));
    } else if (cmd == "mv" && (in >> a >> b)) {
      Report(fs_->Rename(ctx_, a, b));
    } else if (cmd == "stat" && need_path()) {
      StatCmd(a);
    } else if (cmd == "df") {
      const auto info = fs_->StatFs(ctx_).value();
      std::printf("util %.1f%%  free %llu MiB  hugepage-capable free %.1f%%  "
                  "free 2MiB extents %llu\n",
                  info.utilization() * 100,
                  static_cast<unsigned long long>(info.free_blocks * 4096 / kMiB),
                  info.AlignedFreeFraction() * 100,
                  static_cast<unsigned long long>(info.free_aligned_extents));
    } else if (cmd == "age") {
      double util = 0.7;
      double churn = 2.0;
      in >> util >> churn;
      if (util > 1.0) {
        util /= 100.0;
      }
      aging::AgingConfig config;
      config.target_utilization = util;
      config.write_multiplier = churn;
      aging::Geriatrix geriatrix(fs_.get(), aging::Profile::Agrawal(42), config);
      auto stats = geriatrix.Run(ctx_);
      if (stats.ok()) {
        std::printf("aged: %llu creates, %llu deletes, %llu updates, util %.1f%%\n",
                    static_cast<unsigned long long>(stats->files_created),
                    static_cast<unsigned long long>(stats->files_deleted),
                    static_cast<unsigned long long>(stats->files_updated),
                    stats->final_utilization * 100);
      } else {
        Report(stats.status());
      }
    } else if (cmd == "mmapbw" && need_path()) {
      MmapBwCmd(a);
    } else if (cmd == "rewrite" && need_path()) {
      auto* wfs = dynamic_cast<winefs::WineFs*>(fs_.get());
      if (wfs == nullptr) {
        std::printf("rewrite is a WineFS feature\n");
        return;
      }
      std::printf("fragmented before: %s\n", wfs->NeedsRewrite(a) ? "yes" : "no");
      Report(wfs->ReactiveRewrite(ctx_, a));
      std::printf("fragmented after: %s\n", wfs->NeedsRewrite(a) ? "yes" : "no");
    } else if (cmd == "fsck") {
      std::printf("%s\n", fscore::CheckImage(dev_).Summary().c_str());
    } else if (cmd == "remount") {
      Report(fs_->Unmount(ctx_));
      Report(fs_->Mount(ctx_));
    } else if (cmd == "crash") {
      // Power loss: a fresh filesystem instance mounts the same device and
      // runs recovery (the old instance's DRAM state is simply dropped).
      fs_ = fsreg::Create(std::string(fs_->Name()), &dev_);
      Report(fs_->Mount(ctx_));
    } else if (cmd == "time") {
      std::printf("simulated %.3f ms | faults %llu huge + %llu base | "
                  "PM written %.1f MiB | journal %.1f KiB\n",
                  static_cast<double>(ctx_.clock.NowNs()) / 1e6,
                  static_cast<unsigned long long>(ctx_.counters.page_faults_2m),
                  static_cast<unsigned long long>(ctx_.counters.page_faults_4k),
                  static_cast<double>(ctx_.counters.pm_write_bytes) / kMiB,
                  static_cast<double>(ctx_.counters.journal_bytes) / 1024.0);
    } else {
      std::printf("? (try 'help')\n");
    }
  }

  void StatCmd(const std::string& path) {
    auto st = fs_->Stat(ctx_, path);
    if (!st.ok()) {
      Report(st.status());
      return;
    }
    std::printf("ino %llu  %s  size %llu  blocks %llu  nlink %u\n",
                static_cast<unsigned long long>(st->ino), st->is_dir ? "dir" : "file",
                static_cast<unsigned long long>(st->size),
                static_cast<unsigned long long>(st->blocks), st->nlink);
    auto* generic = dynamic_cast<fscore::GenericFs*>(fs_.get());
    const fscore::Inode* inode = generic->FindInode(st->ino);
    if (inode != nullptr) {
      const auto entries = inode->extents.Entries();
      std::printf("extents: %zu", entries.size());
      size_t shown = 0;
      for (const auto& [logical, ext] : entries) {
        if (shown++ >= 6) {
          std::printf(" ...");
          break;
        }
        std::printf("  [%llu -> %llu +%llu%s]", static_cast<unsigned long long>(logical),
                    static_cast<unsigned long long>(ext.phys_block),
                    static_cast<unsigned long long>(ext.num_blocks),
                    ext.IsAligned() ? " 2M" : "");
      }
      std::printf("\n");
    }
  }

  void MmapBwCmd(const std::string& path) {
    auto fd = fs_->Open(ctx_, path, vfs::OpenFlags{});
    if (!fd.ok()) {
      Report(fd.status());
      return;
    }
    auto size = fs_->SizeOf(ctx_, *fd);
    auto ino = fs_->InodeOf(ctx_, *fd);
    if (!size.ok() || *size == 0) {
      std::printf("empty file\n");
      return;
    }
    auto map = engine_.Mmap(fs_.get(), *ino, *size, true);
    std::vector<uint8_t> buf(std::min<uint64_t>(*size, kMiB), 0x33);
    const uint64_t t0 = ctx_.clock.NowNs();
    for (uint64_t off = 0; off + buf.size() <= *size; off += buf.size()) {
      (void)map->Write(ctx_, off, buf.data(), buf.size());
    }
    const double secs = static_cast<double>(ctx_.clock.NowNs() - t0) / 1e9;
    std::printf("%.2f GB/s, hugepage-mapped %.0f%%\n",
                static_cast<double>(*size) / secs / 1e9, map->HugeMappedFraction() * 100);
    (void)fs_->Close(ctx_, *fd);
  }

  void Report(const common::Status& status) {
    std::printf("%s\n", status.ok() ? "ok" : std::string(status.message()).c_str());
  }

  pmem::PmemDevice dev_;
  std::unique_ptr<vfs::FileSystem> fs_;
  vmem::MmapEngine engine_;
  common::ExecContext ctx_;
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell(argc > 1 ? argv[1] : "winefs");
  return shell.Loop();
}
