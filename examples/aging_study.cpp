// Aging study: the paper's headline phenomenon in ~80 lines. Ages WineFS and
// ext4-DAX side by side with the Geriatrix-style framework, then shows how
// hugepage-capable free space and memory-mapped write bandwidth diverge.
//
//   ./build/examples/aging_study [utilization=0.7] [churn_multiplier=3]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/aging/geriatrix.h"
#include "src/aging/profiles.h"
#include "src/common/units.h"
#include "src/fs/registry.h"
#include "src/vmem/mmap_engine.h"

using common::kMiB;

namespace {

void StudyOne(const std::string& fs_name, double utilization, double churn) {
  pmem::PmemDevice device(1024 * kMiB);
  auto fs = fsreg::Create(fs_name, &device);
  vmem::MmapEngine engine(&device, vmem::MmuParams{}, 8);
  common::ExecContext ctx;
  (void)fs->Mkfs(ctx);

  aging::AgingConfig config;
  config.target_utilization = utilization;
  config.write_multiplier = churn;
  aging::Geriatrix geriatrix(fs.get(), aging::Profile::Agrawal(7), config);
  auto stats = geriatrix.Run(ctx);
  if (!stats.ok()) {
    std::printf("%-10s aging failed: %s\n", fs_name.c_str(),
                std::string(stats.status().message()).c_str());
    return;
  }

  const auto info = fs->StatFs(ctx).value();

  // Bandwidth probe: mmap a fresh 32 MiB file and stream writes into it.
  auto fd = fs->Open(ctx, "/probe", vfs::OpenFlags::Create());
  (void)fs->Fallocate(ctx, *fd, 0, 32 * kMiB);
  auto ino = fs->InodeOf(ctx, *fd);
  auto map = engine.Mmap(fs.get(), *ino, 32 * kMiB, true);
  std::vector<uint8_t> buf(1 * kMiB, 1);
  const uint64_t t0 = ctx.clock.NowNs();
  for (uint64_t off = 0; off < 32 * kMiB; off += buf.size()) {
    (void)map->Write(ctx, off, buf.data(), buf.size());
  }
  const double gbps =
      32.0 * kMiB / (static_cast<double>(ctx.clock.NowNs() - t0) / 1e9) / 1e9;

  std::printf("%-10s util=%4.0f%%  churn=%5.1f GiB  files=%6llu  "
              "aligned-free=%5.1f%%  mmap-write=%4.2f GB/s  huge=%3.0f%%\n",
              fs_name.c_str(), info.utilization() * 100,
              static_cast<double>(stats->bytes_allocated) / (1024.0 * kMiB),
              static_cast<unsigned long long>(stats->live_files),
              info.AlignedFreeFraction() * 100, gbps, map->HugeMappedFraction() * 100);
}

}  // namespace

int main(int argc, char** argv) {
  const double utilization = argc > 1 ? std::atof(argv[1]) : 0.7;
  const double churn = argc > 2 ? std::atof(argv[2]) : 3.0;
  std::printf("aging to %.0f%% utilization with %.1fx capacity churn (Agrawal profile)\n\n",
              utilization * 100, churn);
  for (const std::string& fs_name : {"winefs", "ext4-dax", "nova", "xfs-dax"}) {
    StudyOne(fs_name, utilization, churn);
  }
  std::printf("\nWineFS keeps its free space hugepage-capable as it ages; the others\n"
              "fragment and fall back to 4 KiB mappings (Figure 1 / Figure 3).\n");
  return 0;
}
