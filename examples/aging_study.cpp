// Aging study: the paper's headline phenomenon in ~100 lines. Ages WineFS and
// ext4-DAX side by side with the Geriatrix-style framework, then shows how
// hugepage-capable free space and memory-mapped write bandwidth diverge.
//
// Aged images go through the snapshot corpus (src/snap): with WINEFS_SNAP_DIR
// set, the first run ages each filesystem once and saves the image; reruns
// load it from disk (fsck-validated) and probe a copy-on-write fork, skipping
// Geriatrix entirely. Without the env var everything is built inline.
//
//   ./build/examples/aging_study [utilization=0.7] [churn_multiplier=3]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/aging/geriatrix.h"
#include "src/aging/profiles.h"
#include "src/common/units.h"
#include "src/fs/registry.h"
#include "src/snap/corpus.h"
#include "src/vmem/mmap_engine.h"

using common::kMiB;

namespace {

constexpr uint64_t kDeviceBytes = 1024 * kMiB;
constexpr uint64_t kSeed = 7;

void StudyOne(snap::Corpus& corpus, const std::string& fs_name, double utilization,
              double churn) {
  aging::AgingConfig config;
  config.target_utilization = utilization;
  config.write_multiplier = churn;
  config.seed = kSeed;

  snap::ImageKey key;
  key.fs = fs_name;
  key.device_bytes = kDeviceBytes;
  key.num_cpus = 4;
  key.numa_nodes = 1;
  key.profile = "agrawal";
  key.seed = kSeed;
  key.utilization = utilization;
  key.churn = churn;
  key.detail = aging::AgingProvenance(config);

  const uint64_t hits_before = corpus.stats().hits;
  auto snapshot = corpus.LoadOrBuild(key, [&]() -> common::Result<pmem::DeviceSnapshot> {
    pmem::PmemDevice device(kDeviceBytes);
    auto fs = fsreg::Create(fs_name, &device);
    common::ExecContext ctx;
    RETURN_IF_ERROR(fs->Mkfs(ctx));
    aging::Geriatrix geriatrix(fs.get(), aging::Profile::Agrawal(kSeed), config);
    auto stats = geriatrix.Run(ctx);
    if (!stats.ok()) {
      return stats.status();
    }
    RETURN_IF_ERROR(fs->Unmount(ctx));
    return device.Snapshot();
  });
  if (!snapshot.ok()) {
    std::printf("%-10s aging failed: %s\n", fs_name.c_str(),
                std::string(snapshot.status().message()).c_str());
    return;
  }
  const bool from_corpus = corpus.stats().hits > hits_before;

  // Probe a COW fork of the aged image; the stored image stays pristine.
  pmem::PmemDevice device(*snapshot);
  auto fs = fsreg::Create(fs_name, &device);
  vmem::MmapEngine engine(&device, vmem::MmuParams{}, 8);
  common::ExecContext ctx;
  if (!fs->Mount(ctx).ok()) {
    std::printf("%-10s mount of aged image failed\n", fs_name.c_str());
    return;
  }
  const auto info = fs->StatFs(ctx).value();

  // Bandwidth probe: mmap a fresh 32 MiB file and stream writes into it.
  auto fd = fs->Open(ctx, "/probe", vfs::OpenFlags::Create());
  (void)fs->Fallocate(ctx, *fd, 0, 32 * kMiB);
  auto ino = fs->InodeOf(ctx, *fd);
  auto map = engine.Mmap(fs.get(), *ino, 32 * kMiB, true);
  std::vector<uint8_t> buf(1 * kMiB, 1);
  const uint64_t t0 = ctx.clock.NowNs();
  for (uint64_t off = 0; off < 32 * kMiB; off += buf.size()) {
    (void)map->Write(ctx, off, buf.data(), buf.size());
  }
  const double gbps =
      32.0 * kMiB / (static_cast<double>(ctx.clock.NowNs() - t0) / 1e9) / 1e9;

  std::printf("%-10s util=%4.0f%%  %-6s  aligned-free=%5.1f%%  mmap-write=%4.2f GB/s  "
              "huge=%3.0f%%\n",
              fs_name.c_str(), info.utilization() * 100, from_corpus ? "corpus" : "aged",
              info.AlignedFreeFraction() * 100, gbps, map->HugeMappedFraction() * 100);
}

}  // namespace

int main(int argc, char** argv) {
  const double utilization = argc > 1 ? std::atof(argv[1]) : 0.7;
  const double churn = argc > 2 ? std::atof(argv[2]) : 3.0;
  snap::Corpus corpus = snap::Corpus::FromEnv();
  std::printf("aging to %.0f%% utilization with %.1fx capacity churn (Agrawal profile)\n",
              utilization * 100, churn);
  std::printf("snapshot corpus: %s\n\n",
              corpus.enabled() ? corpus.dir().c_str() : "disabled (set WINEFS_SNAP_DIR)");
  for (const std::string& fs_name : {"winefs", "ext4-dax", "nova", "xfs-dax"}) {
    StudyOne(corpus, fs_name, utilization, churn);
  }
  const snap::CorpusStats& stats = corpus.stats();
  std::printf("\nWineFS keeps its free space hugepage-capable as it ages; the others\n"
              "fragment and fall back to 4 KiB mappings (Figure 1 / Figure 3).\n");
  if (corpus.enabled()) {
    std::printf("corpus: %llu hit(s), %llu built (%llu ms building, %llu ms loading)\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.build_wall_ms),
                static_cast<unsigned long long>(stats.load_wall_ms));
  }
  return 0;
}
