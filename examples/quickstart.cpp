// Quickstart: create a WineFS instance on a simulated PM device, use the
// POSIX-style API, memory-map a file through the MMU simulator, and look at
// the cost/fault counters the library exposes.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/fs/winefs/winefs.h"
#include "src/vmem/mmap_engine.h"

using common::kMiB;

int main() {
  // 1. A 256 MiB simulated persistent-memory device.
  pmem::PmemDevice device(256 * kMiB);

  // 2. WineFS on top of it (strict mode: atomic, synchronous data+metadata).
  winefs::WineFsOptions options;
  options.base.num_cpus = 4;
  winefs::WineFs fs(&device, options);
  common::ExecContext ctx;  // carries the simulated clock + counters
  if (!fs.Mkfs(ctx).ok()) {
    std::fprintf(stderr, "mkfs failed\n");
    return 1;
  }

  // 3. Ordinary file API.
  (void)fs.Mkdir(ctx, "/data");
  auto fd = fs.Open(ctx, "/data/hello.txt", vfs::OpenFlags::Create());
  const std::string message = "hello, persistent world\n";
  (void)fs.Pwrite(ctx, *fd, message.data(), message.size(), 0);
  (void)fs.Fsync(ctx, *fd);

  char readback[64] = {};
  (void)fs.Pread(ctx, *fd, readback, message.size(), 0);
  std::printf("read back: %s", readback);

  // 4. Memory-mapped access. fallocate a 8 MiB pool; WineFS hands out
  //    2 MiB-aligned extents, so the mapping uses hugepages.
  auto pool_fd = fs.Open(ctx, "/data/pool", vfs::OpenFlags::Create());
  (void)fs.Fallocate(ctx, *pool_fd, 0, 8 * kMiB);

  vmem::MmapEngine engine(&device, vmem::MmuParams{}, /*num_cpus=*/4);
  auto ino = fs.InodeOf(ctx, *pool_fd);
  auto map = engine.Mmap(&fs, *ino, 8 * kMiB, /*writable=*/true);

  std::vector<uint8_t> buffer(1 * kMiB, 0x42);
  for (uint64_t off = 0; off < 8 * kMiB; off += buffer.size()) {
    (void)map->Write(ctx, off, buffer.data(), buffer.size());
  }

  // 5. The simulator tells you what that cost.
  std::printf("hugepage-mapped fraction: %.0f%%\n", map->HugeMappedFraction() * 100);
  std::printf("page faults: %llu huge + %llu base\n",
              static_cast<unsigned long long>(ctx.counters.page_faults_2m),
              static_cast<unsigned long long>(ctx.counters.page_faults_4k));
  std::printf("simulated time: %.2f ms, PM bytes written: %.1f MiB\n",
              static_cast<double>(ctx.clock.NowNs()) / 1e6,
              static_cast<double>(ctx.counters.pm_write_bytes) / kMiB);

  // 6. Survives remount, of course.
  (void)fs.Unmount(ctx);
  if (!fs.Mount(ctx).ok()) {
    std::fprintf(stderr, "remount failed\n");
    return 1;
  }
  auto st = fs.Stat(ctx, "/data/pool");
  std::printf("after remount: /data/pool is %llu bytes\n",
              static_cast<unsigned long long>(st->size));
  return 0;
}
