// Crash-recovery walkthrough: run an operation, materialize a mid-operation
// crash state from the device's in-flight cachelines, reboot a fresh WineFS
// on the damaged image, and watch the per-CPU undo journals roll the
// filesystem back to a consistent point (§5.2).
//
//   ./build/examples/crash_recovery_demo
#include <cstdio>
#include <vector>

#include "src/common/units.h"
#include "src/crashmk/oracle.h"
#include "src/fs/winefs/winefs.h"

using common::kMiB;

namespace {

std::unique_ptr<winefs::WineFs> FreshFs(pmem::PmemDevice* device) {
  winefs::WineFsOptions options;
  options.base.max_inodes = 1024;
  options.base.journal_blocks = 256;
  options.base.num_cpus = 2;
  return std::make_unique<winefs::WineFs>(device, options);
}

}  // namespace

int main() {
  pmem::PmemDevice device(32 * kMiB);
  auto fs = FreshFs(&device);
  common::ExecContext ctx;
  (void)fs->Mkfs(ctx);

  // A file with known contents.
  auto fd = fs->Open(ctx, "/ledger", vfs::OpenFlags::Create());
  std::vector<uint8_t> row(512, 0xaa);
  (void)fs->Pwrite(ctx, *fd, row.data(), row.size(), 0);
  (void)fs->Close(ctx, *fd);

  device.EnableCrashTracking();
  auto pre = crashmk::Oracle::Capture(ctx, *fs);
  std::printf("before rename: %zu entries visible\n", pre.entries().size());

  // Crash in the middle of an atomic rename: snapshot the persistent image
  // first, record the persist epochs, then build an image where only the
  // FIRST fence's lines reached PM.
  std::vector<uint8_t> crash_image = device.PersistentImage();
  device.BeginEpochRecording();
  (void)fs->Rename(ctx, "/ledger", "/ledger.v2");
  auto epochs = device.TakeEpochLog();
  std::printf("rename generated %zu persist epochs\n", epochs.size());
  // Re-apply only epoch 0 (the transaction's START + first undo records).
  for (const auto& line : epochs.front().persisted) {
    std::copy(line.data, line.data + common::kCacheline,
              crash_image.begin() + static_cast<long>(line.line_offset));
  }

  // "Reboot": fresh device contents, fresh filesystem object, Mount runs the
  // journal scan + rollback + inode-table rebuild.
  pmem::PmemDevice crash_device(32 * kMiB);
  crash_device.RestoreImage(crash_image);
  auto recovered_fs = FreshFs(&crash_device);
  common::ExecContext rctx;
  if (!recovered_fs->Mount(rctx).ok()) {
    std::printf("RECOVERY FAILED\n");
    return 1;
  }
  auto post = crashmk::Oracle::Capture(rctx, *recovered_fs);
  std::printf("after crash+recovery: %zu entries visible\n", post.entries().size());
  if (post == pre) {
    std::printf("state == pre-rename state: the interrupted rename rolled back cleanly\n");
  } else {
    std::printf("state:\n%s", post.DiffAgainst(pre).c_str());
  }

  // The file is intact either way.
  auto st = recovered_fs->Stat(rctx, "/ledger");
  auto st2 = recovered_fs->Stat(rctx, "/ledger.v2");
  std::printf("/ledger %s, /ledger.v2 %s\n", st.ok() ? "exists" : "absent",
              st2.ok() ? "exists" : "absent");
  std::printf("recovery took %.2f ms of simulated time\n",
              static_cast<double>(recovered_fs->last_mount_ns()) / 1e6);
  return 0;
}
