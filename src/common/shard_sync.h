// Host-parallel execution primitives shared by the ParallelRunner (src/wload)
// and the filesystems that support sharded execution.
//
// Two modes of host parallelism exist (src/wload/parallel_runner.h):
//
//  * Lockstep: worker threads take turns in the exact scalar discrete-event
//    order. Coordination is the LockstepGate below — each worker publishes
//    the packed (clock, tid) key of its next runnable simulated thread and
//    only the worker holding the globally smallest key executes. The
//    release/acquire pair on the key slots carries the happens-before edge
//    from one op's side effects to the next op's reads, so arbitrary shared
//    state (a global journal, shared obs sinks) stays race-free without any
//    internal locking.
//
//  * Sharded: workers free-run over disjoint simulated-thread shards. This is
//    only bit-identical to the scalar schedule under the shard-purity
//    contract (per-thread namespace subtrees, per-CPU journals/allocator
//    pools, order-insensitive global resources — see DESIGN.md). Code paths
//    that BREAK the contract at runtime (allocator cross-pool steals,
//    inode-region exhaustion) report through the HazardSink so callers can
//    detect that determinism is no longer guaranteed instead of silently
//    diverging.
#ifndef SRC_COMMON_SHARD_SYNC_H_
#define SRC_COMMON_SHARD_SYNC_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace common {

// Total-order key for one simulated thread's next operation: the scalar
// SimRunner picks the smallest clock, breaking ties by lowest tid. Packing
// the tid into the low 16 bits makes that order a single integer compare.
// Clocks are simulated nanoseconds; 48 bits ≈ 3.2 simulated days, far past
// any workload here.
inline uint64_t PackScheduleKey(uint64_t clock_ns, uint32_t tid) {
  return (clock_ns << 16) | (tid & 0xffff);
}
inline constexpr uint64_t kScheduleKeyDone = ~0ull;

// Counts shard-purity violations observed during a sharded parallel run.
// Relaxed ordering: the count is a post-run diagnostic, never a
// synchronization point.
class HazardSink {
 public:
  void Note(const char* what) {
    count_.fetch_add(1, std::memory_order_relaxed);
    (void)what;
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
};

// The lockstep turnstile. One published key slot per worker; a worker may
// execute only while its key is the strict global minimum (keys are unique:
// the tid low bits disambiguate equal clocks). A worker that finishes its
// shard publishes kScheduleKeyDone and drops out.
class LockstepGate {
 public:
  explicit LockstepGate(uint32_t workers) : slots_(workers) {
    for (auto& s : slots_) {
      s.key.store(0, std::memory_order_relaxed);
    }
  }

  // Publishes worker `w`'s next key. Release order: every side effect of the
  // op the worker just executed is visible to whichever worker observes this
  // new key and takes the baton.
  void Publish(uint32_t w, uint64_t key) {
    slots_[w].key.store(key, std::memory_order_release);
  }

  // Spins until worker `w`'s published key is the global minimum. Acquire
  // loads pair with the Publish above. Returns false if `key` is
  // kScheduleKeyDone (nothing left to run).
  bool AwaitTurn(uint32_t w, uint64_t key) {
    if (key == kScheduleKeyDone) {
      return false;
    }
    while (true) {
      bool min = true;
      for (uint32_t i = 0; i < slots_.size(); i++) {
        if (i == w) {
          continue;
        }
        if (slots_[i].key.load(std::memory_order_acquire) < key) {
          min = false;
          break;
        }
      }
      if (min) {
        return true;
      }
      std::this_thread::yield();
    }
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> key{0};
  };
  std::vector<Slot> slots_;
};

}  // namespace common

#endif  // SRC_COMMON_SHARD_SYNC_H_
