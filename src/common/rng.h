// Deterministic random number generation for workloads and aging.
// xoshiro256** core plus uniform/Zipf helpers. Not thread-safe; use one per thread.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace common {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi].
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p);

 private:
  uint64_t state_[4];
};

// Zipfian distribution over [0, n) with parameter theta (YCSB-style, with
// scrambling available through ScrambledNext for hot keys spread over the space).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();
  uint64_t ScrambledNext();

  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t count) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Rng rng_;
};

// Samples indexes into a discrete weight table; used by aging profiles.
class DiscreteSampler {
 public:
  DiscreteSampler(std::vector<double> weights, uint64_t seed);

  size_t Next();

 private:
  std::vector<double> cumulative_;
  Rng rng_;
};

}  // namespace common

#endif  // SRC_COMMON_RNG_H_
