// ProfileZone: scoped layer-attribution zone, plus profiled-acquire helpers
// for the non-SimMutex serialization points (SharedResource, ResourceClock).
//
// Lives apart from prof.h because it needs the complete ExecContext (prof.h
// is included BY exec_context.h). A zone only reads the simulated clock; it
// never advances it, so wrapping any code in a zone cannot change modeled
// outputs. Exclusive-time accounting: when a zone closes, it records
// (span - time covered by closed child zones) against its layer, and adds its
// full span to the parent's child time — so nested zones never double-count
// and the per-layer buckets sum to the covered portion of the op.
#ifndef SRC_COMMON_PROF_ZONE_H_
#define SRC_COMMON_PROF_ZONE_H_

#include <cstdint>
#include <string_view>

#include "src/common/exec_context.h"
#include "src/common/prof.h"
#include "src/common/sim_clock.h"

namespace common {

class ProfileZone {
 public:
  ProfileZone(ExecContext& ctx, ProfLayer layer) : ctx_(ctx), layer_(layer) {
    if constexpr (kProfilerEnabled) {
      ZoneState& zones = ctx_.zones;
      if (zones.active && zones.depth < ZoneState::kMaxDepth) {
        zones.frames[zones.depth] = ZoneFrame{ctx_.clock.NowNs(), 0};
        zones.depth++;
        zones.path = (zones.path << 3) | (static_cast<uint32_t>(layer_) + 1);
        open_ = true;
      }
    }
  }

  ProfileZone(const ProfileZone&) = delete;
  ProfileZone& operator=(const ProfileZone&) = delete;

  // Idempotent explicit close, for callers that must flush before other work
  // in a destructor runs (OpScope ends its root zone before flushing the op).
  void End() {
    if constexpr (kProfilerEnabled) {
      if (!open_) {
        return;
      }
      open_ = false;
      ZoneState& zones = ctx_.zones;
      if (zones.depth <= 0) {
        return;  // stack was reset underneath us (context Reset mid-scope)
      }
      zones.depth--;
      const ZoneFrame& frame = zones.frames[zones.depth];
      const uint64_t span = ctx_.clock.NowNs() - frame.enter_ns;
      const uint64_t exclusive = span - (frame.child_ns < span ? frame.child_ns : span);
      zones.layer_ns[static_cast<size_t>(layer_)] += exclusive;
      if (ctx_.profiler != nullptr && exclusive != 0) {
        ctx_.profiler->OnZoneExit(zones.path, layer_, exclusive);
      }
      zones.path >>= 3;
      if (zones.depth > 0) {
        zones.frames[zones.depth - 1].child_ns += span;
      }
    }
  }

  ~ProfileZone() { End(); }

 private:
  ExecContext& ctx_;
  ProfLayer layer_;
  bool open_ = false;
};

// SharedResource acquisition that reports the modeled wait/hold to the
// attached profiler as a lock event on `site`. Bit-identical to calling
// resource.Acquire directly (same single Acquire on the same clock).
inline uint64_t ProfiledAcquire(ExecContext& ctx, SharedResource& resource,
                                std::string_view site, LockSiteRef& ref, uint64_t hold_ns) {
  const uint64_t waited = resource.Acquire(ctx.clock, hold_ns);
  if constexpr (kProfilerEnabled) {
    if (ctx.profiler != nullptr) {
      ref.Record(ctx.profiler, ctx, site, waited, hold_ns);
    }
  }
  return waited;
}

// ResourceClock (FIFO capacity-1 server) variant of the same.
inline uint64_t ProfiledAcquire(ExecContext& ctx, ResourceClock& resource,
                                std::string_view site, LockSiteRef& ref, uint64_t hold_ns) {
  const uint64_t waited = resource.Acquire(ctx.clock, hold_ns);
  if constexpr (kProfilerEnabled) {
    if (ctx.profiler != nullptr) {
      ref.Record(ctx.profiler, ctx, site, waited, hold_ns);
    }
  }
  return waited;
}

}  // namespace common

#endif  // SRC_COMMON_PROF_ZONE_H_
