// Per-thread execution context threaded through every simulated operation.
// Carries the logical CPU the thread runs on (filesystems key per-CPU
// structures off it), the simulated clock, event counters, and optional
// observability sinks (span traces + the metrics registry from src/obs).
#ifndef SRC_COMMON_EXEC_CONTEXT_H_
#define SRC_COMMON_EXEC_CONTEXT_H_

#include <cstdint>

#include "src/common/perf_counters.h"
#include "src/common/sim_clock.h"

// Observability sinks live in src/obs (which depends on src/common); the
// context only carries non-owning pointers, so forward declarations keep the
// dependency one-way.
namespace obs {
class TraceBuffer;
class MetricsRegistry;
}  // namespace obs

namespace common {

struct ExecContext {
  explicit ExecContext(uint32_t cpu_id = 0, uint32_t numa_id = 0)
      : cpu(cpu_id), numa_node(numa_id) {}

  uint32_t cpu = 0;
  uint32_t numa_node = 0;
  // Process identifier; the NUMA policy in WineFS assigns a home node per process.
  uint32_t pid = 0;
  SimClock clock;
  PerfCounters counters;
  // Optional sinks; null means "not collecting". Not owned.
  obs::TraceBuffer* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  void Reset() {
    clock.Reset();
    counters.Reset();
  }
};

}  // namespace common

#endif  // SRC_COMMON_EXEC_CONTEXT_H_
