// Per-thread execution context threaded through every simulated operation.
// Carries the logical CPU the thread runs on (filesystems key per-CPU
// structures off it), the simulated clock, event counters, and optional
// observability sinks (span traces, the metrics registry, and the gauge
// time-series sampler from src/obs).
#ifndef SRC_COMMON_EXEC_CONTEXT_H_
#define SRC_COMMON_EXEC_CONTEXT_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/common/perf_counters.h"
#include "src/common/prof.h"
#include "src/common/shard_sync.h"
#include "src/common/sim_clock.h"

// Observability sinks live in src/obs (which depends on src/common); the
// context only carries non-owning pointers, so forward declarations keep the
// dependency one-way.
namespace obs {
class TraceBuffer;
class MetricsRegistry;
class TimeSeriesSampler;
}  // namespace obs

namespace common {

// Implemented by the src/obs sinks that can be attached to an ExecContext, so
// Reset() can clear a context's attached sinks without common depending on
// obs. ResetSamples() drops everything the sink has accumulated.
class ObsSink {
 public:
  virtual ~ObsSink() = default;
  virtual void ResetSamples() = 0;
};

struct ExecContext {
  explicit ExecContext(uint32_t cpu_id = 0, uint32_t numa_id = 0)
      : cpu(cpu_id), numa_node(numa_id) {}

  uint32_t cpu = 0;
  uint32_t numa_node = 0;
  // Process identifier; the NUMA policy in WineFS assigns a home node per process.
  uint32_t pid = 0;
  SimClock clock;
  PerfCounters counters;
  // Optional sinks; null means "not collecting". Not owned. Attach through
  // the Attach* helpers below so Reset() can clear them; the fields stay
  // public for the null-checked fast paths in OpScope/ScopedSpan.
  obs::TraceBuffer* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::TimeSeriesSampler* sampler = nullptr;
  // Contention / latency-attribution profiler (obs::Profiler through the
  // abstract hook). Observation-only: attaching it never changes the modeled
  // clock or counters.
  ProfilerHook* profiler = nullptr;
  // Zone-stack state for the profiler, embedded here so ProfileZone push/pop
  // is a few plain field writes (no indirection on the unattached path).
  ZoneState zones;
  // Shard-purity hazard sink for host-parallel sharded runs (null outside
  // them). Filesystems report contract violations — cross-pool allocator
  // steals, inode-region exhaustion — here instead of silently letting the
  // modeled outputs become schedule-dependent. Not owned.
  HazardSink* hazards = nullptr;

  // Typed attach helpers that mirror the sink into the ObsSink slot Reset()
  // clears through. Templates so the derived-to-ObsSink conversion happens at
  // call sites, where the obs types are complete.
  template <typename Trace>
  void AttachTrace(Trace* sink) {
    trace = sink;
    sinks_[0] = sink;
  }
  void AttachTrace(std::nullptr_t) {
    trace = nullptr;
    sinks_[0] = nullptr;
  }
  template <typename Metrics>
  void AttachMetrics(Metrics* sink) {
    metrics = sink;
    sinks_[1] = sink;
  }
  void AttachMetrics(std::nullptr_t) {
    metrics = nullptr;
    sinks_[1] = nullptr;
  }
  template <typename Sampler>
  void AttachSampler(Sampler* sink) {
    sampler = sink;
    sinks_[2] = sink;
  }
  void AttachSampler(std::nullptr_t) {
    sampler = nullptr;
    sinks_[2] = nullptr;
  }
  template <typename Profiler>
  void AttachProfiler(Profiler* sink) {
    profiler = sink;
    sinks_[3] = sink;
    zones = ZoneState{};
    zones.sample_mask = sink->ZoneSampleMask();
    // First op after attach is sampled; ZoneState::Tick decimates from there.
    zones.active = true;
  }
  void AttachProfiler(std::nullptr_t) {
    profiler = nullptr;
    sinks_[3] = nullptr;
    zones = ZoneState{};
  }

  // Full reset: clock, counters, AND every attached sink's accumulated
  // samples — so a context reused across runs (one filesystem after another
  // in a bench loop) can never bleed one run's samples into the next report.
  void Reset() {
    clock.Reset();
    counters.Reset();
    const uint32_t sample_mask = zones.sample_mask;
    zones = ZoneState{};
    zones.sample_mask = sample_mask;
    zones.active = profiler != nullptr;
    for (ObsSink* sink : sinks_) {
      if (sink != nullptr) {
        sink->ResetSamples();
      }
    }
  }

 private:
  std::array<ObsSink*, 4> sinks_{};
};

}  // namespace common

#endif  // SRC_COMMON_EXEC_CONTEXT_H_
