#include "src/common/status.h"

#include <cerrno>

namespace common {

std::string_view Status::message() const {
  switch (code_) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kNotFound:
      return "not found";
    case ErrorCode::kExists:
      return "already exists";
    case ErrorCode::kNoSpace:
      return "no space left on device";
    case ErrorCode::kInvalidArgument:
      return "invalid argument";
    case ErrorCode::kNotDir:
      return "not a directory";
    case ErrorCode::kIsDir:
      return "is a directory";
    case ErrorCode::kNotEmpty:
      return "directory not empty";
    case ErrorCode::kBadFd:
      return "bad file descriptor";
    case ErrorCode::kIoError:
      return "I/O error";
    case ErrorCode::kNoData:
      return "no data available";
    case ErrorCode::kBusy:
      return "resource busy";
    case ErrorCode::kNotSupported:
      return "operation not supported";
    case ErrorCode::kCorrupt:
      return "on-PM structure corrupt";
    case ErrorCode::kInternal:
      return "internal invariant violation";
  }
  return "unknown";
}

int ErrnoOf(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return 0;
    case ErrorCode::kNotFound:
      return ENOENT;
    case ErrorCode::kExists:
      return EEXIST;
    case ErrorCode::kNoSpace:
      return ENOSPC;
    case ErrorCode::kInvalidArgument:
      return EINVAL;
    case ErrorCode::kNotDir:
      return ENOTDIR;
    case ErrorCode::kIsDir:
      return EISDIR;
    case ErrorCode::kNotEmpty:
      return ENOTEMPTY;
    case ErrorCode::kBadFd:
      return EBADF;
    case ErrorCode::kIoError:
      return EIO;
    case ErrorCode::kNoData:
      return ENODATA;
    case ErrorCode::kBusy:
      return EBUSY;
    case ErrorCode::kNotSupported:
      return EOPNOTSUPP;
    case ErrorCode::kCorrupt:
    case ErrorCode::kInternal:
      return EIO;
  }
  return EIO;
}

}  // namespace common
