#include "src/common/status.h"

namespace common {

std::string_view Status::message() const {
  switch (code_) {
    case ErrCode::kOk:
      return "ok";
    case ErrCode::kNotFound:
      return "not found";
    case ErrCode::kExists:
      return "already exists";
    case ErrCode::kNoSpace:
      return "no space left on device";
    case ErrCode::kInvalidArgument:
      return "invalid argument";
    case ErrCode::kNotDir:
      return "not a directory";
    case ErrCode::kIsDir:
      return "is a directory";
    case ErrCode::kNotEmpty:
      return "directory not empty";
    case ErrCode::kBadFd:
      return "bad file descriptor";
    case ErrCode::kIoError:
      return "I/O error";
    case ErrCode::kNoData:
      return "no data available";
    case ErrCode::kBusy:
      return "resource busy";
    case ErrCode::kNotSupported:
      return "operation not supported";
    case ErrCode::kCorrupt:
      return "on-PM structure corrupt";
    case ErrCode::kInternal:
      return "internal invariant violation";
  }
  return "unknown";
}

}  // namespace common
