// SimMutex: a mutex whose contention is modeled in simulated time.
//
// Real std::mutex serializes the host threads (data-race safety). For
// simulated time, the mutex keeps a ledger of recent busy intervals
// [lock_time, unlock_time) on the holders' simulated clocks. A simulated
// thread acquiring the lock is delayed only if its own clock falls inside a
// recorded busy interval — then it advances to that interval's end (chaining
// through back-to-back intervals). Threads whose simulated "now" misses every
// busy window proceed untouched, so lightly-held locks do not serialize
// timelines, while long holds (a stop-the-world journal commit) stall every
// concurrent timeline that lands in them.
#ifndef SRC_COMMON_SIM_MUTEX_H_
#define SRC_COMMON_SIM_MUTEX_H_

#include <array>
#include <cstdint>
#include <mutex>

#include "src/common/exec_context.h"

namespace common {

class SimMutex {
 public:
  SimMutex() = default;
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  void Lock(ExecContext& ctx) {
    mu_.lock();
    const uint64_t arrived = ctx.clock.NowNs();
    uint64_t now = arrived;
    // Chase the busy intervals: waiting inside one may land us in the next.
    bool moved = true;
    int guard = 0;
    while (moved && guard++ < 2 * kRingSize) {
      moved = false;
      for (const Interval& interval : ring_) {
        if (now >= interval.start && now < interval.end) {
          now = interval.end;
          moved = true;
        }
      }
    }
    wait_ns_ += now - arrived;
    ctx.clock.AdvanceTo(now);
    cs_enter_ns_ = ctx.clock.NowNs();
  }

  void Unlock(ExecContext& ctx) {
    const uint64_t end = ctx.clock.NowNs();
    if (end > cs_enter_ns_) {
      ring_[head_] = Interval{cs_enter_ns_, end};
      head_ = (head_ + 1) % kRingSize;
    }
    mu_.unlock();
  }

  uint64_t total_wait_ns() const { return wait_ns_; }

  class Guard {
   public:
    Guard(SimMutex& mutex, ExecContext& ctx) : mutex_(mutex), ctx_(ctx) { mutex_.Lock(ctx_); }
    ~Guard() { mutex_.Unlock(ctx_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    SimMutex& mutex_;
    ExecContext& ctx_;
  };

 private:
  struct Interval {
    uint64_t start = 0;
    uint64_t end = 0;
  };
  static constexpr int kRingSize = 64;

  std::mutex mu_;
  // All fields below are guarded by mu_.
  std::array<Interval, kRingSize> ring_{};
  size_t head_ = 0;
  uint64_t cs_enter_ns_ = 0;
  uint64_t wait_ns_ = 0;
};

}  // namespace common

#endif  // SRC_COMMON_SIM_MUTEX_H_
