// SimMutex: a mutex whose contention is modeled in simulated time.
//
// Real std::mutex serializes the host threads (data-race safety). For
// simulated time, the mutex keeps a ledger of recent busy intervals
// [lock_time, unlock_time) on the holders' simulated clocks. A simulated
// thread acquiring the lock is delayed only if its own clock falls inside a
// recorded busy interval — then it advances to that interval's end (chaining
// through back-to-back intervals). Threads whose simulated "now" misses every
// busy window proceed untouched, so lightly-held locks do not serialize
// timelines, while long holds (a stop-the-world journal commit) stall every
// concurrent timeline that lands in them.
//
// A mutex can carry a site name ("winefs.journal.cpu3", "ext4.jbd2"); when a
// profiler is attached to the acquiring context, every acquire/release pair
// is reported to it as a named lock event with the modeled wait and hold, so
// contention reports attribute queueing to specific locks. The hook is
// observation-only: it fires after the modeled times are already final.
#ifndef SRC_COMMON_SIM_MUTEX_H_
#define SRC_COMMON_SIM_MUTEX_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>

#include "src/common/exec_context.h"
#include "src/common/sim_clock.h"
#include "src/common/prof.h"

namespace common {

class SimMutex {
 public:
  SimMutex() = default;
  explicit SimMutex(std::string site) : site_(std::move(site)) {}
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  // Names (or renames) the lock site. Setup-time only (e.g. per-CPU pool
  // locks named after geometry is chosen); invalidates any cached handle.
  void set_site(std::string site) {
    std::lock_guard<SpinMutex> guard(mu_);
    site_ = std::move(site);
    site_owner_ = nullptr;
  }

  void Lock(ExecContext& ctx) {
    mu_.lock();
    const uint64_t arrived = ctx.clock.NowNs();
    uint64_t now = arrived;
    // Chase the busy intervals: waiting inside one may land us in the next.
    bool moved = true;
    int guard = 0;
    while (moved && guard++ < 2 * kRingSize) {
      moved = false;
      for (const Interval& interval : ring_) {
        if (now >= interval.start && now < interval.end) {
          now = interval.end;
          moved = true;
        }
      }
    }
    wait_ns_ += now - arrived;
    last_wait_ns_ = now - arrived;
    ctx.clock.AdvanceTo(now);
    cs_enter_ns_ = ctx.clock.NowNs();
  }

  void Unlock(ExecContext& ctx) {
    const uint64_t end = ctx.clock.NowNs();
    if (end > cs_enter_ns_) {
      ring_[head_] = Interval{cs_enter_ns_, end};
      head_ = (head_ + 1) % kRingSize;
    }
    if constexpr (kProfilerEnabled) {
      if (ctx.profiler != nullptr) {
        // Resolve-once per attached profiler; mu_ is still held, so the
        // cached triple can't race with other acquirers.
        if (site_owner_ != ctx.profiler) {
          site_owner_ = ctx.profiler;
          site_handle_ = ctx.profiler->RegisterLockSite(
              site_.empty() ? std::string_view("lock.unnamed") : std::string_view(site_));
          site_cell_ = ctx.profiler->LockSiteCellFor(site_handle_);
        }
        RecordLockRelease(ctx.profiler, ctx, site_cell_, site_handle_, last_wait_ns_,
                          end - cs_enter_ns_);
      }
    }
    mu_.unlock();
  }

  uint64_t total_wait_ns() const {
    std::lock_guard<SpinMutex> guard(mu_);
    return wait_ns_;
  }

  // Clears the accumulated wait so back-to-back bench phases sharing a bed
  // don't bleed wait time into each other (ObsSink-reset companion; the
  // attached profiler's per-site aggregates reset through ExecContext::Reset).
  void ResetWaitStats() {
    std::lock_guard<SpinMutex> guard(mu_);
    wait_ns_ = 0;
    last_wait_ns_ = 0;
  }

  const std::string& site() const { return site_; }

  class Guard {
   public:
    Guard(SimMutex& mutex, ExecContext& ctx) : mutex_(mutex), ctx_(ctx) { mutex_.Lock(ctx_); }
    ~Guard() { mutex_.Unlock(ctx_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    SimMutex& mutex_;
    ExecContext& ctx_;
  };

 private:
  struct Interval {
    uint64_t start = 0;
    uint64_t end = 0;
  };
  static constexpr int kRingSize = 64;

  // Host lock guarding the ledger AND the caller's modeled critical section
  // (it is held from Lock() to Unlock(), so the protected data needs no other
  // host synchronization). A spin lock: under host-parallel sharded execution
  // every per-CPU journal/pool site is taken at op rate, and the critical
  // sections are sub-microsecond host work — a futex round trip costs more.
  mutable SpinMutex mu_;
  // All fields below are guarded by mu_.
  std::string site_;
  std::array<Interval, kRingSize> ring_{};
  size_t head_ = 0;
  uint64_t cs_enter_ns_ = 0;
  uint64_t wait_ns_ = 0;
  uint64_t last_wait_ns_ = 0;
  // Cached site registration, valid only for this profiler instance.
  ProfilerHook* site_owner_ = nullptr;
  uint32_t site_handle_ = 0;
  LockSiteCell* site_cell_ = nullptr;
};

}  // namespace common

#endif  // SRC_COMMON_SIM_MUTEX_H_
