// Size and layout constants shared by the PM device, MMU simulator, and filesystems.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>

namespace common {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// Filesystem block: 4 KiB base page.
inline constexpr uint64_t kBlockSize = 4 * kKiB;
// Hugepage: 2 MiB, i.e. 512 blocks.
inline constexpr uint64_t kHugepageSize = 2 * kMiB;
inline constexpr uint64_t kBlocksPerHugepage = kHugepageSize / kBlockSize;
// Cacheline granularity of PM accesses and journal entries.
inline constexpr uint64_t kCacheline = 64;

inline constexpr uint64_t BytesToBlocks(uint64_t bytes) {
  return (bytes + kBlockSize - 1) / kBlockSize;
}

inline constexpr uint64_t RoundUp(uint64_t value, uint64_t align) {
  return (value + align - 1) / align * align;
}

inline constexpr uint64_t RoundDown(uint64_t value, uint64_t align) {
  return value / align * align;
}

inline constexpr bool IsAligned(uint64_t value, uint64_t align) {
  return value % align == 0;
}

}  // namespace common

#endif  // SRC_COMMON_UNITS_H_
