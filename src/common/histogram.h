// Log-bucketed latency histogram for CDF figures (Fig 4, Fig 8) and summaries.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace common {

// Records nanosecond samples in power-of-~1.04 buckets; supports percentile
// queries and CDF dumps without retaining every sample.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(uint64_t nanos);
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  double MeanNanos() const;
  uint64_t Percentile(double p) const;  // p in (0, 100]
  uint64_t MedianNanos() const { return Percentile(50.0); }
  // Exact extremes of the recorded samples (no bucket rounding); 0 when empty.
  uint64_t MinNanos() const { return min_; }
  uint64_t MaxNanos() const { return max_; }

  // Emits "latency_ns cumulative_fraction" rows, one per non-empty bucket.
  std::string CdfRows() const;

  void Reset();

 private:
  static size_t BucketFor(uint64_t nanos);
  static uint64_t BucketUpperBound(size_t bucket);

  static constexpr size_t kNumBuckets = 512;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace common

#endif  // SRC_COMMON_HISTOGRAM_H_
