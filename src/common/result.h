// Result<T>: Status or a value. Lightweight fit::result-style type.
#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace common {

template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}                       // NOLINT
  Result(Status status) : status_(status) { assert(!status.ok()); }   // NOLINT
  Result(ErrorCode code) : status_(code) { assert(code != ErrorCode::kOk); }  // NOLINT

  bool ok() const { return status_.ok(); }
  Status status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define ASSIGN_OR_RETURN(lhs, expr)          \
  auto COMMON_CONCAT_(result_, __LINE__) = (expr);     \
  if (!COMMON_CONCAT_(result_, __LINE__).ok()) {       \
    return COMMON_CONCAT_(result_, __LINE__).status(); \
  }                                          \
  lhs = std::move(COMMON_CONCAT_(result_, __LINE__).value())

#define COMMON_CONCAT_INNER_(a, b) a##b
#define COMMON_CONCAT_(a, b) COMMON_CONCAT_INNER_(a, b)

}  // namespace common

#endif  // SRC_COMMON_RESULT_H_
