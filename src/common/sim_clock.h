// Deterministic simulated time.
//
// Every thread of a simulated workload owns a SimClock and charges modeled
// nanoseconds to it. Serialization points in the system (a global journal, a
// directory inode lock, PM write bandwidth) are ResourceClocks: acquiring one
// advances the caller to max(caller, resource) before the hold time is added,
// which reproduces queueing/contention deterministically without measuring
// host wall-clock time.
#ifndef SRC_COMMON_SIM_CLOCK_H_
#define SRC_COMMON_SIM_CLOCK_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <atomic>
#include <mutex>
#include <string>

namespace common {

class SimClock {
 public:
  SimClock() = default;

  void Advance(uint64_t nanos) { now_ns_ += nanos; }
  void AdvanceTo(uint64_t nanos) {
    if (nanos > now_ns_) {
      now_ns_ = nanos;
    }
  }
  uint64_t NowNs() const { return now_ns_; }
  void Reset() { now_ns_ = 0; }
  // Direct adjustment; used by the mount path to model parallel recovery
  // (work measured on one context, then divided across scanner threads).
  void SetNs(uint64_t nanos) { now_ns_ = nanos; }

 private:
  uint64_t now_ns_ = 0;
};

// A shared, serializing resource. Threads that Acquire() it queue behind one
// another in simulated time. Thread-safe.
class ResourceClock {
 public:
  explicit ResourceClock(std::string name) : name_(std::move(name)) {}

  // Blocks (in simulated time) until the resource is free, holds it for
  // `hold_ns`, and advances `clock` past the hold. Returns the wait time that
  // was spent queueing (contention), for diagnostics.
  uint64_t Acquire(SimClock& clock, uint64_t hold_ns) {
    std::lock_guard<std::mutex> guard(mu_);
    const uint64_t start = clock.NowNs();
    clock.AdvanceTo(free_at_ns_);
    const uint64_t waited = clock.NowNs() - start;
    clock.Advance(hold_ns);
    free_at_ns_ = clock.NowNs();
    total_hold_ns_ += hold_ns;
    total_wait_ns_ += waited;
    acquisitions_++;
    return waited;
  }

  const std::string& name() const { return name_; }
  uint64_t total_wait_ns() const {
    std::lock_guard<std::mutex> guard(mu_);
    return total_wait_ns_;
  }
  uint64_t acquisitions() const {
    std::lock_guard<std::mutex> guard(mu_);
    return acquisitions_;
  }

  void Reset() {
    std::lock_guard<std::mutex> guard(mu_);
    free_at_ns_ = 0;
    total_hold_ns_ = 0;
    total_wait_ns_ = 0;
    acquisitions_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::string name_;
  uint64_t free_at_ns_ = 0;
  uint64_t total_hold_ns_ = 0;
  uint64_t total_wait_ns_ = 0;
  uint64_t acquisitions_ = 0;
};

// Pause-looped spinlock for critical sections of a few nanoseconds. The
// syscall spine takes SharedResource's lock on EVERY operation; a futex-based
// std::mutex round trip there costs more host time than the protected window
// arithmetic itself.
class SpinMutex {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// A shared server with capacity 1, accounted in fixed windows of simulated
// time: each window can service at most its own duration of work. The
// admission rule depends only on how much capacity the requester's OWN time
// window has left, so it is insensitive to the order simulated threads
// happen to execute in — a lagging thread is never delayed by work a leading
// thread performed in a later window, but demand exceeding a window's
// capacity spills into the next one (queueing).
class SharedResource {
 public:
  explicit SharedResource(std::string name) : name_(std::move(name)) {}

  uint64_t Acquire(SimClock& clock, uint64_t hold_ns) {
    std::lock_guard<SpinMutex> guard(mu_);
    uint64_t t = clock.NowNs();
    const uint64_t arrived = t;
    uint64_t remaining = hold_ns;
    while (remaining > 0) {
      const uint64_t bucket = t / kWindowNs;
      Window& win = ring_[bucket % kRingSize];
      if (win.index != bucket) {
        // (Re)claim the slot; capacity from evicted far-past windows is gone.
        win.index = bucket;
        win.consumed_ns = 0;
      }
      const uint64_t window_end = (bucket + 1) * kWindowNs;
      const uint64_t capacity_left = kWindowNs - win.consumed_ns;
      const uint64_t time_left = window_end - t;
      const uint64_t use = std::min({remaining, capacity_left, time_left});
      if (use == 0) {
        t = window_end;  // window's capacity pool drained: spill to the next
        continue;
      }
      win.consumed_ns += use;
      t += use;
      remaining -= use;
    }
    total_wait_ns_ += t - arrived - hold_ns;
    clock.AdvanceTo(t);
    return t - arrived - hold_ns;
  }

  uint64_t total_wait_ns() const {
    std::lock_guard<SpinMutex> guard(mu_);
    return total_wait_ns_;
  }

 private:
  static constexpr uint64_t kWindowNs = 20000;  // 20 us accounting windows
  static constexpr size_t kRingSize = 1024;

  struct Window {
    uint64_t index = ~0ull;
    uint64_t consumed_ns = 0;
  };

  mutable SpinMutex mu_;
  std::string name_;
  std::array<Window, kRingSize> ring_{};
  uint64_t total_wait_ns_ = 0;
};

}  // namespace common

#endif  // SRC_COMMON_SIM_CLOCK_H_
