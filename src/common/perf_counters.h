// Event counters accumulated by the simulators; the paper reports several of
// these directly (page faults in Table 2, TLB and LLC misses in §5.4).
//
// Counters are REGISTERED: every field must have an entry in kCounterFields,
// which drives Add/Reset, the obs::MetricsRegistry merge, and the BENCH_*.json
// counter dump generically. The static_assert below fails the build if a field
// is added to the struct without registering it, so a new counter can never be
// silently dropped from aggregation. Time breakdowns (the old fault_handling_ns
// / data_copy_ns fields) are no longer counters — they come from span traces
// (src/obs/trace.h).
#ifndef SRC_COMMON_PERF_COUNTERS_H_
#define SRC_COMMON_PERF_COUNTERS_H_

#include <cstddef>
#include <cstdint>
#include <iterator>

namespace common {

struct PerfCounters {
  // Virtual memory.
  uint64_t page_faults_4k = 0;
  uint64_t page_faults_2m = 0;
  uint64_t tlb_hits = 0;
  uint64_t tlb_l1_misses = 0;
  uint64_t tlb_l2_misses = 0;  // full walks
  uint64_t llc_hits = 0;
  uint64_t llc_misses = 0;

  // Persistent memory traffic.
  uint64_t pm_read_bytes = 0;
  uint64_t pm_write_bytes = 0;
  uint64_t clwb_count = 0;
  uint64_t fence_count = 0;
  uint64_t pm_latency_spikes = 0;  // injected transient slow accesses

  // Filesystem-level accounting.
  uint64_t syscall_count = 0;
  uint64_t fsync_count = 0;
  uint64_t journal_bytes = 0;   // metadata (and data-journal) bytes written twice
  uint64_t cow_bytes = 0;       // bytes relocated by copy-on-write / log-structuring
  uint64_t alloc_requests = 0;
  uint64_t aligned_allocs = 0;  // requests satisfied by 2MB-aligned extents

  uint64_t total_page_faults() const { return page_faults_4k + page_faults_2m; }

  inline void Add(const PerfCounters& o);
  void Reset() { *this = PerfCounters{}; }
};

// One registry entry: the counter's wire name and its struct member.
struct CounterField {
  const char* name;
  uint64_t PerfCounters::*member;
};

inline constexpr CounterField kCounterFields[] = {
    {"page_faults_4k", &PerfCounters::page_faults_4k},
    {"page_faults_2m", &PerfCounters::page_faults_2m},
    {"tlb_hits", &PerfCounters::tlb_hits},
    {"tlb_l1_misses", &PerfCounters::tlb_l1_misses},
    {"tlb_l2_misses", &PerfCounters::tlb_l2_misses},
    {"llc_hits", &PerfCounters::llc_hits},
    {"llc_misses", &PerfCounters::llc_misses},
    {"pm_read_bytes", &PerfCounters::pm_read_bytes},
    {"pm_write_bytes", &PerfCounters::pm_write_bytes},
    {"clwb_count", &PerfCounters::clwb_count},
    {"fence_count", &PerfCounters::fence_count},
    {"pm_latency_spikes", &PerfCounters::pm_latency_spikes},
    {"syscall_count", &PerfCounters::syscall_count},
    {"fsync_count", &PerfCounters::fsync_count},
    {"journal_bytes", &PerfCounters::journal_bytes},
    {"cow_bytes", &PerfCounters::cow_bytes},
    {"alloc_requests", &PerfCounters::alloc_requests},
    {"aligned_allocs", &PerfCounters::aligned_allocs},
};

inline constexpr size_t kNumCounterFields = std::size(kCounterFields);

// PerfCounters must be exactly its registered fields — adding a field without
// a kCounterFields entry (or vice versa) breaks this.
static_assert(sizeof(PerfCounters) == kNumCounterFields * sizeof(uint64_t),
              "every PerfCounters field must be registered in kCounterFields");

inline void PerfCounters::Add(const PerfCounters& o) {
  for (const CounterField& field : kCounterFields) {
    this->*field.member += o.*field.member;
  }
}

}  // namespace common

#endif  // SRC_COMMON_PERF_COUNTERS_H_
