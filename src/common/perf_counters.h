// Event counters accumulated by the simulators; the paper reports several of
// these directly (page faults in Table 2, TLB and LLC misses in §5.4).
#ifndef SRC_COMMON_PERF_COUNTERS_H_
#define SRC_COMMON_PERF_COUNTERS_H_

#include <cstdint>

namespace common {

struct PerfCounters {
  // Virtual memory.
  uint64_t page_faults_4k = 0;
  uint64_t page_faults_2m = 0;
  uint64_t tlb_hits = 0;
  uint64_t tlb_l1_misses = 0;
  uint64_t tlb_l2_misses = 0;  // full walks
  uint64_t llc_hits = 0;
  uint64_t llc_misses = 0;

  // Persistent memory traffic.
  uint64_t pm_read_bytes = 0;
  uint64_t pm_write_bytes = 0;
  uint64_t clwb_count = 0;
  uint64_t fence_count = 0;

  // Filesystem-level accounting.
  uint64_t syscall_count = 0;
  uint64_t fsync_count = 0;
  uint64_t journal_bytes = 0;   // metadata (and data-journal) bytes written twice
  uint64_t cow_bytes = 0;       // bytes relocated by copy-on-write / log-structuring
  uint64_t alloc_requests = 0;
  uint64_t aligned_allocs = 0;  // requests satisfied by 2MB-aligned extents

  // Time breakdown (ns) for Fig 2-style decomposition.
  uint64_t fault_handling_ns = 0;
  uint64_t data_copy_ns = 0;

  uint64_t total_page_faults() const { return page_faults_4k + page_faults_2m; }

  void Add(const PerfCounters& o) {
    page_faults_4k += o.page_faults_4k;
    page_faults_2m += o.page_faults_2m;
    tlb_hits += o.tlb_hits;
    tlb_l1_misses += o.tlb_l1_misses;
    tlb_l2_misses += o.tlb_l2_misses;
    llc_hits += o.llc_hits;
    llc_misses += o.llc_misses;
    pm_read_bytes += o.pm_read_bytes;
    pm_write_bytes += o.pm_write_bytes;
    clwb_count += o.clwb_count;
    fence_count += o.fence_count;
    syscall_count += o.syscall_count;
    fsync_count += o.fsync_count;
    journal_bytes += o.journal_bytes;
    cow_bytes += o.cow_bytes;
    alloc_requests += o.alloc_requests;
    aligned_allocs += o.aligned_allocs;
    fault_handling_ns += o.fault_handling_ns;
    data_copy_ns += o.data_copy_ns;
  }

  void Reset() { *this = PerfCounters{}; }
};

}  // namespace common

#endif  // SRC_COMMON_PERF_COUNTERS_H_
