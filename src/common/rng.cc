#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace common {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Fowler–Noll–Vo style scramble used by YCSB to spread hot keys.
uint64_t FnvHash64(uint64_t value) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; i++) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  return Next() % bound;
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  assert(n > 0);
  zetan_ = Zeta(n_);
  zeta2theta_ = Zeta(2);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfGenerator::Zeta(uint64_t count) const {
  double sum = 0;
  for (uint64_t i = 1; i <= count; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  return sum;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double value =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t result = static_cast<uint64_t>(value);
  return result >= n_ ? n_ - 1 : result;
}

uint64_t ZipfGenerator::ScrambledNext() { return FnvHash64(Next()) % n_; }

DiscreteSampler::DiscreteSampler(std::vector<double> weights, uint64_t seed)
    : rng_(seed) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) {
    total += w;
  }
  double running = 0;
  cumulative_.reserve(weights.size());
  for (double w : weights) {
    running += w / total;
    cumulative_.push_back(running);
  }
  cumulative_.back() = 1.0;
}

size_t DiscreteSampler::Next() {
  const double u = rng_.NextDouble();
  for (size_t i = 0; i < cumulative_.size(); i++) {
    if (u < cumulative_[i]) {
      return i;
    }
  }
  return cumulative_.size() - 1;
}

}  // namespace common
