// Error-code based status type used on all filesystem and simulator paths.
// Modeled after errno/zx_status: cheap to pass by value, no exceptions.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <string_view>

namespace common {

// Typed error codes; each maps to a POSIX errno via ErrnoOf() so callers can
// assert on codes instead of string-matching messages.
enum class ErrorCode : int32_t {
  kOk = 0,
  kNotFound,        // ENOENT
  kExists,          // EEXIST
  kNoSpace,         // ENOSPC
  kInvalidArgument, // EINVAL
  kNotDir,          // ENOTDIR
  kIsDir,           // EISDIR
  kNotEmpty,        // ENOTEMPTY
  kBadFd,           // EBADF
  kIoError,         // EIO
  kNoData,          // ENODATA (xattr)
  kBusy,            // EBUSY
  kNotSupported,    // EOPNOTSUPP
  kCorrupt,         // on-PM structure failed validation (maps to EIO)
  kInternal,        // invariant violation inside the simulator (maps to EIO)
};

// The POSIX errno a real kernel would surface for this code; 0 for kOk.
int ErrnoOf(ErrorCode code);

// Value-type status. kOk is success; everything else carries a code.
class Status {
 public:
  constexpr Status() : code_(ErrorCode::kOk) {}
  constexpr explicit Status(ErrorCode code) : code_(code) {}

  static constexpr Status Ok() { return Status(); }

  constexpr bool ok() const { return code_ == ErrorCode::kOk; }
  constexpr ErrorCode code() const { return code_; }

  std::string_view message() const;
  // POSIX errno equivalent of code(); 0 when ok.
  int errno_value() const { return ErrnoOf(code_); }

  constexpr bool operator==(const Status& other) const = default;

 private:
  ErrorCode code_;
};

constexpr Status OkStatus() { return Status::Ok(); }
constexpr Status ErrorStatus(ErrorCode code) { return Status(code); }

// Propagates a non-ok Status out of the current function.
#define RETURN_IF_ERROR(expr)            \
  do {                                   \
    ::common::Status status_ = (expr);   \
    if (!status_.ok()) {                 \
      return status_;                    \
    }                                    \
  } while (0)

}  // namespace common

#endif  // SRC_COMMON_STATUS_H_
