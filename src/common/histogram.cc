#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace common {

namespace {
// Geometric bucket growth; bucket i covers [Base^i, Base^(i+1)).
constexpr double kBase = 1.04;
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

size_t LatencyHistogram::BucketFor(uint64_t nanos) {
  if (nanos <= 1) {
    return 0;
  }
  // Record() sits on the profiler's per-lock-event path, so the historical
  // log(n)/log(kBase) evaluation (two libm calls per sample) is replaced by a
  // table lookup: jump to the sample's power-of-two octave, then walk the
  // ~18 geometric buckets that octave spans. The boundaries are derived once
  // from the original formula itself, so bucket assignment is unchanged.
  struct Table {
    uint64_t lower[kNumBuckets];   // smallest value that maps to bucket i
    uint16_t octave_first[64];     // bucket containing 2^e
    Table() {
      const double inv = 1.0 / std::log(kBase);
      auto formula = [inv](uint64_t n) {
        return std::min(static_cast<size_t>(std::log(static_cast<double>(n)) * inv),
                        kNumBuckets - 1);
      };
      lower[0] = 0;
      for (size_t i = 1; i < kNumBuckets; i++) {
        uint64_t n = static_cast<uint64_t>(std::pow(kBase, static_cast<double>(i)));
        n = std::max<uint64_t>(n, 2);
        while (n > 2 && formula(n - 1) >= i) {
          n--;
        }
        while (formula(n) < i) {
          n++;
        }
        lower[i] = n;
      }
      for (int e = 0; e < 64; e++) {
        const uint64_t pow2 = uint64_t{1} << e;
        octave_first[e] = static_cast<uint16_t>(pow2 <= 1 ? 0 : formula(pow2));
      }
    }
  };
  static const Table t;
  const int octave = 63 - __builtin_clzll(nanos);
  size_t bucket = t.octave_first[octave];
  while (bucket + 1 < kNumBuckets && nanos >= t.lower[bucket + 1]) {
    bucket++;
  }
  return bucket;
}

uint64_t LatencyHistogram::BucketUpperBound(size_t bucket) {
  return static_cast<uint64_t>(std::pow(kBase, static_cast<double>(bucket + 1)));
}

void LatencyHistogram::Record(uint64_t nanos) {
  buckets_[BucketFor(nanos)]++;
  count_++;
  sum_ += static_cast<double>(nanos);
  if (count_ == 1) {
    min_ = max_ = nanos;
  } else {
    min_ = std::min(min_, nanos);
    max_ = std::max(max_, nanos);
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; i++) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::MeanNanos() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  uint64_t running = 0;
  for (size_t i = 0; i < kNumBuckets; i++) {
    running += buckets_[i];
    if (running >= target) {
      return BucketUpperBound(i);
    }
  }
  return max_;
}

std::string LatencyHistogram::CdfRows() const {
  std::ostringstream out;
  uint64_t running = 0;
  for (size_t i = 0; i < kNumBuckets; i++) {
    if (buckets_[i] == 0) {
      continue;
    }
    running += buckets_[i];
    out << BucketUpperBound(i) << " "
        << static_cast<double>(running) / static_cast<double>(count_) << "\n";
  }
  return out.str();
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = max_ = 0;
}

}  // namespace common
