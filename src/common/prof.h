// Latency-attribution profiler core types.
//
// The profiler decomposes each operation's modeled nanoseconds into exclusive
// per-layer buckets (VFS / fscore / journal / allocator / device / mmu) and
// aggregates per-lock-site wait/hold statistics, without ever touching the
// simulated clock or the PerfCounters — all modeled outputs are bit-identical
// with the profiler attached or not. Only the types that src/common needs to
// stay obs-free live here: the layer enum, the per-context zone stack state,
// and the abstract hook the obs-side Profiler implements (same one-way
// dependency pattern as ObsSink in exec_context.h).
#ifndef SRC_COMMON_PROF_H_
#define SRC_COMMON_PROF_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace common {

struct ExecContext;

// Compile-out switch: building with -DREPRO_PROFILER_DISABLED turns every
// ProfileZone and SimMutex/SharedResource hook into dead code the optimizer
// removes entirely (the Profiler object itself still links, it just never
// receives events).
#ifdef REPRO_PROFILER_DISABLED
inline constexpr bool kProfilerEnabled = false;
#else
inline constexpr bool kProfilerEnabled = true;
#endif

// Which layer of the VFS→journal→device stack a ProfileZone covers. Values
// are packed 3 bits per stack level into ZoneState::path, so there is room
// for at most 7 layers.
enum class ProfLayer : uint8_t {
  kVfs = 0,    // shared VFS path (syscall trap + vfs-shared serialization)
  kFsCore,     // filesystem chassis: namespace, fds, inode bookkeeping
  kJournal,    // consistency engine: undo journals, JBD2, per-inode logs
  kAllocator,  // block-allocator search + pool bookkeeping
  kDevice,     // PM device stores/loads/flushes/fences
  kMmu,        // mmap path: translation, faults, mapped copies
};
inline constexpr size_t kNumProfLayers = 6;

constexpr std::string_view ProfLayerName(ProfLayer layer) {
  switch (layer) {
    case ProfLayer::kVfs:
      return "vfs";
    case ProfLayer::kFsCore:
      return "fscore";
    case ProfLayer::kJournal:
      return "journal";
    case ProfLayer::kAllocator:
      return "allocator";
    case ProfLayer::kDevice:
      return "device";
    case ProfLayer::kMmu:
      return "mmu";
  }
  return "?";
}

// One open zone on a context's stack.
struct ZoneFrame {
  uint64_t enter_ns = 0;
  uint64_t child_ns = 0;  // simulated time spent in closed child zones
};

// Per-ExecContext zone-stack state, embedded directly in the context so the
// hot push/pop path is pointer-chase-free. `active` is the sticky sampling
// decision for the CURRENT op: the Profiler flips it at each op end for the
// next op, so attribution stays consistent even though the VFS charge zone
// opens before the OpScope that will flush it.
struct ZoneState {
  static constexpr int kMaxDepth = 10;  // 3 bits/level in the 32-bit path key

  ZoneFrame frames[kMaxDepth];
  int depth = 0;
  // Collapsed-stack key: 3 bits per open level, (layer + 1) each, root in the
  // high groups. Deeper-than-kMaxDepth zones merge into their parent.
  uint32_t path = 0;
  bool active = false;
  // Sampling cadence, mirrored from the attached profiler at attach time so
  // the per-op tick below stays inline (no virtual call on unsampled ops).
  uint32_t sample_mask = 0;
  uint64_t ops_seen = 0;
  // Exclusive simulated ns per layer accumulated by closed zones of the
  // current op; read-then-zeroed by the Profiler at op end.
  uint64_t layer_ns[kNumProfLayers] = {};

  // Per-op sampling tick, run at every op end: counts the finished op and
  // arms `active` for the next one. Returns whether the finished op was
  // sampled — only then does the caller pay the virtual EndOp flush.
  bool Tick() {
    const bool was_sampled = active;
    ops_seen++;
    active = ((ops_seen & sample_mask) == 0);
    return was_sampled;
  }
};

// Always-exact per-site lock counters, updated INLINE on every release (plain
// adds on a cached cell — no virtual call, no clock read). Everything beyond
// these totals (contended counts, max wait, histograms, the event ring) lives
// behind the virtual OnLockEvent, which RecordLockRelease below fires only
// for contended releases plus a deterministic 1-in-64 sample of uncontended
// ones. This split is what keeps always-on lock accounting within the bench
// overhead budget (the slow path costs a virtual call, a clock read, a
// histogram insert, and a ring push — tens of ns against a ~100ns/op gate).
struct LockSiteCell {
  uint64_t acquisitions = 0;
  uint64_t total_wait_ns = 0;
  uint64_t total_hold_ns = 0;
};

inline constexpr uint64_t kUncontendedLockSampleMask = 1023;  // 1-in-1024

// Implemented by obs::Profiler; src/common only ever calls through this
// interface so common never depends on obs. All hooks are observation-only:
// implementations must not advance clocks or touch counters (that is what
// keeps modeled outputs bit-identical with profiling on or off).
class ProfilerHook {
 public:
  virtual ~ProfilerHook() = default;

  // Returns a stable handle for a named lock site; the same name always maps
  // to the same handle, so per-CPU mutexes sharing one name aggregate.
  virtual uint32_t RegisterLockSite(std::string_view site) = 0;

  // The inline fast-path cell for a registered site. The pointer is stable
  // for the profiler's lifetime (sites are never deallocated).
  virtual LockSiteCell* LockSiteCellFor(uint32_t site) = 0;

  // Slow path of one completed acquire/release pair on a lock site —
  // contended or sampled-uncontended only; see RecordLockRelease. `wait_ns`
  // of simulated queueing followed by `hold_ns` of critical section, released
  // at the context's current simulated time. Fast-path totals are NOT
  // re-added here (the caller already bumped the cell).
  virtual void OnLockEvent(ExecContext& ctx, uint32_t site, uint64_t wait_ns,
                           uint64_t hold_ns) = 0;

  // A zone closed with `exclusive_ns` of simulated time not covered by child
  // zones; `path` is the packed stack key including this zone.
  virtual void OnZoneExit(uint32_t path, ProfLayer layer, uint64_t exclusive_ns) = 0;

  // Called at the end of a SAMPLED operation only (obs::OpScope runs the
  // inline ZoneState::Tick for every op and pays this virtual call just for
  // ops whose zones collected time): flushes the context's per-layer buckets
  // into the per-op aggregation.
  virtual void EndOp(ExecContext& ctx, std::string_view fs, std::string_view op) = 0;

  // The zone-sampling mask ((1 << shift) - 1) mirrored into ZoneState at
  // attach time; 0 samples every op.
  virtual uint32_t ZoneSampleMask() const = 0;
};

// Inline accounting for one completed acquire/release: exact totals on the
// cell, virtual OnLockEvent only when the release is contended or falls in
// the 1-in-64 uncontended sample (histograms + event ring).
inline void RecordLockRelease(ProfilerHook* hook, ExecContext& ctx, LockSiteCell* cell,
                              uint32_t handle, uint64_t wait_ns, uint64_t hold_ns) {
  cell->acquisitions++;
  cell->total_wait_ns += wait_ns;
  cell->total_hold_ns += hold_ns;
  if (wait_ns == 0 && (cell->acquisitions & kUncontendedLockSampleMask) != 0) {
    return;
  }
  hook->OnLockEvent(ctx, handle, wait_ns, hold_ns);
}

// Cached {profiler, handle, cell} triple for serialization points that are
// not SimMutex (SharedResource, ResourceClock). The handle/cell are only
// meaningful for the profiler that issued them; a different attached profiler
// re-resolves. Shared across host threads with no external lock, hence the
// atomics: a race just means both threads call RegisterLockSite, which is
// idempotent.
struct LockSiteRef {
  std::atomic<ProfilerHook*> owner{nullptr};
  std::atomic<uint32_t> handle{0};
  std::atomic<LockSiteCell*> cell{nullptr};

  // Records one release against `site`, resolving on first use per profiler.
  void Record(ProfilerHook* profiler, ExecContext& ctx, std::string_view site,
              uint64_t wait_ns, uint64_t hold_ns) {
    if (owner.load(std::memory_order_acquire) != profiler) {
      const uint32_t resolved = profiler->RegisterLockSite(site);
      handle.store(resolved, std::memory_order_relaxed);
      cell.store(profiler->LockSiteCellFor(resolved), std::memory_order_relaxed);
      owner.store(profiler, std::memory_order_release);
    }
    RecordLockRelease(profiler, ctx, cell.load(std::memory_order_relaxed),
                      handle.load(std::memory_order_relaxed), wait_ns, hold_ns);
  }
};

}  // namespace common

#endif  // SRC_COMMON_PROF_H_
