// Batched op vectors: the second-generation hot path through the syscall
// spine. A workload builds an OpBatch (a flat vector of typed op variants),
// hands it to FileSystem::ExecuteBatch, and reads one OpResult per op back.
//
// Semantics are defined by the scalar loop (FileSystem::ExecuteBatchScalar):
// ops execute in index order, each exactly as if the corresponding virtual
// had been called directly, and a failed op never aborts the batch. Native
// batched implementations (WineFS, the ext4-DAX family) are *host-speed*
// optimizations only — modeled clock, PerfCounters, and namespace state must
// stay bit-identical to the scalar loop (enforced by the batched-vs-scalar
// equivalence test in tests/).
//
// Intra-batch fd chaining: ops that act on a descriptor may reference the fd
// produced by an EARLIER kOpen op in the same batch via FdRef::From(index)
// instead of a raw fd. This lets a whole open→write→fsync→close sequence ride
// in one batch. Referencing a failed or non-open op yields kBadFd for the
// referencing op (charging nothing), identical in scalar and native paths.
#ifndef SRC_VFS_OP_BATCH_H_
#define SRC_VFS_OP_BATCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/vfs/file_system.h"

namespace vfs {

enum class OpKind : uint8_t {
  kOpen,
  kClose,
  kPread,
  kPwrite,
  kAppend,
  kFsync,
  kStat,
  kReadDir,
  kUnlink,
  kMkdir,
  kRmdir,
  kRename,
  kFtruncate,
  kFallocate,
};

inline const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kOpen: return "open";
    case OpKind::kClose: return "close";
    case OpKind::kPread: return "pread";
    case OpKind::kPwrite: return "pwrite";
    case OpKind::kAppend: return "append";
    case OpKind::kFsync: return "fsync";
    case OpKind::kStat: return "stat";
    case OpKind::kReadDir: return "readdir";
    case OpKind::kUnlink: return "unlink";
    case OpKind::kMkdir: return "mkdir";
    case OpKind::kRmdir: return "rmdir";
    case OpKind::kRename: return "rename";
    case OpKind::kFtruncate: return "ftruncate";
    case OpKind::kFallocate: return "fallocate";
  }
  return "?";
}

// A descriptor operand: either a raw fd (from an Open outside the batch) or a
// reference to the fd produced by batch op `from` (which must be an earlier
// kOpen in the same batch).
struct FdRef {
  int fd = -1;
  int32_t from = -1;

  FdRef(int raw_fd) : fd(raw_fd) {}  // NOLINT — implicit: raw fds read naturally
  static FdRef From(size_t open_index) {
    FdRef ref(-1);
    ref.from = static_cast<int32_t>(open_index);
    return ref;
  }
};

// One typed op variant. Kept as a single flat struct (kind + the union of
// operand fields) rather than a std::variant: batches are built in bulk on the
// hot path and a flat layout keeps construction branch-free and cache-dense.
struct Op {
  OpKind kind = OpKind::kStat;
  OpenFlags flags;       // kOpen
  int fd = -1;           // fd-based ops (raw descriptor)
  int32_t fd_from = -1;  // fd-based ops (intra-batch open reference)
  std::string path;      // path-based ops; rename source
  std::string path2;     // rename destination
  void* dst = nullptr;   // kPread destination buffer
  const void* src = nullptr;  // kPwrite/kAppend source buffer
  uint64_t len = 0;      // byte count (pread/pwrite/append/fallocate)
  uint64_t offset = 0;   // file offset (pread/pwrite/fallocate); ftruncate size
};

// One op's outcome. `value` carries the op's scalar payload: the fd for
// kOpen, bytes transferred for kPread/kPwrite (valid even on partial EIO
// failure, mirroring IoResult), and the append offset for kAppend.
struct OpResult {
  common::Status status;
  uint64_t value = 0;
  StatInfo stat;                  // kStat only
  std::vector<DirEntry> entries;  // kReadDir only

  bool ok() const { return status.ok(); }
};

class OpBatch {
 public:
  // Builders: each appends one op and returns its batch index (usable with
  // FdRef::From for later ops in the same batch).
  size_t Open(std::string path, OpenFlags flags) {
    Op op;
    op.kind = OpKind::kOpen;
    op.path = std::move(path);
    op.flags = flags;
    return Push(std::move(op));
  }
  size_t Close(FdRef fd) { return PushFd(OpKind::kClose, fd); }
  size_t Pread(FdRef fd, void* dst, uint64_t len, uint64_t offset) {
    Op op;
    op.kind = OpKind::kPread;
    SetFd(op, fd);
    op.dst = dst;
    op.len = len;
    op.offset = offset;
    return Push(std::move(op));
  }
  size_t Pwrite(FdRef fd, const void* src, uint64_t len, uint64_t offset) {
    Op op;
    op.kind = OpKind::kPwrite;
    SetFd(op, fd);
    op.src = src;
    op.len = len;
    op.offset = offset;
    return Push(std::move(op));
  }
  size_t Append(FdRef fd, const void* src, uint64_t len) {
    Op op;
    op.kind = OpKind::kAppend;
    SetFd(op, fd);
    op.src = src;
    op.len = len;
    return Push(std::move(op));
  }
  size_t Fsync(FdRef fd) { return PushFd(OpKind::kFsync, fd); }
  size_t Stat(std::string path) { return PushPath(OpKind::kStat, std::move(path)); }
  size_t ReadDir(std::string path) { return PushPath(OpKind::kReadDir, std::move(path)); }
  size_t Unlink(std::string path) { return PushPath(OpKind::kUnlink, std::move(path)); }
  size_t Mkdir(std::string path) { return PushPath(OpKind::kMkdir, std::move(path)); }
  size_t Rmdir(std::string path) { return PushPath(OpKind::kRmdir, std::move(path)); }
  size_t Rename(std::string from, std::string to) {
    Op op;
    op.kind = OpKind::kRename;
    op.path = std::move(from);
    op.path2 = std::move(to);
    return Push(std::move(op));
  }
  size_t Ftruncate(FdRef fd, uint64_t size) {
    Op op;
    op.kind = OpKind::kFtruncate;
    SetFd(op, fd);
    op.offset = size;
    return Push(std::move(op));
  }
  size_t Fallocate(FdRef fd, uint64_t offset, uint64_t len) {
    Op op;
    op.kind = OpKind::kFallocate;
    SetFd(op, fd);
    op.offset = offset;
    op.len = len;
    return Push(std::move(op));
  }

  const std::vector<Op>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  void Clear() { ops_.clear(); }
  void Reserve(size_t n) { ops_.reserve(n); }

 private:
  static void SetFd(Op& op, FdRef fd) {
    op.fd = fd.fd;
    op.fd_from = fd.from;
  }
  size_t Push(Op op) {
    ops_.push_back(std::move(op));
    return ops_.size() - 1;
  }
  size_t PushFd(OpKind kind, FdRef fd) {
    Op op;
    op.kind = kind;
    SetFd(op, fd);
    return Push(std::move(op));
  }
  size_t PushPath(OpKind kind, std::string path) {
    Op op;
    op.kind = kind;
    op.path = std::move(path);
    return Push(std::move(op));
  }

  std::vector<Op> ops_;
};

}  // namespace vfs

#endif  // SRC_VFS_OP_BATCH_H_
