// The filesystem interface every implementation (WineFS and the baselines)
// exposes, plus the POSIX-flavored types shared across them. Path-based and
// fd-based operations mirror the system calls the paper's workloads issue.
#ifndef SRC_VFS_FILE_SYSTEM_H_
#define SRC_VFS_FILE_SYSTEM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/gauges.h"
#include "src/vmem/mmap_engine.h"

namespace vfs {

using InodeNum = uint64_t;
inline constexpr InodeNum kRootIno = 1;

// open(2) flags as a typed bitmask. The default (no bits) is a plain
// read-write open of an existing file; kRdOnly *removes* write permission,
// mirroring O_RDONLY being the absence of O_WRONLY/O_RDWR.
struct OpenFlags {
  static constexpr uint32_t kCreate = 1u << 0;  // O_CREAT
  static constexpr uint32_t kExcl = 1u << 1;    // O_EXCL (with kCreate)
  static constexpr uint32_t kTrunc = 1u << 2;   // O_TRUNC
  static constexpr uint32_t kRdOnly = 1u << 3;  // O_RDONLY

  uint32_t bits = 0;

  constexpr OpenFlags() = default;
  constexpr OpenFlags(uint32_t flag_bits) : bits(flag_bits) {}  // NOLINT

  constexpr bool create() const { return (bits & kCreate) != 0; }
  constexpr bool exclusive() const { return (bits & kExcl) != 0; }
  constexpr bool truncate() const { return (bits & kTrunc) != 0; }
  constexpr bool write() const { return (bits & kRdOnly) == 0; }

  static constexpr OpenFlags ReadOnly() { return OpenFlags(kRdOnly); }
  static constexpr OpenFlags Create() { return OpenFlags(kCreate); }
  static constexpr OpenFlags CreateExcl() { return OpenFlags(kCreate | kExcl); }
};

// Result of a data-plane operation (pread/pwrite/append): the bytes
// transferred plus the error, if any. Unlike Result<uint64_t>, an IoResult can
// report PARTIAL progress the way POSIX does — a read that hit a poisoned
// block after N good bytes returns bytes()==N with status kIoError. For
// Append the value slot carries the start offset of the written range (the
// historical contract of Append's Result<uint64_t>).
class IoResult {
 public:
  IoResult(uint64_t bytes) : bytes_(bytes) {}                       // NOLINT
  IoResult(common::Status status) : status_(status) {}              // NOLINT
  IoResult(common::ErrorCode code) : status_(code) {}               // NOLINT
  IoResult(const common::Result<uint64_t>& result)                  // NOLINT
      : status_(result.ok() ? common::OkStatus() : result.status()),
        bytes_(result.ok() ? *result : 0) {}

  static IoResult Partial(uint64_t bytes, common::Status error) {
    IoResult out(error);
    out.bytes_ = bytes;
    return out;
  }

  bool ok() const { return status_.ok(); }
  common::Status status() const { return status_; }
  // Bytes transferred before the error (0 on a clean failure); valid even
  // when !ok() so callers can surface POSIX short reads.
  uint64_t bytes() const { return bytes_; }
  bool partial() const { return !status_.ok() && bytes_ > 0; }

  // Result<uint64_t>-compatible accessors so existing `*n` / ASSIGN_OR_RETURN
  // call sites keep working unchanged.
  uint64_t& value() { return bytes_; }
  const uint64_t& value() const { return bytes_; }
  uint64_t operator*() const { return bytes_; }

 private:
  common::Status status_;
  uint64_t bytes_ = 0;
};

struct StatInfo {
  InodeNum ino = 0;
  uint64_t size = 0;
  uint64_t blocks = 0;       // allocated 4 KiB blocks
  uint32_t nlink = 0;
  bool is_dir = false;
};

struct DirEntry {
  std::string name;
  InodeNum ino = 0;
  bool is_dir = false;
};

// Free-space introspection for the fragmentation experiments (Fig 3).
struct FreeSpaceInfo {
  uint64_t total_blocks = 0;
  uint64_t free_blocks = 0;
  // Number of free regions that are 2 MiB-aligned and >= 2 MiB contiguous,
  // i.e. hugepage-capable allocations still available.
  uint64_t free_aligned_extents = 0;
  uint64_t largest_free_extent_blocks = 0;

  double utilization() const {
    return total_blocks == 0
               ? 0.0
               : 1.0 - static_cast<double>(free_blocks) / static_cast<double>(total_blocks);
  }
  // Fraction of free space sitting in hugepage-capable regions.
  double AlignedFreeFraction() const {
    if (free_blocks == 0) {
      return 0.0;
    }
    return static_cast<double>(free_aligned_extents * common::kBlocksPerHugepage) /
           static_cast<double>(free_blocks);
  }
};

// How a filesystem may be driven by host-parallel workers (src/wload/
// parallel_runner.h). kLockstep: workers hand a baton around in exact scalar
// discrete-event order — always safe, exposes no host parallelism inside the
// FS (the honest model for global-journal designs, where jbd2-style commits
// serialize everything anyway). kSharded: per-CPU internal structures are
// host-safe under the shard-purity contract, so workers free-run over
// disjoint CPU shards and genuinely contend the per-CPU journals/allocators.
enum class ParallelPolicy {
  kLockstep,
  kSharded,
};

// Consistency guarantees, per §3.3.
enum class GuaranteeMode {
  kRelaxed,  // atomic+synchronous metadata only (ext4-DAX/xfs-DAX/PMFS class)
  kStrict,   // atomic+synchronous data AND metadata (NOVA/Strata/WineFS default)
};

// Batched op-vector surface (src/vfs/op_batch.h). Forward-declared so the
// virtual signatures below do not pull the batch types into every include of
// the interface; op_batch.h includes this header, not the other way around.
class OpBatch;
struct OpResult;

class FileSystem : public vmem::FaultHandler, public obs::GaugeProvider {
 public:
  ~FileSystem() override = default;

  virtual std::string_view Name() const = 0;
  virtual GuaranteeMode guarantee_mode() const = 0;
  // Host-parallel driving mode this implementation supports. Default is the
  // always-safe lockstep; per-CPU-journal designs (WineFS, NOVA) override.
  virtual ParallelPolicy parallel_policy() const { return ParallelPolicy::kLockstep; }

  // --- Lifecycle ---------------------------------------------------------
  virtual common::Status Mkfs(common::ExecContext& ctx) = 0;
  // Mounts, running crash recovery if the superblock is dirty.
  virtual common::Status Mount(common::ExecContext& ctx) = 0;
  // Clean unmount: persists DRAM indexes/free lists.
  virtual common::Status Unmount(common::ExecContext& ctx) = 0;

  // --- Namespace ---------------------------------------------------------
  virtual common::Result<int> Open(common::ExecContext& ctx, const std::string& path,
                                   OpenFlags flags) = 0;
  virtual common::Status Close(common::ExecContext& ctx, int fd) = 0;
  virtual common::Status Mkdir(common::ExecContext& ctx, const std::string& path) = 0;
  virtual common::Status Rmdir(common::ExecContext& ctx, const std::string& path) = 0;
  virtual common::Status Unlink(common::ExecContext& ctx, const std::string& path) = 0;
  virtual common::Status Rename(common::ExecContext& ctx, const std::string& from,
                                const std::string& to) = 0;
  virtual common::Result<StatInfo> Stat(common::ExecContext& ctx, const std::string& path) = 0;
  virtual common::Result<std::vector<DirEntry>> ReadDir(common::ExecContext& ctx,
                                                        const std::string& path) = 0;

  // --- Data --------------------------------------------------------------
  virtual IoResult Pread(common::ExecContext& ctx, int fd, void* dst, uint64_t len,
                         uint64_t offset) = 0;
  virtual IoResult Pwrite(common::ExecContext& ctx, int fd, const void* src, uint64_t len,
                          uint64_t offset) = 0;
  // Append at EOF; the IoResult value carries the offset written at.
  virtual IoResult Append(common::ExecContext& ctx, int fd, const void* src,
                          uint64_t len) = 0;
  virtual common::Status Fsync(common::ExecContext& ctx, int fd) = 0;
  virtual common::Status Fallocate(common::ExecContext& ctx, int fd, uint64_t offset,
                                   uint64_t len) = 0;
  virtual common::Status Ftruncate(common::ExecContext& ctx, int fd, uint64_t size) = 0;

  // --- Extended attributes (WineFS alignment hints, §3.6) ----------------
  virtual common::Status SetXattr(common::ExecContext& ctx, const std::string& path,
                                  const std::string& name, const std::string& value) = 0;
  virtual common::Result<std::string> GetXattr(common::ExecContext& ctx,
                                               const std::string& path,
                                               const std::string& name) = 0;

  // --- mmap support ------------------------------------------------------
  virtual common::Result<InodeNum> InodeOf(common::ExecContext& ctx, int fd) = 0;
  virtual common::Result<uint64_t> SizeOf(common::ExecContext& ctx, int fd) = 0;

  // --- Introspection ------------------------------------------------------
  // statfs(2): charges simulated time like every other op and fails with
  // kBadFd-style codes when the filesystem is not mounted.
  virtual common::Result<FreeSpaceInfo> StatFs(common::ExecContext& ctx) = 0;

  // Gauge probe for the obs time-series sampler: implementations append
  // point-in-time internal state (free-space fragmentation, journal/log
  // occupancy, allocator pool balance). Charges NO simulated time — it is an
  // observer, not an operation. Default: exposes nothing.
  void SampleGauges(obs::GaugeSample& out) override { (void)out; }

  // --- Batched op vectors (src/vfs/op_batch.h) ---------------------------
  // Executes a whole op vector, writing one OpResult per op. An op's failure
  // never aborts the batch: later ops run, and ops referencing a failed
  // open's fd fail with kBadFd without being dispatched. The default walks
  // the scalar loop, so every filesystem supports batches; implementations
  // with a native fast path (WineFS, the ext4-DAX family) override — under
  // the contract that modeled clock, counters, and namespace state stay
  // BIT-IDENTICAL to the scalar loop for the same batch.
  virtual void ExecuteBatch(common::ExecContext& ctx, const OpBatch& batch,
                            std::vector<OpResult>& results);

  // The reference scalar loop, always available (differential tests pin
  // native ExecuteBatch implementations against it).
  void ExecuteBatchScalar(common::ExecContext& ctx, const OpBatch& batch,
                          std::vector<OpResult>& results);

 protected:
  // Executes exactly one op of the batch via the public virtual ops, placing
  // the outcome in results[index] (which must already be sized). Shared by
  // the scalar loop and the scalar-fallback arm of native engines so the two
  // can never drift.
  void DispatchScalarOp(common::ExecContext& ctx, const OpBatch& batch, size_t index,
                        std::vector<OpResult>& results);
};

// Resolves the fd an op acts on: either the op's raw fd or, when fd_from is
// set, the descriptor produced by an earlier kOpen op in the same batch.
// Returns kBadFd for malformed references (forward/self references, non-open
// targets, or targets that failed) — without charging any simulated time.
common::Result<int> ResolveBatchFd(const OpBatch& batch, size_t index,
                                   const std::vector<OpResult>& results);

}  // namespace vfs

#endif  // SRC_VFS_FILE_SYSTEM_H_
