// The filesystem interface every implementation (WineFS and the baselines)
// exposes, plus the POSIX-flavored types shared across them. Path-based and
// fd-based operations mirror the system calls the paper's workloads issue.
#ifndef SRC_VFS_FILE_SYSTEM_H_
#define SRC_VFS_FILE_SYSTEM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/gauges.h"
#include "src/vmem/mmap_engine.h"

namespace vfs {

using InodeNum = uint64_t;
inline constexpr InodeNum kRootIno = 1;

struct OpenFlags {
  bool create = false;
  bool exclusive = false;
  bool truncate = false;
  bool write = true;

  static OpenFlags ReadOnly() { return OpenFlags{.write = false}; }
  static OpenFlags Create() { return OpenFlags{.create = true}; }
  static OpenFlags CreateExcl() { return OpenFlags{.create = true, .exclusive = true}; }
};

struct StatInfo {
  InodeNum ino = 0;
  uint64_t size = 0;
  uint64_t blocks = 0;       // allocated 4 KiB blocks
  uint32_t nlink = 0;
  bool is_dir = false;
};

struct DirEntry {
  std::string name;
  InodeNum ino = 0;
  bool is_dir = false;
};

// Free-space introspection for the fragmentation experiments (Fig 3).
struct FreeSpaceInfo {
  uint64_t total_blocks = 0;
  uint64_t free_blocks = 0;
  // Number of free regions that are 2 MiB-aligned and >= 2 MiB contiguous,
  // i.e. hugepage-capable allocations still available.
  uint64_t free_aligned_extents = 0;
  uint64_t largest_free_extent_blocks = 0;

  double utilization() const {
    return total_blocks == 0
               ? 0.0
               : 1.0 - static_cast<double>(free_blocks) / static_cast<double>(total_blocks);
  }
  // Fraction of free space sitting in hugepage-capable regions.
  double AlignedFreeFraction() const {
    if (free_blocks == 0) {
      return 0.0;
    }
    return static_cast<double>(free_aligned_extents * common::kBlocksPerHugepage) /
           static_cast<double>(free_blocks);
  }
};

// Consistency guarantees, per §3.3.
enum class GuaranteeMode {
  kRelaxed,  // atomic+synchronous metadata only (ext4-DAX/xfs-DAX/PMFS class)
  kStrict,   // atomic+synchronous data AND metadata (NOVA/Strata/WineFS default)
};

class FileSystem : public vmem::FaultHandler, public obs::GaugeProvider {
 public:
  ~FileSystem() override = default;

  virtual std::string_view Name() const = 0;
  virtual GuaranteeMode guarantee_mode() const = 0;

  // --- Lifecycle ---------------------------------------------------------
  virtual common::Status Mkfs(common::ExecContext& ctx) = 0;
  // Mounts, running crash recovery if the superblock is dirty.
  virtual common::Status Mount(common::ExecContext& ctx) = 0;
  // Clean unmount: persists DRAM indexes/free lists.
  virtual common::Status Unmount(common::ExecContext& ctx) = 0;

  // --- Namespace ---------------------------------------------------------
  virtual common::Result<int> Open(common::ExecContext& ctx, const std::string& path,
                                   OpenFlags flags) = 0;
  virtual common::Status Close(common::ExecContext& ctx, int fd) = 0;
  virtual common::Status Mkdir(common::ExecContext& ctx, const std::string& path) = 0;
  virtual common::Status Rmdir(common::ExecContext& ctx, const std::string& path) = 0;
  virtual common::Status Unlink(common::ExecContext& ctx, const std::string& path) = 0;
  virtual common::Status Rename(common::ExecContext& ctx, const std::string& from,
                                const std::string& to) = 0;
  virtual common::Result<StatInfo> Stat(common::ExecContext& ctx, const std::string& path) = 0;
  virtual common::Result<std::vector<DirEntry>> ReadDir(common::ExecContext& ctx,
                                                        const std::string& path) = 0;

  // --- Data --------------------------------------------------------------
  virtual common::Result<uint64_t> Pread(common::ExecContext& ctx, int fd, void* dst,
                                         uint64_t len, uint64_t offset) = 0;
  virtual common::Result<uint64_t> Pwrite(common::ExecContext& ctx, int fd, const void* src,
                                          uint64_t len, uint64_t offset) = 0;
  // Append at EOF; returns the offset written.
  virtual common::Result<uint64_t> Append(common::ExecContext& ctx, int fd, const void* src,
                                          uint64_t len) = 0;
  virtual common::Status Fsync(common::ExecContext& ctx, int fd) = 0;
  virtual common::Status Fallocate(common::ExecContext& ctx, int fd, uint64_t offset,
                                   uint64_t len) = 0;
  virtual common::Status Ftruncate(common::ExecContext& ctx, int fd, uint64_t size) = 0;

  // --- Extended attributes (WineFS alignment hints, §3.6) ----------------
  virtual common::Status SetXattr(common::ExecContext& ctx, const std::string& path,
                                  const std::string& name, const std::string& value) = 0;
  virtual common::Result<std::string> GetXattr(common::ExecContext& ctx,
                                               const std::string& path,
                                               const std::string& name) = 0;

  // --- mmap support ------------------------------------------------------
  virtual common::Result<InodeNum> InodeOf(common::ExecContext& ctx, int fd) = 0;
  virtual common::Result<uint64_t> SizeOf(common::ExecContext& ctx, int fd) = 0;

  // --- Introspection ------------------------------------------------------
  // statfs(2): charges simulated time like every other op and fails with
  // kBadFd-style codes when the filesystem is not mounted.
  virtual common::Result<FreeSpaceInfo> StatFs(common::ExecContext& ctx) = 0;

  // Gauge probe for the obs time-series sampler: implementations append
  // point-in-time internal state (free-space fragmentation, journal/log
  // occupancy, allocator pool balance). Charges NO simulated time — it is an
  // observer, not an operation. Default: exposes nothing.
  void SampleGauges(obs::GaugeSample& out) override { (void)out; }
};

}  // namespace vfs

#endif  // SRC_VFS_FILE_SYSTEM_H_
