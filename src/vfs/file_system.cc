// Default batched-execution machinery: the scalar loop every filesystem gets
// for free, and the one-op dispatcher shared with native engines' fallback
// arms. Behavior here DEFINES batch semantics — native ExecuteBatch overrides
// are measured against it.
#include "src/vfs/file_system.h"

#include "src/vfs/op_batch.h"

namespace vfs {

common::Result<int> ResolveBatchFd(const OpBatch& batch, size_t index,
                                   const std::vector<OpResult>& results) {
  const Op& op = batch.ops()[index];
  if (op.fd_from < 0) {
    return op.fd;
  }
  const size_t from = static_cast<size_t>(op.fd_from);
  // Only backward references to a *successful* kOpen are meaningful; anything
  // else is a malformed batch and fails just this op, charging nothing (the
  // scalar virtuals are never reached).
  if (from >= index || batch.ops()[from].kind != OpKind::kOpen || !results[from].ok()) {
    return common::ErrorCode::kBadFd;
  }
  return static_cast<int>(results[from].value);
}

void FileSystem::DispatchScalarOp(common::ExecContext& ctx, const OpBatch& batch, size_t index,
                                  std::vector<OpResult>& results) {
  const Op& op = batch.ops()[index];
  OpResult& out = results[index];
  int fd = op.fd;
  switch (op.kind) {
    case OpKind::kClose:
    case OpKind::kPread:
    case OpKind::kPwrite:
    case OpKind::kAppend:
    case OpKind::kFsync:
    case OpKind::kFtruncate:
    case OpKind::kFallocate: {
      auto resolved = ResolveBatchFd(batch, index, results);
      if (!resolved.ok()) {
        out.status = resolved.status();
        return;
      }
      fd = *resolved;
      break;
    }
    default:
      break;
  }
  switch (op.kind) {
    case OpKind::kOpen: {
      auto r = Open(ctx, op.path, op.flags);
      out.status = r.ok() ? common::OkStatus() : r.status();
      out.value = r.ok() ? static_cast<uint64_t>(*r) : 0;
      break;
    }
    case OpKind::kClose:
      out.status = Close(ctx, fd);
      break;
    case OpKind::kPread: {
      const IoResult r = Pread(ctx, fd, op.dst, op.len, op.offset);
      out.status = r.status();
      out.value = r.bytes();
      break;
    }
    case OpKind::kPwrite: {
      const IoResult r = Pwrite(ctx, fd, op.src, op.len, op.offset);
      out.status = r.status();
      out.value = r.bytes();
      break;
    }
    case OpKind::kAppend: {
      const IoResult r = Append(ctx, fd, op.src, op.len);
      out.status = r.status();
      out.value = r.bytes();  // append offset, per the Append contract
      break;
    }
    case OpKind::kFsync:
      out.status = Fsync(ctx, fd);
      break;
    case OpKind::kStat: {
      auto r = Stat(ctx, op.path);
      out.status = r.ok() ? common::OkStatus() : r.status();
      if (r.ok()) {
        out.stat = *r;
      }
      break;
    }
    case OpKind::kReadDir: {
      auto r = ReadDir(ctx, op.path);
      out.status = r.ok() ? common::OkStatus() : r.status();
      if (r.ok()) {
        out.entries = std::move(*r);
      }
      break;
    }
    case OpKind::kUnlink:
      out.status = Unlink(ctx, op.path);
      break;
    case OpKind::kMkdir:
      out.status = Mkdir(ctx, op.path);
      break;
    case OpKind::kRmdir:
      out.status = Rmdir(ctx, op.path);
      break;
    case OpKind::kRename:
      out.status = Rename(ctx, op.path, op.path2);
      break;
    case OpKind::kFtruncate:
      out.status = Ftruncate(ctx, fd, op.offset);
      break;
    case OpKind::kFallocate:
      out.status = Fallocate(ctx, fd, op.offset, op.len);
      break;
  }
}

void FileSystem::ExecuteBatchScalar(common::ExecContext& ctx, const OpBatch& batch,
                                    std::vector<OpResult>& results) {
  results.clear();
  results.resize(batch.size());
  for (size_t i = 0; i < batch.size(); i++) {
    DispatchScalarOp(ctx, batch, i, results);
  }
}

void FileSystem::ExecuteBatch(common::ExecContext& ctx, const OpBatch& batch,
                              std::vector<OpResult>& results) {
  ExecuteBatchScalar(ctx, batch, results);
}

}  // namespace vfs
