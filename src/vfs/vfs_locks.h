// VFS-layer lock infrastructure (§3.4): shared per-inode locks that coordinate
// the per-CPU journals, plus the global namespace critical section that caps
// scalability beyond ~16 threads (§5.6).
#ifndef SRC_VFS_VFS_LOCKS_H_
#define SRC_VFS_VFS_LOCKS_H_

#include <array>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/prof_zone.h"
#include "src/common/sim_clock.h"
#include "src/common/sim_mutex.h"
#include "src/vfs/file_system.h"

namespace vfs {

// Hands out one SimMutex per inode. The table is striped by inode number so
// host worker threads resolving disjoint namespace shards do not serialize on
// one map mutex; each stripe's map is protected by its own spin lock and the
// returned locks live until the table is destroyed (unordered_map node
// stability keeps handed-out pointers valid across rehashes).
class InodeLockTable {
 public:
  common::SimMutex& LockFor(InodeNum ino) {
    Stripe& stripe = stripes_[ino % kStripes];
    std::lock_guard<common::SpinMutex> guard(stripe.mu);
    auto& slot = stripe.locks[ino];
    if (!slot) {
      slot = std::make_unique<common::SimMutex>("vfs.inode");
    }
    return *slot;
  }

  void Drop(InodeNum ino) {
    Stripe& stripe = stripes_[ino % kStripes];
    std::lock_guard<common::SpinMutex> guard(stripe.mu);
    stripe.locks.erase(ino);
  }

 private:
  static constexpr size_t kStripes = 16;
  struct Stripe {
    common::SpinMutex mu;
    std::unordered_map<InodeNum, std::unique_ptr<common::SimMutex>> locks;
  };
  std::array<Stripe, kStripes> stripes_;
};

// Shared VFS bookkeeping every syscall passes through (dentry cache, fd
// bookkeeping, lock coordination). Modeled as a strict FIFO resource: total
// syscall throughput across all threads is capped at 1/kPerSyscallHoldNs —
// this is what makes every filesystem plateau past ~16 threads in Fig 10.
//
// The resource can be split into per-CPU lock domains (FsOptions::
// lock_domains) for host-parallel sharded runs: each simulated CPU then
// charges its own domain's window ledger, modeling a partitioned VFS front
// end (per-shard dentry/fd tables) instead of one global path. The default
// of one domain preserves the historical global-cap behavior bit-for-bit.
class VfsSharedPath {
 public:
  static constexpr uint64_t kPerSyscallHoldNs = 150;

  explicit VfsSharedPath(uint32_t domains = 1) {
    if (domains == 0) {
      domains = 1;
    }
    resources_.reserve(domains);
    for (uint32_t d = 0; d < domains; d++) {
      resources_.push_back(std::make_unique<common::SharedResource>("vfs-shared"));
    }
    site_refs_ = std::vector<common::LockSiteRef>(domains);
  }

  void Charge(common::ExecContext& ctx) {
    const uint32_t d = ctx.cpu % resources_.size();
    common::ProfiledAcquire(ctx, *resources_[d], "vfs.shared", site_refs_[d],
                            kPerSyscallHoldNs);
  }

  uint32_t domains() const { return static_cast<uint32_t>(resources_.size()); }

 private:
  std::vector<std::unique_ptr<common::SharedResource>> resources_;
  std::vector<common::LockSiteRef> site_refs_;
};

}  // namespace vfs

#endif  // SRC_VFS_VFS_LOCKS_H_
