// VFS-layer lock infrastructure (§3.4): shared per-inode locks that coordinate
// the per-CPU journals, plus the global namespace critical section that caps
// scalability beyond ~16 threads (§5.6).
#ifndef SRC_VFS_VFS_LOCKS_H_
#define SRC_VFS_VFS_LOCKS_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/common/prof_zone.h"
#include "src/common/sim_clock.h"
#include "src/common/sim_mutex.h"
#include "src/vfs/file_system.h"

namespace vfs {

// Hands out one SimMutex per inode. The map itself is protected by a plain
// mutex; the returned locks live until the table is destroyed.
class InodeLockTable {
 public:
  common::SimMutex& LockFor(InodeNum ino) {
    std::lock_guard<std::mutex> guard(map_mu_);
    auto& slot = locks_[ino];
    if (!slot) {
      slot = std::make_unique<common::SimMutex>("vfs.inode");
    }
    return *slot;
  }

  void Drop(InodeNum ino) {
    std::lock_guard<std::mutex> guard(map_mu_);
    locks_.erase(ino);
  }

 private:
  std::mutex map_mu_;
  std::unordered_map<InodeNum, std::unique_ptr<common::SimMutex>> locks_;
};

// Shared VFS bookkeeping every syscall passes through (dentry cache, fd
// bookkeeping, lock coordination). Modeled as a strict FIFO resource: total
// syscall throughput across all threads is capped at 1/kPerSyscallHoldNs —
// this is what makes every filesystem plateau past ~16 threads in Fig 10.
class VfsSharedPath {
 public:
  static constexpr uint64_t kPerSyscallHoldNs = 150;

  void Charge(common::ExecContext& ctx) {
    common::ProfiledAcquire(ctx, resource_, "vfs.shared", site_ref_, kPerSyscallHoldNs);
  }

 private:
  common::SharedResource resource_{"vfs-shared"};
  common::LockSiteRef site_ref_;
};

}  // namespace vfs

#endif  // SRC_VFS_VFS_LOCKS_H_
