#include "src/crashmk/oracle.h"

#include <sstream>
#include <vector>

namespace crashmk {

namespace {

uint64_t Fnv1a(const uint8_t* data, size_t len, uint64_t hash) {
  for (size_t i = 0; i < len; i++) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void Walk(common::ExecContext& ctx, vfs::FileSystem& fs, const std::string& dir,
          std::map<std::string, OracleEntry>& out) {
  auto entries = fs.ReadDir(ctx, dir.empty() ? "/" : dir);
  if (!entries.ok()) {
    return;
  }
  for (const auto& entry : *entries) {
    const std::string path = dir + "/" + entry.name;
    OracleEntry oe;
    oe.is_dir = entry.is_dir;
    auto st = fs.Stat(ctx, path);
    if (!st.ok()) {
      // The parent lists this name but the inode behind it is unreachable —
      // a dangling dirent (e.g. persisted before its inode when metadata
      // persistence is delayed). Record it as its own observable state.
      oe.dangling = true;
      out[path] = oe;
      continue;
    }
    if (entry.is_dir) {
      out[path] = oe;
      Walk(ctx, fs, path, out);
      continue;
    }
    oe.size = st->size;
    auto fd = fs.Open(ctx, path, vfs::OpenFlags::ReadOnly());
    if (fd.ok()) {
      uint64_t hash = 0xcbf29ce484222325ULL;
      std::vector<uint8_t> buf(64 * 1024);
      uint64_t off = 0;
      while (off < st->size) {
        auto n = fs.Pread(ctx, *fd, buf.data(), buf.size(), off);
        if (!n.ok() || *n == 0) {
          break;
        }
        hash = Fnv1a(buf.data(), *n, hash);
        off += *n;
      }
      oe.content_hash = hash;
      (void)fs.Close(ctx, *fd);
    }
    out[path] = oe;
  }
}

}  // namespace

Oracle Oracle::Capture(common::ExecContext& ctx, vfs::FileSystem& fs) {
  Oracle oracle;
  Walk(ctx, fs, "", oracle.entries_);
  return oracle;
}

std::string Oracle::DiffAgainst(const Oracle& other) const {
  std::ostringstream out;
  for (const auto& [path, entry] : entries_) {
    auto it = other.entries_.find(path);
    if (it == other.entries_.end()) {
      out << "only-left: " << path << " size=" << entry.size
          << (entry.dangling ? " (dangling)" : "") << "\n";
    } else if (!(it->second == entry)) {
      out << "differs: " << path << " size " << entry.size << " vs " << it->second.size
          << " hash " << entry.content_hash << " vs " << it->second.content_hash
          << " dangling " << entry.dangling << " vs " << it->second.dangling << "\n";
    }
  }
  for (const auto& [path, entry] : other.entries_) {
    if (entries_.find(path) == entries_.end()) {
      out << "only-right: " << path << " size=" << entry.size
          << (entry.dangling ? " (dangling)" : "") << "\n";
    }
  }
  return out.str();
}

uint64_t Oracle::StateHash() const {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const auto& [path, entry] : entries_) {
    hash = Fnv1a(reinterpret_cast<const uint8_t*>(path.data()), path.size(), hash);
    const uint8_t flags =
        static_cast<uint8_t>((entry.is_dir ? 1 : 0) | (entry.dangling ? 2 : 0));
    hash = Fnv1a(&flags, 1, hash);
    hash = Fnv1a(reinterpret_cast<const uint8_t*>(&entry.size), sizeof(entry.size), hash);
    hash = Fnv1a(reinterpret_cast<const uint8_t*>(&entry.content_hash),
                 sizeof(entry.content_hash), hash);
  }
  return hash;
}

}  // namespace crashmk
