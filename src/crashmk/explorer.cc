#include "src/crashmk/explorer.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/common/units.h"
#include "src/pmem/fault_injector.h"
#include "src/snap/image.h"

namespace crashmk {

using common::ExecContext;
using common::Status;

std::string CrashOp::Describe() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kCreate:
      out << "create " << path;
      break;
    case Kind::kAppend:
      out << "append " << path << " len=" << len;
      break;
    case Kind::kPwrite:
      out << "pwrite " << path << " off=" << offset << " len=" << len;
      break;
    case Kind::kUnlink:
      out << "unlink " << path;
      break;
    case Kind::kMkdir:
      out << "mkdir " << path;
      break;
    case Kind::kRmdir:
      out << "rmdir " << path;
      break;
    case Kind::kRename:
      out << "rename " << path << " -> " << path2;
      break;
    case Kind::kTruncate:
      out << "truncate " << path << " size=" << len;
      break;
    case Kind::kFallocate:
      out << "fallocate " << path << " off=" << offset << " len=" << len;
      break;
  }
  return out.str();
}

Status Explorer::ApplyOp(ExecContext& ctx, vfs::FileSystem& fs, const CrashOp& op) {
  std::vector<uint8_t> payload(op.len, 0xc7);
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<uint8_t>(0x40 + (i % 61));
  }
  switch (op.kind) {
    case CrashOp::Kind::kCreate: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags::CreateExcl()));
      return fs.Close(ctx, fd);
    }
    case CrashOp::Kind::kAppend: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      auto n = fs.Append(ctx, fd, payload.data(), payload.size());
      (void)fs.Close(ctx, fd);
      return n.ok() ? common::OkStatus() : n.status();
    }
    case CrashOp::Kind::kPwrite: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      auto n = fs.Pwrite(ctx, fd, payload.data(), payload.size(), op.offset);
      (void)fs.Close(ctx, fd);
      return n.ok() ? common::OkStatus() : n.status();
    }
    case CrashOp::Kind::kUnlink:
      return fs.Unlink(ctx, op.path);
    case CrashOp::Kind::kMkdir:
      return fs.Mkdir(ctx, op.path);
    case CrashOp::Kind::kRmdir:
      return fs.Rmdir(ctx, op.path);
    case CrashOp::Kind::kRename:
      return fs.Rename(ctx, op.path, op.path2);
    case CrashOp::Kind::kTruncate: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      const Status status = fs.Ftruncate(ctx, fd, op.len);
      (void)fs.Close(ctx, fd);
      return status;
    }
    case CrashOp::Kind::kFallocate: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      const Status status = fs.Fallocate(ctx, fd, op.offset, op.len);
      (void)fs.Close(ctx, fd);
      return status;
    }
  }
  return common::OkStatus();
}

ExploreResult Explorer::RunWorkload(const Workload& workload) {
  ExploreResult result;

  pmem::PmemDevice device(config_.device_bytes);
  auto fs = factory_(&device);
  ExecContext ctx;
  if (!fs->Mkfs(ctx).ok()) {
    result.mount_failures++;
    result.first_failure = "mkfs failed";
    return result;
  }

  // Standard ACE fixture.
  auto seed_file = [&](const std::string& path, uint64_t size) {
    auto fd = fs->Open(ctx, path, vfs::OpenFlags::Create());
    std::vector<uint8_t> data(size, 0x11);
    if (size > 0) {
      (void)fs->Pwrite(ctx, *fd, data.data(), data.size(), 0);
    }
    (void)fs->Close(ctx, *fd);
  };
  seed_file("/A", 9000);
  seed_file("/B", 3000);
  (void)fs->Mkdir(ctx, "/D");
  seed_file("/D/C", 500);

  device.EnableCrashTracking();
  pmem::FaultInjector torn_injector(pmem::FaultPlan{.seed = config_.torn_seed});

  for (const CrashOp& op : workload) {
    const Oracle pre = Oracle::Capture(ctx, *fs);
    const std::vector<uint8_t> image_at_op_start = device.PersistentImage();

    device.BeginEpochRecording();
    const Status op_status = ApplyOp(ctx, *fs, op);
    auto epochs = device.TakeEpochLog();
    if (!op_status.ok()) {
      result.first_failure = "op failed live: " + op.Describe();
      result.oracle_failures++;
      return result;
    }
    const Oracle post = Oracle::Capture(ctx, *fs);
    result.ops_executed++;

    // Enumerate crash states.
    std::vector<uint8_t> base = image_at_op_start;
    auto apply_lines = [](std::vector<uint8_t>& img, const std::vector<pmem::PendingLine>& lines,
                          uint64_t subset_mask) {
      for (size_t i = 0; i < lines.size(); i++) {
        if (subset_mask & (1ull << i)) {
          std::memcpy(img.data() + lines[i].line_offset, lines[i].data, common::kCacheline);
        }
      }
    };

    pmem::PmemDevice crash_dev(config_.device_bytes);
    // Archives the pre-recovery torn image (`img`, not crash_dev — mount-time
    // recovery has already rewritten the device by verdict time) as a
    // replayable snapshot. Replay = fork the snapshot, mount, re-judge.
    auto archive_state = [&](const std::vector<uint8_t>& img, const char* verdict) {
      if (config_.archive_dir.empty() || result.archived >= config_.max_archives) {
        return;
      }
      pmem::DeviceSnapshot snap;
      snap.bytes = std::make_shared<const std::vector<uint8_t>>(img);
      snap.model = device.cost();
      snap.numa_nodes = device.numa_nodes();
      const std::string provenance = "crashmk;op=" + op.Describe() +
                                     ";state=" + std::to_string(result.crash_states) +
                                     ";verdict=" + verdict;
      const std::string path = config_.archive_dir + "/crash-" +
                               std::to_string(result.archived) + "-" + verdict + ".snap";
      if (snap::SaveImage(path, snap, snap::ImageKind::kCrashState, provenance).ok()) {
        result.archived++;
        result.archive_paths.push_back(path);
      }
    };
    auto check_state = [&](const std::vector<uint8_t>& img) {
      result.crash_states++;
      crash_dev.RestoreImage(img);
      auto crash_fs = factory_(&crash_dev);
      ExecContext rctx;
      if (!crash_fs->Mount(rctx).ok()) {
        result.mount_failures++;
        if (result.first_failure.empty()) {
          result.first_failure = "mount failed after crash in: " + op.Describe();
        }
        archive_state(img, "mountfail");
        return;
      }
      const Oracle recovered = Oracle::Capture(rctx, *crash_fs);
      if (!(recovered == pre) && !(recovered == post)) {
        result.oracle_failures++;
        if (result.first_failure.empty()) {
          result.first_failure = "inconsistent state after crash in: " + op.Describe() +
                                 "\n--- vs pre ---\n" + recovered.DiffAgainst(pre) +
                                 "--- vs post ---\n" + recovered.DiffAgainst(post);
        }
        archive_state(img, "inconsistent");
      } else if (config_.archive_all) {
        archive_state(img, "ok");
      }
    };

    for (const auto& epoch : epochs) {
      // Crash before this fence completed: any subset of the lines that were
      // eligible to persist here (the fenced batch plus the unflushed ones).
      std::vector<pmem::PendingLine> eligible = epoch.persisted;
      eligible.insert(eligible.end(), epoch.in_flight_after.begin(),
                      epoch.in_flight_after.end());
      if (eligible.size() <= config_.max_subset_bits) {
        const uint64_t combos = 1ull << eligible.size();
        for (uint64_t mask = 0; mask < combos; mask++) {
          std::vector<uint8_t> img = base;
          apply_lines(img, eligible, mask);
          check_state(img);
        }
      } else {
        // Too many in-flight lines for exhaustive subsets (bulk zeroing or
        // data-journal blobs): check the boundary state plus an even sample
        // of single-line and prefix states.
        check_state(base);
        constexpr size_t kMaxSampled = 96;
        const size_t stride = std::max<size_t>(1, eligible.size() / kMaxSampled);
        for (size_t i = 0; i < eligible.size(); i += stride) {
          std::vector<uint8_t> img = base;
          apply_lines(img, eligible, 1ull << (i % 64));
          // Also a prefix state: everything up to line i persisted.
          for (size_t p = 0; p <= i; p++) {
            std::memcpy(img.data() + eligible[p].line_offset, eligible[p].data,
                        common::kCacheline);
          }
          check_state(img);
        }
      }
      // Torn-store composition: pick lines across the epoch (even stride),
      // persist the seq-ordered prefix before each fully, then apply only a
      // subset of the chosen line's 8-byte lanes. Masks are derived from the
      // line's store sequence number, so a failing state reproduces exactly
      // from {torn_seed, workload}.
      if (config_.torn_writes && !eligible.empty()) {
        std::vector<pmem::PendingLine> by_seq = eligible;
        std::sort(by_seq.begin(), by_seq.end(),
                  [](const pmem::PendingLine& a, const pmem::PendingLine& b) {
                    return a.seq < b.seq;
                  });
        const size_t stride = std::max<size_t>(
            1, by_seq.size() / std::max<uint32_t>(1, config_.max_torn_lines_per_epoch));
        for (size_t i = 0; i < by_seq.size(); i += stride) {
          const std::vector<uint8_t> masks =
              torn_injector.TornLaneMasks(by_seq[i].seq, config_.max_torn_variants_per_line);
          for (const uint8_t mask : masks) {
            std::vector<uint8_t> img = base;
            for (size_t p = 0; p < i; p++) {
              std::memcpy(img.data() + by_seq[p].line_offset, by_seq[p].data,
                          common::kCacheline);
            }
            for (uint32_t lane = 0; lane < pmem::kLanesPerLine; lane++) {
              if (mask & (1u << lane)) {
                std::memcpy(img.data() + by_seq[i].line_offset + lane * pmem::kLaneBytes,
                            by_seq[i].data + lane * pmem::kLaneBytes, pmem::kLaneBytes);
              }
            }
            check_state(img);
          }
        }
      }
      // Advance the base image past this fence: everything it persisted.
      for (const pmem::PendingLine& line : epoch.persisted) {
        std::memcpy(base.data() + line.line_offset, line.data, common::kCacheline);
      }
    }
  }
  return result;
}

std::vector<Workload> Explorer::GenerateAceWorkloads(bool include_data_ops) {
  using K = CrashOp::Kind;
  std::vector<Workload> out;
  auto add = [&](std::initializer_list<CrashOp> ops) { out.push_back(Workload(ops)); };

  // seq-1: every metadata operation on the fixture.
  add({{K::kCreate, "/new", "", 0, 0}});
  add({{K::kCreate, "/D/new", "", 0, 0}});
  add({{K::kMkdir, "/E", "", 0, 0}});
  add({{K::kMkdir, "/D/sub", "", 0, 0}});
  add({{K::kUnlink, "/A", "", 0, 0}});
  add({{K::kUnlink, "/D/C", "", 0, 0}});
  add({{K::kRename, "/A", "/A2", 0, 0}});
  add({{K::kRename, "/A", "/B", 0, 0}});      // overwrite
  add({{K::kRename, "/D/C", "/C2", 0, 0}});   // cross-directory
  add({{K::kTruncate, "/A", "", 0, 100}});    // shrink
  add({{K::kTruncate, "/A", "", 0, 50000}});  // sparse grow
  add({{K::kFallocate, "/B", "", 0, 65536}});

  // seq-2: dependent chains.
  add({{K::kCreate, "/new", "", 0, 0}, {K::kRename, "/new", "/new2", 0, 0}});
  add({{K::kCreate, "/new", "", 0, 0}, {K::kUnlink, "/new", "", 0, 0}});
  add({{K::kMkdir, "/E", "", 0, 0}, {K::kCreate, "/E/f", "", 0, 0}});
  add({{K::kUnlink, "/D/C", "", 0, 0}, {K::kRmdir, "/D", "", 0, 0}});
  add({{K::kRename, "/A", "/A2", 0, 0}, {K::kCreate, "/A", "", 0, 0}});

  if (include_data_ops) {
    add({{K::kAppend, "/A", "", 0, 100}});
    add({{K::kAppend, "/A", "", 0, 4096}});
    add({{K::kAppend, "/A", "", 0, 20000}});
    add({{K::kPwrite, "/A", "", 0, 64}});
    add({{K::kPwrite, "/A", "", 4000, 8192}});  // straddles blocks
    add({{K::kCreate, "/new", "", 0, 0}, {K::kAppend, "/new", "", 0, 3000}});
    add({{K::kAppend, "/A", "", 0, 1000}, {K::kTruncate, "/A", "", 0, 500}});
  }
  return out;
}

}  // namespace crashmk
