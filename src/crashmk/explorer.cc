#include "src/crashmk/explorer.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/common/units.h"
#include "src/pmem/fault_injector.h"
#include "src/snap/image.h"

namespace crashmk {

using common::ExecContext;
using common::Status;

std::string CrashOp::Describe() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kCreate:
      out << "create " << path;
      break;
    case Kind::kAppend:
      out << "append " << path << " len=" << len;
      break;
    case Kind::kPwrite:
      out << "pwrite " << path << " off=" << offset << " len=" << len;
      break;
    case Kind::kUnlink:
      out << "unlink " << path;
      break;
    case Kind::kMkdir:
      out << "mkdir " << path;
      break;
    case Kind::kRmdir:
      out << "rmdir " << path;
      break;
    case Kind::kRename:
      out << "rename " << path << " -> " << path2;
      break;
    case Kind::kTruncate:
      out << "truncate " << path << " size=" << len;
      break;
    case Kind::kFallocate:
      out << "fallocate " << path << " off=" << offset << " len=" << len;
      break;
  }
  return out.str();
}

Status Explorer::ApplyOp(ExecContext& ctx, vfs::FileSystem& fs, const CrashOp& op) {
  std::vector<uint8_t> payload(op.len, 0xc7);
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<uint8_t>(0x40 + (i % 61));
  }
  switch (op.kind) {
    case CrashOp::Kind::kCreate: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags::CreateExcl()));
      return fs.Close(ctx, fd);
    }
    case CrashOp::Kind::kAppend: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      auto n = fs.Append(ctx, fd, payload.data(), payload.size());
      (void)fs.Close(ctx, fd);
      return n.ok() ? common::OkStatus() : n.status();
    }
    case CrashOp::Kind::kPwrite: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      auto n = fs.Pwrite(ctx, fd, payload.data(), payload.size(), op.offset);
      (void)fs.Close(ctx, fd);
      return n.ok() ? common::OkStatus() : n.status();
    }
    case CrashOp::Kind::kUnlink:
      return fs.Unlink(ctx, op.path);
    case CrashOp::Kind::kMkdir:
      return fs.Mkdir(ctx, op.path);
    case CrashOp::Kind::kRmdir:
      return fs.Rmdir(ctx, op.path);
    case CrashOp::Kind::kRename:
      return fs.Rename(ctx, op.path, op.path2);
    case CrashOp::Kind::kTruncate: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      const Status status = fs.Ftruncate(ctx, fd, op.len);
      (void)fs.Close(ctx, fd);
      return status;
    }
    case CrashOp::Kind::kFallocate: {
      ASSIGN_OR_RETURN(const int fd, fs.Open(ctx, op.path, vfs::OpenFlags{}));
      const Status status = fs.Fallocate(ctx, fd, op.offset, op.len);
      (void)fs.Close(ctx, fd);
      return status;
    }
  }
  return common::OkStatus();
}

namespace {

std::string HexU64(uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; i--) {
    out[i] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace

ExploreResult Explorer::RunWorkload(const Workload& workload) {
  ExploreResult result;

  const bool seeded = config_.seed_image.valid();
  pmem::PmemDevice device =
      seeded ? pmem::PmemDevice(config_.seed_image) : pmem::PmemDevice(config_.device_bytes);
  const uint64_t dev_bytes = device.size();
  auto fs = factory_(&device);
  ExecContext ctx;
  const Status init = seeded ? fs->Mount(ctx) : fs->Mkfs(ctx);
  if (!init.ok()) {
    result.mount_failures++;
    result.first_failure = seeded ? "seed image mount failed" : "mkfs failed";
    return result;
  }

  // Standard ACE fixture (laid on top of the aged image when seeded; the
  // fixture paths are root-level, the aging workload populates /d<k>/...).
  auto seed_file = [&](const std::string& path, uint64_t size) {
    auto fd = fs->Open(ctx, path, vfs::OpenFlags::Create());
    std::vector<uint8_t> data(size, 0x11);
    if (size > 0) {
      (void)fs->Pwrite(ctx, *fd, data.data(), data.size(), 0);
    }
    (void)fs->Close(ctx, *fd);
  };
  seed_file("/A", 9000);
  seed_file("/B", 3000);
  (void)fs->Mkdir(ctx, "/D");
  seed_file("/D/C", 500);

  device.EnableCrashTracking();
  pmem::FaultInjector torn_injector(pmem::FaultPlan{.seed = config_.torn_seed});

  std::shared_ptr<StateCache> cache =
      config_.cache != nullptr ? config_.cache : std::make_shared<StateCache>();

  // One crash device reused across all states; the poison injector (if any)
  // rides on it so every crash mount sees the plan's corrupted media blocks.
  pmem::PmemDevice crash_dev(dev_bytes, device.cost(), device.numa_nodes());
  pmem::FaultInjector poison_injector(pmem::FaultPlan{.seed = config_.poison_seed});
  if (!config_.poison_ranges.empty()) {
    crash_dev.AttachFaultInjector(&poison_injector);
  }

  for (const CrashOp& op : workload) {
    const Oracle pre = Oracle::Capture(ctx, *fs);
    const std::vector<uint8_t> image_at_op_start = device.PersistentImage();
    const uint64_t op_hash = snap::Fnv1a(image_at_op_start.data(), image_at_op_start.size());

    device.BeginEpochRecording();
    const Status op_status = ApplyOp(ctx, *fs, op);
    auto epochs = device.TakeEpochLog();
    if (!op_status.ok()) {
      result.first_failure = "op failed live: " + op.Describe();
      result.oracle_failures++;
      return result;
    }
    if (config_.terminal_epoch) {
      // Lines still in flight when the op returned: a synchronous filesystem
      // drained everything at its last fence, but delayed metadata
      // accumulates here — without this pseudo-epoch those crash states
      // (the widened vulnerability window) would never be enumerated.
      std::vector<pmem::PendingLine> leftover = device.PendingLines();
      if (!leftover.empty()) {
        epochs.push_back(pmem::PmemDevice::PersistEpoch{{}, std::move(leftover)});
      }
    }
    const Oracle post = Oracle::Capture(ctx, *fs);
    result.ops_executed++;

    // Enumerate crash states. `base` is the persistent image at the current
    // fence boundary; base_key its equivalence key relative to op start.
    std::vector<uint8_t> base = image_at_op_start;
    uint64_t base_key = op_hash;

    // Equivalence term of one cacheline: 0 when its content equals the
    // op-start image (so untouched lines never perturb the key), otherwise a
    // hash of (offset, content). Keys compose by XOR: key(img) = op_hash XOR
    // the terms of every differing line, which makes the key of any candidate
    // computable from enumeration deltas without building the image.
    auto line_term = [&](uint64_t off, const uint8_t* content) -> uint64_t {
      if (std::memcmp(content, image_at_op_start.data() + off, common::kCacheline) == 0) {
        return 0;
      }
      uint64_t h = snap::Fnv1a(reinterpret_cast<const uint8_t*>(&off), sizeof(off));
      return snap::Fnv1a(content, common::kCacheline, h);
    };
    auto base_term = [&](uint64_t off) { return line_term(off, base.data() + off); };

    auto apply_lines = [](std::vector<uint8_t>& img, const std::vector<pmem::PendingLine>& lines,
                          uint64_t subset_mask) {
      for (size_t i = 0; i < lines.size(); i++) {
        if (subset_mask & (1ull << i)) {
          std::memcpy(img.data() + lines[i].line_offset, lines[i].data, common::kCacheline);
        }
      }
    };

    // Archives the pre-recovery torn image (`img`, not crash_dev — mount-time
    // recovery has already rewritten the device by verdict time) as a
    // replayable snapshot. Replay = fork the snapshot, mount, re-judge.
    auto archive_state = [&](const std::vector<uint8_t>& img, const char* verdict,
                             const std::string& extra) {
      if (config_.archive_dir.empty() || result.archived >= config_.max_archives) {
        return;
      }
      pmem::DeviceSnapshot snap;
      snap.bytes = std::make_shared<const std::vector<uint8_t>>(img);
      snap.model = device.cost();
      snap.numa_nodes = device.numa_nodes();
      std::string provenance = "crashmk;";
      if (!config_.provenance_tag.empty()) {
        provenance += config_.provenance_tag + ";";
      }
      provenance += "op=" + op.Describe() + ";state=" + std::to_string(result.crash_states) +
                    ";verdict=" + verdict + extra;
      const std::string path = config_.archive_dir + "/crash-" +
                               std::to_string(result.archived) + "-" + verdict + ".snap";
      if (snap::SaveImage(path, snap, snap::ImageKind::kCrashState, provenance).ok()) {
        result.archived++;
        result.archive_paths.push_back(path);
      }
    };

    // Judges one candidate crash state given its equivalence key and a lazy
    // image builder. With pruning on, already-seen classes skip both the
    // image materialization and the mount + oracle replay.
    auto judge_state = [&](uint64_t key,
                           const std::function<std::vector<uint8_t>()>& build) {
      result.crash_states++;
      const bool fresh = cache->Claim(key);
      if (fresh) {
        result.distinct_images++;
      }
      if (!fresh && config_.prune) {
        result.pruned_replays++;
        return;
      }
      result.oracle_replays++;
      const std::vector<uint8_t> img = build();
      for (const auto& [poison_off, poison_len] : config_.poison_ranges) {
        poison_injector.PoisonRange(poison_off, poison_len);
      }
      crash_dev.RestoreImage(img);
      auto crash_fs = factory_(&crash_dev);
      ExecContext rctx;
      const Status mount_status = crash_fs->Mount(rctx);
      if (!mount_status.ok()) {
        if (!config_.poison_ranges.empty() &&
            mount_status.code() == common::ErrorCode::kIoError) {
          // Refuse-when-dirty policy hit the poisoned journal: the
          // corruption was detected, not silently absorbed.
          result.refused_mounts++;
          return;
        }
        result.mount_failures++;
        if (result.first_failure.empty()) {
          result.first_failure = "mount failed after crash in: " + op.Describe();
        }
        archive_state(img, "mountfail", "");
        return;
      }
      const Oracle recovered = Oracle::Capture(rctx, *crash_fs);
      const uint64_t recovered_hash = recovered.StateHash();
      if (config_.collect_state_hashes) {
        result.recovered_state_hashes.insert(recovered_hash);
      }
      if (!(recovered == pre) && !(recovered == post)) {
        result.oracle_failures++;
        if (result.first_failure.empty()) {
          result.first_failure = "inconsistent state after crash in: " + op.Describe() +
                                 "\n--- vs pre ---\n" + recovered.DiffAgainst(pre) +
                                 "--- vs post ---\n" + recovered.DiffAgainst(post);
        }
        archive_state(img, "inconsistent", ";rhash=" + HexU64(recovered_hash));
      } else if (config_.archive_all) {
        archive_state(img, "ok", ";rhash=" + HexU64(recovered_hash));
      }
    };

    for (const auto& epoch : epochs) {
      // Crash before this fence completed: any subset of the lines that were
      // eligible to persist here (the fenced batch plus the unflushed ones).
      std::vector<pmem::PendingLine> eligible = epoch.persisted;
      eligible.insert(eligible.end(), epoch.in_flight_after.begin(),
                      epoch.in_flight_after.end());
      // Per-line key deltas vs the current base. Line offsets are unique
      // within one fence (the device dedups pending lines by offset), so
      // subset keys compose by XOR of the chosen deltas.
      std::vector<uint64_t> delta(eligible.size());
      for (size_t i = 0; i < eligible.size(); i++) {
        delta[i] = base_term(eligible[i].line_offset) ^
                   line_term(eligible[i].line_offset, eligible[i].data);
      }
      if (eligible.size() <= config_.max_subset_bits) {
        const uint64_t combos = 1ull << eligible.size();
        for (uint64_t mask = 0; mask < combos; mask++) {
          uint64_t key = base_key;
          for (size_t i = 0; i < eligible.size(); i++) {
            if (mask & (1ull << i)) {
              key ^= delta[i];
            }
          }
          judge_state(key, [&]() {
            std::vector<uint8_t> img = base;
            apply_lines(img, eligible, mask);
            return img;
          });
        }
      } else {
        // Too many in-flight lines for exhaustive subsets (bulk zeroing or
        // data-journal blobs): check the boundary state plus an even sample
        // of single-line and prefix states.
        judge_state(base_key, [&]() { return base; });
        constexpr size_t kMaxSampled = 96;
        const size_t stride = std::max<size_t>(1, eligible.size() / kMaxSampled);
        for (size_t i = 0; i < eligible.size(); i += stride) {
          // The image is the prefix 0..i plus line i%64; since i%64 <= i the
          // applied set is exactly the prefix, and the key is its XOR.
          uint64_t key = base_key;
          for (size_t p = 0; p <= i; p++) {
            key ^= delta[p];
          }
          judge_state(key, [&]() {
            std::vector<uint8_t> img = base;
            apply_lines(img, eligible, 1ull << (i % 64));
            for (size_t p = 0; p <= i; p++) {
              std::memcpy(img.data() + eligible[p].line_offset, eligible[p].data,
                          common::kCacheline);
            }
            return img;
          });
        }
      }
      // Torn-store composition: pick lines across the epoch (even stride),
      // persist the seq-ordered prefix before each fully, then apply only a
      // subset of the chosen line's 8-byte lanes. Masks are derived from the
      // line's store sequence number, so a failing state reproduces exactly
      // from {torn_seed, workload}.
      if (config_.torn_writes && !eligible.empty()) {
        std::vector<pmem::PendingLine> by_seq = eligible;
        std::sort(by_seq.begin(), by_seq.end(),
                  [](const pmem::PendingLine& a, const pmem::PendingLine& b) {
                    return a.seq < b.seq;
                  });
        std::vector<uint64_t> bdelta(by_seq.size());
        for (size_t i = 0; i < by_seq.size(); i++) {
          bdelta[i] = base_term(by_seq[i].line_offset) ^
                      line_term(by_seq[i].line_offset, by_seq[i].data);
        }
        const size_t stride = std::max<size_t>(
            1, by_seq.size() / std::max<uint32_t>(1, config_.max_torn_lines_per_epoch));
        for (size_t i = 0; i < by_seq.size(); i += stride) {
          uint64_t prefix_key = base_key;
          for (size_t p = 0; p < i; p++) {
            prefix_key ^= bdelta[p];
          }
          // Lanes whose stored bytes actually differ from the base bound the
          // image classes torn masks can produce: 2^k for k differing lanes.
          uint32_t differing_lanes = 0;
          for (uint32_t lane = 0; lane < pmem::kLanesPerLine; lane++) {
            if (std::memcmp(base.data() + by_seq[i].line_offset + lane * pmem::kLaneBytes,
                            by_seq[i].data + lane * pmem::kLaneBytes,
                            pmem::kLaneBytes) != 0) {
              differing_lanes++;
            }
          }
          std::vector<uint8_t> masks;
          if (config_.torn_exhaustive_lanes && differing_lanes <= 4) {
            // All 255 non-empty masks collapse into at most 16 classes —
            // affordable to replay, so enumerate the lot and let pruning
            // dedup. High-entropy lines (journal entries: every lane differs)
            // would turn 255 states into 255 replays; those keep the sample.
            masks.reserve(255);
            for (uint32_t m = 1; m <= 255; m++) {
              masks.push_back(static_cast<uint8_t>(m));
            }
          } else {
            masks =
                torn_injector.TornLaneMasks(by_seq[i].seq, config_.max_torn_variants_per_line);
          }
          for (const uint8_t mask : masks) {
            // Compose the torn line to key it: base content with the chosen
            // lanes overlaid.
            uint8_t torn[common::kCacheline];
            std::memcpy(torn, base.data() + by_seq[i].line_offset, common::kCacheline);
            for (uint32_t lane = 0; lane < pmem::kLanesPerLine; lane++) {
              if (mask & (1u << lane)) {
                std::memcpy(torn + lane * pmem::kLaneBytes,
                            by_seq[i].data + lane * pmem::kLaneBytes, pmem::kLaneBytes);
              }
            }
            const uint64_t key = prefix_key ^ base_term(by_seq[i].line_offset) ^
                                 line_term(by_seq[i].line_offset, torn);
            judge_state(key, [&]() {
              std::vector<uint8_t> img = base;
              for (size_t p = 0; p < i; p++) {
                std::memcpy(img.data() + by_seq[p].line_offset, by_seq[p].data,
                            common::kCacheline);
              }
              std::memcpy(img.data() + by_seq[i].line_offset, torn, common::kCacheline);
              return img;
            });
          }
        }
      }
      // Advance the base image past this fence: everything it persisted.
      // (Update the key before overwriting the bytes the old term hashes.)
      for (const pmem::PendingLine& line : epoch.persisted) {
        base_key ^= base_term(line.line_offset) ^ line_term(line.line_offset, line.data);
        std::memcpy(base.data() + line.line_offset, line.data, common::kCacheline);
      }
    }
  }
  return result;
}

std::vector<Workload> Explorer::GenerateAceWorkloads(bool include_data_ops) {
  using K = CrashOp::Kind;
  std::vector<Workload> out;
  auto add = [&](std::initializer_list<CrashOp> ops) { out.push_back(Workload(ops)); };

  // seq-1: every metadata operation on the fixture.
  add({{K::kCreate, "/new", "", 0, 0}});
  add({{K::kCreate, "/D/new", "", 0, 0}});
  add({{K::kMkdir, "/E", "", 0, 0}});
  add({{K::kMkdir, "/D/sub", "", 0, 0}});
  add({{K::kUnlink, "/A", "", 0, 0}});
  add({{K::kUnlink, "/D/C", "", 0, 0}});
  add({{K::kRename, "/A", "/A2", 0, 0}});
  add({{K::kRename, "/A", "/B", 0, 0}});      // overwrite
  add({{K::kRename, "/D/C", "/C2", 0, 0}});   // cross-directory
  add({{K::kTruncate, "/A", "", 0, 100}});    // shrink
  add({{K::kTruncate, "/A", "", 0, 50000}});  // sparse grow
  add({{K::kFallocate, "/B", "", 0, 65536}});

  // seq-2: dependent chains.
  add({{K::kCreate, "/new", "", 0, 0}, {K::kRename, "/new", "/new2", 0, 0}});
  add({{K::kCreate, "/new", "", 0, 0}, {K::kUnlink, "/new", "", 0, 0}});
  add({{K::kMkdir, "/E", "", 0, 0}, {K::kCreate, "/E/f", "", 0, 0}});
  add({{K::kUnlink, "/D/C", "", 0, 0}, {K::kRmdir, "/D", "", 0, 0}});
  add({{K::kRename, "/A", "/A2", 0, 0}, {K::kCreate, "/A", "", 0, 0}});

  if (include_data_ops) {
    add({{K::kAppend, "/A", "", 0, 100}});
    add({{K::kAppend, "/A", "", 0, 4096}});
    add({{K::kAppend, "/A", "", 0, 20000}});
    add({{K::kPwrite, "/A", "", 0, 64}});
    add({{K::kPwrite, "/A", "", 4000, 8192}});  // straddles blocks
    add({{K::kCreate, "/new", "", 0, 0}, {K::kAppend, "/new", "", 0, 3000}});
    add({{K::kAppend, "/A", "", 0, 1000}, {K::kTruncate, "/A", "", 0, 500}});
  }
  return out;
}

}  // namespace crashmk
