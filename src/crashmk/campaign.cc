#include "src/crashmk/campaign.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <utility>

#include "src/aging/geriatrix.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/fs/fscore/generic_fs.h"
#include "src/fs/registry.h"
#include "src/pmem/fault_injector.h"

namespace crashmk {

namespace {

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

aging::AgingConfig MakeAgingConfig(const CampaignConfig& config) {
  aging::AgingConfig aconfig;
  aconfig.target_utilization = config.utilization;
  aconfig.write_multiplier = config.churn;
  aconfig.seed = config.aging_seed;
  aconfig.num_dirs = 8;  // tiny device: keep the namespace shallow
  aconfig.rotate_cpus = config.num_cpus;
  return aconfig;
}

aging::Profile MakeProfile(const std::string& name, uint64_t seed) {
  if (name == "wang-hpc") {
    return aging::Profile::WangHpc(seed);
  }
  return aging::Profile::Agrawal(seed);
}

}  // namespace

Explorer::FsFactory MakeCampaignFactory(const CampaignConfig& config) {
  const std::string name = config.fs;
  const fscore::FsOptions geom{
      .max_inodes = config.max_inodes,
      .journal_blocks = config.journal_blocks,
      .num_cpus = config.num_cpus,
  };
  return [name, geom](pmem::PmemDevice* device) -> std::unique_ptr<vfs::FileSystem> {
    if (name == "winefs") {
      winefs::WineFsOptions options;
      options.base = geom;
      options.base.mode = vfs::GuaranteeMode::kStrict;
      return std::make_unique<winefs::WineFs>(device, options);
    }
    if (name == "ext4-dax") {
      ext4dax::Ext4Options options;
      options.base = geom;
      return std::make_unique<ext4dax::Ext4Dax>(device, options);
    }
    if (name == "xfs-dax") {
      ext4dax::Ext4Options options;
      options.base = geom;
      return std::make_unique<xfsdax::XfsDax>(device, options);
    }
    if (name == "splitfs") {
      ext4dax::Ext4Options options;
      options.base = geom;
      return std::make_unique<splitfs::SplitFs>(device, options);
    }
    if (name == "nova") {
      nova::NovaOptions options;
      options.base = geom;
      return std::make_unique<nova::Nova>(device, options);
    }
    if (name == "pmfs" || name == "pmfs-delayed") {
      pmfs::PmfsOptions options;
      options.base = geom;
      options.base.num_cpus = 1;  // PMFS: single journal by design
      options.base.data_phase_blocks = 1;
      options.delayed_metadata = (name == "pmfs-delayed");
      return std::make_unique<pmfs::Pmfs>(device, options);
    }
    return nullptr;
  };
}

common::Result<pmem::DeviceSnapshot> CampaignSeedImage(const CampaignConfig& config) {
  snap::ImageKey key;
  key.fs = config.fs;
  key.device_bytes = config.device_bytes;
  key.num_cpus = config.num_cpus;
  key.numa_nodes = 1;
  key.profile = config.aging_profile;
  key.seed = config.aging_seed;
  key.utilization = config.utilization;
  key.churn = config.churn;
  key.detail = aging::AgingProvenance(MakeAgingConfig(config)) +
               ";campaign-mi" + std::to_string(config.max_inodes) + "-jb" +
               std::to_string(config.journal_blocks);

  auto factory = MakeCampaignFactory(config);
  auto build = [&]() -> common::Result<pmem::DeviceSnapshot> {
    pmem::PmemDevice device(config.device_bytes);
    auto fs = factory(&device);
    if (fs == nullptr) {
      return common::Status(common::ErrorCode::kInvalidArgument);
    }
    common::ExecContext ctx;
    RETURN_IF_ERROR(fs->Mkfs(ctx));
    aging::Geriatrix geriatrix(fs.get(),
                               MakeProfile(config.aging_profile, config.aging_seed),
                               MakeAgingConfig(config));
    auto stats = geriatrix.Run(ctx);
    if (!stats.ok()) {
      return stats.status();
    }
    RETURN_IF_ERROR(fs->Unmount(ctx));
    return device.Snapshot();
  };
  if (config.corpus != nullptr) {
    return config.corpus->LoadOrBuild(key, build);
  }
  return build();
}

std::string CampaignProvenanceTag(const CampaignConfig& config) {
  std::string tag = "fs=" + config.fs + ";dev=" + std::to_string(config.device_bytes) +
                    ";mi=" + std::to_string(config.max_inodes) +
                    ";jb=" + std::to_string(config.journal_blocks) +
                    ";cpu=" + std::to_string(config.num_cpus);
  if (config.aged) {
    tag += ";aged=" + config.aging_profile + ":" + std::to_string(config.aging_seed) +
           ":" + FormatDouble(config.utilization) + ":" + FormatDouble(config.churn);
  }
  if (config.poison_journal) {
    tag += ";poison=" + std::to_string(config.poison_seed) + ":" +
           std::to_string(config.poison_blocks);
  }
  if (config.torn_writes) {
    tag += ";torn=" + std::to_string(config.torn_seed);
  }
  return tag;
}

common::Result<CampaignResult> RunCampaign(const CampaignConfig& config) {
  auto factory = MakeCampaignFactory(config);
  {
    pmem::PmemDevice probe_dev(config.device_bytes);
    if (factory(&probe_dev) == nullptr) {
      return common::Status(common::ErrorCode::kInvalidArgument);
    }
  }

  Explorer::Config econfig;
  econfig.device_bytes = config.device_bytes;
  econfig.max_subset_bits = config.max_subset_bits;
  econfig.torn_writes = config.torn_writes;
  econfig.torn_seed = config.torn_seed;
  econfig.torn_exhaustive_lanes = config.torn_writes && config.torn_exhaustive_lanes;
  econfig.prune = config.prune;
  econfig.collect_state_hashes = config.collect_state_hashes;
  econfig.cache = std::make_shared<StateCache>();
  // The delayed-metadata victim emits few fences; without the terminal
  // pseudo-epoch its widened vulnerability window has no crash states.
  econfig.terminal_epoch = (config.fs == "pmfs-delayed");
  econfig.archive_dir = config.archive_dir;
  econfig.archive_all = config.archive_all;
  econfig.max_archives = config.max_archives;
  econfig.provenance_tag = CampaignProvenanceTag(config);

  CampaignResult result;
  if (config.aged) {
    auto seed = CampaignSeedImage(config);
    if (!seed.ok()) {
      return seed.status();
    }
    econfig.seed_image = *seed;
    result.seed_provenance = CampaignProvenanceTag(config);
  }

  if (config.poison_journal) {
    // Discover the journal region from a scratch mkfs with the same geometry,
    // then pick media blocks inside it from poison_seed — the plan is a pure
    // function of the config, so a verdict replays exactly.
    pmem::PmemDevice scratch(config.device_bytes);
    auto fs = factory(&scratch);
    common::ExecContext ctx;
    RETURN_IF_ERROR(fs->Mkfs(ctx));
    auto* generic = dynamic_cast<fscore::GenericFs*>(fs.get());
    if (generic == nullptr) {
      return common::Status(common::ErrorCode::kInvalidArgument);
    }
    const uint64_t journal_off = generic->journal_start_block() * common::kBlockSize;
    const uint64_t journal_bytes =
        (generic->inode_table_block() - generic->journal_start_block()) *
        common::kBlockSize;
    const uint64_t media_blocks = journal_bytes / pmem::kMediaBlockBytes;
    common::Rng rng(config.poison_seed);
    for (uint32_t i = 0; i < config.poison_blocks && media_blocks > 0; i++) {
      const uint64_t block = rng.NextBelow(media_blocks);
      econfig.poison_ranges.emplace_back(journal_off + block * pmem::kMediaBlockBytes,
                                         pmem::kMediaBlockBytes);
    }
    econfig.poison_seed = config.poison_seed;
  }

  const std::vector<Workload> workloads =
      Explorer::GenerateAceWorkloads(config.include_data_ops);
  const uint32_t host_workers = std::max<uint32_t>(1, config.host_workers);
  if (host_workers == 1) {
    Explorer explorer(factory, econfig);
    for (const Workload& workload : workloads) {
      result.totals.Accumulate(explorer.RunWorkload(workload));
      result.workloads++;
    }
    return result;
  }

  // Host-parallel fan-out: one Explorer per worker, strided workload
  // assignment, shared striped StateCache (econfig.cache). Per-workload
  // results land in an index-addressed slot and merge in workload order, so
  // the report is deterministic given the same claim outcomes.
  std::vector<ExploreResult> slots(workloads.size());
  std::vector<std::thread> pool;
  pool.reserve(host_workers);
  for (uint32_t w = 0; w < host_workers; w++) {
    Explorer::Config wconfig = econfig;
    if (!wconfig.archive_dir.empty()) {
      wconfig.archive_dir += "/w" + std::to_string(w);
      std::error_code ec;
      std::filesystem::create_directories(wconfig.archive_dir, ec);
    }
    pool.emplace_back([&, w, wconfig]() {
      Explorer explorer(factory, wconfig);
      for (size_t i = w; i < workloads.size(); i += host_workers) {
        slots[i] = explorer.RunWorkload(workloads[i]);
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  for (const ExploreResult& slot : slots) {
    result.totals.Accumulate(slot);
    result.workloads++;
  }
  return result;
}

}  // namespace crashmk
