// Coverage-guided crash-and-corruption campaign (ROADMAP item 5).
//
// A campaign runs the full ACE workload set through the Explorer against one
// filesystem with small "campaign geometry" (few inodes, small journal — so
// the interesting metadata lines cluster and the state space stays dense),
// optionally seeded from an aged snap::Corpus image and/or a FaultInjector
// poison plan over the journal region. One StateCache is shared across all
// workloads, so the pruning ratio (crash states judged per oracle replay)
// compounds across the whole campaign: the fixture makes many op-start images
// coincide between workloads.
#ifndef SRC_CRASHMK_CAMPAIGN_H_
#define SRC_CRASHMK_CAMPAIGN_H_

#include <string>

#include "src/common/result.h"
#include "src/crashmk/explorer.h"
#include "src/snap/corpus.h"

namespace crashmk {

struct CampaignConfig {
  // Filesystem under campaign: the six stock names ("winefs", "ext4-dax",
  // "xfs-dax", "pmfs", "nova", "splitfs") plus "pmfs-delayed" (the injected
  // delayed-metadata vulnerability; automatically explored with a terminal
  // pseudo-epoch so its widened window is reachable).
  std::string fs = "winefs";

  // Campaign geometry (deliberately tiny — dense metadata, fast replay).
  uint64_t device_bytes = 16ull * 1024 * 1024;
  uint64_t max_inodes = 2048;
  uint64_t journal_blocks = 64;
  uint32_t num_cpus = 2;

  // Exploration knobs (see Explorer::Config).
  bool include_data_ops = false;
  bool prune = true;
  bool collect_state_hashes = false;
  bool torn_writes = false;
  uint64_t torn_seed = 0x5eed;
  // With torn_writes: key every non-empty lane mask of each torn line (255
  // states each) rather than the FaultInjector sample. Pruning collapses
  // them to ~2^(differing lanes) replays.
  bool torn_exhaustive_lanes = true;
  uint32_t max_subset_bits = 6;

  // Aged seeding: COW-fork an aged image (built with Geriatrix, cached in the
  // corpus when one is configured) instead of exploring a fresh mkfs.
  bool aged = false;
  snap::Corpus* corpus = nullptr;  // optional cache; nullptr = always build
  std::string aging_profile = "agrawal";
  uint64_t aging_seed = 42;
  double utilization = 0.3;
  double churn = 0.5;

  // Corruption campaign: poison media blocks inside the journal region before
  // every crash-state mount (block choice derives from poison_seed, so a
  // verdict reproduces from the config alone).
  bool poison_journal = false;
  uint64_t poison_seed = 7;
  uint32_t poison_blocks = 2;

  // Host worker threads fanning the ACE workload list out across one
  // Explorer per worker (strided assignment, shared striped StateCache).
  // Results merge in workload index order, so totals are identical to the
  // sequential campaign whenever pruning claims coincide — and counters are
  // order-independent sums either way. With archiving, each worker writes
  // into its own archive_dir subdirectory ("w0", "w1", ...).
  uint32_t host_workers = 1;

  // Failure archiving (replayable kCrashState images; see snapctl replay).
  std::string archive_dir;
  bool archive_all = false;
  uint32_t max_archives = 16;
};

struct CampaignResult {
  ExploreResult totals;
  uint64_t workloads = 0;
  std::string seed_provenance;  // aged-image provenance ("" when fresh)

  // Crash states explored per unit of oracle-replay work — the acceptance
  // metric (>= 10x on the campaign workloads when pruning is on).
  double PruningRatio() const {
    return totals.oracle_replays == 0
               ? 0.0
               : static_cast<double>(totals.crash_states) /
                     static_cast<double>(totals.oracle_replays);
  }
  bool ok() const { return totals.ok(); }
};

// Factory building `config.fs` with the campaign geometry applied. Every
// mount of a campaign (aging build, crash replay, snapctl replay) must use
// this factory so layouts agree.
Explorer::FsFactory MakeCampaignFactory(const CampaignConfig& config);

// The aged seed image for this campaign (built on miss, corpus-cached when
// configured). Only meaningful with config.aged.
common::Result<pmem::DeviceSnapshot> CampaignSeedImage(const CampaignConfig& config);

// Canonical provenance fragment recorded in archived crash images; encodes
// everything `snapctl replay` needs to rebuild the factory.
std::string CampaignProvenanceTag(const CampaignConfig& config);

// Runs the whole campaign: generate ACE workloads, explore each with a shared
// equivalence-class cache, accumulate counters.
common::Result<CampaignResult> RunCampaign(const CampaignConfig& config);

}  // namespace crashmk

#endif  // SRC_CRASHMK_CAMPAIGN_H_
