// CrashMonkey/ACE-style crash-consistency explorer (§5.2).
//
// For every operation of a workload it records the persist epochs the
// filesystem generated, enumerates crash states (each fence boundary, plus
// every subset of the lines that were in flight there), reboots a fresh
// filesystem instance on each crash image, runs recovery, and checks that the
// recovered logical state equals either the pre-op or the post-op oracle.
//
// Coverage-guided pruning: every candidate crash state gets an image
// equivalence key — FNV-1a of the op-start persistent image XOR one term per
// cacheline that differs from it (hashing offset + content). Two candidates
// with byte-identical device images always share a key, no matter which
// fence/subset produced them, and the key of a candidate is computable from
// the enumeration deltas WITHOUT materializing the full image. With pruning
// enabled the explorer replays recovery only for the first member of each
// class; the counters (distinct_images, oracle_replays, pruned_replays,
// recovered_state_hashes) let tests prove the pruned campaign covers the same
// distinct-state set as exhaustive replay.
#ifndef SRC_CRASHMK_EXPLORER_H_
#define SRC_CRASHMK_EXPLORER_H_

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/crashmk/oracle.h"
#include "src/pmem/device.h"
#include "src/vfs/file_system.h"

namespace crashmk {

struct CrashOp {
  enum class Kind {
    kCreate,
    kAppend,
    kPwrite,
    kUnlink,
    kMkdir,
    kRmdir,
    kRename,
    kTruncate,
    kFallocate,
  };
  Kind kind;
  std::string path;
  std::string path2;  // rename target
  uint64_t offset = 0;
  uint64_t len = 0;

  // Data-path ops are only atomic under strict guarantees; metadata ops must
  // be atomic in every mode.
  bool IsDataOp() const { return kind == Kind::kAppend || kind == Kind::kPwrite; }
  std::string Describe() const;
};

using Workload = std::vector<CrashOp>;

// Set of crash-image equivalence classes already claimed for oracle replay.
// Share one cache across the workloads of a campaign (via Config::cache) so
// identical torn images reached from different workloads — the fixture makes
// op-start images coincide — are judged exactly once. Striped by key so
// host-parallel campaign workers (CampaignConfig::host_workers) claim
// concurrently without serializing on one map mutex; a key always maps to
// the same stripe, so claim-exactly-once holds across workers.
class StateCache {
 public:
  // Claims `key`; true if it was unseen (the caller owns judging it).
  bool Claim(uint64_t key) {
    Stripe& stripe = stripes_[key % kStripes];
    std::lock_guard<std::mutex> guard(stripe.mu);
    return stripe.seen.insert(key).second;
  }
  size_t size() const {
    size_t total = 0;
    for (const Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> guard(stripe.mu);
      total += stripe.seen.size();
    }
    return total;
  }

 private:
  static constexpr size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_set<uint64_t> seen;
  };
  std::array<Stripe, kStripes> stripes_;
};

struct ExploreResult {
  uint64_t ops_executed = 0;
  uint64_t crash_states = 0;
  uint64_t mount_failures = 0;
  uint64_t oracle_failures = 0;
  // Coverage accounting. crash_states = oracle_replays + pruned_replays;
  // distinct_images counts first-seen image equivalence classes (== crash
  // states judged when pruning is on; == classes either way).
  uint64_t oracle_replays = 0;
  uint64_t pruned_replays = 0;
  uint64_t distinct_images = 0;
  // Crash mounts refused with EIO under an active poison plan — successful
  // corruption *detection* (refuse-when-dirty policy), not a failure.
  uint64_t refused_mounts = 0;
  // Distinct recovered logical states (Oracle::StateHash), filled when
  // Config::collect_state_hashes is set. The pruned-vs-exhaustive
  // equivalence proof compares these sets.
  std::set<uint64_t> recovered_state_hashes;
  // Crash states archived as replayable snapshot images (Config::archive_dir).
  uint64_t archived = 0;
  std::vector<std::string> archive_paths;
  std::string first_failure;

  bool ok() const { return mount_failures == 0 && oracle_failures == 0; }

  void Accumulate(const ExploreResult& other) {
    ops_executed += other.ops_executed;
    crash_states += other.crash_states;
    mount_failures += other.mount_failures;
    oracle_failures += other.oracle_failures;
    oracle_replays += other.oracle_replays;
    pruned_replays += other.pruned_replays;
    distinct_images += other.distinct_images;
    refused_mounts += other.refused_mounts;
    recovered_state_hashes.insert(other.recovered_state_hashes.begin(),
                                  other.recovered_state_hashes.end());
    archived += other.archived;
    archive_paths.insert(archive_paths.end(), other.archive_paths.begin(),
                         other.archive_paths.end());
    if (first_failure.empty()) {
      first_failure = other.first_failure;
    }
  }
};

class Explorer {
 public:
  using FsFactory = std::function<std::unique_ptr<vfs::FileSystem>(pmem::PmemDevice*)>;

  struct Config {
    uint64_t device_bytes = 16ull * 1024 * 1024;
    // Cap on exhaustive subset enumeration per fence boundary (2^bits states).
    uint32_t max_subset_bits = 6;
    // Torn-store composition: x86 persists only 8 bytes atomically, so each
    // cacheline crash state additionally admits partially-persisted lines.
    // When enabled, every fence boundary also explores states where the
    // seq-ordered prefix of eligible lines persisted fully and the next line
    // tore at 8-byte-lane granularity (masks from FaultInjector, so a failing
    // state is reproducible from the seed).
    bool torn_writes = false;
    uint64_t torn_seed = 1;
    uint32_t max_torn_variants_per_line = 3;
    // Enumerate ALL 255 non-empty lane masks per torn line instead of the
    // FaultInjector sample. Only affordable with pruning: a line where k
    // lanes differ from the base collapses into 2^k image classes, so the
    // 255 keyed states cost ~2^k oracle replays (the coverage-guided
    // campaign's showcase; keys are computed without building images).
    bool torn_exhaustive_lanes = false;
    // Bounds the torn-line sweep per fence (bulk zeroing can leave thousands
    // of lines in flight; an even-stride sample keeps runtime sane).
    uint32_t max_torn_lines_per_epoch = 16;
    // Coverage-guided pruning: skip mount + oracle replay for crash images
    // whose equivalence class was already judged. Enumeration (and therefore
    // distinct_images) is identical with pruning on or off; only the replay
    // work changes.
    bool prune = false;
    // Record Oracle::StateHash of every judged recovery into
    // recovered_state_hashes (the pruned-vs-exhaustive equivalence proof).
    bool collect_state_hashes = false;
    // Shared equivalence-class cache; when null each RunWorkload uses its own.
    std::shared_ptr<StateCache> cache;
    // After the op's recorded epochs, synthesize one terminal pseudo-epoch
    // from the lines still in flight at op end. Synchronous filesystems leave
    // nothing behind (their last fence drained everything), but a
    // delayed-metadata filesystem emits few or no fences — without this the
    // widened vulnerability window would produce zero crash states.
    bool terminal_epoch = false;
    // Aged seeding: when valid, RunWorkload COW-forks this image and Mounts
    // it instead of Mkfs on a fresh device, then lays the ACE fixture on top.
    // device_bytes is ignored in favor of the image's size.
    pmem::DeviceSnapshot seed_image;
    // Corruption campaign: these byte ranges are (re-)poisoned on the crash
    // device before every crash-state mount. A mount that refuses with EIO
    // counts as refused_mounts (the refuse-when-dirty policy detecting the
    // corruption); repair policies proceed to the oracle check as usual.
    std::vector<std::pair<uint64_t, uint64_t>> poison_ranges;
    uint64_t poison_seed = 7;
    // When non-empty, interesting crash states are archived into this
    // directory as replayable snapshot images (src/snap, kind=kCrashState):
    // by default only failing states (mount or oracle failure — a durable
    // regression corpus for the exact torn image that broke), with
    // archive_all extending that to every explored state. Each image's
    // provenance records the workload op and crash-state ordinal.
    std::string archive_dir;
    bool archive_all = false;
    uint32_t max_archives = 16;
    // Extra provenance recorded in archived images ("fs=pmfs;mi=2048;..."),
    // so `snapctl replay` can rebuild the factory from the file alone.
    std::string provenance_tag;
  };

  Explorer(FsFactory factory, Config config) : factory_(std::move(factory)), config_(config) {}

  // Runs one workload against a fresh filesystem with the standard fixture
  // (/A, /B with contents, directory /D with /D/C) pre-created.
  ExploreResult RunWorkload(const Workload& workload);

  // ACE-style generated workloads: every single op, plus two-op sequences
  // that chain dependent metadata updates.
  static std::vector<Workload> GenerateAceWorkloads(bool include_data_ops);

 private:
  common::Status ApplyOp(common::ExecContext& ctx, vfs::FileSystem& fs, const CrashOp& op);

  FsFactory factory_;
  Config config_;
};

}  // namespace crashmk

#endif  // SRC_CRASHMK_EXPLORER_H_
