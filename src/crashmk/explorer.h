// CrashMonkey/ACE-style crash-consistency explorer (§5.2).
//
// For every operation of a workload it records the persist epochs the
// filesystem generated, enumerates crash states (each fence boundary, plus
// every subset of the lines that were in flight there), reboots a fresh
// filesystem instance on each crash image, runs recovery, and checks that the
// recovered logical state equals either the pre-op or the post-op oracle.
#ifndef SRC_CRASHMK_EXPLORER_H_
#define SRC_CRASHMK_EXPLORER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/crashmk/oracle.h"
#include "src/pmem/device.h"
#include "src/vfs/file_system.h"

namespace crashmk {

struct CrashOp {
  enum class Kind {
    kCreate,
    kAppend,
    kPwrite,
    kUnlink,
    kMkdir,
    kRmdir,
    kRename,
    kTruncate,
    kFallocate,
  };
  Kind kind;
  std::string path;
  std::string path2;  // rename target
  uint64_t offset = 0;
  uint64_t len = 0;

  // Data-path ops are only atomic under strict guarantees; metadata ops must
  // be atomic in every mode.
  bool IsDataOp() const { return kind == Kind::kAppend || kind == Kind::kPwrite; }
  std::string Describe() const;
};

using Workload = std::vector<CrashOp>;

struct ExploreResult {
  uint64_t ops_executed = 0;
  uint64_t crash_states = 0;
  uint64_t mount_failures = 0;
  uint64_t oracle_failures = 0;
  // Crash states archived as replayable snapshot images (Config::archive_dir).
  uint64_t archived = 0;
  std::vector<std::string> archive_paths;
  std::string first_failure;

  bool ok() const { return mount_failures == 0 && oracle_failures == 0; }
};

class Explorer {
 public:
  using FsFactory = std::function<std::unique_ptr<vfs::FileSystem>(pmem::PmemDevice*)>;

  struct Config {
    uint64_t device_bytes = 16ull * 1024 * 1024;
    // Cap on exhaustive subset enumeration per fence boundary (2^bits states).
    uint32_t max_subset_bits = 6;
    // Torn-store composition: x86 persists only 8 bytes atomically, so each
    // cacheline crash state additionally admits partially-persisted lines.
    // When enabled, every fence boundary also explores states where the
    // seq-ordered prefix of eligible lines persisted fully and the next line
    // tore at 8-byte-lane granularity (masks from FaultInjector, so a failing
    // state is reproducible from the seed).
    bool torn_writes = false;
    uint64_t torn_seed = 1;
    uint32_t max_torn_variants_per_line = 3;
    // Bounds the torn-line sweep per fence (bulk zeroing can leave thousands
    // of lines in flight; an even-stride sample keeps runtime sane).
    uint32_t max_torn_lines_per_epoch = 16;
    // When non-empty, interesting crash states are archived into this
    // directory as replayable snapshot images (src/snap, kind=kCrashState):
    // by default only failing states (mount or oracle failure — a durable
    // regression corpus for the exact torn image that broke), with
    // archive_all extending that to every explored state. Each image's
    // provenance records the workload op and crash-state ordinal.
    std::string archive_dir;
    bool archive_all = false;
    uint32_t max_archives = 16;
  };

  Explorer(FsFactory factory, Config config) : factory_(std::move(factory)), config_(config) {}

  // Runs one workload against a fresh filesystem with the standard fixture
  // (/A, /B with contents, directory /D with /D/C) pre-created.
  ExploreResult RunWorkload(const Workload& workload);

  // ACE-style generated workloads: every single op, plus two-op sequences
  // that chain dependent metadata updates.
  static std::vector<Workload> GenerateAceWorkloads(bool include_data_ops);

 private:
  common::Status ApplyOp(common::ExecContext& ctx, vfs::FileSystem& fs, const CrashOp& op);

  FsFactory factory_;
  Config config_;
};

}  // namespace crashmk

#endif  // SRC_CRASHMK_EXPLORER_H_
