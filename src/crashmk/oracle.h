// Oracle: a logical snapshot of a filesystem's user-visible state (paths,
// sizes, content hashes). CrashMonkey-style checking compares a recovered
// filesystem against the pre-op and post-op oracles: an atomic, synchronous
// filesystem must recover to exactly one of the two.
#ifndef SRC_CRASHMK_ORACLE_H_
#define SRC_CRASHMK_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/exec_context.h"
#include "src/vfs/file_system.h"

namespace crashmk {

struct OracleEntry {
  bool is_dir = false;
  uint64_t size = 0;
  uint64_t content_hash = 0;

  bool operator==(const OracleEntry&) const = default;
};

class Oracle {
 public:
  // Captures the full logical state reachable from "/".
  static Oracle Capture(common::ExecContext& ctx, vfs::FileSystem& fs);

  bool operator==(const Oracle&) const = default;

  // Human-readable diff for failure messages (empty if equal).
  std::string DiffAgainst(const Oracle& other) const;

  const std::map<std::string, OracleEntry>& entries() const { return entries_; }

 private:
  std::map<std::string, OracleEntry> entries_;
};

}  // namespace crashmk

#endif  // SRC_CRASHMK_ORACLE_H_
