// Oracle: a logical snapshot of a filesystem's user-visible state (paths,
// sizes, content hashes). CrashMonkey-style checking compares a recovered
// filesystem against the pre-op and post-op oracles: an atomic, synchronous
// filesystem must recover to exactly one of the two.
#ifndef SRC_CRASHMK_ORACLE_H_
#define SRC_CRASHMK_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/exec_context.h"
#include "src/vfs/file_system.h"

namespace crashmk {

struct OracleEntry {
  bool is_dir = false;
  // Listed by its parent directory but unreachable: ReadDir returned the name
  // but Stat on the path fails. This is the dirent-persisted-without-inode
  // window that delayed-metadata filesystems open; treating it as a distinct
  // observable (instead of skipping the entry) is what lets the campaign
  // catch it — a dangling entry can never equal a pre- or post-op state.
  bool dangling = false;
  uint64_t size = 0;
  uint64_t content_hash = 0;

  bool operator==(const OracleEntry&) const = default;
};

class Oracle {
 public:
  // Captures the full logical state reachable from "/".
  static Oracle Capture(common::ExecContext& ctx, vfs::FileSystem& fs);

  bool operator==(const Oracle&) const = default;

  // Human-readable diff for failure messages (empty if equal).
  std::string DiffAgainst(const Oracle& other) const;

  // FNV-1a hash of the full logical state (paths + entry fields, in path
  // order). Two oracles are == iff their hashes match (modulo collisions);
  // the explorer's coverage counters use this to prove the pruned campaign
  // reaches the same distinct recovered-state set as exhaustive replay.
  uint64_t StateHash() const;

  const std::map<std::string, OracleEntry>& entries() const { return entries_; }

 private:
  std::map<std::string, OracleEntry> entries_;
};

}  // namespace crashmk

#endif  // SRC_CRASHMK_ORACLE_H_
