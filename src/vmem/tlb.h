// Two-level TLB simulator with split 4 KB / 2 MB first-level arrays.
// Hugepages matter here twice over: one 2 MB entry covers 512 base pages, and
// the 2 MB array is large enough relative to typical hot sets that mapped-huge
// working sets rarely miss.
//
// Two interchangeable LRU-set implementations back the TLB:
//   FlatLruSet      — flat-array intrusive list + open-addressing index;
//                     zero heap allocation per Lookup/Insert (everything is
//                     sized at construction). This is the production impl.
//   ReferenceLruSet — the original std::list + std::unordered_map structure,
//                     kept for differential testing.
// Both make bit-identical replacement decisions (exact LRU, evict-oldest); the
// WINEFS_REFERENCE_SIM build switch / environment variable selects which one a
// Tlb uses via MmuParams::reference_sim.
#ifndef SRC_VMEM_TLB_H_
#define SRC_VMEM_TLB_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"
#include "src/vmem/mmu_params.h"

namespace vmem {

enum class TlbResult {
  kL1Hit,
  kL2Hit,
  kMiss,  // full page walk required
};

// Reference LRU set: std::list order + hash index. One allocation per Insert
// (list node + hash slot); kept only for differential testing against
// FlatLruSet.
class ReferenceLruSet {
 public:
  explicit ReferenceLruSet(uint32_t capacity) : capacity_(capacity) {}
  bool Touch(uint64_t key);  // true if present (and refreshed)
  void Insert(uint64_t key);
  void Erase(uint64_t key);
  void Clear();

 private:
  uint32_t capacity_;
  std::list<uint64_t> order_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
};

// Open-addressing key -> slot index (linear probing, backward-shift deletion)
// shared by the flat LRU sets below. All storage is sized at construction; no
// operation allocates.
class SlotIndex {
 public:
  static constexpr uint32_t kNil = 0xffffffffu;

  SlotIndex() = default;
  explicit SlotIndex(uint32_t capacity);

  // Bucket holding key, or kNil. Inline: this probe is the first step of
  // every TLB lookup.
  uint32_t Find(uint64_t key) const {
    uint32_t b = BucketOf(key, mask_);
    while (slot_of_[b] != kNil) {
      if (key_of_[b] == key) {
        return b;
      }
      b = (b + 1) & mask_;
    }
    return kNil;
  }
  uint32_t SlotAt(uint32_t bucket) const { return slot_of_[bucket]; }
  void Insert(uint64_t key, uint32_t slot);
  void Erase(uint64_t key);
  void Clear();

 private:
  static uint32_t BucketOf(uint64_t key, uint32_t mask) {
    return static_cast<uint32_t>((key * 0x9e3779b97f4a7c15ull) >> 32) & mask;
  }

  // key_of_[b] is valid iff slot_of_[b] != kNil.
  uint32_t mask_ = 0;
  std::vector<uint64_t> key_of_;
  std::vector<uint32_t> slot_of_;
};

// Flat LRU set: entries live in a fixed slot array linked into an intrusive
// MRU->LRU list by index; a SlotIndex maps key -> slot. All storage is
// allocated at construction, so Touch/Insert/Erase never allocate.
class FlatLruSet {
 public:
  explicit FlatLruSet(uint32_t capacity);

  // Touch is the Lookup hot path; defined inline (with its relink helpers) so
  // batched callers pay no call per simulated access.
  bool Touch(uint64_t key) {
    const uint32_t b = index_.Find(key);
    if (b == SlotIndex::kNil) {
      return false;
    }
    MoveToFront(index_.SlotAt(b));
    return true;
  }
  void Insert(uint64_t key);
  void Erase(uint64_t key);
  void Clear();

 private:
  static constexpr uint32_t kNil = SlotIndex::kNil;

  struct Slot {
    uint64_t key = 0;
    uint32_t prev = kNil;
    uint32_t next = kNil;
  };

  void MoveToFront(uint32_t slot) {
    if (head_ == slot) {
      return;
    }
    Unlink(slot);
    PushFront(slot);
  }
  void PushFront(uint32_t slot) {
    slots_[slot].prev = kNil;
    slots_[slot].next = head_;
    if (head_ != kNil) {
      slots_[head_].prev = slot;
    }
    head_ = slot;
    if (tail_ == kNil) {
      tail_ = slot;
    }
  }
  void Unlink(uint32_t slot) {
    const uint32_t prev = slots_[slot].prev;
    const uint32_t next = slots_[slot].next;
    if (prev != kNil) {
      slots_[prev].next = next;
    } else {
      head_ = next;
    }
    if (next != kNil) {
      slots_[next].prev = prev;
    } else {
      tail_ = prev;
    }
  }

  uint32_t capacity_;
  uint32_t size_ = 0;
  uint32_t head_ = kNil;  // most recent
  uint32_t tail_ = kNil;  // least recent
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_;  // slots returned by Erase
  SlotIndex index_;
};

// Exact-LRU set for capacities up to 64, built for churn: the first-level TLB
// arrays promote (evict + insert) on nearly every access under base-page
// pressure, and an open-addressing index pays two mispredict-heavy probe
// loops per promotion there. This set keeps no index at all. Membership is
// resolved by a SWAR scan of one 8-bit signature per slot (eight slots per
// u64 word), verified against the full key, with a 64-bit valid mask ruling
// out stale lanes — a handful of branch-free ALU ops over at most 64 bytes of
// hot data. Recency is the same intrusive MRU list as FlatLruSet (byte
// indices), so Touch/Insert/Erase make bit-identical replacement decisions.
class SmallLruSet {
 public:
  static constexpr uint32_t kMaxCapacity = 64;

  explicit SmallLruSet(uint32_t capacity);

  bool Touch(uint64_t key) {
    const uint32_t slot = Probe(key);
    if (slot == kNil) {
      return false;
    }
    MoveToFront(slot);
    return true;
  }
  void Insert(uint64_t key);
  void Erase(uint64_t key);
  void Clear();

  // Insert for callers that have just probed and missed (the L1-promotion
  // path): skips the membership probe Insert would repeat. Calling this with
  // a key already in the set would duplicate it — the TLB promote path is the
  // only user.
  void InsertAbsent(uint64_t key) {
    if (capacity_ == 0) {
      return;
    }
    uint32_t slot;
    const uint64_t cap_mask = capacity_ == 64 ? ~0ull : (1ull << capacity_) - 1;
    const uint64_t empty = ~valid_ & cap_mask;
    if (empty == 0) {
      slot = tail_;  // evict LRU, reuse its slot
      Unlink(slot);
    } else {
      slot = static_cast<uint32_t>(__builtin_ctzll(empty));
      valid_ |= 1ull << slot;
    }
    keys_[slot] = key;
    SetSig(slot, Sig8(key));
    PushFront(slot);
  }

 private:
  static constexpr uint32_t kNil = 0xffu;
  static constexpr uint64_t kLow = 0x0101010101010101ull;
  static constexpr uint64_t kHigh = 0x8080808080808080ull;

  static uint8_t Sig8(uint64_t key) {
    return static_cast<uint8_t>((key * 0x9e3779b97f4a7c15ull) >> 56);
  }

  // Slot holding key, or kNil. The zero-byte detect can flag a lane whose
  // byte is not the signature (a borrow from a true match below it) and lanes
  // of erased slots keep stale signatures, so every candidate is verified
  // against the valid mask and the stored key; there are no false negatives.
  uint32_t Probe(uint64_t key) const {
    const uint64_t probe = kLow * Sig8(key);
    const uint32_t words = (capacity_ + 7) / 8;
    for (uint32_t j = 0; j < words; j++) {
      const uint64_t x = sig_[j] ^ probe;
      uint64_t cand = (x - kLow) & ~x & kHigh;
      while (cand != 0) {
        const uint32_t slot = j * 8 + (static_cast<uint32_t>(__builtin_ctzll(cand)) >> 3);
        if ((valid_ >> slot & 1) != 0 && keys_[slot] == key) {
          return slot;
        }
        cand &= cand - 1;
      }
    }
    return kNil;
  }

  void MoveToFront(uint32_t slot) {
    if (head_ == slot) {
      return;
    }
    Unlink(slot);
    PushFront(slot);
  }
  void PushFront(uint32_t slot) {
    prev_[slot] = kNil;
    next_[slot] = static_cast<uint8_t>(head_);
    if (head_ != kNil) {
      prev_[head_] = static_cast<uint8_t>(slot);
    }
    head_ = slot;
    if (tail_ == kNil) {
      tail_ = slot;
    }
  }
  void Unlink(uint32_t slot) {
    const uint32_t prev = prev_[slot];
    const uint32_t next = next_[slot];
    if (prev != kNil) {
      next_[prev] = static_cast<uint8_t>(next);
    } else {
      head_ = next;
    }
    if (next != kNil) {
      prev_[next] = static_cast<uint8_t>(prev);
    } else {
      tail_ = prev;
    }
  }
  void SetSig(uint32_t slot, uint8_t sig) {
    const uint32_t shift = slot % 8 * 8;
    uint64_t& word = sig_[slot / 8];
    word = (word & ~(0xffull << shift)) | (uint64_t{sig} << shift);
  }

  uint32_t capacity_;
  uint64_t valid_ = 0;  // bit per occupied slot; the only occupancy record
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
  uint64_t sig_[kMaxCapacity / 8] = {};
  uint64_t keys_[kMaxCapacity] = {};
  uint8_t prev_[kMaxCapacity] = {};
  uint8_t next_[kMaxCapacity] = {};
};

class Tlb {
 public:
  explicit Tlb(const MmuParams& params);

  // Looks up the page covering `vaddr`. `huge` selects the translation size
  // the page was mapped with. A hit refreshes LRU position; on kL2Hit the
  // entry is promoted into L1; on kMiss the caller must Walk and then Insert.
  // Defined inline below: the flat-set L1-hit case — the overwhelmingly
  // common one — runs without a function call.
  TlbResult Lookup(uint64_t vaddr, bool huge);

  void Insert(uint64_t vaddr, bool huge);

  // Removes translations covering the page (TLB shootdown on munmap/remap).
  void InvalidatePage(uint64_t vaddr, bool huge);
  void Flush();

  bool reference_sim() const { return reference_; }

 private:
  static uint64_t PageNumber(uint64_t vaddr, bool huge) {
    // Tag with the size bit so 4 KB and 2 MB entries never alias in L2.
    const uint64_t page = huge ? vaddr / common::kHugepageSize : vaddr / common::kBlockSize;
    return (page << 1) | (huge ? 1 : 0);
  }

  // Out-of-line tail of Lookup for the reference structures (which cannot be
  // usefully inlined). The fast-set L2-probe/promote tail is inline below.
  TlbResult LookupReference(uint64_t key, bool huge);
  TlbResult LookupFastTail(uint64_t key, bool huge) {
    if (f_l2_.Touch(key)) {
      // Promote into L1; the L1 probe in Lookup just missed, so the key is
      // known absent there.
      (huge ? f_l1_2m_ : f_l1_4k_).InsertAbsent(key);
      return TlbResult::kL2Hit;
    }
    return TlbResult::kMiss;
  }

  const bool reference_;

  // Only the implementation selected by reference_ is populated; the other
  // sets are constructed with capacity 0 and never touched. The fast build
  // uses the SWAR small set for the (at most 64-entry) L1 arrays and the
  // indexed flat set for the large L2.
  SmallLruSet f_l1_4k_;
  SmallLruSet f_l1_2m_;
  FlatLruSet f_l2_;
  ReferenceLruSet r_l1_4k_;
  ReferenceLruSet r_l1_2m_;
  ReferenceLruSet r_l2_;
};

inline TlbResult Tlb::Lookup(uint64_t vaddr, bool huge) {
  const uint64_t key = PageNumber(vaddr, huge);
  if (reference_) {
    return LookupReference(key, huge);
  }
  if ((huge ? f_l1_2m_ : f_l1_4k_).Touch(key)) {
    return TlbResult::kL1Hit;
  }
  return LookupFastTail(key, huge);
}

}  // namespace vmem

#endif  // SRC_VMEM_TLB_H_
