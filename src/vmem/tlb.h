// Two-level TLB simulator with split 4 KB / 2 MB first-level arrays.
// Hugepages matter here twice over: one 2 MB entry covers 512 base pages, and
// the 2 MB array is large enough relative to typical hot sets that mapped-huge
// working sets rarely miss.
#ifndef SRC_VMEM_TLB_H_
#define SRC_VMEM_TLB_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/vmem/mmu_params.h"

namespace vmem {

enum class TlbResult {
  kL1Hit,
  kL2Hit,
  kMiss,  // full page walk required
};

class Tlb {
 public:
  explicit Tlb(const MmuParams& params);

  // Looks up the page covering `vaddr`. `huge` selects the translation size
  // the page was mapped with. A hit refreshes LRU position; on kL2Hit the
  // entry is promoted into L1; on kMiss the caller must Walk and then Insert.
  TlbResult Lookup(uint64_t vaddr, bool huge);

  void Insert(uint64_t vaddr, bool huge);

  // Removes translations covering the page (TLB shootdown on munmap/remap).
  void InvalidatePage(uint64_t vaddr, bool huge);
  void Flush();

 private:
  // LRU set of page numbers with bounded capacity.
  class LruSet {
   public:
    explicit LruSet(uint32_t capacity) : capacity_(capacity) {}
    bool Touch(uint64_t key);  // true if present (and refreshed)
    void Insert(uint64_t key);
    void Erase(uint64_t key);
    void Clear();

   private:
    uint32_t capacity_;
    std::list<uint64_t> order_;  // front = most recent
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
  };

  static uint64_t PageNumber(uint64_t vaddr, bool huge);

  LruSet l1_4k_;
  LruSet l1_2m_;
  LruSet l2_;  // unified; keys tagged with the size bit
};

}  // namespace vmem

#endif  // SRC_VMEM_TLB_H_
