#include "src/vmem/llc_cache.h"

#include "src/common/units.h"

namespace vmem {

LlcCache::LlcCache(const MmuParams& params) : ways_(params.llc_ways) {
  const uint64_t lines = params.llc_bytes / common::kCacheline;
  num_sets_ = lines / ways_;
  if (num_sets_ == 0) {
    num_sets_ = 1;
  }
  table_.assign(num_sets_ * ways_, Way{});
}

bool LlcCache::Access(uint64_t paddr) {
  const uint64_t line = paddr / common::kCacheline;
  const uint64_t set = line % num_sets_;
  const uint64_t tag = line / num_sets_;
  Way* base = &table_[set * ways_];
  tick_++;

  Way* victim = base;
  for (uint32_t w = 0; w < ways_; w++) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = tick_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

void LlcCache::Flush() {
  for (Way& way : table_) {
    way.valid = false;
  }
  tick_ = 0;
}

}  // namespace vmem
