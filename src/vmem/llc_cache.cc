#include "src/vmem/llc_cache.h"

#include "src/common/units.h"

namespace vmem {

LlcCache::LlcCache(const MmuParams& params)
    : reference_(params.reference_sim), ways_(params.llc_ways) {
  const uint64_t lines = params.llc_bytes / common::kCacheline;
  num_sets_ = lines / ways_;
  if (num_sets_ == 0) {
    num_sets_ = 1;
  }
  if (num_sets_ > 1 && (num_sets_ & (num_sets_ - 1)) == 0) {
    set_mask_ = num_sets_ - 1;
    set_shift_ = static_cast<uint32_t>(__builtin_ctzll(num_sets_));
  }
  if (reference_) {
    table_.assign(num_sets_ * ways_, Way{});
  } else {
    // Round each set's block up to whole cachelines so blocks never share a
    // line and a probe's footprint is a fixed handful of contiguous lines;
    // over-allocate so set 0 can start on a cacheline boundary.
    constexpr uint64_t kU64sPerLine = common::kCacheline / sizeof(uint64_t);
    nsig_ = (ways_ + 7) / 8;
    set_stride_ =
        (1 + nsig_ + 2 * uint64_t{ways_} + kU64sPerLine - 1) & ~(kU64sPerLine - 1);
    blocks_.assign(num_sets_ * set_stride_ + kU64sPerLine - 1, 0);
    const uintptr_t raw = reinterpret_cast<uintptr_t>(blocks_.data());
    const uintptr_t aligned = (raw + common::kCacheline - 1) & ~uintptr_t{common::kCacheline - 1};
    base_ = blocks_.data() + (aligned - raw) / sizeof(uint64_t);
  }
}

bool LlcCache::AccessReference(uint64_t set, uint64_t tag) {
  Way* base = &table_[set * ways_];
  Way* victim = base;
  for (uint32_t w = 0; w < ways_; w++) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = tick_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

bool LlcCache::AccessFastMiss(uint64_t* block, uint64_t valid, uint64_t tag) {
  uint64_t* tags = block + 1 + nsig_;
  uint64_t* stamps = tags + ways_;
  uint32_t victim;
  const uint64_t ways_mask = ways_ == 64 ? ~0ull : (1ull << ways_) - 1;
  const uint64_t invalid = ~valid & ways_mask;
  if (invalid != 0) {
    // The reference scan leaves the victim pointer on the LAST invalid way it
    // sees, so mirror that: highest set bit of the invalid mask.
    victim = 63u - static_cast<uint32_t>(__builtin_clzll(invalid));
  } else {
    victim = 0;
    uint64_t best = stamps[0];
    for (uint32_t w = 1; w < ways_; w++) {
      // cmov-friendly strict-min scan; ties keep the lowest index, matching
      // the reference walk.
      const bool lower = stamps[w] < best;
      victim = lower ? w : victim;
      best = lower ? stamps[w] : best;
    }
  }
  block[0] = valid | (1ull << victim);
  const uint32_t shift = victim % 8 * 8;
  uint64_t& sig_word = block[1 + victim / 8];
  sig_word = (sig_word & ~(0xffull << shift)) | (uint64_t{Sig8(tag)} << shift);
  tags[victim] = tag;
  stamps[victim] = tick_;
  return false;
}

void LlcCache::Flush() {
  if (reference_) {
    for (Way& way : table_) {
      way.valid = false;
    }
  } else {
    for (uint64_t s = 0; s < num_sets_; s++) {
      base_[s * set_stride_] = 0;
    }
  }
  tick_ = 0;
}

uint64_t LlcCache::StateHash() const {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; i++) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (uint64_t s = 0; s < num_sets_; s++) {
    const uint64_t* block = reference_ ? nullptr : base_ + s * set_stride_;
    for (uint32_t w = 0; w < ways_; w++) {
      const uint64_t idx = s * ways_ + w;
      // Hash only live state: an invalid way's tag/stamp are policy-invisible
      // (the reference path leaves stale values behind after Flush).
      const bool valid = reference_ ? table_[idx].valid : (block[0] >> w & 1) != 0;
      mix(valid ? 1 : 0);
      if (valid) {
        mix(reference_ ? table_[idx].tag : block[1 + nsig_ + w]);
        mix(reference_ ? table_[idx].lru : block[1 + nsig_ + ways_ + w]);
      }
    }
  }
  return h;
}

}  // namespace vmem
