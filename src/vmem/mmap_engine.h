// Memory-map simulation: address-space management, translation (TLB + page
// walk through the LLC), page-fault dispatch into the owning filesystem, and
// cost accounting for mapped access.
//
// Hugepage rule (paper §2.2): a 2 MB chunk of a mapping is served by one PMD
// entry iff the filesystem can hand back a physical extent that covers the
// whole 2 MB-aligned file chunk and is itself 2 MB-aligned. Otherwise every
// 4 KB page faults separately and occupies its own TLB entry.
#ifndef SRC_VMEM_MMAP_ENGINE_H_
#define SRC_VMEM_MMAP_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/result.h"
#include "src/obs/gauges.h"
#include "src/pmem/device.h"
#include "src/vmem/llc_cache.h"
#include "src/vmem/mmu_params.h"
#include "src/vmem/page_table.h"
#include "src/vmem/tlb.h"

namespace vmem {

// Implemented by filesystems: resolve a page fault on a DAX mapping.
class FaultHandler {
 public:
  struct FaultMapping {
    // Device offset of the start of the mapped unit (2 MB chunk if huge,
    // 4 KB page otherwise).
    uint64_t phys = 0;
    bool huge = false;
  };

  virtual ~FaultHandler() = default;

  // `page_offset` is the 4 KB-aligned file offset that faulted; `write` tells
  // the FS whether this is an allocating (write) fault. The FS charges any
  // fault-path work (allocation, zeroing) to ctx.clock itself.
  virtual common::Result<FaultMapping> HandleFault(common::ExecContext& ctx, uint64_t ino,
                                                   uint64_t page_offset, bool write) = 0;
};

class MmapEngine;

// One batched single-cacheline access; see MappedFile::AccessLines.
struct LineOp {
  uint64_t offset = 0;      // byte offset within the mapping
  uint64_t value = 0;       // loads: first 8 bytes read; stores: 8 bytes to write
  uint64_t latency_ns = 0;  // out: modeled latency of this access
};

// One mmap'd file region. All accesses go through the cost-accounted APIs.
class MappedFile {
 public:
  ~MappedFile();

  uint64_t length() const { return length_; }
  uint64_t va_base() const { return va_base_; }
  uint64_t ino() const { return ino_; }

  // Bulk sequential access (memcpy-style): data charged at streaming rates,
  // bytes actually copied to/from the device. Translation is modeled per 4 KB
  // page, but a run of pages inside one huge-mapped chunk is translated once
  // and copied with a single memcpy of up to 2 MB — the per-page TLB hits the
  // reference loop would record are charged in bulk, so counters and the
  // simulated clock are identical either way.
  common::Status Write(common::ExecContext& ctx, uint64_t offset, const void* src,
                       uint64_t len);
  common::Status Read(common::ExecContext& ctx, uint64_t offset, void* dst, uint64_t len);

  // Single-cacheline access with full TLB + LLC modeling; for pointer-chasing
  // and random-read workloads (Fig 4, Fig 8). Returns the modeled latency in
  // nanoseconds (also charged to ctx.clock).
  common::Result<uint64_t> LoadLine(common::ExecContext& ctx, uint64_t offset, void* dst64);
  common::Result<uint64_t> StoreLine(common::ExecContext& ctx, uint64_t offset,
                                     const void* src64);

  // Batched cacheline accesses: modeled events (TLB, LLC, clock, counters,
  // sampler polls) are emitted exactly as if LoadLine/StoreLine were called
  // once per op, but Result/latency plumbing is amortized across the batch.
  // Stops at the first failing op and returns its status.
  common::Status AccessLines(common::ExecContext& ctx, LineOp* ops, size_t count, bool write);

  // Faults in every page of the mapping (MAP_POPULATE-style).
  common::Status Prefault(common::ExecContext& ctx, bool write);

  // Fraction of the file currently mapped with hugepages (by bytes).
  double HugeMappedFraction() const;

  // Drops all translations (used by remap after reactive rewriting).
  void UnmapAll(common::ExecContext& ctx);

 private:
  friend class MmapEngine;

  enum class ChunkState : uint8_t { kUnmapped = 0, kBase, kHuge };

  struct Chunk {
    ChunkState state = ChunkState::kUnmapped;
    uint64_t huge_phys = 0;
    // For base-mapped chunks: per-4KB-page device offsets (0 = unmapped; the
    // device never maps page 0 to user data because the superblock lives there).
    std::vector<uint64_t> page_phys;
  };

  MappedFile(MmapEngine* engine, FaultHandler* handler, uint64_t ino, uint64_t va_base,
             uint64_t length, bool writable);

  // Returns the device offset of `offset`'s byte, faulting if needed.
  common::Result<uint64_t> TranslateByte(common::ExecContext& ctx, uint64_t offset, bool write,
                                         uint64_t* walk_ns_out);

  // Slow tail of TranslateByte after a TLB miss: page walk, TLB refill, and
  // (if the translation is absent) fault dispatch. Split out so AccessLines'
  // batched loop can inline the TLB-hit cases and fall back here without
  // repeating the lookup.
  common::Result<uint64_t> TranslateMiss(common::ExecContext& ctx, uint64_t offset, bool write,
                                         uint64_t* walk_ns_out);

  // Shared body of LoadLine/StoreLine/AccessLines. `data` may be null (charge
  // the access without moving bytes, matching the nullable LoadLine/StoreLine
  // arguments); `latency_ns_out` may be null.
  common::Status LineAccess(common::ExecContext& ctx, uint64_t offset, bool write, void* data,
                            uint64_t* latency_ns_out);

  MmapEngine* engine_;
  FaultHandler* handler_;
  uint64_t ino_;
  uint64_t va_base_;
  uint64_t length_;
  bool writable_;
  std::vector<Chunk> chunks_;
};

class MmapEngine : public obs::GaugeProvider {
 public:
  MmapEngine(pmem::PmemDevice* device, MmuParams params, uint32_t num_cpus = 1);

  // Establishes a mapping of the file's first `length` bytes.
  std::unique_ptr<MappedFile> Mmap(FaultHandler* handler, uint64_t ino, uint64_t length,
                                   bool writable);

  pmem::PmemDevice& device() { return *device_; }
  const MmuParams& params() const { return params_; }
  PageTable& page_table() { return page_table_; }

  // DRAM footprint of page tables, for §5.7.
  uint64_t PageTableBytes() const { return page_table_.MemoryBytes(); }

  // Hugepage coverage of the live mappings: mapping count, total mapped
  // bytes, byte-weighted fraction served by 2 MB PMD entries, and page-table
  // DRAM footprint. Mappings register at Mmap and unregister at destruction.
  void SampleGauges(obs::GaugeSample& out) override;

 private:
  friend class MappedFile;

  struct CpuState {
    explicit CpuState(const MmuParams& params) : tlb(params), llc(params) {}
    Tlb tlb;
    LlcCache llc;
  };

  CpuState& cpu(common::ExecContext& ctx) {
    return *cpus_[ctx.cpu % cpus_.size()];
  }

  // Charges a page walk (PTE reads through the LLC) and returns its cost.
  uint64_t ChargeWalk(common::ExecContext& ctx, const WalkResult& walk);

  // Charges one data-line access through the LLC; returns its cost.
  uint64_t ChargeDataLine(common::ExecContext& ctx, uint64_t paddr);

  void Register(MappedFile* file);
  void Unregister(MappedFile* file);

  pmem::PmemDevice* device_;
  MmuParams params_;
  PageTable page_table_;
  std::vector<std::unique_ptr<CpuState>> cpus_;
  std::mutex va_mu_;
  uint64_t next_va_;
  std::mutex live_mu_;
  std::vector<MappedFile*> live_;  // mappings currently alive (gauge probe)
};

}  // namespace vmem

#endif  // SRC_VMEM_MMAP_ENGINE_H_
