// Tunable sizes for the simulated MMU structures. Defaults approximate one
// core of the paper's test machine (Cascade Lake Xeon), scaled alongside the
// scaled-down PM partition sizes.
#ifndef SRC_VMEM_MMU_PARAMS_H_
#define SRC_VMEM_MMU_PARAMS_H_

#include <cstdint>

namespace vmem {

struct MmuParams {
  // L1 dTLB: split by page size, like Skylake-era cores.
  uint32_t l1_tlb_4k_entries = 64;
  uint32_t l1_tlb_2m_entries = 32;
  // Unified second-level TLB.
  uint32_t l2_tlb_entries = 1536;

  // Last-level cache (per-core slice scaled up for single-threaded runs).
  uint64_t llc_bytes = 8ull * 1024 * 1024;
  uint32_t llc_ways = 16;

  // Page-walk caches are folded into the LLC model: each walk level is one
  // 8-byte PTE read that goes through the LLC.
  uint32_t walk_levels_4k = 4;
  uint32_t walk_levels_2m = 3;

  // Simulator implementation selection. false = flat-array structures
  // (allocation-free hot path); true = the reference std::list/unordered_map
  // structures kept for differential testing. Both make bit-identical
  // replacement decisions; only host cost differs. The default comes from the
  // WINEFS_REFERENCE_SIM build switch and can be overridden at run time by
  // the WINEFS_REFERENCE_SIM environment variable ("1"/"0"), which is what
  // lets one build tree run the fast and reference simulators side by side.
  bool reference_sim = DefaultReferenceSim();
  static bool DefaultReferenceSim();
};

}  // namespace vmem

#endif  // SRC_VMEM_MMU_PARAMS_H_
