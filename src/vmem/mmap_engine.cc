#include "src/vmem/mmap_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/prof_zone.h"
#include "src/common/units.h"
#include "src/obs/trace.h"

namespace vmem {

using common::ErrorCode;
using common::ExecContext;
using common::kBlockSize;
using common::kCacheline;
using common::kHugepageSize;
using common::Result;
using common::Status;

namespace {
// Virtual addresses start high and 2 MB-aligned, like mmap with MAP_HUGETLB hints.
constexpr uint64_t kVaStart = 0x7f0000000000ull;
// Cost of an L2 TLB hit (STLB latency).
constexpr uint64_t kStlbHitNs = 5;
}  // namespace

MmapEngine::MmapEngine(pmem::PmemDevice* device, MmuParams params, uint32_t num_cpus)
    : device_(device),
      params_(params),
      // Page-table nodes live in synthetic DRAM far above the PM device range.
      page_table_(device->size() + (1ull << 40)),
      next_va_(kVaStart) {
  if (num_cpus == 0) {
    num_cpus = 1;
  }
  cpus_.reserve(num_cpus);
  for (uint32_t i = 0; i < num_cpus; i++) {
    cpus_.push_back(std::make_unique<CpuState>(params_));
  }
}

std::unique_ptr<MappedFile> MmapEngine::Mmap(FaultHandler* handler, uint64_t ino,
                                             uint64_t length, bool writable) {
  uint64_t va;
  {
    std::lock_guard<std::mutex> guard(va_mu_);
    va = next_va_;
    // Leave a guard gap and keep 2 MB alignment for the next mapping.
    next_va_ += common::RoundUp(length, kHugepageSize) + kHugepageSize;
  }
  auto file = std::unique_ptr<MappedFile>(
      new MappedFile(this, handler, ino, va, length, writable));
  Register(file.get());
  return file;
}

void MmapEngine::Register(MappedFile* file) {
  std::lock_guard<std::mutex> guard(live_mu_);
  live_.push_back(file);
}

void MmapEngine::Unregister(MappedFile* file) {
  std::lock_guard<std::mutex> guard(live_mu_);
  live_.erase(std::remove(live_.begin(), live_.end(), file), live_.end());
}

void MmapEngine::SampleGauges(obs::GaugeSample& out) {
  std::lock_guard<std::mutex> guard(live_mu_);
  uint64_t mapped_bytes = 0;
  double huge_bytes = 0;
  for (const MappedFile* file : live_) {
    mapped_bytes += file->length();
    huge_bytes += file->HugeMappedFraction() * static_cast<double>(file->length());
  }
  out.Set("mmap_files", static_cast<double>(live_.size()));
  out.Set("mmap_bytes", static_cast<double>(mapped_bytes));
  out.Set("mmap_huge_fraction",
          mapped_bytes == 0 ? 0.0 : huge_bytes / static_cast<double>(mapped_bytes));
  out.Set("page_table_bytes", static_cast<double>(PageTableBytes()));
}

uint64_t MmapEngine::ChargeWalk(ExecContext& ctx, const WalkResult& walk) {
  uint64_t ns = 0;
  CpuState& state = cpu(ctx);
  for (uint32_t i = 0; i < walk.pte_line_count; i++) {
    const uint64_t line = walk.pte_lines[i];
    if (state.llc.Access(line)) {
      ns += device_->cost().llc_hit_ns;
      ctx.counters.llc_hits++;
    } else {
      ns += device_->cost().dram_load_ns;
      ctx.counters.llc_misses++;
    }
  }
  ctx.clock.Advance(ns);
  return ns;
}

uint64_t MmapEngine::ChargeDataLine(ExecContext& ctx, uint64_t paddr) {
  CpuState& state = cpu(ctx);
  uint64_t ns;
  if (state.llc.Access(paddr)) {
    ns = device_->cost().llc_hit_ns;
    ctx.counters.llc_hits++;
  } else {
    // Below the device size it is a PM line; above, DRAM.
    ns = paddr < device_->size() ? device_->cost().pm_load_random_ns
                                 : device_->cost().dram_load_ns;
    ctx.counters.llc_misses++;
  }
  ctx.clock.Advance(ns);
  return ns;
}

MappedFile::MappedFile(MmapEngine* engine, FaultHandler* handler, uint64_t ino,
                       uint64_t va_base, uint64_t length, bool writable)
    : engine_(engine),
      handler_(handler),
      ino_(ino),
      va_base_(va_base),
      length_(length),
      writable_(writable) {
  chunks_.resize((length + kHugepageSize - 1) / kHugepageSize);
}

MappedFile::~MappedFile() { engine_->Unregister(this); }

Result<uint64_t> MappedFile::TranslateByte(ExecContext& ctx, uint64_t offset, bool write,
                                           uint64_t* walk_ns_out) {
  if (offset >= length_) {
    return ErrorCode::kInvalidArgument;  // SIGBUS territory
  }
  if (write && !writable_) {
    return ErrorCode::kInvalidArgument;
  }
  uint64_t walk_ns = 0;
  const uint64_t vaddr = va_base_ + offset;
  const size_t chunk_idx = offset / kHugepageSize;
  Chunk& chunk = chunks_[chunk_idx];
  Tlb& tlb = engine_->cpu(ctx).tlb;

  auto finish = [&](uint64_t phys) -> Result<uint64_t> {
    if (walk_ns_out != nullptr) {
      *walk_ns_out = walk_ns;
    }
    return phys;
  };

  // Fast path: translation installed and in the TLB.
  if (chunk.state == ChunkState::kHuge) {
    const TlbResult hit = tlb.Lookup(vaddr, /*huge=*/true);
    if (hit == TlbResult::kL1Hit) {
      ctx.counters.tlb_hits++;
      return finish(chunk.huge_phys + offset % kHugepageSize);
    }
    if (hit == TlbResult::kL2Hit) {
      ctx.counters.tlb_l1_misses++;
      ctx.clock.Advance(kStlbHitNs);
      walk_ns += kStlbHitNs;
      return finish(chunk.huge_phys + offset % kHugepageSize);
    }
  } else if (chunk.state == ChunkState::kBase) {
    const size_t page_in_chunk = (offset % kHugepageSize) / kBlockSize;
    if (!chunk.page_phys.empty() && chunk.page_phys[page_in_chunk] != 0) {
      const TlbResult hit = tlb.Lookup(vaddr, /*huge=*/false);
      if (hit == TlbResult::kL1Hit) {
        ctx.counters.tlb_hits++;
        return finish(chunk.page_phys[page_in_chunk] + offset % kBlockSize);
      }
      if (hit == TlbResult::kL2Hit) {
        ctx.counters.tlb_l1_misses++;
        ctx.clock.Advance(kStlbHitNs);
        walk_ns += kStlbHitNs;
        return finish(chunk.page_phys[page_in_chunk] + offset % kBlockSize);
      }
    }
  }

  return TranslateMiss(ctx, offset, write, walk_ns_out);
}

Result<uint64_t> MappedFile::TranslateMiss(ExecContext& ctx, uint64_t offset, bool write,
                                           uint64_t* walk_ns_out) {
  uint64_t walk_ns = 0;
  const uint64_t vaddr = va_base_ + offset;
  const size_t chunk_idx = offset / kHugepageSize;
  Chunk& chunk = chunks_[chunk_idx];
  Tlb& tlb = engine_->cpu(ctx).tlb;

  auto finish = [&](uint64_t phys) -> Result<uint64_t> {
    if (walk_ns_out != nullptr) {
      *walk_ns_out = walk_ns;
    }
    return phys;
  };

  // TLB miss: walk the page table (PTE lines go through the LLC).
  const WalkResult walk = engine_->page_table().Walk(vaddr);
  walk_ns += engine_->ChargeWalk(ctx, walk);
  if (walk.pte.present) {
    ctx.counters.tlb_l2_misses++;
    tlb.Insert(vaddr, walk.pte.huge);
    const uint64_t in_page = walk.pte.huge ? offset % kHugepageSize : offset % kBlockSize;
    return finish(walk.pte.phys + in_page);
  }

  // Page fault.
  const uint64_t fault_start = ctx.clock.NowNs();
  const uint64_t page_offset = common::RoundDown(offset, kBlockSize);
  auto fault = handler_->HandleFault(ctx, ino_, page_offset, write);
  if (!fault.ok()) {
    return fault.status();
  }
  const pmem::CostModel& cost = engine_->device().cost();
  if (fault->huge) {
    assert(common::IsAligned(fault->phys, kHugepageSize));
    const uint64_t chunk_vaddr = va_base_ + chunk_idx * kHugepageSize;
    engine_->page_table().Map(chunk_vaddr, fault->phys, /*huge=*/true, writable_);
    chunk.state = ChunkState::kHuge;
    chunk.huge_phys = fault->phys;
    ctx.clock.Advance(cost.fault_base_ns + cost.fault_huge_extra_ns);
    ctx.counters.page_faults_2m++;
    tlb.Insert(vaddr, /*huge=*/true);
    if (ctx.trace != nullptr) {
      ctx.trace->Record(obs::TraceEvent{obs::SpanCat::kFaultHandling, ctx.cpu, fault_start,
                                        ctx.clock.NowNs(), kHugepageSize});
    }
    return finish(fault->phys + offset % kHugepageSize);
  }
  const uint64_t page_vaddr = va_base_ + page_offset;
  engine_->page_table().Map(page_vaddr, fault->phys, /*huge=*/false, writable_);
  chunk.state = ChunkState::kBase;
  if (chunk.page_phys.empty()) {
    chunk.page_phys.assign(common::kBlocksPerHugepage, 0);
  }
  chunk.page_phys[(offset % kHugepageSize) / kBlockSize] = fault->phys;
  ctx.clock.Advance(cost.fault_base_ns);
  ctx.counters.page_faults_4k++;
  tlb.Insert(vaddr, /*huge=*/false);
  if (ctx.trace != nullptr) {
    ctx.trace->Record(obs::TraceEvent{obs::SpanCat::kFaultHandling, ctx.cpu, fault_start,
                                      ctx.clock.NowNs(), kBlockSize});
  }
  return finish(fault->phys + offset % kBlockSize);
}

Status MappedFile::Write(ExecContext& ctx, uint64_t offset, const void* src, uint64_t len) {
  common::ProfileZone zone(ctx, common::ProfLayer::kMmu);
  if (offset + len > length_) {
    return Status(ErrorCode::kInvalidArgument);
  }
  const uint8_t* cursor = static_cast<const uint8_t*>(src);
  const pmem::CostModel& cost = engine_->device().cost();
  while (len > 0) {
    const uint64_t page_end = common::RoundDown(offset, kBlockSize) + kBlockSize;
    const uint64_t first = std::min<uint64_t>(len, page_end - offset);
    ASSIGN_OR_RETURN(const uint64_t phys, TranslateByte(ctx, offset, /*write=*/true, nullptr));
    uint64_t run = first;
    uint64_t copy_ns = cost.SeqWriteBytes(first);
    const size_t chunk_idx = offset / kHugepageSize;
    if (chunks_[chunk_idx].state == ChunkState::kHuge) {
      // One PMD entry covers the rest of this chunk, and the translation above
      // left it at the front of the L1 TLB, so every further page the per-page
      // loop would visit is a guaranteed L1 hit with zero modeled latency.
      // Charge those hits in bulk and copy the whole run with one memcpy. The
      // copy cost is still summed per 4 KB fragment: SeqWriteBytes rounds up
      // to cachelines per call, so charging the run in one call would diverge
      // for unaligned first/last fragments.
      const uint64_t chunk_end = (chunk_idx + 1) * kHugepageSize;
      const uint64_t rest = std::min<uint64_t>(len, chunk_end - offset) - first;
      const uint64_t full_pages = rest / kBlockSize;
      const uint64_t tail = rest % kBlockSize;
      run += rest;
      copy_ns += full_pages * cost.SeqWriteBytes(kBlockSize);
      if (tail != 0) {
        copy_ns += cost.SeqWriteBytes(tail);
      }
      ctx.counters.tlb_hits += full_pages + (tail != 0 ? 1 : 0);
    }
    std::memcpy(engine_->device().raw_span(phys, run), cursor, run);
    {
      obs::ScopedSpan copy_span(ctx, obs::SpanCat::kDataCopy, run);
      ctx.clock.Advance(copy_ns);
    }
    ctx.counters.pm_write_bytes += run;
    offset += run;
    cursor += run;
    len -= run;
  }
  // Mapped access bypasses syscalls (and their OpScope sampling hook), so
  // mmap-heavy phases drive the periodic gauge sampler from here.
  if (ctx.sampler != nullptr) {
    ctx.sampler->MaybeSample(ctx);
  }
  return common::OkStatus();
}

Status MappedFile::Read(ExecContext& ctx, uint64_t offset, void* dst, uint64_t len) {
  common::ProfileZone zone(ctx, common::ProfLayer::kMmu);
  if (offset + len > length_) {
    return Status(ErrorCode::kInvalidArgument);
  }
  uint8_t* cursor = static_cast<uint8_t*>(dst);
  const pmem::CostModel& cost = engine_->device().cost();
  while (len > 0) {
    const uint64_t page_end = common::RoundDown(offset, kBlockSize) + kBlockSize;
    const uint64_t first = std::min<uint64_t>(len, page_end - offset);
    ASSIGN_OR_RETURN(const uint64_t phys, TranslateByte(ctx, offset, /*write=*/false, nullptr));
    uint64_t run = first;
    uint64_t copy_ns = cost.SeqReadBytes(first);
    const size_t chunk_idx = offset / kHugepageSize;
    if (chunks_[chunk_idx].state == ChunkState::kHuge) {
      const uint64_t chunk_end = (chunk_idx + 1) * kHugepageSize;
      const uint64_t rest = std::min<uint64_t>(len, chunk_end - offset) - first;
      const uint64_t full_pages = rest / kBlockSize;
      const uint64_t tail = rest % kBlockSize;
      run += rest;
      copy_ns += full_pages * cost.SeqReadBytes(kBlockSize);
      if (tail != 0) {
        copy_ns += cost.SeqReadBytes(tail);
      }
      ctx.counters.tlb_hits += full_pages + (tail != 0 ? 1 : 0);
    }
    std::memcpy(cursor, engine_->device().raw_span(phys, run), run);
    {
      obs::ScopedSpan copy_span(ctx, obs::SpanCat::kDataCopy, run);
      ctx.clock.Advance(copy_ns);
    }
    ctx.counters.pm_read_bytes += run;
    offset += run;
    cursor += run;
    len -= run;
  }
  if (ctx.sampler != nullptr) {
    ctx.sampler->MaybeSample(ctx);
  }
  return common::OkStatus();
}

Status MappedFile::LineAccess(ExecContext& ctx, uint64_t offset, bool write, void* data,
                              uint64_t* latency_ns_out) {
  const uint64_t start = ctx.clock.NowNs();
  auto phys = TranslateByte(ctx, offset, write, nullptr);
  if (!phys.ok()) {
    return phys.status();
  }
  engine_->ChargeDataLine(ctx, common::RoundDown(*phys, kCacheline));
  if (write) {
    if (data != nullptr) {
      std::memcpy(engine_->device().raw_span(*phys, 8), data, 8);
    }
    ctx.counters.pm_write_bytes += kCacheline;
  } else {
    if (data != nullptr) {
      std::memcpy(data, engine_->device().raw_span(*phys, 8), 8);
    }
    ctx.counters.pm_read_bytes += kCacheline;
  }
  if (ctx.sampler != nullptr) {
    ctx.sampler->MaybeSample(ctx);
  }
  if (latency_ns_out != nullptr) {
    *latency_ns_out = ctx.clock.NowNs() - start;
  }
  return common::OkStatus();
}

Result<uint64_t> MappedFile::LoadLine(ExecContext& ctx, uint64_t offset, void* dst64) {
  uint64_t latency = 0;
  const Status status = LineAccess(ctx, offset, /*write=*/false, dst64, &latency);
  if (!status.ok()) {
    return status;
  }
  return latency;
}

Result<uint64_t> MappedFile::StoreLine(ExecContext& ctx, uint64_t offset, const void* src64) {
  uint64_t latency = 0;
  const Status status =
      LineAccess(ctx, offset, /*write=*/true, const_cast<void*>(src64), &latency);
  if (!status.ok()) {
    return status;
  }
  return latency;
}

Status MappedFile::AccessLines(ExecContext& ctx, LineOp* ops, size_t count, bool write) {
  if (engine_->params().reference_sim) {
    // Reference simulator: the pre-overhaul shape — one LoadLine/StoreLine
    // round trip (with its Result plumbing) per line, exactly as fig04 and the
    // pointer-chasing workloads issued accesses before batching existed.
    for (size_t i = 0; i < count; i++) {
      LineOp& op = ops[i];
      auto latency = write ? StoreLine(ctx, op.offset, &op.value)
                           : LoadLine(ctx, op.offset, &op.value);
      if (!latency.ok()) {
        return latency.status();
      }
      op.latency_ns = *latency;
    }
    return common::OkStatus();
  }

  // Fast simulator: CPU state and cost constants hoisted once per batch, the
  // TLB-hit translation and LLC data-line charge inlined, and no Result or
  // Status objects on the hit path. Modeled events (counter ticks, clock
  // advances, sampler polls) are emitted exactly as LineAccess would emit
  // them one op at a time; only misses fall back to the out-of-line walk and
  // fault machinery.
  MmapEngine::CpuState& cpu_state = engine_->cpu(ctx);
  Tlb& tlb = cpu_state.tlb;
  LlcCache& llc = cpu_state.llc;
  pmem::PmemDevice& dev = engine_->device();
  const pmem::CostModel& cost = dev.cost();
  const uint64_t dev_size = dev.size();
  common::PerfCounters& counters = ctx.counters;
  for (size_t i = 0; i < count; i++) {
    LineOp& op = ops[i];
    const uint64_t offset = op.offset;
    if (offset >= length_ || (write && !writable_)) {
      return Status(ErrorCode::kInvalidArgument);
    }
    const uint64_t start = ctx.clock.NowNs();
    const Chunk& chunk = chunks_[offset / kHugepageSize];
    uint64_t phys = 0;
    bool translated = false;
    if (chunk.state == ChunkState::kHuge) {
      const TlbResult hit = tlb.Lookup(va_base_ + offset, /*huge=*/true);
      if (hit != TlbResult::kMiss) {
        if (hit == TlbResult::kL1Hit) {
          counters.tlb_hits++;
        } else {
          counters.tlb_l1_misses++;
          ctx.clock.Advance(kStlbHitNs);
        }
        phys = chunk.huge_phys + offset % kHugepageSize;
        translated = true;
      }
    } else if (chunk.state == ChunkState::kBase && !chunk.page_phys.empty()) {
      const uint64_t page_phys = chunk.page_phys[(offset % kHugepageSize) / kBlockSize];
      if (page_phys != 0) {
        const TlbResult hit = tlb.Lookup(va_base_ + offset, /*huge=*/false);
        if (hit != TlbResult::kMiss) {
          if (hit == TlbResult::kL1Hit) {
            counters.tlb_hits++;
          } else {
            counters.tlb_l1_misses++;
            ctx.clock.Advance(kStlbHitNs);
          }
          phys = page_phys + offset % kBlockSize;
          translated = true;
        }
      }
    }
    if (!translated) {
      auto slow = TranslateMiss(ctx, offset, write, nullptr);
      if (!slow.ok()) {
        return slow.status();
      }
      phys = *slow;
    }
    // ChargeDataLine, inlined against the hoisted CPU state.
    const uint64_t line = phys & ~(kCacheline - 1);
    uint64_t line_ns;
    if (llc.Access(line)) {
      line_ns = cost.llc_hit_ns;
      counters.llc_hits++;
    } else {
      line_ns = line < dev_size ? cost.pm_load_random_ns : cost.dram_load_ns;
      counters.llc_misses++;
    }
    ctx.clock.Advance(line_ns);
    if (write) {
      std::memcpy(dev.raw_span(phys, 8), &op.value, 8);
      counters.pm_write_bytes += kCacheline;
    } else {
      std::memcpy(&op.value, dev.raw_span(phys, 8), 8);
      counters.pm_read_bytes += kCacheline;
    }
    if (ctx.sampler != nullptr) {
      ctx.sampler->MaybeSample(ctx);
    }
    op.latency_ns = ctx.clock.NowNs() - start;
  }
  return common::OkStatus();
}

Status MappedFile::Prefault(ExecContext& ctx, bool write) {
  common::ProfileZone zone(ctx, common::ProfLayer::kMmu);
  uint64_t offset = 0;
  while (offset < length_) {
    auto phys = TranslateByte(ctx, offset, write, nullptr);
    if (!phys.ok()) {
      return phys.status();
    }
    const size_t chunk_idx = offset / kHugepageSize;
    if (chunks_[chunk_idx].state == ChunkState::kHuge) {
      // The rest of this chunk's 4 KB steps would all be L1 TLB hits against
      // the entry just installed/refreshed — no clock movement, one tlb_hits
      // tick each. Skip straight to the next chunk.
      const uint64_t chunk_end = std::min((chunk_idx + 1) * kHugepageSize, length_);
      ctx.counters.tlb_hits += (chunk_end - 1) / kBlockSize - offset / kBlockSize;
      offset = chunk_end;
    } else {
      offset += kBlockSize;
    }
  }
  return common::OkStatus();
}

double MappedFile::HugeMappedFraction() const {
  if (length_ == 0) {
    return 0.0;
  }
  uint64_t huge_bytes = 0;
  for (size_t i = 0; i < chunks_.size(); i++) {
    if (chunks_[i].state == ChunkState::kHuge) {
      const uint64_t chunk_start = i * kHugepageSize;
      huge_bytes += std::min(kHugepageSize, length_ - chunk_start);
    }
  }
  return static_cast<double>(huge_bytes) / static_cast<double>(length_);
}

void MappedFile::UnmapAll(ExecContext& ctx) {
  (void)ctx;
  for (size_t i = 0; i < chunks_.size(); i++) {
    Chunk& chunk = chunks_[i];
    const uint64_t chunk_vaddr = va_base_ + i * kHugepageSize;
    if (chunk.state == ChunkState::kHuge) {
      engine_->page_table().Unmap(chunk_vaddr, /*huge=*/true);
    } else if (chunk.state == ChunkState::kBase) {
      for (size_t p = 0; p < chunk.page_phys.size(); p++) {
        if (chunk.page_phys[p] != 0) {
          engine_->page_table().Unmap(chunk_vaddr + p * kBlockSize, /*huge=*/false);
        }
      }
    }
    chunk = Chunk{};
  }
  // TLB shootdown on every CPU.
  for (auto& state : engine_->cpus_) {
    state->tlb.Flush();
  }
}

}  // namespace vmem
