#include "src/vmem/mmap_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/units.h"
#include "src/obs/trace.h"

namespace vmem {

using common::ErrorCode;
using common::ExecContext;
using common::kBlockSize;
using common::kCacheline;
using common::kHugepageSize;
using common::Result;
using common::Status;

namespace {
// Virtual addresses start high and 2 MB-aligned, like mmap with MAP_HUGETLB hints.
constexpr uint64_t kVaStart = 0x7f0000000000ull;
// Cost of an L2 TLB hit (STLB latency).
constexpr uint64_t kStlbHitNs = 5;
}  // namespace

MmapEngine::MmapEngine(pmem::PmemDevice* device, MmuParams params, uint32_t num_cpus)
    : device_(device),
      params_(params),
      // Page-table nodes live in synthetic DRAM far above the PM device range.
      page_table_(device->size() + (1ull << 40)),
      next_va_(kVaStart) {
  if (num_cpus == 0) {
    num_cpus = 1;
  }
  cpus_.reserve(num_cpus);
  for (uint32_t i = 0; i < num_cpus; i++) {
    cpus_.push_back(std::make_unique<CpuState>(params_));
  }
}

std::unique_ptr<MappedFile> MmapEngine::Mmap(FaultHandler* handler, uint64_t ino,
                                             uint64_t length, bool writable) {
  uint64_t va;
  {
    std::lock_guard<std::mutex> guard(va_mu_);
    va = next_va_;
    // Leave a guard gap and keep 2 MB alignment for the next mapping.
    next_va_ += common::RoundUp(length, kHugepageSize) + kHugepageSize;
  }
  auto file = std::unique_ptr<MappedFile>(
      new MappedFile(this, handler, ino, va, length, writable));
  Register(file.get());
  return file;
}

void MmapEngine::Register(MappedFile* file) {
  std::lock_guard<std::mutex> guard(live_mu_);
  live_.push_back(file);
}

void MmapEngine::Unregister(MappedFile* file) {
  std::lock_guard<std::mutex> guard(live_mu_);
  live_.erase(std::remove(live_.begin(), live_.end(), file), live_.end());
}

void MmapEngine::SampleGauges(obs::GaugeSample& out) {
  std::lock_guard<std::mutex> guard(live_mu_);
  uint64_t mapped_bytes = 0;
  double huge_bytes = 0;
  for (const MappedFile* file : live_) {
    mapped_bytes += file->length();
    huge_bytes += file->HugeMappedFraction() * static_cast<double>(file->length());
  }
  out.Set("mmap_files", static_cast<double>(live_.size()));
  out.Set("mmap_bytes", static_cast<double>(mapped_bytes));
  out.Set("mmap_huge_fraction",
          mapped_bytes == 0 ? 0.0 : huge_bytes / static_cast<double>(mapped_bytes));
  out.Set("page_table_bytes", static_cast<double>(PageTableBytes()));
}

uint64_t MmapEngine::ChargeWalk(ExecContext& ctx, const WalkResult& walk) {
  uint64_t ns = 0;
  CpuState& state = cpu(ctx);
  for (uint64_t line : walk.pte_lines) {
    if (state.llc.Access(line)) {
      ns += device_->cost().llc_hit_ns;
      ctx.counters.llc_hits++;
    } else {
      ns += device_->cost().dram_load_ns;
      ctx.counters.llc_misses++;
    }
  }
  ctx.clock.Advance(ns);
  return ns;
}

uint64_t MmapEngine::ChargeDataLine(ExecContext& ctx, uint64_t paddr) {
  CpuState& state = cpu(ctx);
  uint64_t ns;
  if (state.llc.Access(paddr)) {
    ns = device_->cost().llc_hit_ns;
    ctx.counters.llc_hits++;
  } else {
    // Below the device size it is a PM line; above, DRAM.
    ns = paddr < device_->size() ? device_->cost().pm_load_random_ns
                                 : device_->cost().dram_load_ns;
    ctx.counters.llc_misses++;
  }
  ctx.clock.Advance(ns);
  return ns;
}

MappedFile::MappedFile(MmapEngine* engine, FaultHandler* handler, uint64_t ino,
                       uint64_t va_base, uint64_t length, bool writable)
    : engine_(engine),
      handler_(handler),
      ino_(ino),
      va_base_(va_base),
      length_(length),
      writable_(writable) {
  chunks_.resize((length + kHugepageSize - 1) / kHugepageSize);
}

MappedFile::~MappedFile() { engine_->Unregister(this); }

Result<uint64_t> MappedFile::TranslateByte(ExecContext& ctx, uint64_t offset, bool write,
                                           uint64_t* walk_ns_out) {
  if (offset >= length_) {
    return ErrorCode::kInvalidArgument;  // SIGBUS territory
  }
  if (write && !writable_) {
    return ErrorCode::kInvalidArgument;
  }
  uint64_t walk_ns = 0;
  const uint64_t vaddr = va_base_ + offset;
  const size_t chunk_idx = offset / kHugepageSize;
  Chunk& chunk = chunks_[chunk_idx];
  Tlb& tlb = engine_->cpu(ctx).tlb;

  auto finish = [&](uint64_t phys) -> Result<uint64_t> {
    if (walk_ns_out != nullptr) {
      *walk_ns_out = walk_ns;
    }
    return phys;
  };

  // Fast path: translation installed and in the TLB.
  if (chunk.state == ChunkState::kHuge) {
    const TlbResult hit = tlb.Lookup(vaddr, /*huge=*/true);
    if (hit == TlbResult::kL1Hit) {
      ctx.counters.tlb_hits++;
      return finish(chunk.huge_phys + offset % kHugepageSize);
    }
    if (hit == TlbResult::kL2Hit) {
      ctx.counters.tlb_l1_misses++;
      ctx.clock.Advance(kStlbHitNs);
      walk_ns += kStlbHitNs;
      return finish(chunk.huge_phys + offset % kHugepageSize);
    }
  } else if (chunk.state == ChunkState::kBase) {
    const size_t page_in_chunk = (offset % kHugepageSize) / kBlockSize;
    if (!chunk.page_phys.empty() && chunk.page_phys[page_in_chunk] != 0) {
      const TlbResult hit = tlb.Lookup(vaddr, /*huge=*/false);
      if (hit == TlbResult::kL1Hit) {
        ctx.counters.tlb_hits++;
        return finish(chunk.page_phys[page_in_chunk] + offset % kBlockSize);
      }
      if (hit == TlbResult::kL2Hit) {
        ctx.counters.tlb_l1_misses++;
        ctx.clock.Advance(kStlbHitNs);
        walk_ns += kStlbHitNs;
        return finish(chunk.page_phys[page_in_chunk] + offset % kBlockSize);
      }
    }
  }

  // TLB miss: walk the page table (PTE lines go through the LLC).
  const WalkResult walk = engine_->page_table().Walk(vaddr);
  walk_ns += engine_->ChargeWalk(ctx, walk);
  if (walk.pte.present) {
    ctx.counters.tlb_l2_misses++;
    tlb.Insert(vaddr, walk.pte.huge);
    const uint64_t in_page = walk.pte.huge ? offset % kHugepageSize : offset % kBlockSize;
    return finish(walk.pte.phys + in_page);
  }

  // Page fault.
  const uint64_t fault_start = ctx.clock.NowNs();
  const uint64_t page_offset = common::RoundDown(offset, kBlockSize);
  auto fault = handler_->HandleFault(ctx, ino_, page_offset, write);
  if (!fault.ok()) {
    return fault.status();
  }
  const pmem::CostModel& cost = engine_->device().cost();
  if (fault->huge) {
    assert(common::IsAligned(fault->phys, kHugepageSize));
    const uint64_t chunk_vaddr = va_base_ + chunk_idx * kHugepageSize;
    engine_->page_table().Map(chunk_vaddr, fault->phys, /*huge=*/true, writable_);
    chunk.state = ChunkState::kHuge;
    chunk.huge_phys = fault->phys;
    ctx.clock.Advance(cost.fault_base_ns + cost.fault_huge_extra_ns);
    ctx.counters.page_faults_2m++;
    tlb.Insert(vaddr, /*huge=*/true);
    if (ctx.trace != nullptr) {
      ctx.trace->Record(obs::TraceEvent{obs::SpanCat::kFaultHandling, ctx.cpu, fault_start,
                                        ctx.clock.NowNs(), kHugepageSize});
    }
    return finish(fault->phys + offset % kHugepageSize);
  }
  const uint64_t page_vaddr = va_base_ + page_offset;
  engine_->page_table().Map(page_vaddr, fault->phys, /*huge=*/false, writable_);
  chunk.state = ChunkState::kBase;
  if (chunk.page_phys.empty()) {
    chunk.page_phys.assign(common::kBlocksPerHugepage, 0);
  }
  chunk.page_phys[(offset % kHugepageSize) / kBlockSize] = fault->phys;
  ctx.clock.Advance(cost.fault_base_ns);
  ctx.counters.page_faults_4k++;
  tlb.Insert(vaddr, /*huge=*/false);
  if (ctx.trace != nullptr) {
    ctx.trace->Record(obs::TraceEvent{obs::SpanCat::kFaultHandling, ctx.cpu, fault_start,
                                      ctx.clock.NowNs(), kBlockSize});
  }
  return finish(fault->phys + offset % kBlockSize);
}

Status MappedFile::Write(ExecContext& ctx, uint64_t offset, const void* src, uint64_t len) {
  if (offset + len > length_) {
    return Status(ErrorCode::kInvalidArgument);
  }
  const uint8_t* cursor = static_cast<const uint8_t*>(src);
  const pmem::CostModel& cost = engine_->device().cost();
  while (len > 0) {
    const uint64_t page_end = common::RoundDown(offset, kBlockSize) + kBlockSize;
    const uint64_t span = std::min<uint64_t>(len, page_end - offset);
    ASSIGN_OR_RETURN(const uint64_t phys, TranslateByte(ctx, offset, /*write=*/true, nullptr));
    std::memcpy(engine_->device().raw_span(phys, span), cursor, span);
    const uint64_t copy_ns = cost.SeqWriteBytes(span);
    {
      obs::ScopedSpan copy_span(ctx, obs::SpanCat::kDataCopy, span);
      ctx.clock.Advance(copy_ns);
    }
    ctx.counters.pm_write_bytes += span;
    offset += span;
    cursor += span;
    len -= span;
  }
  // Mapped access bypasses syscalls (and their OpScope sampling hook), so
  // mmap-heavy phases drive the periodic gauge sampler from here.
  if (ctx.sampler != nullptr) {
    ctx.sampler->MaybeSample(ctx);
  }
  return common::OkStatus();
}

Status MappedFile::Read(ExecContext& ctx, uint64_t offset, void* dst, uint64_t len) {
  if (offset + len > length_) {
    return Status(ErrorCode::kInvalidArgument);
  }
  uint8_t* cursor = static_cast<uint8_t*>(dst);
  const pmem::CostModel& cost = engine_->device().cost();
  while (len > 0) {
    const uint64_t page_end = common::RoundDown(offset, kBlockSize) + kBlockSize;
    const uint64_t span = std::min<uint64_t>(len, page_end - offset);
    ASSIGN_OR_RETURN(const uint64_t phys, TranslateByte(ctx, offset, /*write=*/false, nullptr));
    std::memcpy(cursor, engine_->device().raw_span(phys, span), span);
    const uint64_t copy_ns = cost.SeqReadBytes(span);
    {
      obs::ScopedSpan copy_span(ctx, obs::SpanCat::kDataCopy, span);
      ctx.clock.Advance(copy_ns);
    }
    ctx.counters.pm_read_bytes += span;
    offset += span;
    cursor += span;
    len -= span;
  }
  if (ctx.sampler != nullptr) {
    ctx.sampler->MaybeSample(ctx);
  }
  return common::OkStatus();
}

Result<uint64_t> MappedFile::LoadLine(ExecContext& ctx, uint64_t offset, void* dst64) {
  const uint64_t start = ctx.clock.NowNs();
  ASSIGN_OR_RETURN(const uint64_t phys, TranslateByte(ctx, offset, /*write=*/false, nullptr));
  engine_->ChargeDataLine(ctx, common::RoundDown(phys, kCacheline));
  if (dst64 != nullptr) {
    std::memcpy(dst64, engine_->device().raw_span(phys, 8), 8);
  }
  ctx.counters.pm_read_bytes += kCacheline;
  if (ctx.sampler != nullptr) {
    ctx.sampler->MaybeSample(ctx);
  }
  return ctx.clock.NowNs() - start;
}

Result<uint64_t> MappedFile::StoreLine(ExecContext& ctx, uint64_t offset, const void* src64) {
  const uint64_t start = ctx.clock.NowNs();
  ASSIGN_OR_RETURN(const uint64_t phys, TranslateByte(ctx, offset, /*write=*/true, nullptr));
  engine_->ChargeDataLine(ctx, common::RoundDown(phys, kCacheline));
  if (src64 != nullptr) {
    std::memcpy(engine_->device().raw_span(phys, 8), src64, 8);
  }
  ctx.counters.pm_write_bytes += kCacheline;
  if (ctx.sampler != nullptr) {
    ctx.sampler->MaybeSample(ctx);
  }
  return ctx.clock.NowNs() - start;
}

Status MappedFile::Prefault(ExecContext& ctx, bool write) {
  for (uint64_t offset = 0; offset < length_; offset += kBlockSize) {
    auto phys = TranslateByte(ctx, offset, write, nullptr);
    if (!phys.ok()) {
      return phys.status();
    }
  }
  return common::OkStatus();
}

double MappedFile::HugeMappedFraction() const {
  if (length_ == 0) {
    return 0.0;
  }
  uint64_t huge_bytes = 0;
  for (size_t i = 0; i < chunks_.size(); i++) {
    if (chunks_[i].state == ChunkState::kHuge) {
      const uint64_t chunk_start = i * kHugepageSize;
      huge_bytes += std::min(kHugepageSize, length_ - chunk_start);
    }
  }
  return static_cast<double>(huge_bytes) / static_cast<double>(length_);
}

void MappedFile::UnmapAll(ExecContext& ctx) {
  (void)ctx;
  for (size_t i = 0; i < chunks_.size(); i++) {
    Chunk& chunk = chunks_[i];
    const uint64_t chunk_vaddr = va_base_ + i * kHugepageSize;
    if (chunk.state == ChunkState::kHuge) {
      engine_->page_table().Unmap(chunk_vaddr, /*huge=*/true);
    } else if (chunk.state == ChunkState::kBase) {
      for (size_t p = 0; p < chunk.page_phys.size(); p++) {
        if (chunk.page_phys[p] != 0) {
          engine_->page_table().Unmap(chunk_vaddr + p * kBlockSize, /*huge=*/false);
        }
      }
    }
    chunk = Chunk{};
  }
  // TLB shootdown on every CPU.
  for (auto& state : engine_->cpus_) {
    state->tlb.Flush();
  }
}

}  // namespace vmem
