#include "src/vmem/page_table.h"

#include <cassert>

#include "src/common/units.h"

namespace vmem {

namespace {
// x86-64 4-level paging: PGD bits 47-39, PUD 38-30, PMD 29-21, PT 20-12.
constexpr int kLevels = 4;
constexpr int kShift[kLevels] = {39, 30, 21, 12};
constexpr int kPmdLevel = 2;  // huge-page leaf level
}  // namespace

struct PageTable::Node {
  uint64_t phys_base = 0;
  std::array<Pte, 512> entries{};
  std::array<std::unique_ptr<Node>, 512> children{};
};

PageTable::PageTable(uint64_t dram_base) : next_node_phys_(dram_base) {
  root_ = std::make_unique<Node>();
  root_->phys_base = next_node_phys_;
  next_node_phys_ += common::kBlockSize;
  node_count_ = 1;
}

PageTable::~PageTable() = default;

uint32_t PageTable::IndexAt(uint64_t vaddr, int level) {
  return static_cast<uint32_t>((vaddr >> kShift[level]) & 0x1ff);
}

PageTable::Node* PageTable::EnsureChild(Node* node, uint32_t index) {
  if (!node->children[index]) {
    node->children[index] = std::make_unique<Node>();
    node->children[index]->phys_base = next_node_phys_;
    next_node_phys_ += common::kBlockSize;
    node_count_++;
  }
  return node->children[index].get();
}

void PageTable::Map(uint64_t vaddr, uint64_t phys, bool huge, bool writable) {
  if (huge) {
    assert(common::IsAligned(vaddr, common::kHugepageSize));
    assert(common::IsAligned(phys, common::kHugepageSize));
  }
  Node* node = root_.get();
  const int leaf_level = huge ? kPmdLevel : kLevels - 1;
  for (int level = 0; level < leaf_level; level++) {
    node = EnsureChild(node, IndexAt(vaddr, level));
  }
  Pte& pte = node->entries[IndexAt(vaddr, leaf_level)];
  pte.phys = phys;
  pte.present = true;
  pte.huge = huge;
  pte.writable = writable;
}

void PageTable::Unmap(uint64_t vaddr, bool huge) {
  Node* node = root_.get();
  const int leaf_level = huge ? kPmdLevel : kLevels - 1;
  for (int level = 0; level < leaf_level; level++) {
    const uint32_t idx = IndexAt(vaddr, level);
    if (!node->children[idx]) {
      return;
    }
    node = node->children[idx].get();
  }
  node->entries[IndexAt(vaddr, leaf_level)] = Pte{};
}

WalkResult PageTable::Walk(uint64_t vaddr) const {
  WalkResult result;
  const Node* node = root_.get();
  for (int level = 0; level < kLevels; level++) {
    const uint32_t idx = IndexAt(vaddr, level);
    // The walk reads the 8-byte entry; record its cacheline address.
    result.pte_lines[result.pte_line_count++] =
        node->phys_base + common::RoundDown(idx * 8, common::kCacheline);
    const Pte& pte = node->entries[idx];
    if (pte.present) {
      result.pte = pte;
      return result;
    }
    if (!node->children[idx]) {
      return result;  // not mapped
    }
    node = node->children[idx].get();
  }
  return result;
}

}  // namespace vmem
