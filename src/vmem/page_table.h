// Four-level x86-64-style radix page table. Nodes are assigned synthetic DRAM
// physical addresses so that page-walk reads can be fed through the LLC
// simulator (the pollution effect the paper measures).
#ifndef SRC_VMEM_PAGE_TABLE_H_
#define SRC_VMEM_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>

namespace vmem {

struct Pte {
  uint64_t phys = 0;
  bool present = false;
  bool huge = false;      // leaf at PMD level (2 MB)
  bool writable = false;
};

struct WalkResult {
  Pte pte;
  // DRAM line addresses of the page-table entries read, root to leaf. Fixed
  // array (a walk touches at most 4 levels) so returning a WalkResult never
  // allocates — Walk sits on the translation hot path.
  std::array<uint64_t, 4> pte_lines{};
  uint32_t pte_line_count = 0;
};

class PageTable {
 public:
  // Page-table nodes get synthetic physical addresses starting at dram_base;
  // pick a base that cannot collide with PM device offsets.
  explicit PageTable(uint64_t dram_base);
  ~PageTable();

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Installs a 4 KB mapping (huge=false) or a 2 MB mapping (huge=true,
  // vaddr/phys must be 2 MB aligned).
  void Map(uint64_t vaddr, uint64_t phys, bool huge, bool writable);

  // Removes the mapping covering vaddr at the given size, if present.
  void Unmap(uint64_t vaddr, bool huge);

  // Translates vaddr, reporting every PTE line touched on the way.
  WalkResult Walk(uint64_t vaddr) const;

  uint64_t node_count() const { return node_count_; }
  // DRAM consumed by page-table nodes (4 KB each).
  uint64_t MemoryBytes() const { return node_count_ * 4096; }

 private:
  struct Node;

  Node* EnsureChild(Node* node, uint32_t index);

  static uint32_t IndexAt(uint64_t vaddr, int level);

  std::unique_ptr<Node> root_;
  uint64_t next_node_phys_;
  uint64_t node_count_ = 0;
};

}  // namespace vmem

#endif  // SRC_VMEM_PAGE_TABLE_H_
