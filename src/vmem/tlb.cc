#include "src/vmem/tlb.h"

#include "src/common/units.h"

namespace vmem {

bool Tlb::LruSet::Touch(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  order_.splice(order_.begin(), order_, it->second);
  return true;
}

void Tlb::LruSet::Insert(uint64_t key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (order_.size() >= capacity_) {
    index_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(key);
  index_[key] = order_.begin();
}

void Tlb::LruSet::Erase(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return;
  }
  order_.erase(it->second);
  index_.erase(it);
}

void Tlb::LruSet::Clear() {
  order_.clear();
  index_.clear();
}

Tlb::Tlb(const MmuParams& params)
    : l1_4k_(params.l1_tlb_4k_entries),
      l1_2m_(params.l1_tlb_2m_entries),
      l2_(params.l2_tlb_entries) {}

uint64_t Tlb::PageNumber(uint64_t vaddr, bool huge) {
  // Tag with the size bit so 4 KB and 2 MB entries never alias in L2.
  const uint64_t page = huge ? vaddr / common::kHugepageSize : vaddr / common::kBlockSize;
  return (page << 1) | (huge ? 1 : 0);
}

TlbResult Tlb::Lookup(uint64_t vaddr, bool huge) {
  const uint64_t key = PageNumber(vaddr, huge);
  LruSet& l1 = huge ? l1_2m_ : l1_4k_;
  if (l1.Touch(key)) {
    return TlbResult::kL1Hit;
  }
  if (l2_.Touch(key)) {
    l1.Insert(key);
    return TlbResult::kL2Hit;
  }
  return TlbResult::kMiss;
}

void Tlb::Insert(uint64_t vaddr, bool huge) {
  const uint64_t key = PageNumber(vaddr, huge);
  (huge ? l1_2m_ : l1_4k_).Insert(key);
  l2_.Insert(key);
}

void Tlb::InvalidatePage(uint64_t vaddr, bool huge) {
  const uint64_t key = PageNumber(vaddr, huge);
  (huge ? l1_2m_ : l1_4k_).Erase(key);
  l2_.Erase(key);
}

void Tlb::Flush() {
  l1_4k_.Clear();
  l1_2m_.Clear();
  l2_.Clear();
}

}  // namespace vmem
