#include "src/vmem/tlb.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "src/common/units.h"

namespace vmem {

bool MmuParams::DefaultReferenceSim() {
  // Environment override first, so one build tree can run both simulators
  // (the differential CTest fixtures and the CI golden guard depend on it).
  if (const char* env = std::getenv("WINEFS_REFERENCE_SIM"); env != nullptr && *env != '\0') {
    return std::strcmp(env, "0") != 0;
  }
#ifdef WINEFS_REFERENCE_SIM
  return true;
#else
  return false;
#endif
}

bool ReferenceLruSet::Touch(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  order_.splice(order_.begin(), order_, it->second);
  return true;
}

void ReferenceLruSet::Insert(uint64_t key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (order_.size() >= capacity_) {
    index_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(key);
  index_[key] = order_.begin();
}

void ReferenceLruSet::Erase(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return;
  }
  order_.erase(it->second);
  index_.erase(it);
}

void ReferenceLruSet::Clear() {
  order_.clear();
  index_.clear();
}

namespace {

uint32_t NextPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

SlotIndex::SlotIndex(uint32_t capacity) {
  // Load factor <= 0.5 keeps linear-probe chains short under full occupancy.
  const uint32_t buckets = NextPow2(capacity < 8 ? 16 : capacity * 2);
  mask_ = buckets - 1;
  key_of_.resize(buckets, 0);
  slot_of_.resize(buckets, kNil);
}

void SlotIndex::Insert(uint64_t key, uint32_t slot) {
  uint32_t b = BucketOf(key, mask_);
  while (slot_of_[b] != kNil) {
    b = (b + 1) & mask_;
  }
  key_of_[b] = key;
  slot_of_[b] = slot;
}

void SlotIndex::Erase(uint64_t key) {
  uint32_t i = Find(key);
  assert(i != kNil);
  // Backward-shift deletion keeps probe chains tombstone-free: walk the
  // cluster after `i` and pull back any entry whose ideal bucket makes the
  // vacated position reachable.
  uint32_t j = i;
  while (true) {
    slot_of_[i] = kNil;
    uint32_t ideal;
    do {
      j = (j + 1) & mask_;
      if (slot_of_[j] == kNil) {
        return;
      }
      ideal = BucketOf(key_of_[j], mask_);
      // Keep scanning while entry j still lies on its own probe path if left
      // in place, i.e. moving it to `i` would skip its ideal bucket.
    } while (i <= j ? (i < ideal && ideal <= j) : (i < ideal || ideal <= j));
    key_of_[i] = key_of_[j];
    slot_of_[i] = slot_of_[j];
    i = j;
  }
}

void SlotIndex::Clear() {
  std::fill(slot_of_.begin(), slot_of_.end(), kNil);
}

FlatLruSet::FlatLruSet(uint32_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    return;  // placeholder for the inactive implementation; never used
  }
  slots_.resize(capacity_);
  free_.reserve(capacity_);
  index_ = SlotIndex(capacity_);
}

void FlatLruSet::Insert(uint64_t key) {
  const uint32_t b = index_.Find(key);
  if (b != SlotIndex::kNil) {
    MoveToFront(index_.SlotAt(b));
    return;
  }
  uint32_t slot;
  if (size_ >= capacity_) {
    slot = tail_;  // evict LRU, reuse its slot
    Unlink(slot);
    index_.Erase(slots_[slot].key);
  } else if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    size_++;
  } else {
    slot = size_++;
  }
  slots_[slot].key = key;
  PushFront(slot);
  index_.Insert(key, slot);
}

void FlatLruSet::Erase(uint64_t key) {
  const uint32_t b = index_.Find(key);
  if (b == SlotIndex::kNil) {
    return;
  }
  const uint32_t slot = index_.SlotAt(b);
  Unlink(slot);
  index_.Erase(key);
  free_.push_back(slot);
  size_--;
}

void FlatLruSet::Clear() {
  if (capacity_ == 0) {
    return;
  }
  size_ = 0;
  head_ = kNil;
  tail_ = kNil;
  free_.clear();
  index_.Clear();
}

SmallLruSet::SmallLruSet(uint32_t capacity) : capacity_(capacity) {
  assert(capacity_ <= kMaxCapacity);
}

void SmallLruSet::Insert(uint64_t key) {
  const uint32_t hit = Probe(key);
  if (hit != kNil) {
    MoveToFront(hit);
    return;
  }
  InsertAbsent(key);
}

void SmallLruSet::Erase(uint64_t key) {
  const uint32_t slot = Probe(key);
  if (slot == kNil) {
    return;
  }
  Unlink(slot);
  valid_ &= ~(1ull << slot);  // the stale signature lane is masked by valid_
}

void SmallLruSet::Clear() {
  valid_ = 0;
  head_ = kNil;
  tail_ = kNil;
}

Tlb::Tlb(const MmuParams& params)
    : reference_(params.reference_sim),
      f_l1_4k_(reference_ ? 0 : params.l1_tlb_4k_entries),
      f_l1_2m_(reference_ ? 0 : params.l1_tlb_2m_entries),
      f_l2_(reference_ ? 0 : params.l2_tlb_entries),
      r_l1_4k_(params.l1_tlb_4k_entries),
      r_l1_2m_(params.l1_tlb_2m_entries),
      r_l2_(params.l2_tlb_entries) {}

TlbResult Tlb::LookupReference(uint64_t key, bool huge) {
  if ((huge ? r_l1_2m_ : r_l1_4k_).Touch(key)) {
    return TlbResult::kL1Hit;
  }
  if (r_l2_.Touch(key)) {
    (huge ? r_l1_2m_ : r_l1_4k_).Insert(key);
    return TlbResult::kL2Hit;
  }
  return TlbResult::kMiss;
}

void Tlb::Insert(uint64_t vaddr, bool huge) {
  const uint64_t key = PageNumber(vaddr, huge);
  if (reference_) {
    (huge ? r_l1_2m_ : r_l1_4k_).Insert(key);
    r_l2_.Insert(key);
    return;
  }
  (huge ? f_l1_2m_ : f_l1_4k_).Insert(key);
  f_l2_.Insert(key);
}

void Tlb::InvalidatePage(uint64_t vaddr, bool huge) {
  const uint64_t key = PageNumber(vaddr, huge);
  if (reference_) {
    (huge ? r_l1_2m_ : r_l1_4k_).Erase(key);
    r_l2_.Erase(key);
    return;
  }
  (huge ? f_l1_2m_ : f_l1_4k_).Erase(key);
  f_l2_.Erase(key);
}

void Tlb::Flush() {
  if (reference_) {
    r_l1_4k_.Clear();
    r_l1_2m_.Clear();
    r_l2_.Clear();
    return;
  }
  f_l1_4k_.Clear();
  f_l1_2m_.Clear();
  f_l2_.Clear();
}

}  // namespace vmem
