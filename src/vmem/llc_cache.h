// Set-associative last-level cache simulator, physically indexed on 64 B
// lines. Application data lines and page-table lines share capacity — the
// mechanism behind Fig 4/Fig 8: with base pages, page-walk traffic evicts the
// application's hot set.
//
// Like the TLB, the cache has two interchangeable backends selected by
// MmuParams::reference_sim: the original array-of-structs table (reference)
// and a packed per-set block layout with a valid bitmask (fast). Both
// implement the same policy — hit refreshes the way's LRU stamp; a miss fills
// the last invalid way if one exists, otherwise the lowest-indexed way with
// the minimum stamp — so their hit/miss decisions and final state are
// bit-identical.
#ifndef SRC_VMEM_LLC_CACHE_H_
#define SRC_VMEM_LLC_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/vmem/mmu_params.h"

namespace vmem {

class LlcCache {
 public:
  explicit LlcCache(const MmuParams& params);

  // Touches the line containing `paddr`; returns true on hit. Misses fill the
  // line (evicting LRU in the set). Defined inline below so the fast-layout
  // hit probe — a branchless tag scan — runs without a function call.
  bool Access(uint64_t paddr);

  void Flush();

  uint64_t num_sets() const { return num_sets_; }
  bool reference_sim() const { return reference_; }

  // FNV-1a over every way's (valid, tag, lru) in set/way order, independent of
  // the backing layout. Lets the differential test assert the two
  // implementations reach the same state, not just the same hit/miss answers.
  uint64_t StateHash() const;

 private:
  struct Way {
    uint64_t tag = 0;
    uint64_t lru = 0;  // larger = more recent
    bool valid = false;
  };

  static uint8_t Sig8(uint64_t tag) {
    return static_cast<uint8_t>((tag * 0x9e3779b97f4a7c15ull) >> 56);
  }

  bool AccessReference(uint64_t set, uint64_t tag);
  bool AccessFastMiss(uint64_t* block, uint64_t valid, uint64_t tag);

  const bool reference_;
  uint32_t ways_;
  uint64_t num_sets_;
  // When num_sets_ is a power of two, set/tag come from mask+shift instead of
  // div/mod — same values, cheaper on the hot path.
  uint64_t set_mask_ = 0;  // num_sets_ - 1, or 0 when not a power of two
  uint32_t set_shift_ = 0;
  uint64_t tick_ = 0;

  // Reference layout: num_sets_ x ways_ array of structs.
  std::vector<Way> table_;

  // Fast layout: one packed block of (1 + nsig_ + 2*ways_) u64s per set —
  // valid bitmask (ways_ <= 64), one 8-bit tag signature per way (eight ways
  // per u64 word), then tags, then LRU stamps — padded to whole cachelines
  // and based at a cacheline-aligned pointer (base_) inside blocks_. The
  // probe reads the valid mask and signatures (one cacheline covers both for
  // typical associativities) and only touches a tag word to verify a
  // signature candidate, instead of scanning the whole tag array.
  uint32_t nsig_ = 0;        // signature words per set: ceil(ways_ / 8)
  uint64_t set_stride_ = 0;  // u64s per set block
  std::vector<uint64_t> blocks_;
  uint64_t* base_ = nullptr;  // 64 B-aligned start of set 0 inside blocks_
};

inline bool LlcCache::Access(uint64_t paddr) {
  const uint64_t line = paddr / common::kCacheline;
  uint64_t set;
  uint64_t tag;
  if (set_mask_ != 0) {
    set = line & set_mask_;
    tag = line >> set_shift_;
  } else {
    set = line % num_sets_;
    tag = line / num_sets_;
  }
  tick_++;
  if (reference_) {
    return AccessReference(set, tag);
  }
  uint64_t* block = base_ + set * set_stride_;
  const uint64_t valid = block[0];
  const uint64_t* tags = block + 1 + nsig_;
  // SWAR signature probe: a zero byte in sig word ^ (signature repeated to
  // all lanes) marks a candidate way. The zero-byte detect can flag extra
  // lanes (a borrow from a lower true match, or the stale signature of an
  // invalid way), so candidates are verified against the valid mask and the
  // full tag; it never misses a real match. A tag occurs at most once among
  // a set's valid ways.
  const uint64_t probe = 0x0101010101010101ull * Sig8(tag);
  for (uint32_t j = 0; j < nsig_; j++) {
    const uint64_t x = block[1 + j] ^ probe;
    uint64_t cand = (x - 0x0101010101010101ull) & ~x & 0x8080808080808080ull;
    while (cand != 0) {
      const uint32_t w = j * 8 + (static_cast<uint32_t>(__builtin_ctzll(cand)) >> 3);
      if ((valid >> w & 1) != 0 && tags[w] == tag) {
        block[1 + nsig_ + ways_ + w] = tick_;
        return true;
      }
      cand &= cand - 1;
    }
  }
  return AccessFastMiss(block, valid, tag);
}

}  // namespace vmem

#endif  // SRC_VMEM_LLC_CACHE_H_
