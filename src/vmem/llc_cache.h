// Set-associative last-level cache simulator, physically indexed on 64 B
// lines. Application data lines and page-table lines share capacity — the
// mechanism behind Fig 4/Fig 8: with base pages, page-walk traffic evicts the
// application's hot set.
#ifndef SRC_VMEM_LLC_CACHE_H_
#define SRC_VMEM_LLC_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/vmem/mmu_params.h"

namespace vmem {

class LlcCache {
 public:
  explicit LlcCache(const MmuParams& params);

  // Touches the line containing `paddr`; returns true on hit. Misses fill the
  // line (evicting LRU in the set).
  bool Access(uint64_t paddr);

  void Flush();

  uint64_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    uint64_t tag = 0;
    uint64_t lru = 0;  // larger = more recent
    bool valid = false;
  };

  uint32_t ways_;
  uint64_t num_sets_;
  uint64_t tick_ = 0;
  std::vector<Way> table_;  // num_sets_ x ways_
};

}  // namespace vmem

#endif  // SRC_VMEM_LLC_CACHE_H_
