#include "src/obs/trace.h"

namespace obs {

std::string_view SpanCatName(SpanCat cat) {
  switch (cat) {
    case SpanCat::kFaultHandling:
      return "fault_handling";
    case SpanCat::kDataCopy:
      return "data_copy";
    case SpanCat::kJournalCommit:
      return "journal_commit";
    case SpanCat::kAllocation:
      return "allocation";
    case SpanCat::kRecovery:
      return "recovery";
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceBuffer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> guard(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_ % capacity_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  recorded_++;
  const size_t cat = static_cast<size_t>(event.cat);
  total_ns_[cat] += event.duration_ns();
  count_[cat]++;
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < capacity_; i++) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t TraceBuffer::TotalNs(SpanCat cat) const {
  std::lock_guard<std::mutex> guard(mu_);
  return total_ns_[static_cast<size_t>(cat)];
}

uint64_t TraceBuffer::Count(SpanCat cat) const {
  std::lock_guard<std::mutex> guard(mu_);
  return count_[static_cast<size_t>(cat)];
}

uint64_t TraceBuffer::recorded() const {
  std::lock_guard<std::mutex> guard(mu_);
  return recorded_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  total_ns_.fill(0);
  count_.fill(0);
}

ScopedSpan::~ScopedSpan() {
  if (ctx_.trace != nullptr) {
    ctx_.trace->Record(
        TraceEvent{cat_, ctx_.cpu, start_ns_, ctx_.clock.NowNs(), arg_});
  }
}

}  // namespace obs
