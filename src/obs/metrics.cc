#include "src/obs/metrics.h"

#include <algorithm>

namespace obs {

void MetricsRegistry::RecordOp(std::string_view fs, std::string_view op,
                               uint64_t latency_ns) {
  std::lock_guard<std::mutex> guard(mu_);
  ops_[Key(std::string(fs), std::string(op))].Record(latency_ns);
}

void MetricsRegistry::AddCounter(std::string_view fs, std::string_view counter,
                                 uint64_t delta) {
  std::lock_guard<std::mutex> guard(mu_);
  counters_[Key(std::string(fs), std::string(counter))] += delta;
}

void MetricsRegistry::MergeCounters(std::string_view fs,
                                    const common::PerfCounters& counters) {
  std::lock_guard<std::mutex> guard(mu_);
  for (const common::CounterField& field : common::kCounterFields) {
    counters_[Key(std::string(fs), std::string(field.name))] +=
        counters.*field.member;
  }
}

std::vector<std::string> MetricsRegistry::FsNames() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::string> names;
  for (const auto& [key, hist] : ops_) {
    (void)hist;
    names.push_back(key.first);
  }
  for (const auto& [key, value] : counters_) {
    (void)value;
    names.push_back(key.first);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<std::string> MetricsRegistry::OpsFor(std::string_view fs) const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::string> ops;
  for (const auto& [key, hist] : ops_) {
    (void)hist;
    if (key.first == fs) {
      ops.push_back(key.second);
    }
  }
  return ops;  // map iteration order is already sorted
}

common::LatencyHistogram MetricsRegistry::OpHistogram(std::string_view fs,
                                                      std::string_view op) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = ops_.find(Key(std::string(fs), std::string(op)));
  if (it == ops_.end()) {
    return common::LatencyHistogram();
  }
  return it->second;
}

uint64_t MetricsRegistry::Counter(std::string_view fs, std::string_view name) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = counters_.find(Key(std::string(fs), std::string(name)));
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CountersFor(
    std::string_view fs) const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const auto& [key, value] : counters_) {
    if (key.first == fs) {
      out.emplace_back(key.second, value);
    }
  }
  return out;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  ops_.clear();
  counters_.clear();
}

}  // namespace obs
