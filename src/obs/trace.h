// Span tracing on the simulated timeline.
//
// Scoped RAII spans mark how simulated time is spent (fault handling, journal
// commits, allocation, data copies); a ring-buffer TraceBuffer attached to an
// ExecContext collects them with running per-category totals. Fig 2-style
// time decompositions are computed from these traces instead of hand-
// maintained counter fields.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "src/common/exec_context.h"

namespace obs {

// What a span measures. Add new categories before kRecovery's trailing
// counterpart and extend kNumSpanCats + SpanCatName together.
enum class SpanCat : uint8_t {
  kFaultHandling = 0,  // mmap fault dispatch through the owning filesystem
  kDataCopy,           // bulk data movement to/from the PM device
  kJournalCommit,      // consistency-engine commits (undo journal, JBD2, log)
  kAllocation,         // block-allocator search + bookkeeping
  kRecovery,           // mount-time journal replay/rollback + rebuild scan
};
inline constexpr size_t kNumSpanCats = 5;

std::string_view SpanCatName(SpanCat cat);

struct TraceEvent {
  SpanCat cat = SpanCat::kFaultHandling;
  uint32_t cpu = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t arg = 0;  // span-specific payload (bytes copied, inode, ...)

  uint64_t duration_ns() const { return end_ns - start_ns; }
};

// Fixed-capacity ring of spans plus running per-category aggregates. The
// aggregates cover every span ever recorded; the ring keeps the most recent
// `capacity` events for inspection. Thread-safe.
class TraceBuffer : public common::ObsSink {
 public:
  explicit TraceBuffer(size_t capacity = 1 << 16);

  void Record(const TraceEvent& event);

  // Most recent events, oldest first.
  std::vector<TraceEvent> Events() const;
  uint64_t TotalNs(SpanCat cat) const;
  uint64_t Count(SpanCat cat) const;
  // Events recorded in total; events no longer in the ring = recorded - size.
  uint64_t recorded() const;
  void Clear();
  // common::ObsSink: attached contexts clear the ring + aggregates on Reset().
  void ResetSamples() override { Clear(); }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;
  uint64_t recorded_ = 0;
  std::array<uint64_t, kNumSpanCats> total_ns_{};
  std::array<uint64_t, kNumSpanCats> count_{};
};

// RAII span over a stretch of the context's simulated clock. Cheap no-op when
// the context has no TraceBuffer attached.
class ScopedSpan {
 public:
  ScopedSpan(common::ExecContext& ctx, SpanCat cat, uint64_t arg = 0)
      : ctx_(ctx),
        cat_(cat),
        arg_(arg),
        start_ns_(ctx.trace != nullptr ? ctx.clock.NowNs() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_arg(uint64_t arg) { arg_ = arg; }

  ~ScopedSpan();

 private:
  common::ExecContext& ctx_;
  SpanCat cat_;
  uint64_t arg_;
  uint64_t start_ns_;
};

}  // namespace obs

#endif  // SRC_OBS_TRACE_H_
