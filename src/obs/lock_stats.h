// LockSiteRegistry: per-named-lock-site contention accounting.
//
// Each site (one name; per-CPU mutexes may share a name or carry their CPU in
// it) accumulates acquisition counts, total/max wait, total hold, and
// wait/hold latency histograms on the simulated timeline. A bounded ring of
// raw lock events is retained for the Chrome-trace per-lock tracks.
//
// Hot-path budget: the exact totals (acquisitions/total wait/total hold) live
// in the common::LockSiteCell base and are bumped INLINE at every release by
// common::RecordLockRelease — no call into this registry at all. Only
// contended releases plus a deterministic 1-in-64 sample of uncontended ones
// reach RecordSampled, which feeds the contended count, max wait, the
// histograms, and the event ring. The wait histogram therefore describes
// contended waits only (uncontended waits are identically zero), and the hold
// histogram is all contended holds plus the uniform uncontended sample.
// Unsynchronized, like obs::Profiler: the simulator is single-host-threaded.
#ifndef SRC_OBS_LOCK_STATS_H_
#define SRC_OBS_LOCK_STATS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/prof.h"

namespace obs {

// Inherits the exact inline-maintained totals (acquisitions, total_wait_ns,
// total_hold_ns) from common::LockSiteCell, so releases write straight into
// this struct through the cached cell pointer.
struct LockSiteStats : common::LockSiteCell {
  std::string site;
  uint64_t contended = 0;  // acquisitions that queued (wait > 0)
  uint64_t max_wait_ns = 0;
  common::LatencyHistogram wait;  // contended acquisitions only
  common::LatencyHistogram hold;  // all contended + 1-in-64 uncontended
};

// One acquire/release pair, reconstructed for trace rendering: the caller
// queued on [release - hold - wait, release - hold) and held the lock on
// [release - hold, release), all in simulated ns.
struct LockEvent {
  uint32_t site = 0;
  uint32_t cpu = 0;
  uint64_t wait_ns = 0;
  uint64_t hold_ns = 0;
  uint64_t release_ns = 0;
};

class LockSiteRegistry {
 public:
  explicit LockSiteRegistry(size_t event_capacity = kDefaultEventCapacity);

  // Returns the index for `site`, creating it on first use; the same name
  // always yields the same index.
  uint32_t Register(std::string_view site);

  // The inline fast-path cell for `site`; stable for the registry's lifetime
  // (sites are deque-backed and never erased).
  common::LockSiteCell* CellFor(uint32_t site) {
    return site < sites_.size() ? &sites_[site] : nullptr;
  }

  // Records the slow-path share of one acquire/release pair released at
  // `release_ns`: contended, or in the 1-in-64 uncontended sample (the
  // caller made that cut; exact totals were already added inline to the cell).
  void RecordSampled(uint32_t site, uint32_t cpu, uint64_t release_ns, uint64_t wait_ns,
                     uint64_t hold_ns);

  size_t NumSites() const { return sites_.size(); }
  const std::string& SiteName(uint32_t site) const { return sites_[site].site; }
  const std::deque<LockSiteStats>& sites() const { return sites_; }

  // Retained events, oldest first (ring: newest kEventCapacity survive).
  std::vector<LockEvent> Events() const;

  // Index of the site with the largest total wait, or -1 if none recorded.
  int TopContendedSite() const;

  void Clear();

 private:
  static constexpr size_t kDefaultEventCapacity = 8192;

  // deque, not vector: CellFor hands out pointers that must survive the
  // growth caused by later Register calls.
  std::deque<LockSiteStats> sites_;
  std::map<std::string, uint32_t, std::less<>> index_;
  std::vector<LockEvent> events_;
  size_t event_capacity_;
  size_t event_head_ = 0;
  bool event_wrapped_ = false;
};

}  // namespace obs

#endif  // SRC_OBS_LOCK_STATS_H_
