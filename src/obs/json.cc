#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace obs {

void JsonEscape(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) {
      out_ += ',';
    }
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) {
      out_ += ',';
    }
    first_in_scope_.back() = false;
  }
  out_ += '"';
  JsonEscape(key, &out_);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  JsonEscape(value, &out_);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  if (!std::isfinite(value)) {
    return Null();
  }
  BeforeValue();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

namespace {

// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  common::Result<JsonValue> Parse() {
    JsonValue value;
    RETURN_IF_ERROR(ParseValue(&value, /*depth=*/0));
    SkipWs();
    if (pos_ != text_.size()) {
      return common::ErrorCode::kInvalidArgument;  // trailing garbage
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  common::Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return common::ErrorStatus(common::ErrorCode::kInvalidArgument);
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      return common::ErrorStatus(common::ErrorCode::kInvalidArgument);
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out, depth);
    }
    if (c == '[') {
      return ParseArray(out, depth);
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (ConsumeLiteral("true")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return common::OkStatus();
    }
    if (ConsumeLiteral("false")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return common::OkStatus();
    }
    if (ConsumeLiteral("null")) {
      out->type = JsonValue::Type::kNull;
      return common::OkStatus();
    }
    return ParseNumber(out);
  }

  common::Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    pos_++;  // '{'
    SkipWs();
    if (Consume('}')) {
      return common::OkStatus();
    }
    while (true) {
      SkipWs();
      std::string key;
      RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) {
        return common::ErrorStatus(common::ErrorCode::kInvalidArgument);
      }
      JsonValue value;
      RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object[std::move(key)] = std::move(value);
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return common::OkStatus();
      }
      return common::ErrorStatus(common::ErrorCode::kInvalidArgument);
    }
  }

  common::Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    pos_++;  // '['
    SkipWs();
    if (Consume(']')) {
      return common::OkStatus();
    }
    while (true) {
      JsonValue value;
      RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return common::OkStatus();
      }
      return common::ErrorStatus(common::ErrorCode::kInvalidArgument);
    }
  }

  common::Status ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return common::ErrorStatus(common::ErrorCode::kInvalidArgument);
    }
    pos_++;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return common::OkStatus();
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return common::ErrorStatus(common::ErrorCode::kInvalidArgument);
            }
            // Control characters only in our emitter; keep the low byte.
            const std::string hex(text_.substr(pos_, 4));
            *out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16) & 0xff);
            pos_ += 4;
            break;
          }
          default:
            return common::ErrorStatus(common::ErrorCode::kInvalidArgument);
        }
      } else {
        *out += c;
      }
    }
    return common::ErrorStatus(common::ErrorCode::kInvalidArgument);  // unterminated
  }

  common::Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      pos_++;
    }
    if (pos_ == start) {
      return common::ErrorStatus(common::ErrorCode::kInvalidArgument);
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return common::ErrorStatus(common::ErrorCode::kInvalidArgument);
    }
    out->type = JsonValue::Type::kNumber;
    out->number_value = value;
    return common::OkStatus();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

common::Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Parse();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

}  // namespace obs
