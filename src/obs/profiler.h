// obs::Profiler: contention & latency-attribution sink.
//
// Implements the common::ProfilerHook interface that SimMutex, ProfileZone,
// and OpScope feed. Aggregates three products, all on the simulated timeline:
//   - per-lock-site wait/hold histograms and totals (LockSiteRegistry),
//     recorded for EVERY acquisition (lock accounting is always-on);
//   - per-op-type per-layer exclusive-time histograms (sampled 1-in-2^shift
//     ops: the sticky `zones.active` flag decides which ops open zones);
//   - collapsed stacks (flame-graph folded format) keyed by the packed zone
//     path, accumulated from sampled zone exits.
// Observation-only by construction: the profiler never touches a clock or a
// counter, so modeled outputs are bit-identical with it attached or not.
// NOT host-thread-safe: the simulator executes every simulated CPU on one
// host thread (SimRunner's smallest-clock-first loop), so the hot hooks are
// plain unlocked updates — a host lock here measurably taxes the per-op gate.
#ifndef SRC_OBS_PROFILER_H_
#define SRC_OBS_PROFILER_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/histogram.h"
#include "src/common/prof.h"
#include "src/common/sim_clock.h"
#include "src/obs/lock_stats.h"

namespace obs {

class MetricsRegistry;

class Profiler : public common::ProfilerHook, public common::ObsSink {
 public:
  // Zones are sampled on 1 op in 2^sample_shift (default 1-in-512; 0 samples
  // every op, for tests). Lock totals are always exact (the inline
  // LockSiteCell fast path); histograms/ring sample inside LockSiteRegistry.
  // A sampled op pays for every zone it opens — device-heavy ops open one per
  // device access — so the default shift is what keeps the opperf overhead
  // gate under 5%.
  static constexpr uint32_t kDefaultSampleShift = 9;

  explicit Profiler(uint32_t sample_shift = kDefaultSampleShift,
                    size_t lock_event_capacity = 8192);

  // --- common::ProfilerHook ---------------------------------------------
  uint32_t RegisterLockSite(std::string_view site) override;
  common::LockSiteCell* LockSiteCellFor(uint32_t site) override;
  void OnLockEvent(common::ExecContext& ctx, uint32_t site, uint64_t wait_ns,
                   uint64_t hold_ns) override;
  void OnZoneExit(uint32_t path, common::ProfLayer layer, uint64_t exclusive_ns) override;
  void EndOp(common::ExecContext& ctx, std::string_view fs, std::string_view op) override;
  uint32_t ZoneSampleMask() const override { return sample_mask_; }

  // --- common::ObsSink ---------------------------------------------------
  // Drops accumulated samples but keeps registered site names, so cached
  // site handles in SimMutex instances stay valid across bench phases.
  void ResetSamples() override;

  // --- Accessors (snapshot semantics; call between ops, not mid-hook) ----

  struct OpAttribution {
    std::string op;
    uint64_t ops_sampled = 0;
    common::LatencyHistogram total;  // sum of per-layer exclusive ns per op
    std::array<common::LatencyHistogram, common::kNumProfLayers> layers;
  };

  // One collapsed-stack line: "vfs" or "fscore;journal;device" with the
  // accumulated exclusive simulated ns for that exact stack.
  struct FoldedFrame {
    std::string stack;
    uint64_t ns = 0;
  };

  std::vector<LockSiteStats> LockSites() const;
  std::vector<LockEvent> LockEvents() const;
  // Name of a site handle ("?" if out of range), for trace exporters.
  std::string SiteName(uint32_t site) const;
  // Name of the site with the largest total wait ("none" when no lock event
  // was recorded), and that site's total wait.
  std::string TopContendedSite() const;
  uint64_t TopContendedWaitNs() const;
  std::vector<OpAttribution> Attribution() const;
  std::vector<FoldedFrame> FoldedStacks() const;

  uint64_t ops_sampled() const;

  // Publishes aggregate lock counters (lock_acquisitions, lock_wait_total_ns,
  // lock_hold_total_ns, lock_wait_max_ns) into `registry` for `fs` — the
  // metrics-registry surface for SimMutex's previously write-only wait stats.
  void PublishTo(MetricsRegistry& registry, std::string_view fs) const;

 private:
  struct OpAttrCell {
    uint64_t ops_sampled = 0;
    common::LatencyHistogram total;
    std::array<common::LatencyHistogram, common::kNumProfLayers> layers;
  };

  const uint32_t sample_mask_;
  uint64_t ops_sampled_ = 0;
  LockSiteRegistry sites_;
  std::map<std::string, OpAttrCell, std::less<>> attribution_;
  // Collapsed stacks, linear-scanned on zone exit: the distinct packed paths
  // number in the tens, and first-seen (hottest) paths sit at the front.
  struct FoldedCell {
    uint32_t path;
    uint64_t ns;
  };
  std::vector<FoldedCell> folded_;
};

// Decodes a packed zone path (3 bits per level, root in the high groups) into
// "layer;layer;..." folded-stack notation. Exposed for tests and exporters.
std::string DecodeZonePath(uint32_t path);

}  // namespace obs

#endif  // SRC_OBS_PROFILER_H_
