#include "src/obs/profiler.h"

#include "src/obs/metrics.h"

namespace obs {

Profiler::Profiler(uint32_t sample_shift, size_t lock_event_capacity)
    : sample_mask_((1u << sample_shift) - 1), sites_(lock_event_capacity) {}

uint32_t Profiler::RegisterLockSite(std::string_view site) {
  return sites_.Register(site);
}

common::LockSiteCell* Profiler::LockSiteCellFor(uint32_t site) {
  return sites_.CellFor(site);
}

void Profiler::OnLockEvent(common::ExecContext& ctx, uint32_t site, uint64_t wait_ns,
                           uint64_t hold_ns) {
  sites_.RecordSampled(site, ctx.cpu, ctx.clock.NowNs(), wait_ns, hold_ns);
}

void Profiler::OnZoneExit(uint32_t path, common::ProfLayer layer, uint64_t exclusive_ns) {
  (void)layer;  // the path's low 3-bit group already encodes it
  for (FoldedCell& cell : folded_) {
    if (cell.path == path) {
      cell.ns += exclusive_ns;
      return;
    }
  }
  folded_.push_back(FoldedCell{path, exclusive_ns});
}

void Profiler::EndOp(common::ExecContext& ctx, std::string_view fs, std::string_view op) {
  (void)fs;  // one Profiler instance per filesystem under test
  common::ZoneState& zones = ctx.zones;
  uint64_t total = 0;
  auto it = attribution_.find(op);
  if (it == attribution_.end()) {
    it = attribution_.emplace(std::string(op), OpAttrCell{}).first;
  }
  OpAttrCell& cell = it->second;
  for (size_t i = 0; i < common::kNumProfLayers; i++) {
    if (zones.layer_ns[i] != 0) {
      cell.layers[i].Record(zones.layer_ns[i]);
      total += zones.layer_ns[i];
      zones.layer_ns[i] = 0;
    }
  }
  if (total != 0) {
    cell.total.Record(total);
    cell.ops_sampled++;
    ops_sampled_++;
  }
}

void Profiler::ResetSamples() {
  ops_sampled_ = 0;
  sites_.Clear();
  attribution_.clear();
  folded_.clear();
}

std::vector<LockSiteStats> Profiler::LockSites() const {
  std::vector<LockSiteStats> out;
  out.reserve(sites_.sites().size());
  for (const LockSiteStats& stats : sites_.sites()) {
    if (stats.acquisitions > 0) {
      out.push_back(stats);
    }
  }
  return out;
}

std::vector<LockEvent> Profiler::LockEvents() const {
  return sites_.Events();
}

std::string Profiler::SiteName(uint32_t site) const {
  return site < sites_.NumSites() ? sites_.SiteName(site) : std::string("?");
}

std::string Profiler::TopContendedSite() const {
  const int top = sites_.TopContendedSite();
  return top < 0 ? std::string("none") : sites_.SiteName(static_cast<uint32_t>(top));
}

uint64_t Profiler::TopContendedWaitNs() const {
  const int top = sites_.TopContendedSite();
  return top < 0 ? 0 : sites_.sites()[static_cast<size_t>(top)].total_wait_ns;
}

std::vector<Profiler::OpAttribution> Profiler::Attribution() const {
  std::vector<OpAttribution> out;
  out.reserve(attribution_.size());
  for (const auto& [op, cell] : attribution_) {
    OpAttribution row;
    row.op = op;
    row.ops_sampled = cell.ops_sampled;
    row.total = cell.total;
    row.layers = cell.layers;
    out.push_back(std::move(row));
  }
  return out;
}

std::string DecodeZonePath(uint32_t path) {
  // Peel 3-bit groups from the low end (innermost zone) and reverse.
  std::vector<common::ProfLayer> layers;
  while (path != 0) {
    layers.push_back(static_cast<common::ProfLayer>((path & 0x7u) - 1));
    path >>= 3;
  }
  std::string out;
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    if (!out.empty()) {
      out += ';';
    }
    out += common::ProfLayerName(*it);
  }
  return out;
}

std::vector<Profiler::FoldedFrame> Profiler::FoldedStacks() const {
  std::vector<FoldedFrame> out;
  out.reserve(folded_.size());
  for (const FoldedCell& cell : folded_) {
    out.push_back(FoldedFrame{DecodeZonePath(cell.path), cell.ns});
  }
  return out;
}

uint64_t Profiler::ops_sampled() const {
  return ops_sampled_;
}

void Profiler::PublishTo(MetricsRegistry& registry, std::string_view fs) const {
  uint64_t acquisitions = 0;
  uint64_t wait_ns = 0;
  uint64_t hold_ns = 0;
  uint64_t max_wait_ns = 0;
  {
    for (const LockSiteStats& stats : sites_.sites()) {
      acquisitions += stats.acquisitions;
      wait_ns += stats.total_wait_ns;
      hold_ns += stats.total_hold_ns;
      if (stats.max_wait_ns > max_wait_ns) {
        max_wait_ns = stats.max_wait_ns;
      }
    }
  }
  registry.AddCounter(fs, "lock_acquisitions", acquisitions);
  registry.AddCounter(fs, "lock_wait_total_ns", wait_ns);
  registry.AddCounter(fs, "lock_hold_total_ns", hold_ns);
  registry.AddCounter(fs, "lock_wait_max_ns", max_wait_ns);
}

}  // namespace obs
