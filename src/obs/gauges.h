// Gauge probes and simulated-timeline time-series sampling.
//
// A GaugeProvider exposes point-in-time internal state (free-space
// fragmentation, journal occupancy, hugepage coverage, ...) as named gauge
// values. A TimeSeriesSampler attached to an ExecContext polls its providers
// whenever the simulated clock crosses a period boundary (sample-on-cross:
// there is no preemption, so the hooks in OpScope and the mmap data path fire
// the check after every operation) and accumulates (t_ns, gauge, value)
// series. Benches dump the series into the `timeseries` section of
// BENCH_<name>.json so aging experiments report trajectories, not endpoints.
#ifndef SRC_OBS_GAUGES_H_
#define SRC_OBS_GAUGES_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/exec_context.h"

namespace obs {

// One sweep of gauge readings; providers append (name, value) pairs.
class GaugeSample {
 public:
  void Set(std::string gauge, double value) {
    values_.emplace_back(std::move(gauge), value);
  }
  const std::vector<std::pair<std::string, double>>& values() const { return values_; }

 private:
  std::vector<std::pair<std::string, double>> values_;
};

// Implemented by anything with internal state worth a time series:
// vfs::FileSystem (default no-op, overridden per filesystem) and
// vmem::MmapEngine (hugepage coverage of live mappings).
class GaugeProvider {
 public:
  virtual ~GaugeProvider() = default;
  virtual void SampleGauges(GaugeSample& out) = 0;
};

struct TimeSeriesPoint {
  uint64_t t_ns = 0;
  double value = 0;
};

// Per-gauge columnar storage of sampled points, in sample order.
class TimeSeries {
 public:
  void Add(uint64_t t_ns, const std::string& gauge, double value) {
    series_[gauge].push_back(TimeSeriesPoint{t_ns, value});
  }

  std::vector<std::string> GaugeNames() const;
  // Points for `gauge`; nullptr if the gauge was never sampled.
  const std::vector<TimeSeriesPoint>* Points(std::string_view gauge) const;
  size_t MaxPoints() const;
  // Keeps every other point of every gauge (decimation on overflow).
  void DropEveryOther();
  void Clear() { series_.clear(); }
  bool empty() const { return series_.empty(); }

  const std::map<std::string, std::vector<TimeSeriesPoint>, std::less<>>& series() const {
    return series_;
  }

 private:
  std::map<std::string, std::vector<TimeSeriesPoint>, std::less<>> series_;
};

// Samples all registered providers when the simulated clock crosses a period
// boundary. Attach via ExecContext::AttachSampler(); the OpScope destructor
// (every filesystem op) and the MappedFile data path call MaybeSample(), so
// any workload that touches the filesystem produces a timeline. When a gauge
// series outgrows kMaxPointsPerGauge the sampler halves the resolution (drops
// every other point, doubles the period), bounding memory on long runs while
// keeping full-run coverage. Thread-safe.
class TimeSeriesSampler : public common::ObsSink {
 public:
  static constexpr uint64_t kDefaultPeriodNs = 1'000'000;  // 1 simulated ms
  static constexpr size_t kMaxPointsPerGauge = 2048;

  explicit TimeSeriesSampler(uint64_t period_ns = kDefaultPeriodNs);

  void AddProvider(GaugeProvider* provider);
  void ClearProviders();

  // Samples iff the clock crossed the next period boundary. Cheap no-op
  // otherwise (one relaxed atomic load).
  void MaybeSample(common::ExecContext& ctx);
  // Unconditionally samples at the context's current simulated time.
  void SampleNow(common::ExecContext& ctx);

  const TimeSeries& series() const { return series_; }
  uint64_t period_ns() const;
  uint64_t samples_taken() const;

  // common::ObsSink: drops all series and restores the initial cadence;
  // providers stay registered.
  void ResetSamples() override;

 private:
  void TakeSampleLocked(uint64_t now_ns);

  mutable std::mutex mu_;
  std::vector<GaugeProvider*> providers_;
  const uint64_t base_period_ns_;
  uint64_t period_ns_;
  // 0 so the first MaybeSample records a baseline at the run's start.
  std::atomic<uint64_t> next_sample_ns_{0};
  uint64_t samples_taken_ = 0;
  TimeSeries series_;
};

}  // namespace obs

#endif  // SRC_OBS_GAUGES_H_
