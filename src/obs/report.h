// Structured bench results. Every bench target builds a BenchReport and calls
// WriteFile(), which emits BENCH_<name>.json (schema v3: config, per-fs
// metrics + latency summaries with tails and extremes + the full registered
// counter dump, optional span totals, optional gauge time series sampled
// along the simulated timeline, optional per-lock-site `contention` and
// per-op per-layer `attribution` sections from the profiler) into
// $BENCH_OUT_DIR (default: current directory). The emitted JSON is validated
// against the schema before it hits disk, so a bench that produces malformed
// output fails loudly at runtime — and the bench_json_schema CTest target
// re-validates a real emitted file end-to-end.
#ifndef SRC_OBS_REPORT_H_
#define SRC_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/perf_counters.h"
#include "src/common/result.h"
#include "src/obs/gauges.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace obs {

class Profiler;

// v2: latency summaries gained min/max/p999; results may carry a
// `timeseries` section of gauges sampled along the simulated timeline.
// v3: results may carry a `contention` section (named lock sites with
// acquisition counts and wait/hold totals + percentile summaries) and an
// `attribution` section (per-op modeled-ns decomposition into exclusive
// per-layer buckets), both produced by obs::Profiler.
// v4: results may carry a `tenants` section (tenant id -> ops, throughput,
// and a per-request latency summary) from multi-tenant trace replay.
inline constexpr int kBenchSchemaVersion = 4;

struct LatencySummary {
  std::string op;
  uint64_t count = 0;
  double mean_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  // Exact extremes (LatencyHistogram tracks them sample-exactly).
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
};

// One named lock site's contention row (schema v3 `contention` section).
struct ContentionSite {
  std::string site;
  uint64_t acquisitions = 0;
  uint64_t contended = 0;
  uint64_t total_wait_ns = 0;
  uint64_t total_hold_ns = 0;
  uint64_t max_wait_ns = 0;
  LatencySummary wait;  // `op` field unused; percentile fields carry the data
  LatencySummary hold;
};

// One tenant's replay outcome (schema v4 `tenants` section).
struct TenantSummary {
  uint32_t tenant = 0;
  uint64_t ops = 0;
  double ops_per_sec = 0;
  LatencySummary latency;  // per-request service latency; `op` field unused
};

// One op's per-layer modeled-ns decomposition (schema v3 `attribution`).
struct AttributionOp {
  std::string op;
  uint64_t ops_sampled = 0;
  LatencySummary total;
  // layer name ("vfs", "journal", ...) -> exclusive-ns summary; only layers
  // the op actually touched appear.
  std::vector<std::pair<std::string, LatencySummary>> layers;
};

// One filesystem's results within a bench.
struct FsResult {
  std::string fs;
  // Bench-specific numbers (throughput, fractions, ...), insertion order.
  std::vector<std::pair<std::string, double>> metrics;
  // Full registered counter dump (one JSON key per common::kCounterFields).
  common::PerfCounters counters;
  // Per-op latency summaries, usually from MetricsRegistry histograms.
  std::vector<LatencySummary> latencies;
  // Per-category span totals from a TraceBuffer, e.g. fault_handling -> ns.
  std::vector<std::pair<std::string, uint64_t>> span_ns;
  // Gauge time series sampled on the simulated timeline: gauge -> points.
  std::vector<std::pair<std::string, std::vector<TimeSeriesPoint>>> timeseries;
  // Per-lock-site contention rows, sorted by total wait descending.
  std::vector<ContentionSite> contention;
  // Per-op layer attribution rows.
  std::vector<AttributionOp> attribution;
  // Per-tenant replay rows (schema v4), in tenant-id order.
  std::vector<TenantSummary> tenants;
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  void AddConfig(std::string key, std::string value);
  void AddConfig(std::string key, double value);

  // Returns (creating on first use) the result row for `fs`.
  FsResult& ForFs(std::string_view fs);

  void AddMetric(std::string_view fs, std::string key, double value);
  void SetCounters(std::string_view fs, const common::PerfCounters& counters);

  // Pulls per-op latency summaries and registry counters for every fs the
  // registry has seen (registry counters land in FsResult::counters via the
  // registered-field names).
  void MergeRegistry(const MetricsRegistry& registry);

  // Records the per-category simulated-time totals of `trace` for `fs`.
  void AddSpans(std::string_view fs, const TraceBuffer& trace);

  // Appends every gauge series of `series` to `fs`'s timeseries section.
  // Calling it again for the same fs extends existing gauges (points are
  // appended in call order), so one JSON key never appears twice.
  void AddTimeSeries(std::string_view fs, const TimeSeries& series);

  // Replaces `fs`'s contention section with the profiler's per-lock-site
  // stats, sorted by total wait descending (last call wins, so a bench that
  // runs the same fs in several phases reports the final phase). Sites with
  // zero acquisitions are dropped; a profiler that saw no lock events leaves
  // the section absent.
  void AddContention(std::string_view fs, const Profiler& profiler);

  // Replaces `fs`'s attribution section with the profiler's per-op per-layer
  // decomposition (same last-call-wins semantics).
  void AddAttribution(std::string_view fs, const Profiler& profiler);

  // Replaces `fs`'s per-tenant section (schema v4). Tenants with zero ops are
  // dropped; an empty vector leaves the section absent.
  void AddTenants(std::string_view fs, const std::vector<TenantSummary>& tenants);

  std::string ToJson() const;

  // Validates ToJson() against the schema and writes it to
  // $BENCH_OUT_DIR/BENCH_<name>.json (BENCH_OUT_DIR defaults to "."). Returns
  // the path written.
  common::Result<std::string> WriteFile() const;

  const std::string& name() const { return name_; }
  const std::vector<FsResult>& results() const { return results_; }

 private:
  struct ConfigEntry {
    std::string key;
    bool is_number = false;
    std::string str;
    double num = 0;
  };

  std::string name_;
  std::vector<ConfigEntry> config_;
  std::vector<FsResult> results_;
};

// Checks `json_text` against bench schema v4; kOk iff it validates.
common::Status ValidateBenchReportJson(std::string_view json_text);

// Builds a LatencySummary (count/mean/p50/p90/p99/p999/min/max) from a
// histogram.
LatencySummary SummarizeHistogram(std::string op, const common::LatencyHistogram& hist);

}  // namespace obs

#endif  // SRC_OBS_REPORT_H_
