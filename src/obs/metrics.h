// Metrics registry: named counters and per-op simulated-latency histograms
// keyed by (fs, op). Filesystems feed it through obs::OpScope (installed in
// the GenericFs chassis); benches and tests read it back out or dump it into
// BENCH_*.json via obs::BenchReport.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/histogram.h"
#include "src/common/perf_counters.h"
#include "src/common/prof_zone.h"
#include "src/obs/gauges.h"

namespace obs {

// Thread-safe sink for per-(fs, op) latency samples and named counters.
// Attach via ExecContext::AttachMetrics; null means "not collecting".
class MetricsRegistry : public common::ObsSink {
 public:
  // Records one operation of `op` on filesystem `fs` taking `latency_ns` of
  // simulated time.
  void RecordOp(std::string_view fs, std::string_view op, uint64_t latency_ns);

  // Bumps the named counter for `fs` by `delta`.
  void AddCounter(std::string_view fs, std::string_view counter, uint64_t delta);

  // Folds a PerfCounters snapshot into the named counters for `fs`, one entry
  // per registered field (common::kCounterFields) — the registry is the
  // aggregation path, so an unregistered field cannot reach it.
  void MergeCounters(std::string_view fs, const common::PerfCounters& counters);

  // Filesystems with at least one sample or counter, sorted.
  std::vector<std::string> FsNames() const;
  // Ops recorded for `fs`, sorted.
  std::vector<std::string> OpsFor(std::string_view fs) const;
  // Snapshot of the histogram for (fs, op); empty histogram if absent.
  common::LatencyHistogram OpHistogram(std::string_view fs, std::string_view op) const;
  // Value of a named counter for `fs`; 0 if absent.
  uint64_t Counter(std::string_view fs, std::string_view name) const;
  // All named counters for `fs`, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> CountersFor(std::string_view fs) const;

  void Clear();
  // common::ObsSink: attached contexts clear all samples + counters on Reset().
  void ResetSamples() override { Clear(); }

 private:
  using Key = std::pair<std::string, std::string>;  // (fs, op/counter)
  mutable std::mutex mu_;
  std::map<Key, common::LatencyHistogram> ops_;
  std::map<Key, uint64_t> counters_;
};

// RAII scope that records the simulated time spent in one filesystem op into
// the context's MetricsRegistry, and — because every filesystem operation
// passes through here — gives the context's TimeSeriesSampler its
// sample-on-cross opportunity and the attached profiler its per-op
// attribution flush when the op completes. The root fscore zone makes every
// sampled op fully covered: time not claimed by a nested journal / allocator
// / device / mmu zone lands in the fscore bucket. No-op when no sink is
// attached.
class OpScope {
 public:
  OpScope(common::ExecContext& ctx, std::string_view fs, std::string_view op)
      : ctx_(ctx),
        fs_(fs),
        op_(op),
        start_ns_(ctx.metrics != nullptr ? ctx.clock.NowNs() : 0),
        zone_(ctx, common::ProfLayer::kFsCore) {}

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  ~OpScope() {
    // Order matters: close the root zone first so its exclusive time is in
    // the context's layer buckets, then let the profiler flush the op. The
    // tick itself is inline; the virtual flush fires only for sampled ops.
    zone_.End();
    if (ctx_.profiler != nullptr && ctx_.zones.Tick()) {
      ctx_.profiler->EndOp(ctx_, fs_, op_);
    }
    if (ctx_.metrics != nullptr) {
      ctx_.metrics->RecordOp(fs_, op_, ctx_.clock.NowNs() - start_ns_);
    }
    if (ctx_.sampler != nullptr) {
      ctx_.sampler->MaybeSample(ctx_);
    }
  }

 private:
  common::ExecContext& ctx_;
  std::string_view fs_;
  std::string_view op_;
  uint64_t start_ns_;
  common::ProfileZone zone_;
};

}  // namespace obs

#endif  // SRC_OBS_METRICS_H_
