#include "src/obs/chrome_trace.h"

#include <cstdlib>
#include <fstream>
#include <set>

#include "src/obs/json.h"

namespace obs {

namespace {

void MetadataEvent(JsonWriter& w, std::string_view what, uint64_t pid, uint64_t tid,
                   std::string_view label, bool with_tid) {
  w.BeginObject();
  w.Key("name").String(what);
  w.Key("ph").String("M");
  w.Key("pid").Number(pid);
  if (with_tid) {
    w.Key("tid").Number(tid);
  }
  w.Key("args").BeginObject().Key("name").String(label).EndObject();
  w.EndObject();
}

}  // namespace

std::string ChromeTraceJson(const std::vector<NamedTrace>& traces) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  uint64_t pid = 0;
  for (const NamedTrace& named : traces) {
    pid++;
    if (named.trace == nullptr) {
      continue;
    }
    const std::vector<TraceEvent> events = named.trace->Events();
    MetadataEvent(w, "process_name", pid, 0, named.name, /*with_tid=*/false);
    std::set<uint32_t> cpus;
    for (const TraceEvent& event : events) {
      cpus.insert(event.cpu);
    }
    for (const uint32_t cpu : cpus) {
      MetadataEvent(w, "thread_name", pid, cpu, "cpu " + std::to_string(cpu),
                    /*with_tid=*/true);
    }
    for (const TraceEvent& event : events) {
      w.BeginObject();
      w.Key("name").String(SpanCatName(event.cat));
      w.Key("cat").String(SpanCatName(event.cat));
      w.Key("ph").String("X");
      w.Key("pid").Number(pid);
      w.Key("tid").Number(static_cast<uint64_t>(event.cpu));
      // Trace-event timestamps are microseconds; keep ns precision as decimals.
      w.Key("ts").Number(static_cast<double>(event.start_ns) / 1000.0);
      w.Key("dur").Number(static_cast<double>(event.duration_ns()) / 1000.0);
      w.Key("args").BeginObject().Key("arg").Number(event.arg).EndObject();
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

common::Result<std::string> WriteChromeTrace(std::string_view bench_name,
                                             const std::vector<NamedTrace>& traces) {
  const char* dir = std::getenv("BENCH_OUT_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? std::string(dir) : std::string(".");
  if (path.back() != '/') {
    path += '/';
  }
  path += "TRACE_" + std::string(bench_name) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return common::ErrorCode::kIoError;
  }
  out << ChromeTraceJson(traces) << "\n";
  out.close();
  if (!out) {
    return common::ErrorCode::kIoError;
  }
  return path;
}

}  // namespace obs
