#include "src/obs/chrome_trace.h"

#include <cstdlib>
#include <fstream>
#include <set>

#include "src/obs/json.h"
#include "src/obs/profiler.h"

namespace obs {

namespace {

void MetadataEvent(JsonWriter& w, std::string_view what, uint64_t pid, uint64_t tid,
                   std::string_view label, bool with_tid) {
  w.BeginObject();
  w.Key("name").String(what);
  w.Key("ph").String("M");
  w.Key("pid").Number(pid);
  if (with_tid) {
    w.Key("tid").Number(tid);
  }
  w.Key("args").BeginObject().Key("name").String(label).EndObject();
  w.EndObject();
}

void CompleteEvent(JsonWriter& w, std::string_view name, std::string_view cat, uint64_t pid,
                   uint64_t tid, uint64_t start_ns, uint64_t dur_ns, uint64_t arg) {
  w.BeginObject();
  w.Key("name").String(name);
  w.Key("cat").String(cat);
  w.Key("ph").String("X");
  w.Key("pid").Number(pid);
  w.Key("tid").Number(tid);
  // Trace-event timestamps are microseconds; keep ns precision as decimals.
  w.Key("ts").Number(static_cast<double>(start_ns) / 1000.0);
  w.Key("dur").Number(static_cast<double>(dur_ns) / 1000.0);
  w.Key("args").BeginObject().Key("arg").Number(arg).EndObject();
  w.EndObject();
}

std::string OutPath(std::string_view prefix, std::string_view bench_name,
                    std::string_view extension) {
  const char* dir = std::getenv("BENCH_OUT_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? std::string(dir) : std::string(".");
  if (path.back() != '/') {
    path += '/';
  }
  path += std::string(prefix) + std::string(bench_name) + std::string(extension);
  return path;
}

common::Result<std::string> WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return common::ErrorCode::kIoError;
  }
  out << text;
  out.close();
  if (!out) {
    return common::ErrorCode::kIoError;
  }
  return path;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<NamedTrace>& traces,
                            const std::vector<NamedLockTrack>& lock_tracks) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  uint64_t pid = 0;
  for (const NamedTrace& named : traces) {
    pid++;
    if (named.trace == nullptr) {
      continue;
    }
    const std::vector<TraceEvent> events = named.trace->Events();
    MetadataEvent(w, "process_name", pid, 0, named.name, /*with_tid=*/false);
    std::set<uint32_t> cpus;
    for (const TraceEvent& event : events) {
      cpus.insert(event.cpu);
    }
    for (const uint32_t cpu : cpus) {
      MetadataEvent(w, "thread_name", pid, cpu, "cpu " + std::to_string(cpu),
                    /*with_tid=*/true);
    }
    for (const TraceEvent& event : events) {
      CompleteEvent(w, SpanCatName(event.cat), SpanCatName(event.cat), pid, event.cpu,
                    event.start_ns, event.duration_ns(), event.arg);
    }
  }
  for (const NamedLockTrack& track : lock_tracks) {
    pid++;
    if (track.profiler == nullptr) {
      continue;
    }
    const std::vector<LockEvent> events = track.profiler->LockEvents();
    if (events.empty()) {
      continue;
    }
    MetadataEvent(w, "process_name", pid, 0, track.name + " locks", /*with_tid=*/false);
    const std::vector<LockSiteStats> sites = track.profiler->LockSites();
    std::set<uint32_t> seen_sites;
    for (const LockEvent& event : events) {
      seen_sites.insert(event.site);
    }
    for (const uint32_t site : seen_sites) {
      // Thread rows are the lock sites; lane ids start at 1000 so they never
      // collide with cpu lanes if a viewer merges processes.
      MetadataEvent(w, "thread_name", pid, 1000 + site,
                    std::string("lock ") + track.profiler->SiteName(site),
                    /*with_tid=*/true);
    }
    for (const LockEvent& event : events) {
      // Reconstruct the timeline backwards from the release point: the
      // caller queued during [release - hold - wait, release - hold) and held
      // the lock during [release - hold, release).
      const uint64_t acquire_ns = event.release_ns - event.hold_ns;
      if (event.wait_ns > 0) {
        CompleteEvent(w, "wait", "lock_wait", pid, 1000 + event.site,
                      acquire_ns - event.wait_ns, event.wait_ns, event.cpu);
      }
      if (event.hold_ns > 0) {
        CompleteEvent(w, "hold", "lock_hold", pid, 1000 + event.site, acquire_ns,
                      event.hold_ns, event.cpu);
      }
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

common::Result<std::string> WriteChromeTrace(std::string_view bench_name,
                                             const std::vector<NamedTrace>& traces,
                                             const std::vector<NamedLockTrack>& lock_tracks) {
  return WriteTextFile(OutPath("TRACE_", bench_name, ".json"),
                       ChromeTraceJson(traces, lock_tracks) + "\n");
}

std::string CollapsedStacks(const std::vector<NamedLockTrack>& profilers) {
  std::string out;
  for (const NamedLockTrack& track : profilers) {
    if (track.profiler == nullptr) {
      continue;
    }
    for (const Profiler::FoldedFrame& frame : track.profiler->FoldedStacks()) {
      out += track.name;
      out += ';';
      out += frame.stack;
      out += ' ';
      out += std::to_string(frame.ns);
      out += '\n';
    }
  }
  return out;
}

common::Result<std::string> WriteCollapsedStacks(std::string_view bench_name,
                                                 const std::vector<NamedLockTrack>& profilers) {
  return WriteTextFile(OutPath("FLAME_", bench_name, ".txt"), CollapsedStacks(profilers));
}

}  // namespace obs
