#include "src/obs/gauges.h"

#include <algorithm>

namespace obs {

std::vector<std::string> TimeSeries::GaugeNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, points] : series_) {
    (void)points;
    names.push_back(name);
  }
  return names;
}

const std::vector<TimeSeriesPoint>* TimeSeries::Points(std::string_view gauge) const {
  const auto it = series_.find(gauge);
  return it == series_.end() ? nullptr : &it->second;
}

size_t TimeSeries::MaxPoints() const {
  size_t max_points = 0;
  for (const auto& [name, points] : series_) {
    (void)name;
    max_points = std::max(max_points, points.size());
  }
  return max_points;
}

void TimeSeries::DropEveryOther() {
  for (auto& [name, points] : series_) {
    (void)name;
    std::vector<TimeSeriesPoint> kept;
    kept.reserve(points.size() / 2 + 1);
    // Keep even indexes so the baseline sample at index 0 survives.
    for (size_t i = 0; i < points.size(); i += 2) {
      kept.push_back(points[i]);
    }
    points = std::move(kept);
  }
}

TimeSeriesSampler::TimeSeriesSampler(uint64_t period_ns)
    : base_period_ns_(period_ns == 0 ? 1 : period_ns),
      period_ns_(base_period_ns_) {}

void TimeSeriesSampler::AddProvider(GaugeProvider* provider) {
  std::lock_guard<std::mutex> guard(mu_);
  // Idempotent: several contexts may attach the same bundle (foreground +
  // background threads of one bench); each provider reports once per sample.
  if (provider != nullptr &&
      std::find(providers_.begin(), providers_.end(), provider) == providers_.end()) {
    providers_.push_back(provider);
  }
}

void TimeSeriesSampler::ClearProviders() {
  std::lock_guard<std::mutex> guard(mu_);
  providers_.clear();
}

void TimeSeriesSampler::MaybeSample(common::ExecContext& ctx) {
  const uint64_t now = ctx.clock.NowNs();
  if (now < next_sample_ns_.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> guard(mu_);
  if (now < next_sample_ns_.load(std::memory_order_relaxed)) {
    return;  // another thread crossed the boundary first
  }
  TakeSampleLocked(now);
  next_sample_ns_.store(now - now % period_ns_ + period_ns_, std::memory_order_relaxed);
}

void TimeSeriesSampler::SampleNow(common::ExecContext& ctx) {
  std::lock_guard<std::mutex> guard(mu_);
  TakeSampleLocked(ctx.clock.NowNs());
}

void TimeSeriesSampler::TakeSampleLocked(uint64_t now_ns) {
  GaugeSample sample;
  for (GaugeProvider* provider : providers_) {
    provider->SampleGauges(sample);
  }
  for (const auto& [gauge, value] : sample.values()) {
    series_.Add(now_ns, gauge, value);
  }
  samples_taken_++;
  if (series_.MaxPoints() > kMaxPointsPerGauge) {
    series_.DropEveryOther();
    period_ns_ *= 2;
  }
}

uint64_t TimeSeriesSampler::period_ns() const {
  std::lock_guard<std::mutex> guard(mu_);
  return period_ns_;
}

uint64_t TimeSeriesSampler::samples_taken() const {
  std::lock_guard<std::mutex> guard(mu_);
  return samples_taken_;
}

void TimeSeriesSampler::ResetSamples() {
  std::lock_guard<std::mutex> guard(mu_);
  series_.Clear();
  samples_taken_ = 0;
  period_ns_ = base_period_ns_;
  next_sample_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
