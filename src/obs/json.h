// Minimal JSON support for the structured bench reporter: a streaming writer
// used to emit BENCH_<name>.json, and a small recursive-descent parser used by
// the schema validator (and tests) to read those files back. No external
// dependencies.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace obs {

// Streaming JSON writer with automatic comma/nesting management. Usage:
//   JsonWriter w;
//   w.BeginObject().Key("bench").String("fig06").Key("n").Number(3).EndObject();
//   w.str();
// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Number(uint64_t value);
  JsonWriter& Number(int value) { return Number(static_cast<uint64_t>(value < 0 ? 0 : value)); }
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true while it has no elements yet.
  std::vector<bool> first_in_scope_;
  bool after_key_ = false;
};

// Appends `text` JSON-escaped (no surrounding quotes) to `out`.
void JsonEscape(std::string_view text, std::string* out);

// Parsed JSON value (numbers are doubles; integers round-trip exactly up to
// 2^53, far beyond any counter this simulator produces in one bench).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  static common::Result<JsonValue> Parse(std::string_view text);

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Object member lookup; null if this is not an object or lacks the key.
  const JsonValue* Find(std::string_view key) const;
};

}  // namespace obs

#endif  // SRC_OBS_JSON_H_
