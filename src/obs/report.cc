#include "src/obs/report.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "src/common/prof.h"
#include "src/obs/json.h"
#include "src/obs/profiler.h"

namespace obs {

LatencySummary SummarizeHistogram(std::string op, const common::LatencyHistogram& hist) {
  LatencySummary s;
  s.op = std::move(op);
  s.count = hist.count();
  if (s.count > 0) {
    s.mean_ns = hist.MeanNanos();
    s.p50_ns = hist.Percentile(50.0);
    s.p90_ns = hist.Percentile(90.0);
    s.p99_ns = hist.Percentile(99.0);
    s.p999_ns = hist.Percentile(99.9);
    s.min_ns = hist.MinNanos();
    s.max_ns = hist.MaxNanos();
  }
  return s;
}

BenchReport::BenchReport(std::string bench_name) : name_(std::move(bench_name)) {}

void BenchReport::AddConfig(std::string key, std::string value) {
  ConfigEntry entry;
  entry.key = std::move(key);
  entry.str = std::move(value);
  config_.push_back(std::move(entry));
}

void BenchReport::AddConfig(std::string key, double value) {
  ConfigEntry entry;
  entry.key = std::move(key);
  entry.is_number = true;
  entry.num = value;
  config_.push_back(std::move(entry));
}

FsResult& BenchReport::ForFs(std::string_view fs) {
  for (FsResult& row : results_) {
    if (row.fs == fs) {
      return row;
    }
  }
  results_.emplace_back();
  results_.back().fs = std::string(fs);
  return results_.back();
}

void BenchReport::AddMetric(std::string_view fs, std::string key, double value) {
  ForFs(fs).metrics.emplace_back(std::move(key), value);
}

void BenchReport::SetCounters(std::string_view fs, const common::PerfCounters& counters) {
  ForFs(fs).counters = counters;
}

void BenchReport::MergeRegistry(const MetricsRegistry& registry) {
  for (const std::string& fs : registry.FsNames()) {
    FsResult& row = ForFs(fs);
    for (const std::string& op : registry.OpsFor(fs)) {
      row.latencies.push_back(SummarizeHistogram(op, registry.OpHistogram(fs, op)));
    }
    for (const auto& [name, value] : registry.CountersFor(fs)) {
      bool registered = false;
      for (const common::CounterField& field : common::kCounterFields) {
        if (name == field.name) {
          row.counters.*field.member += value;
          registered = true;
          break;
        }
      }
      if (!registered) {
        // Ad-hoc registry counters surface as metrics rather than vanishing.
        row.metrics.emplace_back(name, static_cast<double>(value));
      }
    }
  }
}

void BenchReport::AddSpans(std::string_view fs, const TraceBuffer& trace) {
  FsResult& row = ForFs(fs);
  for (size_t i = 0; i < kNumSpanCats; i++) {
    const SpanCat cat = static_cast<SpanCat>(i);
    row.span_ns.emplace_back(std::string(SpanCatName(cat)), trace.TotalNs(cat));
  }
}

void BenchReport::AddContention(std::string_view fs, const Profiler& profiler) {
  std::vector<LockSiteStats> sites = profiler.LockSites();
  if (sites.empty()) {
    return;
  }
  std::sort(sites.begin(), sites.end(), [](const LockSiteStats& a, const LockSiteStats& b) {
    return a.total_wait_ns > b.total_wait_ns;
  });
  FsResult& row = ForFs(fs);
  row.contention.clear();
  for (const LockSiteStats& stats : sites) {
    ContentionSite site;
    site.site = stats.site;
    site.acquisitions = stats.acquisitions;
    site.contended = stats.contended;
    site.total_wait_ns = stats.total_wait_ns;
    site.total_hold_ns = stats.total_hold_ns;
    site.max_wait_ns = stats.max_wait_ns;
    site.wait = SummarizeHistogram("wait", stats.wait);
    site.hold = SummarizeHistogram("hold", stats.hold);
    row.contention.push_back(std::move(site));
  }
}

void BenchReport::AddAttribution(std::string_view fs, const Profiler& profiler) {
  std::vector<Profiler::OpAttribution> ops = profiler.Attribution();
  if (ops.empty()) {
    return;
  }
  FsResult& row = ForFs(fs);
  row.attribution.clear();
  for (const Profiler::OpAttribution& op : ops) {
    AttributionOp out;
    out.op = op.op;
    out.ops_sampled = op.ops_sampled;
    out.total = SummarizeHistogram("total", op.total);
    for (size_t i = 0; i < common::kNumProfLayers; i++) {
      if (op.layers[i].count() == 0) {
        continue;
      }
      const auto layer = static_cast<common::ProfLayer>(i);
      out.layers.emplace_back(std::string(common::ProfLayerName(layer)),
                              SummarizeHistogram("layer", op.layers[i]));
    }
    row.attribution.push_back(std::move(out));
  }
}

void BenchReport::AddTenants(std::string_view fs, const std::vector<TenantSummary>& tenants) {
  FsResult& row = ForFs(fs);
  row.tenants.clear();
  for (const TenantSummary& t : tenants) {
    if (t.ops > 0) {
      row.tenants.push_back(t);
    }
  }
}

void BenchReport::AddTimeSeries(std::string_view fs, const TimeSeries& series) {
  FsResult& row = ForFs(fs);
  for (const auto& [gauge, points] : series.series()) {
    auto existing = row.timeseries.end();
    for (auto it = row.timeseries.begin(); it != row.timeseries.end(); ++it) {
      if (it->first == gauge) {
        existing = it;
        break;
      }
    }
    if (existing == row.timeseries.end()) {
      row.timeseries.emplace_back(gauge, points);
    } else {
      existing->second.insert(existing->second.end(), points.begin(), points.end());
    }
  }
}

namespace {

// Emits {count, mean, p50, p90, p99, p999, min, max} for one summary.
void WriteSummaryObject(JsonWriter& w, const LatencySummary& s) {
  w.BeginObject();
  w.Key("count").Number(s.count);
  w.Key("mean").Number(s.mean_ns);
  w.Key("p50").Number(s.p50_ns);
  w.Key("p90").Number(s.p90_ns);
  w.Key("p99").Number(s.p99_ns);
  w.Key("p999").Number(s.p999_ns);
  w.Key("min").Number(s.min_ns);
  w.Key("max").Number(s.max_ns);
  w.EndObject();
}

}  // namespace

std::string BenchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Number(static_cast<uint64_t>(kBenchSchemaVersion));
  w.Key("bench").String(name_);
  w.Key("config").BeginObject();
  for (const ConfigEntry& entry : config_) {
    w.Key(entry.key);
    if (entry.is_number) {
      w.Number(entry.num);
    } else {
      w.String(entry.str);
    }
  }
  w.EndObject();
  w.Key("results").BeginArray();
  for (const FsResult& row : results_) {
    w.BeginObject();
    w.Key("fs").String(row.fs);
    w.Key("metrics").BeginObject();
    for (const auto& [key, value] : row.metrics) {
      w.Key(key).Number(value);
    }
    w.EndObject();
    if (!row.latencies.empty()) {
      w.Key("latency_ns").BeginObject();
      for (const LatencySummary& lat : row.latencies) {
        w.Key(lat.op);
        WriteSummaryObject(w, lat);
      }
      w.EndObject();
    }
    if (!row.contention.empty()) {
      // site -> counts/totals plus wait/hold percentile summaries.
      w.Key("contention").BeginObject();
      for (const ContentionSite& site : row.contention) {
        w.Key(site.site).BeginObject();
        w.Key("acquisitions").Number(site.acquisitions);
        w.Key("contended").Number(site.contended);
        w.Key("total_wait_ns").Number(site.total_wait_ns);
        w.Key("total_hold_ns").Number(site.total_hold_ns);
        w.Key("max_wait_ns").Number(site.max_wait_ns);
        w.Key("wait");
        WriteSummaryObject(w, site.wait);
        w.Key("hold");
        WriteSummaryObject(w, site.hold);
        w.EndObject();
      }
      w.EndObject();
    }
    if (!row.attribution.empty()) {
      // op -> sampled count, total summary, and per-layer exclusive-ns
      // summaries for the layers the op touched.
      w.Key("attribution").BeginObject();
      for (const AttributionOp& op : row.attribution) {
        w.Key(op.op).BeginObject();
        w.Key("ops_sampled").Number(op.ops_sampled);
        w.Key("total");
        WriteSummaryObject(w, op.total);
        w.Key("layers").BeginObject();
        for (const auto& [layer, summary] : op.layers) {
          w.Key(layer);
          WriteSummaryObject(w, summary);
        }
        w.EndObject();
        w.EndObject();
      }
      w.EndObject();
    }
    if (!row.tenants.empty()) {
      // tenant id -> ops, throughput, and per-request latency summary.
      w.Key("tenants").BeginObject();
      for (const TenantSummary& t : row.tenants) {
        w.Key(std::to_string(t.tenant)).BeginObject();
        w.Key("ops").Number(t.ops);
        w.Key("ops_per_sec").Number(t.ops_per_sec);
        w.Key("latency");
        WriteSummaryObject(w, t.latency);
        w.EndObject();
      }
      w.EndObject();
    }
    if (!row.span_ns.empty()) {
      w.Key("spans_ns").BeginObject();
      for (const auto& [cat, ns] : row.span_ns) {
        w.Key(cat).Number(ns);
      }
      w.EndObject();
    }
    if (!row.timeseries.empty()) {
      // gauge -> [[t_ns, value], ...] in sample order.
      w.Key("timeseries").BeginObject();
      for (const auto& [gauge, points] : row.timeseries) {
        w.Key(gauge).BeginArray();
        for (const TimeSeriesPoint& point : points) {
          w.BeginArray();
          w.Number(point.t_ns);
          w.Number(point.value);
          w.EndArray();
        }
        w.EndArray();
      }
      w.EndObject();
    }
    w.Key("counters").BeginObject();
    for (const common::CounterField& field : common::kCounterFields) {
      w.Key(field.name).Number(row.counters.*field.member);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

common::Result<std::string> BenchReport::WriteFile() const {
  const std::string json = ToJson();
  RETURN_IF_ERROR(ValidateBenchReportJson(json));
  const char* dir = std::getenv("BENCH_OUT_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? std::string(dir) : std::string(".");
  if (path.back() != '/') {
    path += '/';
  }
  path += "BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return common::ErrorCode::kIoError;
  }
  out << json << "\n";
  out.close();
  if (!out) {
    return common::ErrorCode::kIoError;
  }
  return path;
}

namespace {

bool IsNumber(const JsonValue* value) {
  return value != nullptr && value->is_number();
}

// All members of `parent[key]`'s object must be numbers.
bool IsNumberObject(const JsonValue* value) {
  if (value == nullptr || !value->is_object()) {
    return false;
  }
  for (const auto& [key, member] : value->object) {
    (void)key;
    if (!member.is_number()) {
      return false;
    }
  }
  return true;
}

// A {count, mean, p50, p90, p99, p999, min, max} summary object.
bool IsSummaryObject(const JsonValue* value) {
  if (value == nullptr || !value->is_object()) {
    return false;
  }
  for (const char* key : {"count", "mean", "p50", "p90", "p99", "p999", "min", "max"}) {
    if (!IsNumber(value->Find(key))) {
      return false;
    }
  }
  return true;
}

}  // namespace

common::Status ValidateBenchReportJson(std::string_view json_text) {
  common::Result<JsonValue> parsed = JsonValue::Parse(json_text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const JsonValue& root = *parsed;
  const auto invalid = common::ErrorStatus(common::ErrorCode::kInvalidArgument);
  if (!root.is_object()) {
    return invalid;
  }
  const JsonValue* version = root.Find("schema_version");
  if (!IsNumber(version) || version->number_value != kBenchSchemaVersion) {
    return invalid;
  }
  const JsonValue* bench = root.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string_value.empty()) {
    return invalid;
  }
  const JsonValue* config = root.Find("config");
  if (config == nullptr || !config->is_object()) {
    return invalid;
  }
  const JsonValue* results = root.Find("results");
  if (results == nullptr || !results->is_array() || results->array.empty()) {
    return invalid;
  }
  for (const JsonValue& row : results->array) {
    if (!row.is_object()) {
      return invalid;
    }
    const JsonValue* fs = row.Find("fs");
    if (fs == nullptr || !fs->is_string() || fs->string_value.empty()) {
      return invalid;
    }
    if (!IsNumberObject(row.Find("metrics"))) {
      return invalid;
    }
    // Counter dump must cover every registered counter.
    const JsonValue* counters = row.Find("counters");
    if (!IsNumberObject(counters)) {
      return invalid;
    }
    for (const common::CounterField& field : common::kCounterFields) {
      if (counters->Find(field.name) == nullptr) {
        return invalid;
      }
    }
    const JsonValue* latency = row.Find("latency_ns");
    if (latency != nullptr) {
      if (!latency->is_object()) {
        return invalid;
      }
      for (const auto& [op, summary] : latency->object) {
        (void)op;
        if (!IsSummaryObject(&summary)) {
          return invalid;
        }
      }
    }
    // contention (optional, v3): site -> numeric counts/totals plus wait/hold
    // percentile summary objects.
    const JsonValue* contention = row.Find("contention");
    if (contention != nullptr) {
      if (!contention->is_object() || contention->object.empty()) {
        return invalid;
      }
      for (const auto& [site, entry] : contention->object) {
        if (site.empty() || !entry.is_object()) {
          return invalid;
        }
        for (const char* key :
             {"acquisitions", "contended", "total_wait_ns", "total_hold_ns", "max_wait_ns"}) {
          if (!IsNumber(entry.Find(key))) {
            return invalid;
          }
        }
        if (!IsSummaryObject(entry.Find("wait")) || !IsSummaryObject(entry.Find("hold"))) {
          return invalid;
        }
      }
    }
    // attribution (optional, v3): op -> {ops_sampled, total summary, layers:
    // layer-name -> summary}.
    const JsonValue* attribution = row.Find("attribution");
    if (attribution != nullptr) {
      if (!attribution->is_object() || attribution->object.empty()) {
        return invalid;
      }
      for (const auto& [op, entry] : attribution->object) {
        if (op.empty() || !entry.is_object()) {
          return invalid;
        }
        if (!IsNumber(entry.Find("ops_sampled")) || !IsSummaryObject(entry.Find("total"))) {
          return invalid;
        }
        const JsonValue* layers = entry.Find("layers");
        if (layers == nullptr || !layers->is_object() || layers->object.empty()) {
          return invalid;
        }
        for (const auto& [layer, summary] : layers->object) {
          if (layer.empty() || !IsSummaryObject(&summary)) {
            return invalid;
          }
        }
      }
    }
    // tenants (optional, v4): tenant id -> {ops, ops_per_sec, latency
    // summary}.
    const JsonValue* tenants = row.Find("tenants");
    if (tenants != nullptr) {
      if (!tenants->is_object() || tenants->object.empty()) {
        return invalid;
      }
      for (const auto& [tenant, entry] : tenants->object) {
        if (tenant.empty() || !entry.is_object()) {
          return invalid;
        }
        if (!IsNumber(entry.Find("ops")) || !IsNumber(entry.Find("ops_per_sec")) ||
            !IsSummaryObject(entry.Find("latency"))) {
          return invalid;
        }
      }
    }
    const JsonValue* spans = row.Find("spans_ns");
    if (spans != nullptr && !IsNumberObject(spans)) {
      return invalid;
    }
    // timeseries (optional): gauge -> array of [t_ns, value] number pairs.
    const JsonValue* timeseries = row.Find("timeseries");
    if (timeseries != nullptr) {
      if (!timeseries->is_object()) {
        return invalid;
      }
      for (const auto& [gauge, points] : timeseries->object) {
        (void)gauge;
        if (!points.is_array()) {
          return invalid;
        }
        for (const JsonValue& point : points.array) {
          if (!point.is_array() || point.array.size() != 2 ||
              !point.array[0].is_number() || !point.array[1].is_number()) {
            return invalid;
          }
        }
      }
    }
  }
  return common::OkStatus();
}

}  // namespace obs
