#include "src/obs/lock_stats.h"

#include <algorithm>

namespace obs {

LockSiteRegistry::LockSiteRegistry(size_t event_capacity)
    : event_capacity_(event_capacity == 0 ? 1 : event_capacity) {}

uint32_t LockSiteRegistry::Register(std::string_view site) {
  auto it = index_.find(site);
  if (it != index_.end()) {
    return it->second;
  }
  const uint32_t handle = static_cast<uint32_t>(sites_.size());
  sites_.emplace_back();
  sites_.back().site = std::string(site);
  index_.emplace(std::string(site), handle);
  return handle;
}

void LockSiteRegistry::RecordSampled(uint32_t site, uint32_t cpu, uint64_t release_ns,
                                     uint64_t wait_ns, uint64_t hold_ns) {
  // Exact totals (acquisitions/wait/hold) were already added inline through
  // the cached cell; only the sampled aggregates are updated here.
  if (site >= sites_.size()) {
    return;
  }
  LockSiteStats& stats = sites_[site];
  if (wait_ns == 0) {
    // Uncontended sample: histogram only. The event ring exists to render
    // queueing on the per-lock trace tracks, and walking its multi-hundred-KB
    // buffer for zero-wait events is pure cache pollution.
    stats.hold.Record(hold_ns);
    return;
  }
  stats.contended++;
  stats.max_wait_ns = std::max(stats.max_wait_ns, wait_ns);
  stats.wait.Record(wait_ns);
  stats.hold.Record(hold_ns);

  const LockEvent event{site, cpu, wait_ns, hold_ns, release_ns};
  if (events_.size() < event_capacity_) {
    events_.push_back(event);
  } else {
    events_[event_head_] = event;
    event_wrapped_ = true;
  }
  event_head_ = (event_head_ + 1) % event_capacity_;
}

std::vector<LockEvent> LockSiteRegistry::Events() const {
  if (!event_wrapped_) {
    return events_;
  }
  std::vector<LockEvent> ordered;
  ordered.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); i++) {
    ordered.push_back(events_[(event_head_ + i) % events_.size()]);
  }
  return ordered;
}

int LockSiteRegistry::TopContendedSite() const {
  int top = -1;
  uint64_t top_wait = 0;
  for (size_t i = 0; i < sites_.size(); i++) {
    if (sites_[i].acquisitions == 0) {
      continue;
    }
    if (top < 0 || sites_[i].total_wait_ns > top_wait) {
      top = static_cast<int>(i);
      top_wait = sites_[i].total_wait_ns;
    }
  }
  return top;
}

void LockSiteRegistry::Clear() {
  for (LockSiteStats& stats : sites_) {
    stats.acquisitions = 0;
    stats.total_wait_ns = 0;
    stats.total_hold_ns = 0;
    stats.contended = 0;
    stats.max_wait_ns = 0;
    stats.wait.Reset();
    stats.hold.Reset();
  }
  events_.clear();
  event_head_ = 0;
  event_wrapped_ = false;
}

}  // namespace obs
