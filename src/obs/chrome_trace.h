// Chrome trace-event exporter: dumps TraceBuffer spans in the JSON Object
// Format that chrome://tracing and Perfetto (ui.perfetto.dev) load natively.
// Each filesystem becomes one "process" row and each simulated CPU one
// "thread" track inside it, so per-CPU journals, allocator pools, and fault
// handling visualize as parallel timelines. Benches emit TRACE_<name>.json
// next to BENCH_<name>.json.
#ifndef SRC_OBS_CHROME_TRACE_H_
#define SRC_OBS_CHROME_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/obs/trace.h"

namespace obs {

// One trace track group: the spans a filesystem recorded during a bench.
struct NamedTrace {
  std::string name;           // filesystem (process row label)
  const TraceBuffer* trace;   // not owned
};

// Serializes the buffers' retained events as Chrome trace JSON:
//   {"displayTimeUnit":"ms","traceEvents":[ ... ]}
// with process_name/thread_name metadata and one complete ("X") event per
// span (ts/dur in microseconds, args carrying the span payload).
std::string ChromeTraceJson(const std::vector<NamedTrace>& traces);

// Writes ChromeTraceJson() to $BENCH_OUT_DIR/TRACE_<bench_name>.json
// (BENCH_OUT_DIR defaults to "."). Returns the path written.
common::Result<std::string> WriteChromeTrace(std::string_view bench_name,
                                             const std::vector<NamedTrace>& traces);

}  // namespace obs

#endif  // SRC_OBS_CHROME_TRACE_H_
