// Chrome trace-event exporter: dumps TraceBuffer spans in the JSON Object
// Format that chrome://tracing and Perfetto (ui.perfetto.dev) load natively.
// Each filesystem becomes one "process" row and each simulated CPU one
// "thread" track inside it, so per-CPU journals, allocator pools, and fault
// handling visualize as parallel timelines. A profiler adds per-lock tracks:
// one "<fs> locks" process whose threads are the named lock sites, with wait
// and hold phases rendered as separate spans. Benches emit TRACE_<name>.json
// next to BENCH_<name>.json; collapsed profiler stacks additionally emit
// FLAME_<name>.txt in the flamegraph.pl folded format.
#ifndef SRC_OBS_CHROME_TRACE_H_
#define SRC_OBS_CHROME_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/obs/trace.h"

namespace obs {

class Profiler;

// One trace track group: the spans a filesystem recorded during a bench.
struct NamedTrace {
  std::string name;           // filesystem (process row label)
  const TraceBuffer* trace;   // not owned
};

// One lock-track group: the retained lock events a profiler recorded while
// attached to a filesystem's contexts.
struct NamedLockTrack {
  std::string name;            // filesystem (process row label gets " locks")
  const Profiler* profiler;    // not owned
};

// Serializes the buffers' retained events as Chrome trace JSON:
//   {"displayTimeUnit":"ms","traceEvents":[ ... ]}
// with process_name/thread_name metadata and one complete ("X") event per
// span (ts/dur in microseconds, args carrying the span payload). Lock tracks
// render each acquire/release pair as a "wait" span (queueing) followed by a
// "hold" span on the owning site's thread row.
std::string ChromeTraceJson(const std::vector<NamedTrace>& traces,
                            const std::vector<NamedLockTrack>& lock_tracks = {});

// Writes ChromeTraceJson() to $BENCH_OUT_DIR/TRACE_<bench_name>.json
// (BENCH_OUT_DIR defaults to "."). Returns the path written.
common::Result<std::string> WriteChromeTrace(std::string_view bench_name,
                                             const std::vector<NamedTrace>& traces,
                                             const std::vector<NamedLockTrack>& lock_tracks = {});

// Flame-graph-compatible collapsed stacks: one "<fs>;<layer>;<layer> <ns>"
// line per distinct zone path, directly consumable by flamegraph.pl.
std::string CollapsedStacks(const std::vector<NamedLockTrack>& profilers);

// Writes CollapsedStacks() to $BENCH_OUT_DIR/FLAME_<bench_name>.txt. Returns
// the path written.
common::Result<std::string> WriteCollapsedStacks(std::string_view bench_name,
                                                 const std::vector<NamedLockTrack>& profilers);

}  // namespace obs

#endif  // SRC_OBS_CHROME_TRACE_H_
