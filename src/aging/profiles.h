// File-size profiles used to age filesystems (§5.1, §4).
//
// Agrawal et al. [7]: a mix of small (< 2 MiB) and large (>= 2 MiB) files
// where large files hold ~56% of used capacity. Wang et al. [47] ("HPC"):
// fewer, larger files with a heavier large-file tail; the paper notes this
// profile fragments ext4-DAX far worse (§4 "Using different aging profiles").
#ifndef SRC_AGING_PROFILES_H_
#define SRC_AGING_PROFILES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace aging {

struct SizeBucket {
  uint64_t bytes = 0;
  double weight = 0;  // relative frequency of files in this bucket
};

class Profile {
 public:
  Profile(std::string name, std::vector<SizeBucket> buckets, uint64_t seed);

  const std::string& name() const { return name_; }
  uint64_t SampleFileSize();

  // Fraction of capacity a large population would put into >= 2 MiB files.
  double LargeFileCapacityShare() const;

  static Profile Agrawal(uint64_t seed);
  static Profile WangHpc(uint64_t seed);

 private:
  std::string name_;
  std::vector<SizeBucket> buckets_;
  common::DiscreteSampler sampler_;
  common::Rng jitter_;
};

}  // namespace aging

#endif  // SRC_AGING_PROFILES_H_
