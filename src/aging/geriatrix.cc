#include "src/aging/geriatrix.h"

#include <algorithm>
#include <cstdio>

#include "src/common/units.h"

namespace aging {

using common::ExecContext;
using common::Result;
using common::Status;

std::string AgingProvenance(const AgingConfig& config) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "geriatrix:wm=%.4g,dirs=%u,fall=%d,rot=%u,upd=%.4g",
                config.write_multiplier, config.num_dirs, config.use_fallocate ? 1 : 0,
                config.rotate_cpus, config.update_fraction);
  return buf;
}

Geriatrix::Geriatrix(vfs::FileSystem* fs, Profile profile, AgingConfig config)
    : fs_(fs), profile_(std::move(profile)), config_(config), rng_(config.seed) {}

double Geriatrix::Utilization(common::ExecContext& ctx) {
  auto info = fs_->StatFs(ctx);
  return info.ok() ? info->utilization() : 0.0;
}

Status Geriatrix::CreateOneFile(ExecContext& ctx, uint64_t size) {
  // Spread allocation pressure across logical CPUs so per-CPU pools age
  // uniformly (real aging comes from many processes on many cores).
  ctx.cpu = static_cast<uint32_t>(rng_.NextBelow(config_.rotate_cpus));
  if (!dirs_created_) {
    for (uint32_t d = 0; d < config_.num_dirs; d++) {
      RETURN_IF_ERROR(fs_->Mkdir(ctx, "/age" + std::to_string(d)));
    }
    dirs_created_ = true;
  }
  const uint32_t dir = static_cast<uint32_t>(rng_.NextBelow(config_.num_dirs));
  const std::string path =
      "/age" + std::to_string(dir) + "/f" + std::to_string(next_file_id_++);
  auto fd = fs_->Open(ctx, path, vfs::OpenFlags::CreateExcl());
  if (!fd.ok()) {
    return fd.status();
  }
  Status status;
  if (config_.use_fallocate) {
    status = fs_->Fallocate(ctx, *fd, 0, size);
  } else {
    std::vector<uint8_t> buf(std::min<uint64_t>(size, 256 * common::kKiB), 0xab);
    uint64_t written = 0;
    while (written < size && status.ok()) {
      const uint64_t chunk = std::min<uint64_t>(buf.size(), size - written);
      auto n = fs_->Pwrite(ctx, *fd, buf.data(), chunk, written);
      status = n.ok() ? common::OkStatus() : n.status();
      written += chunk;
    }
  }
  (void)fs_->Close(ctx, *fd);
  if (!status.ok()) {
    (void)fs_->Unlink(ctx, path);
    return status;
  }
  live_files_.emplace_back(path, size);
  stats_.files_created++;
  stats_.bytes_allocated += size;
  return common::OkStatus();
}

Status Geriatrix::DeleteRandomFile(ExecContext& ctx) {
  ctx.cpu = static_cast<uint32_t>(rng_.NextBelow(config_.rotate_cpus));
  if (live_files_.empty()) {
    return Status(common::ErrorCode::kNotFound);
  }
  const size_t idx = rng_.NextBelow(live_files_.size());
  std::swap(live_files_[idx], live_files_.back());
  const std::string path = live_files_.back().first;
  live_files_.pop_back();
  stats_.files_deleted++;
  return fs_->Unlink(ctx, path);
}

Status Geriatrix::UpdateRandomFile(ExecContext& ctx) {
  if (live_files_.empty()) {
    return common::OkStatus();
  }
  ctx.cpu = static_cast<uint32_t>(rng_.NextBelow(config_.rotate_cpus));
  const auto& [path, size] = live_files_[rng_.NextBelow(live_files_.size())];
  if (size == 0) {
    return common::OkStatus();
  }
  auto fd = fs_->Open(ctx, path, vfs::OpenFlags{});
  if (!fd.ok()) {
    return fd.status();
  }
  const uint64_t len = std::min<uint64_t>(size, 64 * common::kKiB +
                                                    rng_.NextBelow(192 * common::kKiB));
  const uint64_t offset = size > len ? rng_.NextBelow(size - len) : 0;
  static thread_local std::vector<uint8_t> buf(256 * common::kKiB, 0x5e);
  auto n = fs_->Pwrite(ctx, *fd, buf.data(), len, offset);
  (void)fs_->Close(ctx, *fd);
  if (!n.ok()) {
    return n.status();
  }
  stats_.files_updated++;
  stats_.bytes_allocated += len;
  return common::OkStatus();
}

Result<AgingStats> Geriatrix::AgeToUtilization(ExecContext& ctx, double utilization,
                                               double churn_multiplier) {
  ASSIGN_OR_RETURN(const vfs::FreeSpaceInfo info, fs_->StatFs(ctx));
  const uint64_t capacity_bytes = info.total_blocks * common::kBlockSize;

  // Phase 1: fill.
  int enospc_strikes = 0;
  while (Utilization(ctx) < utilization) {
    const uint64_t size = profile_.SampleFileSize();
    const Status status = CreateOneFile(ctx, size);
    if (!status.ok()) {
      if (status.code() == common::ErrorCode::kNoSpace && ++enospc_strikes < 16) {
        RETURN_IF_ERROR(DeleteRandomFile(ctx));
        continue;
      }
      return status;
    }
    enospc_strikes = 0;
  }

  // Phase 2: churn at this utilization.
  const uint64_t churn_target =
      stats_.bytes_allocated +
      static_cast<uint64_t>(churn_multiplier * static_cast<double>(capacity_bytes));
  while (stats_.bytes_allocated < churn_target) {
    if (rng_.NextBool(config_.update_fraction)) {
      RETURN_IF_ERROR(UpdateRandomFile(ctx));
      continue;
    }
    if (Utilization(ctx) >= utilization && !live_files_.empty()) {
      RETURN_IF_ERROR(DeleteRandomFile(ctx));
      continue;
    }
    const uint64_t size = profile_.SampleFileSize();
    const Status status = CreateOneFile(ctx, size);
    if (!status.ok()) {
      if (status.code() == common::ErrorCode::kNoSpace) {
        RETURN_IF_ERROR(DeleteRandomFile(ctx));
        continue;
      }
      return status;
    }
  }

  stats_.live_files = live_files_.size();
  stats_.final_utilization = Utilization(ctx);
  return stats_;
}

Result<AgingStats> Geriatrix::Run(ExecContext& ctx) {
  return AgeToUtilization(ctx, config_.target_utilization, config_.write_multiplier);
}

}  // namespace aging
