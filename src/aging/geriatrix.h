// Geriatrix-style aging driver [26]: drives a filesystem to a target
// utilization, then churns (delete-one/create-one) until a configured
// multiple of the partition size has been written, reproducing the free-space
// fragmentation that years of use build up (§5.1: 165 TB over 500 GB ≈ 330x;
// scaled runs use smaller multipliers recorded in EXPERIMENTS.md).
#ifndef SRC_AGING_GERIATRIX_H_
#define SRC_AGING_GERIATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/aging/profiles.h"
#include "src/common/exec_context.h"
#include "src/common/rng.h"
#include "src/vfs/file_system.h"

namespace aging {

struct AgingConfig {
  double target_utilization = 0.75;
  // Churn until this multiple of the partition capacity has been allocated.
  double write_multiplier = 8.0;
  uint64_t seed = 42;
  uint32_t num_dirs = 32;
  bool use_fallocate = true;  // allocate without copying payloads (fast aging)
  // Aging ops rotate over this many logical CPUs so per-CPU pools age evenly.
  uint32_t rotate_cpus = 8;
  // Fraction of churn operations that overwrite a range of an existing file
  // (§2.3 ages with "creations, deletions and updates"; updates are what make
  // copy-on-write/log-structured filesystems relocate data).
  double update_fraction = 0.25;
};

// Canonical encoding of the AgingConfig knobs (beyond profile/seed/target
// utilization, which corpus keys carry explicitly) that influence the aged
// image bytes. Goes into snap::ImageKey::detail so a config tweak can never
// serve a stale corpus image.
std::string AgingProvenance(const AgingConfig& config);

struct AgingStats {
  uint64_t files_created = 0;
  uint64_t files_deleted = 0;
  uint64_t files_updated = 0;
  uint64_t bytes_allocated = 0;
  uint64_t live_files = 0;
  double final_utilization = 0;
};

class Geriatrix {
 public:
  Geriatrix(vfs::FileSystem* fs, Profile profile, AgingConfig config);

  // Fill to target utilization, then churn. Returns aggregate stats.
  common::Result<AgingStats> Run(common::ExecContext& ctx);

  // Incremental API for utilization sweeps: fills/churns until `utilization`,
  // keeping state so callers can step 10% -> 20% -> ... (Fig 1, Fig 3).
  common::Result<AgingStats> AgeToUtilization(common::ExecContext& ctx, double utilization,
                                              double churn_multiplier);

  const std::vector<std::pair<std::string, uint64_t>>& live_files() const {
    return live_files_;
  }

 private:
  common::Status CreateOneFile(common::ExecContext& ctx, uint64_t size);
  common::Status DeleteRandomFile(common::ExecContext& ctx);
  common::Status UpdateRandomFile(common::ExecContext& ctx);
  // Current utilization via StatFs; 0.0 if the probe fails.
  double Utilization(common::ExecContext& ctx);

  vfs::FileSystem* fs_;
  Profile profile_;
  AgingConfig config_;
  common::Rng rng_;
  uint64_t next_file_id_ = 0;
  bool dirs_created_ = false;
  std::vector<std::pair<std::string, uint64_t>> live_files_;  // path, size
  AgingStats stats_;
};

}  // namespace aging

#endif  // SRC_AGING_GERIATRIX_H_
