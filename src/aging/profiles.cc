#include "src/aging/profiles.h"

#include "src/common/units.h"

namespace aging {

using common::kKiB;
using common::kMiB;

namespace {
std::vector<double> Weights(const std::vector<SizeBucket>& buckets) {
  std::vector<double> weights;
  weights.reserve(buckets.size());
  for (const SizeBucket& bucket : buckets) {
    weights.push_back(bucket.weight);
  }
  return weights;
}
}  // namespace

Profile::Profile(std::string name, std::vector<SizeBucket> buckets, uint64_t seed)
    : name_(std::move(name)),
      buckets_(std::move(buckets)),
      sampler_(Weights(buckets_), seed),
      jitter_(seed ^ 0x9e3779b97f4a7c15ULL) {}

uint64_t Profile::SampleFileSize() {
  const SizeBucket& bucket = buckets_[sampler_.Next()];
  // Jitter within the bucket (0.75x .. 1.5x) so sizes are not quantized.
  const double factor = 0.75 + jitter_.NextDouble() * 0.75;
  uint64_t size = static_cast<uint64_t>(static_cast<double>(bucket.bytes) * factor);
  return size < 256 ? 256 : size;
}

double Profile::LargeFileCapacityShare() const {
  double large = 0;
  double total = 0;
  for (const SizeBucket& bucket : buckets_) {
    const double capacity = bucket.weight * static_cast<double>(bucket.bytes);
    total += capacity;
    if (bucket.bytes >= 2 * kMiB) {
      large += capacity;
    }
  }
  return total == 0 ? 0 : large / total;
}

Profile Profile::Agrawal(uint64_t seed) {
  // Frequencies skew heavily small; byte-weighted, >= 2 MiB files carry ~56%
  // of capacity (paper §5.1).
  return Profile("agrawal",
                 {
                     {1 * kKiB, 260},
                     {4 * kKiB, 300},
                     {16 * kKiB, 220},
                     {64 * kKiB, 120},
                     {256 * kKiB, 55},
                     {1 * kMiB, 22},
                     {3 * kMiB, 7.0},
                     {8 * kMiB, 3.2},
                     {24 * kMiB, 1.1},
                 },
                 seed);
}

Profile Profile::WangHpc(uint64_t seed) {
  // HPC checkpoint-style: medium/large files dominate both count and bytes.
  return Profile("wang-hpc",
                 {
                     {64 * kKiB, 80},
                     {512 * kKiB, 140},
                     {1536 * kKiB, 180},
                     {4 * kMiB, 90},
                     {16 * kMiB, 28},
                     {64 * kMiB, 6},
                 },
                 seed);
}

}  // namespace aging
