#include "src/fs/ext4dax/ext4dax.h"

#include <algorithm>

#include "src/common/prof_zone.h"
#include "src/common/units.h"
#include "src/obs/trace.h"
#include "src/vfs/op_batch.h"

namespace ext4dax {

using common::ExecContext;
using common::kBlockSize;
using common::Result;
using common::Status;
using fscore::AllocIntent;
using fscore::Extent;
using fscore::Inode;

namespace {
// DRAM buffered-metadata update (journaled later at commit).
constexpr uint64_t kBufferedMetaNs = 25;
// mballoc search work per request.
constexpr uint64_t kAllocSearchNs = 150;
// Fixed JBD2 commit cost: descriptor/commit block handling and the
// kjournald handoff + ordering waits that dominate small commits.
constexpr uint64_t kJbd2CommitOverheadNs = 12000;
}  // namespace

Ext4Dax::Ext4Dax(pmem::PmemDevice* device, Ext4Options options)
    : GenericFs(device, options.base), eopts_(options) {}

void Ext4Dax::InitAllocator(uint64_t data_start, uint64_t nblocks) {
  free_ = fscore::FreeSpaceMap();
  free_.Release(data_start, nblocks);
  goals_.clear();
  dirty_meta_blocks_.clear();
  journal_cursor_ = 0;
}

void Ext4Dax::RebuildAllocator(ExecContext& ctx, fscore::FreeSpaceMap&& free_map) {
  (void)ctx;
  free_ = std::move(free_map);
  goals_.clear();
  dirty_meta_blocks_.clear();
  journal_cursor_ = 0;
}

Result<std::vector<Extent>> Ext4Dax::AllocBlocks(ExecContext& ctx, Inode& inode,
                                                 uint64_t nblocks, AllocIntent intent) {

  ctx.counters.alloc_requests++;
  ctx.clock.Advance(kAllocSearchNs);
  std::vector<Extent> result;
  uint64_t remaining = nblocks;
  uint64_t goal = 0;
  if (eopts_.policy == AllocPolicy::kGoalFirstFit) {
    auto it = goals_.find(inode.ino);
    if (it != goals_.end()) {
      goal = it->second;
    }
  }
  // ext4's mballoc normalizes large requests: if the locality-chosen run can
  // host a 2 MiB-aligned start it is taken, but alignment is never hunted for
  // (§2.5: ext4-DAX leaves most available aligned extents unused when aged).
  const bool prefer_aligned = eopts_.policy == AllocPolicy::kGoalFirstFit &&
                              nblocks >= common::kBlocksPerHugepage &&
                              intent == AllocIntent::kFileData;
  while (remaining > 0) {
    std::optional<Extent> ext;
    if (eopts_.policy == AllocPolicy::kAlignedHunting &&
        remaining >= common::kBlocksPerHugepage && intent == AllocIntent::kFileData) {
      // Hunt the whole free map for an aligned extent; the search cost grows
      // with fragmentation — the §4 failure mode of the hugepage-aware ext4.
      ctx.clock.Advance(20 * free_.runs().size());
      ext = free_.AllocAligned(common::kBlocksPerHugepage);
      if (!ext.has_value()) {
        ext = free_.AllocFirstFit(remaining, goal);
      }
    } else if (eopts_.policy == AllocPolicy::kBySizeBestFit) {
      ext = free_.AllocBestFit(remaining);
    } else if (prefer_aligned && remaining >= common::kBlocksPerHugepage) {
      ext = free_.AllocFirstFitPreferAligned(remaining, goal);
    } else {
      ext = free_.AllocFirstFit(remaining, goal);
    }
    if (!ext.has_value()) {
      // No single run fits: take the largest available and continue.
      const uint64_t largest = free_.LargestRun();
      if (largest == 0) {
        FreeBlocks(ctx, result);
        return common::ErrorCode::kNoSpace;
      }
      if (prefer_aligned && largest >= common::kBlocksPerHugepage) {
        ext = free_.AllocFirstFitPreferAligned(largest, goal);
      } else {
        ext = eopts_.policy == AllocPolicy::kBySizeBestFit
                  ? free_.AllocBestFit(largest)
                  : free_.AllocFirstFit(largest, goal);
      }
    }
    result.push_back(*ext);
    remaining -= ext->num_blocks;
    goal = ext->end();
    if (ext->IsAligned()) {
      ctx.counters.aligned_allocs++;
    }
  }
  goals_[inode.ino] = goal;
  return result;
}

void Ext4Dax::FreeBlocks(ExecContext& ctx, const std::vector<Extent>& extents) {
  ctx.clock.Advance(kAllocSearchNs / 2);
  for (const Extent& ext : extents) {
    free_.Release(ext.phys_block, ext.num_blocks);
  }
}

void Ext4Dax::TxMetaWrite(ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                          const void* data, uint64_t len) {
  (void)owner;
  // Buffered metadata: the real bytes land in place (uncharged stand-in for
  // the page-cache buffer + later checkpoint); the block joins the running
  // JBD2 transaction and is charged at commit.
  device_->StoreUncharged(pm_offset, data, len);
  const uint64_t first = pm_offset / kBlockSize;
  const uint64_t last = (pm_offset + len - 1) / kBlockSize;
  for (uint64_t b = first; b <= last; b++) {
    dirty_meta_blocks_.insert(b);
  }
  ctx.clock.Advance(kBufferedMetaNs);
}

void Ext4Dax::Jbd2Commit(ExecContext& ctx) {
  if (dirty_meta_blocks_.empty()) {
    return;
  }
  obs::ScopedSpan span(ctx, obs::SpanCat::kJournalCommit,
                       dirty_meta_blocks_.size() * kBlockSize);
  common::ProfileZone zone(ctx, common::ProfLayer::kJournal);
  // Stop-the-world: every concurrent fsync serializes on the journal.
  common::SimMutex::Guard guard(jbd2_lock_, ctx);
  ctx.clock.Advance(kJbd2CommitOverheadNs);
  for (uint64_t block : dirty_meta_blocks_) {
    const uint64_t journal_off =
        (journal_start_block_ + journal_cursor_ % options_.journal_blocks) * kBlockSize;
    device_->NtStore(ctx, journal_off, device_->raw_span(block * kBlockSize, kBlockSize),
                     kBlockSize);
    journal_cursor_++;
    ctx.counters.journal_bytes += kBlockSize;
  }
  // Descriptor + commit records.
  const uint64_t commit_off =
      (journal_start_block_ + journal_cursor_ % options_.journal_blocks) * kBlockSize;
  uint64_t commit_record[8] = {0xc03b3998ull};
  device_->NtStore(ctx, commit_off, commit_record, sizeof(commit_record));
  journal_cursor_++;
  device_->Fence(ctx);
  dirty_meta_blocks_.clear();
}

Status Ext4Dax::FsyncImpl(ExecContext& ctx, Inode& inode) {
  (void)inode;
  Jbd2Commit(ctx);
  return common::OkStatus();
}

void Ext4Dax::ExecuteBatch(ExecContext& ctx, const vfs::OpBatch& batch,
                           std::vector<vfs::OpResult>& results) {
  ExecuteBatchNative(ctx, batch, results);
}

vfs::FreeSpaceInfo Ext4Dax::FreeSpace() {
  vfs::FreeSpaceInfo info;
  info.total_blocks = data_blocks_;
  info.free_blocks = free_.free_blocks();
  info.free_aligned_extents = free_.CountAlignedFreeRegions();
  info.largest_free_extent_blocks = free_.LargestRun();
  return info;
}

void Ext4Dax::SampleGauges(obs::GaugeSample& out) {
  GenericFs::SampleGauges(out);
  std::lock_guard<fscore::DomainMutex> guard(dram_mu_);
  SetRunHistogramGauges(free_.RunHistogram(), out);
  out.Set("journal_dirty_blocks", static_cast<double>(dirty_meta_blocks_.size()));
  out.Set("journal_cursor_blocks", static_cast<double>(journal_cursor_));
}

}  // namespace ext4dax
