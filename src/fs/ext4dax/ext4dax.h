// ext4-DAX model: a mature extent filesystem whose allocator optimizes for
// contiguity and locality (per-inode goal, first-fit) with no preference for
// 2 MiB-aligned extents, and whose crash consistency is a JBD2-style global
// journal committed stop-the-world on fsync (§2.6, §5.6).
//
// Metadata consistency only (relaxed guarantees). Pages are zeroed in the
// page-fault handler, not at allocation (§5.4: ext4-DAX's faults are more
// expensive than NOVA's for PmemKV).
#ifndef SRC_FS_EXT4DAX_EXT4DAX_H_
#define SRC_FS_EXT4DAX_EXT4DAX_H_

#include <set>
#include <unordered_map>

#include "src/fs/fscore/generic_fs.h"

namespace ext4dax {

enum class AllocPolicy {
  kGoalFirstFit,    // ext4 mballoc-style: locality goal, first fit
  kBySizeBestFit,   // xfs-style: by-size best fit, alignment-oblivious
  // §4 "Thoughts on adding hugepage-friendliness to existing file systems":
  // the authors' modified ext4-DAX that hunts for aligned extents. Gets
  // hugepages on a clean FS but spends allocator time searching when aged.
  kAlignedHunting,
};

struct Ext4Options {
  fscore::FsOptions base{
      .journal_blocks = 2048,
      .num_cpus = 1,
      .mode = vfs::GuaranteeMode::kRelaxed,
  };
  AllocPolicy policy = AllocPolicy::kGoalFirstFit;
};

class Ext4Dax : public fscore::GenericFs {
 public:
  Ext4Dax(pmem::PmemDevice* device, Ext4Options options);

  std::string_view Name() const override { return "ext4-dax"; }
  vfs::FreeSpaceInfo FreeSpace() override;

  // Adds the free-run-length histogram and JBD2 occupancy (dirty metadata
  // blocks awaiting commit, ring cursor) to the base gauges. Inherited by
  // xfs-DAX and SplitFS, whose allocator/journal state lives here too.
  void SampleGauges(obs::GaugeSample& out) override;

  // Native batched execution (inherited by xfs-DAX and SplitFS): the fscore
  // engine. JBD2 group commit across a batch falls out of the existing dirty-
  // set semantics — the first fsync in a batch commits every block the batch
  // dirtied, and later fsyncs find the set empty and charge nothing.
  void ExecuteBatch(common::ExecContext& ctx, const vfs::OpBatch& batch,
                    std::vector<vfs::OpResult>& results) override;

 protected:
  common::Result<std::vector<fscore::Extent>> AllocBlocks(common::ExecContext& ctx,
                                                          fscore::Inode& inode,
                                                          uint64_t nblocks,
                                                          fscore::AllocIntent intent) override;
  void FreeBlocks(common::ExecContext& ctx,
                  const std::vector<fscore::Extent>& extents) override;

  // Metadata updates are buffered (in DRAM page cache in the real system;
  // here written in place uncharged) and journaled as whole blocks at the
  // next JBD2 commit.
  void TxMetaWrite(common::ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                   const void* data, uint64_t len) override;

  // JBD2 commit: global lock, whole dirty blocks copied into the journal.
  common::Status FsyncImpl(common::ExecContext& ctx, fscore::Inode& inode) override;

  bool ZeroOnFault() const override { return true; }

  void InitAllocator(uint64_t data_start, uint64_t nblocks) override;
  void RebuildAllocator(common::ExecContext& ctx, fscore::FreeSpaceMap&& free_map) override;

  // Commits the running JBD2 transaction (shared with subclasses).
  void Jbd2Commit(common::ExecContext& ctx);

  Ext4Options eopts_;
  fscore::FreeSpaceMap free_;
  std::unordered_map<vfs::InodeNum, uint64_t> goals_;  // per-inode allocation goal
  std::set<uint64_t> dirty_meta_blocks_;
  common::SimMutex jbd2_lock_{"ext4.jbd2"};
  uint64_t journal_cursor_ = 0;  // ring position, blocks
};

}  // namespace ext4dax

#endif  // SRC_FS_EXT4DAX_EXT4DAX_H_
