// xfs-DAX model: extent allocator chooses by size and completely disregards
// 2 MiB alignment (paper footnote 1: xfs-DAX cannot get hugepages even on a
// clean filesystem). The data area is phase-shifted by the allocation-group
// header blocks, so even perfectly contiguous large extents start misaligned.
#ifndef SRC_FS_XFSDAX_XFSDAX_H_
#define SRC_FS_XFSDAX_XFSDAX_H_

#include "src/fs/ext4dax/ext4dax.h"

namespace xfsdax {

class XfsDax : public ext4dax::Ext4Dax {
 public:
  XfsDax(pmem::PmemDevice* device, ext4dax::Ext4Options options = {})
      : Ext4Dax(device, Configure(std::move(options))) {}

  std::string_view Name() const override { return "xfs-dax"; }

 private:
  static ext4dax::Ext4Options Configure(ext4dax::Ext4Options options) {
    options.policy = ext4dax::AllocPolicy::kBySizeBestFit;
    // AG headers occupy the first blocks of each allocation group; all data
    // shifts off hugepage alignment.
    options.base.data_phase_blocks = 3;
    return options;
  }
};

}  // namespace xfsdax

#endif  // SRC_FS_XFSDAX_XFSDAX_H_
