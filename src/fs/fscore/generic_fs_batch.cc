// ExecuteBatchNative: the host-speed batched engine shared by filesystems
// that opt into native batching (WineFS, the ext4-DAX family).
//
// The engine runs the hot metadata kinds — stat, open (plain), close, pread,
// fsync — through a per-batch arena allocator and an SoA path-resolution
// cache, and hands every other kind to FileSystem::DispatchScalarOp. The
// contract is absolute: every simulated charge (clock advances, counters,
// SimMutex acquisitions, device traffic) is issued exactly as the scalar
// virtuals would issue it, in the same order. What the fast path removes is
// HOST work only: the per-op recursive-mutex round trip, the per-component
// std::string splitting in Resolve, and the repeated per-level dirent-map
// walks for paths the batch has already resolved.
//
// Cache coherence rules:
//   - The path cache and fd cache live for one ExecuteBatchNative call.
//   - Any scalar-dispatched namespace mutation (open-create/trunc, unlink,
//     rename, mkdir, rmdir) flushes both caches — inode pointers may have
//     died and dirent sets changed.
//   - Data-plane scalar ops (pwrite/append/ftruncate/fallocate) do not flush:
//     Inode objects are owned by unique_ptr (stable addresses) and only the
//     namespace ops above erase them.
//   - A failed resolve is never cached, so retries re-charge exactly like the
//     scalar loop's partial-resolve error paths.
#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/fs/fscore/generic_fs.h"
#include "src/obs/metrics.h"
#include "src/vfs/op_batch.h"

namespace fscore {

namespace {

using common::ErrorCode;
using common::ExecContext;
using common::kBlockSize;
using common::Status;

// Per-batch bump allocator: backs the path-component arrays and resolver
// chains so the hot loop performs no per-op heap traffic. Blocks are never
// recycled mid-batch, so every handed-out pointer stays valid until the
// engine returns.
class BumpArena {
 public:
  template <typename T>
  T* AllocArray(size_t n) {
    const size_t bytes = n * sizeof(T);
    const size_t align = alignof(T);
    size_t offset = (used_ + align - 1) & ~(align - 1);
    if (cur_ == nullptr || offset + bytes > cap_) {
      cap_ = bytes > kBlockBytes ? bytes : kBlockBytes;
      blocks_.push_back(std::make_unique<char[]>(cap_));
      cur_ = blocks_.back().get();
      offset = 0;
    }
    used_ = offset + bytes;
    return reinterpret_cast<T*>(cur_ + offset);
  }

 private:
  static constexpr size_t kBlockBytes = 64 * 1024;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cur_ = nullptr;
  size_t used_ = 0;
  size_t cap_ = 0;
};

// Sampled path hash for the resolution cache: deep-tree paths run hundreds of
// bytes and a full byte-wise hash per lookup would dominate the cache-hit
// cost. Mixing the length with the first, middle, and last words is enough to
// spread real path populations; a rare collision only costs the bucket's full
// string_view equality compare.
struct SampledPathHash {
  size_t operator()(std::string_view s) const {
    uint64_t h = 0x9e3779b97f4a7c15ull ^ s.size();
    const auto mix = [&h](uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    if (s.size() >= 8) {
      uint64_t head;
      uint64_t middle;
      uint64_t tail;
      std::memcpy(&head, s.data(), 8);
      std::memcpy(&middle, s.data() + s.size() / 2 - 4, 8);
      std::memcpy(&tail, s.data() + s.size() - 8, 8);
      mix(head);
      mix(middle);
      mix(tail);
    } else {
      for (char c : s) {
        mix(static_cast<uint8_t>(c));
      }
    }
    return h;
  }
};

}  // namespace

void GenericFs::ExecuteBatchNative(ExecContext& ctx, const vfs::OpBatch& batch,
                                   std::vector<vfs::OpResult>& results) {
  results.clear();
  results.resize(batch.size());
  // One host-lock round trip for the whole batch (the stripe is recursive, so
  // scalar-dispatched ops re-entering the public virtuals still work; those
  // re-lock the SAME stripe since they run under the same ctx.cpu).
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));

  BumpArena arena;

  // SoA path-resolution cache: parallel columns indexed by a string_view ->
  // row map. Each row memoizes the resolve's full charge footprint — the
  // total clock advance (path-component cost plus every ChargeDirLookup along
  // the chain) and the sparse counter deltas those lookups issued. Replaying
  // the memoized charges is exact because ChargeDirLookup is contractually a
  // pure function of the directory's state (generic_fs.h), and every op that
  // can change that state flushes this cache.
  struct PathCache {
    std::vector<Inode*> node;         // resolved leaf inode (never null)
    std::vector<uint64_t> charge_ns;  // total clock advance of the resolve
    std::vector<uint32_t> delta_begin;  // offset into delta_field/delta_value
    std::vector<uint32_t> delta_count;
    std::vector<uint8_t> delta_field;   // kCounterFields index
    std::vector<uint64_t> delta_value;
    std::unordered_map<std::string_view, uint32_t, SampledPathHash> index;

    void Clear() {
      node.clear();
      charge_ns.clear();
      delta_begin.clear();
      delta_count.clear();
      delta_field.clear();
      delta_value.clear();
      index.clear();
    }
  } cache;

  // fd -> Inode* shortcut, bypassing the fds_ + inodes_ double lookup for
  // descriptors the batch touches repeatedly.
  std::vector<Inode*> fd_cache(fds_.size(), nullptr);

  const auto flush_caches = [&] {
    cache.Clear();
    std::fill(fd_cache.begin(), fd_cache.end(), nullptr);
  };

  // Charge-exact replica of SplitPath + Resolve(want_parent=true), reading
  // components as string_views (no per-component strings) and memoizing
  // successful resolves. On a cache hit, replays the resolve's memoized
  // charges (one clock advance + sparse counter deltas) without touching any
  // dirent map or virtual dispatch.
  const auto resolve_fast = [&](const std::string& path, Status* status) -> Inode* {
    if (auto hit = cache.index.find(std::string_view(path)); hit != cache.index.end()) {
      const uint32_t row = hit->second;
      ctx.clock.Advance(cache.charge_ns[row]);
      const uint32_t begin = cache.delta_begin[row];
      for (uint32_t i = 0; i < cache.delta_count[row]; i++) {
        ctx.counters.*common::kCounterFields[cache.delta_field[begin + i]].member +=
            cache.delta_value[begin + i];
      }
      *status = common::OkStatus();
      return cache.node[row];
    }

    // SplitPath replica: validation errors fire BEFORE any clock advance,
    // exactly like the scalar helper.
    if (path.empty() || path[0] != '/') {
      *status = Status(ErrorCode::kInvalidArgument);
      return nullptr;
    }
    std::string_view* parts = arena.AllocArray<std::string_view>(path.size() / 2 + 1);
    size_t nparts = 0;
    size_t start = 1;
    while (start < path.size()) {
      size_t end = path.find('/', start);
      if (end == std::string::npos) {
        end = path.size();
      }
      if (end > start) {
        if (end - start > kMaxNameLen) {
          *status = Status(ErrorCode::kInvalidArgument);
          return nullptr;
        }
        parts[nparts++] = std::string_view(path).substr(start, end - start);
      }
      start = end + 1;
    }

    // Snapshot clock and counters: on success, everything charged from here
    // to the leaf (the path-component advance plus every ChargeDirLookup) is
    // memoized for this row and replayed verbatim on later hits.
    const uint64_t charge_start_ns = ctx.clock.NowNs();
    const common::PerfCounters counters_before = ctx.counters;

    ctx.clock.Advance(device_->cost().vfs_path_component_ns * (nparts + 1));
    if (nparts == 0) {
      *status = Status(ErrorCode::kInvalidArgument);  // cannot take parent of root
      return nullptr;
    }

    Inode* current = GetInode(vfs::kRootIno);
    for (size_t i = 0; i + 1 < nparts; i++) {
      ChargeDirLookup(ctx, *current);
      auto it = current->dirents.find(parts[i]);
      if (it == current->dirents.end()) {
        *status = Status(ErrorCode::kNotFound);
        return nullptr;
      }
      if (!it->second.is_dir) {
        *status = Status(ErrorCode::kNotDir);
        return nullptr;
      }
      current = GetInode(it->second.ino);
      if (current == nullptr) {
        *status = Status(ErrorCode::kCorrupt);
        return nullptr;
      }
    }
    ChargeDirLookup(ctx, *current);  // the parent dir, charged before the leaf find
    auto it = current->dirents.find(parts[nparts - 1]);
    Inode* node = it == current->dirents.end() ? nullptr : GetInode(it->second.ino);
    if (node == nullptr) {
      *status = Status(ErrorCode::kNotFound);
      return nullptr;
    }

    const uint32_t row = static_cast<uint32_t>(cache.node.size());
    cache.node.push_back(node);
    cache.charge_ns.push_back(ctx.clock.NowNs() - charge_start_ns);
    cache.delta_begin.push_back(static_cast<uint32_t>(cache.delta_field.size()));
    uint32_t ndeltas = 0;
    for (size_t f = 0; f < common::kNumCounterFields; f++) {
      const uint64_t delta =
          ctx.counters.*common::kCounterFields[f].member - counters_before.*common::kCounterFields[f].member;
      if (delta != 0) {
        cache.delta_field.push_back(static_cast<uint8_t>(f));
        cache.delta_value.push_back(delta);
        ndeltas++;
      }
    }
    cache.delta_count.push_back(ndeltas);
    cache.index.emplace(std::string_view(path), row);
    *status = common::OkStatus();
    return node;
  };

  const auto inode_by_fd = [&](int fd) -> Inode* {
    if (fd >= 0 && static_cast<size_t>(fd) < fd_cache.size() && fd_cache[fd] != nullptr) {
      return fd_cache[fd];
    }
    Inode* inode = GetInodeByFd(fd);
    if (inode != nullptr) {
      fd_cache[fd] = inode;
    }
    return inode;
  };

  const std::vector<vfs::Op>& ops = batch.ops();
  for (size_t i = 0; i < ops.size(); i++) {
    const vfs::Op& op = ops[i];
    vfs::OpResult& out = results[i];
    switch (op.kind) {
      case vfs::OpKind::kStat: {
        if (op.path == "/") {
          // Root stat resolves want_parent=false; rare — keep the scalar path.
          DispatchScalarOp(ctx, batch, i, results);
          break;
        }
        ChargeSyscall(ctx);
        obs::OpScope op_scope(ctx, Name(), "stat");
        Status status;
        Inode* node = resolve_fast(op.path, &status);
        if (node == nullptr) {
          out.status = status;
          break;
        }
        out.stat.ino = node->ino;
        out.stat.size = node->size;
        out.stat.blocks = node->extents.MappedBlocks();
        out.stat.nlink = node->nlink;
        out.stat.is_dir = node->is_dir;
        break;
      }

      case vfs::OpKind::kOpen: {
        if (op.flags.create() || op.flags.truncate()) {
          // Namespace-mutating open: scalar path, then drop stale caches.
          DispatchScalarOp(ctx, batch, i, results);
          flush_caches();
          break;
        }
        ChargeSyscall(ctx);
        obs::OpScope op_scope(ctx, Name(), "open");
        Status status;
        Inode* node = resolve_fast(op.path, &status);
        if (node == nullptr) {
          out.status = status;
          break;
        }
        if (node->is_dir) {
          out.status = Status(ErrorCode::kIsDir);
          break;
        }
        bool placed = false;
        {
          std::lock_guard<common::SpinMutex> table_guard(table_mu_);
          for (size_t fd = 0; fd < fds_.size(); fd++) {
            if (!fds_[fd].in_use) {
              fds_[fd] = FdEntry{node->ino, op.flags.write(), true};
              fd_cache[fd] = node;
              out.value = fd;
              placed = true;
              break;
            }
          }
        }
        if (!placed) {
          out.status = Status(ErrorCode::kNoSpace);
        }
        break;
      }

      case vfs::OpKind::kClose: {
        auto resolved = vfs::ResolveBatchFd(batch, i, results);
        if (!resolved.ok()) {
          out.status = resolved.status();
          break;
        }
        const int fd = *resolved;
        ChargeSyscall(ctx);
        obs::OpScope op_scope(ctx, Name(), "close");
        std::lock_guard<common::SpinMutex> table_guard(table_mu_);
        if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].in_use) {
          out.status = Status(ErrorCode::kBadFd);
          break;
        }
        fds_[fd] = FdEntry{};
        fd_cache[fd] = nullptr;
        break;
      }

      case vfs::OpKind::kPread: {
        auto resolved = vfs::ResolveBatchFd(batch, i, results);
        if (!resolved.ok()) {
          out.status = resolved.status();
          break;
        }
        ChargeSyscall(ctx);
        obs::OpScope op_scope(ctx, Name(), "pread");
        Inode* inode = inode_by_fd(*resolved);
        if (inode == nullptr) {
          out.status = Status(ErrorCode::kBadFd);
          break;
        }
        if (op.offset >= inode->size) {
          out.value = 0;
          break;
        }
        const uint64_t len = std::min(op.len, inode->size - op.offset);
        uint8_t* cursor = static_cast<uint8_t*>(op.dst);
        uint64_t remaining = len;
        uint64_t pos = op.offset;
        while (remaining > 0) {
          const uint64_t block = pos / kBlockSize;
          const uint64_t in_block = pos % kBlockSize;
          auto mapping = inode->extents.Lookup(block);
          uint64_t chunk;
          if (mapping.has_value()) {
            const uint64_t run_bytes = mapping->contiguous_blocks * kBlockSize - in_block;
            chunk = std::min(remaining, run_bytes);
            const Status load =
                device_->Load(ctx, mapping->phys_block * kBlockSize + in_block, cursor, chunk);
            if (!load.ok()) {
              out.status = load;
              out.value = pos - op.offset;  // POSIX short read
              break;
            }
          } else {
            chunk = std::min(remaining, kBlockSize - in_block);
            std::memset(cursor, 0, chunk);  // hole reads as zeros
          }
          cursor += chunk;
          pos += chunk;
          remaining -= chunk;
        }
        if (remaining == 0) {
          out.value = len;
        }
        break;
      }

      case vfs::OpKind::kFsync: {
        auto resolved = vfs::ResolveBatchFd(batch, i, results);
        if (!resolved.ok()) {
          out.status = resolved.status();
          break;
        }
        ChargeSyscall(ctx);
        obs::OpScope op_scope(ctx, Name(), "fsync");
        Inode* inode = inode_by_fd(*resolved);
        if (inode == nullptr) {
          out.status = Status(ErrorCode::kBadFd);
          break;
        }
        ctx.counters.fsync_count++;
        common::SimMutex::Guard file_guard(inode_locks_.LockFor(inode->ino), ctx);
        const Status fsync_status = FsyncImpl(ctx, *inode);
        if (!fsync_status.ok()) {
          out.status = fsync_status;  // scalar returns before the Fence
          break;
        }
        device_->Fence(ctx);
        break;
      }

      case vfs::OpKind::kUnlink:
      case vfs::OpKind::kRename:
      case vfs::OpKind::kMkdir:
      case vfs::OpKind::kRmdir:
        DispatchScalarOp(ctx, batch, i, results);
        flush_caches();
        break;

      default:
        // Data-plane and remaining namespace-read ops: scalar virtuals, no
        // cache impact (inode addresses are stable outside the erasing ops).
        DispatchScalarOp(ctx, batch, i, results);
        break;
    }
  }
}

}  // namespace fscore
