#include "src/fs/fscore/extent.h"

#include <algorithm>
#include <cassert>

namespace fscore {

void ExtentMap::Insert(uint64_t logical_block, uint64_t phys_block, uint64_t len) {
  assert(len > 0);
  // Merge with predecessor if logically and physically contiguous.
  auto it = map_.lower_bound(logical_block);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len == logical_block &&
        prev->second.phys + prev->second.len == phys_block) {
      prev->second.len += len;
      // Try merging with the successor too.
      if (it != map_.end() && prev->first + prev->second.len == it->first &&
          prev->second.phys + prev->second.len == it->second.phys) {
        prev->second.len += it->second.len;
        map_.erase(it);
      }
      return;
    }
  }
  if (it != map_.end() && logical_block + len == it->first &&
      phys_block + len == it->second.phys) {
    const Run merged{phys_block, len + it->second.len};
    map_.erase(it);
    map_[logical_block] = merged;
    return;
  }
  map_[logical_block] = Run{phys_block, len};
}

std::vector<Extent> ExtentMap::Remove(uint64_t logical_block, uint64_t len) {
  std::vector<Extent> freed;
  const uint64_t range_end = logical_block + len;
  auto it = map_.lower_bound(logical_block);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > logical_block) {
      it = prev;
    }
  }
  while (it != map_.end() && it->first < range_end) {
    const uint64_t run_start = it->first;
    const uint64_t run_end = run_start + it->second.len;
    const uint64_t phys = it->second.phys;
    const uint64_t cut_start = std::max(run_start, logical_block);
    const uint64_t cut_end = std::min(run_end, range_end);
    freed.push_back(Extent{phys + (cut_start - run_start), cut_end - cut_start});
    it = map_.erase(it);
    if (run_start < cut_start) {
      map_[run_start] = Run{phys, cut_start - run_start};
    }
    if (cut_end < run_end) {
      map_[cut_end] = Run{phys + (cut_end - run_start), run_end - cut_end};
      break;
    }
  }
  return freed;
}

std::optional<ExtentMap::Mapping> ExtentMap::Lookup(uint64_t logical_block) const {
  auto it = map_.upper_bound(logical_block);
  if (it == map_.begin()) {
    return std::nullopt;
  }
  --it;
  const uint64_t run_start = it->first;
  if (logical_block >= run_start + it->second.len) {
    return std::nullopt;
  }
  const uint64_t delta = logical_block - run_start;
  return Mapping{it->second.phys + delta, it->second.len - delta};
}

std::vector<std::pair<uint64_t, Extent>> ExtentMap::Entries() const {
  std::vector<std::pair<uint64_t, Extent>> out;
  out.reserve(map_.size());
  for (const auto& [logical, run] : map_) {
    out.emplace_back(logical, Extent{run.phys, run.len});
  }
  return out;
}

uint64_t ExtentMap::MappedBlocks() const {
  uint64_t total = 0;
  for (const auto& [logical, run] : map_) {
    total += run.len;
  }
  return total;
}

}  // namespace fscore
