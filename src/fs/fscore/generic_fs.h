// GenericFs: the shared filesystem chassis.
//
// Implements the POSIX surface (namespace, fds, data path, mmap faults,
// mount/recovery scan) once, with virtual hooks for the decisions the paper
// contrasts across filesystems:
//   - block allocation policy (alignment-aware vs contiguity-first vs ...)
//   - metadata consistency (per-CPU undo journal, JBD2, per-inode log, ...)
//   - data atomicity (in-place, CoW, data journal, hybrid)
//   - fault policy (hugepage-allocating faults, zero-on-fault vs zero-on-alloc)
//   - directory access cost (DRAM index vs linear PM scan)
//
// All metadata lives on PM in the formats of pm_format.h and is rebuilt by a
// mount-time scan, so recovery and crash tests operate on real bytes.
#ifndef SRC_FS_FSCORE_GENERIC_FS_H_
#define SRC_FS_FSCORE_GENERIC_FS_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/fs/fscore/extent.h"
#include "src/fs/fscore/free_space_map.h"
#include "src/fs/fscore/pm_format.h"
#include "src/pmem/device.h"
#include "src/vfs/file_system.h"
#include "src/vfs/vfs_locks.h"

namespace fscore {

struct FsOptions {
  uint64_t max_inodes = 64 * 1024;
  uint64_t journal_blocks = 512;  // total; per-CPU filesystems subdivide
  uint32_t num_cpus = 4;
  vfs::GuaranteeMode mode = vfs::GuaranteeMode::kRelaxed;
  // First data block offset within the data area; non-zero values emulate
  // allocators whose bookkeeping headers shift all data off 2 MiB alignment
  // (xfs-DAX / PMFS, paper footnote 1).
  uint64_t data_phase_blocks = 0;
  // Host-parallel lock domains for the VFS front end: the DRAM-structure
  // mutex and the shared VFS syscall path are striped this many ways, keyed
  // by ExecContext::cpu. 1 (the default) preserves the historical
  // single-domain behavior — including the global per-syscall cap that
  // creates the Fig 10 plateau — bit-for-bit. Parallel geometries set it to
  // num_cpus so host workers driving disjoint CPU shards stop serializing on
  // one mutex. Only meaningful with >1 when the workload honors the
  // shard-purity contract (DESIGN.md).
  uint32_t lock_domains = 1;
};

// Striped host lock for the DRAM metadata structures. Operations that carry
// an ExecContext lock only their CPU's stripe (Stripe(ctx.cpu)); cross-domain
// paths — mount/unmount, StatFs, gauge probes — lock every stripe via the
// BasicLockable surface. Deadlock-free: lock() acquires stripes in ascending
// index order, and a single-stripe holder never blocks on a second stripe
// (same-CPU recursion re-enters its own recursive_mutex). With one domain the
// two forms collapse to the pre-striping single recursive mutex.
class DomainMutex {
 public:
  explicit DomainMutex(uint32_t domains = 1) {
    if (domains == 0) {
      domains = 1;
    }
    stripes_.reserve(domains);
    for (uint32_t d = 0; d < domains; d++) {
      stripes_.push_back(std::make_unique<std::recursive_mutex>());
    }
  }

  void lock() const {
    for (auto& stripe : stripes_) {
      stripe->lock();
    }
  }
  void unlock() const {
    for (auto it = stripes_.rbegin(); it != stripes_.rend(); ++it) {
      (*it)->unlock();
    }
  }

  std::recursive_mutex& Stripe(uint32_t cpu) const {
    return *stripes_[cpu % stripes_.size()];
  }
  uint32_t domains() const { return static_cast<uint32_t>(stripes_.size()); }

 private:
  std::vector<std::unique_ptr<std::recursive_mutex>> stripes_;
};

// Why a block allocation is happening; policies treat these differently.
enum class AllocIntent {
  kFileData,   // regular file contents
  kDirData,    // directory entry blocks (small, metadata-like)
  kMeta,       // indirect extent blocks and similar
  kLogPage,    // per-inode log pages (NOVA)
};

// Transparent string hash so directory lookups can run on string_view path
// components without materializing a std::string per component (the batched
// resolver's hot path). Hashes through std::hash<string_view>, which matches
// std::hash<string> byte-for-byte, so bucket iteration order — and therefore
// ReadDir output order — is unchanged.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
};

// DRAM inode. PM truth is the PmInode + indirect chain; this mirror is
// rebuilt on mount.
struct Inode {
  vfs::InodeNum ino = 0;
  bool is_dir = false;
  bool aligned_hint = false;
  uint64_t size = 0;
  uint32_t nlink = 0;
  ExtentMap extents;
  std::string xattr;

  // Directory state.
  struct DirentRef {
    vfs::InodeNum ino = 0;
    bool is_dir = false;
    uint64_t slot = 0;  // index into the dir's dirent array
  };
  std::unordered_map<std::string, DirentRef, TransparentStringHash, std::equal_to<>> dirents;
  std::vector<uint64_t> free_dirent_slots;
  uint64_t dirent_capacity = 0;  // total slots backed by allocated blocks

  // Per-inode log bookkeeping (NOVA-style filesystems).
  std::vector<Extent> log_pages;
  uint32_t log_entries_in_tail = 0;

  // Mirror of the on-PM extent records. Records are SLOTTED: each one is
  // independent ({logical, packed}; packed==0 marks a free slot), so any
  // single extent change — append, split, CoW replacement — costs O(changed
  // records), like a real extent B-tree, instead of rewriting a positional
  // array. pm_slots maps logical start -> (slot index, packed value);
  // pm_chain holds the indirect-block chain addresses.
  std::unordered_map<uint64_t, std::pair<uint32_t, uint64_t>> pm_slots;
  std::vector<uint32_t> pm_free_slots;
  uint32_t pm_slot_highwater = 0;  // slots ever used; extent_count on PM
  std::vector<uint64_t> pm_chain;

  // Chunks whose fault-time zeroing cost has been charged (ext4-style
  // zero-on-fault of unwritten extents; cost accounting only).
  std::unordered_set<uint64_t> zeroed_chunks;
};

class GenericFs : public vfs::FileSystem {
 public:
  GenericFs(pmem::PmemDevice* device, FsOptions options);
  ~GenericFs() override;

  // --- vfs::FileSystem ----------------------------------------------------
  vfs::GuaranteeMode guarantee_mode() const override { return options_.mode; }
  common::Status Mkfs(common::ExecContext& ctx) override;
  common::Status Mount(common::ExecContext& ctx) override;
  common::Status Unmount(common::ExecContext& ctx) override;

  common::Result<int> Open(common::ExecContext& ctx, const std::string& path,
                           vfs::OpenFlags flags) override;
  common::Status Close(common::ExecContext& ctx, int fd) override;
  common::Status Mkdir(common::ExecContext& ctx, const std::string& path) override;
  common::Status Rmdir(common::ExecContext& ctx, const std::string& path) override;
  common::Status Unlink(common::ExecContext& ctx, const std::string& path) override;
  common::Status Rename(common::ExecContext& ctx, const std::string& from,
                        const std::string& to) override;
  common::Result<vfs::StatInfo> Stat(common::ExecContext& ctx,
                                     const std::string& path) override;
  common::Result<std::vector<vfs::DirEntry>> ReadDir(common::ExecContext& ctx,
                                                     const std::string& path) override;

  vfs::IoResult Pread(common::ExecContext& ctx, int fd, void* dst, uint64_t len,
                      uint64_t offset) override;
  vfs::IoResult Pwrite(common::ExecContext& ctx, int fd, const void* src, uint64_t len,
                       uint64_t offset) override;
  vfs::IoResult Append(common::ExecContext& ctx, int fd, const void* src,
                       uint64_t len) override;
  common::Status Fsync(common::ExecContext& ctx, int fd) override;
  common::Status Fallocate(common::ExecContext& ctx, int fd, uint64_t offset,
                           uint64_t len) override;
  common::Status Ftruncate(common::ExecContext& ctx, int fd, uint64_t size) override;

  common::Status SetXattr(common::ExecContext& ctx, const std::string& path,
                          const std::string& name, const std::string& value) override;
  common::Result<std::string> GetXattr(common::ExecContext& ctx, const std::string& path,
                                       const std::string& name) override;

  common::Result<vfs::InodeNum> InodeOf(common::ExecContext& ctx, int fd) override;
  common::Result<uint64_t> SizeOf(common::ExecContext& ctx, int fd) override;

  common::Result<FaultMapping> HandleFault(common::ExecContext& ctx, uint64_t ino,
                                           uint64_t page_offset, bool write) override;

  // statfs(2) entry point: charges syscall + op metrics, fails on an
  // unmounted filesystem, then delegates to the FreeSpace() policy hook —
  // the allocator policy owns free space.
  common::Result<vfs::FreeSpaceInfo> StatFs(common::ExecContext& ctx) override;

  // Gauge probe shared by every filesystem: free-space fragmentation from the
  // FreeSpace() policy hook plus DRAM index footprint. Subclasses extend with
  // allocator/journal internals and call this base version first.
  void SampleGauges(obs::GaugeSample& out) override;

  // --- Introspection used by benches/tests --------------------------------
  uint64_t data_start_block() const { return data_start_block_; }
  uint64_t data_blocks() const { return data_blocks_; }
  // Metadata-region layout (campaign poison plans target the journal region;
  // the scrub daemon walks superblock + journal + inode table).
  uint64_t total_blocks() const { return total_blocks_; }
  uint64_t journal_start_block() const { return journal_start_block_; }
  uint64_t inode_table_block() const { return inode_table_block_; }
  pmem::PmemDevice& device() { return *device_; }
  const FsOptions& options() const { return options_; }
  // DRAM consumed by directory indexes + extent mirrors (§5.7), approximate.
  uint64_t DramIndexBytes() const;
  // Simulated duration of the last Mount() call (recovery time, §5.2).
  uint64_t last_mount_ns() const { return last_mount_ns_; }
  // Looks up an inode's extent map (tests).
  const Inode* FindInode(vfs::InodeNum ino) const;

 protected:
  // ==== Policy hooks =======================================================

  // Allocates `nblocks` for `inode` (may return multiple extents). The
  // policy charges its own search cost to ctx.clock.
  virtual common::Result<std::vector<Extent>> AllocBlocks(common::ExecContext& ctx,
                                                          Inode& inode, uint64_t nblocks,
                                                          AllocIntent intent) = 0;
  virtual void FreeBlocks(common::ExecContext& ctx, const std::vector<Extent>& extents) = 0;

  // Free-space snapshot backing StatFs(); called with dram_mu_ held.
  virtual vfs::FreeSpaceInfo FreeSpace() = 0;

  // Consistency engine. TxBegin/TxCommit bracket one atomic metadata
  // operation; TxMetaWrite persists `len` bytes at `pm_offset` according to
  // the filesystem's journaling discipline. `owner` is the inode the update
  // belongs to (per-inode-log filesystems need it).
  virtual void TxBegin(common::ExecContext& ctx) { (void)ctx; }
  virtual void TxMetaWrite(common::ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                           const void* data, uint64_t len) = 0;
  virtual void TxCommit(common::ExecContext& ctx) { (void)ctx; }
  // Journal recovery during Mount() on an unclean filesystem.
  virtual common::Status RecoverJournal(common::ExecContext& ctx) {
    (void)ctx;
    return common::OkStatus();
  }

  // Strict-mode data path: must make [offset, offset+len) atomic+durable.
  // Default implementation is the relaxed in-place path (used when
  // options_.mode == kRelaxed); strict filesystems override.
  virtual common::Result<uint64_t> WriteDataAtomic(common::ExecContext& ctx, Inode& inode,
                                                   const void* src, uint64_t len,
                                                   uint64_t offset);

  // fsync semantics (JBD2 commit, log flush, or no-op for always-durable FSs).
  virtual common::Status FsyncImpl(common::ExecContext& ctx, Inode& inode) = 0;

  // Fault policy.
  virtual bool AllocatesHugeOnFault() const { return false; }
  virtual bool ZeroOnFault() const { return true; }  // else zero at allocation

  // Directory access cost (PMFS overrides with a linear PM scan).
  //
  // Contract (relied on by ExecuteBatchNative's resolution cache): the
  // charges must be a pure function of the directory's state — relative
  // clock.Advance() plus counter increments only, no absolute-time waits
  // (ResourceClock/SharedResource) and no dependence on anything a
  // non-namespace-mutating op could change. The batch engine memoizes a
  // resolve's charge footprint and replays it for cached paths; any dirent
  // mutation flushes that cache.
  virtual void ChargeDirLookup(common::ExecContext& ctx, const Inode& dir);

  // Notifications for per-inode-log bookkeeping.
  virtual void OnInodeCreated(common::ExecContext& ctx, Inode& inode) {
    (void)ctx;
    (void)inode;
  }
  virtual void OnInodeDeleted(common::ExecContext& ctx, Inode& inode) {
    (void)ctx;
    (void)inode;
  }

  // Allocator lifecycle: initial hand-over at mkfs, and rebuild after a
  // mount-time scan (free = data area minus `used`).
  virtual void InitAllocator(uint64_t data_start, uint64_t nblocks) = 0;
  virtual void RebuildAllocator(common::ExecContext& ctx, FreeSpaceMap&& free_map) = 0;

  // Extra used extents outside inode extent lists (per-inode log pages).
  virtual void CollectExtraUsed(common::ExecContext& ctx, std::vector<Extent>& used) {
    (void)ctx;
    (void)used;
  }

  // Mount-time scan parallelism (WineFS scans per-CPU inode tables in
  // parallel, §5.2); the measured scan time is divided by this factor.
  virtual uint32_t RecoveryParallelism() const { return 1; }

  // ==== Services provided to subclasses ====================================

  // AllocBlocks policy call wrapped in an obs allocation span; every internal
  // allocation goes through this.
  common::Result<std::vector<Extent>> AllocBlocksTraced(common::ExecContext& ctx,
                                                        Inode& inode, uint64_t nblocks,
                                                        AllocIntent intent);

  // In-place relaxed write (allocates holes, streams data). Shared by
  // relaxed mode and by strict implementations for freshly allocated blocks.
  common::Result<uint64_t> WriteDataInPlace(common::ExecContext& ctx, Inode& inode,
                                            const void* src, uint64_t len, uint64_t offset,
                                            bool persist_data);

  // Allocates any unmapped blocks in [offset, offset+len) and persists the
  // extent-list growth. Returns the number of newly allocated blocks.
  common::Result<uint64_t> EnsureBlocks(common::ExecContext& ctx, Inode& inode,
                                        uint64_t offset, uint64_t len, AllocIntent intent,
                                        bool persist_inode = true);

  // Serializes inode metadata (and its extent list) to PM via TxMetaWrite,
  // writing only the extent records that changed since the last persist.
  void PersistInode(common::ExecContext& ctx, Inode& inode);

  // PM offset of the inode's k-th extent record, growing the indirect chain
  // on demand; 0 on ENOSPC.
  uint64_t ExtentRecordOffset(common::ExecContext& ctx, Inode& inode, size_t k);

  // Updates inode size + extents after a data operation, inside a Tx.
  void CommitInodeUpdate(common::ExecContext& ctx, Inode& inode);

  uint64_t InodePmOffset(vfs::InodeNum ino) const;

  Inode* GetInode(vfs::InodeNum ino);
  Inode* GetInodeByFd(int fd);

  // Charges the syscall entry cost (trap + shared VFS path).
  void ChargeSyscall(common::ExecContext& ctx);

  // Native batched-execution engine (generic_fs_batch.cc): runs the hot
  // metadata kinds (stat/open/close/pread/fsync) through an arena-backed,
  // SoA path-resolution cache and falls back to DispatchScalarOp for
  // everything else — charge-for-charge identical to the scalar loop.
  // Subclasses opt in by overriding ExecuteBatch to call this.
  void ExecuteBatchNative(common::ExecContext& ctx, const vfs::OpBatch& batch,
                          std::vector<vfs::OpResult>& results);

  // Builds a FreeSpaceMap of the whole data area (helper for rebuilds).
  FreeSpaceMap FullDataArea() const;

  // Read-only view of the DRAM inode table for gauge probes (per-inode log
  // occupancy and similar aggregates). Hold dram_mu_ while iterating.
  const std::unordered_map<vfs::InodeNum, std::unique_ptr<Inode>>& inode_table() const {
    return inodes_;
  }

  // Emits a FreeSpaceMap run-length histogram as the four standard
  // free_runs_* gauges (shared by the per-filesystem SampleGauges overrides).
  static void SetRunHistogramGauges(const FreeSpaceMap::RunLengthHistogram& hist,
                                    obs::GaugeSample& out);

  pmem::PmemDevice* device_;
  FsOptions options_;
  vfs::InodeLockTable inode_locks_;
  vfs::VfsSharedPath vfs_shared_;

  // Whether the superblock said clean_unmount when Mount() read it; journal
  // recovery hooks consult this to decide repair-vs-refuse on poisoned
  // journal regions (a clean journal carries no undo state worth keeping).
  bool mount_found_clean_ = false;

  // Region layout (blocks).
  uint64_t total_blocks_ = 0;
  uint64_t journal_start_block_ = 0;
  uint64_t inode_table_block_ = 0;
  uint64_t data_start_block_ = 0;
  uint64_t data_blocks_ = 0;

  // Real-time lock for DRAM structures, striped by FsOptions::lock_domains.
  // Simulated-time contention is modeled separately (SimMutex /
  // ResourceClock); this mutex only provides host-thread safety. Per-op code
  // paths hold Stripe(ctx.cpu); cross-domain paths lock all stripes.
  mutable DomainMutex dram_mu_;

  // Guard for per-op single-stripe locking: the overwhelmingly common form
  // `std::lock_guard<std::recursive_mutex> guard(dram_mu_.Stripe(ctx.cpu))`
  // spelled as one token for the op surface.
  using DramStripeGuard = std::lock_guard<std::recursive_mutex>;

 private:
  struct FdEntry {
    vfs::InodeNum ino = 0;
    bool write = false;
    bool in_use = false;
  };

  struct ResolveResult {
    Inode* parent = nullptr;
    Inode* node = nullptr;  // nullptr if final component missing
    std::string leaf;
  };

  common::Result<ResolveResult> Resolve(common::ExecContext& ctx, const std::string& path,
                                        bool want_parent);

  common::Result<Inode*> CreateNode(common::ExecContext& ctx, Inode& parent,
                                    const std::string& name, bool is_dir);
  common::Status RemoveNode(common::ExecContext& ctx, Inode& parent, const std::string& name,
                            bool expect_dir);
  common::Status AddDirent(common::ExecContext& ctx, Inode& dir, const std::string& name,
                           vfs::InodeNum ino, bool is_dir);
  common::Status RemoveDirent(common::ExecContext& ctx, Inode& dir, const std::string& name);
  uint64_t DirentPmOffset(Inode& dir, uint64_t slot) const;

  common::Result<vfs::InodeNum> AllocInodeNum(common::ExecContext& ctx);
  void FreeInodeNum(vfs::InodeNum ino);

  void FreeFileBlocks(common::ExecContext& ctx, Inode& inode, uint64_t from_block);

  common::Status RebuildFromPm(common::ExecContext& ctx);
  common::Status LoadInodeFromPm(common::ExecContext& ctx, const PmInode& pm, Inode& inode);

  std::unordered_map<vfs::InodeNum, std::unique_ptr<Inode>> inodes_;
  std::vector<vfs::InodeNum> free_inos_;
  std::vector<FdEntry> fds_;
  // Structural guard for the three shared tables above when lock domains > 1:
  // stripes make dram_mu_ no longer mutually exclusive across CPUs, so map
  // insert/erase/find, the free-ino stack, and fd slot claim/release take
  // this spin lock for their (host-nanosecond) critical sections.
  // unordered_map node stability keeps handed-out Inode* valid afterwards.
  // Never held while calling anything that could re-enter it.
  mutable common::SpinMutex table_mu_;
  bool mounted_ = false;
  uint64_t last_mount_ns_ = 0;
};

}  // namespace fscore

#endif  // SRC_FS_FSCORE_GENERIC_FS_H_
