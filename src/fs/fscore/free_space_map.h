// Free-space tracking: an address-ordered map of free extents with merging on
// release, plus the allocation disciplines the different filesystems use
// (first-fit from a goal, best-fit by size, aligned carve-out).
#ifndef SRC_FS_FSCORE_FREE_SPACE_MAP_H_
#define SRC_FS_FSCORE_FREE_SPACE_MAP_H_

#include <cstdint>
#include <map>
#include <optional>

#include "src/fs/fscore/extent.h"
#include "src/vfs/file_system.h"

namespace fscore {

class FreeSpaceMap {
 public:
  FreeSpaceMap() = default;

  // Adds [start, start+len) to the free pool, merging with neighbours.
  void Release(uint64_t start_block, uint64_t len);

  // Removes a specific range (must be entirely free). Used when rebuilding
  // from the on-PM inode scan and when carving reserved regions.
  void ReserveRange(uint64_t start_block, uint64_t len);

  // First free run of >= len blocks at or after `goal`, wrapping around.
  // Allocates from the head of the run (ext4-style locality).
  std::optional<Extent> AllocFirstFit(uint64_t len, uint64_t goal = 0);

  // First-fit, but if the chosen run can host a 2 MiB-aligned start for the
  // whole request, round up to it (mballoc-style normalization: alignment is
  // taken when it is free within the locality target, never hunted for).
  std::optional<Extent> AllocFirstFitPreferAligned(uint64_t len, uint64_t goal = 0);

  // Smallest free run that fits (xfs-style by-size policy, ignores alignment).
  std::optional<Extent> AllocBestFit(uint64_t len);

  // A 2 MiB-aligned run of exactly `len` blocks (len <= 512); returns the
  // aligned head of a hugepage-capable region if one exists.
  std::optional<Extent> AllocAligned(uint64_t len);

  // Take at most `len` blocks from any run (used for log pages / holes).
  std::optional<Extent> AllocAny(uint64_t len);

  bool ContainsRange(uint64_t start_block, uint64_t len) const;

  uint64_t free_blocks() const { return free_blocks_; }
  uint64_t CountAlignedFreeRegions() const;
  uint64_t LargestRun() const;

  // Coarse histogram of free-run lengths, the fragmentation fingerprint the
  // gauge probes export: runs shorter than 16 blocks (64 KiB) are unusable
  // for large allocations, 512+ blocks (2 MiB) are hugepage candidates.
  struct RunLengthHistogram {
    uint64_t lt_16 = 0;    // [1, 16) blocks
    uint64_t lt_128 = 0;   // [16, 128)
    uint64_t lt_512 = 0;   // [128, 512)
    uint64_t ge_512 = 0;   // >= 512 (2 MiB+)

    RunLengthHistogram& operator+=(const RunLengthHistogram& o) {
      lt_16 += o.lt_16;
      lt_128 += o.lt_128;
      lt_512 += o.lt_512;
      ge_512 += o.ge_512;
      return *this;
    }
  };
  RunLengthHistogram RunHistogram() const;

  const std::map<uint64_t, uint64_t>& runs() const { return free_; }

 private:
  void Take(std::map<uint64_t, uint64_t>::iterator it, uint64_t offset_in_run, uint64_t len);

  std::map<uint64_t, uint64_t> free_;  // start -> len, disjoint, merged
  uint64_t free_blocks_ = 0;
};

}  // namespace fscore

#endif  // SRC_FS_FSCORE_FREE_SPACE_MAP_H_
