#include "src/fs/fscore/generic_fs.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "src/common/prof_zone.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace fscore {

using common::ErrorCode;
using common::ExecContext;
using common::kBlockSize;
using common::kBlocksPerHugepage;
using common::Result;
using common::Status;
using vfs::InodeNum;
using vfs::kRootIno;

namespace {

// Splits "/a/b/c" into components; rejects empty names and over-long names.
Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return ErrorCode::kInvalidArgument;
  }
  std::vector<std::string> parts;
  size_t start = 1;
  while (start < path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string::npos) {
      end = path.size();
    }
    if (end > start) {
      const std::string part = path.substr(start, end - start);
      if (part.size() > kMaxNameLen) {
        return ErrorCode::kInvalidArgument;
      }
      parts.push_back(part);
    }
    start = end + 1;
  }
  return parts;
}

uint64_t Log2Ceil(uint64_t value) {
  uint64_t bits = 0;
  while ((1ull << bits) < value) {
    bits++;
  }
  return bits;
}

}  // namespace

GenericFs::GenericFs(pmem::PmemDevice* device, FsOptions options)
    : device_(device),
      options_(options),
      vfs_shared_(options.lock_domains),
      dram_mu_(options.lock_domains) {
  fds_.resize(4096);
}

GenericFs::~GenericFs() = default;

void GenericFs::ChargeSyscall(ExecContext& ctx) {
  common::ProfileZone zone(ctx, common::ProfLayer::kVfs);
  ctx.clock.Advance(device_->cost().syscall_trap_ns);
  ctx.counters.syscall_count++;
  vfs_shared_.Charge(ctx);
}

void GenericFs::ChargeDirLookup(ExecContext& ctx, const Inode& dir) {
  // DRAM red-black-tree / hash index: O(log n) pointer chases.
  ctx.clock.Advance(30 * (1 + Log2Ceil(dir.dirents.size() + 2)));
}

uint64_t GenericFs::InodePmOffset(InodeNum ino) const {
  return inode_table_block_ * kBlockSize + ino * sizeof(PmInode);
}

Inode* GenericFs::GetInode(InodeNum ino) {
  std::lock_guard<common::SpinMutex> table_guard(table_mu_);
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : it->second.get();
}

Inode* GenericFs::GetInodeByFd(int fd) {
  // Single table_mu_ hold for the fd slot AND the inode lookup (the spin
  // lock is not recursive, so this cannot route through GetInode).
  std::lock_guard<common::SpinMutex> table_guard(table_mu_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].in_use) {
    return nullptr;
  }
  auto it = inodes_.find(fds_[fd].ino);
  return it == inodes_.end() ? nullptr : it->second.get();
}

FreeSpaceMap GenericFs::FullDataArea() const {
  FreeSpaceMap map;
  map.Release(data_start_block_, data_blocks_);
  return map;
}

Result<std::vector<Extent>> GenericFs::AllocBlocksTraced(ExecContext& ctx, Inode& inode,
                                                         uint64_t nblocks,
                                                         AllocIntent intent) {
  obs::ScopedSpan span(ctx, obs::SpanCat::kAllocation, nblocks);
  common::ProfileZone zone(ctx, common::ProfLayer::kAllocator);
  return AllocBlocks(ctx, inode, nblocks, intent);
}

Result<vfs::FreeSpaceInfo> GenericFs::StatFs(ExecContext& ctx) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "statfs");
  std::lock_guard<DomainMutex> guard(dram_mu_);
  if (!mounted_) {
    return ErrorCode::kBadFd;
  }
  return FreeSpace();
}

void GenericFs::SampleGauges(obs::GaugeSample& out) {
  std::lock_guard<DomainMutex> guard(dram_mu_);
  if (!mounted_) {
    return;  // nothing meaningful before Mount/after Unmount
  }
  const vfs::FreeSpaceInfo info = FreeSpace();
  out.Set("free_blocks", static_cast<double>(info.free_blocks));
  out.Set("free_aligned_extents", static_cast<double>(info.free_aligned_extents));
  out.Set("aligned_free_fraction", info.AlignedFreeFraction());
  out.Set("largest_free_run_blocks", static_cast<double>(info.largest_free_extent_blocks));
  out.Set("utilization", info.utilization());
  out.Set("dram_index_bytes", static_cast<double>(DramIndexBytes()));
}

void GenericFs::SetRunHistogramGauges(const FreeSpaceMap::RunLengthHistogram& hist,
                                      obs::GaugeSample& out) {
  out.Set("free_runs_lt_64k", static_cast<double>(hist.lt_16));
  out.Set("free_runs_64k_512k", static_cast<double>(hist.lt_128));
  out.Set("free_runs_512k_2m", static_cast<double>(hist.lt_512));
  out.Set("free_runs_ge_2m", static_cast<double>(hist.ge_512));
}

// --- Lifecycle --------------------------------------------------------------

Status GenericFs::Mkfs(ExecContext& ctx) {
  std::lock_guard<DomainMutex> guard(dram_mu_);
  total_blocks_ = device_->size() / kBlockSize;
  journal_start_block_ = 1;
  const uint64_t inode_blocks =
      (options_.max_inodes * sizeof(PmInode) + kBlockSize - 1) / kBlockSize;
  inode_table_block_ = journal_start_block_ + options_.journal_blocks;
  const uint64_t raw_data_start = inode_table_block_ + inode_blocks;
  data_start_block_ =
      common::RoundUp(raw_data_start, kBlocksPerHugepage) + options_.data_phase_blocks;
  if (data_start_block_ >= total_blocks_) {
    return Status(ErrorCode::kNoSpace);
  }
  data_blocks_ = total_blocks_ - data_start_block_;

  PmSuperblock sb;
  sb.magic = kSuperMagic;
  sb.total_blocks = total_blocks_;
  sb.data_start_block = data_start_block_;
  sb.inode_table_block = inode_table_block_;
  sb.max_inodes = options_.max_inodes;
  sb.journal_start_block = journal_start_block_;
  sb.journal_blocks = options_.journal_blocks;
  sb.num_cpus = options_.num_cpus;
  sb.clean_unmount = 0;
  device_->PersistStruct(ctx, 0, sb);
  // Backup copy in a different media block: one uncorrectable error cannot
  // lose the geometry. Only the immutable fields matter in the backup.
  device_->PersistStruct(ctx, kSuperBackupOffset, sb);

  // Zero the inode table so stale magics never resurface.
  device_->Zero(ctx, inode_table_block_ * kBlockSize, inode_blocks * kBlockSize);
  device_->Fence(ctx);

  inodes_.clear();
  free_inos_.clear();
  for (InodeNum ino = options_.max_inodes - 1; ino > kRootIno; ino--) {
    free_inos_.push_back(ino);
  }

  InitAllocator(data_start_block_, data_blocks_);

  // Root directory.
  auto root = std::make_unique<Inode>();
  root->ino = kRootIno;
  root->is_dir = true;
  root->nlink = 2;
  inodes_[kRootIno] = std::move(root);
  TxBegin(ctx);
  PersistInode(ctx, *inodes_[kRootIno]);
  TxCommit(ctx);
  OnInodeCreated(ctx, *inodes_[kRootIno]);

  mounted_ = true;
  return common::OkStatus();
}

Status GenericFs::Mount(ExecContext& ctx) {
  std::lock_guard<DomainMutex> guard(dram_mu_);
  const uint64_t t0 = ctx.clock.NowNs();
  auto primary = device_->TryLoadStruct<PmSuperblock>(ctx, 0);
  PmSuperblock sb;
  if (primary.ok() && primary->magic == kSuperMagic) {
    sb = *primary;
  } else {
    // Primary poisoned (kIoError) or invalid: fall back to the backup copy
    // and repair the primary — the rewrite re-ECCs the poisoned media block.
    auto backup = device_->TryLoadStruct<PmSuperblock>(ctx, kSuperBackupOffset);
    if (!backup.ok()) {
      return Status(ErrorCode::kIoError);
    }
    if (backup->magic != kSuperMagic) {
      // Neither copy is usable: refuse cleanly with the more specific code.
      return primary.ok() ? Status(ErrorCode::kCorrupt) : Status(ErrorCode::kIoError);
    }
    sb = *backup;
    sb.clean_unmount = 0;  // conservative: force full journal recovery
    // The repair must rewrite the whole 256 B media block to re-ECC it; the
    // superblock struct alone is smaller than the poison granularity.
    device_->Zero(ctx, 0, pmem::kMediaBlockBytes);
    device_->PersistStruct(ctx, 0, sb);
  }
  total_blocks_ = sb.total_blocks;
  data_start_block_ = sb.data_start_block;
  data_blocks_ = total_blocks_ - data_start_block_;
  inode_table_block_ = sb.inode_table_block;
  journal_start_block_ = sb.journal_start_block;
  options_.max_inodes = sb.max_inodes;
  options_.journal_blocks = sb.journal_blocks;
  options_.num_cpus = sb.num_cpus;
  mount_found_clean_ = sb.clean_unmount != 0;

  RETURN_IF_ERROR(RecoverJournal(ctx));
  RETURN_IF_ERROR(RebuildFromPm(ctx));

  // Mark the filesystem dirty while mounted.
  PmSuperblock dirty = sb;
  dirty.clean_unmount = 0;
  device_->PersistStruct(ctx, 0, dirty);

  const uint64_t elapsed = ctx.clock.NowNs() - t0;
  const uint32_t par = std::max<uint32_t>(1, RecoveryParallelism());
  last_mount_ns_ = elapsed / par;
  ctx.clock.SetNs(t0 + last_mount_ns_);
  if (ctx.trace != nullptr) {
    ctx.trace->Record(
        obs::TraceEvent{obs::SpanCat::kRecovery, ctx.cpu, t0, ctx.clock.NowNs(), 0});
  }
  mounted_ = true;
  return common::OkStatus();
}

Status GenericFs::Unmount(ExecContext& ctx) {
  std::lock_guard<DomainMutex> guard(dram_mu_);
  if (!mounted_) {
    return Status(ErrorCode::kInvalidArgument);
  }
  device_->Fence(ctx);
  PmSuperblock sb = device_->LoadStruct<PmSuperblock>(ctx, 0);
  sb.clean_unmount = 1;
  device_->PersistStruct(ctx, 0, sb);
  // Serializing the DRAM free lists is modeled as a streaming write
  // proportional to their footprint (§3.6 "written to PM on unmount").
  ctx.clock.Advance(device_->cost().SeqWriteBytes(DramIndexBytes() / 16));
  mounted_ = false;
  inodes_.clear();
  free_inos_.clear();
  for (auto& fd : fds_) {
    fd = FdEntry{};
  }
  return common::OkStatus();
}

// --- Mount-time rebuild ------------------------------------------------------

Status GenericFs::LoadInodeFromPm(ExecContext& ctx, const PmInode& pm, Inode& inode) {
  inode.ino = pm.ino;
  inode.is_dir = pm.is_dir != 0;
  inode.aligned_hint = pm.aligned_hint != 0;
  inode.size = pm.size;
  inode.nlink = pm.nlink;
  if (pm.xattr_len > 0) {
    inode.xattr.assign(pm.xattr, std::min<size_t>(pm.xattr_len, kInodeXattrBytes));
  }
  // Extent records are slotted: read every slot up to the highwater mark;
  // packed==0 slots are free (tombstones).
  inode.pm_slot_highwater = pm.extent_count;
  uint32_t slot = 0;
  auto take_record = [&](const PmExtent& ext) {
    if (ext.packed != 0) {
      inode.extents.Insert(ext.logical_block, ext.phys_block(), ext.len());
      inode.pm_slots[ext.logical_block] = {slot, ext.packed};
    } else {
      inode.pm_free_slots.push_back(slot);
    }
    slot++;
  };
  for (uint32_t i = 0; i < kInlineExtents && slot < pm.extent_count; i++) {
    take_record(pm.inline_extents[i]);
  }
  uint64_t indirect = pm.indirect_block;
  while (indirect != 0) {
    inode.pm_chain.push_back(indirect);
    PmIndirectBlock blk;
    RETURN_IF_ERROR(device_->Load(ctx, indirect * kBlockSize, &blk, sizeof(blk)));
    for (uint32_t i = 0; i < kExtentsPerIndirect && slot < pm.extent_count; i++) {
      take_record(blk.extents[i]);
    }
    indirect = blk.next_block;
  }
  return common::OkStatus();
}

Status GenericFs::RebuildFromPm(ExecContext& ctx) {
  inodes_.clear();
  free_inos_.clear();
  std::vector<Extent> used;

  for (InodeNum ino = options_.max_inodes - 1; ino > 0; ino--) {
    // A poisoned inode slot is unrecoverable metadata: refuse the mount with
    // EIO instead of silently treating the inode as free (which would leak
    // its blocks back into the allocator and corrupt live data).
    ASSIGN_OR_RETURN(PmInode pm, device_->TryLoadStruct<PmInode>(ctx, InodePmOffset(ino)));
    if (pm.magic != kInodeMagic) {
      if (ino != kRootIno) {
        free_inos_.push_back(ino);
      }
      continue;
    }
    auto inode = std::make_unique<Inode>();
    RETURN_IF_ERROR(LoadInodeFromPm(ctx, pm, *inode));
    // Indirect chain blocks are used space too.
    uint64_t indirect = pm.indirect_block;
    while (indirect != 0) {
      used.push_back(Extent{indirect, 1});
      PmIndirectBlock blk;
      RETURN_IF_ERROR(device_->Load(ctx, indirect * kBlockSize, &blk, sizeof(blk)));
      indirect = blk.next_block;
    }
    for (const auto& [logical, ext] : inode->extents.Entries()) {
      used.push_back(ext);
    }
    inodes_[ino] = std::move(inode);
  }
  if (inodes_.find(kRootIno) == inodes_.end()) {
    return Status(ErrorCode::kCorrupt);
  }

  // Second pass: directory entries.
  for (auto& [ino, inode] : inodes_) {
    if (!inode->is_dir) {
      continue;
    }
    inode->dirent_capacity = inode->extents.MappedBlocks() * kDirentsPerBlock;
    for (const auto& [logical, ext] : inode->extents.Entries()) {
      for (uint64_t b = 0; b < ext.num_blocks; b++) {
        const uint64_t pm_off = (ext.phys_block + b) * kBlockSize;
        for (uint64_t d = 0; d < kDirentsPerBlock; d++) {
          ASSIGN_OR_RETURN(PmDirent de, device_->TryLoadStruct<PmDirent>(
                                            ctx, pm_off + d * sizeof(PmDirent)));
          const uint64_t slot = (logical + b) * kDirentsPerBlock + d;
          if (de.in_use != 0) {
            inode->dirents[std::string(de.name, de.name_len)] =
                Inode::DirentRef{de.ino, de.is_dir != 0, slot};
          } else {
            inode->free_dirent_slots.push_back(slot);
          }
        }
      }
    }
  }

  CollectExtraUsed(ctx, used);

  FreeSpaceMap free_map = FullDataArea();
  for (const Extent& ext : used) {
    free_map.ReserveRange(ext.phys_block, ext.num_blocks);
  }
  RebuildAllocator(ctx, std::move(free_map));
  return common::OkStatus();
}

// --- Inode persistence --------------------------------------------------------

namespace {
std::vector<PmExtent> SerializeExtents(const Inode& inode) {
  std::vector<PmExtent> all;
  for (const auto& [logical, ext] : inode.extents.Entries()) {
    uint64_t done = 0;
    while (done < ext.num_blocks) {
      const uint64_t chunk = std::min(ext.num_blocks - done, kMaxExtentLen);
      all.push_back(PmExtent{logical + done, PmExtent::Pack(ext.phys_block + done, chunk)});
      done += chunk;
    }
  }
  return all;
}
}  // namespace

// PM offset of extent record `k`, growing the indirect chain when needed.
// Returns 0 on allocation failure (record dropped; recoverable via rebuild).
uint64_t GenericFs::ExtentRecordOffset(ExecContext& ctx, Inode& inode, size_t k) {
  if (k < kInlineExtents) {
    return InodePmOffset(inode.ino) + offsetof(PmInode, inline_extents) +
           k * sizeof(PmExtent);
  }
  const size_t idx = k - kInlineExtents;
  const size_t block_i = idx / kExtentsPerIndirect;
  const size_t slot = idx % kExtentsPerIndirect;
  while (inode.pm_chain.size() <= block_i) {
    auto alloc = AllocBlocksTraced(ctx, inode, 1, AllocIntent::kMeta);
    if (!alloc.ok() || alloc->empty()) {
      return 0;
    }
    const uint64_t fresh = (*alloc)[0].phys_block;
    device_->Zero(ctx, fresh * kBlockSize, kBlockSize);
    if (!inode.pm_chain.empty()) {
      // Link from the previous block's next_block field.
      const uint64_t prev = inode.pm_chain.back();
      TxMetaWrite(ctx, inode.ino, prev * kBlockSize, &fresh, sizeof(fresh));
    }
    inode.pm_chain.push_back(fresh);
  }
  return inode.pm_chain[block_i] * kBlockSize + offsetof(PmIndirectBlock, extents) +
         slot * sizeof(PmExtent);
}

void GenericFs::PersistInode(ExecContext& ctx, Inode& inode) {
  const std::vector<PmExtent> all = SerializeExtents(inode);

  auto write_slot = [&](uint32_t slot, const PmExtent& record) {
    const uint64_t off = ExtentRecordOffset(ctx, inode, slot);
    if (off == 0) {
      return false;  // ENOSPC growing the chain; rebuild recovers the tail
    }
    TxMetaWrite(ctx, inode.ino, off, &record, sizeof(PmExtent));
    return true;
  };

  // Diff the live extent list against the slotted PM records by logical key.
  std::unordered_map<uint64_t, uint64_t> fresh;
  fresh.reserve(all.size());
  for (const PmExtent& ext : all) {
    fresh[ext.logical_block] = ext.packed;
  }
  // Tombstone records whose logical start disappeared.
  for (auto it = inode.pm_slots.begin(); it != inode.pm_slots.end();) {
    if (fresh.find(it->first) == fresh.end()) {
      const PmExtent dead{0, 0};
      if (write_slot(it->second.first, dead)) {
        inode.pm_free_slots.push_back(it->second.first);
      }
      it = inode.pm_slots.erase(it);
    } else {
      ++it;
    }
  }
  // Write new and changed records.
  for (const PmExtent& ext : all) {
    auto it = inode.pm_slots.find(ext.logical_block);
    if (it != inode.pm_slots.end()) {
      if (it->second.second != ext.packed) {
        if (write_slot(it->second.first, ext)) {
          it->second.second = ext.packed;
        }
      }
      continue;
    }
    uint32_t slot;
    if (!inode.pm_free_slots.empty()) {
      slot = inode.pm_free_slots.back();
      inode.pm_free_slots.pop_back();
    } else {
      slot = inode.pm_slot_highwater;
    }
    if (!write_slot(slot, ext)) {
      continue;
    }
    if (slot == inode.pm_slot_highwater) {
      inode.pm_slot_highwater++;
      // Keep the owning indirect block's population header current.
      if (slot >= kInlineExtents) {
        const size_t idx = slot - kInlineExtents;
        const size_t block_i = idx / kExtentsPerIndirect;
        uint64_t header[2];
        header[0] = block_i + 1 < inode.pm_chain.size() ? inode.pm_chain[block_i + 1] : 0;
        header[1] = idx % kExtentsPerIndirect + 1;  // count (low 32 bits)
        TxMetaWrite(ctx, inode.ino, inode.pm_chain[block_i] * kBlockSize, header,
                    sizeof(header));
      }
    }
    inode.pm_slots[ext.logical_block] = {slot, ext.packed};
  }

  // Inode header; xattr area only when present.
  PmInode pm;
  pm.magic = kInodeMagic;
  pm.is_dir = inode.is_dir ? 1 : 0;
  pm.aligned_hint = inode.aligned_hint ? 1 : 0;
  pm.ino = inode.ino;
  pm.size = inode.size;
  pm.nlink = inode.nlink;
  pm.extent_count = inode.pm_slot_highwater;
  pm.indirect_block = inode.pm_chain.empty() ? 0 : inode.pm_chain.front();
  pm.xattr_len = static_cast<uint16_t>(std::min<size_t>(inode.xattr.size(), kInodeXattrBytes));
  std::memcpy(pm.xattr, inode.xattr.data(), pm.xattr_len);
  TxMetaWrite(ctx, inode.ino, InodePmOffset(inode.ino), &pm, offsetof(PmInode, inline_extents));
  if (pm.xattr_len > 0) {
    TxMetaWrite(ctx, inode.ino, InodePmOffset(inode.ino) + offsetof(PmInode, xattr), pm.xattr,
                kInodeXattrBytes);
  }
}

void GenericFs::CommitInodeUpdate(ExecContext& ctx, Inode& inode) {
  TxBegin(ctx);
  PersistInode(ctx, inode);
  TxCommit(ctx);
}

// --- Path resolution ----------------------------------------------------------

Result<GenericFs::ResolveResult> GenericFs::Resolve(ExecContext& ctx, const std::string& path,
                                                    bool want_parent) {
  ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  ctx.clock.Advance(device_->cost().vfs_path_component_ns * (parts.size() + 1));

  ResolveResult out;
  Inode* current = GetInode(kRootIno);
  if (parts.empty()) {
    if (want_parent) {
      return ErrorCode::kInvalidArgument;  // cannot take parent of root
    }
    out.node = current;
    return out;
  }
  for (size_t i = 0; i + 1 < parts.size(); i++) {
    ChargeDirLookup(ctx, *current);
    auto it = current->dirents.find(parts[i]);
    if (it == current->dirents.end()) {
      return ErrorCode::kNotFound;
    }
    if (!it->second.is_dir) {
      return ErrorCode::kNotDir;
    }
    current = GetInode(it->second.ino);
    if (current == nullptr) {
      return ErrorCode::kCorrupt;
    }
  }
  out.parent = current;
  out.leaf = parts.back();
  ChargeDirLookup(ctx, *current);
  auto it = current->dirents.find(out.leaf);
  if (it != current->dirents.end()) {
    out.node = GetInode(it->second.ino);
  }
  return out;
}

// --- Dirent management ---------------------------------------------------------

uint64_t GenericFs::DirentPmOffset(Inode& dir, uint64_t slot) const {
  const uint64_t logical_block = slot / kDirentsPerBlock;
  auto mapping = dir.extents.Lookup(logical_block);
  assert(mapping.has_value());
  return mapping->phys_block * kBlockSize + (slot % kDirentsPerBlock) * sizeof(PmDirent);
}

Status GenericFs::AddDirent(ExecContext& ctx, Inode& dir, const std::string& name,
                            InodeNum ino, bool is_dir) {
  if (dir.free_dirent_slots.empty()) {
    // Grow the directory by one block: a small, metadata-like allocation —
    // this is one of the fragmentation sources aging exposes.
    const uint64_t logical_block = dir.dirent_capacity / kDirentsPerBlock;
    auto alloc = AllocBlocksTraced(ctx, dir, 1, AllocIntent::kDirData);
    if (!alloc.ok()) {
      return alloc.status();
    }
    assert(alloc->size() == 1 && (*alloc)[0].num_blocks == 1);
    dir.extents.Insert(logical_block, (*alloc)[0].phys_block, 1);
    device_->Zero(ctx, (*alloc)[0].phys_block * kBlockSize, kBlockSize);
    for (uint64_t s = 0; s < kDirentsPerBlock; s++) {
      dir.free_dirent_slots.push_back(dir.dirent_capacity + s);
    }
    dir.dirent_capacity += kDirentsPerBlock;
    PersistInode(ctx, dir);
  }
  const uint64_t slot = dir.free_dirent_slots.back();
  dir.free_dirent_slots.pop_back();

  PmDirent de;
  de.ino = ino;
  de.in_use = 1;
  de.is_dir = is_dir ? 1 : 0;
  de.SetName(name.data(), name.size());
  TxMetaWrite(ctx, dir.ino, DirentPmOffset(dir, slot), &de, sizeof(de));
  dir.dirents[name] = Inode::DirentRef{ino, is_dir, slot};
  return common::OkStatus();
}

Status GenericFs::RemoveDirent(ExecContext& ctx, Inode& dir, const std::string& name) {
  auto it = dir.dirents.find(name);
  if (it == dir.dirents.end()) {
    return Status(ErrorCode::kNotFound);
  }
  const uint64_t slot = it->second.slot;
  PmDirent empty;
  TxMetaWrite(ctx, dir.ino, DirentPmOffset(dir, slot), &empty, sizeof(empty));
  dir.free_dirent_slots.push_back(slot);
  dir.dirents.erase(it);
  return common::OkStatus();
}

// --- Inode numbers -------------------------------------------------------------

Result<InodeNum> GenericFs::AllocInodeNum(ExecContext& ctx) {
  (void)ctx;
  std::lock_guard<common::SpinMutex> table_guard(table_mu_);
  if (free_inos_.empty()) {
    return ErrorCode::kNoSpace;
  }
  const InodeNum ino = free_inos_.back();
  free_inos_.pop_back();
  return ino;
}

void GenericFs::FreeInodeNum(InodeNum ino) {
  std::lock_guard<common::SpinMutex> table_guard(table_mu_);
  free_inos_.push_back(ino);
}

// --- Node creation/removal ------------------------------------------------------

Result<Inode*> GenericFs::CreateNode(ExecContext& ctx, Inode& parent, const std::string& name,
                                     bool is_dir) {
  ASSIGN_OR_RETURN(const InodeNum ino, AllocInodeNum(ctx));
  auto inode = std::make_unique<Inode>();
  inode->ino = ino;
  inode->is_dir = is_dir;
  inode->nlink = is_dir ? 2 : 1;
  // Inherit the directory-level alignment hint (§3.6).
  if (parent.aligned_hint && !is_dir) {
    inode->aligned_hint = true;
  }
  Inode* raw = inode.get();
  {
    std::lock_guard<common::SpinMutex> table_guard(table_mu_);
    inodes_[ino] = std::move(inode);
  }

  TxBegin(ctx);
  PersistInode(ctx, *raw);
  const Status add = AddDirent(ctx, parent, name, ino, is_dir);
  if (!add.ok()) {
    TxCommit(ctx);
    {
      std::lock_guard<common::SpinMutex> table_guard(table_mu_);
      inodes_.erase(ino);
    }
    FreeInodeNum(ino);
    return add;
  }
  if (is_dir) {
    parent.nlink++;
    PersistInode(ctx, parent);
  }
  TxCommit(ctx);
  OnInodeCreated(ctx, *raw);
  return raw;
}

void GenericFs::FreeFileBlocks(ExecContext& ctx, Inode& inode, uint64_t from_block) {
  std::vector<Extent> freed = inode.extents.Remove(
      from_block, std::numeric_limits<uint64_t>::max() / 2 - from_block);
  if (!freed.empty()) {
    FreeBlocks(ctx, freed);
  }
}

Status GenericFs::RemoveNode(ExecContext& ctx, Inode& parent, const std::string& name,
                             bool expect_dir) {
  auto it = parent.dirents.find(name);
  if (it == parent.dirents.end()) {
    return Status(ErrorCode::kNotFound);
  }
  if (expect_dir && !it->second.is_dir) {
    return Status(ErrorCode::kNotDir);
  }
  if (!expect_dir && it->second.is_dir) {
    return Status(ErrorCode::kIsDir);
  }
  Inode* node = GetInode(it->second.ino);
  if (node == nullptr) {
    return Status(ErrorCode::kCorrupt);
  }
  if (expect_dir && !node->dirents.empty()) {
    return Status(ErrorCode::kNotEmpty);
  }

  TxBegin(ctx);
  RETURN_IF_ERROR(RemoveDirent(ctx, parent, name));
  node->nlink -= expect_dir ? 2 : 1;
  if (expect_dir) {
    parent.nlink--;
    PersistInode(ctx, parent);
  }
  if (node->nlink == 0 || expect_dir) {
    OnInodeDeleted(ctx, *node);
    FreeFileBlocks(ctx, *node, 0);
    // Release the indirect chain. Addresses come from the DRAM mirror so a
    // poisoned chain block cannot stall the unlink; the charged loads model
    // the PM walk a real filesystem would do.
    PmInode pm = device_->LoadStruct<PmInode>(ctx, InodePmOffset(node->ino));
    (void)pm;
    std::vector<Extent> chain;
    for (uint64_t chain_block : node->pm_chain) {
      chain.push_back(Extent{chain_block, 1});
      PmIndirectBlock blk;
      (void)device_->Load(ctx, chain_block * kBlockSize, &blk, sizeof(blk));
    }
    if (!chain.empty()) {
      FreeBlocks(ctx, chain);
    }
    PmInode dead;
    TxMetaWrite(ctx, node->ino, InodePmOffset(node->ino), &dead, sizeof(dead));
    const InodeNum ino = node->ino;
    {
      std::lock_guard<common::SpinMutex> table_guard(table_mu_);
      inodes_.erase(ino);
    }
    FreeInodeNum(ino);
    inode_locks_.Drop(ino);
  } else {
    PersistInode(ctx, *node);
  }
  TxCommit(ctx);
  return common::OkStatus();
}

// --- Namespace syscalls -----------------------------------------------------------

Result<int> GenericFs::Open(ExecContext& ctx, const std::string& path, vfs::OpenFlags flags) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "open");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  ASSIGN_OR_RETURN(ResolveResult res, Resolve(ctx, path, /*want_parent=*/true));
  Inode* node = res.node;
  if (node == nullptr) {
    if (!flags.create()) {
      return ErrorCode::kNotFound;
    }
    common::SimMutex::Guard dir_guard(inode_locks_.LockFor(res.parent->ino), ctx);
    ASSIGN_OR_RETURN(node, CreateNode(ctx, *res.parent, res.leaf, /*is_dir=*/false));
  } else {
    if (flags.create() && flags.exclusive()) {
      return ErrorCode::kExists;
    }
    if (node->is_dir) {
      return ErrorCode::kIsDir;
    }
    if (flags.truncate()) {
      common::SimMutex::Guard file_guard(inode_locks_.LockFor(node->ino), ctx);
      TxBegin(ctx);
      FreeFileBlocks(ctx, *node, 0);
      node->size = 0;
      PersistInode(ctx, *node);
      TxCommit(ctx);
    }
  }
  std::lock_guard<common::SpinMutex> table_guard(table_mu_);
  for (size_t fd = 0; fd < fds_.size(); fd++) {
    if (!fds_[fd].in_use) {
      fds_[fd] = FdEntry{node->ino, flags.write(), true};
      return static_cast<int>(fd);
    }
  }
  return ErrorCode::kNoSpace;
}

Status GenericFs::Close(ExecContext& ctx, int fd) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "close");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  std::lock_guard<common::SpinMutex> table_guard(table_mu_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].in_use) {
    return Status(ErrorCode::kBadFd);
  }
  fds_[fd] = FdEntry{};
  return common::OkStatus();
}

Status GenericFs::Mkdir(ExecContext& ctx, const std::string& path) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "mkdir");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  ASSIGN_OR_RETURN(ResolveResult res, Resolve(ctx, path, /*want_parent=*/true));
  if (res.node != nullptr) {
    return Status(ErrorCode::kExists);
  }
  common::SimMutex::Guard dir_guard(inode_locks_.LockFor(res.parent->ino), ctx);
  auto created = CreateNode(ctx, *res.parent, res.leaf, /*is_dir=*/true);
  return created.ok() ? common::OkStatus() : created.status();
}

Status GenericFs::Rmdir(ExecContext& ctx, const std::string& path) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "rmdir");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  ASSIGN_OR_RETURN(ResolveResult res, Resolve(ctx, path, /*want_parent=*/true));
  if (res.node == nullptr) {
    return Status(ErrorCode::kNotFound);
  }
  common::SimMutex::Guard dir_guard(inode_locks_.LockFor(res.parent->ino), ctx);
  return RemoveNode(ctx, *res.parent, res.leaf, /*expect_dir=*/true);
}

Status GenericFs::Unlink(ExecContext& ctx, const std::string& path) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "unlink");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  ASSIGN_OR_RETURN(ResolveResult res, Resolve(ctx, path, /*want_parent=*/true));
  if (res.node == nullptr) {
    return Status(ErrorCode::kNotFound);
  }
  common::SimMutex::Guard dir_guard(inode_locks_.LockFor(res.parent->ino), ctx);
  return RemoveNode(ctx, *res.parent, res.leaf, /*expect_dir=*/false);
}

Status GenericFs::Rename(ExecContext& ctx, const std::string& from, const std::string& to) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "rename");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  ASSIGN_OR_RETURN(ResolveResult src, Resolve(ctx, from, /*want_parent=*/true));
  if (src.node == nullptr) {
    return Status(ErrorCode::kNotFound);
  }
  ASSIGN_OR_RETURN(ResolveResult dst, Resolve(ctx, to, /*want_parent=*/true));

  common::SimMutex::Guard src_guard(inode_locks_.LockFor(src.parent->ino), ctx);
  if (dst.node != nullptr) {
    // Overwrite: target must be a file (or an empty dir when moving a dir).
    if (dst.node->is_dir != src.node->is_dir) {
      return Status(dst.node->is_dir ? ErrorCode::kIsDir : ErrorCode::kNotDir);
    }
    if (dst.node->is_dir && !dst.node->dirents.empty()) {
      return Status(ErrorCode::kNotEmpty);
    }
  }
  // One transaction covers the whole rename, including removing the
  // overwritten target — a crash must never expose the target missing
  // without the source having moved (POSIX rename atomicity).
  TxBegin(ctx);
  if (dst.node != nullptr) {
    const Status removed = RemoveNode(ctx, *dst.parent, dst.leaf, dst.node->is_dir);
    if (!removed.ok()) {
      TxCommit(ctx);
      return removed;
    }
  }
  const bool is_dir = src.node->is_dir;
  const InodeNum moved = src.node->ino;
  Status step = RemoveDirent(ctx, *src.parent, src.leaf);
  if (step.ok()) {
    step = AddDirent(ctx, *dst.parent, dst.leaf, moved, is_dir);
  }
  if (!step.ok()) {
    TxCommit(ctx);
    return step;
  }
  if (is_dir && src.parent != dst.parent) {
    src.parent->nlink--;
    dst.parent->nlink++;
    PersistInode(ctx, *src.parent);
    PersistInode(ctx, *dst.parent);
  }
  TxCommit(ctx);
  return common::OkStatus();
}

Result<vfs::StatInfo> GenericFs::Stat(ExecContext& ctx, const std::string& path) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "stat");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  auto res = path == "/" ? Resolve(ctx, path, false) : Resolve(ctx, path, true);
  if (!res.ok()) {
    return res.status();
  }
  if (res->node == nullptr) {
    return ErrorCode::kNotFound;
  }
  vfs::StatInfo info;
  info.ino = res->node->ino;
  info.size = res->node->size;
  info.blocks = res->node->extents.MappedBlocks();
  info.nlink = res->node->nlink;
  info.is_dir = res->node->is_dir;
  return info;
}

Result<std::vector<vfs::DirEntry>> GenericFs::ReadDir(ExecContext& ctx,
                                                      const std::string& path) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "stat");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  auto res = path == "/" ? Resolve(ctx, path, false) : Resolve(ctx, path, true);
  if (!res.ok()) {
    return res.status();
  }
  if (res->node == nullptr) {
    return ErrorCode::kNotFound;
  }
  if (!res->node->is_dir) {
    return ErrorCode::kNotDir;
  }
  std::vector<vfs::DirEntry> entries;
  entries.reserve(res->node->dirents.size());
  for (const auto& [name, ref] : res->node->dirents) {
    entries.push_back(vfs::DirEntry{name, ref.ino, ref.is_dir});
    // Reading each entry touches one PM dirent line.
    ctx.clock.Advance(device_->cost().pm_load_seq_ns);
  }
  return entries;
}

// --- Data path --------------------------------------------------------------------

Result<uint64_t> GenericFs::EnsureBlocks(ExecContext& ctx, Inode& inode, uint64_t offset,
                                         uint64_t len, AllocIntent intent,
                                         bool persist_inode) {
  if (len == 0) {
    return uint64_t{0};
  }
  uint64_t first_block = offset / kBlockSize;
  uint64_t last_block = (offset + len - 1) / kBlockSize;
  // Files carrying the alignment xattr hint get whole aligned chunks even for
  // small writes (§3.6: rsync-style small-allocation copies keep alignment).
  if (inode.aligned_hint && intent == AllocIntent::kFileData) {
    first_block = common::RoundDown(first_block, kBlocksPerHugepage);
    last_block = common::RoundDown(last_block, kBlocksPerHugepage) + kBlocksPerHugepage - 1;
  }

  uint64_t newly_allocated = 0;
  uint64_t block = first_block;
  bool meta_dirty = false;
  while (block <= last_block) {
    auto mapping = inode.extents.Lookup(block);
    if (mapping.has_value()) {
      block += mapping->contiguous_blocks;
      continue;
    }
    // Find the end of this hole.
    uint64_t hole_end = block + 1;
    while (hole_end <= last_block && !inode.extents.Lookup(hole_end).has_value()) {
      hole_end++;
    }
    const uint64_t need = hole_end - block;
    auto alloc = AllocBlocksTraced(ctx, inode, need, intent);
    if (!alloc.ok()) {
      return alloc.status();
    }
    uint64_t logical = block;
    for (const Extent& ext : *alloc) {
      inode.extents.Insert(logical, ext.phys_block, ext.num_blocks);
      if (!ZeroOnFault()) {
        // Zero-at-allocation filesystems (NOVA) pay the cost here.
        device_->Zero(ctx, ext.phys_block * kBlockSize, ext.num_blocks * kBlockSize);
      } else {
        // Zero-on-fault filesystems mark these extents unwritten and return
        // zeros for reads until a fault (or write) converts them; the real FS
        // writes no bytes here. Shadow that guarantee by scrubbing the
        // recycled bytes cost-free — the zeroing cost is charged at fault
        // time (§5.4), and reads must never see a previous file's data.
        const std::vector<uint8_t> zeros(ext.num_blocks * kBlockSize, 0);
        device_->StoreUncharged(ext.phys_block * kBlockSize, zeros.data(), zeros.size());
      }
      logical += ext.num_blocks;
      newly_allocated += ext.num_blocks;
    }
    meta_dirty = true;
    block = hole_end;
  }
  if (meta_dirty && persist_inode) {
    TxBegin(ctx);
    PersistInode(ctx, inode);
    TxCommit(ctx);
  }
  return newly_allocated;
}

Result<uint64_t> GenericFs::WriteDataInPlace(ExecContext& ctx, Inode& inode, const void* src,
                                             uint64_t len, uint64_t offset, bool persist_data) {
  auto ensured = EnsureBlocks(ctx, inode, offset, len, AllocIntent::kFileData,
                              /*persist_inode=*/false);
  if (!ensured.ok()) {
    return ensured.status();
  }
  const uint8_t* cursor = static_cast<const uint8_t*>(src);
  uint64_t remaining = len;
  uint64_t pos = offset;
  while (remaining > 0) {
    const uint64_t block = pos / kBlockSize;
    auto mapping = inode.extents.Lookup(block);
    assert(mapping.has_value());
    const uint64_t in_block = pos % kBlockSize;
    const uint64_t run_bytes = mapping->contiguous_blocks * kBlockSize - in_block;
    const uint64_t chunk = std::min(remaining, run_bytes);
    device_->NtStore(ctx, mapping->phys_block * kBlockSize + in_block, cursor, chunk);
    cursor += chunk;
    pos += chunk;
    remaining -= chunk;
  }
  if (persist_data) {
    device_->Fence(ctx);
  }
  const bool grew = offset + len > inode.size;
  if (grew) {
    inode.size = offset + len;
  }
  if (grew || *ensured > 0) {
    // One journal transaction covers the size update and any extent growth.
    CommitInodeUpdate(ctx, inode);
  }
  return len;
}

Result<uint64_t> GenericFs::WriteDataAtomic(ExecContext& ctx, Inode& inode, const void* src,
                                            uint64_t len, uint64_t offset) {
  // Default: in-place, durable but not atomic (used by relaxed-mode FSs that
  // are asked for a durable write; strict FSs override).
  return WriteDataInPlace(ctx, inode, src, len, offset, /*persist_data=*/true);
}

vfs::IoResult GenericFs::Pwrite(ExecContext& ctx, int fd, const void* src, uint64_t len,
                                uint64_t offset) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "pwrite");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  Inode* inode = GetInodeByFd(fd);
  if (inode == nullptr) {
    return ErrorCode::kBadFd;
  }
  if (!fds_[fd].write) {
    return ErrorCode::kInvalidArgument;
  }
  common::SimMutex::Guard file_guard(inode_locks_.LockFor(inode->ino), ctx);
  if (options_.mode == vfs::GuaranteeMode::kStrict) {
    return WriteDataAtomic(ctx, *inode, src, len, offset);
  }
  return WriteDataInPlace(ctx, *inode, src, len, offset, /*persist_data=*/false);
}

vfs::IoResult GenericFs::Append(ExecContext& ctx, int fd, const void* src, uint64_t len) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "append");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  Inode* inode = GetInodeByFd(fd);
  if (inode == nullptr) {
    return ErrorCode::kBadFd;
  }
  common::SimMutex::Guard file_guard(inode_locks_.LockFor(inode->ino), ctx);
  const uint64_t offset = inode->size;
  if (options_.mode == vfs::GuaranteeMode::kStrict) {
    auto written = WriteDataAtomic(ctx, *inode, src, len, offset);
    if (!written.ok()) {
      return written.status();
    }
    return offset;
  }
  auto written = WriteDataInPlace(ctx, *inode, src, len, offset, /*persist_data=*/false);
  if (!written.ok()) {
    return written.status();
  }
  return offset;
}

vfs::IoResult GenericFs::Pread(ExecContext& ctx, int fd, void* dst, uint64_t len,
                               uint64_t offset) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "pread");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  Inode* inode = GetInodeByFd(fd);
  if (inode == nullptr) {
    return ErrorCode::kBadFd;
  }
  if (offset >= inode->size) {
    return uint64_t{0};
  }
  len = std::min(len, inode->size - offset);
  uint8_t* cursor = static_cast<uint8_t*>(dst);
  uint64_t remaining = len;
  uint64_t pos = offset;
  while (remaining > 0) {
    const uint64_t block = pos / kBlockSize;
    const uint64_t in_block = pos % kBlockSize;
    auto mapping = inode->extents.Lookup(block);
    uint64_t chunk;
    if (mapping.has_value()) {
      const uint64_t run_bytes = mapping->contiguous_blocks * kBlockSize - in_block;
      chunk = std::min(remaining, run_bytes);
      const Status load =
          device_->Load(ctx, mapping->phys_block * kBlockSize + in_block, cursor, chunk);
      if (!load.ok()) {
        // POSIX short read: report the bytes successfully delivered before the
        // poisoned line alongside the error.
        return vfs::IoResult::Partial(pos - offset, load);
      }
    } else {
      chunk = std::min(remaining, kBlockSize - in_block);
      std::memset(cursor, 0, chunk);  // hole reads as zeros
    }
    cursor += chunk;
    pos += chunk;
    remaining -= chunk;
  }
  return len;
}

Status GenericFs::Fsync(ExecContext& ctx, int fd) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "fsync");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  Inode* inode = GetInodeByFd(fd);
  if (inode == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  ctx.counters.fsync_count++;
  common::SimMutex::Guard file_guard(inode_locks_.LockFor(inode->ino), ctx);
  RETURN_IF_ERROR(FsyncImpl(ctx, *inode));
  device_->Fence(ctx);
  return common::OkStatus();
}

Status GenericFs::Fallocate(ExecContext& ctx, int fd, uint64_t offset, uint64_t len) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "fallocate");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  Inode* inode = GetInodeByFd(fd);
  if (inode == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  common::SimMutex::Guard file_guard(inode_locks_.LockFor(inode->ino), ctx);
  auto ensured = EnsureBlocks(ctx, *inode, offset, len, AllocIntent::kFileData,
                              /*persist_inode=*/false);
  if (!ensured.ok()) {
    return ensured.status();
  }
  if (offset + len > inode->size) {
    inode->size = offset + len;
  }
  if (*ensured > 0 || offset + len >= inode->size) {
    CommitInodeUpdate(ctx, *inode);
  }
  return common::OkStatus();
}

Status GenericFs::Ftruncate(ExecContext& ctx, int fd, uint64_t size) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "ftruncate");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  Inode* inode = GetInodeByFd(fd);
  if (inode == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  common::SimMutex::Guard file_guard(inode_locks_.LockFor(inode->ino), ctx);
  if (size < inode->size) {
    TxBegin(ctx);
    FreeFileBlocks(ctx, *inode, common::BytesToBlocks(size));
    // POSIX: bytes past the new EOF must read back as zeros if the file later
    // grows again. Whole blocks were just freed, but the retained partial
    // tail block still carries stale bytes — scrub them through the journaled
    // write path so a crash mid-truncate can still roll the old tail back.
    const uint64_t tail = size % kBlockSize;
    if (tail != 0 && size < inode->size) {
      auto mapping = inode->extents.Lookup(size / kBlockSize);
      if (mapping.has_value()) {
        const uint64_t scrub = std::min(kBlockSize - tail, inode->size - size);
        const std::vector<uint8_t> zeros(scrub, 0);
        TxMetaWrite(ctx, inode->ino, mapping->phys_block * kBlockSize + tail, zeros.data(),
                    scrub);
      }
    }
    inode->size = size;
    PersistInode(ctx, *inode);
    TxCommit(ctx);
  } else if (size > inode->size) {
    // Sparse grow: no allocation (LMDB's on-demand style).
    inode->size = size;
    CommitInodeUpdate(ctx, *inode);
  }
  return common::OkStatus();
}

// --- xattr -------------------------------------------------------------------------

Status GenericFs::SetXattr(ExecContext& ctx, const std::string& path, const std::string& name,
                           const std::string& value) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "setxattr");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  ASSIGN_OR_RETURN(ResolveResult res, Resolve(ctx, path, /*want_parent=*/true));
  if (res.node == nullptr) {
    return Status(ErrorCode::kNotFound);
  }
  const std::string serialized = name + "=" + value;
  if (serialized.size() > kInodeXattrBytes) {
    return Status(ErrorCode::kInvalidArgument);
  }
  res.node->xattr = serialized;
  if (name == "user.winefs.aligned") {
    res.node->aligned_hint = (value == "1");
  }
  CommitInodeUpdate(ctx, *res.node);
  return common::OkStatus();
}

Result<std::string> GenericFs::GetXattr(ExecContext& ctx, const std::string& path,
                                        const std::string& name) {
  ChargeSyscall(ctx);
  obs::OpScope op_scope(ctx, Name(), "getxattr");
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  ASSIGN_OR_RETURN(ResolveResult res, Resolve(ctx, path, /*want_parent=*/true));
  if (res.node == nullptr) {
    return ErrorCode::kNotFound;
  }
  const size_t eq = res.node->xattr.find('=');
  if (eq == std::string::npos || res.node->xattr.substr(0, eq) != name) {
    return ErrorCode::kNoData;
  }
  return res.node->xattr.substr(eq + 1);
}

// --- mmap --------------------------------------------------------------------------

Result<InodeNum> GenericFs::InodeOf(ExecContext& ctx, int fd) {
  (void)ctx;
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  Inode* inode = GetInodeByFd(fd);
  if (inode == nullptr) {
    return ErrorCode::kBadFd;
  }
  return inode->ino;
}

Result<uint64_t> GenericFs::SizeOf(ExecContext& ctx, int fd) {
  (void)ctx;
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  Inode* inode = GetInodeByFd(fd);
  if (inode == nullptr) {
    return ErrorCode::kBadFd;
  }
  return inode->size;
}

Result<vmem::FaultHandler::FaultMapping> GenericFs::HandleFault(ExecContext& ctx, uint64_t ino,
                                                                uint64_t page_offset,
                                                                bool write) {
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  Inode* inode = GetInode(ino);
  if (inode == nullptr) {
    return ErrorCode::kNotFound;
  }
  const uint64_t chunk_offset = common::RoundDown(page_offset, common::kHugepageSize);
  const uint64_t chunk_block = chunk_offset / kBlockSize;

  // Hugepage mapping requires the whole 2 MiB chunk inside i_size.
  if (chunk_offset + common::kHugepageSize <= common::RoundUp(inode->size, kBlockSize)) {
    auto mapping = inode->extents.Lookup(chunk_block);
    if (mapping.has_value() && mapping->contiguous_blocks >= kBlocksPerHugepage &&
        common::IsAligned(mapping->phys_block, kBlocksPerHugepage)) {
      if (ZeroOnFault() && inode->zeroed_chunks.insert(chunk_block).second) {
        // Zero-on-fault filesystems (ext4-DAX) zero fallocate's unwritten
        // extents in the fault handler — the whole 2 MiB on a PMD fault.
        // Cost-only: the bytes may already hold syscall-written data that a
        // real FS would know is not "unwritten".
        ctx.clock.Advance(device_->cost().SeqWriteBytes(common::kHugepageSize));
        ctx.counters.pm_write_bytes += common::kHugepageSize;
      }
      return FaultMapping{mapping->phys_block * kBlockSize, /*huge=*/true};
    }
    if (!mapping.has_value() && write && AllocatesHugeOnFault()) {
      // Hugepage-allocating fault (WineFS): ask for the whole chunk at once.
      auto alloc = AllocBlocksTraced(ctx, *inode, kBlocksPerHugepage, AllocIntent::kFileData);
      if (alloc.ok() && alloc->size() == 1 && (*alloc)[0].IsAligned()) {
        const Extent ext = (*alloc)[0];
        inode->extents.Insert(chunk_block, ext.phys_block, ext.num_blocks);
        device_->Zero(ctx, ext.phys_block * kBlockSize, common::kHugepageSize);
        CommitInodeUpdate(ctx, *inode);
        return FaultMapping{ext.phys_block * kBlockSize, /*huge=*/true};
      }
      if (alloc.ok()) {
        // Could not get an aligned chunk; keep the blocks for base mappings.
        uint64_t logical = chunk_block;
        for (const Extent& ext : *alloc) {
          inode->extents.Insert(logical, ext.phys_block, ext.num_blocks);
          device_->Zero(ctx, ext.phys_block * kBlockSize, ext.num_blocks * kBlockSize);
          logical += ext.num_blocks;
        }
        CommitInodeUpdate(ctx, *inode);
      }
    }
  }

  // Base page path.
  const uint64_t page_block = page_offset / kBlockSize;
  auto mapping = inode->extents.Lookup(page_block);
  bool fresh = false;
  if (!mapping.has_value()) {
    if (page_offset >= common::RoundUp(inode->size, kBlockSize)) {
      return ErrorCode::kInvalidArgument;  // beyond EOF: SIGBUS
    }
    auto alloc = AllocBlocksTraced(ctx, *inode, 1, AllocIntent::kFileData);
    if (!alloc.ok()) {
      return alloc.status();
    }
    inode->extents.Insert(page_block, (*alloc)[0].phys_block, 1);
    if (!ZeroOnFault()) {
      device_->Zero(ctx, (*alloc)[0].phys_block * kBlockSize, kBlockSize);
    }
    CommitInodeUpdate(ctx, *inode);
    mapping = inode->extents.Lookup(page_block);
    fresh = true;
  }
  if (ZeroOnFault()) {
    // ext4-DAX-style: zeroing happens in the fault handler, for fresh blocks
    // and for fallocate's unwritten extents alike (paper §5.4: this is what
    // makes ext4-DAX page faults more expensive than NOVA's). Real zeroing
    // only for fresh blocks; unwritten-extent zeroing is cost-only.
    if (fresh) {
      device_->Zero(ctx, mapping->phys_block * kBlockSize, kBlockSize);
    } else {
      ctx.clock.Advance(device_->cost().zero_4k_ns);
      ctx.counters.pm_write_bytes += kBlockSize;
    }
  }
  (void)write;
  return FaultMapping{mapping->phys_block * kBlockSize, /*huge=*/false};
}

// --- Introspection --------------------------------------------------------------------

uint64_t GenericFs::DramIndexBytes() const {
  std::lock_guard<DomainMutex> guard(dram_mu_);
  uint64_t bytes = 0;
  for (const auto& [ino, inode] : inodes_) {
    bytes += 128;  // base inode object
    bytes += inode->dirents.size() * 64;
    bytes += inode->extents.FragmentCount() * 48;
  }
  bytes += free_inos_.size() * 8;
  return bytes;
}

const Inode* GenericFs::FindInode(InodeNum ino) const {
  std::lock_guard<DomainMutex> guard(dram_mu_);
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : it->second.get();
}

}  // namespace fscore
