// Offline consistency checker: validates the on-PM metadata of any
// GenericFs-format filesystem directly from the device image — superblock
// sanity, inode-table magics, extent-record bounds, cross-inode extent
// overlaps, directory-entry referential integrity, and link counts.
#ifndef SRC_FS_FSCORE_FSCK_H_
#define SRC_FS_FSCORE_FSCK_H_

#include <string>
#include <vector>

#include "src/pmem/device.h"

namespace fscore {

struct FsckReport {
  uint64_t inodes_checked = 0;
  uint64_t extents_checked = 0;
  uint64_t dirents_checked = 0;
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
  std::string Summary() const;
};

// Reads the filesystem image from `device` (no FileSystem object needed) and
// verifies its structural invariants.
FsckReport CheckImage(pmem::PmemDevice& device);

}  // namespace fscore

#endif  // SRC_FS_FSCORE_FSCK_H_
