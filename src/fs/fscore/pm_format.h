// On-PM metadata structures shared by the filesystem implementations. All are
// PODs written through PmemDevice so that mount-time recovery and the
// CrashMonkey-style harness operate on real bytes.
#ifndef SRC_FS_FSCORE_PM_FORMAT_H_
#define SRC_FS_FSCORE_PM_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "src/common/units.h"

namespace fscore {

inline constexpr uint32_t kSuperMagic = 0x57494e46;  // "WINF"
inline constexpr uint32_t kInodeMagic = 0x494e4f44;  // "INOD"

// Superblock, one per filesystem instance, at device block 0.
struct PmSuperblock {
  uint32_t magic = 0;
  uint32_t version = 1;
  uint64_t total_blocks = 0;
  uint64_t data_start_block = 0;   // first block of the data area
  uint64_t inode_table_block = 0;  // start of the inode region
  uint64_t max_inodes = 0;
  uint64_t journal_start_block = 0;
  uint64_t journal_blocks = 0;
  uint32_t num_cpus = 0;           // per-CPU partitioning (WineFS, NOVA)
  uint32_t clean_unmount = 0;      // 1 = DRAM structures were serialized
  uint64_t serialized_state_block = 0;  // where the unmount snapshot lives
  uint64_t serialized_state_bytes = 0;
};
static_assert(std::is_trivially_copyable_v<PmSuperblock>);
static_assert(sizeof(PmSuperblock) <= common::kBlockSize);

// Byte offset of the backup superblock copy inside block 0. Far enough from
// the primary that a single 256 B uncorrectable media error can never take
// out both; Mount falls back to it and rewrites the primary (a full-block
// store re-ECCs the media and clears the poison).
inline constexpr uint64_t kSuperBackupOffset = common::kBlockSize / 2;
static_assert(kSuperBackupOffset >= sizeof(PmSuperblock) + 256);

// Packed extent: 48-bit physical block, 16-bit length (max 65535 blocks =
// 256 MiB per extent; longer allocations are split).
struct PmExtent {
  uint64_t logical_block = 0;
  uint64_t packed = 0;

  static uint64_t Pack(uint64_t phys_block, uint64_t len) {
    return (phys_block & 0xffffffffffffull) | (len << 48);
  }
  uint64_t phys_block() const { return packed & 0xffffffffffffull; }
  uint64_t len() const { return packed >> 48; }
  bool empty() const { return packed == 0; }
};
static_assert(sizeof(PmExtent) == 16);
inline constexpr uint64_t kMaxExtentLen = 0xffff;

// On-PM inode, 256 bytes. Fixed-size array entries in the inode region.
inline constexpr uint32_t kInlineExtents = 7;
inline constexpr uint32_t kInodeXattrBytes = 48;

struct PmInode {
  uint32_t magic = 0;  // kInodeMagic when in use, 0 when free
  uint8_t is_dir = 0;
  uint8_t aligned_hint = 0;  // WineFS xattr-backed alignment hint
  uint16_t xattr_len = 0;
  uint64_t ino = 0;
  uint64_t size = 0;
  uint32_t nlink = 0;
  uint32_t extent_count = 0;
  uint64_t indirect_block = 0;  // phys block of PmIndirectBlock chain, 0 if none
  PmExtent inline_extents[kInlineExtents] = {};
  char xattr[kInodeXattrBytes] = {};  // "key=value" alignment attribute
  uint8_t pad[256 - 4 - 1 - 1 - 2 - 8 - 8 - 4 - 4 - 8 - 16 * kInlineExtents -
              kInodeXattrBytes] = {};
};
static_assert(sizeof(PmInode) == 256);
static_assert(std::is_trivially_copyable_v<PmInode>);
inline constexpr uint64_t kInodesPerBlock = common::kBlockSize / sizeof(PmInode);

// Indirect extent block: continues an inode's extent list.
inline constexpr uint32_t kExtentsPerIndirect =
    (common::kBlockSize - 16) / sizeof(PmExtent);

struct PmIndirectBlock {
  uint64_t next_block = 0;  // phys block of next indirect block, 0 = end
  uint32_t count = 0;
  uint32_t pad = 0;
  PmExtent extents[kExtentsPerIndirect] = {};
};
static_assert(sizeof(PmIndirectBlock) <= common::kBlockSize);

// Directory entry, 64 bytes, stored in a directory's data blocks.
inline constexpr uint32_t kMaxNameLen = 53;

struct PmDirent {
  uint64_t ino = 0;
  uint8_t in_use = 0;
  uint8_t is_dir = 0;
  uint8_t name_len = 0;
  char name[kMaxNameLen] = {};

  void SetName(const char* str, size_t len) {
    name_len = static_cast<uint8_t>(len);
    std::memcpy(name, str, len);
  }
};
static_assert(sizeof(PmDirent) == 64);
inline constexpr uint64_t kDirentsPerBlock = common::kBlockSize / sizeof(PmDirent);

}  // namespace fscore

#endif  // SRC_FS_FSCORE_PM_FORMAT_H_
