#include "src/fs/fscore/fsck.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/common/exec_context.h"
#include "src/common/units.h"
#include "src/fs/fscore/pm_format.h"

namespace fscore {

using common::kBlockSize;

namespace {

struct ScannedInode {
  PmInode pm;
  std::vector<PmExtent> extents;       // live records only
  std::vector<uint64_t> chain_blocks;  // indirect blocks
};

void Append(FsckReport& report, const std::string& message) {
  if (report.errors.size() < 100) {
    report.errors.push_back(message);
  }
}

}  // namespace

std::string FsckReport::Summary() const {
  std::ostringstream out;
  out << "fsck: " << inodes_checked << " inodes, " << extents_checked << " extents, "
      << dirents_checked << " dirents, " << errors.size() << " errors";
  for (const std::string& error : errors) {
    out << "\n  " << error;
  }
  return out.str();
}

FsckReport CheckImage(pmem::PmemDevice& device) {
  FsckReport report;
  common::ExecContext ctx;  // scratch; fsck cost is not part of any experiment

  // Primary superblock, falling back to the backup copy on a media error or
  // bad magic. Any problem with the primary is reported even when the backup
  // rescues the scan — the caller must know the image needs repair.
  PmSuperblock sb;
  auto primary = device.TryLoadStruct<PmSuperblock>(ctx, 0);
  if (!primary.ok()) {
    Append(report, "superblock: media error (EIO)");
  } else if (primary->magic != kSuperMagic) {
    Append(report, "superblock magic invalid");
  }
  if (primary.ok() && primary->magic == kSuperMagic) {
    sb = *primary;
  } else {
    auto backup = device.TryLoadStruct<PmSuperblock>(ctx, kSuperBackupOffset);
    if (!backup.ok()) {
      Append(report, "backup superblock: media error (EIO)");
      return report;
    }
    if (backup->magic != kSuperMagic) {
      Append(report, "backup superblock magic invalid");
      return report;
    }
    sb = *backup;
  }
  if (sb.data_start_block >= sb.total_blocks ||
      sb.inode_table_block >= sb.data_start_block ||
      sb.total_blocks * kBlockSize > device.size()) {
    Append(report, "superblock geometry out of range");
    return report;
  }

  // Poisoned journal blocks are a mount-time hazard (recovery may refuse the
  // image); surface them here so an operator sees the problem offline.
  if (sb.journal_blocks > 0 &&
      !device.ReadStatus(sb.journal_start_block * kBlockSize,
                         sb.journal_blocks * kBlockSize)
           .ok()) {
    Append(report, "journal region: media error (EIO)");
  }

  // Pass 1: inodes and their extent records.
  std::map<uint64_t, ScannedInode> inodes;
  for (uint64_t ino = 1; ino < sb.max_inodes; ino++) {
    const uint64_t off = sb.inode_table_block * kBlockSize + ino * sizeof(PmInode);
    auto loaded = device.TryLoadStruct<PmInode>(ctx, off);
    if (!loaded.ok()) {
      Append(report, "inode " + std::to_string(ino) + ": media error (EIO)");
      continue;
    }
    PmInode pm = *loaded;
    if (pm.magic == 0) {
      continue;
    }
    if (pm.magic != kInodeMagic) {
      Append(report, "inode " + std::to_string(ino) + ": bad magic");
      continue;
    }
    report.inodes_checked++;
    ScannedInode scanned;
    scanned.pm = pm;
    if (pm.ino != ino) {
      Append(report, "inode " + std::to_string(ino) + ": self-number mismatch");
    }
    uint32_t slot = 0;
    auto take = [&](const PmExtent& ext) {
      if (ext.packed != 0) {
        scanned.extents.push_back(ext);
        report.extents_checked++;
        if (ext.phys_block() < sb.data_start_block ||
            ext.phys_block() + ext.len() > sb.total_blocks) {
          Append(report, "inode " + std::to_string(ino) + ": extent out of data area");
        }
        if (ext.len() == 0) {
          Append(report, "inode " + std::to_string(ino) + ": zero-length extent");
        }
      }
      slot++;
    };
    for (uint32_t i = 0; i < kInlineExtents && slot < pm.extent_count; i++) {
      take(pm.inline_extents[i]);
    }
    uint64_t indirect = pm.indirect_block;
    std::set<uint64_t> chain_seen;
    while (indirect != 0) {
      if (indirect < sb.data_start_block || indirect >= sb.total_blocks) {
        Append(report, "inode " + std::to_string(ino) + ": indirect block out of range");
        break;
      }
      if (!chain_seen.insert(indirect).second) {
        Append(report, "inode " + std::to_string(ino) + ": indirect chain cycle");
        break;
      }
      scanned.chain_blocks.push_back(indirect);
      PmIndirectBlock blk;
      if (!device.Load(ctx, indirect * kBlockSize, &blk, sizeof(blk)).ok()) {
        Append(report, "inode " + std::to_string(ino) + ": indirect block media error (EIO)");
        break;
      }
      for (uint32_t i = 0; i < kExtentsPerIndirect && slot < pm.extent_count; i++) {
        take(blk.extents[i]);
      }
      indirect = blk.next_block;
    }
    inodes[ino] = std::move(scanned);
  }
  if (inodes.find(1) == inodes.end()) {
    Append(report, "root inode missing");
    return report;
  }
  if (inodes[1].pm.is_dir == 0) {
    Append(report, "root inode is not a directory");
  }

  // Pass 2: no extent (or chain block) may be claimed twice.
  std::vector<std::pair<uint64_t, std::pair<uint64_t, uint64_t>>> claims;  // start,(len,ino)
  for (const auto& [ino, scanned] : inodes) {
    for (const PmExtent& ext : scanned.extents) {
      claims.push_back({ext.phys_block(), {ext.len(), ino}});
    }
    for (uint64_t block : scanned.chain_blocks) {
      claims.push_back({block, {1, ino}});
    }
  }
  std::sort(claims.begin(), claims.end());
  for (size_t i = 1; i < claims.size(); i++) {
    if (claims[i].first < claims[i - 1].first + claims[i - 1].second.first) {
      Append(report,
             "blocks claimed twice: inode " + std::to_string(claims[i - 1].second.second) +
                 " and inode " + std::to_string(claims[i].second.second) + " at block " +
                 std::to_string(claims[i].first));
    }
  }

  // Pass 3: directory entries reference live inodes of the right kind.
  std::map<uint64_t, uint32_t> found_links;
  for (const auto& [ino, scanned] : inodes) {
    if (scanned.pm.is_dir == 0) {
      continue;
    }
    for (const PmExtent& ext : scanned.extents) {
      for (uint64_t b = 0; b < ext.len(); b++) {
        const uint64_t block_off = (ext.phys_block() + b) * kBlockSize;
        for (uint64_t d = 0; d < kDirentsPerBlock; d++) {
          auto de_loaded =
              device.TryLoadStruct<PmDirent>(ctx, block_off + d * sizeof(PmDirent));
          if (!de_loaded.ok()) {
            Append(report, "inode " + std::to_string(ino) +
                               ": directory block media error (EIO)");
            break;
          }
          PmDirent de = *de_loaded;
          if (de.in_use == 0) {
            continue;
          }
          report.dirents_checked++;
          auto it = inodes.find(de.ino);
          if (it == inodes.end()) {
            Append(report, "dirent '" + std::string(de.name, de.name_len) +
                               "' references free inode " + std::to_string(de.ino));
            continue;
          }
          if ((it->second.pm.is_dir != 0) != (de.is_dir != 0)) {
            Append(report, "dirent '" + std::string(de.name, de.name_len) +
                               "': type disagrees with inode " + std::to_string(de.ino));
          }
          found_links[de.ino]++;
        }
      }
    }
  }
  // Pass 4: every non-root inode must be reachable by at least one dirent.
  for (const auto& [ino, scanned] : inodes) {
    if (ino == 1) {
      continue;
    }
    if (found_links.find(ino) == found_links.end()) {
      Append(report, "inode " + std::to_string(ino) + " is orphaned (no dirent)");
    }
  }
  return report;
}

}  // namespace fscore
