// Online scrub/fsck daemon.
//
// A background thread (one extra SimRunner simulated thread) that walks the
// checksummed metadata regions of a *mounted* filesystem — superblock,
// journal, inode table — in fixed-size windows while foreground traffic runs.
// Each step probes media health (cost-free ReadStatus, the same probe
// mount-time recovery uses) and, for windows it can interpret, structural
// sanity (superblock magic, in-use inode magics). Injected corruption is
// registered via NoteInjected; the daemon reports detection latency
// (mean time to detect, simulated ns) through the gauges pipeline, so benches
// get an MTTD time series alongside the foreground metrics.
#ifndef SRC_FS_FSCORE_SCRUB_H_
#define SRC_FS_FSCORE_SCRUB_H_

#include <cstdint>
#include <vector>

#include "src/common/exec_context.h"
#include "src/fs/fscore/generic_fs.h"
#include "src/obs/gauges.h"

namespace fscore {

class ScrubDaemon : public obs::GaugeProvider {
 public:
  struct Config {
    // Metadata bytes verified per Step (one scrub window).
    uint64_t window_bytes = 16 * 1024;
    // Simulated idle gap charged after each window, pacing the daemon so it
    // does not monopolize device bandwidth against foreground threads.
    uint64_t step_gap_ns = 50'000;
  };

  // Two overloads instead of a defaulted Config argument: a nested aggregate
  // with member initializers cannot be a default argument inside its own
  // enclosing class.
  explicit ScrubDaemon(GenericFs* fs);
  ScrubDaemon(GenericFs* fs, Config config);

  // One scrub window; safe to call forever (the cursor wraps). Designed as a
  // SimRunner OpFn body for the background thread. Always returns true.
  bool Step(common::ExecContext& ctx);

  // Registers injected corruption at simulated time `inject_ns` so the next
  // scrub pass over [offset, offset+len) is attributed a detection latency.
  void NoteInjected(uint64_t offset, uint64_t len, uint64_t inject_ns);

  uint64_t passes() const { return passes_; }
  uint64_t bytes_scanned() const { return bytes_scanned_; }
  uint64_t media_detections() const { return media_detections_; }
  uint64_t structural_errors() const { return structural_errors_; }
  // Mean detection latency over injected corruptions found so far (0 if none).
  double MeanTimeToDetectNs() const;

  // Gauges: scrub_passes, scrub_bytes_scanned, scrub_detections,
  // scrub_mttd_ns.
  void SampleGauges(obs::GaugeSample& out) override;

 private:
  struct Injected {
    uint64_t offset = 0;
    uint64_t len = 0;
    uint64_t inject_ns = 0;
    bool detected = false;
    uint64_t detect_ns = 0;
  };

  uint64_t MetadataBytes() const;

  GenericFs* fs_;
  Config config_;
  uint64_t cursor_ = 0;  // next metadata byte to scrub
  uint64_t passes_ = 0;
  uint64_t bytes_scanned_ = 0;
  uint64_t media_detections_ = 0;
  uint64_t structural_errors_ = 0;
  std::vector<Injected> injected_;
};

}  // namespace fscore

#endif  // SRC_FS_FSCORE_SCRUB_H_
