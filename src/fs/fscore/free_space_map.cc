#include "src/fs/fscore/free_space_map.h"

#include <cassert>

#include "src/common/units.h"

namespace fscore {

using common::kBlocksPerHugepage;

void FreeSpaceMap::Release(uint64_t start_block, uint64_t len) {
  if (len == 0) {
    return;
  }
  free_blocks_ += len;
  auto next = free_.lower_bound(start_block);
  // Merge with predecessor.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    assert(prev->first + prev->second <= start_block && "double free");
    if (prev->first + prev->second == start_block) {
      prev->second += len;
      if (next != free_.end() && prev->first + prev->second == next->first) {
        prev->second += next->second;
        free_.erase(next);
      }
      return;
    }
  }
  // Merge with successor.
  if (next != free_.end()) {
    assert(start_block + len <= next->first && "double free");
    if (start_block + len == next->first) {
      const uint64_t merged_len = len + next->second;
      free_.erase(next);
      free_[start_block] = merged_len;
      return;
    }
  }
  free_[start_block] = len;
}

void FreeSpaceMap::Take(std::map<uint64_t, uint64_t>::iterator it, uint64_t offset_in_run,
                        uint64_t len) {
  const uint64_t run_start = it->first;
  const uint64_t run_len = it->second;
  assert(offset_in_run + len <= run_len);
  free_.erase(it);
  if (offset_in_run > 0) {
    free_[run_start] = offset_in_run;
  }
  const uint64_t tail = run_len - offset_in_run - len;
  if (tail > 0) {
    free_[run_start + offset_in_run + len] = tail;
  }
  free_blocks_ -= len;
}

void FreeSpaceMap::ReserveRange(uint64_t start_block, uint64_t len) {
  auto it = free_.upper_bound(start_block);
  assert(it != free_.begin());
  --it;
  assert(start_block >= it->first && start_block + len <= it->first + it->second &&
         "range not free");
  Take(it, start_block - it->first, len);
}

std::optional<Extent> FreeSpaceMap::AllocFirstFit(uint64_t len, uint64_t goal) {
  // Search from the goal forward, then wrap.
  for (int pass = 0; pass < 2; pass++) {
    auto it = pass == 0 ? free_.lower_bound(goal) : free_.begin();
    auto end = pass == 0 ? free_.end() : free_.lower_bound(goal);
    for (; it != end; ++it) {
      if (it->second >= len) {
        const Extent ext{it->first, len};
        Take(it, 0, len);
        return ext;
      }
    }
  }
  return std::nullopt;
}

std::optional<Extent> FreeSpaceMap::AllocFirstFitPreferAligned(uint64_t len, uint64_t goal) {
  for (int pass = 0; pass < 2; pass++) {
    auto it = pass == 0 ? free_.lower_bound(goal) : free_.begin();
    auto end = pass == 0 ? free_.end() : free_.lower_bound(goal);
    for (; it != end; ++it) {
      if (it->second < len) {
        continue;
      }
      const uint64_t run_start = it->first;
      const uint64_t aligned = common::RoundUp(run_start, kBlocksPerHugepage);
      if (aligned + len <= run_start + it->second) {
        const Extent ext{aligned, len};
        Take(it, aligned - run_start, len);
        return ext;
      }
      const Extent ext{run_start, len};
      Take(it, 0, len);
      return ext;
    }
  }
  return std::nullopt;
}

std::optional<Extent> FreeSpaceMap::AllocBestFit(uint64_t len) {
  auto best = free_.end();
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= len && (best == free_.end() || it->second < best->second)) {
      best = it;
      if (best->second == len) {
        break;
      }
    }
  }
  if (best == free_.end()) {
    return std::nullopt;
  }
  const Extent ext{best->first, len};
  Take(best, 0, len);
  return ext;
}

std::optional<Extent> FreeSpaceMap::AllocAligned(uint64_t len) {
  assert(len <= kBlocksPerHugepage);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const uint64_t aligned = common::RoundUp(it->first, kBlocksPerHugepage);
    if (aligned + len <= it->first + it->second) {
      const Extent ext{aligned, len};
      Take(it, aligned - it->first, len);
      return ext;
    }
  }
  return std::nullopt;
}

std::optional<Extent> FreeSpaceMap::AllocAny(uint64_t len) {
  if (free_.empty()) {
    return std::nullopt;
  }
  // Prefer an exact-ish small run to avoid breaking big ones.
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= len && it->second < kBlocksPerHugepage) {
      const Extent ext{it->first, len};
      Take(it, 0, len);
      return ext;
    }
  }
  return AllocFirstFit(len, 0);
}

bool FreeSpaceMap::ContainsRange(uint64_t start_block, uint64_t len) const {
  auto it = free_.upper_bound(start_block);
  if (it == free_.begin()) {
    return false;
  }
  --it;
  return start_block >= it->first && start_block + len <= it->first + it->second;
}

uint64_t FreeSpaceMap::CountAlignedFreeRegions() const {
  uint64_t count = 0;
  for (const auto& [start, len] : free_) {
    const uint64_t aligned = common::RoundUp(start, kBlocksPerHugepage);
    if (aligned + kBlocksPerHugepage <= start + len) {
      count += (start + len - aligned) / kBlocksPerHugepage;
    }
  }
  return count;
}

uint64_t FreeSpaceMap::LargestRun() const {
  uint64_t largest = 0;
  for (const auto& [start, len] : free_) {
    largest = std::max(largest, len);
  }
  return largest;
}

FreeSpaceMap::RunLengthHistogram FreeSpaceMap::RunHistogram() const {
  RunLengthHistogram hist;
  for (const auto& [start, len] : free_) {
    (void)start;
    if (len < 16) {
      hist.lt_16++;
    } else if (len < 128) {
      hist.lt_128++;
    } else if (len < 512) {
      hist.lt_512++;
    } else {
      hist.ge_512++;
    }
  }
  return hist;
}

}  // namespace fscore
