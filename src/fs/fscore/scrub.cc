#include "src/fs/fscore/scrub.h"

#include <algorithm>
#include <cstring>

#include "src/common/units.h"
#include "src/fs/fscore/pm_format.h"

namespace fscore {

using common::kBlockSize;

ScrubDaemon::ScrubDaemon(GenericFs* fs) : ScrubDaemon(fs, Config{}) {}

ScrubDaemon::ScrubDaemon(GenericFs* fs, Config config) : fs_(fs), config_(config) {}

uint64_t ScrubDaemon::MetadataBytes() const {
  // Superblock + journal + inode table: everything before the data area.
  return fs_->data_start_block() * kBlockSize;
}

bool ScrubDaemon::Step(common::ExecContext& ctx) {
  const uint64_t meta_bytes = MetadataBytes();
  if (meta_bytes == 0) {
    ctx.clock.Advance(config_.step_gap_ns);
    return true;
  }
  if (cursor_ >= meta_bytes) {
    cursor_ = 0;
  }
  const uint64_t start = cursor_;
  const uint64_t len = std::min(config_.window_bytes, meta_bytes - start);
  pmem::PmemDevice& dev = fs_->device();

  if (!dev.ReadStatus(start, len).ok()) {
    // Media error inside this window. Attribute detection latency to any
    // registered injection the window overlaps (once per injection).
    for (Injected& inj : injected_) {
      if (!inj.detected && inj.offset < start + len && start < inj.offset + inj.len) {
        inj.detected = true;
        inj.detect_ns = ctx.clock.NowNs();
        media_detections_++;
      }
    }
  } else {
    // Healthy media: read the window (charged like any foreground read — the
    // daemon competes for device bandwidth) and verify what it can interpret.
    std::vector<uint8_t> buf(len);
    (void)dev.Load(ctx, start, buf.data(), len);
    if (start == 0 && len >= sizeof(PmSuperblock)) {
      PmSuperblock sb;
      std::memcpy(&sb, buf.data(), sizeof(sb));
      if (sb.magic != kSuperMagic) {
        structural_errors_++;
      }
    }
    const uint64_t itab_begin = fs_->inode_table_block() * kBlockSize;
    const uint64_t itab_end = fs_->data_start_block() * kBlockSize;
    uint64_t slot = std::max(start, itab_begin);
    slot += (sizeof(PmInode) - slot % sizeof(PmInode)) % sizeof(PmInode);
    for (; slot + sizeof(PmInode) <= std::min(start + len, itab_end);
         slot += sizeof(PmInode)) {
      PmInode inode;
      std::memcpy(&inode, buf.data() + (slot - start), sizeof(inode));
      // A slot is either free (magic 0) or a live inode (kInodeMagic);
      // anything else is structural corruption a full fsck would flag.
      if (inode.magic != 0 && inode.magic != kInodeMagic) {
        structural_errors_++;
      }
    }
  }

  bytes_scanned_ += len;
  cursor_ = start + len;
  if (cursor_ >= meta_bytes) {
    cursor_ = 0;
    passes_++;
  }
  ctx.clock.Advance(config_.step_gap_ns);
  return true;
}

void ScrubDaemon::NoteInjected(uint64_t offset, uint64_t len, uint64_t inject_ns) {
  injected_.push_back(Injected{offset, len, inject_ns, false, 0});
}

double ScrubDaemon::MeanTimeToDetectNs() const {
  double sum = 0;
  uint64_t n = 0;
  for (const Injected& inj : injected_) {
    if (inj.detected) {
      sum += static_cast<double>(inj.detect_ns - inj.inject_ns);
      n++;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

void ScrubDaemon::SampleGauges(obs::GaugeSample& out) {
  out.Set("scrub_passes", static_cast<double>(passes_));
  out.Set("scrub_bytes_scanned", static_cast<double>(bytes_scanned_));
  out.Set("scrub_detections", static_cast<double>(media_detections_));
  out.Set("scrub_structural_errors", static_cast<double>(structural_errors_));
  out.Set("scrub_mttd_ns", MeanTimeToDetectNs());
}

}  // namespace fscore
