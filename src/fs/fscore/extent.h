// Extents and per-file logical->physical extent maps.
#ifndef SRC_FS_FSCORE_EXTENT_H_
#define SRC_FS_FSCORE_EXTENT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/common/units.h"

namespace fscore {

// A run of physically contiguous 4 KiB blocks.
struct Extent {
  uint64_t phys_block = 0;
  uint64_t num_blocks = 0;

  uint64_t end() const { return phys_block + num_blocks; }
  bool operator==(const Extent&) const = default;

  // Hugepage-capable: 2 MiB-aligned start and at least 2 MiB long.
  bool IsAligned() const {
    return common::IsAligned(phys_block, common::kBlocksPerHugepage) &&
           num_blocks >= common::kBlocksPerHugepage;
  }
};

// Maps a file's logical blocks to physical extents. DRAM-side mirror of the
// on-PM extent list; kept sorted and merged.
class ExtentMap {
 public:
  struct Mapping {
    uint64_t phys_block = 0;
    uint64_t contiguous_blocks = 0;  // run length starting at the queried block
  };

  // Inserts [logical, logical+len) -> phys run. Overlapping ranges must be
  // removed first (callers punch before remap on CoW).
  void Insert(uint64_t logical_block, uint64_t phys_block, uint64_t len);

  // Removes the mapping for [logical, logical+len); returns the physical
  // extents that were covered (for freeing).
  std::vector<Extent> Remove(uint64_t logical_block, uint64_t len);

  // Physical location of `logical_block`, if mapped.
  std::optional<Mapping> Lookup(uint64_t logical_block) const;

  // All extents in logical order, as (logical, extent) pairs.
  std::vector<std::pair<uint64_t, Extent>> Entries() const;

  uint64_t MappedBlocks() const;
  size_t FragmentCount() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.clear(); }

 private:
  struct Run {
    uint64_t phys = 0;
    uint64_t len = 0;
  };
  // keyed by logical start block
  std::map<uint64_t, Run> map_;
};

}  // namespace fscore

#endif  // SRC_FS_FSCORE_EXTENT_H_
