#include "src/fs/pmfs/pmfs.h"

#include <algorithm>
#include <cstring>

#include "src/obs/trace.h"

#include "src/common/prof_zone.h"
#include "src/common/units.h"

namespace pmfs {

using common::ExecContext;
using common::kBlockSize;
using common::Result;
using common::Status;
using fscore::AllocIntent;
using fscore::Extent;
using fscore::Inode;

Pmfs::Pmfs(pmem::PmemDevice* device, PmfsOptions options)
    : GenericFs(device, options.base), popts_(options) {}

void Pmfs::InitAllocator(uint64_t data_start, uint64_t nblocks) {
  free_ = fscore::FreeSpaceMap();
  free_.Release(data_start, nblocks);
  journal_cursor_entries_ = 0;
  journal_head_ = 0;
  journal_wrap_ = 0;
  tx_depth_ = 0;
  delayed_dirty_.clear();
}

void Pmfs::RebuildAllocator(ExecContext& ctx, fscore::FreeSpaceMap&& free_map) {
  (void)ctx;
  free_ = std::move(free_map);
  journal_cursor_entries_ = 0;
  journal_head_ = 0;
  journal_wrap_ = 0;
  tx_depth_ = 0;
  delayed_dirty_.clear();
}

Result<std::vector<Extent>> Pmfs::AllocBlocks(ExecContext& ctx, Inode& inode, uint64_t nblocks,
                                              AllocIntent intent) {
  (void)inode;
  (void)intent;
  ctx.counters.alloc_requests++;
  // PMFS scans free lists on PM; charge a modest sequential probe.
  ctx.clock.Advance(120);
  std::vector<Extent> result;
  uint64_t remaining = nblocks;
  while (remaining > 0) {
    auto ext = free_.AllocFirstFit(remaining, 0);
    if (!ext.has_value()) {
      const uint64_t largest = free_.LargestRun();
      if (largest == 0) {
        FreeBlocks(ctx, result);
        return common::ErrorCode::kNoSpace;
      }
      ext = free_.AllocFirstFit(largest, 0);
    }
    result.push_back(*ext);
    remaining -= ext->num_blocks;
    if (ext->IsAligned()) {
      ctx.counters.aligned_allocs++;
    }
  }
  return result;
}

void Pmfs::FreeBlocks(ExecContext& ctx, const std::vector<Extent>& extents) {
  ctx.clock.Advance(60);
  for (const Extent& ext : extents) {
    free_.Release(ext.phys_block, ext.num_blocks);
  }
}

uint64_t Pmfs::JournalCapacityEntries() const {
  return options_.journal_blocks * kBlockSize / sizeof(JournalEntry);
}

void Pmfs::AppendEntry(ExecContext& ctx, JournalEntry entry) {
  // ONE journal: short critical section, but every thread funnels through it.
  common::SimMutex::Guard guard(journal_lock_, ctx);
  entry.magic = JournalEntry::kMagic;
  entry.wrap = journal_wrap_;
  entry.csum = entry.ComputeCsum();
  const uint64_t slot = journal_head_;
  journal_head_++;
  if (journal_head_ >= JournalCapacityEntries()) {
    journal_head_ = 0;
    journal_wrap_++;
  }
  const uint64_t off = journal_start_block_ * kBlockSize + slot * sizeof(JournalEntry);
  device_->Store(ctx, off, &entry, sizeof(entry));
  device_->Clwb(ctx, off, sizeof(entry));
  journal_cursor_entries_++;
  ctx.counters.journal_bytes += sizeof(entry);
}

void Pmfs::TxBegin(ExecContext& ctx) {
  if (popts_.delayed_metadata) {
    return;  // no journal: the vulnerability window the campaign must catch
  }
  tx_depth_++;
  if (tx_depth_ > 1) {
    return;
  }
  common::ProfileZone zone(ctx, common::ProfLayer::kJournal);
  tx_id_ = next_txn_id_++;
  JournalEntry entry;
  entry.txn_id = tx_id_;
  entry.type = JournalEntry::kStart;
  AppendEntry(ctx, entry);
  device_->Fence(ctx);
}

void Pmfs::TxMetaWrite(ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                       const void* data, uint64_t len) {
  (void)owner;
  if (popts_.delayed_metadata) {
    // Plain store, no undo, no flush, no fence: persists whenever the
    // hardware evicts the line (or at the next fsync/unmount drain). Dirents
    // can hit media before their inode — the dangling-entry window.
    device_->Store(ctx, pm_offset, data, len);
    delayed_dirty_.emplace_back(pm_offset, len);
    return;
  }
  const bool self_contained = tx_depth_ == 0;
  if (self_contained) {
    TxBegin(ctx);
  }
  {
    // Fine-grained undo journaling: copy the old image into cacheline-sized
    // entries, fence, and only then overwrite in place.
    obs::ScopedSpan span(ctx, obs::SpanCat::kJournalCommit, len);
    common::ProfileZone zone(ctx, common::ProfLayer::kJournal);
    uint64_t done = 0;
    while (done < len) {
      const uint64_t chunk = std::min<uint64_t>(len - done, 32);
      JournalEntry entry;
      entry.txn_id = tx_id_;
      entry.type = JournalEntry::kUndo;
      entry.payload_len = static_cast<uint8_t>(chunk);
      entry.target_offset = pm_offset + done;
      // A poisoned old image journals as zeros; the in-place overwrite below
      // clears the poison, and a rollback restores zeros — never stale bytes.
      (void)device_->Load(ctx, pm_offset + done, entry.payload, chunk);
      AppendEntry(ctx, entry);
      done += chunk;
    }
    device_->Fence(ctx);
  }
  device_->Store(ctx, pm_offset, data, len);
  device_->Clwb(ctx, pm_offset, len);
  device_->Fence(ctx);
  if (self_contained) {
    TxCommit(ctx);
  }
}

void Pmfs::TxCommit(ExecContext& ctx) {
  if (popts_.delayed_metadata) {
    return;
  }
  tx_depth_--;
  if (tx_depth_ > 0) {
    return;
  }
  obs::ScopedSpan span(ctx, obs::SpanCat::kJournalCommit, sizeof(JournalEntry));
  common::ProfileZone zone(ctx, common::ProfLayer::kJournal);
  JournalEntry entry;
  entry.txn_id = tx_id_;
  entry.type = JournalEntry::kCommit;
  AppendEntry(ctx, entry);
  device_->Fence(ctx);
}

void Pmfs::DrainDelayed(ExecContext& ctx) {
  if (delayed_dirty_.empty()) {
    return;
  }
  for (const auto& [off, len] : delayed_dirty_) {
    device_->Clwb(ctx, off, len);
  }
  device_->Fence(ctx);
  delayed_dirty_.clear();
}

Status Pmfs::FsyncImpl(ExecContext& ctx, Inode& inode) {
  (void)inode;
  if (popts_.delayed_metadata) {
    DrainDelayed(ctx);
  }
  // Journaled metadata is synchronous; fsync only drains (done by the caller).
  return common::OkStatus();
}

Status Pmfs::Unmount(ExecContext& ctx) {
  if (popts_.delayed_metadata) {
    // Persist straggling metadata before the base writes the clean flag —
    // a clean image must not depend on unflushed lines.
    DrainDelayed(ctx);
  }
  return GenericFs::Unmount(ctx);
}

Status Pmfs::RecoverJournal(ExecContext& ctx) {
  const uint64_t journal_off = journal_start_block_ * kBlockSize;
  const uint64_t journal_bytes = options_.journal_blocks * kBlockSize;
  // The probe is cost-free, so an unfaulted mount keeps its timings.
  if (!device_->ReadStatus(journal_off, journal_bytes).ok()) {
    if (!mount_found_clean_) {
      // An undo image for an interrupted transaction may hide behind the
      // media error; refuse rather than guess at the pre-crash state.
      return Status(common::ErrorCode::kIoError);
    }
    // Clean unmount: the journal carries no undo state worth keeping. The
    // full-block rewrite re-ECCs the media and clears the poison.
    device_->Zero(ctx, journal_off, journal_bytes);
    device_->Fence(ctx);
    journal_cursor_entries_ = 0;
    journal_head_ = 0;
    journal_wrap_ = 0;
    return common::OkStatus();
  }

  if (!mount_found_clean_) {
    const uint64_t capacity = JournalCapacityEntries();
    std::vector<JournalEntry> slots(capacity);
    RETURN_IF_ERROR(
        device_->Load(ctx, journal_off, slots.data(), capacity * sizeof(JournalEntry)));
    // Newest wrap generation present, then entries in append order: wrap
    // max-1 slots after the newest wrap's frontier, then wrap max from 0.
    uint32_t max_wrap = 0;
    bool any = false;
    for (const JournalEntry& e : slots) {
      if (e.IsValidHeader()) {
        max_wrap = std::max(max_wrap, e.wrap);
        any = true;
      }
    }
    if (any) {
      struct Scanned {
        JournalEntry entry;
        uint64_t seq = 0;
      };
      std::vector<Scanned> ordered;
      for (uint64_t s = 0; s < slots.size(); s++) {
        const JournalEntry& e = slots[s];
        if (!e.IsValidHeader()) {
          continue;
        }
        if (e.wrap == max_wrap) {
          ordered.push_back(Scanned{e, max_wrap * capacity + s});
        } else if (e.wrap + 1 == max_wrap) {
          ordered.push_back(Scanned{e, e.wrap * capacity + s});
        }
      }
      std::sort(ordered.begin(), ordered.end(),
                [](const Scanned& a, const Scanned& b) { return a.seq < b.seq; });
      if (!ordered.empty()) {
        // The only possibly-incomplete transaction owns the tail entries
        // (operations are synchronous; space reclaimed at commit).
        const uint64_t tail_txn = ordered.back().entry.txn_id;
        bool committed = false;
        for (const Scanned& e : ordered) {
          if (e.entry.txn_id == tail_txn && e.entry.type == JournalEntry::kCommit) {
            committed = true;
          }
        }
        if (!committed) {
          // Roll back, applying undo images newest-first.
          for (auto it = ordered.rbegin(); it != ordered.rend(); ++it) {
            if (it->entry.txn_id == tail_txn && it->entry.type == JournalEntry::kUndo) {
              device_->Store(ctx, it->entry.target_offset, it->entry.payload,
                             it->entry.payload_len);
              device_->Clwb(ctx, it->entry.target_offset, it->entry.payload_len);
            }
          }
          device_->Fence(ctx);
        }
      }
    }
  }

  // Reset the journal to a clean state (stale committed entries must never
  // survive into the next mount's transaction-ID space).
  device_->Zero(ctx, journal_off, journal_bytes);
  device_->Fence(ctx);
  journal_cursor_entries_ = 0;
  journal_head_ = 0;
  journal_wrap_ = 0;
  return common::OkStatus();
}

void Pmfs::ChargeDirLookup(ExecContext& ctx, const Inode& dir) {
  // Sequential scan of on-PM dirents (64 B each); this is what makes PMFS
  // slow on metadata-heavy workloads like varmail (§5.5).
  const uint64_t lines = dir.dirents.size() + dir.free_dirent_slots.size();
  ctx.clock.Advance((lines / 2 + 1) * device_->cost().pm_load_seq_ns);
  ctx.counters.pm_read_bytes += (lines / 2 + 1) * 64;
}

vfs::FreeSpaceInfo Pmfs::FreeSpace() {
  vfs::FreeSpaceInfo info;
  info.total_blocks = data_blocks_;
  info.free_blocks = free_.free_blocks();
  info.free_aligned_extents = free_.CountAlignedFreeRegions();
  info.largest_free_extent_blocks = free_.LargestRun();
  return info;
}

void Pmfs::SampleGauges(obs::GaugeSample& out) {
  GenericFs::SampleGauges(out);
  std::lock_guard<fscore::DomainMutex> guard(dram_mu_);
  SetRunHistogramGauges(free_.RunHistogram(), out);
  const uint64_t capacity = JournalCapacityEntries();
  out.Set("journal_entries_written", static_cast<double>(journal_cursor_entries_));
  out.Set("journal_ring_fill",
          capacity == 0 ? 0.0
                        : static_cast<double>(journal_cursor_entries_ % capacity) /
                              static_cast<double>(capacity));
  if (popts_.delayed_metadata) {
    out.Set("delayed_dirty_ranges", static_cast<double>(delayed_dirty_.size()));
  }
}

}  // namespace pmfs
