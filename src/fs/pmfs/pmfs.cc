#include "src/fs/pmfs/pmfs.h"

#include "src/obs/trace.h"

#include "src/common/prof_zone.h"
#include "src/common/units.h"

namespace pmfs {

using common::ExecContext;
using common::kBlockSize;
using common::Result;
using common::Status;
using fscore::AllocIntent;
using fscore::Extent;
using fscore::Inode;

Pmfs::Pmfs(pmem::PmemDevice* device, PmfsOptions options)
    : GenericFs(device, options.base) {}

void Pmfs::InitAllocator(uint64_t data_start, uint64_t nblocks) {
  free_ = fscore::FreeSpaceMap();
  free_.Release(data_start, nblocks);
  journal_cursor_entries_ = 0;
}

void Pmfs::RebuildAllocator(ExecContext& ctx, fscore::FreeSpaceMap&& free_map) {
  (void)ctx;
  free_ = std::move(free_map);
  journal_cursor_entries_ = 0;
}

Result<std::vector<Extent>> Pmfs::AllocBlocks(ExecContext& ctx, Inode& inode, uint64_t nblocks,
                                              AllocIntent intent) {
  (void)inode;
  (void)intent;
  ctx.counters.alloc_requests++;
  // PMFS scans free lists on PM; charge a modest sequential probe.
  ctx.clock.Advance(120);
  std::vector<Extent> result;
  uint64_t remaining = nblocks;
  while (remaining > 0) {
    auto ext = free_.AllocFirstFit(remaining, 0);
    if (!ext.has_value()) {
      const uint64_t largest = free_.LargestRun();
      if (largest == 0) {
        FreeBlocks(ctx, result);
        return common::ErrorCode::kNoSpace;
      }
      ext = free_.AllocFirstFit(largest, 0);
    }
    result.push_back(*ext);
    remaining -= ext->num_blocks;
    if (ext->IsAligned()) {
      ctx.counters.aligned_allocs++;
    }
  }
  return result;
}

void Pmfs::FreeBlocks(ExecContext& ctx, const std::vector<Extent>& extents) {
  ctx.clock.Advance(60);
  for (const Extent& ext : extents) {
    free_.Release(ext.phys_block, ext.num_blocks);
  }
}

void Pmfs::TxMetaWrite(ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                       const void* data, uint64_t len) {
  (void)owner;
  // Fine-grained undo journaling through ONE journal: short critical section,
  // but every thread in the system funnels through it.
  {
    obs::ScopedSpan span(ctx, obs::SpanCat::kJournalCommit, len);
    common::ProfileZone zone(ctx, common::ProfLayer::kJournal);
    common::SimMutex::Guard guard(journal_lock_, ctx);
    const uint64_t entries = (len + 31) / 32;  // 64 B entry carries 32 B of undo
    for (uint64_t e = 0; e < entries; e++) {
      const uint64_t slot =
          journal_cursor_entries_ % (options_.journal_blocks * kBlockSize / 64);
      uint8_t entry[64] = {};
      // A poisoned old image journals as zeros; the in-place overwrite below
      // clears the poison, and a rollback restores zeros — never stale bytes.
      (void)device_->Load(ctx, pm_offset + e * 32, entry,
                          std::min<uint64_t>(32, len - e * 32));
      device_->Store(ctx, journal_start_block_ * kBlockSize + slot * 64, entry, 64);
      device_->Clwb(ctx, journal_start_block_ * kBlockSize + slot * 64, 64);
      journal_cursor_entries_++;
      ctx.counters.journal_bytes += 64;
    }
    device_->Fence(ctx);
  }
  device_->Store(ctx, pm_offset, data, len);
  device_->Clwb(ctx, pm_offset, len);
  device_->Fence(ctx);
}

Status Pmfs::FsyncImpl(ExecContext& ctx, Inode& inode) {
  // Metadata is synchronous; fsync only drains (done by the caller).
  (void)ctx;
  (void)inode;
  return common::OkStatus();
}

Status Pmfs::RecoverJournal(ExecContext& ctx) {
  // The probe is cost-free, so an unfaulted mount keeps its timings.
  const uint64_t journal_bytes = options_.journal_blocks * kBlockSize;
  if (device_->ReadStatus(journal_start_block_ * kBlockSize, journal_bytes).ok()) {
    return common::OkStatus();
  }
  if (!mount_found_clean_) {
    // An undo image for an interrupted transaction may hide behind the media
    // error; refuse rather than guess at the pre-crash state.
    return Status(common::ErrorCode::kIoError);
  }
  // Clean unmount: the journal carries no undo state worth keeping. The
  // full-block rewrite re-ECCs the media and clears the poison.
  device_->Zero(ctx, journal_start_block_ * kBlockSize, journal_bytes);
  device_->Fence(ctx);
  journal_cursor_entries_ = 0;
  return common::OkStatus();
}

void Pmfs::ChargeDirLookup(ExecContext& ctx, const Inode& dir) {
  // Sequential scan of on-PM dirents (64 B each); this is what makes PMFS
  // slow on metadata-heavy workloads like varmail (§5.5).
  const uint64_t lines = dir.dirents.size() + dir.free_dirent_slots.size();
  ctx.clock.Advance((lines / 2 + 1) * device_->cost().pm_load_seq_ns);
  ctx.counters.pm_read_bytes += (lines / 2 + 1) * 64;
}

vfs::FreeSpaceInfo Pmfs::FreeSpace() {
  vfs::FreeSpaceInfo info;
  info.total_blocks = data_blocks_;
  info.free_blocks = free_.free_blocks();
  info.free_aligned_extents = free_.CountAlignedFreeRegions();
  info.largest_free_extent_blocks = free_.LargestRun();
  return info;
}

void Pmfs::SampleGauges(obs::GaugeSample& out) {
  GenericFs::SampleGauges(out);
  std::lock_guard<std::recursive_mutex> guard(dram_mu_);
  SetRunHistogramGauges(free_.RunHistogram(), out);
  const uint64_t capacity = options_.journal_blocks * kBlockSize / 64;
  out.Set("journal_entries_written", static_cast<double>(journal_cursor_entries_));
  out.Set("journal_ring_fill",
          capacity == 0 ? 0.0
                        : static_cast<double>(journal_cursor_entries_ % capacity) /
                              static_cast<double>(capacity));
}

}  // namespace pmfs
