// PMFS model: fine-grained single undo journal (64 B entries), metadata kept
// entirely on PM with linear directory scans (no DRAM indexes, §3.5/§5.5),
// allocator with no alignment awareness. Data layout is phase-shifted so no
// hugepages appear even on a clean filesystem (§5.4: "PMFS does not get
// hugepages even in a clean file system setup"). Relaxed guarantees.
#ifndef SRC_FS_PMFS_PMFS_H_
#define SRC_FS_PMFS_PMFS_H_

#include "src/fs/fscore/generic_fs.h"

namespace pmfs {

struct PmfsOptions {
  fscore::FsOptions base{
      .journal_blocks = 1024,
      .num_cpus = 1,
      .mode = vfs::GuaranteeMode::kRelaxed,
      .data_phase_blocks = 1,
  };
};

class Pmfs : public fscore::GenericFs {
 public:
  Pmfs(pmem::PmemDevice* device, PmfsOptions options = {});

  std::string_view Name() const override { return "pmfs"; }
  vfs::FreeSpaceInfo FreeSpace() override;

  // Adds the free-run-length histogram and single-journal ring occupancy
  // (entries written, ring capacity) to the base gauges.
  void SampleGauges(obs::GaugeSample& out) override;

 protected:
  common::Result<std::vector<fscore::Extent>> AllocBlocks(common::ExecContext& ctx,
                                                          fscore::Inode& inode,
                                                          uint64_t nblocks,
                                                          fscore::AllocIntent intent) override;
  void FreeBlocks(common::ExecContext& ctx,
                  const std::vector<fscore::Extent>& extents) override;

  void TxMetaWrite(common::ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                   const void* data, uint64_t len) override;

  common::Status FsyncImpl(common::ExecContext& ctx, fscore::Inode& inode) override;

  // PMFS undo journaling is synchronous (undo entries retired at commit), so
  // recovery itself is a no-op — but a poisoned journal region still needs a
  // verdict: zero-repair after a clean unmount, refuse with EIO when dirty.
  common::Status RecoverJournal(common::ExecContext& ctx) override;

  // No DRAM indexes: directory lookups scan PM dirent lines sequentially.
  void ChargeDirLookup(common::ExecContext& ctx, const fscore::Inode& dir) override;

  bool ZeroOnFault() const override { return false; }

  void InitAllocator(uint64_t data_start, uint64_t nblocks) override;
  void RebuildAllocator(common::ExecContext& ctx, fscore::FreeSpaceMap&& free_map) override;

 private:
  fscore::FreeSpaceMap free_;
  common::SimMutex journal_lock_{"pmfs.journal"};  // single journal: the multi-thread bottleneck
  uint64_t journal_cursor_entries_ = 0;
};

}  // namespace pmfs

#endif  // SRC_FS_PMFS_PMFS_H_
