// PMFS model: fine-grained single undo journal (64 B entries), metadata kept
// entirely on PM with linear directory scans (no DRAM indexes, §3.5/§5.5),
// allocator with no alignment awareness. Data layout is phase-shifted so no
// hugepages appear even on a clean filesystem (§5.4: "PMFS does not get
// hugepages even in a clean file system setup"). Relaxed guarantees.
//
// The journal is transactional: every syscall's metadata updates run inside
// one undo transaction (kStart … kUndo entries … kCommit through the single
// ring), and mount-time recovery rolls back the uncommitted tail transaction
// so multi-write operations (rename over an existing target, cross-directory
// moves) are crash-atomic.
#ifndef SRC_FS_PMFS_PMFS_H_
#define SRC_FS_PMFS_PMFS_H_

#include <utility>
#include <vector>

#include "src/fs/fscore/generic_fs.h"

namespace pmfs {

// One 64-byte undo-journal entry. Same torn-write discipline as the WineFS
// journal: the csum over the first 56 bytes makes a torn entry detectable,
// and every entry is fenced before its in-place overwrite begins, so a torn
// entry implies an untouched target and can be skipped safely.
struct JournalEntry {
  uint64_t txn_id = 0;
  uint32_t wrap = 0;
  uint8_t type = 0;  // 0 invalid
  uint8_t payload_len = 0;
  uint16_t magic = 0;
  uint64_t target_offset = 0;
  uint8_t payload[32] = {};
  uint64_t csum = 0;  // FNV-1a over the first 56 bytes

  static constexpr uint16_t kMagic = 0x4a50;  // "PJ"
  static constexpr uint8_t kStart = 1;
  static constexpr uint8_t kCommit = 2;
  static constexpr uint8_t kUndo = 3;

  uint64_t ComputeCsum() const {
    return Fnv1a(reinterpret_cast<const uint8_t*>(this), sizeof(JournalEntry) - sizeof(csum));
  }
  bool CsumOk() const { return csum == ComputeCsum(); }
  bool IsValidHeader() const {
    return magic == kMagic && type >= kStart && type <= kUndo && CsumOk();
  }

  static uint64_t Fnv1a(const uint8_t* data, uint64_t len) {
    uint64_t hash = 0xcbf29ce484222325ull;
    for (uint64_t i = 0; i < len; i++) {
      hash = (hash ^ data[i]) * 0x100000001b3ull;
    }
    return hash;
  }
};
static_assert(sizeof(JournalEntry) == 64);

struct PmfsOptions {
  fscore::FsOptions base{
      .journal_blocks = 1024,
      .num_cpus = 1,
      .mode = vfs::GuaranteeMode::kRelaxed,
      .data_phase_blocks = 1,
  };
  // Injected vulnerability for the crash campaign (HUNTER's stress case):
  // metadata stores skip the journal AND their flush/fence, persisting lazily
  // at fsync/unmount. This widens the crash vulnerability window from "inside
  // one journaled syscall" to "everything since the last sync" — dirents can
  // persist before the inodes they point to, and nothing rolls back.
  bool delayed_metadata = false;
};

class Pmfs : public fscore::GenericFs {
 public:
  Pmfs(pmem::PmemDevice* device, PmfsOptions options = {});

  std::string_view Name() const override { return "pmfs"; }
  vfs::FreeSpaceInfo FreeSpace() override;

  // Delayed-metadata mode persists stragglers before the clean flag lands.
  common::Status Unmount(common::ExecContext& ctx) override;

  // Adds the free-run-length histogram and single-journal ring occupancy
  // (entries written, ring capacity) to the base gauges.
  void SampleGauges(obs::GaugeSample& out) override;

 protected:
  common::Result<std::vector<fscore::Extent>> AllocBlocks(common::ExecContext& ctx,
                                                          fscore::Inode& inode,
                                                          uint64_t nblocks,
                                                          fscore::AllocIntent intent) override;
  void FreeBlocks(common::ExecContext& ctx,
                  const std::vector<fscore::Extent>& extents) override;

  void TxBegin(common::ExecContext& ctx) override;
  void TxMetaWrite(common::ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                   const void* data, uint64_t len) override;
  void TxCommit(common::ExecContext& ctx) override;

  common::Status FsyncImpl(common::ExecContext& ctx, fscore::Inode& inode) override;

  // Poisoned journal verdict (zero-repair after a clean unmount, refuse with
  // EIO when dirty), then rollback of the uncommitted tail transaction.
  common::Status RecoverJournal(common::ExecContext& ctx) override;

  // No DRAM indexes: directory lookups scan PM dirent lines sequentially.
  void ChargeDirLookup(common::ExecContext& ctx, const fscore::Inode& dir) override;

  bool ZeroOnFault() const override { return false; }

  void InitAllocator(uint64_t data_start, uint64_t nblocks) override;
  void RebuildAllocator(common::ExecContext& ctx, fscore::FreeSpaceMap&& free_map) override;

 private:
  void AppendEntry(common::ExecContext& ctx, JournalEntry entry);
  uint64_t JournalCapacityEntries() const;
  // Delayed-metadata mode: flush + fence everything written since last sync.
  void DrainDelayed(common::ExecContext& ctx);

  PmfsOptions popts_;
  fscore::FreeSpaceMap free_;
  common::SimMutex journal_lock_{"pmfs.journal"};  // single journal: the multi-thread bottleneck
  uint64_t journal_cursor_entries_ = 0;
  uint64_t journal_head_ = 0;  // ring slot of the next append
  uint32_t journal_wrap_ = 0;
  uint64_t next_txn_id_ = 1;
  uint64_t tx_id_ = 0;
  int tx_depth_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> delayed_dirty_;  // offset, len
};

}  // namespace pmfs

#endif  // SRC_FS_PMFS_PMFS_H_
