// NOVA model: log-structured PM filesystem (§2.6, §3.4).
//  * Per-CPU free lists; attempts 2 MiB-aligned extents only for allocation
//    requests that are exact multiples of 2 MiB (paper §6).
//  * A per-inode log of 64 B entries living in 4 KiB log pages allocated from
//    the shared data area — the free-space fragmenter the paper identifies.
//  * Strict mode uses 4 KiB-granularity copy-on-write for data; unaligned
//    appends relocate the partial tail block (§5.5 WiredTiger discussion).
//  * Pages are zeroed at allocation (fallocate), so faults are cheap (§5.4).
#ifndef SRC_FS_NOVA_NOVA_H_
#define SRC_FS_NOVA_NOVA_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/fs/fscore/generic_fs.h"

namespace nova {

struct NovaOptions {
  fscore::FsOptions base{
      .journal_blocks = 64,  // NOVA has no central journal; tiny region kept for layout
      .num_cpus = 4,
      .mode = vfs::GuaranteeMode::kStrict,
  };
  // Log pages per inode before garbage collection compacts the log.
  uint32_t gc_log_pages = 16;
};

class Nova : public fscore::GenericFs {
 public:
  Nova(pmem::PmemDevice* device, NovaOptions options);

  std::string_view Name() const override {
    return options_.mode == vfs::GuaranteeMode::kStrict ? "nova" : "nova-relaxed";
  }
  // Per-CPU free lists + per-CPU logs: safe for free-running host shards
  // under the shard-purity contract (cross-CPU stealing notes a hazard).
  vfs::ParallelPolicy parallel_policy() const override {
    return vfs::ParallelPolicy::kSharded;
  }
  vfs::FreeSpaceInfo FreeSpace() override;

  // Adds the summed per-CPU free-run histogram, per-CPU free-list balance
  // (min/max free blocks across CPUs), live per-inode log pages, and GC runs
  // to the base gauges.
  void SampleGauges(obs::GaugeSample& out) override;

  uint64_t gc_runs() const { return gc_runs_.load(std::memory_order_relaxed); }

 protected:
  common::Result<std::vector<fscore::Extent>> AllocBlocks(common::ExecContext& ctx,
                                                          fscore::Inode& inode,
                                                          uint64_t nblocks,
                                                          fscore::AllocIntent intent) override;
  void FreeBlocks(common::ExecContext& ctx,
                  const std::vector<fscore::Extent>& extents) override;

  // Metadata change = append one 64 B entry to the owner's per-inode log.
  void TxMetaWrite(common::ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                   const void* data, uint64_t len) override;

  // Epoch-based reclamation: blocks freed inside a transaction (unlink, the
  // overwritten target of a rename, CoW superseded pages) stay off the free
  // lists until the outermost TxCommit. Without the deferral a log-page
  // allocation later in the same operation can reuse a block the pre-crash
  // metadata still references, and a crash there corrupts committed data.
  void TxBegin(common::ExecContext& ctx) override;
  void TxCommit(common::ExecContext& ctx) override;

  common::Result<uint64_t> WriteDataAtomic(common::ExecContext& ctx, fscore::Inode& inode,
                                           const void* src, uint64_t len,
                                           uint64_t offset) override;

  common::Status FsyncImpl(common::ExecContext& ctx, fscore::Inode& inode) override;

  // NOVA's reserved journal region is never authoritative (recovery rebuilds
  // from the inode table and per-inode logs), so a poisoned region is always
  // zero-repaired — clean or dirty — instead of failing the mount.
  common::Status RecoverJournal(common::ExecContext& ctx) override;

  bool ZeroOnFault() const override { return false; }

  void OnInodeCreated(common::ExecContext& ctx, fscore::Inode& inode) override;
  void OnInodeDeleted(common::ExecContext& ctx, fscore::Inode& inode) override;

  void InitAllocator(uint64_t data_start, uint64_t nblocks) override;
  void RebuildAllocator(common::ExecContext& ctx, fscore::FreeSpaceMap&& free_map) override;
  uint32_t RecoveryParallelism() const override { return options_.num_cpus; }

 private:
  struct CpuFree {
    uint64_t start_block = 0;
    uint64_t num_blocks = 0;
    fscore::FreeSpaceMap map;
    common::SimMutex lock{"nova.cpufree"};
    // Relaxed mirror of map.free_blocks(), refreshed under `lock`; the
    // cross-CPU steal scan reads it so scans racing other shards are
    // stale-but-safe, never a data race.
    std::atomic<uint64_t> free_count{0};

    void SyncCount() {
      free_count.store(map.free_blocks(), std::memory_order_relaxed);
    }
  };

  void AppendLogEntry(common::ExecContext& ctx, fscore::Inode& inode);
  void AllocLogPage(common::ExecContext& ctx, fscore::Inode& inode);
  void MaybeGarbageCollect(common::ExecContext& ctx, fscore::Inode& inode);
  size_t CpuOfBlock(uint64_t block) const;

  void ReleaseBlocks(common::ExecContext& ctx, const std::vector<fscore::Extent>& extents);

  NovaOptions nopts_;
  std::vector<std::unique_ptr<CpuFree>> cpu_free_;
  std::atomic<uint64_t> gc_runs_{0};

  // Per-CPU transaction slot: a CPU's ops are serialized by its dram stripe,
  // so depth/deferred frees never see concurrent begin..commit interleaving,
  // while other CPUs run their own epochs concurrently.
  struct TxSlot {
    uint32_t depth = 0;
    std::vector<fscore::Extent> deferred_frees;
  };
  std::vector<TxSlot> tx_slots_{1};
  TxSlot& Tx(const common::ExecContext& ctx) {
    return tx_slots_[ctx.cpu % tx_slots_.size()];
  }
};

}  // namespace nova

#endif  // SRC_FS_NOVA_NOVA_H_
