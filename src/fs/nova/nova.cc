#include "src/fs/nova/nova.h"

#include "src/common/prof_zone.h"
#include "src/obs/trace.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/units.h"

namespace nova {

using common::ExecContext;
using common::kBlockSize;
using common::kBlocksPerHugepage;
using common::Result;
using common::Status;
using fscore::AllocIntent;
using fscore::Extent;
using fscore::Inode;

namespace {
constexpr uint64_t kLogEntryBytes = 64;
constexpr uint64_t kEntriesPerLogPage = common::kBlockSize / kLogEntryBytes;
constexpr uint64_t kAllocWorkNs = 100;
}  // namespace

Nova::Nova(pmem::PmemDevice* device, NovaOptions options)
    : GenericFs(device, options.base), nopts_(options) {}

void Nova::InitAllocator(uint64_t data_start, uint64_t nblocks) {
  cpu_free_.clear();
  const uint32_t ncpu = std::max<uint32_t>(1, options_.num_cpus);
  tx_slots_.assign(ncpu, TxSlot{});
  const uint64_t per_cpu = nblocks / ncpu;
  for (uint32_t cpu = 0; cpu < ncpu; cpu++) {
    auto f = std::make_unique<CpuFree>();
    f->start_block = data_start + cpu * per_cpu;
    f->num_blocks = cpu == ncpu - 1 ? nblocks - cpu * per_cpu : per_cpu;
    f->map.Release(f->start_block, f->num_blocks);
    f->SyncCount();
    cpu_free_.push_back(std::move(f));
  }
}

void Nova::RebuildAllocator(ExecContext& ctx, fscore::FreeSpaceMap&& free_map) {
  (void)ctx;
  InitAllocator(data_start_block_, data_blocks_);
  for (auto& f : cpu_free_) {
    f->map = fscore::FreeSpaceMap();
  }
  for (const auto& [start, len] : free_map.runs()) {
    uint64_t cursor = start;
    uint64_t remaining = len;
    while (remaining > 0) {
      CpuFree& f = *cpu_free_[CpuOfBlock(cursor)];
      const uint64_t span = std::min(remaining, f.start_block + f.num_blocks - cursor);
      f.map.Release(cursor, span);
      cursor += span;
      remaining -= span;
    }
  }
  for (auto& f : cpu_free_) {
    f->SyncCount();
  }
  // Per-inode log page ownership is not recorded in the generic on-PM inode;
  // after a remount, logs restart lazily on the next operation. (The real
  // NOVA rebuilds its logs by scanning them; the net free-space state is the
  // same because stale log pages were freed with the scan.)
}

size_t Nova::CpuOfBlock(uint64_t block) const {
  const uint64_t per_cpu = data_blocks_ / cpu_free_.size();
  if (per_cpu == 0) {
    return 0;
  }
  return std::min((block - data_start_block_) / per_cpu, cpu_free_.size() - 1);
}

Result<std::vector<Extent>> Nova::AllocBlocks(ExecContext& ctx, Inode& inode, uint64_t nblocks,
                                              AllocIntent intent) {
  (void)inode;
  ctx.counters.alloc_requests++;
  ctx.clock.Advance(kAllocWorkNs);
  const uint32_t cpu = ctx.cpu % cpu_free_.size();
  std::vector<Extent> result;
  uint64_t remaining = nblocks;

  auto take = [&](CpuFree& f, uint64_t want) -> std::optional<Extent> {
    common::SimMutex::Guard guard(f.lock, ctx);
    std::optional<Extent> got;
    // NOVA tries aligned extents only for exact 2 MiB-multiple data requests.
    if (intent == AllocIntent::kFileData && nblocks % kBlocksPerHugepage == 0 &&
        want >= kBlocksPerHugepage) {
      got = f.map.AllocAligned(kBlocksPerHugepage);
    }
    // Per-inode log pages and dirent blocks reuse the smallest free holes
    // (recycled log space). They live as long as their file, pinning scattered
    // holes open — the fragmentation WineFS's contained-metadata layout avoids
    // (§2.6, §3.4 "NOVA has a per-file log that causes fragmentation").
    if (!got && (intent == AllocIntent::kLogPage || intent == AllocIntent::kDirData ||
                 intent == AllocIntent::kMeta)) {
      got = f.map.AllocBestFit(want);
    }
    if (!got) {
      got = f.map.AllocFirstFit(want, 0);
    }
    if (!got) {
      const uint64_t largest = f.map.LargestRun();
      if (largest > 0) {
        got = f.map.AllocFirstFit(std::min(want, largest), 0);
      }
    }
    if (got) {
      f.SyncCount();
    }
    return got;
  };

  while (remaining > 0) {
    std::optional<Extent> ext = take(*cpu_free_[cpu], remaining);
    if (!ext.has_value()) {
      // Steal from the CPU with the most free space. The scan reads the
      // relaxed mirrors (stale-but-safe under host-parallel shards);
      // cross-shard stealing is a shard-purity hazard, so note it.
      if (ctx.hazards != nullptr) {
        ctx.hazards->Note("nova.steal");
      }
      size_t best = cpu;
      uint64_t best_free = 0;
      for (size_t i = 0; i < cpu_free_.size(); i++) {
        const uint64_t fr = cpu_free_[i]->free_count.load(std::memory_order_relaxed);
        if (fr > best_free) {
          best = i;
          best_free = fr;
        }
      }
      if (best_free == 0) {
        FreeBlocks(ctx, result);
        return common::ErrorCode::kNoSpace;
      }
      ext = take(*cpu_free_[best], remaining);
      if (!ext.has_value()) {
        FreeBlocks(ctx, result);
        return common::ErrorCode::kNoSpace;
      }
    }
    if (ext->IsAligned()) {
      ctx.counters.aligned_allocs++;
    }
    result.push_back(*ext);
    remaining -= ext->num_blocks;
  }
  return result;
}

void Nova::FreeBlocks(ExecContext& ctx, const std::vector<Extent>& extents) {
  TxSlot& tx = Tx(ctx);
  if (tx.depth > 0) {
    // Epoch-based reclamation: inside a transaction the blocks may still be
    // referenced by the pre-crash metadata image (e.g. the data blocks of a
    // rename-overwritten target). Handing them to the allocator now would let
    // a log-page allocation later in the same operation scribble over them —
    // a crash between those two points then recovers the old inode pointing
    // at reused blocks. Real NOVA frees only after the transaction commits.
    tx.deferred_frees.insert(tx.deferred_frees.end(), extents.begin(), extents.end());
    return;
  }
  ReleaseBlocks(ctx, extents);
}

void Nova::TxBegin(ExecContext& ctx) {
  Tx(ctx).depth++;
}

void Nova::TxCommit(ExecContext& ctx) {
  TxSlot& tx = Tx(ctx);
  if (tx.depth > 0 && --tx.depth == 0 && !tx.deferred_frees.empty()) {
    std::vector<Extent> frees;
    frees.swap(tx.deferred_frees);
    ReleaseBlocks(ctx, frees);
  }
}

void Nova::ReleaseBlocks(ExecContext& ctx, const std::vector<Extent>& extents) {
  ctx.clock.Advance(kAllocWorkNs / 2);
  for (const Extent& ext : extents) {
    uint64_t cursor = ext.phys_block;
    uint64_t remaining = ext.num_blocks;
    while (remaining > 0) {
      CpuFree& f = *cpu_free_[CpuOfBlock(cursor)];
      const uint64_t span = std::min(remaining, f.start_block + f.num_blocks - cursor);
      common::SimMutex::Guard guard(f.lock, ctx);
      f.map.Release(cursor, span);
      f.SyncCount();
      cursor += span;
      remaining -= span;
    }
  }
}

void Nova::AllocLogPage(ExecContext& ctx, Inode& inode) {
  // One 4 KiB page carved out of the data area: this is the per-file
  // metadata that fragments free space and consumes aligned extents.
  auto alloc = AllocBlocks(ctx, inode, 1, AllocIntent::kLogPage);
  if (!alloc.ok()) {
    return;  // log appends degrade to in-place (ENOSPC pressure)
  }
  inode.log_pages.push_back((*alloc)[0]);
  inode.log_entries_in_tail = 0;
  device_->Zero(ctx, (*alloc)[0].phys_block * kBlockSize, kBlockSize);
}

void Nova::AppendLogEntry(ExecContext& ctx, Inode& inode) {
  obs::ScopedSpan span(ctx, obs::SpanCat::kJournalCommit, kLogEntryBytes);
  common::ProfileZone zone(ctx, common::ProfLayer::kJournal);
  if (inode.log_pages.empty() || inode.log_entries_in_tail >= kEntriesPerLogPage) {
    AllocLogPage(ctx, inode);
    if (inode.log_pages.empty()) {
      return;
    }
  }
  const Extent& tail = inode.log_pages.back();
  const uint64_t off =
      tail.phys_block * kBlockSize + inode.log_entries_in_tail * kLogEntryBytes;
  uint8_t entry[kLogEntryBytes] = {};
  entry[0] = 1;  // valid
  device_->Store(ctx, off, entry, sizeof(entry));
  device_->Clwb(ctx, off, sizeof(entry));
  device_->Fence(ctx);
  inode.log_entries_in_tail++;
  ctx.counters.journal_bytes += kLogEntryBytes;
  // §5.3: NOVA also invalidates the superseded log entry and updates its
  // DRAM indexes to point at the new one.
  if (inode.log_entries_in_tail > 1) {
    const uint64_t prev = off - kLogEntryBytes;
    uint8_t dead = 0;
    device_->Store(ctx, prev, &dead, 1);
    device_->Clwb(ctx, prev, 1);
  }
  ctx.clock.Advance(100);  // DRAM index update
  MaybeGarbageCollect(ctx, inode);
}

void Nova::MaybeGarbageCollect(ExecContext& ctx, Inode& inode) {
  if (inode.log_pages.size() <= nopts_.gc_log_pages) {
    return;
  }
  // Compact: copy live entries into fresh pages, free the old ones. Modeled
  // as copying half the log; this is NOVA's GC interference (§2.6/§6).
  gc_runs_.fetch_add(1, std::memory_order_relaxed);
  const size_t keep = nopts_.gc_log_pages / 2;
  std::vector<Extent> dead(inode.log_pages.begin(),
                           inode.log_pages.end() - static_cast<long>(keep));
  inode.log_pages.erase(inode.log_pages.begin(),
                        inode.log_pages.end() - static_cast<long>(keep));
  const uint64_t copied = dead.size() * kBlockSize / 2;
  ctx.clock.Advance(device_->cost().SeqReadBytes(copied) +
                    device_->cost().SeqWriteBytes(copied));
  ctx.counters.cow_bytes += copied;
  FreeBlocks(ctx, dead);
}

void Nova::TxMetaWrite(ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                       const void* data, uint64_t len) {
  // Log-structured metadata: a single 64 B log append per update. The
  // in-place shadow write keeps the generic on-PM image current for the
  // mount-time rebuild; real NOVA keeps this in its logs + DRAM indexes, so
  // the shadow is uncharged (see PmemDevice::StoreUncharged).
  Inode* inode = GetInode(owner);
  if (inode != nullptr) {
    AppendLogEntry(ctx, *inode);
  } else {
    ctx.clock.Advance(device_->cost().pm_store_ns);
  }
  device_->StoreUncharged(pm_offset, data, len);
}

Result<uint64_t> Nova::WriteDataAtomic(ExecContext& ctx, Inode& inode, const void* src,
                                       uint64_t len, uint64_t offset) {
  // Copy-on-write at 4 KiB granularity: every touched block that already has
  // data is relocated; partially covered blocks copy the old bytes first
  // (write amplification for unaligned appends, §5.5 WiredTiger).
  const uint64_t first = offset / kBlockSize;
  const uint64_t last = (offset + len - 1) / kBlockSize;
  const uint64_t nblocks = last - first + 1;

  std::vector<uint8_t> bounce(nblocks * kBlockSize, 0);
  uint64_t cow_copied = 0;
  for (uint64_t b = 0; b < nblocks; b++) {
    const uint64_t block = first + b;
    const uint64_t block_start = block * kBlockSize;
    const bool fully_covered =
        offset <= block_start && offset + len >= block_start + kBlockSize;
    auto old_map = inode.extents.Lookup(block);
    if (!fully_covered && old_map.has_value()) {
      // Poisoned old data: fail the write instead of silently relocating
      // zeros over bytes whose reads still (correctly) return EIO.
      RETURN_IF_ERROR(device_->Load(ctx, old_map->phys_block * kBlockSize,
                                    bounce.data() + b * kBlockSize, kBlockSize));
      cow_copied += kBlockSize;
    }
  }
  std::memcpy(bounce.data() + (offset - first * kBlockSize), src, len);

  auto alloc = AllocBlocks(ctx, inode, nblocks, AllocIntent::kFileData);
  if (!alloc.ok()) {
    return alloc.status();
  }
  std::vector<Extent> old = inode.extents.Remove(first, nblocks);
  uint64_t logical = first;
  uint64_t written = 0;
  for (const Extent& ext : *alloc) {
    device_->NtStore(ctx, ext.phys_block * kBlockSize, bounce.data() + written,
                     ext.num_blocks * kBlockSize);
    inode.extents.Insert(logical, ext.phys_block, ext.num_blocks);
    logical += ext.num_blocks;
    written += ext.num_blocks * kBlockSize;
  }
  device_->Fence(ctx);
  ctx.counters.cow_bytes += cow_copied;

  if (offset + len > inode.size) {
    inode.size = offset + len;
  }
  // Commit: one log entry points at the new blocks; old blocks return to the
  // free list afterwards.
  PersistInode(ctx, inode);
  FreeBlocks(ctx, old);
  return len;
}

Status Nova::FsyncImpl(ExecContext& ctx, Inode& inode) {
  // Log appends are synchronous; nothing to flush beyond the caller's drain.
  (void)ctx;
  (void)inode;
  return common::OkStatus();
}

Status Nova::RecoverJournal(ExecContext& ctx) {
  // Cost-free probe: an unfaulted mount keeps its timings. The region holds
  // per-inode log pages that recovery rebuilds from the inode table anyway,
  // so a media error here is always repairable: the full-block rewrite
  // re-ECCs the poisoned blocks.
  const uint64_t journal_bytes = options_.journal_blocks * kBlockSize;
  if (!device_->ReadStatus(journal_start_block_ * kBlockSize, journal_bytes).ok()) {
    device_->Zero(ctx, journal_start_block_ * kBlockSize, journal_bytes);
    device_->Fence(ctx);
  }
  return common::OkStatus();
}

void Nova::OnInodeCreated(ExecContext& ctx, Inode& inode) { AllocLogPage(ctx, inode); }

void Nova::OnInodeDeleted(ExecContext& ctx, Inode& inode) {
  if (!inode.log_pages.empty()) {
    FreeBlocks(ctx, inode.log_pages);
    inode.log_pages.clear();
  }
}

vfs::FreeSpaceInfo Nova::FreeSpace() {
  vfs::FreeSpaceInfo info;
  info.total_blocks = data_blocks_;
  for (const auto& f : cpu_free_) {
    info.free_blocks += f->map.free_blocks();
    info.free_aligned_extents += f->map.CountAlignedFreeRegions();
    info.largest_free_extent_blocks =
        std::max(info.largest_free_extent_blocks, f->map.LargestRun());
  }
  return info;
}

void Nova::SampleGauges(obs::GaugeSample& out) {
  GenericFs::SampleGauges(out);
  std::lock_guard<fscore::DomainMutex> guard(dram_mu_);
  fscore::FreeSpaceMap::RunLengthHistogram hist;
  uint64_t min_free = UINT64_MAX;
  uint64_t max_free = 0;
  for (const auto& f : cpu_free_) {
    hist += f->map.RunHistogram();
    min_free = std::min(min_free, f->map.free_blocks());
    max_free = std::max(max_free, f->map.free_blocks());
  }
  SetRunHistogramGauges(hist, out);
  out.Set("cpu_free_min_blocks",
          static_cast<double>(min_free == UINT64_MAX ? 0 : min_free));
  out.Set("cpu_free_max_blocks", static_cast<double>(max_free));
  uint64_t log_pages = 0;
  for (const auto& [ino, inode] : inode_table()) {
    (void)ino;
    for (const Extent& ext : inode->log_pages) {
      log_pages += ext.num_blocks;
    }
  }
  out.Set("log_pages_live", static_cast<double>(log_pages));
  out.Set("gc_runs", static_cast<double>(gc_runs_));
}

}  // namespace nova
