// Strata model: log-structured like NOVA, plus the digest step — data written
// to a per-process log must later be copied into the shared PM region to
// become visible to other processes (§5.3: "Strata has to perform expensive
// data copies from its per-process logs to the shared PM region").
#ifndef SRC_FS_STRATA_STRATA_H_
#define SRC_FS_STRATA_STRATA_H_

#include "src/fs/nova/nova.h"

namespace strata {

class Strata : public nova::Nova {
 public:
  Strata(pmem::PmemDevice* device, nova::NovaOptions options = {})
      : Nova(device, std::move(options)) {}

  std::string_view Name() const override { return "strata"; }

 protected:
  common::Result<uint64_t> WriteDataAtomic(common::ExecContext& ctx, fscore::Inode& inode,
                                           const void* src, uint64_t len,
                                           uint64_t offset) override {
    auto written = Nova::WriteDataAtomic(ctx, inode, src, len, offset);
    if (written.ok()) {
      // Digest: read from the private log, write into the shared region.
      ctx.clock.Advance(device_->cost().SeqReadBytes(len) +
                        device_->cost().SeqWriteBytes(len));
      ctx.counters.cow_bytes += len;
    }
    return written;
  }
};

}  // namespace strata

#endif  // SRC_FS_STRATA_STRATA_H_
