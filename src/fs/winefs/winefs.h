// WineFS: the hugepage-aware PM filesystem (paper §3).
//
// Distinguishing design decisions, each implemented here:
//  * Alignment-aware allocation: per-CPU pools split into a list of free
//    2 MiB-aligned extents and an offset-keyed tree of unaligned holes.
//    Hugepage-sized requests take aligned extents; small requests take holes;
//    metadata always comes from holes (contained fragmentation).
//  * Per-CPU fine-grained undo journals with 64 B cacheline entries; all
//    metadata operations are synchronous, so journal space is reclaimed at
//    commit. Transactions stay on the journal where they began.
//  * Hybrid data atomicity (strict mode): data journaling for aligned extents
//    (preserves layout), copy-on-write into fresh holes for unaligned ones.
//  * Hugepage-allocating page faults: a write fault on a hole asks the
//    allocator for the whole aligned 2 MiB chunk.
//  * DRAM metadata indexes, xattr-carried alignment hints, reactive rewriting
//    of fragmented memory-mapped files, and a NUMA home-node write policy.
#ifndef SRC_FS_WINEFS_WINEFS_H_
#define SRC_FS_WINEFS_WINEFS_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/fscore/generic_fs.h"

namespace winefs {

struct WineFsOptions {
  fscore::FsOptions base{
      .journal_blocks = 1024,
      .num_cpus = 4,
      .mode = vfs::GuaranteeMode::kStrict,
  };
  bool numa_aware = false;
  // Ablation switches (bench/ablation_design_choices):
  bool alignment_aware = true;   // off: plain first-fit allocation
  bool per_cpu_journals = true;  // off: one global journal
  bool hybrid_atomicity = true;  // off: CoW for everything in strict mode
};

// One 64-byte undo-journal entry (§3.6 "each log entry is only a cache line").
// Large undo images (data journaling of aligned extents) use one kUndoBlob
// header followed by ceil(len/64) raw cachelines of old data — compact, so
// data journaling writes the data ~twice, not four times.
//
// x86 persists only 8 bytes atomically, so a crash mid-flush can tear the
// entry at 8-byte-lane granularity. `csum` (FNV-1a over the other 56 bytes)
// makes torn entries detectable: recovery skips them, which is safe because
// every undo entry is fenced BEFORE its in-place overwrite begins — a torn
// entry implies the target was never touched. Blob headers additionally carry
// an FNV-1a checksum of the old image in payload[8..16] so torn raw blob
// cachelines are caught the same way.
struct JournalEntry {
  uint64_t txn_id = 0;
  uint32_t wrap = 0;
  uint8_t type = 0;  // 0 invalid
  uint8_t payload_len = 0;
  uint16_t magic = 0;  // kMagic distinguishes headers from raw blob lines
  uint64_t target_offset = 0;
  uint8_t payload[32] = {};
  uint64_t csum = 0;  // FNV-1a over the first 56 bytes

  static constexpr uint16_t kMagic = 0x4a45;
  static constexpr uint8_t kInvalid = 0;
  static constexpr uint8_t kStart = 1;
  static constexpr uint8_t kCommit = 2;
  static constexpr uint8_t kUndoData = 3;
  static constexpr uint8_t kUndoBlob = 4;

  uint64_t ComputeCsum() const {
    return Fnv1a(reinterpret_cast<const uint8_t*>(this), sizeof(JournalEntry) - sizeof(csum));
  }
  bool CsumOk() const { return csum == ComputeCsum(); }

  bool IsValidHeader() const {
    return magic == kMagic && type >= kStart && type <= kUndoBlob && CsumOk();
  }

  static uint64_t Fnv1a(const uint8_t* data, uint64_t len) {
    uint64_t hash = 0xcbf29ce484222325ull;
    for (uint64_t i = 0; i < len; i++) {
      hash = (hash ^ data[i]) * 0x100000001b3ull;
    }
    return hash;
  }
};
static_assert(sizeof(JournalEntry) == 64);

class WineFs : public fscore::GenericFs {
 public:
  WineFs(pmem::PmemDevice* device, WineFsOptions options);

  std::string_view Name() const override { return "winefs"; }
  // Per-CPU journals + per-CPU allocator pools + per-CPU tx/staging slots:
  // host workers driving disjoint CPU shards contend real per-CPU structures
  // instead of taking turns (see DESIGN.md shard-purity contract).
  vfs::ParallelPolicy parallel_policy() const override {
    return vfs::ParallelPolicy::kSharded;
  }
  vfs::FreeSpaceInfo FreeSpace() override;

  // Adds per-CPU pool balance (aligned extents and free blocks min/max across
  // pools), the summed hole-run histogram, and per-CPU journal ring state
  // (entries appended, wrap generations) to the base gauges.
  void SampleGauges(obs::GaugeSample& out) override;

  // Reactive rewriting (§3.6): if the file is fragmented, reads it and
  // rewrites it with big (aligned) allocations inside one journal
  // transaction. In the kernel a background thread does this after mmap;
  // benches drive it explicitly from a background ExecContext.
  common::Status ReactiveRewrite(common::ExecContext& ctx, const std::string& path);
  // True if mmap-ing this file would schedule a rewrite (fragmented layout).
  bool NeedsRewrite(const std::string& path);

  // NUMA introspection for the NUMA-policy experiments.
  uint64_t numa_local_allocs() const { return numa_local_allocs_.load(std::memory_order_relaxed); }
  uint64_t numa_remote_allocs() const { return numa_remote_allocs_.load(std::memory_order_relaxed); }

  // Aggregate count of free aligned extents across per-CPU pools.
  uint64_t FreeAlignedExtents() const;

  // Native batched execution: the fscore engine plus journal group-commit
  // coalescing — journal cacheline stores issued between fences are staged in
  // DRAM and land as one bulk Store/Clwb per contiguous ring run (charge-
  // identical to per-slot stores; see AppendEntry). Staging is disabled when
  // a fault injector or crash tracking is attached, where per-store hooks
  // must observe every individual journal write.
  void ExecuteBatch(common::ExecContext& ctx, const vfs::OpBatch& batch,
                    std::vector<vfs::OpResult>& results) override;

 protected:
  common::Result<std::vector<fscore::Extent>> AllocBlocks(common::ExecContext& ctx,
                                                          fscore::Inode& inode,
                                                          uint64_t nblocks,
                                                          fscore::AllocIntent intent) override;
  void FreeBlocks(common::ExecContext& ctx,
                  const std::vector<fscore::Extent>& extents) override;

  void TxBegin(common::ExecContext& ctx) override;
  void TxMetaWrite(common::ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                   const void* data, uint64_t len) override;
  void TxCommit(common::ExecContext& ctx) override;
  common::Status RecoverJournal(common::ExecContext& ctx) override;

  common::Result<uint64_t> WriteDataAtomic(common::ExecContext& ctx, fscore::Inode& inode,
                                           const void* src, uint64_t len,
                                           uint64_t offset) override;

  common::Status FsyncImpl(common::ExecContext& ctx, fscore::Inode& inode) override;

  bool AllocatesHugeOnFault() const override { return true; }
  bool ZeroOnFault() const override { return false; }  // zeroed at allocation

  void InitAllocator(uint64_t data_start, uint64_t nblocks) override;
  void RebuildAllocator(common::ExecContext& ctx, fscore::FreeSpaceMap&& free_map) override;
  uint32_t RecoveryParallelism() const override { return wopts_.base.num_cpus; }

 private:
  struct CpuPool {
    uint64_t start_block = 0;
    uint64_t num_blocks = 0;
    uint32_t numa_node = 0;
    // Free aligned extents: chunk start blocks, FIFO (head alloc, tail free).
    std::deque<uint64_t> aligned;
    // Unaligned holes, keyed by block offset (kernel rbtree in the paper).
    fscore::FreeSpaceMap holes;
    common::SimMutex lock;
    // Relaxed mirrors of aligned.size() and holes.free_blocks(), refreshed
    // (via SyncCounts) whenever the structures change under `lock`. The
    // cross-pool steal scans read these instead of the containers so a scan
    // racing another pool's owner is a stale-but-safe read, not a data race.
    std::atomic<uint64_t> aligned_count{0};
    std::atomic<uint64_t> hole_free_count{0};

    void SyncCounts() {
      aligned_count.store(aligned.size(), std::memory_order_relaxed);
      hole_free_count.store(holes.free_blocks(), std::memory_order_relaxed);
    }

    // Per-CPU journal ring.
    uint64_t journal_pm_offset = 0;
    uint64_t capacity_entries = 0;
    uint64_t head = 0;  // next slot
    uint32_t wrap = 0;
    common::SimMutex journal_lock;
  };

  uint32_t PoolIndexFor(common::ExecContext& ctx);
  size_t PoolOfBlock(uint64_t block) const;

  // Creates pools_ with data-range and journal geometry; touches no PM.
  void SetupPoolGeometry(uint64_t data_start, uint64_t nblocks);

  // Takes one aligned extent, preferring `cpu`, falling back to the pool
  // with the most free aligned extents (§3.4 allocation policy).
  std::optional<uint64_t> TakeAlignedChunk(common::ExecContext& ctx, uint32_t cpu);
  // Takes up to `want` blocks from hole pools; breaks an aligned extent into
  // holes when every hole pool is dry.
  std::optional<fscore::Extent> TakeHoleBlocks(common::ExecContext& ctx, uint32_t cpu,
                                               uint64_t want);
  void ReleaseToPool(common::ExecContext& ctx, const fscore::Extent& extent);
  void ExtractAlignedFromHoles(CpuPool& pool, uint64_t around_block);

  // Journal mechanics.
  CpuPool& JournalFor(uint32_t cpu) {
    return wopts_.per_cpu_journals ? *pools_[cpu] : *pools_[0];
  }
  void AppendEntry(common::ExecContext& ctx, CpuPool& pool, const JournalEntry& entry);
  // Writes `len` bytes of old-image data as raw journal cachelines.
  void AppendRawSlots(common::ExecContext& ctx, CpuPool& pool, const uint8_t* data,
                      uint64_t len);
  void JournalUndo(common::ExecContext& ctx, CpuPool& pool, uint64_t target_offset,
                   uint64_t len);

  // Batched group-commit staging: contiguous journal-entry stores accumulate
  // here and flush as one bulk Store+Clwb (before every Fence, and whenever
  // the ring run breaks — a wrap or a journal switch). The device's per-line
  // cost math is linear, so bulk == sum of per-slot charges exactly.
  void StageEntryStore(common::ExecContext& ctx, uint64_t off, const JournalEntry& entry);
  void FlushJournalStage(common::ExecContext& ctx);

  // NUMA policy (§3.6): home node per process, writes routed there.
  uint32_t HomeNodeFor(common::ExecContext& ctx);

  WineFsOptions wopts_;
  std::vector<std::unique_ptr<CpuPool>> pools_;
  std::atomic<uint64_t> next_txn_id_{1};

  // Active transaction, one slot per CPU: operations on one CPU are
  // serialized by that CPU's dram stripe (an op runs begin..commit without
  // interleaving), while ops on other CPUs run their own transactions
  // concurrently against their own journals. Nesting uses the depth counter.
  struct TxSlot {
    int depth = 0;
    uint32_t cpu = 0;
    uint64_t id = 0;
  };
  std::vector<TxSlot> tx_slots_{1};
  TxSlot& Tx(const common::ExecContext& ctx) {
    return tx_slots_[ctx.cpu % tx_slots_.size()];
  }

  std::unordered_map<uint32_t, uint32_t> home_node_;  // pid -> NUMA node
  common::SpinMutex home_mu_;                         // guards home_node_
  std::atomic<uint64_t> numa_local_allocs_{0};
  std::atomic<uint64_t> numa_remote_allocs_{0};

  // Journal group-commit staging state (active only inside ExecuteBatch),
  // one slot per CPU so concurrently-batching shards stage independently.
  struct StageSlot {
    bool staging = false;
    uint64_t base_off = 0;
    std::vector<uint8_t> buf;
  };
  std::vector<StageSlot> stage_slots_{1};
  StageSlot& Stage(const common::ExecContext& ctx) {
    return stage_slots_[ctx.cpu % stage_slots_.size()];
  }
};

}  // namespace winefs

#endif  // SRC_FS_WINEFS_WINEFS_H_
