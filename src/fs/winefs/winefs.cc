#include "src/fs/winefs/winefs.h"

#include "src/obs/trace.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

#include "src/common/prof_zone.h"
#include "src/common/units.h"
#include "src/vfs/op_batch.h"

namespace winefs {

using common::ErrorCode;
using common::ExecContext;
using common::kBlockSize;
using common::kBlocksPerHugepage;
using common::Result;
using common::Status;
using fscore::AllocIntent;
using fscore::Extent;
using fscore::Inode;

namespace {
// DRAM index operation cost (rb-tree / list manipulation).
constexpr uint64_t kAllocWorkNs = 90;
// Data-journaling segment cap so one transaction never overruns its ring.
constexpr uint64_t kMaxJournalSegBytes = 64 * 1024;
}  // namespace

WineFs::WineFs(pmem::PmemDevice* device, WineFsOptions options)
    : GenericFs(device, options.base), wopts_(options) {}

// --- Pool setup ---------------------------------------------------------------

void WineFs::SetupPoolGeometry(uint64_t data_start, uint64_t nblocks) {
  pools_.clear();
  const uint32_t ncpu = std::max<uint32_t>(1, options_.num_cpus);
  const uint64_t per_cpu = nblocks / ncpu;
  const uint64_t journal_per_cpu =
      wopts_.per_cpu_journals ? options_.journal_blocks / ncpu : options_.journal_blocks;
  for (uint32_t cpu = 0; cpu < ncpu; cpu++) {
    auto pool = std::make_unique<CpuPool>();
    pool->lock.set_site("winefs.pool.cpu" + std::to_string(cpu));
    pool->journal_lock.set_site(
        wopts_.per_cpu_journals ? "winefs.journal.cpu" + std::to_string(cpu)
                                : "winefs.journal.global");
    pool->start_block = data_start + cpu * per_cpu;
    pool->num_blocks = cpu == ncpu - 1 ? nblocks - cpu * per_cpu : per_cpu;
    pool->numa_node = device_->NumaNodeOf(pool->start_block * kBlockSize);
    if (wopts_.per_cpu_journals || cpu == 0) {
      pool->journal_pm_offset =
          (journal_start_block_ + (wopts_.per_cpu_journals ? cpu * journal_per_cpu : 0)) *
          kBlockSize;
      pool->capacity_entries = journal_per_cpu * kBlockSize / sizeof(JournalEntry);
    }
    pools_.push_back(std::move(pool));
  }
  // One tx/staging slot per CPU: a CPU's ops are serialized by its dram
  // stripe, so a slot never sees concurrent begin..commit interleaving.
  tx_slots_.assign(pools_.size(), TxSlot{});
  stage_slots_ = std::vector<StageSlot>(pools_.size());
}

void WineFs::InitAllocator(uint64_t data_start, uint64_t nblocks) {
  SetupPoolGeometry(data_start, nblocks);
  for (auto& pool_ptr : pools_) {
    CpuPool* pool = pool_ptr.get();
    // Carve the pool into aligned extents + edge holes.
    const uint64_t end = pool->start_block + pool->num_blocks;
    if (wopts_.alignment_aware) {
      const uint64_t first_aligned = common::RoundUp(pool->start_block, kBlocksPerHugepage);
      const uint64_t last_aligned = common::RoundDown(end, kBlocksPerHugepage);
      if (first_aligned > pool->start_block) {
        pool->holes.Release(pool->start_block,
                            std::min(first_aligned, end) - pool->start_block);
      }
      for (uint64_t chunk = first_aligned; chunk + kBlocksPerHugepage <= last_aligned;
           chunk += kBlocksPerHugepage) {
        pool->aligned.push_back(chunk);
      }
      if (last_aligned > first_aligned && last_aligned < end) {
        pool->holes.Release(last_aligned, end - last_aligned);
      }
    } else {
      pool->holes.Release(pool->start_block, pool->num_blocks);
    }
    pool->SyncCounts();
  }
  // Fresh journals.
  std::memset(device_->raw_span(journal_start_block_ * kBlockSize,
                                options_.journal_blocks * kBlockSize),
              0, options_.journal_blocks * kBlockSize);
}

void WineFs::RebuildAllocator(ExecContext& ctx, fscore::FreeSpaceMap&& free_map) {
  (void)ctx;
  // Recreate pool geometry, then distribute the scanned free space.
  SetupPoolGeometry(data_start_block_, data_blocks_);
  for (const auto& [start, len] : free_map.runs()) {
    uint64_t cursor = start;
    uint64_t remaining = len;
    while (remaining > 0) {
      CpuPool& pool = *pools_[PoolOfBlock(cursor)];
      const uint64_t pool_end = pool.start_block + pool.num_blocks;
      const uint64_t span = std::min(remaining, pool_end - cursor);
      if (wopts_.alignment_aware) {
        const uint64_t first_aligned = common::RoundUp(cursor, kBlocksPerHugepage);
        const uint64_t last_aligned = common::RoundDown(cursor + span, kBlocksPerHugepage);
        if (first_aligned + kBlocksPerHugepage <= last_aligned) {
          if (first_aligned > cursor) {
            pool.holes.Release(cursor, first_aligned - cursor);
          }
          for (uint64_t chunk = first_aligned; chunk + kBlocksPerHugepage <= last_aligned;
               chunk += kBlocksPerHugepage) {
            pool.aligned.push_back(chunk);
          }
          if (last_aligned < cursor + span) {
            pool.holes.Release(last_aligned, cursor + span - last_aligned);
          }
        } else {
          pool.holes.Release(cursor, span);
        }
      } else {
        pool.holes.Release(cursor, span);
      }
      cursor += span;
      remaining -= span;
    }
  }
  for (auto& pool : pools_) {
    pool->SyncCounts();
  }
}

uint32_t WineFs::PoolIndexFor(ExecContext& ctx) {
  const uint32_t base = ctx.cpu % pools_.size();
  if (!wopts_.numa_aware || device_->numa_nodes() <= 1) {
    return base;
  }
  const uint32_t home = HomeNodeFor(ctx);
  if (pools_[base]->numa_node == home) {
    numa_local_allocs_++;
    return base;
  }
  // Route the write to a pool on the process's home node (§3.6 Writes).
  for (uint32_t i = 0; i < pools_.size(); i++) {
    const uint32_t idx = (base + i) % pools_.size();
    if (pools_[idx]->numa_node == home) {
      numa_local_allocs_++;
      return idx;
    }
  }
  numa_remote_allocs_++;
  return base;
}

uint32_t WineFs::HomeNodeFor(ExecContext& ctx) {
  {
    std::lock_guard<common::SpinMutex> guard(home_mu_);
    auto it = home_node_.find(ctx.pid);
    if (it != home_node_.end()) {
      return it->second;
    }
  }
  // First create/write: pick the NUMA node with the most free space. Reads
  // the relaxed free-space mirrors so a concurrent shard's allocation only
  // makes the placement heuristic stale, never racy.
  std::map<uint32_t, uint64_t> free_per_node;
  for (const auto& pool : pools_) {
    free_per_node[pool->numa_node] +=
        pool->hole_free_count.load(std::memory_order_relaxed) +
        pool->aligned_count.load(std::memory_order_relaxed) * kBlocksPerHugepage;
  }
  uint32_t best = 0;
  uint64_t best_free = 0;
  for (const auto& [node, free] : free_per_node) {
    if (free >= best_free) {
      best = node;
      best_free = free;
    }
  }
  if (ctx.hazards != nullptr) {
    ctx.hazards->Note("winefs.numa_home");
  }
  std::lock_guard<common::SpinMutex> guard(home_mu_);
  home_node_[ctx.pid] = best;
  return best;
}

size_t WineFs::PoolOfBlock(uint64_t block) const {
  const uint64_t per_cpu = data_blocks_ / pools_.size();
  if (per_cpu == 0) {
    return 0;
  }
  const uint64_t rel = block - data_start_block_;
  return std::min(rel / per_cpu, pools_.size() - 1);
}

// --- Allocation ---------------------------------------------------------------

std::optional<uint64_t> WineFs::TakeAlignedChunk(ExecContext& ctx, uint32_t cpu) {
  ctx.clock.Advance(kAllocWorkNs);
  {
    CpuPool& local = *pools_[cpu];
    common::SimMutex::Guard guard(local.lock, ctx);
    if (!local.aligned.empty()) {
      const uint64_t chunk = local.aligned.front();
      local.aligned.pop_front();
      local.SyncCounts();
      return chunk;
    }
  }
  // Local pool dry: steal from the CPU with the most free aligned extents.
  // The scan reads the relaxed mirrors (stale-but-safe under host-parallel
  // shards); cross-shard stealing is a shard-purity hazard, so note it.
  if (ctx.hazards != nullptr) {
    ctx.hazards->Note("winefs.steal_aligned");
  }
  size_t best = pools_.size();
  size_t best_count = 0;
  for (size_t i = 0; i < pools_.size(); i++) {
    const size_t count = pools_[i]->aligned_count.load(std::memory_order_relaxed);
    if (count > best_count) {
      best = i;
      best_count = count;
    }
  }
  if (best == pools_.size()) {
    return std::nullopt;
  }
  CpuPool& victim = *pools_[best];
  common::SimMutex::Guard guard(victim.lock, ctx);
  if (victim.aligned.empty()) {
    return std::nullopt;
  }
  const uint64_t chunk = victim.aligned.front();
  victim.aligned.pop_front();
  victim.SyncCounts();
  return chunk;
}

std::optional<Extent> WineFs::TakeHoleBlocks(ExecContext& ctx, uint32_t cpu, uint64_t want) {
  ctx.clock.Advance(kAllocWorkNs);
  auto take_from = [&](CpuPool& pool) -> std::optional<Extent> {
    common::SimMutex::Guard guard(pool.lock, ctx);
    if (pool.holes.free_blocks() == 0) {
      return std::nullopt;
    }
    // First-fit by offset (§3.6): first run, clipped to `want`. Copy the run
    // bounds before ReserveRange invalidates the map node.
    const auto it = pool.holes.runs().begin();
    if (it == pool.holes.runs().end()) {
      return std::nullopt;
    }
    const uint64_t start = it->first;
    const uint64_t take = std::min(it->second, want);
    pool.holes.ReserveRange(start, take);
    pool.SyncCounts();
    return Extent{start, take};
  };

  if (auto ext = take_from(*pools_[cpu])) {
    return ext;
  }
  // Steal from the pool with the most free hole space (relaxed mirrors;
  // cross-shard steal is a shard-purity hazard).
  if (ctx.hazards != nullptr) {
    ctx.hazards->Note("winefs.steal_holes");
  }
  size_t best = cpu;
  uint64_t best_free = 0;
  for (size_t i = 0; i < pools_.size(); i++) {
    const uint64_t f = pools_[i]->hole_free_count.load(std::memory_order_relaxed);
    if (f > best_free) {
      best = i;
      best_free = f;
    }
  }
  if (best_free > 0) {
    if (auto ext = take_from(*pools_[best])) {
      return ext;
    }
  }
  // Every hole pool is dry: break one aligned extent into holes.
  if (auto chunk = TakeAlignedChunk(ctx, cpu)) {
    CpuPool& pool = *pools_[PoolOfBlock(*chunk)];
    {
      common::SimMutex::Guard guard(pool.lock, ctx);
      pool.holes.Release(*chunk, kBlocksPerHugepage);
      pool.SyncCounts();
    }
    return take_from(pool);
  }
  return std::nullopt;
}

Result<std::vector<Extent>> WineFs::AllocBlocks(ExecContext& ctx, Inode& inode,
                                                uint64_t nblocks, AllocIntent intent) {
  (void)inode;
  ctx.counters.alloc_requests++;
  const uint32_t cpu = PoolIndexFor(ctx);
  std::vector<Extent> result;
  uint64_t remaining = nblocks;

  // Hugepage-sized sub-requests are served from the aligned pool; metadata
  // and small requests always come from holes (contained fragmentation).
  const bool data_intent = intent == AllocIntent::kFileData;
  if (wopts_.alignment_aware && data_intent) {
    while (remaining >= kBlocksPerHugepage) {
      auto chunk = TakeAlignedChunk(ctx, cpu);
      if (!chunk.has_value()) {
        break;
      }
      result.push_back(Extent{*chunk, kBlocksPerHugepage});
      ctx.counters.aligned_allocs++;
      remaining -= kBlocksPerHugepage;
    }
  }
  while (remaining > 0) {
    auto ext = TakeHoleBlocks(ctx, cpu, remaining);
    if (!ext.has_value()) {
      // Roll back partial allocation.
      FreeBlocks(ctx, result);
      return ErrorCode::kNoSpace;
    }
    result.push_back(*ext);
    remaining -= ext->num_blocks;
  }
  return result;
}

void WineFs::ExtractAlignedFromHoles(CpuPool& pool, uint64_t around_block) {
  // After a merge, promote any fully-free aligned chunks back into the
  // aligned pool (§3.4: freed extents merge and convert to aligned extents).
  auto it = pool.holes.runs().upper_bound(around_block);
  if (it != pool.holes.runs().begin()) {
    --it;
  }
  if (it == pool.holes.runs().end()) {
    return;
  }
  const uint64_t run_start = it->first;
  const uint64_t run_len = it->second;
  const uint64_t first_aligned = common::RoundUp(run_start, kBlocksPerHugepage);
  const uint64_t last_aligned = common::RoundDown(run_start + run_len, kBlocksPerHugepage);
  for (uint64_t chunk = first_aligned; chunk + kBlocksPerHugepage <= last_aligned;
       chunk += kBlocksPerHugepage) {
    pool.holes.ReserveRange(chunk, kBlocksPerHugepage);
    pool.aligned.push_back(chunk);
  }
}

void WineFs::ReleaseToPool(ExecContext& ctx, const Extent& extent) {
  CpuPool& pool = *pools_[PoolOfBlock(extent.phys_block)];
  common::SimMutex::Guard guard(pool.lock, ctx);
  pool.holes.Release(extent.phys_block, extent.num_blocks);
  if (wopts_.alignment_aware) {
    ExtractAlignedFromHoles(pool, extent.phys_block);
  }
  pool.SyncCounts();
}

void WineFs::FreeBlocks(ExecContext& ctx, const std::vector<Extent>& extents) {
  for (const Extent& ext : extents) {
    ctx.clock.Advance(kAllocWorkNs);
    // An extent never spans pools (allocations are pool-local), but be
    // defensive about pool boundaries when rebuilding.
    uint64_t cursor = ext.phys_block;
    uint64_t remaining = ext.num_blocks;
    while (remaining > 0) {
      CpuPool& pool = *pools_[PoolOfBlock(cursor)];
      const uint64_t pool_end = pool.start_block + pool.num_blocks;
      const uint64_t span = std::min(remaining, pool_end - cursor);
      ReleaseToPool(ctx, Extent{cursor, span});
      cursor += span;
      remaining -= span;
    }
  }
}

// --- Journaling ----------------------------------------------------------------

void WineFs::StageEntryStore(ExecContext& ctx, uint64_t off, const JournalEntry& entry) {
  StageSlot& st = Stage(ctx);
  // A non-adjacent slot (ring wrap or journal switch) breaks the run: flush
  // the staged bytes first so device write order matches the scalar path.
  if (!st.buf.empty() && off != st.base_off + st.buf.size()) {
    FlushJournalStage(ctx);
  }
  if (st.buf.empty()) {
    st.base_off = off;
  }
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(&entry);
  st.buf.insert(st.buf.end(), bytes, bytes + sizeof(JournalEntry));
  // Charge the entry's store+clwb HERE, inside the caller's journal_lock
  // guard, exactly where the scalar path charges them. Deferring the charges
  // to the flush would shrink the modeled critical section — the lock's
  // watermark would release earlier than under scalar dispatch, and other
  // simulated threads would queue for less time (a real modeled divergence
  // under contention, invisible single-threaded). Only the host-side byte
  // movement is deferred and coalesced.
  device_->ChargeStagedStore(ctx, off, sizeof(JournalEntry));
}

void WineFs::FlushJournalStage(ExecContext& ctx) {
  StageSlot& st = Stage(ctx);
  if (st.buf.empty()) {
    return;
  }
  // Every staged entry was already charged at stage time; the coalesced run
  // is pure host-side data movement (staging is off whenever a fault
  // injector or crash tracking would observe per-store granularity).
  device_->StoreUncharged(st.base_off, st.buf.data(), st.buf.size());
  st.buf.clear();
}

void WineFs::AppendEntry(ExecContext& ctx, CpuPool& pool, const JournalEntry& entry) {
  common::SimMutex::Guard guard(pool.journal_lock, ctx);
  JournalEntry out = entry;
  out.magic = JournalEntry::kMagic;
  out.wrap = pool.wrap;
  out.csum = out.ComputeCsum();
  const uint64_t slot = pool.head;
  pool.head++;
  if (pool.head >= pool.capacity_entries) {
    pool.head = 0;
    pool.wrap++;
  }
  const uint64_t off = pool.journal_pm_offset + slot * sizeof(JournalEntry);
  if (Stage(ctx).staging) {
    StageEntryStore(ctx, off, out);
  } else {
    device_->Store(ctx, off, &out, sizeof(out));
    device_->Clwb(ctx, off, sizeof(out));
  }
  ctx.counters.journal_bytes += sizeof(out);
}

void WineFs::AppendRawSlots(ExecContext& ctx, CpuPool& pool, const uint8_t* data,
                            uint64_t len) {
  common::SimMutex::Guard guard(pool.journal_lock, ctx);
  if (Stage(ctx).staging) {
    // Keep write order: staged header entries precede their blob lines.
    FlushJournalStage(ctx);
    // Bulk the old image into the ring one contiguous run at a time. Only the
    // final chunk may be sub-cacheline, so ceil-division recovers exactly the
    // per-slot head advances and per-line NtStore charges of the loop below.
    uint64_t done = 0;
    while (done < len) {
      const uint64_t ring_bytes = (pool.capacity_entries - pool.head) * sizeof(JournalEntry);
      const uint64_t span = std::min(len - done, ring_bytes);
      const uint64_t off = pool.journal_pm_offset + pool.head * sizeof(JournalEntry);
      device_->NtStore(ctx, off, data + done, span);
      pool.head += (span + sizeof(JournalEntry) - 1) / sizeof(JournalEntry);
      if (pool.head >= pool.capacity_entries) {
        pool.head = 0;
        pool.wrap++;
      }
      done += span;
    }
    ctx.counters.journal_bytes += len;
    return;
  }
  uint64_t done = 0;
  while (done < len) {
    const uint64_t chunk = std::min<uint64_t>(common::kCacheline, len - done);
    const uint64_t slot = pool.head;
    pool.head++;
    if (pool.head >= pool.capacity_entries) {
      pool.head = 0;
      pool.wrap++;
    }
    const uint64_t off = pool.journal_pm_offset + slot * sizeof(JournalEntry);
    // Bulk old-image copy: non-temporal streaming stores.
    device_->NtStore(ctx, off, data + done, chunk);
    done += chunk;
  }
  ctx.counters.journal_bytes += len;
}

void WineFs::JournalUndo(ExecContext& ctx, CpuPool& pool, uint64_t target_offset,
                         uint64_t len) {
  obs::ScopedSpan span(ctx, obs::SpanCat::kJournalCommit, len);
  common::ProfileZone zone(ctx, common::ProfLayer::kJournal);
  if (len >= 1024) {
    // Data journaling of a large region: one blob header + the old image
    // packed into raw cachelines (the data is written twice, not four times).
    std::vector<uint8_t> old(len);
    // A poisoned old image journals as zeros: the in-place overwrite below
    // clears the poison, and a rollback then restores zeros — never stale
    // bytes (the poisoned region was unreadable anyway).
    (void)device_->Load(ctx, target_offset, old.data(), len);
    JournalEntry header;
    header.txn_id = Tx(ctx).id;
    header.type = JournalEntry::kUndoBlob;
    header.target_offset = target_offset;
    std::memcpy(header.payload, &len, sizeof(len));
    const uint64_t blob_csum = JournalEntry::Fnv1a(old.data(), len);
    std::memcpy(header.payload + sizeof(len), &blob_csum, sizeof(blob_csum));
    AppendEntry(ctx, pool, header);
    AppendRawSlots(ctx, pool, old.data(), len);
    FlushJournalStage(ctx);
    device_->Fence(ctx);
    return;
  }
  // Copy the old image into cacheline-sized undo entries, then fence so the
  // undo information is persistent before the in-place overwrite.
  uint8_t old[32];
  uint64_t done = 0;
  while (done < len) {
    const uint64_t chunk = std::min<uint64_t>(len - done, sizeof(old));
    // Poisoned old image journals as zeros; see the blob path above.
    (void)device_->Load(ctx, target_offset + done, old, chunk);
    JournalEntry entry;
    entry.txn_id = Tx(ctx).id;
    entry.type = JournalEntry::kUndoData;
    entry.payload_len = static_cast<uint8_t>(chunk);
    entry.target_offset = target_offset + done;
    std::memcpy(entry.payload, old, chunk);
    AppendEntry(ctx, pool, entry);
    done += chunk;
  }
  FlushJournalStage(ctx);
  device_->Fence(ctx);
}

void WineFs::TxBegin(ExecContext& ctx) {
  TxSlot& tx = Tx(ctx);
  tx.depth++;
  if (tx.depth > 1) {
    return;
  }
  common::ProfileZone zone(ctx, common::ProfLayer::kJournal);
  tx.cpu = wopts_.per_cpu_journals ? ctx.cpu % static_cast<uint32_t>(pools_.size()) : 0;
  // Shared atomic transaction counter: IDs are unique across per-CPU journals.
  tx.id = next_txn_id_.fetch_add(1);
  JournalEntry entry;
  entry.txn_id = tx.id;
  entry.type = JournalEntry::kStart;
  AppendEntry(ctx, JournalFor(tx.cpu), entry);
  FlushJournalStage(ctx);
  device_->Fence(ctx);
}

void WineFs::TxMetaWrite(ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                         const void* data, uint64_t len) {
  (void)owner;
  const bool self_contained = Tx(ctx).depth == 0;
  if (self_contained) {
    TxBegin(ctx);
  }
  CpuPool& pool = JournalFor(Tx(ctx).cpu);
  JournalUndo(ctx, pool, pm_offset, len);
  // In-place update, immediately persistent (all metadata ops synchronous).
  device_->Store(ctx, pm_offset, data, len);
  device_->Clwb(ctx, pm_offset, len);
  device_->Fence(ctx);
  if (self_contained) {
    TxCommit(ctx);
  }
}

void WineFs::TxCommit(ExecContext& ctx) {
  TxSlot& tx = Tx(ctx);
  assert(tx.depth > 0);
  tx.depth--;
  if (tx.depth > 0) {
    return;
  }
  obs::ScopedSpan span(ctx, obs::SpanCat::kJournalCommit, sizeof(JournalEntry));
  common::ProfileZone zone(ctx, common::ProfLayer::kJournal);
  JournalEntry entry;
  entry.txn_id = tx.id;
  entry.type = JournalEntry::kCommit;
  AppendEntry(ctx, JournalFor(tx.cpu), entry);
  FlushJournalStage(ctx);
  device_->Fence(ctx);
  // Space occupied by this committed transaction is immediately reclaimable
  // (§3.6); the ring simply advances.
}

Status WineFs::RecoverJournal(ExecContext& ctx) {
  // Pool/journal geometry may not exist yet on a fresh Mount; it is derivable
  // from the superblock fields GenericFs::Mount restored. SetupPoolGeometry
  // does not touch the device, so the journals are intact for scanning.
  SetupPoolGeometry(data_start_block_, data_blocks_);

  struct ScannedEntry {
    JournalEntry entry;
    uint64_t seq = 0;
    uint32_t journal = 0;
    uint64_t slot = 0;
  };
  std::vector<ScannedEntry> incomplete;

  // Poisoned journal region: if the filesystem was cleanly unmounted the
  // journal carries no undo state worth keeping — zero it (the full-block
  // rewrite clears the poison) and continue. If the filesystem was dirty, an
  // incomplete transaction may hide behind the media error; refuse the mount
  // with EIO rather than guess.
  const uint64_t journal_bytes = options_.journal_blocks * kBlockSize;
  if (!device_->ReadStatus(journal_start_block_ * kBlockSize, journal_bytes).ok()) {
    if (!mount_found_clean_) {
      return Status(common::ErrorCode::kIoError);
    }
    device_->Zero(ctx, journal_start_block_ * kBlockSize, journal_bytes);
    device_->Fence(ctx);
    for (auto& pool : pools_) {
      pool->head = 0;
      pool->wrap = 0;
    }
    return common::OkStatus();
  }

  const uint32_t njournals =
      wopts_.per_cpu_journals ? static_cast<uint32_t>(pools_.size()) : 1;
  for (uint32_t j = 0; j < njournals; j++) {
    CpuPool& pool = *pools_[j];
    if (pool.capacity_entries == 0) {
      continue;
    }
    std::vector<JournalEntry> slots(pool.capacity_entries);
    RETURN_IF_ERROR(device_->Load(ctx, pool.journal_pm_offset, slots.data(),
                                  slots.size() * sizeof(JournalEntry)));
    // Determine the newest wrap generation present (headers only: raw blob
    // cachelines carry arbitrary bytes and are filtered by the magic check).
    uint32_t max_wrap = 0;
    bool any = false;
    for (const JournalEntry& e : slots) {
      if (e.IsValidHeader()) {
        max_wrap = std::max(max_wrap, e.wrap);
        any = true;
      }
    }
    if (!any) {
      continue;
    }
    // Order valid entries: wrap max_wrap-1 slots after the newest wrap's
    // frontier, then wrap max_wrap slots from 0.
    std::vector<ScannedEntry> ordered;
    for (uint64_t s = 0; s < slots.size(); s++) {
      const JournalEntry& e = slots[s];
      if (!e.IsValidHeader()) {
        continue;
      }
      if (e.wrap == max_wrap) {
        ordered.push_back(ScannedEntry{e, max_wrap * slots.size() + s, j, s});
      } else if (e.wrap + 1 == max_wrap) {
        ordered.push_back(ScannedEntry{e, e.wrap * slots.size() + s, j, s});
      }
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const ScannedEntry& a, const ScannedEntry& b) { return a.seq < b.seq; });
    if (ordered.empty()) {
      continue;
    }
    // The only possibly-incomplete transaction is the one owning the tail
    // entries (operations are synchronous; space reclaimed at commit).
    const uint64_t tail_txn = ordered.back().entry.txn_id;
    bool committed = false;
    for (const ScannedEntry& e : ordered) {
      if (e.entry.txn_id == tail_txn && e.entry.type == JournalEntry::kCommit) {
        committed = true;
      }
    }
    if (!committed) {
      for (const ScannedEntry& e : ordered) {
        if (e.entry.txn_id == tail_txn) {
          incomplete.push_back(e);
        }
      }
    }
  }

  // Roll back incomplete transactions across journals in reverse global
  // transaction-ID order, applying undo images newest-first.
  std::sort(incomplete.begin(), incomplete.end(), [](const ScannedEntry& a,
                                                     const ScannedEntry& b) {
    if (a.entry.txn_id != b.entry.txn_id) {
      return a.entry.txn_id > b.entry.txn_id;
    }
    return a.seq > b.seq;
  });
  for (const ScannedEntry& e : incomplete) {
    if (e.entry.type == JournalEntry::kUndoData) {
      device_->Store(ctx, e.entry.target_offset, e.entry.payload, e.entry.payload_len);
      device_->Clwb(ctx, e.entry.target_offset, e.entry.payload_len);
    } else if (e.entry.type == JournalEntry::kUndoBlob) {
      // The old image sits in the raw cachelines following the header slot.
      uint64_t blob_len = 0;
      std::memcpy(&blob_len, e.entry.payload, sizeof(blob_len));
      uint64_t blob_csum = 0;
      std::memcpy(&blob_csum, e.entry.payload + sizeof(blob_len), sizeof(blob_csum));
      CpuPool& pool = *pools_[e.journal];
      std::vector<uint8_t> old(blob_len);
      uint64_t done = 0;
      uint64_t slot = (e.slot + 1) % pool.capacity_entries;
      while (done < blob_len) {
        const uint64_t chunk = std::min<uint64_t>(common::kCacheline, blob_len - done);
        RETURN_IF_ERROR(device_->Load(ctx,
                                      pool.journal_pm_offset + slot * sizeof(JournalEntry),
                                      old.data() + done, chunk));
        slot = (slot + 1) % pool.capacity_entries;
        done += chunk;
      }
      // Torn raw blob cachelines mean the crash hit while the undo image was
      // still being journaled, before the fence that precedes the in-place
      // overwrite — the target is intact, so skipping the rollback is safe
      // (and rolling back a torn image would not be).
      if (JournalEntry::Fnv1a(old.data(), blob_len) != blob_csum) {
        continue;
      }
      device_->Store(ctx, e.entry.target_offset, old.data(), blob_len);
      device_->Clwb(ctx, e.entry.target_offset, blob_len);
    }
  }
  device_->Fence(ctx);

  // Reset all journals to a clean state.
  device_->Zero(ctx, journal_start_block_ * kBlockSize, options_.journal_blocks * kBlockSize);
  device_->Fence(ctx);
  for (auto& pool : pools_) {
    pool->head = 0;
    pool->wrap = 0;
  }
  return common::OkStatus();
}

// --- Hybrid data atomicity (§3.4) ------------------------------------------------

Result<uint64_t> WineFs::WriteDataAtomic(ExecContext& ctx, Inode& inode, const void* src,
                                         uint64_t len, uint64_t offset) {
  if (inode.aligned_hint) {
    // Alignment xattr hint (§3.6): pre-allocate whole aligned chunks so even
    // rsync-style small appends land on hugepage-capable extents. The freshly
    // zeroed blocks are then updated via the aligned-region journaling path.
    auto ensured = EnsureBlocks(ctx, inode, offset, len, AllocIntent::kFileData);
    if (!ensured.ok()) {
      return ensured.status();
    }
  }
  const uint8_t* cursor = static_cast<const uint8_t*>(src);
  uint64_t pos = offset;
  uint64_t remaining = len;
  const uint64_t old_size = inode.size;
  std::vector<Extent> to_free;

  TxBegin(ctx);
  while (remaining > 0) {
    const uint64_t block = pos / kBlockSize;
    const uint64_t in_block = pos % kBlockSize;
    auto mapping = inode.extents.Lookup(block);
    if (mapping.has_value()) {
      const uint64_t run_bytes = mapping->contiguous_blocks * kBlockSize - in_block;
      uint64_t chunk = std::min(remaining, run_bytes);
      if (pos >= old_size) {
        // Append into already-allocated space beyond EOF (the partially full
        // tail block): there is no old data to protect, so write in place —
        // the journaled size update is the atomic commit point. This is why
        // WineFS beats NOVA on WiredTiger's unaligned appends (§5.5).
        const uint64_t phys_off = mapping->phys_block * kBlockSize + in_block;
        device_->NtStore(ctx, phys_off, cursor, chunk);
        cursor += chunk;
        pos += chunk;
        remaining -= chunk;
        continue;
      }
      // Protect only bytes that exist; the tail beyond EOF is fresh.
      chunk = std::min(chunk, old_size - pos);
      // Is this part of an aligned (hugepage-capable) region of the file?
      const uint64_t chunk_block = common::RoundDown(block, kBlocksPerHugepage);
      auto region = inode.extents.Lookup(chunk_block);
      const bool aligned_region =
          region.has_value() && region->contiguous_blocks >= kBlocksPerHugepage &&
          common::IsAligned(region->phys_block, kBlocksPerHugepage);
      if (aligned_region && wopts_.hybrid_atomicity) {
        // Data journaling: preserves the aligned layout at the cost of
        // writing the data twice. Segmented so a transaction fits the ring.
        chunk = std::min(chunk, kMaxJournalSegBytes);
        const uint64_t phys_off = mapping->phys_block * kBlockSize + in_block;
        JournalUndo(ctx, JournalFor(Tx(ctx).cpu), phys_off, chunk);
        device_->NtStore(ctx, phys_off, cursor, chunk);
        device_->Fence(ctx);
      } else {
        // Copy-on-write into fresh holes: the old blocks' layout does not
        // matter, so relocation is free of hugepage consequences.
        const uint64_t first = block;
        const uint64_t last = (pos + chunk - 1) / kBlockSize;
        const uint64_t nblocks = last - first + 1;
        uint64_t copied = 0;
        std::vector<Extent> fresh;
        uint64_t need = nblocks;
        while (need > 0) {
          auto ext = TakeHoleBlocks(ctx, PoolIndexFor(ctx), need);
          if (!ext.has_value()) {
            FreeBlocks(ctx, fresh);
            TxCommit(ctx);
            return ErrorCode::kNoSpace;
          }
          fresh.push_back(*ext);
          need -= ext->num_blocks;
        }
        // Assemble the new contents block range in a bounce buffer:
        // old edges + new data.
        std::vector<uint8_t> bounce(nblocks * kBlockSize);
        for (uint64_t b = 0; b < nblocks; b++) {
          auto old_map = inode.extents.Lookup(first + b);
          assert(old_map.has_value());
          auto loaded = device_->Load(ctx, old_map->phys_block * kBlockSize,
                                      bounce.data() + b * kBlockSize, kBlockSize);
          if (!loaded.ok()) {
            // Poisoned old data: refuse the CoW rather than relocate zeros
            // over the reader-visible (still EIO-returning) blocks.
            FreeBlocks(ctx, fresh);
            TxCommit(ctx);
            return loaded;
          }
          copied += kBlockSize;
        }
        std::memcpy(bounce.data() + in_block, cursor, chunk);
        uint64_t logical = first;
        uint64_t written = 0;
        std::vector<Extent> old = inode.extents.Remove(first, nblocks);
        for (const Extent& ext : fresh) {
          device_->NtStore(ctx, ext.phys_block * kBlockSize, bounce.data() + written,
                           ext.num_blocks * kBlockSize);
          inode.extents.Insert(logical, ext.phys_block, ext.num_blocks);
          logical += ext.num_blocks;
          written += ext.num_blocks * kBlockSize;
        }
        device_->Fence(ctx);
        ctx.counters.cow_bytes += copied;
        for (const Extent& ext : old) {
          to_free.push_back(ext);
        }
      }
      cursor += chunk;
      pos += chunk;
      remaining -= chunk;
    } else {
      // Unallocated range: fresh blocks, no old data to protect. The extent
      // insert below only becomes visible at the journaled inode commit.
      uint64_t hole_end_block = block + 1;
      const uint64_t want_end = (pos + remaining - 1) / kBlockSize;
      while (hole_end_block <= want_end &&
             !inode.extents.Lookup(hole_end_block).has_value()) {
        hole_end_block++;
      }
      const uint64_t nblocks = hole_end_block - block;
      auto alloc = AllocBlocks(ctx, inode, nblocks, AllocIntent::kFileData);
      if (!alloc.ok()) {
        TxCommit(ctx);
        return alloc.status();
      }
      uint64_t logical = block;
      for (const Extent& ext : *alloc) {
        device_->Zero(ctx, ext.phys_block * kBlockSize, ext.num_blocks * kBlockSize);
        inode.extents.Insert(logical, ext.phys_block, ext.num_blocks);
        logical += ext.num_blocks;
      }
      const uint64_t chunk = std::min(remaining, nblocks * kBlockSize - in_block);
      // Write the fresh data run by run.
      uint64_t done = 0;
      while (done < chunk) {
        const uint64_t p = pos + done;
        auto m = inode.extents.Lookup(p / kBlockSize);
        const uint64_t run = m->contiguous_blocks * kBlockSize - p % kBlockSize;
        const uint64_t piece = std::min(chunk - done, run);
        device_->NtStore(ctx, m->phys_block * kBlockSize + p % kBlockSize, cursor + done,
                         piece);
        done += piece;
      }
      device_->Fence(ctx);
      cursor += chunk;
      pos += chunk;
      remaining -= chunk;
    }
  }
  if (offset + len > inode.size) {
    inode.size = offset + len;
  }
  PersistInode(ctx, inode);
  TxCommit(ctx);
  if (!to_free.empty()) {
    FreeBlocks(ctx, to_free);
  }
  return len;
}

Status WineFs::FsyncImpl(ExecContext& ctx, Inode& inode) {
  // All WineFS operations are synchronous and immediately durable; fsync only
  // needs the drain the caller (GenericFs::Fsync) issues.
  (void)ctx;
  (void)inode;
  return common::OkStatus();
}

void WineFs::ExecuteBatch(ExecContext& ctx, const vfs::OpBatch& batch,
                          std::vector<vfs::OpResult>& results) {
  DramStripeGuard guard(dram_mu_.Stripe(ctx.cpu));
  // Group-commit coalescing needs per-store hooks to be absent: a fault
  // injector or crash-tracking session observes individual journal stores,
  // so those configurations run with per-slot writes (still through the
  // native resolve/fd caches).
  Stage(ctx).staging =
      device_->fault_injector() == nullptr && !device_->crash_tracking_enabled();
  ExecuteBatchNative(ctx, batch, results);
  // Every journaled op fences (and therefore flushes) before returning; this
  // is a backstop so no staged bytes can outlive the batch.
  FlushJournalStage(ctx);
  Stage(ctx).staging = false;
}

// --- Introspection / reactive rewriting ---------------------------------------------

vfs::FreeSpaceInfo WineFs::FreeSpace() {
  vfs::FreeSpaceInfo info;
  info.total_blocks = data_blocks_;
  for (const auto& pool : pools_) {
    info.free_blocks += pool->holes.free_blocks() + pool->aligned.size() * kBlocksPerHugepage;
    info.free_aligned_extents +=
        pool->aligned.size() + pool->holes.CountAlignedFreeRegions();
    info.largest_free_extent_blocks =
        std::max({info.largest_free_extent_blocks, pool->holes.LargestRun(),
                  pool->aligned.empty() ? 0 : kBlocksPerHugepage});
  }
  return info;
}

uint64_t WineFs::FreeAlignedExtents() const {
  uint64_t count = 0;
  for (const auto& pool : pools_) {
    count += pool->aligned.size();
  }
  return count;
}

void WineFs::SampleGauges(obs::GaugeSample& out) {
  GenericFs::SampleGauges(out);
  std::lock_guard<fscore::DomainMutex> guard(dram_mu_);
  fscore::FreeSpaceMap::RunLengthHistogram hist;
  uint64_t aligned_min = UINT64_MAX;
  uint64_t aligned_max = 0;
  uint64_t free_min = UINT64_MAX;
  uint64_t free_max = 0;
  uint64_t journal_entries = 0;
  uint64_t journal_wraps = 0;
  for (const auto& pool : pools_) {
    hist += pool->holes.RunHistogram();
    const uint64_t aligned = pool->aligned.size();
    aligned_min = std::min(aligned_min, aligned);
    aligned_max = std::max(aligned_max, aligned);
    const uint64_t free =
        pool->holes.free_blocks() + aligned * kBlocksPerHugepage;
    free_min = std::min(free_min, free);
    free_max = std::max(free_max, free);
    journal_entries += pool->wrap * pool->capacity_entries + pool->head;
    journal_wraps += pool->wrap;
  }
  SetRunHistogramGauges(hist, out);
  out.Set("pool_aligned_min", static_cast<double>(pools_.empty() ? 0 : aligned_min));
  out.Set("pool_aligned_max", static_cast<double>(aligned_max));
  out.Set("pool_free_min_blocks", static_cast<double>(pools_.empty() ? 0 : free_min));
  out.Set("pool_free_max_blocks", static_cast<double>(free_max));
  out.Set("journal_entries_written", static_cast<double>(journal_entries));
  out.Set("journal_wraps", static_cast<double>(journal_wraps));
}

bool WineFs::NeedsRewrite(const std::string& path) {
  common::ExecContext probe;
  std::lock_guard<fscore::DomainMutex> guard(dram_mu_);
  auto st = Stat(probe, path);
  if (!st.ok() || st->is_dir || st->size < common::kHugepageSize) {
    return false;
  }
  const Inode* inode = FindInode(st->ino);
  if (inode == nullptr) {
    return false;
  }
  const uint64_t chunks = st->size / common::kHugepageSize;
  uint64_t huge_capable = 0;
  for (uint64_t c = 0; c < chunks; c++) {
    auto m = inode->extents.Lookup(c * kBlocksPerHugepage);
    if (m.has_value() && m->contiguous_blocks >= kBlocksPerHugepage &&
        common::IsAligned(m->phys_block, kBlocksPerHugepage)) {
      huge_capable++;
    }
  }
  return huge_capable < chunks;
}

Status WineFs::ReactiveRewrite(ExecContext& ctx, const std::string& path) {
  std::lock_guard<fscore::DomainMutex> guard(dram_mu_);
  if (!NeedsRewrite(path)) {
    return common::OkStatus();
  }
  auto st = Stat(ctx, path);
  if (!st.ok()) {
    return st.status();
  }
  Inode* inode = const_cast<Inode*>(FindInode(st->ino));
  common::SimMutex::Guard file_guard(inode_locks_.LockFor(inode->ino), ctx);

  // Read the fragmented file...
  const uint64_t nblocks = common::BytesToBlocks(inode->size);
  std::vector<uint8_t> data(nblocks * kBlockSize);
  for (uint64_t b = 0; b < nblocks;) {
    auto m = inode->extents.Lookup(b);
    if (m.has_value()) {
      const uint64_t run = std::min(m->contiguous_blocks, nblocks - b);
      // Poisoned file data: leave the fragmented layout alone rather than
      // rewrite zeros over blocks whose reads still (correctly) return EIO.
      RETURN_IF_ERROR(device_->Load(ctx, m->phys_block * kBlockSize,
                                    data.data() + b * kBlockSize, run * kBlockSize));
      b += run;
    } else {
      b++;
    }
  }
  // ... allocate big, write, and atomically swap the extent list.
  auto alloc = AllocBlocks(ctx, *inode, nblocks, AllocIntent::kFileData);
  if (!alloc.ok()) {
    return alloc.status();
  }
  uint64_t written = 0;
  for (const Extent& ext : *alloc) {
    device_->NtStore(ctx, ext.phys_block * kBlockSize, data.data() + written,
                     ext.num_blocks * kBlockSize);
    written += ext.num_blocks * kBlockSize;
  }
  device_->Fence(ctx);
  TxBegin(ctx);
  std::vector<Extent> old = inode->extents.Remove(0, nblocks);
  uint64_t logical = 0;
  for (const Extent& ext : *alloc) {
    inode->extents.Insert(logical, ext.phys_block, ext.num_blocks);
    logical += ext.num_blocks;
  }
  PersistInode(ctx, *inode);
  TxCommit(ctx);
  FreeBlocks(ctx, old);
  return common::OkStatus();
}

}  // namespace winefs
