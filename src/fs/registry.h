// Factory: create any modeled filesystem by its paper name. Used by tests,
// benches, and examples so every experiment iterates the same lineup.
#ifndef SRC_FS_REGISTRY_H_
#define SRC_FS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fs/ext4dax/ext4dax.h"
#include "src/fs/nova/nova.h"
#include "src/fs/pmfs/pmfs.h"
#include "src/fs/splitfs/splitfs.h"
#include "src/fs/strata/strata.h"
#include "src/fs/winefs/winefs.h"
#include "src/fs/xfsdax/xfsdax.h"

namespace fsreg {

// `lock_domains` shards the VFS front end (per-CPU dentry/fd lock domains)
// for host-parallel sharded runs; the default of 1 keeps the historical
// global-critical-section model bit-for-bit (see vfs::VfsSharedPath).
inline std::unique_ptr<vfs::FileSystem> Create(const std::string& name,
                                               pmem::PmemDevice* device,
                                               uint32_t num_cpus = 4,
                                               uint32_t lock_domains = 1) {
  if (name == "winefs") {
    winefs::WineFsOptions options;
    options.base.num_cpus = num_cpus;
    options.base.lock_domains = lock_domains;
    return std::make_unique<winefs::WineFs>(device, options);
  }
  if (name == "winefs-relaxed") {
    winefs::WineFsOptions options;
    options.base.num_cpus = num_cpus;
    options.base.lock_domains = lock_domains;
    options.base.mode = vfs::GuaranteeMode::kRelaxed;
    return std::make_unique<winefs::WineFs>(device, options);
  }
  if (name == "ext4-dax") {
    return std::make_unique<ext4dax::Ext4Dax>(device, ext4dax::Ext4Options{});
  }
  if (name == "xfs-dax") {
    return std::make_unique<xfsdax::XfsDax>(device);
  }
  if (name == "pmfs") {
    return std::make_unique<pmfs::Pmfs>(device);
  }
  if (name == "pmfs-delayed") {
    // Injected delayed-metadata vulnerability (crash-campaign victim): plain
    // metadata stores, persistence deferred to fsync/unmount.
    pmfs::PmfsOptions options;
    options.delayed_metadata = true;
    return std::make_unique<pmfs::Pmfs>(device, options);
  }
  if (name == "nova") {
    nova::NovaOptions options;
    options.base.num_cpus = num_cpus;
    options.base.lock_domains = lock_domains;
    return std::make_unique<nova::Nova>(device, options);
  }
  if (name == "nova-relaxed") {
    nova::NovaOptions options;
    options.base.num_cpus = num_cpus;
    options.base.lock_domains = lock_domains;
    options.base.mode = vfs::GuaranteeMode::kRelaxed;
    return std::make_unique<nova::Nova>(device, options);
  }
  if (name == "splitfs") {
    return std::make_unique<splitfs::SplitFs>(device);
  }
  if (name == "strata") {
    nova::NovaOptions options;
    options.base.num_cpus = num_cpus;
    options.base.lock_domains = lock_domains;
    return std::make_unique<strata::Strata>(device, options);
  }
  return nullptr;
}

// The relaxed-guarantee lineup (metadata consistency), Fig 7(a-c)/Fig 9(a-c).
inline std::vector<std::string> RelaxedLineup() {
  return {"ext4-dax", "xfs-dax", "pmfs", "nova-relaxed", "splitfs", "winefs-relaxed"};
}

// The strict-guarantee lineup (data + metadata consistency), Fig 7(d-f)/Fig 9(d-f).
inline std::vector<std::string> StrictLineup() { return {"nova", "strata", "winefs"}; }

}  // namespace fsreg

#endif  // SRC_FS_REGISTRY_H_
