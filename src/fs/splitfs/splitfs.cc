#include "src/fs/splitfs/splitfs.h"

#include "src/obs/trace.h"

#include "src/common/units.h"

namespace splitfs {

using common::ExecContext;
using common::Result;
using common::Status;
using fscore::Inode;

namespace {
// User-level dispatch (no trap, no VFS): a library call plus bookkeeping.
constexpr uint64_t kUserPathNs = 180;
}  // namespace

vfs::IoResult SplitFs::Append(ExecContext& ctx, int fd, const void* src, uint64_t len) {
  ctx.clock.Advance(kUserPathNs);
  std::lock_guard<fscore::DomainMutex> guard(dram_mu_);
  Inode* inode = GetInodeByFd(fd);
  if (inode == nullptr) {
    return common::ErrorCode::kBadFd;
  }
  common::SimMutex::Guard file_guard(inode_locks_.LockFor(inode->ino), ctx);
  const uint64_t offset = inode->size;
  // Staged append: data lands durably in pre-allocated blocks; the size/extent
  // metadata is relinked at the next fsync.
  relink_mode_ = true;
  auto written = WriteDataInPlace(ctx, *inode, src, len, offset, /*persist_data=*/true);
  relink_mode_ = false;
  if (!written.ok()) {
    return written.status();
  }
  relink_pending_ = true;
  return offset;
}

vfs::IoResult SplitFs::Pwrite(ExecContext& ctx, int fd, const void* src, uint64_t len,
                              uint64_t offset) {
  ctx.clock.Advance(kUserPathNs);
  std::lock_guard<fscore::DomainMutex> guard(dram_mu_);
  Inode* inode = GetInodeByFd(fd);
  if (inode == nullptr) {
    return common::ErrorCode::kBadFd;
  }
  common::SimMutex::Guard file_guard(inode_locks_.LockFor(inode->ino), ctx);
  relink_mode_ = true;
  auto written = WriteDataInPlace(ctx, *inode, src, len, offset, /*persist_data=*/true);
  relink_mode_ = false;
  if (!written.ok()) {
    return written.status();
  }
  relink_pending_ = true;
  return *written;
}

void SplitFs::TxMetaWrite(ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                          const void* data, uint64_t len) {
  if (relink_mode_) {
    // User-level relink journal: a couple of cacheline writes, no JBD2.
    obs::ScopedSpan span(ctx, obs::SpanCat::kJournalCommit, len);
    device_->Store(ctx, pm_offset, data, len);
    device_->Clwb(ctx, pm_offset, len);
    device_->Fence(ctx);
    ctx.counters.journal_bytes += 128;
    ctx.clock.Advance(2 * device_->cost().pm_store_ns);
    return;
  }
  Ext4Dax::TxMetaWrite(ctx, owner, pm_offset, data, len);
}

Status SplitFs::FsyncImpl(ExecContext& ctx, Inode& inode) {
  if (relink_pending_) {
    relink_pending_ = false;
    // Relink: user-level journaled pointer swap, cheap and per-file.
    ctx.counters.journal_bytes += 192;
    ctx.clock.Advance(3 * device_->cost().pm_store_ns + device_->cost().sfence_ns);
  }
  // Namespace metadata (creates/unlinks) still rides ext4's JBD2.
  return Ext4Dax::FsyncImpl(ctx, inode);
}

}  // namespace splitfs
