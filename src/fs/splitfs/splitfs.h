// SplitFS model: a user-space data path stapled onto ext4-DAX (§5.5, §5.6).
// Appends and overwrites bypass the kernel (no trap cost) and stage into
// pre-allocated blocks; fsync "relinks" the staged data with a tiny
// user-level journal instead of a full JBD2 commit — unless namespace
// metadata is dirty, in which case it inherits ext4's JBD2 (its scalability
// ceiling for creates and deletes).
#ifndef SRC_FS_SPLITFS_SPLITFS_H_
#define SRC_FS_SPLITFS_SPLITFS_H_

#include "src/fs/ext4dax/ext4dax.h"

namespace splitfs {

class SplitFs : public ext4dax::Ext4Dax {
 public:
  SplitFs(pmem::PmemDevice* device, ext4dax::Ext4Options options = {})
      : Ext4Dax(device, std::move(options)) {}

  std::string_view Name() const override { return "splitfs"; }

  // User-level data path: no syscall trap, staged writes.
  vfs::IoResult Append(common::ExecContext& ctx, int fd, const void* src,
                       uint64_t len) override;
  vfs::IoResult Pwrite(common::ExecContext& ctx, int fd, const void* src, uint64_t len,
                       uint64_t offset) override;

 protected:
  void TxMetaWrite(common::ExecContext& ctx, vfs::InodeNum owner, uint64_t pm_offset,
                   const void* data, uint64_t len) override;
  common::Status FsyncImpl(common::ExecContext& ctx, fscore::Inode& inode) override;

 private:
  // When true, metadata writes go through the cheap user-level relink journal
  // instead of JBD2.
  bool relink_mode_ = false;
  bool relink_pending_ = false;
};

}  // namespace splitfs

#endif  // SRC_FS_SPLITFS_SPLITFS_H_
