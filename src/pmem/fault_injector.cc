#include "src/pmem/fault_injector.h"

namespace pmem {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan), rng_(plan.seed) {}

void FaultInjector::PoisonRange(uint64_t offset, uint64_t len) {
  if (len == 0) {
    return;
  }
  const uint64_t first = offset / kMediaBlockBytes;
  const uint64_t last = (offset + len - 1) / kMediaBlockBytes;
  for (uint64_t block = first; block <= last; block++) {
    poisoned_.insert(block);
  }
}

void FaultInjector::ClearPoisonRange(uint64_t offset, uint64_t len) {
  if (len == 0) {
    return;
  }
  const uint64_t first = offset / kMediaBlockBytes;
  const uint64_t last = (offset + len - 1) / kMediaBlockBytes;
  for (uint64_t block = first; block <= last; block++) {
    poisoned_.erase(block);
  }
}

bool FaultInjector::IsPoisoned(uint64_t offset, uint64_t len) const {
  if (len == 0 || poisoned_.empty()) {
    return false;
  }
  const uint64_t first = offset / kMediaBlockBytes;
  const uint64_t last = (offset + len - 1) / kMediaBlockBytes;
  for (uint64_t block = first; block <= last; block++) {
    if (poisoned_.count(block) != 0) {
      return true;
    }
  }
  return false;
}

void FaultInjector::NoteStore(uint64_t offset, uint64_t len) {
  if (poisoned_.empty() || len < kMediaBlockBytes) {
    return;
  }
  // Only media blocks FULLY covered by [offset, offset+len) are re-ECCed.
  const uint64_t first_full = (offset + kMediaBlockBytes - 1) / kMediaBlockBytes;
  const uint64_t end_full = (offset + len) / kMediaBlockBytes;  // exclusive
  for (uint64_t block = first_full; block < end_full; block++) {
    poisoned_.erase(block);
  }
}

uint64_t FaultInjector::AccessDelayNs() {
  if (plan_.latency_spike_prob <= 0.0 || plan_.latency_spike_ns == 0) {
    return 0;
  }
  if (!rng_.NextBool(plan_.latency_spike_prob)) {
    return 0;
  }
  spikes_++;
  return plan_.latency_spike_ns;
}

std::vector<uint8_t> FaultInjector::TornLaneMasks(uint64_t line_seq,
                                                 uint32_t max_variants) const {
  std::vector<uint8_t> masks;
  if (max_variants == 0) {
    return masks;
  }
  // A private stream per line keeps the masks independent of enumeration
  // order: the same (seed, line_seq) always yields the same variants.
  common::Rng rng(plan_.seed * 0x9e3779b97f4a7c15ull + line_seq);
  // Always include one prefix tear (lanes written in address order made it
  // out, the tail did not) — the single most common real-world tear shape.
  const uint32_t prefix = static_cast<uint32_t>(rng.NextInRange(1, kLanesPerLine - 1));
  masks.push_back(static_cast<uint8_t>((1u << prefix) - 1u));
  uint32_t attempts = 0;
  while (masks.size() < max_variants && attempts++ < 8 * max_variants) {
    const uint8_t mask = static_cast<uint8_t>(rng.NextInRange(1, 0xfe));
    bool duplicate = false;
    for (uint8_t seen : masks) {
      if (seen == mask) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      masks.push_back(mask);
    }
  }
  return masks;
}

}  // namespace pmem
