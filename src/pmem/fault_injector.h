// Seedable, deterministic fault plan for the simulated PM device.
//
// Three fault classes, mirroring what real Optane DIMMs do to filesystems:
//  * Torn stores: x86 only guarantees 8-byte atomic persistence, so a crash
//    mid-flush can land any subset of a cacheline's eight 8-byte lanes on
//    media. TornLaneMasks() yields deterministic lane subsets per store
//    sequence number; crashmk::Explorer composes them with its crash points.
//  * Poisoned media blocks: an uncorrectable error covers one 256 B media
//    block (the DIMM's internal ECC granularity). Loads that touch a poisoned
//    block return kIoError and zero the destination — never stale bytes. A
//    store that overwrites a whole media block re-ECCs it and clears the
//    poison, which is exactly the repair path real PM filesystems use.
//  * Latency spikes: transient slow accesses (thermal throttling, media
//    management) injected through the device's cost model with a seeded
//    probability, accounted in PerfCounters::pm_latency_spikes.
//
// Everything is a pure function of FaultPlan::seed and the call arguments, so
// a failing exploration reproduces from its seed alone.
#ifndef SRC_PMEM_FAULT_INJECTOR_H_
#define SRC_PMEM_FAULT_INJECTOR_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"

namespace pmem {

// Granularity of uncorrectable media errors (Optane's internal ECC block).
inline constexpr uint64_t kMediaBlockBytes = 256;

// Number of 8-byte atomic lanes in one 64 B cacheline.
inline constexpr uint32_t kLanesPerLine = 8;
inline constexpr uint64_t kLaneBytes = 8;

struct FaultPlan {
  uint64_t seed = 1;
  // Probability that any single device access pays `latency_spike_ns` extra.
  double latency_spike_prob = 0.0;
  uint64_t latency_spike_ns = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  // --- Poisoned media blocks -------------------------------------------

  // Marks every 256 B media block overlapping [offset, offset+len) poisoned.
  void PoisonRange(uint64_t offset, uint64_t len);
  void ClearPoisonRange(uint64_t offset, uint64_t len);
  // True if any media block overlapping the range is poisoned.
  bool IsPoisoned(uint64_t offset, uint64_t len) const;
  size_t poisoned_block_count() const { return poisoned_.size(); }

  // Store notification from the device: media blocks fully covered by the
  // store are rewritten (re-ECCed) and lose their poison; partially covered
  // blocks stay poisoned (the device would have to read-modify-write them).
  void NoteStore(uint64_t offset, uint64_t len);

  // --- Latency spikes ---------------------------------------------------

  // Extra nanoseconds to charge for one device access (0 almost always).
  // Deterministic given the seed and the sequence of calls.
  uint64_t AccessDelayNs();
  uint64_t spike_count() const { return spikes_; }

  // --- Torn stores ------------------------------------------------------

  // Deterministic 8-byte-lane subsets for tearing the cacheline with store
  // sequence number `line_seq`. Each mask has bits 0..7 = lanes that reached
  // media; masks are non-trivial (neither empty nor full, those are already
  // covered by whole-line crash enumeration). At most `max_variants` masks.
  std::vector<uint8_t> TornLaneMasks(uint64_t line_seq, uint32_t max_variants) const;

 private:
  FaultPlan plan_;
  common::Rng rng_;  // latency-spike stream
  std::unordered_set<uint64_t> poisoned_;  // media-block indices
  uint64_t spikes_ = 0;
};

}  // namespace pmem

#endif  // SRC_PMEM_FAULT_INJECTOR_H_
