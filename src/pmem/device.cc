#include "src/pmem/device.h"

#include <algorithm>
#include <cassert>

#include "src/common/prof_zone.h"

namespace pmem {

using common::kCacheline;

PmemDevice::PmemDevice(uint64_t size_bytes, CostModel model, uint32_t numa_nodes)
    : data_(size_bytes, 0), model_(model), numa_nodes_(numa_nodes == 0 ? 1 : numa_nodes) {}

PmemDevice::PmemDevice(const DeviceSnapshot& base)
    : data_(base.size(), 0),
      model_(base.model),
      numa_nodes_(base.numa_nodes == 0 ? 1 : base.numa_nodes),
      cow_base_(base.bytes) {
  assert(base.valid());
  const uint64_t chunks = (data_.size() + kSnapChunkBytes - 1) / kSnapChunkBytes;
  cow_present_.assign(chunks, false);
  cow_pending_ = chunks;
  if (chunks == 0) {
    cow_base_.reset();
  } else {
    cow_active_.store(true, std::memory_order_release);
  }
}

void PmemDevice::MaterializeRange(uint64_t offset, uint64_t len) {
  assert(offset + len <= data_.size());
  std::lock_guard<std::mutex> guard(cow_fork_mu_);
  if (cow_base_ == nullptr) {
    return;  // raced with the final materialization
  }
  const uint64_t first = offset / kSnapChunkBytes;
  const uint64_t last = (offset + len - 1) / kSnapChunkBytes;
  const uint8_t* base = cow_base_->data();
  for (uint64_t c = first; c <= last; c++) {
    if (cow_present_[c]) {
      continue;
    }
    const uint64_t chunk_off = c * kSnapChunkBytes;
    const uint64_t chunk_len = std::min<uint64_t>(kSnapChunkBytes, data_.size() - chunk_off);
    std::memcpy(data_.data() + chunk_off, base + chunk_off, chunk_len);
    cow_present_[c] = true;
    cow_chunks_copied_++;
    cow_pending_--;
  }
  if (cow_pending_ == 0) {
    cow_base_.reset();
    cow_present_.clear();
    cow_active_.store(false, std::memory_order_release);
  }
}

void PmemDevice::MaterializeAll() {
  if (is_cow_fork() && data_.size() > 0) {
    MaterializeRange(0, data_.size());
  }
}

DeviceSnapshot PmemDevice::Snapshot() const {
  const_cast<PmemDevice*>(this)->MaterializeAll();
  DeviceSnapshot snap;
  snap.bytes = std::make_shared<const std::vector<uint8_t>>(data_);
  snap.model = model_;
  snap.numa_nodes = numa_nodes_;
  return snap;
}

uint32_t PmemDevice::NumaNodeOf(uint64_t offset) const {
  const uint64_t region = data_.size() / numa_nodes_;
  if (region == 0) {
    return 0;
  }
  return static_cast<uint32_t>(std::min<uint64_t>(offset / region, numa_nodes_ - 1));
}

void PmemDevice::RecordStore(uint64_t offset, uint64_t len, bool flushed) {
  if (!crash_tracking_) {
    return;
  }
  std::lock_guard<std::mutex> guard(crash_mu_);
  const uint64_t first = common::RoundDown(offset, kCacheline);
  const uint64_t last = common::RoundDown(offset + len - 1, kCacheline);
  for (uint64_t line = first; line <= last; line += kCacheline) {
    auto it = pending_index_.find(line);
    size_t idx;
    if (it == pending_index_.end()) {
      idx = pending_.size();
      pending_.push_back(PendingLine{});
      pending_index_[line] = idx;
    } else {
      idx = it->second;
    }
    PendingLine& pl = pending_[idx];
    pl.line_offset = line;
    pl.flushed = flushed;
    pl.seq = next_seq_++;
    std::memcpy(pl.data, data_.data() + line, kCacheline);
  }
}

void PmemDevice::ChargeFaultDelay(common::ExecContext& ctx) {
  if (injector_ == nullptr) {
    return;
  }
  const uint64_t extra = injector_->AccessDelayNs();
  if (extra != 0) {
    ctx.clock.Advance(extra);
    ctx.counters.pm_latency_spikes++;
  }
}

void PmemDevice::Store(common::ExecContext& ctx, uint64_t offset, const void* src,
                       uint64_t len) {
  common::ProfileZone zone(ctx, common::ProfLayer::kDevice);
  assert(offset + len <= data_.size());
  Touch(offset, len);
  std::memcpy(data_.data() + offset, src, len);
  const uint64_t lines = (len + kCacheline - 1) / kCacheline;
  ctx.clock.Advance(lines * model_.pm_store_ns);
  ctx.counters.pm_write_bytes += len;
  ChargeFaultDelay(ctx);
  NoteStoreFaults(offset, len);
  RecordStore(offset, len, /*flushed=*/false);
}

void PmemDevice::NtStore(common::ExecContext& ctx, uint64_t offset, const void* src,
                         uint64_t len) {
  common::ProfileZone zone(ctx, common::ProfLayer::kDevice);
  assert(offset + len <= data_.size());
  Touch(offset, len);
  std::memcpy(data_.data() + offset, src, len);
  const uint64_t lines = (len + kCacheline - 1) / kCacheline;
  ctx.clock.Advance(lines * model_.pm_store_seq_ns);
  ctx.counters.pm_write_bytes += len;
  ChargeFaultDelay(ctx);
  NoteStoreFaults(offset, len);
  RecordStore(offset, len, /*flushed=*/true);
}

common::Status PmemDevice::Load(common::ExecContext& ctx, uint64_t offset, void* dst,
                                uint64_t len, bool sequential) {
  common::ProfileZone zone(ctx, common::ProfLayer::kDevice);
  assert(offset + len <= data_.size());
  const uint64_t lines = (len + kCacheline - 1) / kCacheline;
  ctx.clock.Advance(lines * (sequential ? model_.pm_load_seq_ns : model_.pm_load_random_ns));
  ctx.counters.pm_read_bytes += len;
  ChargeFaultDelay(ctx);
  if (injector_ != nullptr && injector_->IsPoisoned(offset, len)) {
    // Uncorrectable media error: surface EIO and never the stale payload.
    std::memset(dst, 0, len);
    return common::Status(common::ErrorCode::kIoError);
  }
  Touch(offset, len);
  std::memcpy(dst, data_.data() + offset, len);
  return common::OkStatus();
}

common::Status PmemDevice::ReadStatus(uint64_t offset, uint64_t len) const {
  if (injector_ != nullptr && injector_->IsPoisoned(offset, len)) {
    return common::Status(common::ErrorCode::kIoError);
  }
  return common::OkStatus();
}

void PmemDevice::Clwb(common::ExecContext& ctx, uint64_t offset, uint64_t len) {
  common::ProfileZone zone(ctx, common::ProfLayer::kDevice);
  const uint64_t first = common::RoundDown(offset, kCacheline);
  const uint64_t last = common::RoundDown(offset + len - 1, kCacheline);
  const uint64_t lines = (last - first) / kCacheline + 1;
  ctx.clock.Advance(lines * model_.clwb_ns);
  ctx.counters.clwb_count += lines;
  if (!crash_tracking_) {
    return;
  }
  std::lock_guard<std::mutex> guard(crash_mu_);
  for (uint64_t line = first; line <= last; line += kCacheline) {
    auto it = pending_index_.find(line);
    if (it != pending_index_.end()) {
      pending_[it->second].flushed = true;
    }
  }
}

void PmemDevice::Fence(common::ExecContext& ctx) {
  common::ProfileZone zone(ctx, common::ProfLayer::kDevice);
  ctx.clock.Advance(model_.sfence_ns);
  ctx.counters.fence_count++;
  if (!crash_tracking_) {
    return;
  }
  std::lock_guard<std::mutex> guard(crash_mu_);
  // Flushed lines are now guaranteed persistent: fold them into the image.
  std::vector<PendingLine> still_pending;
  std::vector<PendingLine> persisted_now;
  for (PendingLine& pl : pending_) {
    if (pl.flushed) {
      std::memcpy(persistent_.data() + pl.line_offset, pl.data, kCacheline);
      if (epoch_recording_) {
        persisted_now.push_back(pl);
      }
    } else {
      still_pending.push_back(pl);
    }
  }
  pending_ = std::move(still_pending);
  pending_index_.clear();
  for (size_t i = 0; i < pending_.size(); i++) {
    pending_index_[pending_[i].line_offset] = i;
  }
  if (epoch_recording_ && (!persisted_now.empty() || !pending_.empty())) {
    PersistEpoch epoch;
    epoch.persisted = std::move(persisted_now);
    epoch.in_flight_after = pending_;
    epoch_log_.push_back(std::move(epoch));
  }
}

void PmemDevice::BeginEpochRecording() {
  std::lock_guard<std::mutex> guard(crash_mu_);
  epoch_recording_ = true;
  epoch_log_.clear();
}

std::vector<PmemDevice::PersistEpoch> PmemDevice::TakeEpochLog() {
  std::lock_guard<std::mutex> guard(crash_mu_);
  epoch_recording_ = false;
  return std::move(epoch_log_);
}

void PmemDevice::PersistStore(common::ExecContext& ctx, uint64_t offset, const void* src,
                              uint64_t len) {
  Store(ctx, offset, src, len);
  Clwb(ctx, offset, len);
  Fence(ctx);
}

void PmemDevice::Zero(common::ExecContext& ctx, uint64_t offset, uint64_t len) {
  common::ProfileZone zone(ctx, common::ProfLayer::kDevice);
  assert(offset + len <= data_.size());
  Touch(offset, len);
  std::memset(data_.data() + offset, 0, len);
  ctx.clock.Advance(model_.SeqWriteBytes(len));
  ctx.counters.pm_write_bytes += len;
  ChargeFaultDelay(ctx);
  NoteStoreFaults(offset, len);
  RecordStore(offset, len, /*flushed=*/true);
}

void PmemDevice::ChargeStagedStore(common::ExecContext& ctx, uint64_t offset, uint64_t len) {
  common::ProfileZone zone(ctx, common::ProfLayer::kDevice);
  assert(offset + len <= data_.size());
  assert(injector_ == nullptr && !crash_tracking_);
  Touch(offset, len);
  // Store charges (Store() minus the memcpy; fault hooks are no-ops here).
  const uint64_t store_lines = (len + kCacheline - 1) / kCacheline;
  ctx.clock.Advance(store_lines * model_.pm_store_ns);
  ctx.counters.pm_write_bytes += len;
  // Clwb charges, with Clwb()'s own line math (first/last cover).
  const uint64_t first = common::RoundDown(offset, kCacheline);
  const uint64_t last = common::RoundDown(offset + len - 1, kCacheline);
  const uint64_t clwb_lines = (last - first) / kCacheline + 1;
  ctx.clock.Advance(clwb_lines * model_.clwb_ns);
  ctx.counters.clwb_count += clwb_lines;
}

void PmemDevice::StoreUncharged(uint64_t offset, const void* src, uint64_t len) {
  assert(offset + len <= data_.size());
  Touch(offset, len);
  NoteStoreFaults(offset, len);
  std::memcpy(data_.data() + offset, src, len);
  if (crash_tracking_) {
    std::lock_guard<std::mutex> guard(crash_mu_);
    std::memcpy(persistent_.data() + offset, src, len);
  }
}

void PmemDevice::EnableCrashTracking() {
  MaterializeAll();
  std::lock_guard<std::mutex> guard(crash_mu_);
  crash_tracking_ = true;
  persistent_ = data_;
  pending_.clear();
  pending_index_.clear();
  next_seq_ = 0;
}

void PmemDevice::DisableCrashTracking() {
  std::lock_guard<std::mutex> guard(crash_mu_);
  crash_tracking_ = false;
  persistent_.clear();
  persistent_.shrink_to_fit();
  pending_.clear();
  pending_index_.clear();
}

std::vector<PendingLine> PmemDevice::PendingLines() const {
  std::lock_guard<std::mutex> guard(crash_mu_);
  std::vector<PendingLine> lines = pending_;
  std::sort(lines.begin(), lines.end(),
            [](const PendingLine& a, const PendingLine& b) { return a.seq < b.seq; });
  return lines;
}

std::vector<uint8_t> PmemDevice::PersistentImage() const {
  std::lock_guard<std::mutex> guard(crash_mu_);
  return persistent_;
}

std::vector<uint8_t> PmemDevice::CrashImage(const std::vector<size_t>& pending_subset) const {
  std::lock_guard<std::mutex> guard(crash_mu_);
  std::vector<uint8_t> image = persistent_;
  const std::vector<PendingLine> ordered = [&] {
    std::vector<PendingLine> lines = pending_;
    std::sort(lines.begin(), lines.end(),
              [](const PendingLine& a, const PendingLine& b) { return a.seq < b.seq; });
    return lines;
  }();
  for (size_t idx : pending_subset) {
    assert(idx < ordered.size());
    const PendingLine& pl = ordered[idx];
    std::memcpy(image.data() + pl.line_offset, pl.data, kCacheline);
  }
  return image;
}

void PmemDevice::RestoreImage(const std::vector<uint8_t>& image) {
  assert(image.size() == data_.size());
  // Full overwrite: any COW backing is obsolete.
  cow_base_.reset();
  cow_present_.clear();
  cow_pending_ = 0;
  data_ = image;
  std::lock_guard<std::mutex> guard(crash_mu_);
  if (crash_tracking_) {
    persistent_ = data_;
    pending_.clear();
    pending_index_.clear();
  }
}

void PmemDevice::MarkAllPersistent() {
  MaterializeAll();
  std::lock_guard<std::mutex> guard(crash_mu_);
  if (crash_tracking_) {
    persistent_ = data_;
    pending_.clear();
    pending_index_.clear();
  }
}

}  // namespace pmem
