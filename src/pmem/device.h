// Simulated byte-addressable persistent-memory device.
//
// All filesystem metadata and data live in this device's address space, so
// mount/recovery/crash tests operate on real bytes. Stores are volatile until
// flushed (Clwb/NtStore) and fenced (Fence), mirroring the x86 persistence
// model. When crash tracking is enabled the device additionally maintains the
// last guaranteed-persistent image plus the set of in-flight cachelines, from
// which the CrashMonkey-style harness enumerates crash states.
#ifndef SRC_PMEM_DEVICE_H_
#define SRC_PMEM_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/pmem/cost_model.h"
#include "src/pmem/fault_injector.h"

namespace pmem {

// Copy-on-write sharing granularity for device snapshots and forks; also the
// chunk size of the on-disk snapshot image format (src/snap).
inline constexpr uint64_t kSnapChunkBytes = 256 * 1024;

// Immutable full-device image plus the geometry needed to recreate an
// equivalent device. Shareable: any number of COW forks reference one
// snapshot's bytes without copying them up front.
struct DeviceSnapshot {
  std::shared_ptr<const std::vector<uint8_t>> bytes;
  CostModel model;
  uint32_t numa_nodes = 1;

  uint64_t size() const { return bytes == nullptr ? 0 : bytes->size(); }
  bool valid() const { return bytes != nullptr; }
};

// One not-yet-guaranteed-persistent cacheline: its device offset and payload.
struct PendingLine {
  uint64_t line_offset = 0;  // cacheline-aligned device offset
  bool flushed = false;      // clwb'd but not yet fenced
  uint64_t seq = 0;          // global store order, for ordered crash exploration
  uint8_t data[common::kCacheline] = {};
};

class PmemDevice {
 public:
  // `numa_nodes` splits the device into equal interleave regions for the
  // NUMA-awareness experiments; 1 disables the distinction.
  explicit PmemDevice(uint64_t size_bytes, CostModel model = CostModel{},
                      uint32_t numa_nodes = 1);

  // Copy-on-write fork: the device starts as a logical copy of `base` but
  // copies each kSnapChunkBytes chunk only on first access, so forking a
  // mostly-idle aged image costs far less than re-aging or deep-copying.
  // Forks are fully isolated from the base and from each other.
  explicit PmemDevice(const DeviceSnapshot& base);

  uint64_t size() const { return data_.size(); }
  const CostModel& cost() const { return model_; }
  uint32_t numa_nodes() const { return numa_nodes_; }
  uint32_t NumaNodeOf(uint64_t offset) const;

  // Deep-copies the current volatile image into a shareable snapshot (the
  // input to COW forks and to the src/snap on-disk image writer).
  DeviceSnapshot Snapshot() const;

  // True while this fork still has unmaterialized chunks backed by its base.
  bool is_cow_fork() const { return cow_active_.load(std::memory_order_acquire); }
  // Chunks copied from the base so far (lazy-fork observability; tests assert
  // a fork that touched little copied little).
  uint64_t cow_chunks_copied() const { return cow_chunks_copied_; }

  // Raw access to the current (volatile) image. Used by readers and by
  // memory-mapped access paths; cost accounting happens in the caller
  // (MmapEngine) or via the charge helpers below. Plain raw() must be able to
  // see every byte, so on a COW fork it materializes the whole base image;
  // range-bounded access paths use raw_span to keep the fork lazy.
  uint8_t* raw() {
    MaterializeAll();
    return data_.data();
  }
  const uint8_t* raw() const {
    const_cast<PmemDevice*>(this)->MaterializeAll();
    return data_.data();
  }
  // Range-bounded raw access: materializes only the chunks covering
  // [offset, offset+len) on a COW fork.
  uint8_t* raw_span(uint64_t offset, uint64_t len) {
    Touch(offset, len);
    return data_.data() + offset;
  }
  const uint8_t* raw_span(uint64_t offset, uint64_t len) const {
    const_cast<PmemDevice*>(this)->Touch(offset, len);
    return data_.data() + offset;
  }
  // --- Store/load API used by filesystems (syscall paths) ---------------

  // Regular (cached) store: data is volatile until Clwb+Fence.
  void Store(common::ExecContext& ctx, uint64_t offset, const void* src, uint64_t len);
  // Non-temporal store: bypasses cache; persistent after the next Fence.
  void NtStore(common::ExecContext& ctx, uint64_t offset, const void* src, uint64_t len);
  // Returns kIoError (EIO) if the range covers a poisoned media block; the
  // destination is zero-filled in that case so a caller that drops the status
  // can never observe stale bytes.
  common::Status Load(common::ExecContext& ctx, uint64_t offset, void* dst, uint64_t len,
                      bool sequential = true);
  // Media-error probe: kIoError if any media block in the range is poisoned.
  // No data movement, no cost charged (the DIMM address-indirection table
  // knows without touching media).
  common::Status ReadStatus(uint64_t offset, uint64_t len) const;
  // Flush the cachelines covering [offset, offset+len).
  void Clwb(common::ExecContext& ctx, uint64_t offset, uint64_t len);
  // Store fence / drain: all previously flushed lines become persistent.
  void Fence(common::ExecContext& ctx);

  // Charges exactly what Store + Clwb of this range would charge (clock,
  // counters) WITHOUT moving data. Staged group-commit paths use it to issue
  // the charges at the point the scalar path would — inside the same SimMutex
  // critical section, so lock watermarks seen by other simulated threads
  // match bit-exactly — and move the coalesced bytes later with
  // StoreUncharged. Only valid while no fault injector or crash tracking is
  // attached (stagers gate on that), since those observe per-store order.
  void ChargeStagedStore(common::ExecContext& ctx, uint64_t offset, uint64_t len);

  // Convenience: store + clwb + fence (persist immediately).
  void PersistStore(common::ExecContext& ctx, uint64_t offset, const void* src, uint64_t len);
  // Store a trivially-copyable struct.
  template <typename T>
  void StoreStruct(common::ExecContext& ctx, uint64_t offset, const T& value) {
    Store(ctx, offset, &value, sizeof(T));
  }
  template <typename T>
  void PersistStruct(common::ExecContext& ctx, uint64_t offset, const T& value) {
    PersistStore(ctx, offset, &value, sizeof(T));
  }
  // Unchecked struct load: a poisoned range yields a zeroed value. Metadata
  // paths that must distinguish media errors from absent data use
  // TryLoadStruct instead.
  template <typename T>
  T LoadStruct(common::ExecContext& ctx, uint64_t offset) {
    T value;
    (void)Load(ctx, offset, &value, sizeof(T));
    return value;
  }
  // Checked struct load: kIoError when the range covers a poisoned block.
  template <typename T>
  common::Result<T> TryLoadStruct(common::ExecContext& ctx, uint64_t offset) {
    T value;
    RETURN_IF_ERROR(Load(ctx, offset, &value, sizeof(T)));
    return value;
  }

  // Zero-fill (modeled as streaming stores).
  void Zero(common::ExecContext& ctx, uint64_t offset, uint64_t len);

  // Bookkeeping write: real bytes, no time/counter charge, treated as
  // immediately persistent. Used only where the modeled filesystem's real
  // counterpart would NOT issue this write at this point (e.g. NOVA keeps
  // this state in DRAM indexes; we shadow it on PM so mount-time rebuild
  // stays uniform). Every call site documents why. Not crash-realistic:
  // crash-consistency tests only target filesystems that avoid this path.
  void StoreUncharged(uint64_t offset, const void* src, uint64_t len);

  // --- Fault injection ---------------------------------------------------

  // Attaches a fault plan (not owned; nullptr detaches). Poisoned blocks,
  // latency spikes, and torn-write plans all flow through the injector.
  void AttachFaultInjector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() { return injector_; }

  // --- Crash tracking ----------------------------------------------------

  void EnableCrashTracking();
  void DisableCrashTracking();
  bool crash_tracking_enabled() const { return crash_tracking_; }

  // Snapshot of in-flight (not guaranteed persistent) cachelines, in store order.
  std::vector<PendingLine> PendingLines() const;

  // The image with every in-flight line discarded (what survives a crash if
  // nothing extra made it out of the caches).
  std::vector<uint8_t> PersistentImage() const;

  // Persistent image plus the chosen subset of pending lines applied — one
  // possible post-crash device state.
  std::vector<uint8_t> CrashImage(const std::vector<size_t>& pending_subset) const;

  // Replaces the device contents (used to "reboot" into a crash state).
  void RestoreImage(const std::vector<uint8_t>& image);

  // Marks everything persistent (e.g. after mkfs, before the tracked workload).
  void MarkAllPersistent();

  // --- Persist-epoch recording (CrashMonkey-style exploration) ----------

  // One fence boundary: the lines that became persistent at this fence and
  // the still-in-flight lines right after it (crash candidates).
  struct PersistEpoch {
    std::vector<PendingLine> persisted;
    std::vector<PendingLine> in_flight_after;
  };

  // Starts recording one operation's persist epochs (crash tracking must be
  // enabled). Subsequent Fence() calls append epochs.
  void BeginEpochRecording();
  // Stops recording and returns the epochs observed since Begin.
  std::vector<PersistEpoch> TakeEpochLog();

 private:
  // COW fast path: no-op unless this is a fork with unmaterialized chunks.
  // The flag is an acquire-load so host-parallel readers of a fully-plain
  // device never touch the fork state; actual materialization serializes on
  // cow_fork_mu_ (forks driven by one host thread never contend it).
  void Touch(uint64_t offset, uint64_t len) {
    if (cow_active_.load(std::memory_order_acquire) && len != 0) {
      MaterializeRange(offset, len);
    }
  }
  void MaterializeRange(uint64_t offset, uint64_t len);
  void MaterializeAll();

  void RecordStore(uint64_t offset, uint64_t len, bool flushed);
  // Charges an injected latency spike (if the plan fires) to ctx.
  void ChargeFaultDelay(common::ExecContext& ctx);
  // Store-side fault bookkeeping: full-block overwrites clear poison.
  void NoteStoreFaults(uint64_t offset, uint64_t len) {
    if (injector_ != nullptr) {
      injector_->NoteStore(offset, len);
    }
  }

  std::vector<uint8_t> data_;
  CostModel model_;
  uint32_t numa_nodes_;
  FaultInjector* injector_ = nullptr;

  // COW-fork state: base image plus the per-chunk materialization map. Freed
  // once every chunk has been copied (the fork is then a plain device).
  std::shared_ptr<const std::vector<uint8_t>> cow_base_;
  std::vector<bool> cow_present_;
  uint64_t cow_pending_ = 0;
  uint64_t cow_chunks_copied_ = 0;
  std::atomic<bool> cow_active_{false};
  std::mutex cow_fork_mu_;

  bool crash_tracking_ = false;
  mutable std::mutex crash_mu_;
  std::vector<uint8_t> persistent_;
  // line offset -> index into pending_ (a line overwritten twice keeps one entry
  // with the latest payload but its original sequence slot is refreshed).
  std::unordered_map<uint64_t, size_t> pending_index_;
  std::vector<PendingLine> pending_;
  uint64_t next_seq_ = 0;

  bool epoch_recording_ = false;
  std::vector<PersistEpoch> epoch_log_;
};

}  // namespace pmem

#endif  // SRC_PMEM_DEVICE_H_
