// Latency/bandwidth model for Intel Optane DC Persistent Memory and the
// surrounding memory hierarchy.
//
// Sources for the defaults: the paper's own numbers (§1: page fault 1-2 us vs
// 100-200 ns per 64 B access; §2.1: PM read latency 2-3x DRAM, read bandwidth
// 1/3 DRAM, write bandwidth 0.17x DRAM) and the published Optane
// characterization studies it cites [24, 51]. Only the *ratios* matter for the
// reproduced figures; every value is a parameter.
#ifndef SRC_PMEM_COST_MODEL_H_
#define SRC_PMEM_COST_MODEL_H_

#include <cstdint>

namespace pmem {

struct CostModel {
  // Per-cacheline (64 B) access latencies, nanoseconds.
  uint64_t pm_load_random_ns = 305;   // uncached random PM read
  uint64_t pm_load_seq_ns = 10;       // amortized sequential PM read per line
  uint64_t pm_store_ns = 60;          // write-combining store into WPQ
  uint64_t pm_store_seq_ns = 19;      // amortized streaming store per line (~3.3 GB/s)
  uint64_t clwb_ns = 20;              // flush one line
  uint64_t sfence_ns = 10;            // ordering fence / drain
  uint64_t dram_load_ns = 80;         // DRAM miss (page-table walks hit DRAM)
  uint64_t llc_hit_ns = 20;

  // Virtual-memory costs.
  uint64_t fault_base_ns = 1200;      // trap + VMA lookup + PTE setup for a 4 KB fault
  uint64_t fault_huge_extra_ns = 900; // extra PMD setup work for a 2 MB fault
  uint64_t zero_4k_ns = 350;          // zeroing one 4 KB page on PM
  uint64_t tlb_walk_level_ns = 0;     // charged via memory accesses, see MmapEngine

  // System-call costs (trap + VFS dispatch), per the paper's 11x-kernel-time
  // observation for syscall writes.
  uint64_t syscall_trap_ns = 600;
  uint64_t vfs_path_component_ns = 150;

  // Derived helpers.
  uint64_t SeqWriteBytes(uint64_t bytes) const {
    return (bytes + 63) / 64 * pm_store_seq_ns;
  }
  uint64_t SeqReadBytes(uint64_t bytes) const {
    return (bytes + 63) / 64 * pm_load_seq_ns;
  }
};

}  // namespace pmem

#endif  // SRC_PMEM_COST_MODEL_H_
