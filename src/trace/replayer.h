// TraceReplayer: lowers trace-format-v1 traces onto the batched op-vector
// spine (vfs::OpBatch / FileSystem::ExecuteBatch), with the reference scalar
// loop as a fallback arm.
//
// Replay model:
//   - The trace is cut into WINDOWS: per-tenant runs of records, split
//     wherever a record carries think_ticks > 0 (a new request burst) or the
//     window hits max_window_ops. One window lowers to one OpBatch.
//   - Tenants are sharded across simulated threads (tenant % num_threads);
//     each thread replays its windows in trace order on wload::SimRunner's
//     discrete-event schedule, so multi-tenant contention is modeled the same
//     way the wload harnesses model it.
//   - think_ticks * tick_ns of simulated idle time is charged on the thread
//     clock BEFORE the window executes; per-request service latency is the
//     clock delta across the window (think excluded) and lands in the owning
//     tenant's histogram.
//   - Virtual fd slots resolve to live descriptors through a per-tenant slot
//     table; an open earlier in the SAME window is referenced via
//     FdRef::From(index) so the whole burst rides in one batch. A slot with
//     no live fd lowers to raw fd -1 — a deterministic kBadFd, identical in
//     batch and scalar replay.
//   - Writes synthesize payload from a shared deterministic fill buffer;
//     reads land in shared scratch (the trace carries no payload bytes).
//
// Because windows, think charging, and fd resolution are computed identically
// in both modes, batch-vs-scalar bit-identity of modeled clock + PerfCounters
// reduces to the PR-6 ExecuteBatch contract (enforced per filesystem by
// tests/trace_replay_equivalence_test).
#ifndef SRC_TRACE_REPLAYER_H_
#define SRC_TRACE_REPLAYER_H_

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/perf_counters.h"
#include "src/common/result.h"
#include "src/obs/gauges.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/trace/format.h"
#include "src/vfs/file_system.h"

namespace trace {

struct ReplayOptions {
  // false selects the reference scalar loop (ExecuteBatchScalar).
  bool use_batch = true;
  uint32_t num_threads = 4;
  uint32_t num_cpus = 4;
  // Hard cap on ops per lowered window (bursts larger than this split).
  uint32_t max_window_ops = 128;
  // Simulated-timeline anchor, like SimRunner's base_ns (setup phases leave
  // SimMutex watermarks behind; anchoring past them avoids double-counting).
  uint64_t base_ns = 0;
  // Host worker threads driving the replay. Values > 1 run the windows on a
  // lockstep wload::ParallelRunner: the schedule (and so every modeled
  // output and the shared slot tables the windows mutate) stays bit-identical
  // to the scalar runner, the baton's release/acquire edges making the shared
  // captures race-free. Replay is always lockstep — window lowering mutates
  // per-tenant state that is not shard-pure.
  uint32_t host_threads = 1;
  // Observability sinks propagated into every replay thread (null = off).
  obs::TraceBuffer* trace_sink = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::TimeSeriesSampler* sampler = nullptr;
  obs::Profiler* profiler = nullptr;
};

struct TenantStats {
  uint32_t tenant = 0;
  uint64_t ops = 0;
  uint64_t errors = 0;
  uint64_t windows = 0;
  // Per-request (window) service latency, think time excluded.
  common::LatencyHistogram latency;
};

struct ReplayResult {
  uint64_t records = 0;  // trace records executed
  uint64_t windows = 0;  // batches dispatched
  uint64_t errors = 0;   // ops with !status.ok()
  uint64_t wall_ns = 0;  // max simulated thread end time - base_ns
  common::PerfCounters counters;
  std::vector<TenantStats> tenants;  // index == tenant id

  double OpsPerSecond() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(records) * 1e9 /
                              static_cast<double>(wall_ns);
  }
};

// One replayer instance drives one filesystem. It is a GaugeProvider so a
// TimeSeriesSampler can chart replay progress (records/windows/errors done)
// against the filesystem's own gauges on the same simulated timeline.
class TraceReplayer : public obs::GaugeProvider {
 public:
  explicit TraceReplayer(vfs::FileSystem* fs, ReplayOptions options = {});

  // Replays `trace` to completion. kInvalidArgument if the trace is
  // malformed (out-of-range path references, zero tick) — decoded files are
  // always well-formed, this guards hand-built traces.
  common::Result<ReplayResult> Replay(const Trace& trace);

  // Gauges: replay_records_done, replay_windows_done, replay_errors.
  void SampleGauges(obs::GaugeSample& out) override;

 private:
  vfs::FileSystem* fs_;
  ReplayOptions options_;
  // Progress counters for SampleGauges. Plain fields: SimRunner multiplexes
  // simulated threads on one host thread.
  uint64_t records_done_ = 0;
  uint64_t windows_done_ = 0;
  uint64_t errors_ = 0;
};

}  // namespace trace

#endif  // SRC_TRACE_REPLAYER_H_
