#include "src/trace/format.h"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace trace {

using common::ErrorCode;
using common::Result;
using common::Status;

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kOpen: return "open";
    case TraceOp::kClose: return "close";
    case TraceOp::kPread: return "pread";
    case TraceOp::kPwrite: return "pwrite";
    case TraceOp::kAppend: return "append";
    case TraceOp::kFsync: return "fsync";
    case TraceOp::kStat: return "stat";
    case TraceOp::kReadDir: return "readdir";
    case TraceOp::kUnlink: return "unlink";
    case TraceOp::kMkdir: return "mkdir";
    case TraceOp::kRmdir: return "rmdir";
    case TraceOp::kRename: return "rename";
    case TraceOp::kFtruncate: return "ftruncate";
    case TraceOp::kFallocate: return "fallocate";
  }
  return "?";
}

uint64_t Fnv1a(const uint8_t* data, uint64_t len, uint64_t hash) {
  for (uint64_t i = 0; i < len; i++) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

uint32_t Trace::AddPath(const std::string& path) {
  for (size_t i = 0; i < paths.size(); i++) {
    if (paths[i] == path) {
      return static_cast<uint32_t>(i);
    }
  }
  paths.push_back(path);
  return static_cast<uint32_t>(paths.size() - 1);
}

uint32_t Trace::TenantCount() const {
  uint32_t max_tenant = 0;
  bool any = false;
  for (const TraceRecord& r : records) {
    max_tenant = std::max(max_tenant, r.tenant);
    any = true;
  }
  return any ? max_tenant + 1 : 0;
}

PathInterner::PathInterner(Trace* trace) : trace_(trace) {
  Rehash(64);
  for (uint32_t i = 0; i < trace_->paths.size(); i++) {
    // Seed the index with any pre-existing entries (parser resuming a trace).
    const std::string& p = trace_->paths[i];
    size_t slot = Fnv1a(reinterpret_cast<const uint8_t*>(p.data()), p.size()) & index_mask_;
    while (index_[slot] != kNoPath) {
      slot = (slot + 1) & index_mask_;
    }
    index_[slot] = i;
  }
}

void PathInterner::Rehash(size_t capacity) {
  index_.assign(capacity, kNoPath);
  index_mask_ = capacity - 1;
  for (uint32_t i = 0; i < trace_->paths.size(); i++) {
    const std::string& p = trace_->paths[i];
    size_t slot = Fnv1a(reinterpret_cast<const uint8_t*>(p.data()), p.size()) & index_mask_;
    while (index_[slot] != kNoPath) {
      slot = (slot + 1) & index_mask_;
    }
    index_[slot] = i;
  }
}

uint32_t PathInterner::Intern(const std::string& path) {
  size_t slot =
      Fnv1a(reinterpret_cast<const uint8_t*>(path.data()), path.size()) & index_mask_;
  while (index_[slot] != kNoPath) {
    if (trace_->paths[index_[slot]] == path) {
      return index_[slot];
    }
    slot = (slot + 1) & index_mask_;
  }
  const uint32_t id = static_cast<uint32_t>(trace_->paths.size());
  trace_->paths.push_back(path);
  index_[slot] = id;
  if (trace_->paths.size() * 2 > index_.size()) {
    Rehash(index_.size() * 2);
  }
  return id;
}

namespace {

constexpr char kMagic[8] = {'W', 'F', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr size_t kRecordBytes = 32;

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; i++) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}
void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; i++) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

// Bounds-checked little-endian reader over the input buffer. A read past the
// end sets `truncated` (mapped to kIoError, mirroring snap's short-read
// classification) and returns zeros so decode can bail at the next check.
struct Reader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;
  bool truncated = false;

  bool Need(size_t n) {
    if (len - pos < n) {
      truncated = true;
      return false;
    }
    return true;
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v = static_cast<uint16_t>(data[pos] | (data[pos + 1] << 8));
    pos += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; i++) {
      v |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; i++) {
      v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return v;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return data[pos++];
  }
};

// Parses and validates the header; on success `r` is positioned at the start
// of the path table and `header_end` is the checksummed prefix length.
Status DecodeHeader(Reader& r, TraceInfo& info) {
  if (!r.Need(sizeof(kMagic))) {
    return Status(ErrorCode::kIoError);
  }
  if (std::memcmp(r.data, kMagic, sizeof(kMagic)) != 0) {
    return Status(ErrorCode::kCorrupt);
  }
  r.pos += sizeof(kMagic);
  info.format_version = r.U32();
  const uint32_t reserved = r.U32();
  info.tick_ns = r.U64();
  info.tenant_count = r.U32();
  info.path_count = r.U32();
  info.record_count = r.U64();
  const uint32_t provenance_len = r.U32();
  if (r.truncated || !r.Need(provenance_len)) {
    return Status(ErrorCode::kIoError);
  }
  info.provenance.assign(reinterpret_cast<const char*>(r.data + r.pos), provenance_len);
  r.pos += provenance_len;
  const size_t checksummed = r.pos;
  const uint64_t stored_csum = r.U64();
  if (r.truncated) {
    return Status(ErrorCode::kIoError);
  }
  if (Fnv1a(r.data, checksummed) != stored_csum) {
    return Status(ErrorCode::kCorrupt);
  }
  // Version is checked only after the checksum proves the header intact, so a
  // flipped version byte reads as corruption, not as a foreign format.
  if (info.format_version != kTraceFormatVersion) {
    return Status(ErrorCode::kNotSupported);
  }
  if (reserved != 0) {
    return Status(ErrorCode::kCorrupt);
  }
  return common::OkStatus();
}

}  // namespace

Result<std::vector<uint8_t>> EncodeTrace(const Trace& trace) {
  const uint32_t path_count = static_cast<uint32_t>(trace.paths.size());
  for (const TraceRecord& r : trace.records) {
    if (static_cast<uint8_t>(r.op) >= kNumTraceOps) {
      return ErrorCode::kInvalidArgument;
    }
    if (r.path_id != kNoPath && r.path_id >= path_count) {
      return ErrorCode::kInvalidArgument;
    }
    if (r.path2_id != kNoPath && r.path2_id >= path_count) {
      return ErrorCode::kInvalidArgument;
    }
    if (r.fd_slot < kNoSlot || r.fd_slot > kMaxSlot) {
      return ErrorCode::kInvalidArgument;
    }
  }

  std::vector<uint8_t> out;
  out.reserve(64 + trace.provenance.size() + trace.records.size() * kRecordBytes);
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  PutU32(out, kTraceFormatVersion);
  PutU32(out, 0);  // reserved
  PutU64(out, trace.tick_ns);
  PutU32(out, trace.TenantCount());
  PutU32(out, path_count);
  PutU64(out, trace.records.size());
  PutU32(out, static_cast<uint32_t>(trace.provenance.size()));
  out.insert(out.end(), trace.provenance.begin(), trace.provenance.end());
  PutU64(out, Fnv1a(out.data(), out.size()));

  const size_t paths_begin = out.size();
  for (const std::string& path : trace.paths) {
    PutU32(out, static_cast<uint32_t>(path.size()));
    out.insert(out.end(), path.begin(), path.end());
  }
  PutU64(out, Fnv1a(out.data() + paths_begin, out.size() - paths_begin));

  const size_t records_begin = out.size();
  for (const TraceRecord& r : trace.records) {
    out.push_back(static_cast<uint8_t>(r.op));
    out.push_back(r.open_flags);
    PutU16(out, static_cast<uint16_t>(static_cast<int16_t>(r.fd_slot)));
    PutU32(out, r.tenant);
    PutU32(out, r.path_id);
    PutU32(out, r.path2_id);
    PutU64(out, r.offset);
    PutU32(out, r.size);
    PutU32(out, r.think_ticks);
  }
  PutU64(out, Fnv1a(out.data() + records_begin, out.size() - records_begin));
  return out;
}

Result<Trace> DecodeTrace(const uint8_t* data, size_t len) {
  Reader r{data, len};
  TraceInfo info;
  RETURN_IF_ERROR(DecodeHeader(r, info));

  Trace trace;
  trace.tick_ns = info.tick_ns;
  trace.provenance = info.provenance;

  const size_t paths_begin = r.pos;
  trace.paths.reserve(info.path_count);
  for (uint32_t i = 0; i < info.path_count; i++) {
    const uint32_t plen = r.U32();
    if (r.truncated || !r.Need(plen)) {
      return ErrorCode::kIoError;
    }
    trace.paths.emplace_back(reinterpret_cast<const char*>(r.data + r.pos), plen);
    r.pos += plen;
  }
  const size_t paths_end = r.pos;
  const uint64_t paths_csum = r.U64();
  if (r.truncated) {
    return ErrorCode::kIoError;
  }
  if (Fnv1a(r.data + paths_begin, paths_end - paths_begin) != paths_csum) {
    return ErrorCode::kCorrupt;
  }

  const size_t records_begin = r.pos;
  // Overflow-safe sizing: the header checksum already vouches for
  // record_count, but never multiply an untrusted u64 unchecked.
  if (info.record_count > (r.len - r.pos) / kRecordBytes ||
      !r.Need(info.record_count * kRecordBytes + 8)) {
    return ErrorCode::kIoError;
  }
  const uint64_t records_csum_stored = [&] {
    Reader tail = r;
    tail.pos = records_begin + info.record_count * kRecordBytes;
    return tail.U64();
  }();
  if (Fnv1a(r.data + records_begin, info.record_count * kRecordBytes) !=
      records_csum_stored) {
    return ErrorCode::kCorrupt;
  }
  trace.records.reserve(info.record_count);
  for (uint64_t i = 0; i < info.record_count; i++) {
    TraceRecord rec;
    const uint8_t op = r.U8();
    if (op >= kNumTraceOps) {
      return ErrorCode::kCorrupt;
    }
    rec.op = static_cast<TraceOp>(op);
    rec.open_flags = r.U8();
    rec.fd_slot = static_cast<int16_t>(r.U16());
    rec.tenant = r.U32();
    rec.path_id = r.U32();
    rec.path2_id = r.U32();
    rec.offset = r.U64();
    rec.size = r.U32();
    rec.think_ticks = r.U32();
    if (rec.fd_slot < kNoSlot ||
        (rec.path_id != kNoPath && rec.path_id >= info.path_count) ||
        (rec.path2_id != kNoPath && rec.path2_id >= info.path_count) ||
        rec.tenant >= info.tenant_count) {
      return ErrorCode::kCorrupt;
    }
    trace.records.push_back(rec);
  }
  r.pos += 8;  // records checksum, already verified
  return trace;
}

Status SaveTrace(const std::string& path, const Trace& trace) {
  auto bytes = EncodeTrace(trace);
  if (!bytes.ok()) {
    return bytes.status();
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status(ErrorCode::kIoError);
    }
    out.write(reinterpret_cast<const char*>(bytes->data()),
              static_cast<std::streamsize>(bytes->size()));
    out.close();
    if (!out) {
      std::remove(tmp.c_str());
      return Status(ErrorCode::kIoError);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(ErrorCode::kIoError);
  }
  return common::OkStatus();
}

namespace {

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path, size_t limit) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ErrorCode::kIoError;
  }
  std::vector<uint8_t> bytes;
  bytes.reserve(4096);
  char chunk[4096];
  while (bytes.size() < limit && in) {
    in.read(chunk, sizeof(chunk));
    bytes.insert(bytes.end(), chunk, chunk + in.gcount());
  }
  if (in.bad()) {
    return ErrorCode::kIoError;
  }
  return bytes;
}

}  // namespace

Result<Trace> LoadTrace(const std::string& path) {
  auto bytes = ReadFileBytes(path, SIZE_MAX);
  if (!bytes.ok()) {
    return bytes.status();
  }
  return DecodeTrace(bytes->data(), bytes->size());
}

Result<TraceInfo> ReadTraceInfo(const std::string& path) {
  // Header = fixed fields + provenance + checksum; 64 KiB covers any sane
  // provenance string. A file shorter than its header is caught as kIoError.
  auto bytes = ReadFileBytes(path, 64 * 1024);
  if (!bytes.ok()) {
    return bytes.status();
  }
  Reader r{bytes->data(), bytes->size()};
  TraceInfo info;
  RETURN_IF_ERROR(DecodeHeader(r, info));
  return info;
}

TraceStats ComputeStats(const Trace& trace) {
  TraceStats stats;
  stats.total_records = trace.records.size();
  stats.tenants = trace.TenantCount();
  for (const TraceRecord& r : trace.records) {
    stats.ops_by_kind[static_cast<uint8_t>(r.op)]++;
    if (r.think_ticks > 0) {
      stats.bursts++;
      stats.think_ticks += r.think_ticks;
    }
    if (r.op == TraceOp::kPread) {
      stats.read_bytes += r.size;
    } else if (r.op == TraceOp::kPwrite || r.op == TraceOp::kAppend) {
      stats.write_bytes += r.size;
    }
  }
  return stats;
}

}  // namespace trace
