// Compact binary trace format v1 for the trace-replay front end.
//
// A trace is a sequence of 32-byte records — op, tenant id, path-id into a
// shared string table, a tenant-scoped virtual descriptor slot, offset, size,
// and think-time ticks — plus the string table itself and a checksummed
// header carrying provenance and the tick duration. The on-disk layout
// mirrors the `src/snap` image-format conventions: little-endian only, an
// FNV-1a checksummed header, per-section body checksums, and typed rejection
// (kIoError for truncation/short reads, kCorrupt for magic/checksum/range
// damage, kNotSupported for a foreign format version). Bumping
// kTraceFormatVersion invalidates every existing trace file — do it whenever
// the record layout, header schema, or string-table encoding changes.
//
// Records carry NO payload bytes: replay synthesizes deterministic fill for
// writes, so a multi-GB workload encodes in a few hundred KB. fd slots are
// virtual per-tenant descriptor indexes assigned by the generator; the
// replayer maps slot -> live fd per tenant (and to intra-batch FdRef chains
// when the open rides in the same lowered window).
#ifndef SRC_TRACE_FORMAT_H_
#define SRC_TRACE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace trace {

// Bump on any incompatible change to the header schema, the 32-byte record
// layout, or the string-table encoding.
inline constexpr uint32_t kTraceFormatVersion = 1;

// Mirrors vfs::OpKind one to one (kept separate so the wire format never
// drifts silently when the VFS enum is reordered; the replayer translates).
enum class TraceOp : uint8_t {
  kOpen = 0,
  kClose,
  kPread,
  kPwrite,
  kAppend,
  kFsync,
  kStat,
  kReadDir,
  kUnlink,
  kMkdir,
  kRmdir,
  kRename,
  kFtruncate,
  kFallocate,
};
inline constexpr uint8_t kNumTraceOps = 14;

const char* TraceOpName(TraceOp op);

// Sentinel for records without a path / without a descriptor slot.
inline constexpr uint32_t kNoPath = 0xffffffffu;
inline constexpr int32_t kNoSlot = -1;
// fd slots are serialized as int16 on the wire.
inline constexpr int32_t kMaxSlot = 32767;

// One trace record (32 bytes on the wire, little-endian):
//   op u8 | open_flags u8 | fd_slot i16 | tenant u32 | path_id u32 |
//   path2_id u32 | offset u64 | size u32 | think_ticks u32
struct TraceRecord {
  TraceOp op = TraceOp::kStat;
  // vfs::OpenFlags bits; meaningful for kOpen only.
  uint8_t open_flags = 0;
  // Tenant-scoped virtual descriptor slot: kOpen assigns it, fd-based ops
  // reference it, kClose releases it. kNoSlot for pure path ops.
  int32_t fd_slot = kNoSlot;
  uint32_t tenant = 0;
  // String-table index of the path operand (rename source); kNoPath for
  // fd-only ops.
  uint32_t path_id = kNoPath;
  // Rename destination; kNoPath otherwise.
  uint32_t path2_id = kNoPath;
  // pread/pwrite/fallocate offset; ftruncate size.
  uint64_t offset = 0;
  // I/O byte count (pread/pwrite/append/fallocate length).
  uint32_t size = 0;
  // Simulated idle time before this op, in ticks of Trace::tick_ns. A nonzero
  // value marks the start of a new request burst for the replayer's
  // window-cutting and per-request latency accounting.
  uint32_t think_ticks = 0;

  bool operator==(const TraceRecord&) const = default;
};

// In-memory trace: header fields + string table + records. The string table
// is expected in first-reference order with no unused entries (the generators
// and the DSL parser both guarantee it); Encode validates referential
// integrity, not ordering.
struct Trace {
  uint64_t tick_ns = 1000;  // one think tick, simulated ns
  std::string provenance;   // generator key / origin, stored in the header
  std::vector<std::string> paths;
  std::vector<TraceRecord> records;

  // Interns `path`, returning its table index (linear scan from the back is
  // wrong for big tables — callers that build large traces use PathInterner).
  uint32_t AddPath(const std::string& path);
  // Max tenant id + 1 over all records (0 for an empty trace).
  uint32_t TenantCount() const;

  bool operator==(const Trace&) const = default;
};

// Hash-indexed interning helper for trace builders (generator, DSL parser).
// Keeps Trace itself a plain value type.
class PathInterner {
 public:
  explicit PathInterner(Trace* trace);
  uint32_t Intern(const std::string& path);

 private:
  Trace* trace_;
  // Open-addressed index over trace_->paths (FNV-1a probe); rebuilt on growth.
  std::vector<uint32_t> index_;
  size_t index_mask_ = 0;
  void Rehash(size_t capacity);
};

// Header metadata of a trace file (everything except paths + records).
struct TraceInfo {
  uint32_t format_version = 0;
  uint64_t tick_ns = 0;
  uint32_t tenant_count = 0;
  uint32_t path_count = 0;
  uint64_t record_count = 0;
  std::string provenance;
};

// Serializes to the on-disk byte layout. kInvalidArgument on malformed input:
// an out-of-range path/tenant/slot reference or an op outside the enum.
common::Result<std::vector<uint8_t>> EncodeTrace(const Trace& trace);

// Decodes a full trace. Typed failures mirror src/snap: kIoError (truncated /
// short buffer), kCorrupt (bad magic, checksum mismatch, out-of-range record
// fields), kNotSupported (format version != kTraceFormatVersion).
common::Result<Trace> DecodeTrace(const uint8_t* data, size_t len);

// File wrappers. SaveTrace writes atomically (tmp file + rename) like
// snap::SaveImage; LoadTrace adds kIoError for an unreadable file.
common::Status SaveTrace(const std::string& path, const Trace& trace);
common::Result<Trace> LoadTrace(const std::string& path);

// Header-only probe (cheap; used by tracectl info and the scenario cache).
common::Result<TraceInfo> ReadTraceInfo(const std::string& path);

// Aggregate stats for tables (tracectl info/gen, scenario banners).
struct TraceStats {
  uint64_t ops_by_kind[kNumTraceOps] = {};
  uint64_t total_records = 0;
  uint64_t bursts = 0;           // records with think_ticks > 0
  uint64_t think_ticks = 0;      // total idle ticks
  uint64_t read_bytes = 0;       // pread sizes
  uint64_t write_bytes = 0;      // pwrite + append sizes
  uint32_t tenants = 0;
};
TraceStats ComputeStats(const Trace& trace);

// FNV-1a over a byte range; same constants as snap::Fnv1a so trace and image
// files share one checksum convention.
uint64_t Fnv1a(const uint8_t* data, uint64_t len,
               uint64_t hash = 14695981039346656037ull);

}  // namespace trace

#endif  // SRC_TRACE_FORMAT_H_
