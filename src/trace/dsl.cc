#include "src/trace/dsl.h"

#include <cstdio>
#include <cstring>

#include "src/vfs/file_system.h"

namespace trace {

using common::ErrorCode;
using common::Result;

namespace {

void AppendQuoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// Canonical flag letters, fixed order so emission is deterministic.
void AppendFlags(std::string& out, uint8_t bits) {
  out += "f=";
  std::string letters;
  if (bits & vfs::OpenFlags::kCreate) letters += 'c';
  if (bits & vfs::OpenFlags::kExcl) letters += 'x';
  if (bits & vfs::OpenFlags::kTrunc) letters += 't';
  if (bits & vfs::OpenFlags::kRdOnly) letters += 'r';
  out += letters.empty() ? "-" : letters;
}

bool NeedsSlot(TraceOp op) {
  switch (op) {
    case TraceOp::kOpen:
    case TraceOp::kClose:
    case TraceOp::kPread:
    case TraceOp::kPwrite:
    case TraceOp::kAppend:
    case TraceOp::kFsync:
    case TraceOp::kFtruncate:
    case TraceOp::kFallocate:
      return true;
    default:
      return false;
  }
}

bool NeedsPath(TraceOp op) {
  switch (op) {
    case TraceOp::kOpen:
    case TraceOp::kStat:
    case TraceOp::kReadDir:
    case TraceOp::kUnlink:
    case TraceOp::kMkdir:
    case TraceOp::kRmdir:
    case TraceOp::kRename:
      return true;
    default:
      return false;
  }
}

// Token scanner over one line: space-separated words, with quoted strings as
// single tokens.
struct LineScanner {
  const char* p;
  const char* end;
  bool failed = false;

  void SkipSpaces() {
    while (p < end && *p == ' ') {
      p++;
    }
  }
  bool AtEnd() {
    SkipSpaces();
    return p >= end;
  }
  // Reads a bare word token (up to space/end).
  std::string Word() {
    SkipSpaces();
    const char* start = p;
    while (p < end && *p != ' ') {
      p++;
    }
    if (p == start) {
      failed = true;
    }
    return std::string(start, p);
  }
  // Expects `key=` then parses the decimal value.
  uint64_t KeyedU64(const char* key) {
    std::string tok = Word();
    const size_t klen = std::strlen(key);
    if (failed || tok.size() <= klen + 1 || tok.compare(0, klen, key) != 0 ||
        tok[klen] != '=') {
      failed = true;
      return 0;
    }
    uint64_t v = 0;
    for (size_t i = klen + 1; i < tok.size(); i++) {
      if (tok[i] < '0' || tok[i] > '9') {
        failed = true;
        return 0;
      }
      v = v * 10 + static_cast<uint64_t>(tok[i] - '0');
    }
    return v;
  }
  // Parses a quoted, backslash-escaped string token.
  std::string Quoted() {
    SkipSpaces();
    if (p >= end || *p != '"') {
      failed = true;
      return {};
    }
    p++;
    std::string out;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        p++;
        if (p >= end || (*p != '"' && *p != '\\')) {
          failed = true;
          return {};
        }
      }
      out += *p++;
    }
    if (p >= end) {
      failed = true;
      return {};
    }
    p++;  // closing quote
    return out;
  }
  // Expects `key=` then a quoted string.
  std::string KeyedQuoted(const char* key) {
    SkipSpaces();
    const size_t klen = std::strlen(key);
    if (static_cast<size_t>(end - p) <= klen + 1 ||
        std::strncmp(p, key, klen) != 0 || p[klen] != '=') {
      failed = true;
      return {};
    }
    p += klen + 1;
    return Quoted();
  }
};

}  // namespace

std::string ToDsl(const Trace& t) {
  std::string out;
  out.reserve(64 + t.records.size() * 48);
  out += "trace v1 tick_ns=";
  AppendU64(out, t.tick_ns);
  out += " provenance=";
  AppendQuoted(out, t.provenance);
  out += '\n';
  for (const TraceRecord& r : t.records) {
    out += "t=";
    AppendU64(out, r.tenant);
    out += " w=";
    AppendU64(out, r.think_ticks);
    out += ' ';
    out += TraceOpName(r.op);
    if (NeedsSlot(r.op)) {
      out += " s=";
      AppendU64(out, static_cast<uint64_t>(r.fd_slot));
    }
    switch (r.op) {
      case TraceOp::kOpen:
        out += ' ';
        AppendFlags(out, r.open_flags);
        break;
      case TraceOp::kPread:
      case TraceOp::kPwrite:
      case TraceOp::kFallocate:
        out += " off=";
        AppendU64(out, r.offset);
        out += " len=";
        AppendU64(out, r.size);
        break;
      case TraceOp::kAppend:
        out += " len=";
        AppendU64(out, r.size);
        break;
      case TraceOp::kFtruncate:
        out += " size=";
        AppendU64(out, r.offset);
        break;
      default:
        break;
    }
    if (NeedsPath(r.op)) {
      out += ' ';
      AppendQuoted(out, t.paths[r.path_id]);
      if (r.op == TraceOp::kRename) {
        out += ' ';
        AppendQuoted(out, t.paths[r.path2_id]);
      }
    }
    out += '\n';
  }
  return out;
}

Result<Trace> ParseDsl(const std::string& text, size_t* error_line) {
  Trace t;
  PathInterner interner(&t);
  size_t line_no = 0;
  bool saw_header = false;

  auto fail = [&](size_t line) -> Result<Trace> {
    if (error_line != nullptr) {
      *error_line = line;
    }
    return ErrorCode::kInvalidArgument;
  };

  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    line_no++;
    LineScanner s{text.data() + pos, text.data() + eol};
    pos = eol + 1;
    if (s.AtEnd() || *s.p == '#') {
      if (pos > text.size()) {
        break;
      }
      continue;
    }

    if (!saw_header) {
      if (s.Word() != "trace" || s.Word() != "v1") {
        return fail(line_no);
      }
      t.tick_ns = s.KeyedU64("tick_ns");
      t.provenance = s.KeyedQuoted("provenance");
      if (s.failed || !s.AtEnd()) {
        return fail(line_no);
      }
      saw_header = true;
      continue;
    }

    TraceRecord r;
    r.tenant = static_cast<uint32_t>(s.KeyedU64("t"));
    r.think_ticks = static_cast<uint32_t>(s.KeyedU64("w"));
    const std::string op_word = s.Word();
    if (s.failed) {
      return fail(line_no);
    }
    int op = -1;
    for (uint8_t k = 0; k < kNumTraceOps; k++) {
      if (op_word == TraceOpName(static_cast<TraceOp>(k))) {
        op = k;
        break;
      }
    }
    if (op < 0) {
      return fail(line_no);
    }
    r.op = static_cast<TraceOp>(op);

    if (NeedsSlot(r.op)) {
      const uint64_t slot = s.KeyedU64("s");
      if (slot > static_cast<uint64_t>(kMaxSlot)) {
        return fail(line_no);
      }
      r.fd_slot = static_cast<int32_t>(slot);
    }
    switch (r.op) {
      case TraceOp::kOpen: {
        const std::string tok = s.Word();
        if (s.failed || tok.size() < 3 || tok.compare(0, 2, "f=") != 0) {
          return fail(line_no);
        }
        for (size_t i = 2; i < tok.size(); i++) {
          switch (tok[i]) {
            case 'c': r.open_flags |= vfs::OpenFlags::kCreate; break;
            case 'x': r.open_flags |= vfs::OpenFlags::kExcl; break;
            case 't': r.open_flags |= vfs::OpenFlags::kTrunc; break;
            case 'r': r.open_flags |= vfs::OpenFlags::kRdOnly; break;
            case '-':
              if (tok.size() != 3) {
                return fail(line_no);
              }
              break;
            default:
              return fail(line_no);
          }
        }
        break;
      }
      case TraceOp::kPread:
      case TraceOp::kPwrite:
      case TraceOp::kFallocate:
        r.offset = s.KeyedU64("off");
        r.size = static_cast<uint32_t>(s.KeyedU64("len"));
        break;
      case TraceOp::kAppend:
        r.size = static_cast<uint32_t>(s.KeyedU64("len"));
        break;
      case TraceOp::kFtruncate:
        r.offset = s.KeyedU64("size");
        break;
      default:
        break;
    }
    if (NeedsPath(r.op)) {
      r.path_id = interner.Intern(s.Quoted());
      if (r.op == TraceOp::kRename) {
        r.path2_id = interner.Intern(s.Quoted());
      }
    }
    if (s.failed || !s.AtEnd()) {
      return fail(line_no);
    }
    t.records.push_back(r);
    if (pos > text.size()) {
      break;
    }
  }
  if (!saw_header) {
    return fail(line_no);
  }
  return t;
}

}  // namespace trace
