// Seeded scenario generators: production workload shapes the paper never
// tested, emitted as trace-format-v1 traces. Every generator is a pure
// function of its ScenarioSpec — same spec => byte-identical trace — so
// generated traces are cacheable on (name, parameters, seed) exactly like the
// snap corpus caches aged images on ImageKey.
//
// Shapes (ScenarioFleet returns one tuned spec per shape):
//   mail_churn        multi-tenant mail/object-store: zipf-hot mailbox files,
//                     append-heavy delivery, point reads, periodic purges
//   container_extract container-image layer extraction: per-tenant burst of
//                     mkdir + create + sequential whole-file writes, then a
//                     stat/read sweep (registry pull -> layer unpack -> start)
//   ml_checkpoint     ML checkpoint streaming: few tenants, huge sequential
//                     writes + fsync barriers, rotating checkpoint generations
//                     with unlink of the oldest
//   log_ingest        log-structured ingest + parallel compaction: hot append
//                     streams per tenant, compactor rewrites segments into
//                     larger ones and unlinks the inputs
//   metadata_storm    open/stat/unlink storms across >= 1000 tenants: tiny
//                     file lifecycle, almost pure metadata traffic
#ifndef SRC_TRACE_SCENARIOS_H_
#define SRC_TRACE_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/trace/format.h"

namespace trace {
namespace scenarios {

// Everything a generator's output depends on. Provenance() digests all of it,
// so a trace file regenerates whenever any knob (or the format version)
// changes.
struct ScenarioSpec {
  std::string name;
  uint32_t tenants = 8;
  // Request bursts per tenant (each burst = several records).
  uint32_t requests = 400;
  uint32_t files_per_tenant = 16;
  // Base I/O granule; shapes scale it per op (checkpoint writes are many
  // granules, mail appends a fraction).
  uint32_t io_bytes = 4096;
  uint64_t seed = 42;
  uint64_t tick_ns = 1000;

  // Human-readable digest of every generation input; stored in the trace
  // header and compared by LoadOrGenerate before trusting a cached file.
  std::string Provenance() const;
  // Cache file name: <name>-<16 hex digits of FNV(Provenance())>.wtr
  std::string FileName() const;
};

// The five tuned specs. `quick` shrinks tenants/requests for CI smoke runs —
// except metadata_storm, which keeps >= 1000 tenants in both modes (that scale
// is the point of the shape).
std::vector<ScenarioSpec> ScenarioFleet(bool quick);

// Looks up a fleet spec by name (kInvalidArgument if unknown).
common::Result<ScenarioSpec> FleetSpec(const std::string& name, bool quick);

// Deterministically generates the trace for `spec`. The generator maintains a
// namespace model (which dirs/files/slots exist per tenant), so replaying the
// trace on a fresh filesystem mostly succeeds; all paths live under
// "/scn_<shape>_t<k>" per tenant, disjoint from anything an aged image holds.
Trace GenerateScenario(const ScenarioSpec& spec);

struct TraceCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  // Cached file present but unreadable/corrupt/stale provenance: regenerated.
  uint64_t rejects = 0;
};

// Cache wrapper: loads dir/FileName() if present with matching provenance,
// else generates and saves it. Empty `dir` disables caching (always
// generates, never touches the filesystem).
common::Result<Trace> LoadOrGenerate(const std::string& dir, const ScenarioSpec& spec,
                                     TraceCacheStats* stats = nullptr);

}  // namespace scenarios
}  // namespace trace

#endif  // SRC_TRACE_SCENARIOS_H_
