// Text DSL for trace format v1: a line-based, human-editable rendering that
// round-trips with the binary encoder.
//
// Grammar (one header line, then one line per record; '#' starts a comment):
//
//   trace v1 tick_ns=<ns> provenance="<escaped>"
//   t=<tenant> w=<think_ticks> open s=<slot> f=<flags> "<path>"
//   t=<tenant> w=<think_ticks> close s=<slot>
//   t=<tenant> w=<think_ticks> pread s=<slot> off=<n> len=<n>
//   t=<tenant> w=<think_ticks> pwrite s=<slot> off=<n> len=<n>
//   t=<tenant> w=<think_ticks> append s=<slot> len=<n>
//   t=<tenant> w=<think_ticks> fsync s=<slot>
//   t=<tenant> w=<think_ticks> ftruncate s=<slot> size=<n>
//   t=<tenant> w=<think_ticks> fallocate s=<slot> off=<n> len=<n>
//   t=<tenant> w=<think_ticks> stat|readdir|unlink|mkdir|rmdir "<path>"
//   t=<tenant> w=<think_ticks> rename "<from>" "<to>"
//
// <flags> is a letter set for open: c=create, x=excl, t=trunc, r=rdonly, or
// '-' for a plain read-write open. Paths are double-quoted with backslash
// escapes for '"' and '\'. ToDsl emits the canonical form above; ParseDsl
// accepts exactly that form (plus blank/comment lines), interning paths in
// first-reference order — so text -> binary -> text is byte-identical, and
// binary -> text -> binary is byte-identical for any trace whose string table
// is in first-use order with no unused entries (all generated traces).
#ifndef SRC_TRACE_DSL_H_
#define SRC_TRACE_DSL_H_

#include <string>

#include "src/common/result.h"
#include "src/trace/format.h"

namespace trace {

// Canonical text rendering of `trace`.
std::string ToDsl(const Trace& trace);

// Parses DSL text. kInvalidArgument on any malformed line; when `error_line`
// is non-null it receives the 1-based offending line number.
common::Result<Trace> ParseDsl(const std::string& text, size_t* error_line = nullptr);

}  // namespace trace

#endif  // SRC_TRACE_DSL_H_
