#include "src/trace/replayer.h"

#include <algorithm>

#include "src/vfs/op_batch.h"
#include "src/wload/parallel_runner.h"
#include "src/wload/sim_runner.h"

namespace trace {

using common::ErrorCode;
using common::Result;

namespace {

// One lowered request burst: a per-tenant run of record indices that becomes
// a single OpBatch.
struct Window {
  uint32_t tenant = 0;
  uint32_t think_ticks = 0;  // charged before the batch executes
  std::vector<uint32_t> recs;
};

common::Status ValidateForReplay(const Trace& trace) {
  if (trace.tick_ns == 0) {
    return common::Status(ErrorCode::kInvalidArgument);
  }
  const uint32_t num_paths = static_cast<uint32_t>(trace.paths.size());
  for (const TraceRecord& r : trace.records) {
    if (static_cast<uint8_t>(r.op) >= kNumTraceOps) {
      return common::Status(ErrorCode::kInvalidArgument);
    }
    if ((r.path_id != kNoPath && r.path_id >= num_paths) ||
        (r.path2_id != kNoPath && r.path2_id >= num_paths)) {
      return common::Status(ErrorCode::kInvalidArgument);
    }
    if (r.fd_slot < kNoSlot || r.fd_slot > kMaxSlot) {
      return common::Status(ErrorCode::kInvalidArgument);
    }
  }
  return common::OkStatus();
}

}  // namespace

TraceReplayer::TraceReplayer(vfs::FileSystem* fs, ReplayOptions options)
    : fs_(fs), options_(options) {
  if (options_.num_threads == 0) {
    options_.num_threads = 1;
  }
  if (options_.num_cpus == 0) {
    options_.num_cpus = 1;
  }
  if (options_.max_window_ops == 0) {
    options_.max_window_ops = 1;
  }
}

Result<ReplayResult> TraceReplayer::Replay(const Trace& trace) {
  RETURN_IF_ERROR(ValidateForReplay(trace));
  records_done_ = 0;
  windows_done_ = 0;
  errors_ = 0;

  const uint32_t tenant_count = trace.TenantCount();
  ReplayResult result;
  result.tenants.resize(tenant_count);
  for (uint32_t t = 0; t < tenant_count; t++) {
    result.tenants[t].tenant = t;
  }
  if (trace.records.empty()) {
    return result;
  }

  // Window-cutting pre-pass. Windows are created in trace order; a tenant's
  // open window survives interleaved records of other tenants.
  std::vector<Window> windows;
  std::vector<int64_t> open_window(tenant_count, -1);
  uint32_t max_io = 1;
  int32_t max_slot = 0;
  for (uint32_t i = 0; i < trace.records.size(); i++) {
    const TraceRecord& r = trace.records[i];
    max_io = std::max(max_io, r.size);
    max_slot = std::max(max_slot, r.fd_slot);
    int64_t w = open_window[r.tenant];
    if (w < 0 || r.think_ticks > 0 ||
        windows[w].recs.size() >= options_.max_window_ops) {
      windows.push_back(Window{r.tenant, r.think_ticks, {}});
      w = static_cast<int64_t>(windows.size()) - 1;
      open_window[r.tenant] = w;
    }
    windows[w].recs.push_back(i);
  }

  // Shard windows to threads by owning tenant, preserving trace order.
  const uint32_t num_threads =
      std::min<uint32_t>(options_.num_threads, tenant_count);
  std::vector<std::vector<uint32_t>> plan(num_threads);
  for (uint32_t w = 0; w < windows.size(); w++) {
    plan[windows[w].tenant % num_threads].push_back(w);
  }
  uint64_t max_windows_per_thread = 0;
  for (const auto& p : plan) {
    max_windows_per_thread = std::max<uint64_t>(max_windows_per_thread, p.size());
  }

  // Shared scratch: reads land here, writes source deterministic fill.
  std::vector<uint8_t> read_buf(max_io);
  std::vector<uint8_t> write_buf(max_io, 0x5a);

  // Per-tenant virtual-slot -> live-fd tables.
  std::vector<std::vector<int>> slots(
      tenant_count, std::vector<int>(static_cast<size_t>(max_slot) + 1, -1));

  vfs::OpBatch batch;
  std::vector<vfs::OpResult> results;
  // slot -> batch index of an earlier kOpen in the CURRENT window.
  std::vector<int32_t> local_open(static_cast<size_t>(max_slot) + 1, -1);

  auto run_window = [&](const Window& win, common::ExecContext& ctx) {
    ctx.clock.Advance(static_cast<uint64_t>(win.think_ticks) * trace.tick_ns);
    const uint64_t start_ns = ctx.clock.NowNs();
    std::vector<int>& tslots = slots[win.tenant];

    batch.Clear();
    batch.Reserve(win.recs.size());
    std::fill(local_open.begin(), local_open.end(), -1);
    for (uint32_t ri : win.recs) {
      const TraceRecord& r = trace.records[ri];
      auto fd_of = [&]() -> vfs::FdRef {
        if (r.fd_slot >= 0 && local_open[r.fd_slot] >= 0) {
          return vfs::FdRef::From(static_cast<size_t>(local_open[r.fd_slot]));
        }
        return vfs::FdRef(r.fd_slot >= 0 ? tslots[r.fd_slot] : -1);
      };
      switch (r.op) {
        case TraceOp::kOpen: {
          const size_t idx = batch.Open(trace.paths[r.path_id],
                                        vfs::OpenFlags(r.open_flags));
          if (r.fd_slot >= 0) {
            local_open[r.fd_slot] = static_cast<int32_t>(idx);
          }
          break;
        }
        case TraceOp::kClose: {
          batch.Close(fd_of());
          if (r.fd_slot >= 0) {
            local_open[r.fd_slot] = -1;
          }
          break;
        }
        case TraceOp::kPread:
          batch.Pread(fd_of(), read_buf.data(), r.size, r.offset);
          break;
        case TraceOp::kPwrite:
          batch.Pwrite(fd_of(), write_buf.data(), r.size, r.offset);
          break;
        case TraceOp::kAppend:
          batch.Append(fd_of(), write_buf.data(), r.size);
          break;
        case TraceOp::kFsync:
          batch.Fsync(fd_of());
          break;
        case TraceOp::kStat:
          batch.Stat(trace.paths[r.path_id]);
          break;
        case TraceOp::kReadDir:
          batch.ReadDir(trace.paths[r.path_id]);
          break;
        case TraceOp::kUnlink:
          batch.Unlink(trace.paths[r.path_id]);
          break;
        case TraceOp::kMkdir:
          batch.Mkdir(trace.paths[r.path_id]);
          break;
        case TraceOp::kRmdir:
          batch.Rmdir(trace.paths[r.path_id]);
          break;
        case TraceOp::kRename:
          batch.Rename(trace.paths[r.path_id], trace.paths[r.path2_id]);
          break;
        case TraceOp::kFtruncate:
          batch.Ftruncate(fd_of(), r.offset);
          break;
        case TraceOp::kFallocate:
          batch.Fallocate(fd_of(), r.offset, r.size);
          break;
      }
    }

    if (options_.use_batch) {
      fs_->ExecuteBatch(ctx, batch, results);
    } else {
      fs_->ExecuteBatchScalar(ctx, batch, results);
    }

    // Post-pass: advance the tenant's slot table and tally outcomes.
    TenantStats& ts = result.tenants[win.tenant];
    uint64_t win_errors = 0;
    for (size_t k = 0; k < win.recs.size(); k++) {
      const TraceRecord& r = trace.records[win.recs[k]];
      const vfs::OpResult& res = results[k];
      if (!res.ok()) {
        win_errors++;
      }
      if (r.fd_slot >= 0) {
        if (r.op == TraceOp::kOpen) {
          tslots[r.fd_slot] = res.ok() ? static_cast<int>(res.value) : -1;
        } else if (r.op == TraceOp::kClose) {
          tslots[r.fd_slot] = -1;
        }
      }
    }
    ts.ops += win.recs.size();
    ts.errors += win_errors;
    ts.windows++;
    ts.latency.Record(ctx.clock.NowNs() - start_ns);
    records_done_ += win.recs.size();
    windows_done_++;
    errors_ += win_errors;
  };

  auto window_op = [&](uint32_t tid, uint64_t op_index, common::ExecContext& ctx) {
    if (op_index >= plan[tid].size()) {
      return false;
    }
    run_window(windows[plan[tid][op_index]], ctx);
    return true;
  };
  wload::RunResult run;
  if (options_.host_threads > 1) {
    wload::ParallelRunner runner(num_threads, options_.num_cpus, options_.base_ns);
    runner.SetWorkers(options_.host_threads)
        .SetMode(wload::ParallelRunner::Mode::kLockstep)
        .SetObservers(options_.trace_sink, options_.metrics, options_.sampler,
                      options_.profiler);
    run = runner.Run(max_windows_per_thread, window_op).run;
  } else {
    wload::SimRunner runner(num_threads, options_.num_cpus, options_.base_ns);
    runner.SetObservers(options_.trace_sink, options_.metrics, options_.sampler,
                        options_.profiler);
    run = runner.Run(max_windows_per_thread, window_op);
  }

  result.records = records_done_;
  result.windows = windows_done_;
  result.errors = errors_;
  result.wall_ns = run.wall_ns;
  result.counters = run.counters;
  return result;
}

void TraceReplayer::SampleGauges(obs::GaugeSample& out) {
  out.Set("replay_records_done", static_cast<double>(records_done_));
  out.Set("replay_windows_done", static_cast<double>(windows_done_));
  out.Set("replay_errors", static_cast<double>(errors_));
}

}  // namespace trace
